// Package repro is a from-scratch Go reproduction of "An Architecture
// for Recycling Intermediates in a Column-store" (Ivanova, Kersten,
// Nes, Gonçalves — SIGMOD 2009 / TODS 2010).
//
// It bundles a MonetDB-style operator-at-a-time column engine
// (BAT storage, binary relational algebra, MAL-like templates and
// interpreter) with the paper's recycler: an optimizer pass that marks
// instructions worth monitoring plus a run-time module that keeps
// their materialised results in a recycle pool, matches upcoming
// instructions against it (exactly or through subsumption) and
// maintains the pool under admission and eviction policies.
//
// Quick start:
//
//	cat := repro.NewCatalog()
//	// ... create tables, load rows (see examples/quickstart) ...
//	eng := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{
//		Admission: recycler.KeepAll,
//	}))
//	tmpl := eng.Compile(buildTemplate()) // marks recyclable instructions
//	res, err := eng.Exec(tmpl, mal.IntV(42))
package repro

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
	"repro/internal/sqlfe"
	"repro/internal/trace"
)

// NewCatalog creates an empty catalog. See the catalog package for
// table creation, bulk loads and DML.
func NewCatalog() *catalog.Catalog { return catalog.New() }

// Engine executes compiled query templates against a catalog,
// optionally with the recycler enabled.
//
// An Engine is safe for concurrent use: many goroutines (or Session
// handles) may call Exec/ExecSQL against one engine sharing a single
// recycle pool, the paper's multi-user setting. Each query itself runs
// on the dataflow scheduler, executing independent plan instructions
// in parallel; WithSeqExec restores the classical sequential
// interpreter loop.
type Engine struct {
	cat      *catalog.Catalog
	rec      *recycler.Recycler
	fe       *sqlfe.Frontend
	tracer   *trace.Tracer
	queryID  atomic.Uint64
	errors   atomic.Uint64
	measure  bool
	workers  int
	noFusion bool
}

// Option configures an Engine at construction time. Options are
// applied in the order given to NewEngine; later options win where
// they overlap (e.g. two WithWorkers calls).
type Option func(*Engine)

// WithRecycler enables recycling with the given configuration.
//
// The cfg fields mirror the paper's knobs: Admission selects
// keepall/crd/adapt (§4.2) with Credits as the k parameter, Eviction
// selects lru/bp/hp (§4.3), MaxBytes/MaxEntries bound the pool,
// Subsumption and CombinedSubsumption enable the §5 matching
// extensions, and Sync picks invalidate vs propagate (§6). Spill
// attaches a disk tier (internal/store) so eviction demotes entries
// instead of destroying them and a restarted engine can pre-warm via
// Recycler.Prewarm. See docs/TUNING.md for guidance on choosing a
// combination.
func WithRecycler(cfg recycler.Config) Option {
	return func(e *Engine) { e.rec = recycler.New(e.cat, cfg) }
}

// WithOptimizer selects the optimizer configuration the engine's SQL
// front end compiles with — which normalization passes run (CSE,
// commutative argument ordering, SQL query normalization) and which
// are skipped. The default (zero Options) runs the full pipeline;
// disabling passes is for experiments that need the denormalized plan
// shapes (e.g. measuring the recycler's run-time dedup of duplicates
// the optimizer would otherwise merge). See docs/TUNING.md.
func WithOptimizer(opts opt.Options) Option {
	return func(e *Engine) { e.fe = sqlfe.NewFrontendOpt(e.cat, opts) }
}

// WithMeasure enables per-instruction timing of marked instructions
// even without a recycler, so naive runs report potential savings
// (QueryStats.TimeInMarked). It adds one clock read per marked
// instruction; leave it off for throughput benchmarks of naive runs.
func WithMeasure() Option {
	return func(e *Engine) { e.measure = true }
}

// WithSeqExec selects the sequential interpreter (mal.RunSeq) instead
// of the dataflow scheduler — the paper's original single-threaded
// execution model, and the baseline the scheduler is benchmarked
// against.
//
// Deprecated: WithSeqExec is exactly WithWorkers(1); call that
// directly. A single worker is the one source of truth for sequential
// execution, and WithWorkers composes with later overrides where two
// spellings of the same knob do not.
func WithSeqExec() Option {
	return WithWorkers(1)
}

// WithWorkers bounds the per-query dataflow parallelism: n is the
// maximum number of independent plan instructions one query executes
// concurrently. n = 0 (the default) uses one worker per CPU
// (GOMAXPROCS); n = 1 forces sequential execution; n > GOMAXPROCS is
// allowed but cannot add parallelism beyond the machine.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithFusion toggles fused select-chain execution (on by default).
// Fusion collapses optimizer-annotated filter chains into one kernel
// pass at run time without changing plan identity; recycled or
// measured executions of monitored chains never fuse regardless of
// this setting, so the recycler's observable behaviour is identical
// either way. Turning it off (WithFusion(false)) restores strict
// per-instruction execution — useful for differential testing and for
// attributing time to individual instructions in EXPLAIN ANALYZE.
// See docs/TUNING.md.
func WithFusion(enabled bool) Option {
	return func(e *Engine) { e.noFusion = !enabled }
}

// WithTracer attaches the observability layer (internal/trace): every
// query is recorded into the tracer's recent ring (and slow-query log
// past its threshold), per-stage latencies feed its histograms, and
// the recycler reports lock waits, spill I/O and commit-maintenance
// summaries to it. Without a tracer the engine takes the nil-recorder
// fast path — no clock reads beyond the pre-existing ones.
func WithTracer(t *trace.Tracer) Option {
	return func(e *Engine) { e.tracer = t }
}

// NewEngine creates an engine over the catalog.
func NewEngine(cat *catalog.Catalog, opts ...Option) *Engine {
	e := &Engine{cat: cat, fe: sqlfe.NewFrontend(cat)}
	for _, o := range opts {
		o(e)
	}
	if e.tracer != nil && e.rec != nil {
		e.rec.SetTracer(e.tracer)
	}
	return e
}

// Tracer returns the engine's tracer, or nil when tracing is off.
func (e *Engine) Tracer() *trace.Tracer { return e.tracer }

// Recycler returns the engine's recycler, or nil when disabled.
func (e *Engine) Recycler() *recycler.Recycler { return e.rec }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Compile runs the optimizer pipeline (constant folding, dead code
// elimination, recycler marking) over a freshly built template.
func (e *Engine) Compile(t *mal.Template) *mal.Template {
	return opt.Optimize(t, opt.Options{})
}

// ExecResult carries a query's exported results and statistics.
type ExecResult struct {
	Results []mal.Result
	Stats   mal.QueryStats
}

// ExecSQL parses, compiles (through the template cache) and executes
// an SQL query in the supported subset. Literals are factored into
// template parameters, so repeated shapes share one template and the
// recycler can match across instances (paper §2.2).
func (e *Engine) ExecSQL(src string) (*ExecResult, error) {
	tmpl, params, tm, err := e.CompileSQLTimed(src)
	if err != nil {
		return nil, err
	}
	res, _, err := e.exec(tmpl, params, src, false, tm.Parse, tm.Optimize)
	return res, err
}

// ExecSQLTraced is ExecSQL returning the per-instruction query trace
// as well. The trace is non-nil only when a tracer is attached
// (WithTracer); EXPLAIN ANALYZE and the server's ?trace=1 path build
// on it.
func (e *Engine) ExecSQLTraced(src string) (*ExecResult, *trace.QueryTrace, error) {
	tmpl, params, tm, err := e.CompileSQLTimed(src)
	if err != nil {
		return nil, nil, err
	}
	return e.exec(tmpl, params, src, true, tm.Parse, tm.Optimize)
}

// CompileSQL parses the SQL text and returns the cached template plus
// this instance's parameter values, without executing. Servers use it
// to implement prepared statements over the shared shape cache.
// Failed compiles count toward EngineStats.Errors, like failed
// executions.
func (e *Engine) CompileSQL(src string) (*mal.Template, []mal.Value, error) {
	tmpl, params, _, err := e.CompileSQLTimed(src)
	return tmpl, params, err
}

// CompileSQLTimed is CompileSQL plus front-end stage timing; when a
// tracer is attached the parse/optimize histograms are fed here.
func (e *Engine) CompileSQLTimed(src string) (*mal.Template, []mal.Value, sqlfe.CompileTiming, error) {
	tmpl, params, tm, err := e.fe.CompileTimed(src)
	if err != nil {
		e.errors.Add(1)
		return nil, nil, tm, err
	}
	if e.tracer != nil {
		m := e.tracer.Metrics()
		m.Parse.Observe(tm.Parse)
		if !tm.CacheHit {
			m.Optimize.Observe(tm.Optimize)
		}
	}
	return tmpl, params, tm, nil
}

// Exec runs a compiled template with the given parameters.
func (e *Engine) Exec(t *mal.Template, params ...mal.Value) (*ExecResult, error) {
	res, _, err := e.exec(t, params, "", false, 0, 0)
	return res, err
}

// ExecTraced is Exec returning the per-instruction query trace as
// well. sql labels the trace; parse/optimize, when known (a compile
// the caller timed itself, e.g. through a prepared-statement cache),
// seed the trace's front-end stages.
func (e *Engine) ExecTraced(sql string, parse, optimize time.Duration, t *mal.Template, params ...mal.Value) (*ExecResult, *trace.QueryTrace, error) {
	return e.exec(t, params, sql, true, parse, optimize)
}

// exec is the shared execution body. When a tracer is attached every
// query gets a recorder — the recent ring and slow-query log see all
// traffic, not just explicitly traced calls — and wantTrace merely
// controls whether the finished trace is returned to the caller.
func (e *Engine) exec(t *mal.Template, params []mal.Value, sql string, wantTrace bool, parse, optimize time.Duration) (*ExecResult, *trace.QueryTrace, error) {
	qid := e.queryID.Add(1)
	ctx := &mal.Ctx{Cat: e.cat, QueryID: qid, Measure: e.measure, Workers: e.workers, NoFusion: e.noFusion}
	var rec *trace.Recorder
	if e.tracer != nil {
		rec = trace.NewRecorder(qid, sql, len(t.Instrs))
		rec.SetStages(parse, optimize)
		ctx.Trace = rec
		ctx.Metrics = e.tracer.Metrics()
	}
	if e.rec != nil {
		ctx.Hook = e.rec
		e.rec.BeginQuery(qid, t.ID)
		defer e.rec.EndQuery(qid)
	}
	if err := mal.Run(ctx, t, params...); err != nil {
		e.errors.Add(1)
		return nil, nil, err
	}
	var qt *trace.QueryTrace
	if rec != nil {
		qt = rec.Finish(t.Name, ctx.Stats.Elapsed)
		e.tracer.FinishQuery(qt)
		if !wantTrace {
			qt = nil
		}
	}
	return &ExecResult{Results: ctx.Results, Stats: ctx.Stats}, qt, nil
}

// EngineStats is a point-in-time snapshot of everything an operator
// needs to judge the engine's health: query counters, the recycle
// pool's utilisation and lock-contention telemetry (writer-lock and
// hit-path shard-lock waits, see recycler.Stats), the admission
// policy's decisions and the SQL template cache. Recycler/Admission
// are zero-valued (with Recycling=false) when the engine runs naive.
type EngineStats struct {
	// Queries counts query ids handed out (started queries); Errors
	// counts compiles or executions that returned an error.
	Queries uint64
	Errors  uint64
	// ActiveQueries is the number of queries currently executing under
	// the recycler's pin set (0 when recycling is disabled).
	ActiveQueries int

	Recycling bool
	Recycler  recycler.Stats
	Admission recycler.AdmissionStats

	// TemplateCache reports the SQL front end's shape cache.
	TemplateCache sqlfe.CacheStats
}

// StatsSnapshot captures the engine-wide statistics. It is safe to
// call concurrently with running queries; the counters are snapshotted
// under the respective component locks (the recycler takes its writer
// lock briefly; hit-path counters are read atomically), not atomically
// across components.
func (e *Engine) StatsSnapshot() EngineStats {
	s := EngineStats{
		Queries:       e.queryID.Load(),
		Errors:        e.errors.Load(),
		TemplateCache: e.fe.CacheStats(),
	}
	if e.rec != nil {
		s.Recycling = true
		s.Recycler = e.rec.Snapshot()
		s.Admission = e.rec.AdmissionStats()
		s.ActiveQueries = e.rec.ActiveQueries()
	}
	return s
}

// Session is a lightweight per-client handle onto a shared Engine —
// the unit the multi-user experiments hand to each simulated client.
// Sessions add per-client counters on top of the engine's shared
// state; any number of sessions may execute concurrently.
type Session struct {
	e *Engine

	mu      sync.Mutex
	queries int
	hits    int
	marked  int
	elapsed time.Duration
}

// NewSession opens a client session on the engine.
func (e *Engine) NewSession() *Session { return &Session{e: e} }

// ExecSQL executes one SQL query on the session's engine.
func (s *Session) ExecSQL(src string) (*ExecResult, error) {
	res, err := s.e.ExecSQL(src)
	s.note(res)
	return res, err
}

// Exec runs a compiled template on the session's engine.
func (s *Session) Exec(t *mal.Template, params ...mal.Value) (*ExecResult, error) {
	res, err := s.e.Exec(t, params...)
	s.note(res)
	return res, err
}

func (s *Session) note(res *ExecResult) {
	if res == nil {
		return
	}
	s.mu.Lock()
	s.queries++
	s.hits += res.Stats.HitsNonBind
	s.marked += res.Stats.MarkedNonBind
	s.elapsed += res.Stats.Elapsed
	s.mu.Unlock()
}

// SessionStats summarises the queries a session has executed.
type SessionStats struct {
	Queries      int
	Hits         int           // non-bind pool hits
	Marked       int           // non-bind monitored instructions (potential hits)
	SumQueryTime time.Duration // sum of per-query elapsed times
}

// Stats returns the session's accumulated counters.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionStats{Queries: s.queries, Hits: s.hits, Marked: s.marked, SumQueryTime: s.elapsed}
}
