// Package repro is a from-scratch Go reproduction of "An Architecture
// for Recycling Intermediates in a Column-store" (Ivanova, Kersten,
// Nes, Gonçalves — SIGMOD 2009 / TODS 2010).
//
// It bundles a MonetDB-style operator-at-a-time column engine
// (BAT storage, binary relational algebra, MAL-like templates and
// interpreter) with the paper's recycler: an optimizer pass that marks
// instructions worth monitoring plus a run-time module that keeps
// their materialised results in a recycle pool, matches upcoming
// instructions against it (exactly or through subsumption) and
// maintains the pool under admission and eviction policies.
//
// Quick start:
//
//	cat := repro.NewCatalog()
//	// ... create tables, load rows (see examples/quickstart) ...
//	eng := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{
//		Admission: recycler.KeepAll,
//	}))
//	tmpl := eng.Compile(buildTemplate()) // marks recyclable instructions
//	res, err := eng.Exec(tmpl, mal.IntV(42))
package repro

import (
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
	"repro/internal/sqlfe"
)

// NewCatalog creates an empty catalog. See the catalog package for
// table creation, bulk loads and DML.
func NewCatalog() *catalog.Catalog { return catalog.New() }

// Engine executes compiled query templates against a catalog,
// optionally with the recycler enabled.
type Engine struct {
	cat     *catalog.Catalog
	rec     *recycler.Recycler
	fe      *sqlfe.Frontend
	queryID uint64
	measure bool
}

// Option configures an Engine.
type Option func(*Engine)

// WithRecycler enables recycling with the given configuration.
func WithRecycler(cfg recycler.Config) Option {
	return func(e *Engine) { e.rec = recycler.New(e.cat, cfg) }
}

// WithMeasure enables per-instruction timing of marked instructions
// even without a recycler, so naive runs report potential savings.
func WithMeasure() Option {
	return func(e *Engine) { e.measure = true }
}

// NewEngine creates an engine over the catalog.
func NewEngine(cat *catalog.Catalog, opts ...Option) *Engine {
	e := &Engine{cat: cat}
	for _, o := range opts {
		o(e)
	}
	return e
}

// Recycler returns the engine's recycler, or nil when disabled.
func (e *Engine) Recycler() *recycler.Recycler { return e.rec }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *catalog.Catalog { return e.cat }

// Compile runs the optimizer pipeline (constant folding, dead code
// elimination, recycler marking) over a freshly built template.
func (e *Engine) Compile(t *mal.Template) *mal.Template {
	return opt.Optimize(t, opt.Options{})
}

// ExecResult carries a query's exported results and statistics.
type ExecResult struct {
	Results []mal.Result
	Stats   mal.QueryStats
}

// ExecSQL parses, compiles (through the template cache) and executes
// an SQL query in the supported subset. Literals are factored into
// template parameters, so repeated shapes share one template and the
// recycler can match across instances (paper §2.2).
func (e *Engine) ExecSQL(src string) (*ExecResult, error) {
	if e.fe == nil {
		e.fe = sqlfe.NewFrontend(e.cat)
	}
	tmpl, params, err := e.fe.Compile(src)
	if err != nil {
		return nil, err
	}
	return e.Exec(tmpl, params...)
}

// Exec runs a compiled template with the given parameters.
func (e *Engine) Exec(t *mal.Template, params ...mal.Value) (*ExecResult, error) {
	e.queryID++
	ctx := &mal.Ctx{Cat: e.cat, QueryID: e.queryID, Measure: e.measure}
	if e.rec != nil {
		ctx.Hook = e.rec
		e.rec.BeginQuery(e.queryID, t.ID)
	}
	if err := mal.Run(ctx, t, params...); err != nil {
		return nil, err
	}
	return &ExecResult{Results: ctx.Results, Stats: ctx.Stats}, nil
}
