#!/usr/bin/env bash
# Capture a CPU profile of the SkyServer workload mix plus the kernel
# microbenchmarks, so kernel work is guided by measurement rather than
# guesswork (docs/ARCHITECTURE.md "Kernel layer"). Artifacts land in
# profiles/:
#   profiles/skybench.pprof   whole-run profile of the naive baseline
#   profiles/kernels.pprof    internal/algebra Kernel* benchmarks
#   profiles/*.top.txt        `go tool pprof -top` summaries
# Usage: scripts/profile.sh [objects] [queries]   (defaults 20000 200)
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

objects="${1:-20000}"
queries="${2:-200}"
mkdir -p profiles

echo "== skybench naive baseline (objects=$objects n=$queries) =="
go run ./cmd/skybench -objects "$objects" -n "$queries" \
  -cpuprofile profiles/skybench.pprof naive

echo "== kernel microbenchmarks =="
go test ./internal/algebra/ -run '^$' -bench 'BenchmarkKernel' \
  -benchtime 100x -cpuprofile profiles/kernels.pprof \
  -o profiles/algebra.test >/dev/null

echo "== top functions =="
go tool pprof -top -nodecount 25 profiles/skybench.pprof \
  | tee profiles/skybench.top.txt
go tool pprof -top -nodecount 25 profiles/algebra.test profiles/kernels.pprof \
  | tee profiles/kernels.top.txt

echo "profiles written to profiles/ (open with: go tool pprof -http :8080 <file>)"
