#!/usr/bin/env bash
# Repo lint gate. CI's lint job runs exactly this script; run it
# locally before pushing. Required checks: gofmt, go vet, reprolint
# (the invariant analyzers — see docs/LINTING.md), and staticcheck
# when installed (CI always installs it, so it is required there;
# locally the gate degrades gracefully on machines without it).
# errcheck and shellcheck stay advisory-when-installed.
set -euo pipefail
cd "$(dirname "$0")/.." || exit 1

echo "== gofmt =="
unformatted="$(gofmt -l . | grep -v '/testdata/' || true)"
if [ -n "$unformatted" ]; then
  echo "gofmt needed on:"
  echo "$unformatted"
  exit 1
fi

echo "== go vet =="
go vet ./...

echo "== reprolint (concurrency + identity invariants) =="
go build -o bin/reprolint ./cmd/reprolint
./bin/reprolint ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "== staticcheck (required) =="
  staticcheck ./...
else
  echo "== staticcheck: not installed, skipping (required in CI) =="
fi

if command -v errcheck >/dev/null 2>&1; then
  echo "== errcheck (advisory) =="
  errcheck -exclude .errcheck-exclude ./... || true
fi

if command -v shellcheck >/dev/null 2>&1; then
  echo "== shellcheck =="
  shellcheck scripts/*.sh
fi

echo "lint: OK"
