#!/usr/bin/env bash
# Observability smoke test against cmd/reprod.
#
# Boots a traced server, issues the same query twice with ?trace=1,
# and asserts that:
#   1. the response carries a trace with one span per instruction and
#      a recycler decision reason on every monitored span,
#   2. the repeat run's monitored spans all report pool hits,
#   3. /debug/queries shows tracing enabled, both queries in the
#      recent ring, and an empty slow log (nothing beats 500ms here;
#      the Go tests cover slow-log capture at a nanosecond threshold),
#   4. /metrics parses as Prometheus exposition text and exposes the
#      stage/lock/IO histogram families with live counts,
#   5. /debug/pprof/ answers on the ops mux.
set -euo pipefail

PORT="${PORT:-18124}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
trap 'if [ -n "${SRV_PID:-}" ]; then kill "$SRV_PID" 2>/dev/null || true; wait "$SRV_PID" 2>/dev/null || true; fi; rm -rf "$WORK" 2>/dev/null || true' EXIT

BOX_QUERY='SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1'

go build -o "$WORK/reprod" ./cmd/reprod

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: server did not become healthy"; exit 1
}

traced_query() {
  curl -sf -X POST "$BASE/query?trace=1" -d "{\"sql\": \"$1\"}"
}

echo "== boot traced server =="
"$WORK/reprod" -db sky -objects 5000 -http "127.0.0.1:${PORT}" >"$WORK/run.log" 2>&1 &
SRV_PID=$!
wait_healthy

echo "== traced query: miss then hit =="
traced_query "$BOX_QUERY" >"$WORK/first.json"
# A trace came back, with spans, and every monitored span carries a
# recycler decision reason.
jq -e '.trace.spans | length > 0' "$WORK/first.json" >/dev/null
jq -e '[.trace.spans[] | select(.recycle != null and .recycle == "")] | length == 0' "$WORK/first.json" >/dev/null
jq -e '.trace.stages.execute_ns > 0' "$WORK/first.json" >/dev/null

traced_query "$BOX_QUERY" >"$WORK/second.json"
# The repeat is served from the pool: monitored spans exist and all of
# them report a hit (or a subsumption rewrite).
jq -e '[.trace.spans[] | select(.recycle != null and .recycle != "")] | length > 0' "$WORK/second.json" >/dev/null
jq -e '[.trace.spans[] | select(.recycle != null and .recycle != "")
        | select((.recycle | startswith("hit")) or (.recycle | startswith("rewrite")) | not)] | length == 0' \
  "$WORK/second.json" >/dev/null
# Distinct query ids: traces never bleed across requests.
test "$(jq .trace.query_id "$WORK/first.json")" != "$(jq .trace.query_id "$WORK/second.json")"

echo "== /debug/queries =="
curl -sf "$BASE/debug/queries" >"$WORK/debug.json"
jq -e '.tracing == true' "$WORK/debug.json" >/dev/null
jq -e '.slow_threshold_ms == 500' "$WORK/debug.json" >/dev/null
jq -e '.queries >= 2' "$WORK/debug.json" >/dev/null
jq -e '.recent | length >= 2' "$WORK/debug.json" >/dev/null
jq -e '.slow | length == 0' "$WORK/debug.json" >/dev/null  # nothing here beats 500ms

echo "== /metrics exposition =="
curl -sf "$BASE/metrics" >"$WORK/metrics.txt"
hist_families=$(grep -c '^# TYPE repro_.* histogram$' "$WORK/metrics.txt")
if [ "$hist_families" -lt 5 ]; then
  echo "FAIL: only $hist_families histogram families exposed"; exit 1
fi
for fam in repro_stage_parse_seconds repro_stage_execute_seconds \
           repro_stage_recycler_lookup_seconds repro_lock_writer_wait_seconds \
           repro_spill_io_seconds; do
  grep -q "^# TYPE ${fam} histogram$" "$WORK/metrics.txt" || { echo "FAIL: missing family $fam"; exit 1; }
  grep -q "^${fam}_bucket{le=\"+Inf\"}" "$WORK/metrics.txt" || { echo "FAIL: $fam has no +Inf bucket"; exit 1; }
  grep -q "^${fam}_count " "$WORK/metrics.txt" || { echo "FAIL: $fam has no _count"; exit 1; }
done
# The traced queries actually landed in the execute histogram.
execute_count=$(awk '/^repro_stage_execute_seconds_count /{print $2}' "$WORK/metrics.txt")
if [ "${execute_count:-0}" -lt 2 ]; then
  echo "FAIL: execute histogram count ${execute_count:-0}, want >= 2"; exit 1
fi
# Every non-comment line is "name{labels} value" or "name value".
if grep -vE '^(#|[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? [0-9.e+-]+$)' "$WORK/metrics.txt" | grep -q .; then
  echo "FAIL: malformed exposition lines:"; grep -vE '^(#|[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? [0-9.e+-]+$)' "$WORK/metrics.txt"
  exit 1
fi

echo "== /debug/pprof =="
curl -sf "$BASE/debug/pprof/" | grep -qi 'profile' || { echo "FAIL: pprof index not served"; exit 1; }

kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "FAIL: server exited non-zero"; cat "$WORK/run.log"; exit 1; }
SRV_PID=""

echo "observability smoke: OK"
