#!/usr/bin/env bash
# Checkpoint -> restart -> warm-pool smoke test against cmd/reprod.
#
# Boots a durable server, commits an INSERT over /exec, warms the pool
# with repeated queries, drains it with SIGTERM (which demotes the pool
# to the disk tier and takes a final checkpoint), restarts it from the
# same -data-dir, and asserts that:
#   1. the committed INSERT survived the restart,
#   2. the pool was pre-warmed from the spill tier,
#   3. the first post-restart query is served with pool hits,
#   4. /stats exposes the spill counters.
set -euo pipefail

PORT="${PORT:-18123}"
BASE="http://127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
trap 'if [ -n "${SRV_PID:-}" ]; then kill "$SRV_PID" 2>/dev/null || true; wait "$SRV_PID" 2>/dev/null || true; fi; rm -rf "$WORK" 2>/dev/null || true' EXIT

BOX_QUERY='SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1'

go build -o "$WORK/reprod" ./cmd/reprod

wait_healthy() {
  for _ in $(seq 1 50); do
    if curl -sf "$BASE/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.2
  done
  echo "FAIL: server did not become healthy"; exit 1
}

query() {
  curl -sf -X POST "$BASE/query" -d "{\"sql\": \"$1\"}"
}

echo "== first life: bootstrap, commit, warm =="
"$WORK/reprod" -db sky -objects 5000 -http "127.0.0.1:${PORT}" -data-dir "$WORK/data" >"$WORK/run1.log" 2>&1 &
SRV_PID=$!
wait_healthy

curl -sf -X POST "$BASE/exec" \
  -d '{"sql": "INSERT INTO sky.dbobjects (name, type, description) VALUES ('\''smoke'\'', '\''T'\'', '\''survived the restart'\'')"}' \
  | jq -e '.rows_affected == 1' >/dev/null

query "$BOX_QUERY" >/dev/null
query "$BOX_QUERY" | jq -e '.stats.hits > 0' >/dev/null  # warm in life 1

kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "FAIL: first life exited non-zero"; cat "$WORK/run1.log"; exit 1; }
grep -q "drained 0 in-flight statements" "$WORK/run1.log"
grep -q "demoted" "$WORK/run1.log"
test -f "$WORK/data/snapshot.dat"

echo "== second life: recover, prewarm, warm first query =="
"$WORK/reprod" -db sky -objects 5000 -http "127.0.0.1:${PORT}" -data-dir "$WORK/data" >"$WORK/run2.log" 2>&1 &
SRV_PID=$!
wait_healthy
grep -q "store: recovered" "$WORK/run2.log"
grep -q "store: pre-warmed" "$WORK/run2.log"

# The committed row survived.
query "SELECT description FROM sky.dbobjects WHERE name = 'smoke'" \
  | jq -e '.results[0].values[0] == "survived the restart"' >/dev/null

# The very first repeated-template query hits the pre-warmed pool.
query "$BOX_QUERY" | jq -e '.stats.hits > 0' >/dev/null

# /stats exposes the spill counters, and prewarm actually happened.
curl -sf "$BASE/stats" | jq -e '.engine.Recycler.Prewarmed > 0 and .engine.Recycler.Reuses > 0' >/dev/null

kill -TERM "$SRV_PID"
wait "$SRV_PID" || { echo "FAIL: second life exited non-zero"; cat "$WORK/run2.log"; exit 1; }
SRV_PID=""

echo "persistence smoke: OK"
