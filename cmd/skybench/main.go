// Command skybench regenerates the SkyServer experiments of the paper
// (Fig. 14, Table III and Fig. 15). See DESIGN.md for the experiment
// index.
//
// Usage:
//
//	skybench [flags] <experiment>
//
// Experiments:
//
//	batch    batch splits 4x25 / 2x50 / 1x100 (+ -n scaling) (Fig. 14)
//	table3   recycle pool breakdown after the batch (Table III)
//	subsume  B2/B4 combined-subsumption micro-benchmarks (Fig. 15)
//	all      everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/sky"
)

func main() {
	objects := flag.Int("objects", 200000, "number of synthetic sky objects")
	n := flag.Int("n", 100, "workload batch size")
	seeds := flag.Int("seeds", 12, "seed queries per micro-benchmark")
	sel := flag.Float64("s", 0.02, "seed query selectivity (micro-benchmarks)")
	seed := flag.Int64("seed", 42, "workload random seed")
	flag.Parse()

	exp := flag.Arg(0)
	if exp == "" {
		exp = "all"
	}

	fmt.Printf("# SkyServer experiments, %d objects\n\n", *objects)
	db := sky.Generate(*objects, 17)

	switch exp {
	case "batch":
		runBatch(db, *n, *seed)
	case "table3":
		runTable3(db, *n, *seed)
	case "subsume":
		runSubsume(db, *seeds, *sel, *seed)
	case "all":
		runBatch(db, *n, *seed)
		runTable3(db, *n, *seed)
		runSubsume(db, *seeds, *sel, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		os.Exit(2)
	}
}

func runBatch(db *sky.DB, n int, seed int64) {
	fmt.Printf("== Fig. 14: recycler effect on the %d-query batch ==\n", n)
	w := sky.SampleWorkload(db, n, seed)
	var rows []bench.Fig14Row
	for _, segments := range []int{4, 2, 1} {
		rows = append(rows, bench.SkyBatch(db, w, segments, seed))
	}
	bench.PrintFig14(os.Stdout, rows)
	fmt.Println()
}

func runTable3(db *sky.DB, n int, seed int64) {
	fmt.Println("== Table III: recycle pool content after the batch ==")
	w := sky.SampleWorkload(db, n, seed)
	bench.PrintTable3(os.Stdout, bench.Table3(db, w))
	fmt.Println()
}

func runSubsume(db *sky.DB, seeds int, s float64, seed int64) {
	for _, k := range []int{2, 4} {
		nSeeds := seeds
		if k == 2 {
			nSeeds = seeds * 5 / 3 // B2 uses 20 seeds vs B4's 12 in the paper
		}
		fmt.Printf("== Fig. 15: combined subsumption micro-benchmark B%d (%d seeds, s=%.2f) ==\n", k, nSeeds, s)
		mb := sky.GenMicroBench(k, nSeeds, s, seed)
		bench.PrintFig15(os.Stdout, k, bench.SkySubsume(db, mb))
		fmt.Println()
	}
}
