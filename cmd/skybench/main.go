// Command skybench regenerates the SkyServer experiments of the paper
// (Fig. 14, Table III and Fig. 15). See DESIGN.md for the experiment
// index.
//
// Usage:
//
//	skybench [flags] <experiment> [<experiment> ...]
//
// Experiments:
//
//	batch    batch splits 4x25 / 2x50 / 1x100 (+ -n scaling) (Fig. 14)
//	table3   recycle pool breakdown after the batch (Table III)
//	subsume  B2/B4 combined-subsumption micro-benchmarks (Fig. 15)
//	mt       multi-client throughput over one shared recycler pool,
//	         sequential interpreter vs dataflow scheduler (§6 multi-user)
//	serve    closed-loop HTTP load against an in-process server
//	         (internal/server): -clients workers for -duration, naive
//	         vs shared-recycler, measuring over-the-wire speedup
//	restart  durable-store cycle (internal/store): warm a server, shut
//	         it down gracefully, recover snapshot + WAL, and compare
//	         cold vs warm-pool first-N-queries latency after restart
//	equiv    equivalent-query workload: semantically equal SQL spelled
//	         differently (shuffled conjuncts, literal variants, BETWEEN
//	         splits), exact-hit rate with the normalization pipeline
//	         off vs on; exits non-zero if the normalized rate is below
//	         -min-hit-rate (the CI gate)
//	rw       mixed read/write workload at -write-frac DML, run under
//	         invalidate vs propagate vs maintain; exits non-zero if
//	         maintain's exact-hit rate is below -min-maintain-ratio
//	         times invalidate's (the CI gate)
//	all      everything above except serve and restart (those need
//	         wall-clock time and a durable store of their own)
//
// Several experiments may be named in one invocation; they share one
// generated catalog and accumulate into one -json report, and the
// exit code aggregates every gate that ran.
//
// All workload generators take -seed (and the catalog generator
// -dbseed), so mt/serve/restart runs are reproducible across hosts.
// -json FILE additionally writes the machine-readable per-mode rows
// (QPS, hit/miss/subsumption counts, lock waits) of the experiments
// that ran, conventionally to BENCH_recycle.json, so the perf
// trajectory is diffable across PRs.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/recycler"
	"repro/internal/server"
	"repro/internal/sky"
)

func main() {
	objects := flag.Int("objects", 200000, "number of synthetic sky objects")
	n := flag.Int("n", 100, "workload batch size")
	seeds := flag.Int("seeds", 12, "seed queries per micro-benchmark")
	sel := flag.Float64("s", 0.02, "seed query selectivity (micro-benchmarks)")
	seed := flag.Int64("seed", 42, "workload random seed (reproducible runs across hosts)")
	dbseed := flag.Int64("dbseed", 17, "catalog generator random seed")
	clients := flag.Int("clients", max(4, runtime.GOMAXPROCS(0)), "max concurrent clients (mt and serve experiments)")
	workers := flag.Int("workers", 0, "per-query dataflow workers (mt experiment; 0 = max(2, GOMAXPROCS))")
	duration := flag.Duration("duration", 5*time.Second, "closed-loop run length per configuration (serve experiment)")
	first := flag.Int("first", 25, "first-N queries measured after restart (restart experiment)")
	jsonPath := flag.String("json", "", "write machine-readable per-mode results to FILE (e.g. BENCH_recycle.json)")
	variants := flag.Int("variants", 3, "equivalent spellings per query (equiv experiment)")
	minHitRate := flag.Float64("min-hit-rate", 0.95, "fail the equiv experiment when the normalized exact-hit rate is below this")
	writeFrac := flag.Float64("write-frac", 0.10, "fraction of DML operations in the rw experiment")
	minMaintainRatio := flag.Float64("min-maintain-ratio", 2.0, "fail the rw experiment when maintain's exact-hit rate is below this multiple of invalidate's")
	seedNaiveQPS := flag.Float64("seed-naive-qps", 0, "frozen pre-kernel-pass naive single-stream QPS (naive experiment gate reference; 0 = no gate)")
	minNaiveSpeedup := flag.Float64("min-naive-speedup", 2.0, "fail the naive experiment when its QPS is below this multiple of -seed-naive-qps")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the whole run to FILE (scripts/profile.sh)")
	flag.Parse()

	// os.Exit skips defers, so the profile is stopped explicitly on the
	// normal path (failed gates still flush it before exiting non-zero).
	stopProfile := func() {}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "cpuprofile: %v\n", err)
			os.Exit(1)
		}
		stopProfile = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}

	exps := flag.Args()
	if len(exps) == 0 {
		exps = []string{"all"}
	}
	report := bench.NewReport()
	writeReport := func() {
		if *jsonPath == "" {
			return
		}
		if err := report.Write(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "write %s: %v\n", *jsonPath, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d mode rows to %s\n", len(report.Modes), *jsonPath)
	}

	// The catalog is generated once and shared by the experiments of
	// one invocation (restart builds its own inside the durable store's
	// lifecycle, so it never forces generation here).
	var db *sky.DB
	getDB := func() *sky.DB {
		if db == nil {
			fmt.Printf("# SkyServer experiments, %d objects\n\n", *objects)
			db = sky.Generate(*objects, *dbseed)
		}
		return db
	}

	// Gated experiments keep running after a failure so one invocation
	// reports every gate; the exit code aggregates them.
	ok := true
	for _, exp := range exps {
		switch exp {
		case "restart":
			runRestart(*objects, *n, *first, *seed, *dbseed)
		case "batch":
			runBatch(getDB(), *n, *seed, report)
		case "table3":
			runTable3(getDB(), *n, *seed)
		case "subsume":
			runSubsume(getDB(), *seeds, *sel, *seed)
		case "mt":
			runMT(getDB(), *n, *clients, *workers, *seed, report)
		case "serve":
			runServe(getDB(), *n, *clients, *duration, *seed, report)
		case "equiv":
			ok = runEquiv(getDB(), *n, *variants, *seed, *minHitRate, report) && ok
		case "rw":
			ok = runRW(getDB(), *n, *writeFrac, *seed, *minMaintainRatio, report) && ok
		case "naive":
			ok = runNaive(getDB(), *n, *seed, *seedNaiveQPS, *minNaiveSpeedup, report) && ok
		case "all":
			d := getDB()
			runBatch(d, *n, *seed, report)
			runTable3(d, *n, *seed)
			runSubsume(d, *seeds, *sel, *seed)
			runMT(d, *n, *clients, *workers, *seed, report)
			ok = runNaive(d, *n, *seed, *seedNaiveQPS, *minNaiveSpeedup, report) && ok
			ok = runEquiv(d, *n, *variants, *seed, *minHitRate, report) && ok
			ok = runRW(d, *n, *writeFrac, *seed, *minMaintainRatio, report) && ok
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
			os.Exit(2)
		}
	}
	writeReport()
	stopProfile()
	if !ok {
		os.Exit(1)
	}
}

// runNaive measures the naive single-stream SkyServer-mix QPS — the
// baseline every recycled ratio is reported against. When seedQPS > 0
// it also gates: the current kernels must deliver at least minSpeedup
// times the frozen seed-kernel value (the CI regression gate for the
// raw-speed kernel pass).
func runNaive(db *sky.DB, n int, seed int64, seedQPS, minSpeedup float64, report *bench.Report) bool {
	fmt.Printf("== Naive single-stream baseline: %d queries, sequential interpreter, no recycler ==\n", n)
	res := bench.RunNaiveStream(db, n, seed)
	bench.PrintNaive(os.Stdout, res, seedQPS)
	if seedQPS > 0 {
		report.AddNaiveBaseline("seed", bench.NaiveResult{QPS: seedQPS})
	}
	report.AddNaiveBaseline("current", res)
	if seedQPS > 0 && res.QPS < minSpeedup*seedQPS {
		fmt.Fprintf(os.Stderr, "FAIL: naive single-stream QPS %.1f is %.2fx the seed-kernel baseline %.1f (gate %.1fx)\n",
			res.QPS, res.QPS/seedQPS, seedQPS, minSpeedup)
		return false
	}
	fmt.Println()
	return true
}

// runEquiv measures the normalization pipeline's effect on the
// recycler: the same semantically-equal workload with normalization
// off (every spelling its own template — variants miss) and on (one
// template — variants hit exactly). Returns false when the normalized
// exact-hit rate misses the gate.
func runEquiv(db *sky.DB, n, variants int, seed int64, minRate float64, report *bench.Report) bool {
	fmt.Printf("== Equivalent-query workload: %d queries x %d spellings (shuffled conjuncts, literal variants) ==\n", n, variants)
	queries := bench.EquivWorkload(n, variants, seed)
	rows := []bench.EquivResult{
		bench.RunEquiv(db, queries, false),
		bench.RunEquiv(db, queries, true),
	}
	bench.PrintEquiv(os.Stdout, rows)
	for _, r := range rows {
		report.AddEquiv(r)
	}
	norm := rows[1]
	if rate := norm.ExactHitRate(); rate < minRate {
		fmt.Fprintf(os.Stderr, "FAIL: normalized exact-hit rate %.1f%% below gate %.1f%%\n",
			100*rate, 100*minRate)
		return false
	}
	fmt.Printf("normalized exact-hit rate %.1f%% (gate %.1f%%), baseline %.1f%%\n\n",
		100*norm.ExactHitRate(), 100*minRate, 100*rows[0].ExactHitRate())
	return true
}

// runRW measures update synchronisation under churn: the same mixed
// read/write workload (bounding-box COUNTs over sky.photoobj with DML
// interleaved at writeFrac) run under invalidate, propagate and
// maintain. With repeating reads, what survives each commit is exactly
// what each mode's rules keep alive, so the exact-hit rate separates
// them. Returns false when maintain's rate misses the gate relative to
// invalidate's.
func runRW(db *sky.DB, n int, writeFrac float64, seed int64, minRatio float64, report *bench.Report) bool {
	fmt.Printf("== Mixed read/write workload: %d ops, %.0f%% writes, per sync mode ==\n", n, 100*writeFrac)
	stmts := bench.RWStatements(12, seed)
	rows := []bench.RWResult{
		bench.RunRW(db, stmts, n, writeFrac, seed, "invalidate", recycler.SyncInvalidate),
		bench.RunRW(db, stmts, n, writeFrac, seed, "propagate", recycler.SyncPropagate),
		bench.RunRW(db, stmts, n, writeFrac, seed, "maintain", recycler.SyncMaintain),
	}
	bench.PrintRW(os.Stdout, rows)
	for _, r := range rows {
		report.AddRW(r)
	}
	inval, maint := rows[0], rows[2]
	ratio := 0.0
	if inval.ExactHitRate() > 0 {
		ratio = maint.ExactHitRate() / inval.ExactHitRate()
	} else if maint.ExactHitRate() > 0 {
		ratio = minRatio // invalidate kept nothing; any maintained hits clear the gate
	}
	if ratio < minRatio {
		fmt.Fprintf(os.Stderr, "FAIL: maintain exact-hit rate %.1f%% is %.2fx invalidate's %.1f%% (gate %.1fx)\n",
			100*maint.ExactHitRate(), ratio, 100*inval.ExactHitRate(), minRatio)
		return false
	}
	fmt.Printf("maintain exact-hit rate %.1f%% = %.2fx invalidate's %.1f%% (gate %.1fx); %d entries maintained, %d fell back\n\n",
		100*maint.ExactHitRate(), ratio, 100*inval.ExactHitRate(), minRatio, maint.Maintained, maint.Fallback)
	return true
}

// runRestart exercises the durable store: boot on a fresh directory,
// warm the pool, shut down gracefully (spill + checkpoint), recover,
// and measure cold vs warm-pool first-N-queries latency over HTTP.
func runRestart(objects, n, first int, seed, dbseed int64) {
	fmt.Printf("== Restart: cold vs warm recycle pool, %d objects, %d-query warmup ==\n", objects, n)
	dir, err := os.MkdirTemp("", "skybench-restart-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// os.Exit skips defers, so the data directory (snapshot + WAL +
	// spill files) is removed explicitly on every path.
	phases, err := runRestartExperiment(os.Stdout, restartConfig{
		Dir: dir, Objects: objects, N: n, First: first, Seed: seed, DBSeed: dbseed,
	})
	os.RemoveAll(dir)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if phases[1].FirstHits == 0 || phases[1].Reuses == 0 {
		fmt.Fprintln(os.Stderr, "FAIL: warm-started server served no pool hits on the first iteration")
		os.Exit(1)
	}
	fmt.Println()
}

func runBatch(db *sky.DB, n int, seed int64, report *bench.Report) {
	fmt.Printf("== Fig. 14: recycler effect on the %d-query batch ==\n", n)
	w := sky.SampleWorkload(db, n, seed)
	var rows []bench.Fig14Row
	for _, segments := range []int{4, 2, 1} {
		rows = append(rows, bench.SkyBatch(db, w, segments, seed))
	}
	bench.PrintFig14(os.Stdout, rows)
	for _, r := range rows {
		report.AddBatch(r, n)
	}
	fmt.Println()
}

func runTable3(db *sky.DB, n int, seed int64) {
	fmt.Println("== Table III: recycle pool content after the batch ==")
	w := sky.SampleWorkload(db, n, seed)
	bench.PrintTable3(os.Stdout, bench.Table3(db, w))
	fmt.Println()
}

// runMT measures multi-client throughput: the sampled workload driven
// by 1..maxClients concurrent sessions sharing one recycler pool, with
// the sequential interpreter and the dataflow scheduler, naive and
// recycled. Each configuration starts from a warmed catalog and an
// empty pool.
func runMT(db *sky.DB, n, maxClients, workers int, seed int64, report *bench.Report) {
	if workers <= 0 {
		// Force at least two workers so the scheduler path is exercised
		// even on single-core hosts (where it cannot win wall-clock,
		// only stay close to the sequential loop).
		workers = max(2, runtime.GOMAXPROCS(0))
	}
	fmt.Printf("== Multi-client throughput: %d queries, shared recycler pool, up to %d clients, %d dataflow workers ==\n",
		n, maxClients, workers)
	if runtime.GOMAXPROCS(0) == 1 {
		fmt.Println("   (GOMAXPROCS=1: goroutines interleave on one core; expect parity, not speedup)")
	}
	w := sky.SampleWorkload(db, n, seed)
	warm := bench.SkyWarmup(w)

	counts := []int{1}
	for c := 2; c < maxClients; c *= 2 {
		counts = append(counts, c)
	}
	if maxClients > 1 {
		counts = append(counts, maxClients)
	}

	var rows []bench.MTRow
	for _, recycled := range []bool{false, true} {
		for _, c := range counts {
			for _, seq := range []bool{true, false} {
				var r *bench.Runner
				if recycled {
					r = bench.NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll, Subsumption: true})
				} else {
					r = bench.NewNaive(db.Cat, false)
				}
				if seq {
					r.Workers = 1
				} else {
					r.Workers = workers
				}
				r.Warmup(warm)
				rows = append(rows, bench.SkyMultiClient(r, w, c))
				if r.Rec != nil {
					r.Rec.Close()
				}
			}
		}
	}
	bench.PrintMT(os.Stdout, rows)
	for _, r := range rows {
		report.AddMT(r)
	}
	fmt.Println()
}

// runServe measures the recycler over the wire: an in-process HTTP
// server (the same stack cmd/reprod runs) is driven by `clients`
// closed-loop workers for `dur`, once without and once with a shared
// recycler. The workload is the SkyServer SQL mix, so overlapping
// bounding-box searches from different clients meet in the pool.
func runServe(db *sky.DB, n, clients int, dur time.Duration, seed int64, report *bench.Report) {
	fmt.Printf("== Closed-loop HTTP load: %d clients for %v per configuration ==\n", clients, dur)
	queries := bench.SkySQLWorkload(n, seed)
	var rows []bench.LoadResult
	for _, recycled := range []bool{false, true} {
		opts := []repro.Option{}
		label := "naive"
		if recycled {
			label = "recycled"
			opts = append(opts, repro.WithRecycler(recycler.Config{
				Admission: recycler.KeepAll, Subsumption: true,
			}))
		}
		eng := repro.NewEngine(db.Cat, opts...)
		srv := server.New(eng, server.Config{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			fmt.Fprintf(os.Stderr, "listen: %v\n", err)
			os.Exit(1)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)

		res := bench.HTTPLoad("http://"+ln.Addr().String(), queries, clients, dur)
		res.Label = label
		rows = append(rows, res)

		st := srv.Stats()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		hs.Shutdown(ctx)
		srv.Shutdown(ctx)
		cancel()
		if recycled {
			fmt.Printf("   pool after run: %d entries / %d KB, %d reuses, active queries %d\n",
				st.Engine.Recycler.Entries, st.Engine.Recycler.Bytes/1024,
				st.Engine.Recycler.Reuses, st.Engine.ActiveQueries)
			fmt.Printf("   recycler lock wait: writer %v (%d blocked), shards %v (%d blocked)\n",
				st.Engine.Recycler.WriterLockWait.Round(time.Microsecond), st.Engine.Recycler.WriterLockWaits,
				st.Engine.Recycler.ShardLockWait.Round(time.Microsecond), st.Engine.Recycler.ShardLockWaits)
		}
		if rec := eng.Recycler(); rec != nil {
			rec.Close()
		}
	}
	bench.PrintLoad(os.Stdout, rows)
	for _, r := range rows {
		report.AddServe(r)
	}
	if rows[0].QPS > 0 {
		fmt.Printf("over-the-wire speedup (recycled/naive QPS): %.2fx\n", rows[1].QPS/rows[0].QPS)
	}
	fmt.Println()
}

func runSubsume(db *sky.DB, seeds int, s float64, seed int64) {
	for _, k := range []int{2, 4} {
		nSeeds := seeds
		if k == 2 {
			nSeeds = seeds * 5 / 3 // B2 uses 20 seeds vs B4's 12 in the paper
		}
		fmt.Printf("== Fig. 15: combined subsumption micro-benchmark B%d (%d seeds, s=%.2f) ==\n", k, nSeeds, s)
		mb := sky.GenMicroBench(k, nSeeds, s, seed)
		bench.PrintFig15(os.Stdout, k, bench.SkySubsume(db, mb))
		fmt.Println()
	}
}
