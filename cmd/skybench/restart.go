package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/bench"
	"repro/internal/catalog"
	"repro/internal/recycler"
	"repro/internal/server"
	"repro/internal/sky"
	"repro/internal/store"
)

// This file implements the restart experiment: the scenario class the
// durable store (internal/store) exists for. A server is booted on a
// fresh data directory, warmed with the SkyServer workload, and shut
// down gracefully (pool demoted to the disk tier, final checkpoint).
// The "restarted" server then recovers the catalog from snapshot + WAL
// tail and is measured twice over HTTP on the first `first` queries:
// cold (empty pool, the state every pre-store deploy woke up in) and
// warm (pool pre-warmed from the spill tier). The warm run must show
// pool hits on the very first iteration — reuse before any
// recomputation has happened in the new process.

// restartConfig parametrises the experiment.
type restartConfig struct {
	Dir     string // data directory (typically a temp dir)
	Objects int    // sky object count
	N       int    // workload size used to warm the first life
	First   int    // first-N queries measured after restart
	Seed    int64  // workload seed (reproducible across hosts)
	DBSeed  int64  // generator seed
}

// restartPhase is one measured serving phase after the restart.
type restartPhase struct {
	Label     string
	Total     time.Duration // wall time of the first N queries
	Avg       time.Duration
	Hits      int // non-bind pool hits reported by those queries
	FirstHits int // pool hits of the very first query — the warm-start proof
	Reuses    int64
	Prewarmed int
}

// restartWire mirrors the response and /stats slices the experiment
// reads off the wire.
type restartWire struct {
	Stats struct {
		HitsNonBind int `json:"hits_nonbind"`
	} `json:"stats"`
	Error string `json:"error"`
}

type restartStatsWire struct {
	Engine struct {
		Recycler struct {
			Entries      int
			Reuses       int64
			Spilled      int64
			Reloaded     int64
			Prewarmed    int64
			StaleDropped int64
		}
	} `json:"engine"`
}

// runRestartExperiment executes the full cycle and renders its report.
// The returned phases are (cold, warm).
func runRestartExperiment(w io.Writer, cfg restartConfig) ([2]restartPhase, error) {
	var out [2]restartPhase
	queries := bench.SkySQLWorkload(cfg.N, cfg.Seed)
	first := cfg.First
	if first <= 0 || first > len(queries) {
		first = len(queries)
	}

	// --- first life: bootstrap, warm, graceful shutdown ---------------
	st, err := store.Open(cfg.Dir, store.Options{})
	if err != nil {
		return out, err
	}
	db := sky.Generate(cfg.Objects, cfg.DBSeed)
	if err := st.Bootstrap(db.Cat); err != nil {
		return out, err
	}
	eng := repro.NewEngine(db.Cat, repro.WithRecycler(recycler.Config{
		Admission: recycler.KeepAll, Subsumption: true, Spill: st.Spill(),
	}))
	for _, q := range queries {
		if _, err := eng.ExecSQL(q); err != nil {
			return out, fmt.Errorf("warmup query: %w", err)
		}
	}
	poolEntries := eng.Recycler().PoolLen()
	poolKB := eng.Recycler().PoolBytes() / 1024
	spilled := eng.Recycler().SpillAll()
	if err := st.Checkpoint(); err != nil {
		return out, err
	}
	if err := st.Close(); err != nil {
		return out, err
	}
	eng.Recycler().Close()
	fmt.Fprintf(w, "boot:    %d queries warmed %d pool entries (%d KB); shutdown demoted %d to disk\n",
		len(queries), poolEntries, poolKB, spilled)

	// --- restart: recover the catalog once, serve it twice ------------
	st2, err := store.Open(cfg.Dir, store.Options{})
	if err != nil {
		return out, err
	}
	cat, err := st2.Recover()
	if err != nil {
		return out, err
	}
	fmt.Fprintf(w, "recover: snapshot + %d WAL records (commit seq %d)\n", st2.Replayed, cat.CommitSeq())

	cold, err := measureRestartPhase(w, "cold", cat, nil, queries[:first])
	if err != nil {
		return out, err
	}
	warm, err := measureRestartPhase(w, "warm", cat, st2.Spill(), queries[:first])
	if err != nil {
		return out, err
	}
	if err := st2.Close(); err != nil {
		return out, err
	}
	out[0], out[1] = cold, warm

	fmt.Fprintf(w, "\nfirst %d queries after restart (HTTP, single client):\n", first)
	for _, p := range out {
		pre := ""
		if p.Label == "warm" {
			pre = fmt.Sprintf("  (prewarmed %d entries)", p.Prewarmed)
		}
		fmt.Fprintf(w, "  %-5s total %-10v avg %-10v hits %-4d first-query hits %-3d reuses %d%s\n",
			p.Label, p.Total.Round(time.Microsecond), p.Avg.Round(time.Microsecond),
			p.Hits, p.FirstHits, p.Reuses, pre)
	}
	if cold.Total > 0 && warm.Total > 0 {
		fmt.Fprintf(w, "warm/cold first-%d speedup: %.2fx\n", first, float64(cold.Total)/float64(warm.Total))
	}
	return out, nil
}

// measureRestartPhase serves the recovered catalog over HTTP with a
// fresh recycler (pre-warmed from the disk tier when one is given) and
// times the first queries of the workload from a single closed-loop
// client — the "first requests after a deploy" a user would feel.
func measureRestartPhase(w io.Writer, label string, cat *catalog.Catalog, tier *store.Spill, queries []string) (restartPhase, error) {
	phase := restartPhase{Label: label}
	cfg := recycler.Config{Admission: recycler.KeepAll, Subsumption: true}
	if tier != nil {
		cfg.Spill = tier
	}
	eng := repro.NewEngine(cat, repro.WithRecycler(cfg))
	defer eng.Recycler().Close()
	if tier != nil {
		phase.Prewarmed = eng.Recycler().Prewarm()
	}

	srv := server.New(eng, server.Config{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return phase, err
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	baseURL := "http://" + ln.Addr().String()
	client := &http.Client{Timeout: 30 * time.Second}

	start := time.Now()
	for i, q := range queries {
		body, _ := json.Marshal(map[string]string{"sql": q})
		resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
		if err != nil {
			return phase, err
		}
		var wire restartWire
		decErr := json.NewDecoder(resp.Body).Decode(&wire)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if decErr != nil || resp.StatusCode != http.StatusOK {
			return phase, fmt.Errorf("query failed (%d): %s %v", resp.StatusCode, wire.Error, decErr)
		}
		phase.Hits += wire.Stats.HitsNonBind
		if i == 0 {
			phase.FirstHits = wire.Stats.HitsNonBind
		}
	}
	phase.Total = time.Since(start)
	if len(queries) > 0 {
		phase.Avg = phase.Total / time.Duration(len(queries))
	}

	// The acceptance signal: /stats must report the pool reuses (and,
	// warm, the spill counters) the phase produced.
	if resp, err := client.Get(baseURL + "/stats"); err == nil {
		var st restartStatsWire
		json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		phase.Reuses = st.Engine.Recycler.Reuses
		if tier != nil {
			fmt.Fprintf(w, "  /stats[%s]: entries=%d reuses=%d spilled=%d reloaded=%d prewarmed=%d stale=%d\n",
				label, st.Engine.Recycler.Entries, st.Engine.Recycler.Reuses,
				st.Engine.Recycler.Spilled, st.Engine.Recycler.Reloaded,
				st.Engine.Recycler.Prewarmed, st.Engine.Recycler.StaleDropped)
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	hs.Shutdown(ctx)
	srv.Shutdown(ctx)
	cancel()
	return phase, nil
}
