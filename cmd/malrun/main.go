// Command malrun parses a textual query-template file (the MAL-like
// plan format of mal.ParseTemplate, matching the paper's Fig. 1
// listings) and executes it against a generated database, optionally
// with the recycler enabled. It demonstrates the engine's plan
// tooling: templates are plain text, get optimizer-marked, and can be
// executed repeatedly with different parameters to observe recycling.
//
// Usage:
//
//	malrun -db tpch -sf 0.01 -params "1996-07-01,3" -repeat 2 plan.mal
//	malrun -db sky -objects 50000 -params "195,198" plan.mal
//
// Parameters are comma-separated literals matched against the
// template's declared parameter kinds.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
	"repro/internal/sky"
	"repro/internal/tpch"
)

func main() {
	db := flag.String("db", "tpch", "database to generate: tpch or sky")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	objects := flag.Int("objects", 50000, "sky object count")
	params := flag.String("params", "", "comma-separated parameter literals")
	repeat := flag.Int("repeat", 1, "number of executions (recycling shows from the second)")
	noRecycle := flag.Bool("norecycle", false, "disable the recycler")
	dumpPool := flag.Bool("dump", false, "dump the recycle pool after the runs")
	flag.Parse()

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: malrun [flags] <plan.mal>")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	tmpl, err := mal.ParseTemplate(string(src))
	if err != nil {
		fatal(err)
	}
	opt.Optimize(tmpl, opt.Options{})
	fmt.Printf("parsed template %s (%d instructions, %d marked for recycling)\n",
		tmpl.Name, len(tmpl.Instrs), tmpl.MarkedCount(false))

	var cat *catalog.Catalog
	switch *db {
	case "tpch":
		cat = tpch.Generate(*sf, 7).Cat
	case "sky":
		cat = sky.Generate(*objects, 17).Cat
	default:
		fatal(fmt.Errorf("unknown db %q", *db))
	}

	vals, err := parseParams(tmpl, *params)
	if err != nil {
		fatal(err)
	}

	var rec *recycler.Recycler
	if !*noRecycle {
		rec = recycler.New(cat, recycler.Config{
			Admission: recycler.KeepAll, Subsumption: true, CombinedSubsumption: true,
		})
	}
	for i := 1; i <= *repeat; i++ {
		ctx := &mal.Ctx{Cat: cat, QueryID: uint64(i)}
		if rec != nil {
			ctx.Hook = rec
			rec.BeginQuery(uint64(i), tmpl.ID)
		}
		start := time.Now()
		if err := mal.Run(ctx, tmpl, vals...); err != nil {
			fatal(err)
		}
		if rec != nil {
			rec.EndQuery(uint64(i))
		}
		elapsed := time.Since(start)
		fmt.Printf("run %d: %v (hits %d/%d, subsumed %d)\n", i,
			elapsed.Round(time.Microsecond), ctx.Stats.Hits, ctx.Stats.Marked, ctx.Stats.Subsumed)
		for _, r := range ctx.Results {
			fmt.Printf("  %s = %s\n", r.Name, renderResult(r.Val))
		}
	}
	if rec != nil && *dumpPool {
		fmt.Println()
		fmt.Print(rec.DumpPool())
	}
}

func renderResult(v mal.Value) string {
	if v.Kind == mal.VBat {
		return v.Bat.Dump(8)
	}
	return v.String()
}

// parseParams converts the comma-separated literal list against the
// template's declared parameter kinds.
func parseParams(t *mal.Template, s string) ([]mal.Value, error) {
	var toks []string
	if strings.TrimSpace(s) != "" {
		toks = strings.Split(s, ",")
	}
	if len(toks) != len(t.Params) {
		return nil, fmt.Errorf("template %s needs %d parameters, got %d", t.Name, len(t.Params), len(toks))
	}
	out := make([]mal.Value, len(toks))
	for i, tok := range toks {
		tok = strings.TrimSpace(tok)
		p := t.Params[i]
		switch p.Kind {
		case mal.VInt:
			n, err := strconv.ParseInt(tok, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("param %s: %w", p.Name, err)
			}
			out[i] = mal.IntV(n)
		case mal.VFloat:
			f, err := strconv.ParseFloat(tok, 64)
			if err != nil {
				return nil, fmt.Errorf("param %s: %w", p.Name, err)
			}
			out[i] = mal.FloatV(f)
		case mal.VStr:
			out[i] = mal.StrV(tok)
		case mal.VDate:
			d, err := parseDate(tok)
			if err != nil {
				return nil, fmt.Errorf("param %s: %w", p.Name, err)
			}
			out[i] = mal.DateV(d)
		case mal.VBool:
			out[i] = mal.BoolV(tok == "true")
		default:
			return nil, fmt.Errorf("param %s: unsupported kind %v", p.Name, p.Kind)
		}
	}
	return out, nil
}

func parseDate(tok string) (bat.Date, error) {
	if len(tok) != 10 || tok[4] != '-' || tok[7] != '-' {
		return 0, fmt.Errorf("bad date %q (want YYYY-MM-DD)", tok)
	}
	y, _ := strconv.Atoi(tok[:4])
	m, _ := strconv.Atoi(tok[5:7])
	d, _ := strconv.Atoi(tok[8:])
	return algebra.MkDate(y, m, d), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "malrun:", err)
	os.Exit(1)
}
