// Command sqlshell is an interactive shell over the engine: SQL
// queries (the sqlfe subset) run against a generated TPC-H or
// SkyServer database with the recycler enabled, printing results
// together with the pool statistics after every statement — a live
// view of the paper's mechanism.
//
// Usage:
//
//	sqlshell -db tpch -sf 0.01
//	sqlshell -db sky -objects 50000
//
// Shell commands: \pool dumps the recycle pool, \reset empties it,
// \q quits. EXPLAIN ANALYZE <sql> executes the query and renders the
// per-instruction trace (timings, rows, recycler decision reasons)
// instead of the result rows. Everything else is parsed as SQL.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/recycler"
	"repro/internal/sky"
	"repro/internal/sqlfe"
	"repro/internal/tpch"
	"repro/internal/trace"
)

func main() {
	db := flag.String("db", "tpch", "database to generate: tpch or sky")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	objects := flag.Int("objects", 50000, "sky object count")
	noRecycle := flag.Bool("norecycle", false, "disable the recycler")
	flag.Parse()

	var cat *catalog.Catalog
	switch *db {
	case "tpch":
		d := tpch.Generate(*sf, 7)
		cat = d.Cat
		fmt.Printf("TPC-H SF %.3f: %d orders, %d lineitems\n", *sf, d.Orders, d.Lineitems)
	case "sky":
		d := sky.Generate(*objects, 17)
		cat = d.Cat
		fmt.Printf("SkyServer: %d objects\n", d.Objects)
	default:
		fmt.Fprintf(os.Stderr, "unknown db %q\n", *db)
		os.Exit(2)
	}

	fe := sqlfe.NewFrontend(cat)
	var rec *recycler.Recycler
	if !*noRecycle {
		rec = recycler.New(cat, recycler.Config{
			Admission: recycler.KeepAll, Subsumption: true, CombinedSubsumption: true,
		})
		fmt.Println("recycler: keepall, subsumption on (\\pool to inspect, \\q to quit)")
	}

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	qid := uint64(0)
	fmt.Print("sql> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "":
		case line == `\q` || line == "quit" || line == "exit":
			return
		case line == `\pool`:
			if rec != nil {
				fmt.Print(rec.DumpPool())
			} else {
				fmt.Println("recycler disabled")
			}
		case line == `\stats`:
			if rec != nil {
				s := rec.Snapshot()
				fmt.Printf("pool: %d entries / %d KB (%d reused / %d KB reused)\n",
					s.Entries, s.Bytes/1024, s.ReusedEntries, s.ReusedBytes/1024)
				fmt.Printf("lifetime: %d admitted, %d evicted, %d invalidated\n",
					s.Admitted, s.Evicted, s.Invalidated)
			}
		case line == `\reset`:
			if rec != nil {
				rec.Reset()
				fmt.Println("pool cleared")
			}
		default:
			qid++
			if rest, ok := stripExplainAnalyze(line); ok {
				explainAnalyze(fe, cat, rec, qid, rest)
			} else {
				runSQL(fe, cat, rec, qid, line)
			}
		}
		fmt.Print("sql> ")
	}
}

// stripExplainAnalyze detects a leading "EXPLAIN ANALYZE" (any case)
// and returns the statement after it.
func stripExplainAnalyze(line string) (string, bool) {
	fields := strings.Fields(line)
	if len(fields) < 3 ||
		!strings.EqualFold(fields[0], "explain") || !strings.EqualFold(fields[1], "analyze") {
		return line, false
	}
	return strings.Join(fields[2:], " "), true
}

// explainAnalyze executes the statement with a trace recorder attached
// and renders the span table instead of the result rows.
func explainAnalyze(fe *sqlfe.Frontend, cat *catalog.Catalog, rec *recycler.Recycler, qid uint64, src string) {
	tmpl, params, tm, err := fe.CompileTimed(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	trec := trace.NewRecorder(qid, src, len(tmpl.Instrs))
	trec.SetStages(tm.Parse, tm.Optimize)
	ctx := &mal.Ctx{Cat: cat, QueryID: qid, Trace: trec}
	if rec != nil {
		ctx.Hook = rec
		rec.BeginQuery(qid, tmpl.ID)
		defer rec.EndQuery(qid)
	}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		fmt.Println("error:", err)
		return
	}
	qt := trec.Finish(tmpl.Name, ctx.Stats.Elapsed)
	qt.Format(os.Stdout)
	for _, r := range ctx.Results {
		if r.Val.Kind == mal.VBat {
			fmt.Printf("-- result %s: %d tuples\n", r.Name, r.Val.Bat.Len())
		} else {
			fmt.Printf("-- result %s = %s\n", r.Name, r.Val.String())
		}
	}
}

func runSQL(fe *sqlfe.Frontend, cat *catalog.Catalog, rec *recycler.Recycler, qid uint64, src string) {
	tmpl, params, err := fe.Compile(src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ctx := &mal.Ctx{Cat: cat, QueryID: qid}
	if rec != nil {
		ctx.Hook = rec
		rec.BeginQuery(qid, tmpl.ID)
		defer rec.EndQuery(qid)
	}
	start := time.Now()
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		fmt.Println("error:", err)
		return
	}
	elapsed := time.Since(start)
	for _, r := range ctx.Results {
		if r.Val.Kind == mal.VBat {
			fmt.Printf("%s = %s\n", r.Name, r.Val.Bat.Dump(10))
		} else {
			fmt.Printf("%s = %s\n", r.Name, r.Val.String())
		}
	}
	if rec != nil {
		fmt.Printf("-- %v, hits %d/%d, subsumed %d, pool %d entries / %d KB\n",
			elapsed.Round(time.Microsecond),
			ctx.Stats.HitsNonBind, ctx.Stats.MarkedNonBind, ctx.Stats.Subsumed,
			rec.PoolLen(), rec.PoolBytes()/1024)
	} else {
		fmt.Printf("-- %v\n", elapsed.Round(time.Microsecond))
	}
}
