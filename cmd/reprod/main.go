// Command reprod runs the engine as a network service: a generated
// SkyServer or TPC-H catalog served over HTTP/JSON and a line-oriented
// TCP protocol, with every client's queries sharing one recycle pool —
// the paper's multi-user setting (§8) as a long-running server.
//
// Usage:
//
//	reprod -db sky -objects 200000 -http :8080 -tcp :5432
//	reprod -db tpch -sf 0.05 -admission crd -credits 5 -eviction lru -maxbytes 64000000
//	reprod -db sky -data-dir /var/lib/reprod -checkpoint-interval 5m -spill-budget 268435456
//
// Endpoints:
//
//	POST /query   {"sql": "SELECT ..."}  -> rows + per-query recycler stats
//	              (?trace=1 adds the per-instruction trace as JSON)
//	POST /exec    {"sql": "INSERT ..."}  -> rows affected (INSERT/DELETE subset)
//	GET  /stats   engine + server counters as JSON
//	GET  /metrics Prometheus text format (counters + stage histograms)
//	GET  /healthz liveness probe
//	GET  /debug/queries  recent-query ring + slow-query log + event ring
//	GET  /debug/pprof/   standard net/http/pprof profiles
//
// With -data-dir set the server is durable: committed DML is WAL-
// logged (fsync-batched), checkpoints fold the log into a columnar
// snapshot, evicted recycle pool entries are demoted to a disk tier
// instead of destroyed, and a restart recovers the catalog
// (snapshot + WAL tail) and pre-warms the pool from the surviving
// spilled entries — the first queries after a deploy hit instead of
// paying full naive cost.
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close, queued
// statements are refused, in-flight queries drain (releasing their
// recycle pool pins) and their count is logged; if the drain deadline
// is exceeded the process reports the stragglers and exits non-zero.
// A durable server then demotes the warm pool to the disk tier and
// takes a final checkpoint.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/recycler"
	"repro/internal/server"
	"repro/internal/sky"
	"repro/internal/store"
	"repro/internal/tpch"
	"repro/internal/trace"
)

func main() { os.Exit(run()) }

func run() int {
	db := flag.String("db", "sky", "database to generate: sky or tpch")
	objects := flag.Int("objects", 200000, "sky object count")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	httpAddr := flag.String("http", ":8080", "HTTP listen address")
	tcpAddr := flag.String("tcp", "", "TCP protocol listen address (empty = disabled)")
	maxConc := flag.Int("max-concurrency", 0, "admission gate width (0 = 2*GOMAXPROCS)")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "max wait for an execution slot (0 = as long as the client waits)")
	maxRows := flag.Int("max-rows", 1000, "per-column row cap on responses")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	workers := flag.Int("workers", 0, "per-query dataflow workers (0 = GOMAXPROCS, 1 = sequential)")

	noRecycle := flag.Bool("norecycle", false, "disable the recycler (baseline serving)")
	admission := flag.String("admission", "keepall", "admission policy: keepall, crd or adapt")
	credits := flag.Int("credits", 3, "credit count k for crd/adapt")
	eviction := flag.String("eviction", "lru", "eviction policy: lru, bp or hp")
	maxBytes := flag.Int64("maxbytes", 0, "recycle pool byte limit (0 = unlimited)")
	maxEntries := flag.Int("maxentries", 0, "recycle pool entry limit (0 = unlimited)")
	subsume := flag.Bool("subsume", true, "enable singleton subsumption")
	combined := flag.Bool("combined", false, "enable combined subsumption (Algorithm 2)")
	syncMode := flag.String("sync", "invalidate", "update synchronisation: invalidate, propagate or maintain")

	slowQueryMS := flag.Int("slow-query-ms", 500, "slow-query log threshold in milliseconds (0 = slow log off)")
	traceRing := flag.Int("trace-ring", 64, "recent-query/slow/event ring sizes for /debug/queries")
	noTrace := flag.Bool("notrace", false, "disable the tracer (no per-query traces, histograms stay zero)")

	dataDir := flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
	ckptInterval := flag.Duration("checkpoint-interval", 5*time.Minute, "periodic checkpoint cadence (0 = only at shutdown)")
	spillBudget := flag.Int64("spill-budget", 0, "disk tier byte cap for demoted pool entries (0 = unlimited)")
	walSync := flag.Duration("wal-sync", 2*time.Millisecond, "WAL fsync batching window (0 = fsync every commit)")
	flag.Parse()

	var tr *trace.Tracer
	if !*noTrace {
		tr = trace.New(trace.Config{
			SlowQuery: time.Duration(*slowQueryMS) * time.Millisecond,
			RingSize:  *traceRing,
		})
	}

	// --- storage: recover a durable catalog or generate a fresh one ---
	var st *store.Store
	var cat *catalog.Catalog
	if *dataDir != "" {
		storeOpts := store.Options{SyncEvery: *walSync, SpillBudget: *spillBudget}
		if tr != nil {
			// The fsync callback can run inside the catalog's commit hook,
			// so it only feeds the wait-free histogram — never the tracer's
			// event ring.
			m := tr.Metrics()
			storeOpts.OnFsync = func(records int, d time.Duration) { m.WALFsync.Observe(d) }
		}
		var err error
		st, err = store.Open(*dataDir, storeOpts)
		if err != nil {
			log.Print(err)
			return 1
		}
		if st.HasSnapshot() {
			cat, err = st.Recover()
			if err != nil {
				log.Print(err)
				return 1
			}
			torn := ""
			if st.TornTail {
				torn = " (torn final record discarded)"
			}
			fmt.Printf("store: recovered %s (commit seq %d, %d WAL records replayed%s)\n",
				*dataDir, cat.CommitSeq(), st.Replayed, torn)
		} else {
			var desc string
			cat, desc = generate(*db, *objects, *sf)
			fmt.Println(desc)
			// A fresh lineage: spilled entries from a previous life must
			// not alias the new catalog's table versions.
			st.Spill().Purge()
			if err := st.Bootstrap(cat); err != nil {
				log.Print(err)
				return 1
			}
			fmt.Printf("store: bootstrapped %s (initial checkpoint at commit seq %d)\n", *dataDir, cat.CommitSeq())
		}
	} else {
		var desc string
		cat, desc = generate(*db, *objects, *sf)
		fmt.Println(desc)
	}

	opts := []repro.Option{repro.WithWorkers(*workers)}
	if tr != nil {
		opts = append(opts, repro.WithTracer(tr))
		fmt.Printf("trace: ring=%d slow-query=%dms (/debug/queries, ?trace=1, pprof on /debug/pprof/)\n",
			*traceRing, *slowQueryMS)
	}
	if !*noRecycle {
		cfg, err := recyclerConfig(*admission, *credits, *eviction, *maxBytes, *maxEntries, *subsume, *combined, *syncMode)
		if err != nil {
			log.Print(err)
			return 1
		}
		if st != nil {
			cfg.Spill = st.Spill()
		}
		opts = append(opts, repro.WithRecycler(cfg))
		fmt.Printf("recycler: admission=%s eviction=%s subsume=%v combined=%v sync=%s spill=%v\n",
			*admission, *eviction, *subsume, *combined, *syncMode, st != nil)
	} else {
		fmt.Println("recycler: disabled")
	}
	eng := repro.NewEngine(cat, opts...)
	if rec := eng.Recycler(); rec != nil && st != nil {
		if n := rec.Prewarm(); n > 0 {
			fmt.Printf("store: pre-warmed %d pool entries from the disk tier\n", n)
		}
	}
	srv := server.New(eng, server.Config{
		MaxConcurrency: *maxConc,
		QueueTimeout:   *queueTimeout,
		MaxRows:        *maxRows,
	})

	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() {
		fmt.Printf("http: listening on %s\n", *httpAddr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Print(err)
			return 1
		}
		fmt.Printf("tcp: listening on %s\n", *tcpAddr)
		go func() {
			if err := srv.ServeTCP(ln); err != nil {
				errc <- err
			}
		}()
	}

	// Periodic checkpoints fold the WAL back into the snapshot while
	// the server runs; a failure is logged, never fatal.
	ckptStop := make(chan struct{})
	if st != nil && *ckptInterval > 0 {
		go func() {
			t := time.NewTicker(*ckptInterval)
			defer t.Stop()
			for {
				select {
				case <-t.C:
					if err := st.Checkpoint(); err != nil {
						log.Printf("checkpoint: %v", err)
					}
				case <-ckptStop:
					return
				}
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("\n%v: draining (budget %v) ...\n", sig, *drainTimeout)
	case err := <-errc:
		log.Printf("serve error: %v; shutting down", err)
	}
	close(ckptStop)

	exit := 0
	inflight := srv.Stats().Server.Active
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		remaining := srv.Stats().Server.Active
		fmt.Printf("drain deadline exceeded after %v: %d of %d in-flight statements still running\n",
			*drainTimeout, remaining, inflight)
		exit = 1
	} else {
		fmt.Printf("drained %d in-flight statements within budget\n", inflight)
	}

	st2 := srv.Stats()
	fmt.Printf("served %d queries, %d execs (%d errors, %d rejected)\n",
		st2.Server.Queries, st2.Server.Execs, st2.Server.Errors, st2.Server.Rejected)
	if st2.Engine.Recycling {
		fmt.Printf("pool: %d entries / %d KB, %d reuses, %d invalidated; active queries at exit: %d\n",
			st2.Engine.Recycler.Entries, st2.Engine.Recycler.Bytes/1024,
			st2.Engine.Recycler.Reuses, st2.Engine.Recycler.Invalidated,
			st2.Engine.ActiveQueries)
	}

	// Durable shutdown: demote the warm pool so a restart pre-warms,
	// then checkpoint so a restart replays nothing.
	if st != nil {
		if rec := eng.Recycler(); rec != nil {
			n := rec.SpillAll()
			fmt.Printf("store: demoted %d pool entries to the disk tier\n", n)
		}
		if err := st.Checkpoint(); err != nil {
			log.Printf("final checkpoint: %v", err)
			exit = 1
		}
		if err := st.Close(); err != nil {
			log.Printf("store close: %v", err)
			exit = 1
		}
	}
	return exit
}

func generate(db string, objects int, sf float64) (*catalog.Catalog, string) {
	switch db {
	case "sky":
		d := sky.Generate(objects, 17)
		return d.Cat, fmt.Sprintf("SkyServer: %d objects", d.Objects)
	case "tpch":
		d := tpch.Generate(sf, 7)
		return d.Cat, fmt.Sprintf("TPC-H SF %.3f: %d orders, %d lineitems", sf, d.Orders, d.Lineitems)
	}
	log.Fatalf("unknown db %q (want sky or tpch)", db)
	return nil, ""
}

func recyclerConfig(admission string, credits int, eviction string, maxBytes int64, maxEntries int, subsume, combined bool, syncMode string) (recycler.Config, error) {
	cfg := recycler.Config{
		Credits:             credits,
		MaxBytes:            maxBytes,
		MaxEntries:          maxEntries,
		Subsumption:         subsume,
		CombinedSubsumption: combined,
	}
	switch admission {
	case "keepall":
		cfg.Admission = recycler.KeepAll
	case "crd":
		cfg.Admission = recycler.Credit
	case "adapt":
		cfg.Admission = recycler.Adapt
	default:
		return cfg, fmt.Errorf("unknown admission policy %q (want keepall, crd or adapt)", admission)
	}
	switch eviction {
	case "lru":
		cfg.Eviction = recycler.EvictLRU
	case "bp":
		cfg.Eviction = recycler.EvictBP
	case "hp":
		cfg.Eviction = recycler.EvictHP
	default:
		return cfg, fmt.Errorf("unknown eviction policy %q (want lru, bp or hp)", eviction)
	}
	switch syncMode {
	case "invalidate":
		cfg.Sync = recycler.SyncInvalidate
	case "propagate":
		cfg.Sync = recycler.SyncPropagate
	case "maintain":
		cfg.Sync = recycler.SyncMaintain
	default:
		return cfg, fmt.Errorf("unknown sync mode %q (want invalidate, propagate or maintain)", syncMode)
	}
	return cfg, nil
}
