// Command reprod runs the engine as a network service: a generated
// SkyServer or TPC-H catalog served over HTTP/JSON and a line-oriented
// TCP protocol, with every client's queries sharing one recycle pool —
// the paper's multi-user setting (§8) as a long-running server.
//
// Usage:
//
//	reprod -db sky -objects 200000 -http :8080 -tcp :5432
//	reprod -db tpch -sf 0.05 -admission crd -credits 5 -eviction lru -maxbytes 64000000
//
// Endpoints:
//
//	POST /query   {"sql": "SELECT ..."}  -> rows + per-query recycler stats
//	POST /exec    {"sql": "INSERT ..."}  -> rows affected (INSERT/DELETE subset)
//	GET  /stats   engine + server counters as JSON
//	GET  /metrics Prometheus text format
//	GET  /healthz liveness probe
//
// SIGINT/SIGTERM trigger a graceful shutdown: listeners close, queued
// statements are refused, in-flight queries drain (releasing their
// recycle pool pins), and the process reports the final pool state.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/catalog"
	"repro/internal/recycler"
	"repro/internal/server"
	"repro/internal/sky"
	"repro/internal/tpch"
)

func main() {
	db := flag.String("db", "sky", "database to generate: sky or tpch")
	objects := flag.Int("objects", 200000, "sky object count")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	httpAddr := flag.String("http", ":8080", "HTTP listen address")
	tcpAddr := flag.String("tcp", "", "TCP protocol listen address (empty = disabled)")
	maxConc := flag.Int("max-concurrency", 0, "admission gate width (0 = 2*GOMAXPROCS)")
	queueTimeout := flag.Duration("queue-timeout", 5*time.Second, "max wait for an execution slot (0 = as long as the client waits)")
	maxRows := flag.Int("max-rows", 1000, "per-column row cap on responses")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	workers := flag.Int("workers", 0, "per-query dataflow workers (0 = GOMAXPROCS, 1 = sequential)")

	noRecycle := flag.Bool("norecycle", false, "disable the recycler (baseline serving)")
	admission := flag.String("admission", "keepall", "admission policy: keepall, crd or adapt")
	credits := flag.Int("credits", 3, "credit count k for crd/adapt")
	eviction := flag.String("eviction", "lru", "eviction policy: lru, bp or hp")
	maxBytes := flag.Int64("maxbytes", 0, "recycle pool byte limit (0 = unlimited)")
	maxEntries := flag.Int("maxentries", 0, "recycle pool entry limit (0 = unlimited)")
	subsume := flag.Bool("subsume", true, "enable singleton subsumption")
	combined := flag.Bool("combined", false, "enable combined subsumption (Algorithm 2)")
	syncMode := flag.String("sync", "invalidate", "update synchronisation: invalidate or propagate")
	flag.Parse()

	cat, desc := generate(*db, *objects, *sf)
	fmt.Println(desc)

	opts := []repro.Option{repro.WithWorkers(*workers)}
	if !*noRecycle {
		cfg, err := recyclerConfig(*admission, *credits, *eviction, *maxBytes, *maxEntries, *subsume, *combined, *syncMode)
		if err != nil {
			log.Fatal(err)
		}
		opts = append(opts, repro.WithRecycler(cfg))
		fmt.Printf("recycler: admission=%s eviction=%s subsume=%v combined=%v sync=%s\n",
			*admission, *eviction, *subsume, *combined, *syncMode)
	} else {
		fmt.Println("recycler: disabled")
	}
	eng := repro.NewEngine(cat, opts...)
	srv := server.New(eng, server.Config{
		MaxConcurrency: *maxConc,
		QueueTimeout:   *queueTimeout,
		MaxRows:        *maxRows,
	})

	httpSrv := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
	errc := make(chan error, 2)
	go func() {
		fmt.Printf("http: listening on %s\n", *httpAddr)
		if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			errc <- err
		}
	}()
	if *tcpAddr != "" {
		ln, err := net.Listen("tcp", *tcpAddr)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("tcp: listening on %s\n", *tcpAddr)
		go func() {
			if err := srv.ServeTCP(ln); err != nil {
				errc <- err
			}
		}()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("\n%v: draining (budget %v) ...\n", sig, *drainTimeout)
	case err := <-errc:
		log.Printf("serve error: %v; shutting down", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	st := srv.Stats()
	fmt.Printf("served %d queries, %d execs (%d errors, %d rejected)\n",
		st.Server.Queries, st.Server.Execs, st.Server.Errors, st.Server.Rejected)
	if st.Engine.Recycling {
		fmt.Printf("pool: %d entries / %d KB, %d reuses, %d invalidated; active queries at exit: %d\n",
			st.Engine.Recycler.Entries, st.Engine.Recycler.Bytes/1024,
			st.Engine.Recycler.Reuses, st.Engine.Recycler.Invalidated,
			st.Engine.ActiveQueries)
	}
}

func generate(db string, objects int, sf float64) (*catalog.Catalog, string) {
	switch db {
	case "sky":
		d := sky.Generate(objects, 17)
		return d.Cat, fmt.Sprintf("SkyServer: %d objects", d.Objects)
	case "tpch":
		d := tpch.Generate(sf, 7)
		return d.Cat, fmt.Sprintf("TPC-H SF %.3f: %d orders, %d lineitems", sf, d.Orders, d.Lineitems)
	}
	log.Fatalf("unknown db %q (want sky or tpch)", db)
	return nil, ""
}

func recyclerConfig(admission string, credits int, eviction string, maxBytes int64, maxEntries int, subsume, combined bool, syncMode string) (recycler.Config, error) {
	cfg := recycler.Config{
		Credits:             credits,
		MaxBytes:            maxBytes,
		MaxEntries:          maxEntries,
		Subsumption:         subsume,
		CombinedSubsumption: combined,
	}
	switch admission {
	case "keepall":
		cfg.Admission = recycler.KeepAll
	case "crd":
		cfg.Admission = recycler.Credit
	case "adapt":
		cfg.Admission = recycler.Adapt
	default:
		return cfg, fmt.Errorf("unknown admission policy %q (want keepall, crd or adapt)", admission)
	}
	switch eviction {
	case "lru":
		cfg.Eviction = recycler.EvictLRU
	case "bp":
		cfg.Eviction = recycler.EvictBP
	case "hp":
		cfg.Eviction = recycler.EvictHP
	default:
		return cfg, fmt.Errorf("unknown eviction policy %q (want lru, bp or hp)", eviction)
	}
	switch syncMode {
	case "invalidate":
		cfg.Sync = recycler.SyncInvalidate
	case "propagate":
		cfg.Sync = recycler.SyncPropagate
	default:
		return cfg, fmt.Errorf("unknown sync mode %q (want invalidate or propagate)", syncMode)
	}
	return cfg, nil
}
