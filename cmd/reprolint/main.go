// Command reprolint runs the repo's four invariant analyzers
// (lockorder, atomicfield, singlesig, epochguard) over package
// patterns.
//
// Standalone mode (the canonical one, used by scripts/lint.sh and
// CI):
//
//	reprolint ./...
//	reprolint internal/recycler internal/catalog
//
// Findings print as "file:line:col: analyzer: message". A finding is
// suppressed by a "//lint:allow <analyzer> <reason>" comment on the
// same line or the line above; the driver prints per-analyzer
// suppression counts (and notes unused directives) so growth of the
// allow set stays visible in CI logs. Exit status is 1 when any
// unsuppressed finding remains, 0 otherwise.
//
// The tool also answers the go vet -vettool probe flags (-V=full,
// -flags) and accepts a unitchecker-style *.cfg argument, running
// the analyzers over the single package the cfg describes. Standalone
// mode remains canonical: the cfg path exists so `go vet
// -vettool=$(pwd)/bin/reprolint ./...` works in environments whose
// vet protocol matches; CI does not depend on it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/epochguard"
	"repro/internal/analysis/lockorder"
	"repro/internal/analysis/singlesig"
)

var analyzers = []*analysis.Analyzer{
	lockorder.Analyzer,
	atomicfield.Analyzer,
	singlesig.Analyzer,
	epochguard.Analyzer,
}

func main() {
	versionFlag := flag.String("V", "", "print version (go vet protocol)")
	flagsFlag := flag.Bool("flags", false, "print flag definitions as JSON (go vet protocol)")
	listFlag := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = usage
	flag.Parse()

	switch {
	case *versionFlag != "":
		// go vet probes with -V=full and hashes the output.
		fmt.Printf("reprolint version 1 buildID=reprolint-1\n")
		return
	case *flagsFlag:
		fmt.Println("[]")
		return
	case *listFlag:
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetCfg(args[0]))
	}
	os.Exit(runStandalone(args))
}

func usage() {
	fmt.Fprintf(os.Stderr, "usage: reprolint [packages]\n\nanalyzers:\n")
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with //lint:allow <analyzer> <reason> (see docs/LINTING.md)\n")
}

func runStandalone(patterns []string) int {
	fset, pkgs, err := analysis.Load(".", patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	sups, malformed := analysis.CollectSuppressions(fset, pkgs)
	diags = append(diags, malformed...)
	kept, suppressed := analysis.ApplySuppressions(diags, sups)
	analysis.SortDiagnostics(kept)
	for _, d := range kept {
		fmt.Printf("%s:%d:%d: %s: %s\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if s := analysis.SuppressionSummary(sups); s != "" {
		fmt.Print(s)
	}
	fmt.Printf("reprolint: %d finding(s), %d suppressed, %d package(s)\n",
		len(kept), len(suppressed), len(pkgs))
	if len(kept) > 0 {
		return 1
	}
	return 0
}

// vetConfig is the subset of the go vet unitchecker config reprolint
// reads.
type vetConfig struct {
	ID          string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// runVetCfg implements the unitchecker protocol far enough for
// `go vet -vettool=reprolint`: typecheck the unit from the cfg's file
// lists, run the analyzers, emit JSON diagnostics on stdout.
func runVetCfg(path string) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: parsing %s: %v\n", path, err)
		return 2
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("reprolint\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	exports := make(map[string]string, len(cfg.PackageFile))
	for importPath, file := range cfg.PackageFile {
		exports[importPath] = file
	}
	fset := token.NewFileSet()
	imp := analysis.ExportImporter(fset, exports)
	pkg, err := analysis.CheckFiles(fset, imp, cfg.ImportPath, cfg.GoFiles)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: typecheck %s: %v\n", cfg.ImportPath, err)
		return 1
	}
	pkgs := []*analysis.PackageInfo{pkg}
	diags, err := analysis.Run(fset, pkgs, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "reprolint: %v\n", err)
		return 1
	}
	sups, malformed := analysis.CollectSuppressions(fset, pkgs)
	diags = append(diags, malformed...)
	kept, _ := analysis.ApplySuppressions(diags, sups)
	// go vet units include _test.go files; reprolint's scope is
	// shipped code (see Load), so test-file findings are dropped.
	filtered := kept[:0]
	for _, d := range kept {
		if !strings.HasSuffix(d.Pos.Filename, "_test.go") {
			filtered = append(filtered, d)
		}
	}
	kept = filtered
	// unitchecker JSON shape: {pkg: {analyzer: [{posn, message}]}}.
	byAnalyzer := map[string][]map[string]string{}
	for _, d := range kept {
		byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], map[string]string{
			"posn":    fmt.Sprintf("%s:%d:%d", d.Pos.Filename, d.Pos.Line, d.Pos.Column),
			"message": d.Message,
		})
	}
	out := map[string]any{cfg.ImportPath: byAnalyzer}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "\t")
	if err := enc.Encode(out); err != nil {
		return 2
	}
	if len(kept) > 0 {
		return 2
	}
	return 0
}
