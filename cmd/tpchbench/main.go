// Command tpchbench regenerates the TPC-H experiments of the paper
// (Table II and Figures 4–13). See DESIGN.md for the experiment
// index.
//
// Usage:
//
//	tpchbench [flags] <experiment>
//
// Experiments:
//
//	table2      per-query commonality and savings (Table II)
//	micro       10-instance profile of one query (-q) (Figs. 4–5)
//	fig6        naive / recycle-first / recycle-avg summary (Fig. 6)
//	admission   credit/adapt sweep on the mixed batch (Figs. 7–9)
//	eviction    limited-pool sweep, -limit entries|memory (Figs. 10–11)
//	updates     refresh blocks every -k queries (Figs. 12–13)
//	all         everything above
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/tpch"
)

func main() {
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor")
	seed := flag.Int64("seed", 42, "workload random seed")
	qnum := flag.Int("q", 18, "query number for micro profiles")
	instances := flag.Int("instances", 10, "instances per query in micro profiles")
	limit := flag.String("limit", "entries", "eviction limit kind: entries or memory")
	k := flag.Int("k", 20, "queries per update block (updates experiment)")
	per := flag.Int("per", 20, "instances per query in the mixed batch")
	flag.Parse()

	exp := flag.Arg(0)
	if exp == "" {
		exp = "all"
	}

	fmt.Printf("# TPC-H experiments, SF=%.3f seed=%d\n", *sf, *seed)
	db := tpch.Generate(*sf, 7)
	fmt.Printf("# generated: %d orders, %d lineitems, %d customers\n\n",
		db.Orders, db.Lineitems, db.Customers)

	switch exp {
	case "table2":
		runTable2(db, *seed)
	case "micro":
		runMicro(db, *qnum, *instances, *seed)
	case "fig6":
		runFig6(db, *instances, *seed)
	case "admission":
		runAdmission(db, *per, *seed)
	case "eviction":
		runEviction(db, *limit, *per, *seed)
	case "updates":
		runUpdates(*sf, *per, *k, *seed)
	case "throughput":
		runThroughput(db, *per, *seed)
	case "sync":
		runSync(*sf, *per, *k, *seed)
	case "all":
		runTable2(db, *seed)
		for _, q := range []int{11, 18, 19, 14} {
			runMicro(db, q, *instances, *seed)
		}
		runFig6(db, *instances, *seed)
		runAdmission(db, *per, *seed)
		runEviction(db, "entries", *per, *seed)
		runEviction(db, "memory", *per, *seed)
		runUpdates(*sf, *per, *k, *seed)
		runUpdates(*sf, *per, 1, *seed)
		runThroughput(db, *per, *seed)
		runSync(*sf, *per, *k, *seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", exp)
		os.Exit(2)
	}
}

func runTable2(db *tpch.DB, seed int64) {
	fmt.Println("== Table II: characteristics of TPC-H queries ==")
	bench.PrintTable2(os.Stdout, bench.Table2(db, seed))
	fmt.Println()
}

func runMicro(db *tpch.DB, q, instances int, seed int64) {
	fmt.Printf("== Fig. 4/5 micro profile: Q%d, %d instances ==\n", q, instances)
	bench.PrintProfile(os.Stdout, q, bench.MicroProfile(db, q, instances, seed))
	fmt.Println()
}

func runFig6(db *tpch.DB, instances int, seed int64) {
	fmt.Println("== Fig. 6: recycler effect on performance ==")
	bench.PrintFig6(os.Stdout, bench.Fig6(db, []int{11, 18, 19, 14}, instances, seed))
	fmt.Println()
}

func runAdmission(db *tpch.DB, per int, seed int64) {
	fmt.Printf("== Figs. 7-9: admission policies (mixed batch, %d per query) ==\n", per*10)
	items := bench.MixedWorkload(per, seed)
	bench.PrintAdmission(os.Stdout, bench.AdmissionSweep(db, items, 10))
	fmt.Println()
}

func runEviction(db *tpch.DB, limit string, per int, seed int64) {
	fmt.Printf("== Figs. 10/11: eviction policies, %s-limited ==\n", limit)
	items := bench.MixedWorkload(per, seed)
	bench.PrintEviction(os.Stdout, bench.EvictionSweep(db, items, limit, []int{20, 40, 60, 80}))
	fmt.Println()
}

func runThroughput(db *tpch.DB, per int, seed int64) {
	fmt.Println("== Throughput: naive vs recycled on the mixed batch ==")
	bench.PrintThroughput(os.Stdout, bench.Throughput(db, bench.MixedWorkload(per, seed)))
	fmt.Println()
}

func runSync(sf float64, per, k int, seed int64) {
	fmt.Printf("== §6 ablation: invalidation vs delta propagation, K=%d ==\n", k)
	rows := bench.SyncAblation(sf, 7, func(db *tpch.DB) []bench.WorkItem {
		return bench.MixedWorkload(per, seed)
	}, k)
	bench.PrintSyncAblation(os.Stdout, rows)
	fmt.Println()
}

func runUpdates(sf float64, per, k int, seed int64) {
	fmt.Printf("== Figs. 12/13: recycling with updates, K=%d ==\n", k)
	series := bench.UpdatesSweep(sf, 7, func(db *tpch.DB) []bench.WorkItem {
		return bench.MixedWorkload(per, seed)
	}, k)
	bench.PrintUpdates(os.Stdout, series, 10)
	for _, s := range series {
		fmt.Printf("# %-10s total time %v\n", s.Strategy, s.Elapsed)
	}
	fmt.Println()
}
