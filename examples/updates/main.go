// Updates demo: shows recycling in a volatile database (paper §6).
// The default mode invalidates affected intermediates immediately and
// column-wise; the propagation mode pushes insert deltas through
// cached selections instead, keeping them reusable.
//
// Run with: go run ./examples/updates
package main

import (
	"fmt"

	"repro"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/recycler"
)

func buildTemplate(eng *repro.Engine) *mal.Template {
	b := mal.NewBuilder("recent_total")
	cutoff := b.Param("A0", mal.VDate)
	d := b.Op1("sql", "bind", mal.C(mal.StrV("shop")), mal.C(mal.StrV("sales")), mal.C(mal.StrV("day")), mal.C(mal.IntV(0)))
	sel := b.Op1("algebra", "select", d, cutoff, mal.C(mal.VoidV()), mal.C(mal.BoolV(true)), mal.C(mal.BoolV(true)))
	amount := b.Op1("sql", "bind", mal.C(mal.StrV("shop")), mal.C(mal.StrV("sales")), mal.C(mal.StrV("amount")), mal.C(mal.IntV(0)))
	vals := b.Op1("algebra", "semijoin", amount, sel)
	total := b.Op1("aggr", "sumFlt", vals)
	b.Do("sql", "exportValue", mal.C(mal.StrV("total")), total)
	return eng.Compile(b.Freeze())
}

func load(cat *catalog.Catalog) *catalog.Table {
	tb := cat.CreateTable("shop", "sales", []catalog.ColDef{
		{Name: "day", Kind: bat.KDate},
		{Name: "amount", Kind: bat.KFloat},
	})
	rows := make([]catalog.Row, 50000)
	for i := range rows {
		rows[i] = catalog.Row{"day": bat.Date(10000 + i%365), "amount": float64(i%97) + 0.5}
	}
	tb.Append(rows)
	return tb
}

func demo(mode recycler.SyncMode, label string) {
	fmt.Printf("=== %s ===\n", label)
	cat := repro.NewCatalog()
	tb := load(cat)
	eng := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{
		Admission: recycler.KeepAll,
		Sync:      mode,
	}))
	tmpl := buildTemplate(eng)
	cutoff := mal.DateV(bat.Date(10200))

	exec := func(note string) {
		res, err := eng.Exec(tmpl, cutoff)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-28s total=%10.1f hits=%d/%d pool=%d entries\n",
			note, res.Results[0].Val.F,
			res.Stats.HitsNonBind, res.Stats.MarkedNonBind,
			eng.Recycler().PoolLen())
	}

	exec("cold run:")
	exec("warm run:")
	tb.Append([]catalog.Row{
		{"day": bat.Date(10300), "amount": 1000.0},
		{"day": bat.Date(10100), "amount": 2000.0}, // below cutoff
	})
	fmt.Println("-- inserted 2 rows (one qualifies) --")
	exec("after insert:")
	exec("and again:")
	fmt.Println()
}

func main() {
	demo(recycler.SyncInvalidate, "immediate invalidation (the paper's implemented mode, §6.4)")
	demo(recycler.SyncPropagate, "delta propagation (§6.3 design-space extension)")
}
