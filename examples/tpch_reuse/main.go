// TPC-H reuse demo: runs ten instances of Q18 (the paper's flagship
// inter-query case) and of Q14 (the counter-example) and prints the
// per-instance profile — a terminal rendition of the paper's Figs. 4b
// and 5b.
//
// Run with: go run ./examples/tpch_reuse
package main

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/recycler"
	"repro/internal/tpch"
)

func main() {
	fmt.Println("generating TPC-H data at SF 0.01 ...")
	db := tpch.Generate(0.01, 7)
	fmt.Printf("%d orders, %d lineitems\n\n", db.Orders, db.Lineitems)

	for _, q := range []int{18, 14} {
		profile(db, q)
	}

	// Show the raw reuse statistics of a Q18 pair directly.
	d := tpch.QueryMap()[18]
	r := bench.NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	rng := rand.New(rand.NewSource(1))
	first := bench.Timed(func() { r.MustRun(d.Templ, d.Params(rng)...) })
	second := bench.Timed(func() { r.MustRun(d.Templ, d.Params(rng)...) })
	fmt.Printf("Q18 cold instance: %v, next instance with a different quantity level: %v (%.0fx)\n",
		first.Round(time.Microsecond), second.Round(time.Microsecond),
		float64(first)/float64(second))
}

func profile(db *tpch.DB, q int) {
	fmt.Printf("=== Q%d: 10 instances, keepall/unlimited ===\n", q)
	pts := bench.MicroProfile(db, q, 10, 3)
	fmt.Println("inst  hit-ratio                      naive      recycled   RP-mem")
	for _, p := range pts {
		bar := strings.Repeat("#", int(p.HitRatio*20))
		fmt.Printf("%4d  %-20s %.2f   %9v  %9v  %6dKB\n",
			p.Instance, bar, p.HitRatio,
			p.Naive.Round(time.Microsecond), p.Recycled.Round(time.Microsecond),
			p.TotalMem/1024)
	}
	fmt.Println()
}
