// Quickstart: build a tiny catalog, compile a parametrised query
// template, and watch the recycler turn repeated (and overlapping)
// queries into pool hits.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"repro"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/recycler"
)

func main() {
	// 1. Create a catalog with one table of measurements.
	cat := repro.NewCatalog()
	tb := cat.CreateTable("demo", "readings", []catalog.ColDef{
		{Name: "sensor", Kind: bat.KInt},
		{Name: "value", Kind: bat.KFloat},
	})
	rows := make([]catalog.Row, 10000)
	for i := range rows {
		rows[i] = catalog.Row{
			"sensor": int64(i % 100),
			"value":  float64(i%1000) / 10,
		}
	}
	tb.Append(rows)

	// 2. Build a query template: average reading of sensors in a
	// range. The literal bounds are template parameters, exactly as
	// the paper's SQL front end factors constants out of queries.
	b := mal.NewBuilder("avg_readings")
	lo := b.Param("A0", mal.VInt)
	hi := b.Param("A1", mal.VInt)
	sensor := b.Op1("sql", "bind", mal.C(mal.StrV("demo")), mal.C(mal.StrV("readings")), mal.C(mal.StrV("sensor")), mal.C(mal.IntV(0)))
	sel := b.Op1("algebra", "select", sensor, lo, hi, mal.C(mal.BoolV(true)), mal.C(mal.BoolV(true)))
	value := b.Op1("sql", "bind", mal.C(mal.StrV("demo")), mal.C(mal.StrV("readings")), mal.C(mal.StrV("value")), mal.C(mal.IntV(0)))
	vals := b.Op1("algebra", "semijoin", value, sel)
	avg := b.Op1("aggr", "avgFlt", vals)
	b.Do("sql", "exportValue", mal.C(mal.StrV("avg")), avg)

	// 3. Create an engine with the recycler enabled and compile the
	// template (the optimizer marks recyclable instructions).
	eng := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{
		Admission:   recycler.KeepAll,
		Subsumption: true,
	}))
	tmpl := eng.Compile(b.Freeze())

	run := func(lo, hi int64) {
		res, err := eng.Exec(tmpl, mal.IntV(lo), mal.IntV(hi))
		if err != nil {
			panic(err)
		}
		fmt.Printf("avg(sensor in [%2d,%2d]) = %6.2f   hits=%d/%d subsumed=%d elapsed=%v\n",
			lo, hi, res.Results[0].Val.F,
			res.Stats.HitsNonBind, res.Stats.MarkedNonBind, res.Stats.Subsumed,
			res.Stats.Elapsed.Round(1000))
	}

	fmt.Println("first execution computes everything:")
	run(10, 60)
	fmt.Println("\nexact repetition is answered from the recycle pool:")
	run(10, 60)
	fmt.Println("\na narrower range subsumes from the cached selection:")
	run(20, 40)

	fmt.Println("\nrecycle pool content:")
	fmt.Print(eng.Recycler().DumpPool())
}
