// Server demo: the engine as a network service. This example starts
// the same HTTP stack `cmd/reprod` serves, sends it the requests you
// would otherwise type as curl commands, and reads the shared-pool
// statistics back from /stats.
//
// Run with: go run ./examples/server
//
// To drive a standalone server instead:
//
//	go run ./cmd/reprod -db sky -objects 50000 -http :8080
//	curl -s :8080/query -d '{"sql":"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1"}'
//	curl -s :8080/stats
//	curl -s :8080/metrics
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro"
	"repro/internal/recycler"
	"repro/internal/server"
	"repro/internal/sky"
)

func main() {
	// 1. A SkyServer catalog served with one shared recycle pool.
	fmt.Println("generating 50000 sky objects ...")
	db := sky.Generate(50000, 17)
	eng := repro.NewEngine(db.Cat, repro.WithRecycler(recycler.Config{
		Admission:   recycler.KeepAll,
		Subsumption: true,
	}))
	srv := server.New(eng, server.Config{MaxConcurrency: 8})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	hs := &http.Server{Handler: srv.Handler()}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)

	// 2. The same spatial query twice: the second instance is answered
	// from the recycle pool, visible in the per-query stats.
	q := `{"sql": "SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1"}`
	for i := 0; i < 2; i++ {
		fmt.Printf("$ curl %s/query -d '%s'\n", base, q)
		fmt.Printf("%s\n\n", post(base+"/query", q))
	}

	// 3. An update over the wire invalidates dependent intermediates.
	ins := `{"sql": "INSERT INTO sky.dbobjects (name, type, description) VALUES ('demo', 'U', 'added over the wire')"}`
	fmt.Printf("$ curl %s/exec -d '%s'\n", base, ins)
	fmt.Printf("%s\n\n", post(base+"/exec", ins))

	// 4. /stats shows the shared pool all clients meet in.
	fmt.Printf("$ curl %s/stats\n", base)
	var stats server.StatsResponse
	body := get(base + "/stats")
	json.Unmarshal(body, &stats)
	fmt.Printf("pool: %d entries / %d KB, %d lifetime reuses, %d invalidated\n",
		stats.Engine.Recycler.Entries, stats.Engine.Recycler.Bytes/1024,
		stats.Engine.Recycler.Reuses, stats.Engine.Recycler.Invalidated)
	fmt.Printf("server: %d queries, %d execs, prepared cache %d hits / %d misses\n\n",
		stats.Server.Queries, stats.Server.Execs,
		stats.Server.PreparedHits, stats.Server.PreparedMisses)

	// 5. Graceful shutdown drains in-flight queries before exiting.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	hs.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		panic(err)
	}
	fmt.Printf("drained; active queries at exit: %d\n", eng.Recycler().ActiveQueries())
}

func post(url, body string) string {
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return string(bytes.TrimSpace(b))
}

func get(url string) []byte {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	b, _ := io.ReadAll(resp.Body)
	return b
}
