// SkyServer demo: replays a synthetic sample of the SkyServer query
// log (dominated by overlapping fGetNearbyObjEq spatial searches)
// against the engine with and without the recycler, then prints the
// recycle pool breakdown — a small-scale rendition of the paper's
// Fig. 14 and Table III.
//
// Run with: go run ./examples/skyserver
package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/bench"
	"repro/internal/recycler"
	"repro/internal/sky"
)

func main() {
	fmt.Println("generating synthetic sky catalog (50k objects) ...")
	db := sky.Generate(50000, 17)
	w := sky.SampleWorkload(db, 100, 42)

	kinds := map[string]int{}
	for _, q := range w.Batch {
		kinds[q.Kind]++
	}
	fmt.Printf("batch mix: %d nearby-object, %d docs, %d point queries\n\n",
		kinds["nearby"], kinds["docs"], kinds["point"])

	naive := bench.NewNaive(db.Cat, false)
	tNaive := bench.Timed(func() {
		for _, q := range w.Batch {
			naive.MustRun(w.Template(q.Kind), q.Params...)
		}
	})

	rec := bench.NewRecycled(db.Cat, recycler.Config{
		Admission:   recycler.KeepAll,
		Subsumption: true,
	})
	var hits, pot int
	tRec := bench.Timed(func() {
		for _, q := range w.Batch {
			ctx := rec.MustRun(w.Template(q.Kind), q.Params...)
			hits += ctx.Stats.HitsNonBind
			pot += ctx.Stats.MarkedNonBind
		}
	})

	fmt.Printf("naive:    %v\n", tNaive.Round(time.Millisecond))
	fmt.Printf("recycler: %v  (%.1fx, %.1f%% of monitored instructions reused)\n\n",
		tRec.Round(time.Millisecond), float64(tNaive)/float64(tRec),
		100*float64(hits)/float64(pot))

	fmt.Println("recycle pool breakdown by instruction type (cf. Table III):")
	bench.PrintTable3(os.Stdout, rec.Rec.PoolTypeBreakdown())
}
