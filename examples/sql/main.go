// SQL front-end demo: queries arrive as text, the front end factors
// literals out into cached templates (paper §2.2), and the recycler
// reuses intermediates across instances — including subsumption when
// a later range is contained in an earlier one.
//
// Run with: go run ./examples/sql
package main

import (
	"fmt"
	"time"

	"repro/internal/mal"
	"repro/internal/recycler"
	"repro/internal/sqlfe"
	"repro/internal/tpch"
)

func main() {
	fmt.Println("generating TPC-H data at SF 0.01 ...")
	db := tpch.Generate(0.01, 7)
	fe := sqlfe.NewFrontend(db.Cat)
	rec := recycler.New(db.Cat, recycler.Config{
		Admission:           recycler.KeepAll,
		Subsumption:         true,
		CombinedSubsumption: true,
	})

	queries := []string{
		"SELECT COUNT(*) FROM sys.lineitem WHERE l_quantity BETWEEN 10 AND 40",
		"SELECT COUNT(*) FROM sys.lineitem WHERE l_quantity BETWEEN 10 AND 40", // exact repeat
		"SELECT COUNT(*) FROM sys.lineitem WHERE l_quantity BETWEEN 15 AND 30", // subsumed
		"SELECT l_returnflag, COUNT(*) AS n, SUM(l_extendedprice) AS s FROM sys.lineitem WHERE l_quantity <= 25 GROUP BY l_returnflag",
		"SELECT l_returnflag, COUNT(*) AS n, SUM(l_extendedprice) AS s FROM sys.lineitem WHERE l_quantity <= 30 GROUP BY l_returnflag",
		"SELECT COUNT(*) FROM sys.orders WHERE o_orderdate >= DATE '1996-01-01' AND o_orderdate < DATE '1997-01-01'",
		"SELECT COUNT(*) FROM sys.orders WHERE o_orderdate >= DATE '1996-04-01' AND o_orderdate < DATE '1996-10-01'",
	}

	var qid uint64
	for _, src := range queries {
		tmpl, params, err := fe.Compile(src)
		if err != nil {
			panic(err)
		}
		qid++
		rec.BeginQuery(qid, tmpl.ID)
		ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: qid}
		start := time.Now()
		if err := mal.Run(ctx, tmpl, params...); err != nil {
			panic(err)
		}
		rec.EndQuery(qid)
		elapsed := time.Since(start)
		fmt.Printf("\n%s\n", src)
		fmt.Printf("  -> %v  hits=%d/%d subsumed=%d combined=%d\n",
			elapsed.Round(time.Microsecond),
			ctx.Stats.HitsNonBind, ctx.Stats.MarkedNonBind,
			ctx.Stats.Subsumed, ctx.Stats.Combined)
		for _, r := range ctx.Results {
			if r.Val.Kind == mal.VBat {
				fmt.Printf("  %s = %s\n", r.Name, r.Val.Bat.Dump(4))
			} else {
				fmt.Printf("  %s = %s\n", r.Name, r.Val.String())
			}
		}
	}

	fmt.Printf("\nquery cache: %d templates for %d queries (%d cache hits)\n",
		fe.CacheSize(), len(queries), fe.Hits)
	fmt.Printf("recycle pool: %d entries, %d KB\n", rec.PoolLen(), rec.PoolBytes()/1024)
}
