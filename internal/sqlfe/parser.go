package sqlfe

import (
	"fmt"
	"strings"
)

// AST types for the supported subset:
//
//	SELECT <item> [, <item>]*
//	FROM [schema.]table
//	[WHERE <pred> [AND <pred>]*]
//	[GROUP BY col [, col]*]
//	[ORDER BY <ordinal|col> [ASC|DESC]]
//	[LIMIT n]
//
// Items: col | COUNT(*) | COUNT(DISTINCT col) | SUM(col) | AVG(col) |
// MIN(col) | MAX(col). Predicates: col <op> literal, col BETWEEN a
// AND b, col [NOT] LIKE 'pat'. Literals: numbers, strings,
// DATE 'YYYY-MM-DD'.

// Query is the parsed statement.
type Query struct {
	Items   []SelectItem
	Schema  string
	Table   string
	Preds   []Pred
	GroupBy []string
	Having  *Having
	OrderBy *OrderBy
	Limit   int // 0 = none
}

// Having is a single aggregate filter over the groups:
// HAVING <agg>(col) <op> literal. This is the paper's Q18 shape.
type Having struct {
	Agg string // "count", "sum", "avg", "min", "max"
	Col string // empty for COUNT(*)
	Op  PredOp // comparison ops only
	Arg Lit
}

// SelectItem is one projection: a plain column or an aggregate.
type SelectItem struct {
	Agg   string // "", "count", "countd", "sum", "avg", "min", "max"
	Col   string // empty for COUNT(*)
	Alias string
}

// PredOp enumerates predicate operators.
type PredOp int

// Predicate operators.
const (
	OpEq PredOp = iota
	OpLt
	OpLe
	OpGt
	OpGe
	OpNe
	OpBetween
	OpLike
	OpNotLike
)

// Lit is a literal constant captured during parsing; the compiler
// turns every Lit into a template parameter.
type Lit struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
	// IsDate marks string literals written as DATE '...'.
}

// LitKind tags literal types.
type LitKind int

// Literal kinds.
const (
	LInt LitKind = iota
	LFloat
	LStr
	LDate
)

// Pred is one conjunct of the WHERE clause.
type Pred struct {
	Col  string
	Op   PredOp
	Args []Lit // 1 literal, or 2 for BETWEEN
}

// OrderBy names a sort column (by select-list alias or column) and
// direction.
type OrderBy struct {
	Col  string
	Desc bool
}

type parser struct {
	toks []token
	pos  int
}

// Parse parses a query in the supported subset.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if !p.at(tkEOF, "") {
		return nil, p.errf("trailing input")
	}
	return q, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	return token{}, p.errf("expected %q, got %q", text, p.cur().text)
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlfe: pos %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) query() (*Query, error) {
	if _, err := p.expect(tkKeyword, "SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		q.Items = append(q.Items, item)
		if !p.accept(tkPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tkKeyword, "FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.accept(tkPunct, ".") {
		q.Schema = name
		q.Table, err = p.expectIdent()
		if err != nil {
			return nil, err
		}
	} else {
		q.Table = name
	}
	if p.accept(tkKeyword, "WHERE") {
		for {
			pred, err := p.pred()
			if err != nil {
				return nil, err
			}
			q.Preds = append(q.Preds, pred)
			if !p.accept(tkKeyword, "AND") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "GROUP") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, col)
			if !p.accept(tkPunct, ",") {
				break
			}
		}
	}
	if p.accept(tkKeyword, "HAVING") {
		if len(q.GroupBy) == 0 {
			return nil, p.errf("HAVING requires GROUP BY")
		}
		h, err := p.having()
		if err != nil {
			return nil, err
		}
		q.Having = h
	}
	if p.accept(tkKeyword, "ORDER") {
		if _, err := p.expect(tkKeyword, "BY"); err != nil {
			return nil, err
		}
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		ob := &OrderBy{Col: col}
		if p.accept(tkKeyword, "DESC") {
			ob.Desc = true
		} else {
			p.accept(tkKeyword, "ASC")
		}
		q.OrderBy = ob
	}
	if p.accept(tkKeyword, "LIMIT") {
		t, err := p.expect(tkNumber, "")
		if err != nil {
			return nil, err
		}
		var n int
		if _, err := fmt.Sscanf(t.text, "%d", &n); err != nil || n <= 0 {
			return nil, p.errf("bad LIMIT %q", t.text)
		}
		q.Limit = n
	}
	return q, nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tkIdent {
		return "", p.errf("expected identifier, got %q", p.cur().text)
	}
	return p.next().text, nil
}

func (p *parser) selectItem() (SelectItem, error) {
	t := p.cur()
	var item SelectItem
	switch {
	case t.kind == tkKeyword && (t.text == "COUNT" || t.text == "SUM" || t.text == "AVG" || t.text == "MIN" || t.text == "MAX"):
		p.next()
		if _, err := p.expect(tkPunct, "("); err != nil {
			return item, err
		}
		item.Agg = strings.ToLower(t.text)
		switch {
		case t.text == "COUNT" && p.accept(tkPunct, "*"):
			// COUNT(*)
		case t.text == "COUNT" && p.accept(tkKeyword, "DISTINCT"):
			col, err := p.expectIdent()
			if err != nil {
				return item, err
			}
			item.Agg = "countd"
			item.Col = col
		default:
			col, err := p.expectIdent()
			if err != nil {
				return item, err
			}
			item.Col = col
		}
		if _, err := p.expect(tkPunct, ")"); err != nil {
			return item, err
		}
	case t.kind == tkIdent:
		p.next()
		item.Col = t.text
	default:
		return item, p.errf("bad select item %q", t.text)
	}
	if p.accept(tkKeyword, "AS") {
		alias, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = alias
	}
	return item, nil
}

func (p *parser) pred() (Pred, error) {
	col, err := p.expectIdent()
	if err != nil {
		return Pred{}, err
	}
	t := p.cur()
	switch {
	case t.kind == tkOp:
		p.next()
		lit, err := p.literal()
		if err != nil {
			return Pred{}, err
		}
		op, err := opOf(t.text)
		if err != nil {
			return Pred{}, err
		}
		return Pred{Col: col, Op: op, Args: []Lit{lit}}, nil
	case t.kind == tkKeyword && t.text == "BETWEEN":
		p.next()
		lo, err := p.literal()
		if err != nil {
			return Pred{}, err
		}
		if _, err := p.expect(tkKeyword, "AND"); err != nil {
			return Pred{}, err
		}
		hi, err := p.literal()
		if err != nil {
			return Pred{}, err
		}
		return Pred{Col: col, Op: OpBetween, Args: []Lit{lo, hi}}, nil
	case t.kind == tkKeyword && t.text == "LIKE":
		p.next()
		lit, err := p.literal()
		if err != nil {
			return Pred{}, err
		}
		if lit.Kind != LStr {
			return Pred{}, p.errf("LIKE needs a string pattern")
		}
		return Pred{Col: col, Op: OpLike, Args: []Lit{lit}}, nil
	case t.kind == tkKeyword && t.text == "NOT":
		p.next()
		if _, err := p.expect(tkKeyword, "LIKE"); err != nil {
			return Pred{}, err
		}
		lit, err := p.literal()
		if err != nil {
			return Pred{}, err
		}
		if lit.Kind != LStr {
			return Pred{}, p.errf("NOT LIKE needs a string pattern")
		}
		return Pred{Col: col, Op: OpNotLike, Args: []Lit{lit}}, nil
	}
	return Pred{}, p.errf("bad predicate operator %q", t.text)
}

// having parses "<AGG>(col|*) <op> literal".
func (p *parser) having() (*Having, error) {
	t := p.cur()
	if t.kind != tkKeyword {
		return nil, p.errf("HAVING needs an aggregate")
	}
	switch t.text {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
	default:
		return nil, p.errf("HAVING aggregate %q unsupported", t.text)
	}
	p.next()
	if _, err := p.expect(tkPunct, "("); err != nil {
		return nil, err
	}
	h := &Having{Agg: strings.ToLower(t.text)}
	if t.text == "COUNT" && p.accept(tkPunct, "*") {
		// COUNT(*)
	} else {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		h.Col = col
	}
	if _, err := p.expect(tkPunct, ")"); err != nil {
		return nil, err
	}
	opTok := p.cur()
	if opTok.kind != tkOp {
		return nil, p.errf("HAVING needs a comparison")
	}
	p.next()
	op, err := opOf(opTok.text)
	if err != nil {
		return nil, err
	}
	if op == OpNe {
		return nil, p.errf("HAVING <> unsupported")
	}
	h.Op = op
	lit, err := p.literal()
	if err != nil {
		return nil, err
	}
	h.Arg = lit
	return h, nil
}

func opOf(s string) (PredOp, error) {
	switch s {
	case "=":
		return OpEq, nil
	case "<":
		return OpLt, nil
	case "<=":
		return OpLe, nil
	case ">":
		return OpGt, nil
	case ">=":
		return OpGe, nil
	case "<>":
		return OpNe, nil
	}
	return 0, fmt.Errorf("sqlfe: unsupported operator %q", s)
}

func (p *parser) literal() (Lit, error) {
	t := p.cur()
	switch {
	case t.kind == tkNumber:
		p.next()
		if strings.ContainsRune(t.text, '.') {
			var f float64
			fmt.Sscanf(t.text, "%g", &f)
			return Lit{Kind: LFloat, F: f}, nil
		}
		var n int64
		fmt.Sscanf(t.text, "%d", &n)
		return Lit{Kind: LInt, I: n}, nil
	case t.kind == tkString:
		p.next()
		return Lit{Kind: LStr, S: t.text}, nil
	case t.kind == tkKeyword && t.text == "DATE":
		p.next()
		if p.cur().kind != tkString {
			return Lit{}, p.errf("DATE needs a quoted literal")
		}
		s := p.next().text
		return Lit{Kind: LDate, S: s}, nil
	}
	return Lit{}, p.errf("bad literal %q", t.text)
}

// Shape returns the query text with all literals replaced by
// placeholders — the key under which compiled templates are cached, so
// instances differing only in constants share one template (§2.2).
func (q *Query) Shape() string {
	var sb strings.Builder
	for _, it := range q.Items {
		fmt.Fprintf(&sb, "%s(%s);", it.Agg, it.Col)
	}
	fmt.Fprintf(&sb, "FROM %s.%s;", q.Schema, q.Table)
	for _, p := range q.Preds {
		fmt.Fprintf(&sb, "%s#%d?;", p.Col, p.Op)
	}
	fmt.Fprintf(&sb, "G%v", q.GroupBy)
	if q.Having != nil {
		fmt.Fprintf(&sb, "H%s(%s)#%d?;", q.Having.Agg, q.Having.Col, q.Having.Op)
	}
	if q.OrderBy != nil {
		fmt.Fprintf(&sb, "O%s/%v", q.OrderBy.Col, q.OrderBy.Desc)
	}
	if q.Limit > 0 {
		sb.WriteString("L?")
	}
	return sb.String()
}
