package sqlfe

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/recycler"
)

// Property harness: random conjunctive COUNT(*) queries over a random
// int table, compiled through the front end and executed both with and
// without the recycler, checked against a direct Go evaluation.

type propTable struct {
	cat  *catalog.Catalog
	a, b []int64
}

func genPropTable(rng *rand.Rand) *propTable {
	cat := catalog.New()
	tb := cat.CreateTable("sys", "t", []catalog.ColDef{
		{Name: "a", Kind: bat.KInt},
		{Name: "b", Kind: bat.KInt},
	})
	n := rng.Intn(200) + 1
	pt := &propTable{cat: cat}
	rows := make([]catalog.Row, n)
	for i := range rows {
		av, bv := int64(rng.Intn(50)), int64(rng.Intn(50))
		rows[i] = catalog.Row{"a": av, "b": bv}
		pt.a = append(pt.a, av)
		pt.b = append(pt.b, bv)
	}
	tb.Append(rows)
	return pt
}

type propPred struct {
	col string // "a" or "b"
	op  string // "<", "<=", ">", ">=", "=", "BETWEEN"
	v1  int64
	v2  int64
}

func (p propPred) sql() string {
	if p.op == "BETWEEN" {
		return fmt.Sprintf("%s BETWEEN %d AND %d", p.col, p.v1, p.v2)
	}
	return fmt.Sprintf("%s %s %d", p.col, p.op, p.v1)
}

func (p propPred) eval(a, b int64) bool {
	v := a
	if p.col == "b" {
		v = b
	}
	switch p.op {
	case "<":
		return v < p.v1
	case "<=":
		return v <= p.v1
	case ">":
		return v > p.v1
	case ">=":
		return v >= p.v1
	case "=":
		return v == p.v1
	case "BETWEEN":
		return v >= p.v1 && v <= p.v2
	}
	panic("bad op")
}

func genPred(rng *rand.Rand) propPred {
	ops := []string{"<", "<=", ">", ">=", "=", "BETWEEN"}
	p := propPred{
		col: []string{"a", "b"}[rng.Intn(2)],
		op:  ops[rng.Intn(len(ops))],
		v1:  int64(rng.Intn(50)),
	}
	if p.op == "BETWEEN" {
		p.v2 = p.v1 + int64(rng.Intn(20))
	}
	return p
}

// TestRandomQueriesMatchReference is the front end's master property:
// for random tables and random conjunctive predicates, the compiled
// plan (with recycling and subsumption enabled) counts exactly what a
// direct evaluation counts.
func TestRandomQueriesMatchReference(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := genPropTable(rng)
		fe := NewFrontend(pt.cat)
		rec := recycler.New(pt.cat, recycler.Config{
			Admission: recycler.KeepAll, Subsumption: true, CombinedSubsumption: true,
		})
		for q := 0; q < 8; q++ {
			nPreds := rng.Intn(3) + 1
			preds := make([]propPred, nPreds)
			sql := "SELECT COUNT(*) FROM sys.t WHERE "
			for i := range preds {
				preds[i] = genPred(rng)
				if i > 0 {
					sql += " AND "
				}
				sql += preds[i].sql()
			}
			tmpl, params, err := fe.Compile(sql)
			if err != nil {
				return false
			}
			qid := uint64(q + 1)
			rec.BeginQuery(qid, tmpl.ID)
			ctx := &mal.Ctx{Cat: pt.cat, Hook: rec, QueryID: qid}
			err = mal.Run(ctx, tmpl, params...)
			rec.EndQuery(qid)
			if err != nil {
				return false
			}
			var want int64
			for i := range pt.a {
				ok := true
				for _, p := range preds {
					if !p.eval(pt.a[i], pt.b[i]) {
						ok = false
						break
					}
				}
				if ok {
					want++
				}
			}
			if ctx.Results[0].Val.I != want {
				t.Logf("seed %d query %q: got %d want %d", seed, sql, ctx.Results[0].Val.I, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: query-cache hits never change results.
func TestCachedTemplateEquivalence(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := genPropTable(rng)
		fe := NewFrontend(pt.cat)
		p := genPred(rng)
		// Two instances of the same shape with different constants.
		mk := func(shift int64) string {
			q := p
			q.v1 += shift
			if q.op == "BETWEEN" {
				q.v2 += shift
			}
			return "SELECT COUNT(*) FROM sys.t WHERE " + q.sql()
		}
		t1, p1, err := fe.Compile(mk(0))
		if err != nil {
			return false
		}
		t2, p2, err := fe.Compile(mk(3))
		if err != nil {
			return false
		}
		if t1 != t2 {
			return false // shape must be cached
		}
		// Execute the cached template with the second instance's
		// parameters and compare with a fresh frontend's compile.
		ctx := &mal.Ctx{Cat: pt.cat}
		if err := mal.Run(ctx, t2, p2...); err != nil {
			return false
		}
		fe2 := NewFrontend(pt.cat)
		t3, p3, err := fe2.Compile(mk(3))
		if err != nil {
			return false
		}
		ctx2 := &mal.Ctx{Cat: pt.cat}
		if err := mal.Run(ctx2, t3, p3...); err != nil {
			return false
		}
		_ = p1
		return ctx.Results[0].Val.I == ctx2.Results[0].Val.I
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
