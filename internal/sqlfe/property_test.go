package sqlfe

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
)

// Property harness: random conjunctive COUNT(*) queries over a random
// int table, compiled through the front end and executed both with and
// without the recycler, checked against a direct Go evaluation.

type propTable struct {
	cat  *catalog.Catalog
	a, b []int64
}

func genPropTable(rng *rand.Rand) *propTable {
	cat := catalog.New()
	tb := cat.CreateTable("sys", "t", []catalog.ColDef{
		{Name: "a", Kind: bat.KInt},
		{Name: "b", Kind: bat.KInt},
	})
	n := rng.Intn(200) + 1
	pt := &propTable{cat: cat}
	rows := make([]catalog.Row, n)
	for i := range rows {
		av, bv := int64(rng.Intn(50)), int64(rng.Intn(50))
		rows[i] = catalog.Row{"a": av, "b": bv}
		pt.a = append(pt.a, av)
		pt.b = append(pt.b, bv)
	}
	tb.Append(rows)
	return pt
}

type propPred struct {
	col string // "a" or "b"
	op  string // "<", "<=", ">", ">=", "=", "BETWEEN"
	v1  int64
	v2  int64
}

func (p propPred) sql() string {
	if p.op == "BETWEEN" {
		return fmt.Sprintf("%s BETWEEN %d AND %d", p.col, p.v1, p.v2)
	}
	return fmt.Sprintf("%s %s %d", p.col, p.op, p.v1)
}

func (p propPred) eval(a, b int64) bool {
	v := a
	if p.col == "b" {
		v = b
	}
	switch p.op {
	case "<":
		return v < p.v1
	case "<=":
		return v <= p.v1
	case ">":
		return v > p.v1
	case ">=":
		return v >= p.v1
	case "=":
		return v == p.v1
	case "BETWEEN":
		return v >= p.v1 && v <= p.v2
	}
	panic("bad op")
}

func genPred(rng *rand.Rand) propPred {
	ops := []string{"<", "<=", ">", ">=", "=", "BETWEEN"}
	p := propPred{
		col: []string{"a", "b"}[rng.Intn(2)],
		op:  ops[rng.Intn(len(ops))],
		v1:  int64(rng.Intn(50)),
	}
	if p.op == "BETWEEN" {
		p.v2 = p.v1 + int64(rng.Intn(20))
	}
	return p
}

// TestRandomQueriesMatchReference is the front end's master property:
// for random tables and random conjunctive predicates, the compiled
// plan (with recycling and subsumption enabled) counts exactly what a
// direct evaluation counts.
func TestRandomQueriesMatchReference(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := genPropTable(rng)
		fe := NewFrontend(pt.cat)
		rec := recycler.New(pt.cat, recycler.Config{
			Admission: recycler.KeepAll, Subsumption: true, CombinedSubsumption: true,
		})
		for q := 0; q < 8; q++ {
			nPreds := rng.Intn(3) + 1
			preds := make([]propPred, nPreds)
			sql := "SELECT COUNT(*) FROM sys.t WHERE "
			for i := range preds {
				preds[i] = genPred(rng)
				if i > 0 {
					sql += " AND "
				}
				sql += preds[i].sql()
			}
			tmpl, params, err := fe.Compile(sql)
			if err != nil {
				return false
			}
			qid := uint64(q + 1)
			rec.BeginQuery(qid, tmpl.ID)
			ctx := &mal.Ctx{Cat: pt.cat, Hook: rec, QueryID: qid}
			err = mal.Run(ctx, tmpl, params...)
			rec.EndQuery(qid)
			if err != nil {
				return false
			}
			var want int64
			for i := range pt.a {
				ok := true
				for _, p := range preds {
					if !p.eval(pt.a[i], pt.b[i]) {
						ok = false
						break
					}
				}
				if ok {
					want++
				}
			}
			if ctx.Results[0].Val.I != want {
				t.Logf("seed %d query %q: got %d want %d", seed, sql, ctx.Results[0].Val.I, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// rawCompile compiles src with EVERY optimizer pass disabled and no
// query normalization — the plan exactly as the compiler emits it,
// with fusion unannotated so execution is strictly per-instruction.
func rawCompile(cat *catalog.Catalog, src string) (*mal.Template, []mal.Value, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	return CompileOpt(cat, q, opt.Options{
		SkipConstFold: true, SkipDeadCode: true, SkipCommute: true,
		SkipCSE: true, SkipNormalizeSQL: true, SkipFusion: true,
	})
}

// execResults runs a template and returns its exported results.
func execResults(cat *catalog.Catalog, hook mal.RecyclerHook, qid uint64, tmpl *mal.Template, params []mal.Value) ([]mal.Result, error) {
	ctx := &mal.Ctx{Cat: cat, Hook: hook, QueryID: qid}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		return nil, err
	}
	return ctx.Results, nil
}

// resultsBitIdentical compares two result sets exactly: same columns,
// same scalar bits, same BAT contents in the same order.
func resultsBitIdentical(a, b []mal.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return false
		}
		va, vb := a[i].Val, b[i].Val
		if va.Kind != vb.Kind {
			return false
		}
		if va.Kind != mal.VBat {
			if !va.EqualConst(vb) {
				return false
			}
			continue
		}
		if va.Bat.Len() != vb.Bat.Len() {
			return false
		}
		for j := 0; j < va.Bat.Len(); j++ {
			if va.Bat.Tail.Get(j) != vb.Bat.Tail.Get(j) {
				return false
			}
		}
	}
	return true
}

// genRichQuery samples a query exercising more of the surface than the
// COUNT(*) harness: plain projections (with ORDER BY/LIMIT),
// aggregates, or GROUP BY — always over a random conjunction, so the
// normalization passes (conjunct sort, range merge) and CSE (repeated
// binds/projections) all fire.
func genRichQuery(rng *rand.Rand) string {
	var sel, tail string
	switch rng.Intn(4) {
	case 0:
		sel = "COUNT(*)"
	case 1:
		sel = "a, b"
		if rng.Intn(2) == 0 {
			tail = " ORDER BY a"
			if rng.Intn(2) == 0 {
				tail += " DESC"
			}
		}
		if rng.Intn(2) == 0 {
			tail += fmt.Sprintf(" LIMIT %d", rng.Intn(20)+1)
		}
	case 2:
		sel = "SUM(a), MIN(b), COUNT(*)"
	default:
		sel = "a, COUNT(*)"
		tail = " GROUP BY a"
	}
	nPreds := rng.Intn(3) + 1
	where := ""
	for i := 0; i < nPreds; i++ {
		if i > 0 {
			where += " AND "
		}
		where += genPred(rng).sql()
	}
	return fmt.Sprintf("SELECT %s FROM sys.t WHERE %s%s", sel, where, tail)
}

// TestOptimizePreservesResults is the optimizer's master property (the
// tentpole's safety net): for random queries, the fully-optimized,
// normalized template produces BIT-IDENTICAL results to the raw
// unoptimized plan — naive, and again with the recycler (and therefore
// CSE-shrunk plans feeding the pool) enabled.
func TestOptimizePreservesResults(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := genPropTable(rng)
		fe := NewFrontend(pt.cat)
		rec := recycler.New(pt.cat, recycler.Config{
			Admission: recycler.KeepAll, Subsumption: true, CombinedSubsumption: true,
		})
		defer rec.Close()
		for q := 0; q < 6; q++ {
			sql := genRichQuery(rng)
			rawT, rawP, err := rawCompile(pt.cat, sql)
			if err != nil {
				t.Logf("seed %d: raw compile %q: %v", seed, sql, err)
				return false
			}
			optT, optP, err := fe.Compile(sql)
			if err != nil {
				t.Logf("seed %d: opt compile %q: %v", seed, sql, err)
				return false
			}
			want, err := execResults(pt.cat, nil, 0, rawT, rawP)
			if err != nil {
				t.Logf("seed %d: raw run %q: %v", seed, sql, err)
				return false
			}
			got, err := execResults(pt.cat, nil, 0, optT, optP)
			if err != nil {
				t.Logf("seed %d: opt run %q: %v", seed, sql, err)
				return false
			}
			if !resultsBitIdentical(want, got) {
				t.Logf("seed %d: optimized results differ for %q", seed, sql)
				return false
			}
			qid := uint64(q + 1)
			rec.BeginQuery(qid, optT.ID)
			rgot, err := execResults(pt.cat, rec, qid, optT, optP)
			rec.EndQuery(qid)
			if err != nil {
				t.Logf("seed %d: recycled run %q: %v", seed, sql, err)
				return false
			}
			if !resultsBitIdentical(want, rgot) {
				t.Logf("seed %d: recycled results differ for %q", seed, sql)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestShuffledConjunctsProduceIdenticalResults: every permutation of a
// random conjunction compiles (via normalization) to the SAME template
// and bit-identical results.
func TestShuffledConjunctsProduceIdenticalResults(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := genPropTable(rng)
		fe := NewFrontend(pt.cat)
		nPreds := rng.Intn(2) + 2
		preds := make([]propPred, nPreds)
		for i := range preds {
			preds[i] = genPred(rng)
		}
		mk := func(order []int) string {
			sql := "SELECT COUNT(*) FROM sys.t WHERE "
			for i, j := range order {
				if i > 0 {
					sql += " AND "
				}
				sql += preds[j].sql()
			}
			return sql
		}
		base := make([]int, nPreds)
		for i := range base {
			base[i] = i
		}
		t0, p0, err := fe.Compile(mk(base))
		if err != nil {
			return false
		}
		want, err := execResults(pt.cat, nil, 0, t0, p0)
		if err != nil {
			return false
		}
		for trial := 0; trial < 3; trial++ {
			order := rng.Perm(nPreds)
			tv, pv, err := fe.Compile(mk(order))
			if err != nil {
				return false
			}
			if tv != t0 {
				t.Logf("seed %d: permutation %v compiled a second template", seed, order)
				return false
			}
			got, err := execResults(pt.cat, nil, 0, tv, pv)
			if err != nil {
				return false
			}
			if !resultsBitIdentical(want, got) {
				t.Logf("seed %d: permutation %v changed results", seed, order)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: query-cache hits never change results.
func TestCachedTemplateEquivalence(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pt := genPropTable(rng)
		fe := NewFrontend(pt.cat)
		p := genPred(rng)
		// Two instances of the same shape with different constants.
		mk := func(shift int64) string {
			q := p
			q.v1 += shift
			if q.op == "BETWEEN" {
				q.v2 += shift
			}
			return "SELECT COUNT(*) FROM sys.t WHERE " + q.sql()
		}
		t1, p1, err := fe.Compile(mk(0))
		if err != nil {
			return false
		}
		t2, p2, err := fe.Compile(mk(3))
		if err != nil {
			return false
		}
		if t1 != t2 {
			return false // shape must be cached
		}
		// Execute the cached template with the second instance's
		// parameters and compare with a fresh frontend's compile.
		ctx := &mal.Ctx{Cat: pt.cat}
		if err := mal.Run(ctx, t2, p2...); err != nil {
			return false
		}
		fe2 := NewFrontend(pt.cat)
		t3, p3, err := fe2.Compile(mk(3))
		if err != nil {
			return false
		}
		ctx2 := &mal.Ctx{Cat: pt.cat}
		if err := mal.Run(ctx2, t3, p3...); err != nil {
			return false
		}
		_ = p1
		return ctx.Results[0].Val.I == ctx2.Results[0].Val.I
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
