package sqlfe

import (
	"fmt"
	"strconv"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
)

// Compile translates a parsed query into an optimizer-marked template
// plus the parameter values of this instance, under the default
// optimizer pipeline. All literals become template parameters in a
// deterministic order (predicate literals left to right, then LIMIT),
// so re-compiling a query with the same shape yields an identical plan
// ready for template caching.
func Compile(cat *catalog.Catalog, q *Query) (*mal.Template, []mal.Value, error) {
	return CompileOpt(cat, q, opt.Options{})
}

// CompileOpt is Compile with an explicit optimizer configuration (pass
// gating and the pass-statistics collector the front end threads
// through every compile).
func CompileOpt(cat *catalog.Catalog, q *Query, opts opt.Options) (*mal.Template, []mal.Value, error) {
	schema := q.Schema
	if schema == "" {
		schema = "sys"
	}
	tbl := cat.Table(schema, q.Table)
	if tbl == nil {
		return nil, nil, fmt.Errorf("sqlfe: unknown table %s.%s", schema, q.Table)
	}

	c := &compiler{
		b:      mal.NewBuilder("sql:" + q.Shape()),
		cat:    cat,
		schema: schema,
		tbl:    tbl,
	}
	// Declare parameters first (builder requirement): walk the
	// literal positions.
	var params []mal.Value
	for pi := range q.Preds {
		p := &q.Preds[pi]
		col := tbl.Column(p.Col)
		if col == nil {
			return nil, nil, fmt.Errorf("sqlfe: unknown column %s", p.Col)
		}
		for ai, lit := range p.Args {
			kind, val, err := paramFor(col.KindOf, lit)
			if err != nil {
				return nil, nil, fmt.Errorf("sqlfe: predicate on %s: %w", p.Col, err)
			}
			name := fmt.Sprintf("A%d", len(params))
			c.paramArgs = append(c.paramArgs, c.b.Param(name, kind))
			params = append(params, val)
			_ = ai
		}
	}
	if q.Having != nil {
		kind, val, err := havingParam(tbl, q.Having)
		if err != nil {
			return nil, nil, err
		}
		c.havingArg = c.b.Param(fmt.Sprintf("A%d", len(params)), kind)
		params = append(params, val)
	}
	if q.Limit > 0 {
		c.limitArg = c.b.Param(fmt.Sprintf("A%d", len(params)), mal.VInt)
		params = append(params, mal.IntV(int64(q.Limit)))
	}

	if err := c.emit(q); err != nil {
		return nil, nil, err
	}
	tmpl := opt.Optimize(c.b.Freeze(), opts)
	return tmpl, params, nil
}

// ExtractParams types this instance's literal values against the
// catalog WITHOUT building a plan — the template-cache hit path: the
// cached template already exists, only the parameter vector differs
// per instance. The walk order must stay in lockstep with CompileOpt's
// parameter declarations (predicate literals in predicate order, then
// HAVING, then LIMIT); q must already be normalized when the cached
// template was compiled from a normalized query.
func ExtractParams(cat *catalog.Catalog, q *Query) ([]mal.Value, error) {
	schema := q.Schema
	if schema == "" {
		schema = "sys"
	}
	tbl := cat.Table(schema, q.Table)
	if tbl == nil {
		return nil, fmt.Errorf("sqlfe: unknown table %s.%s", schema, q.Table)
	}
	var params []mal.Value
	for pi := range q.Preds {
		p := &q.Preds[pi]
		col := tbl.Column(p.Col)
		if col == nil {
			return nil, fmt.Errorf("sqlfe: unknown column %s", p.Col)
		}
		for _, lit := range p.Args {
			_, val, err := paramFor(col.KindOf, lit)
			if err != nil {
				return nil, fmt.Errorf("sqlfe: predicate on %s: %w", p.Col, err)
			}
			params = append(params, val)
		}
	}
	if q.Having != nil {
		_, val, err := havingParam(tbl, q.Having)
		if err != nil {
			return nil, err
		}
		params = append(params, val)
	}
	if q.Limit > 0 {
		params = append(params, mal.IntV(int64(q.Limit)))
	}
	return params, nil
}

// paramFor types a literal against its column kind, promoting ints to
// floats/dates where the column requires it.
func paramFor(colKind bat.Kind, lit Lit) (mal.ValueKind, mal.Value, error) {
	switch colKind {
	case bat.KInt:
		if lit.Kind != LInt {
			return 0, mal.Value{}, fmt.Errorf("int column needs integer literal")
		}
		return mal.VInt, mal.IntV(lit.I), nil
	case bat.KFloat:
		switch lit.Kind {
		case LFloat:
			return mal.VFloat, mal.FloatV(lit.F), nil
		case LInt:
			return mal.VFloat, mal.FloatV(float64(lit.I)), nil
		}
		return 0, mal.Value{}, fmt.Errorf("float column needs numeric literal")
	case bat.KStr:
		if lit.Kind != LStr {
			return 0, mal.Value{}, fmt.Errorf("string column needs string literal")
		}
		return mal.VStr, mal.StrV(lit.S), nil
	case bat.KDate:
		if lit.Kind != LDate && lit.Kind != LStr {
			return 0, mal.Value{}, fmt.Errorf("date column needs DATE literal")
		}
		d, err := parseISODate(lit.S)
		if err != nil {
			return 0, mal.Value{}, err
		}
		return mal.VDate, mal.DateV(d), nil
	}
	return 0, mal.Value{}, fmt.Errorf("unsupported column kind %v", colKind)
}

// splitISODate parses a (possibly unpadded) ISO date literal:
// "2000-01-01" and "2000-1-1" both name the same day. Accepting the
// sloppy spellings — and keying everything downstream on the parsed
// value — is the date-form half of literal normalization: two texts
// differing only in zero padding share one template and one pool
// signature.
func splitISODate(s string) (y, m, d int, err error) {
	var parts [3]int
	start, idx := 0, 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '-' {
			if idx >= 3 || i == start {
				return 0, 0, 0, fmt.Errorf("bad date %q", s)
			}
			n, convErr := strconv.Atoi(s[start:i])
			if convErr != nil {
				return 0, 0, 0, fmt.Errorf("bad date %q", s)
			}
			parts[idx] = n
			idx++
			start = i + 1
		}
	}
	if idx != 3 || parts[1] < 1 || parts[1] > 12 || parts[2] < 1 || parts[2] > 31 {
		return 0, 0, 0, fmt.Errorf("bad date %q", s)
	}
	return parts[0], parts[1], parts[2], nil
}

func parseISODate(s string) (bat.Date, error) {
	y, m, d, err := splitISODate(s)
	if err != nil {
		return 0, err
	}
	return algebra.MkDate(y, m, d), nil
}

type compiler struct {
	b         *mal.Builder
	cat       *catalog.Catalog
	schema    string
	tbl       *catalog.Table
	paramArgs []mal.Arg
	havingArg mal.Arg
	limitArg  mal.Arg
	nextParam int
}

// havingParam types the HAVING literal against the aggregate's result
// type: COUNT and SUM over int columns produce ints, everything else
// floats.
func havingParam(tbl *catalog.Table, h *Having) (mal.ValueKind, mal.Value, error) {
	isInt := h.Agg == "count"
	if (h.Agg == "sum" || h.Agg == "min" || h.Agg == "max") && h.Col != "" {
		col := tbl.Column(h.Col)
		if col == nil {
			return 0, mal.Value{}, fmt.Errorf("sqlfe: unknown HAVING column %s", h.Col)
		}
		isInt = col.KindOf == bat.KInt
	}
	if isInt {
		if h.Arg.Kind != LInt {
			return 0, mal.Value{}, fmt.Errorf("sqlfe: HAVING needs integer literal")
		}
		return mal.VInt, mal.IntV(h.Arg.I), nil
	}
	switch h.Arg.Kind {
	case LFloat:
		return mal.VFloat, mal.FloatV(h.Arg.F), nil
	case LInt:
		return mal.VFloat, mal.FloatV(float64(h.Arg.I)), nil
	}
	return 0, mal.Value{}, fmt.Errorf("sqlfe: HAVING needs numeric literal")
}

func (c *compiler) cs(s string) mal.Arg { return mal.C(mal.StrV(s)) }
func (c *compiler) cb(v bool) mal.Arg   { return mal.C(mal.BoolV(v)) }
func (c *compiler) open() mal.Arg       { return mal.C(mal.VoidV()) }
func (c *compiler) bind(col string) mal.Arg {
	return c.b.Op1("sql", "bind", c.cs(c.schema), c.cs(c.tbl.Name), c.cs(col), mal.C(mal.IntV(0)))
}

func (c *compiler) takeParam() mal.Arg {
	a := c.paramArgs[c.nextParam]
	c.nextParam++
	return a
}

// emit generates the plan body.
func (c *compiler) emit(q *Query) error {
	rows, err := c.filter(q)
	if err != nil {
		return err
	}
	if len(q.GroupBy) > 0 {
		return c.emitGrouped(q, rows)
	}
	return c.emitFlat(q, rows)
}

// filter compiles the WHERE conjunction into a chain of selections,
// returning a BAT whose head holds the qualifying row oids.
func (c *compiler) filter(q *Query) (mal.Arg, error) {
	var rows mal.Arg
	haveRows := false
	for i := range q.Preds {
		p := &q.Preds[i]
		var colArg mal.Arg
		if !haveRows {
			colArg = c.bind(p.Col)
		} else {
			colArg = c.b.Op1("algebra", "semijoin", c.bind(p.Col), rows)
		}
		var out mal.Arg
		switch p.Op {
		case OpEq:
			out = c.b.Op1("algebra", "uselect", colArg, c.takeParam())
		case OpLt:
			out = c.b.Op1("algebra", "select", colArg, c.open(), c.takeParam(), c.cb(true), c.cb(false))
		case OpLe:
			out = c.b.Op1("algebra", "select", colArg, c.open(), c.takeParam(), c.cb(true), c.cb(true))
		case OpGt:
			out = c.b.Op1("algebra", "select", colArg, c.takeParam(), c.open(), c.cb(false), c.cb(true))
		case OpGe:
			out = c.b.Op1("algebra", "select", colArg, c.takeParam(), c.open(), c.cb(true), c.cb(true))
		case OpBetween:
			lo := c.takeParam()
			hi := c.takeParam()
			out = c.b.Op1("algebra", "select", colArg, lo, hi, c.cb(true), c.cb(true))
		case OpLike:
			out = c.b.Op1("algebra", "likeselect", colArg, c.takeParam())
		case OpNotLike:
			out = c.b.Op1("algebra", "notlikeselect", colArg, c.takeParam())
		case OpNe:
			col := c.tbl.Column(p.Col)
			if col.KindOf != bat.KStr {
				return mal.Arg{}, fmt.Errorf("sqlfe: <> supported on string columns only")
			}
			out = c.b.Op1("algebra", "notlikeselect", colArg, c.takeParam())
		default:
			return mal.Arg{}, fmt.Errorf("sqlfe: unsupported operator")
		}
		rows = out
		haveRows = true
	}
	if !haveRows {
		// No predicates: the base is the first referenced column.
		base := c.firstColumn(q)
		if base == "" {
			return mal.Arg{}, fmt.Errorf("sqlfe: query references no columns")
		}
		rows = c.bind(base)
	}
	return rows, nil
}

func (c *compiler) firstColumn(q *Query) string {
	for _, g := range q.GroupBy {
		return g
	}
	for _, it := range q.Items {
		if it.Col != "" {
			return it.Col
		}
	}
	if len(c.tbl.Cols) > 0 {
		return c.tbl.Cols[0].Name
	}
	return ""
}

// project semijoins a column onto the qualifying row set.
func (c *compiler) project(col string, rows mal.Arg) mal.Arg {
	return c.b.Op1("algebra", "semijoin", c.bind(col), rows)
}

func (c *compiler) emitGrouped(q *Query, rows mal.Arg) error {
	g := c.b.Op1("group", "new", c.project(q.GroupBy[0], rows))
	for _, col := range q.GroupBy[1:] {
		g = c.b.Op1("group", "derive", g, c.project(col, rows))
	}
	groupBase := c.project(q.GroupBy[0], rows)
	heads := c.b.Op1("group", "heads", g, groupBase)

	groupAgg := func(agg, col string) (mal.Arg, error) {
		if agg == "count" {
			return c.b.Op1("aggr", "countGrp", g), nil
		}
		v := c.project(col, rows)
		if agg == "avg" && c.tbl.MustColumn(col).KindOf == bat.KInt {
			v = c.b.Op1("batcalc", "int2dbl", v)
		}
		return c.b.Op1("aggr", agg, v, g), nil
	}

	// HAVING: filter the group ids by the aggregate predicate; every
	// exported column then semijoins onto the qualifying groups. This
	// keeps the (parameter-independent) grouping machinery reusable
	// with the parameter-dependent filter at the very end — the Q18
	// structure the paper's inter-query experiments exploit.
	var qual mal.Arg
	haveQual := false
	if q.Having != nil {
		aggB, err := groupAgg(q.Having.Agg, q.Having.Col)
		if err != nil {
			return err
		}
		var sel mal.Arg
		switch q.Having.Op {
		case OpEq:
			sel = c.b.Op1("algebra", "uselect", aggB, c.havingArg)
		case OpLt:
			sel = c.b.Op1("algebra", "select", aggB, c.open(), c.havingArg, c.cb(true), c.cb(false))
		case OpLe:
			sel = c.b.Op1("algebra", "select", aggB, c.open(), c.havingArg, c.cb(true), c.cb(true))
		case OpGt:
			sel = c.b.Op1("algebra", "select", aggB, c.havingArg, c.open(), c.cb(false), c.cb(true))
		case OpGe:
			sel = c.b.Op1("algebra", "select", aggB, c.havingArg, c.open(), c.cb(true), c.cb(true))
		default:
			return fmt.Errorf("sqlfe: unsupported HAVING operator")
		}
		qual = sel
		haveQual = true
	}
	restrict := func(a mal.Arg) mal.Arg {
		if !haveQual {
			return a
		}
		return c.b.Op1("algebra", "semijoin", a, qual)
	}

	for _, it := range q.Items {
		name := exportName(it)
		switch it.Agg {
		case "":
			// Group key output: map each group's representative row to
			// the column value.
			keycol := c.b.Op1("algebra", "join", heads, c.bind(it.Col))
			c.b.Do("sql", "exportCol", c.cs(name), restrict(keycol))
		case "count", "sum", "avg", "min", "max":
			aggB, err := groupAgg(it.Agg, it.Col)
			if err != nil {
				return err
			}
			c.b.Do("sql", "exportCol", c.cs(name), restrict(aggB))
		default:
			return fmt.Errorf("sqlfe: %s not supported with GROUP BY", it.Agg)
		}
	}
	return nil
}

func (c *compiler) emitFlat(q *Query, rows mal.Arg) error {
	hasAgg := false
	for _, it := range q.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	if hasAgg {
		for _, it := range q.Items {
			name := exportName(it)
			switch it.Agg {
			case "count":
				c.b.Do("sql", "exportValue", c.cs(name), c.b.Op1("aggr", "count", rows))
			case "countd":
				d := c.b.Op1("algebra", "kunique", c.b.Op1("bat", "reverse", c.project(it.Col, rows)))
				c.b.Do("sql", "exportValue", c.cs(name), c.b.Op1("aggr", "count", d))
			case "sum":
				v := c.project(it.Col, rows)
				if c.tbl.MustColumn(it.Col).KindOf == bat.KInt {
					c.b.Do("sql", "exportValue", c.cs(name), c.b.Op1("aggr", "sumInt", v))
				} else {
					c.b.Do("sql", "exportValue", c.cs(name), c.b.Op1("aggr", "sumFlt", v))
				}
			case "avg":
				v := c.project(it.Col, rows)
				if c.tbl.MustColumn(it.Col).KindOf == bat.KInt {
					v = c.b.Op1("batcalc", "int2dbl", v)
				}
				c.b.Do("sql", "exportValue", c.cs(name), c.b.Op1("aggr", "avgFlt", v))
			case "min", "max":
				v := c.project(it.Col, rows)
				srt := c.b.Op1("algebra", "sort", v, c.cb(it.Agg == "min"))
				c.b.Do("sql", "exportCol", c.cs(name), c.b.Op1("algebra", "topn", srt, mal.C(mal.IntV(1))))
			default:
				return fmt.Errorf("sqlfe: aggregate %q unsupported", it.Agg)
			}
		}
		return nil
	}

	// Plain projection, with optional ORDER BY + LIMIT.
	out := rows
	if q.OrderBy != nil {
		ord := c.project(q.OrderBy.Col, rows)
		srt := c.b.Op1("algebra", "sort", ord, c.cb(!q.OrderBy.Desc))
		out = srt
	}
	if q.Limit > 0 {
		out = c.b.Op1("algebra", "topn", out, c.limitArg)
	}
	for _, it := range q.Items {
		name := exportName(it)
		c.b.Do("sql", "exportCol", c.cs(name), c.project(it.Col, out))
	}
	return nil
}

func exportName(it SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if it.Agg == "" {
		return it.Col
	}
	if it.Col == "" {
		return it.Agg
	}
	return it.Agg + "_" + it.Col
}
