package sqlfe

import (
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
)

// Frontend compiles SQL text into cached query templates. The cache
// keys on the *normalized* query shape — the text parsed, normalized
// (canonical conjunct order, merged range pairs; see Normalize) and
// then literal-stripped — so different spellings of one parametrised
// query reuse one template, exactly as the paper's SQL front end does
// (§2.2), and semantically equal texts that merely render differently
// do too. This is what lets the recycler match instructions across
// instances and across spellings.
type Frontend struct {
	cat  *catalog.Catalog
	opts opt.Options
	// optStats accumulates optimizer pass counters (CSE merges,
	// commuted instructions) across every compile this front end runs.
	optStats opt.Stats

	mu    sync.Mutex
	cache map[string]*shapeEntry
	// hits/misses instrument the query cache.
	Hits, Misses int
}

// shapeEntry is one cached shape: the compiled template plus the
// number of compiles that mapped onto it. Behind a text-keyed layer
// (the server's prepared-statement cache) each compile is a distinct
// SQL text, so Compiles-1 counts the texts this shape absorbed beyond
// the first — the sharing the normalization pipeline buys.
type shapeEntry struct {
	tmpl     *mal.Template
	compiles int
}

// NewFrontend creates a front end over the catalog with the default
// optimizer pipeline (all normalization passes on).
func NewFrontend(cat *catalog.Catalog) *Frontend {
	return NewFrontendOpt(cat, opt.Options{})
}

// NewFrontendOpt creates a front end with an explicit optimizer
// configuration. opts.Stats is ignored: the front end installs its own
// collector (see CacheStats).
func NewFrontendOpt(cat *catalog.Catalog, opts opt.Options) *Frontend {
	f := &Frontend{cat: cat, opts: opts, cache: make(map[string]*shapeEntry)}
	f.opts.Stats = &f.optStats
	return f
}

// CompileTiming reports where a compile spent its time, for the
// observability layer's parse/optimize stage histograms.
type CompileTiming struct {
	// Parse covers parse, normalization and (on cache hits) parameter
	// extraction — the per-text front-end work.
	Parse time.Duration
	// Optimize covers plan build plus the optimizer passes; zero on
	// cache hits (the cached template paid it once).
	Optimize time.Duration
	// CacheHit reports whether the template came from the shape cache.
	CacheHit bool
}

// Compile parses the SQL text and returns the (cached) template plus
// this instance's parameter values.
func (f *Frontend) Compile(src string) (*mal.Template, []mal.Value, error) {
	tmpl, params, _, err := f.CompileTimed(src)
	return tmpl, params, err
}

// CompileTimed is Compile plus stage timing. The clock reads cost a
// few tens of nanoseconds against parse work in the microseconds, so
// there is no untimed variant.
func (f *Frontend) CompileTimed(src string) (*mal.Template, []mal.Value, CompileTiming, error) {
	var tm CompileTiming
	t0 := time.Now()
	q, err := Parse(src)
	if err != nil {
		tm.Parse = time.Since(t0)
		return nil, nil, tm, err
	}
	if !f.opts.SkipNormalizeSQL {
		q = Normalize(q)
	}
	shape := q.Shape()

	f.mu.Lock()
	cached := f.cache[shape]
	f.mu.Unlock()
	if cached != nil {
		// Extract this instance's parameter values without rebuilding
		// (or re-optimizing) the plan. Parameter extraction follows
		// the normalized predicate order, so the values line up with
		// the cached template's parameter slots no matter how this
		// text spelled its conjuncts — and the optimizer-pass
		// counters only ever count work on templates that live.
		params, err := ExtractParams(f.cat, q)
		tm.Parse = time.Since(t0)
		tm.CacheHit = true
		if err != nil {
			return nil, nil, tm, err
		}
		f.mu.Lock()
		f.Hits++
		cached.compiles++
		tmpl := cached.tmpl
		f.mu.Unlock()
		return tmpl, params, tm, nil
	}
	tm.Parse = time.Since(t0)

	o0 := time.Now()
	tmpl, params, err := CompileOpt(f.cat, q, f.opts)
	tm.Optimize = time.Since(o0)
	if err != nil {
		return nil, nil, tm, err
	}
	f.mu.Lock()
	f.Misses++
	if prev := f.cache[shape]; prev != nil {
		// A concurrent compile published the shape first; keep the
		// winner so every caller shares one template instance.
		prev.compiles++
		tmpl = prev.tmpl
	} else {
		f.cache[shape] = &shapeEntry{tmpl: tmpl, compiles: 1}
	}
	f.mu.Unlock()
	return tmpl, params, tm, nil
}

// CacheSize returns the number of cached templates.
func (f *Frontend) CacheSize() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.cache)
}

// CacheStats is a point-in-time snapshot of the template cache and the
// optimizer work done on its behalf.
type CacheStats struct {
	Size   int // distinct normalized query shapes cached
	Hits   int // compiles served from the cache
	Misses int // compiles that built a fresh template

	// CSEMerged counts instructions removed by common-subexpression
	// elimination across all compiles; Commuted counts commutative
	// instructions whose arguments were reordered into canonical form.
	CSEMerged int64
	Commuted  int64
}

// CacheStats returns the template-cache counters under the cache lock
// (the exported Hits/Misses fields are not safe to read while other
// goroutines compile).
func (f *Frontend) CacheStats() CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return CacheStats{
		Size:      len(f.cache),
		Hits:      f.Hits,
		Misses:    f.Misses,
		CSEMerged: f.optStats.CSEMerged.Load(),
		Commuted:  f.optStats.Commuted.Load(),
	}
}
