package sqlfe

import (
	"sync"

	"repro/internal/catalog"
	"repro/internal/mal"
)

// Frontend compiles SQL text into cached query templates. The cache
// keys on the query *shape* — the text with literals stripped — so
// different instances of the same parametrised query reuse one
// template, exactly as the paper's SQL front end does (§2.2). This is
// what lets the recycler match instructions across instances.
type Frontend struct {
	cat *catalog.Catalog

	mu    sync.Mutex
	cache map[string]*mal.Template
	// hits/misses instrument the query cache.
	Hits, Misses int
}

// NewFrontend creates a front end over the catalog.
func NewFrontend(cat *catalog.Catalog) *Frontend {
	return &Frontend{cat: cat, cache: make(map[string]*mal.Template)}
}

// Compile parses the SQL text and returns the (cached) template plus
// this instance's parameter values.
func (f *Frontend) Compile(src string) (*mal.Template, []mal.Value, error) {
	q, err := Parse(src)
	if err != nil {
		return nil, nil, err
	}
	shape := q.Shape()

	f.mu.Lock()
	cached, ok := f.cache[shape]
	f.mu.Unlock()
	if ok {
		f.mu.Lock()
		f.Hits++
		f.mu.Unlock()
		// Extract this instance's parameter values without rebuilding
		// the plan.
		_, params, err := Compile(f.cat, q)
		if err != nil {
			return nil, nil, err
		}
		return cached, params, nil
	}

	tmpl, params, err := Compile(f.cat, q)
	if err != nil {
		return nil, nil, err
	}
	f.mu.Lock()
	f.Misses++
	f.cache[shape] = tmpl
	f.mu.Unlock()
	return tmpl, params, nil
}

// CacheSize returns the number of cached templates.
func (f *Frontend) CacheSize() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.cache)
}

// CacheStats is a point-in-time snapshot of the template cache.
type CacheStats struct {
	Size   int // distinct query shapes cached
	Hits   int // compiles served from the cache
	Misses int // compiles that built a fresh template
}

// CacheStats returns the template-cache counters under the cache lock
// (the exported Hits/Misses fields are not safe to read while other
// goroutines compile).
func (f *Frontend) CacheStats() CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return CacheStats{Size: len(f.cache), Hits: f.Hits, Misses: f.Misses}
}
