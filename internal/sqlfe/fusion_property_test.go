package sqlfe

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/recycler"
)

// Fusion equivalence properties: for random rich queries the SAME
// optimized template must produce bit-identical results whether its
// fused chains execute in one kernel pass or per instruction
// (mal.Ctx.NoFusion), and fused execution must match the raw
// unoptimized per-instruction reference.

// genFusionTable builds a random table with int columns a, b and a
// string column c (so LIKE chains fuse too), plus occasional nils.
type fusionTable struct {
	cat *catalog.Catalog
	a   []int64
	b   []int64
	c   []string
}

func genFusionTable(rng *rand.Rand) *fusionTable {
	cat := catalog.New()
	tb := cat.CreateTable("sys", "t", []catalog.ColDef{
		{Name: "a", Kind: bat.KInt},
		{Name: "b", Kind: bat.KInt},
		{Name: "c", Kind: bat.KStr},
	})
	n := rng.Intn(300) + 1
	ft := &fusionTable{cat: cat}
	words := []string{"alpha", "beta", "gamma", "delta", "alphabet", "betamax", ""}
	rows := make([]catalog.Row, n)
	for i := range rows {
		av, bv := int64(rng.Intn(60)), int64(rng.Intn(60))
		cv := words[rng.Intn(len(words))]
		rows[i] = catalog.Row{"a": av, "b": bv, "c": cv}
		ft.a, ft.b, ft.c = append(ft.a, av), append(ft.b, bv), append(ft.c, cv)
	}
	tb.Append(rows)
	return ft
}

// genFusionQuery samples a conjunctive query mixing range, equality
// and LIKE predicates across columns — the shapes PlanFusion chains.
func genFusionQuery(rng *rand.Rand) string {
	var sel, tail string
	switch rng.Intn(3) {
	case 0:
		sel = "COUNT(*)"
	case 1:
		sel = "a, b"
		if rng.Intn(2) == 0 {
			tail = " ORDER BY a"
		}
	default:
		sel = "a, COUNT(*)"
		tail = " GROUP BY a"
	}
	nPreds := rng.Intn(3) + 1
	where := ""
	for i := 0; i < nPreds; i++ {
		if i > 0 {
			where += " AND "
		}
		switch rng.Intn(5) {
		case 0:
			where += fmt.Sprintf("c LIKE '%%%s%%'", []string{"alpha", "bet", "a", "x"}[rng.Intn(4)])
		case 1:
			where += fmt.Sprintf("c NOT LIKE '%%%s%%'", []string{"alpha", "mm"}[rng.Intn(2)])
		default:
			where += genPred(rng).sql()
		}
	}
	return fmt.Sprintf("SELECT %s FROM sys.t WHERE %s%s", sel, where, tail)
}

func execNoFusion(cat *catalog.Catalog, tmpl *mal.Template, params []mal.Value) ([]mal.Result, error) {
	ctx := &mal.Ctx{Cat: cat, NoFusion: true}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		return nil, err
	}
	return ctx.Results, nil
}

// TestFusedExecutionBitIdentical is the fusion kernel's master
// property: fused and unfused execution of one template agree exactly,
// and both agree with the raw unoptimized plan. The test also asserts
// it is not vacuous — across the run the planner must actually have
// annotated chains.
func TestFusedExecutionBitIdentical(t *testing.T) {
	chains := 0
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ft := genFusionTable(rng)
		fe := NewFrontend(ft.cat)
		for q := 0; q < 6; q++ {
			sql := genFusionQuery(rng)
			tmpl, params, err := fe.Compile(sql)
			if err != nil {
				t.Logf("seed %d: compile %q: %v", seed, sql, err)
				return false
			}
			chains += len(tmpl.FusedChains())
			fused, err := execResults(ft.cat, nil, 0, tmpl, params)
			if err != nil {
				t.Logf("seed %d: fused run %q: %v", seed, sql, err)
				return false
			}
			unfused, err := execNoFusion(ft.cat, tmpl, params)
			if err != nil {
				t.Logf("seed %d: unfused run %q: %v", seed, sql, err)
				return false
			}
			if !resultsBitIdentical(fused, unfused) {
				t.Logf("seed %d: fused != unfused for %q", seed, sql)
				return false
			}
			rawT, rawP, err := rawCompile(ft.cat, sql)
			if err != nil {
				t.Logf("seed %d: raw compile %q: %v", seed, sql, err)
				return false
			}
			want, err := execResults(ft.cat, nil, 0, rawT, rawP)
			if err != nil {
				t.Logf("seed %d: raw run %q: %v", seed, sql, err)
				return false
			}
			if !resultsBitIdentical(want, fused) {
				t.Logf("seed %d: fused != raw reference for %q", seed, sql)
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
	if chains == 0 {
		t.Fatal("property is vacuous: no query produced a fused chain")
	}
}

// TestFusionConcurrentStress drives one set of cached templates from
// many goroutines — fused naive runs racing recycled (never-fused)
// runs of the same templates — so the race detector sees the fused
// reader paths against the recycler's pool mutation. Results are
// checked against a single-threaded unfused run per query.
func TestFusionConcurrentStress(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	ft := genFusionTable(rng)
	fe := NewFrontend(ft.cat)
	rec := recycler.New(ft.cat, recycler.Config{
		Admission: recycler.KeepAll, Subsumption: true,
	})
	defer rec.Close()

	type job struct {
		tmpl   *mal.Template
		params []mal.Value
		want   []mal.Result
	}
	var jobs []job
	for len(jobs) < 8 {
		sql := genFusionQuery(rng)
		tmpl, params, err := fe.Compile(sql)
		if err != nil {
			continue
		}
		want, err := execNoFusion(ft.cat, tmpl, params)
		if err != nil {
			t.Fatalf("reference run: %v", err)
		}
		jobs = append(jobs, job{tmpl, params, want})
	}

	var wg sync.WaitGroup
	var qid, failures int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				j := jobs[(w+i)%len(jobs)]
				var got []mal.Result
				var err error
				if w%2 == 0 {
					// Fused naive execution, dataflow scheduler.
					ctx := &mal.Ctx{Cat: ft.cat, Workers: 2}
					err = mal.Run(ctx, j.tmpl, j.params...)
					got = ctx.Results
				} else {
					mu.Lock()
					qid++
					id := uint64(qid)
					mu.Unlock()
					rec.BeginQuery(id, j.tmpl.ID)
					got, err = execResults(ft.cat, rec, id, j.tmpl, j.params)
					rec.EndQuery(id)
				}
				if err != nil || !resultsBitIdentical(j.want, got) {
					mu.Lock()
					failures++
					mu.Unlock()
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failures > 0 {
		t.Fatalf("%d workers saw divergent or failed results", failures)
	}
}
