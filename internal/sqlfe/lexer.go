package sqlfe

import (
	"fmt"
	"strings"
	"unicode"
)

type tokKind int

const (
	tkEOF tokKind = iota
	tkIdent
	tkNumber
	tkString
	tkPunct   // ( ) , . *
	tkOp      // = < <= > >= <>
	tkKeyword // normalised upper-case SQL keyword
)

type token struct {
	kind tokKind
	text string
	pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true,
	"GROUP": true, "BY": true, "HAVING": true, "LIMIT": true, "BETWEEN": true,
	"LIKE": true, "NOT": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "DISTINCT": true, "AS": true, "DATE": true,
	"ORDER": true, "ASC": true, "DESC": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenises the query text.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			l.pos++
		case c == '\'':
			if err := l.str(); err != nil {
				return nil, err
			}
		case c >= '0' && c <= '9':
			l.number()
		case c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9':
			// Negative literal (dec BETWEEN -90 AND 90). The subset has
			// no arithmetic, so a minus can only introduce a number.
			l.number()
		case isIdentStart(rune(c)):
			l.ident()
		case c == '(' || c == ')' || c == ',' || c == '.' || c == '*':
			l.toks = append(l.toks, token{kind: tkPunct, text: string(c), pos: l.pos})
			l.pos++
		case c == '=' || c == '<' || c == '>':
			l.op()
		default:
			return nil, fmt.Errorf("sqlfe: unexpected character %q at %d", c, l.pos)
		}
	}
	l.toks = append(l.toks, token{kind: tkEOF, pos: l.pos})
	return l.toks, nil
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func (l *lexer) str() error {
	start := l.pos
	l.pos++ // opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote, SQL style.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				sb.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.toks = append(l.toks, token{kind: tkString, text: sb.String(), pos: start})
			return nil
		}
		sb.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sqlfe: unterminated string starting at %d", start)
}

func (l *lexer) number() {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			seenDot = true
			l.pos++
			continue
		}
		// Date literals inside DATE '...' come through str(); bare
		// 1996-07-01 would lex as numbers and minuses, which the
		// subset does not support.
		break
	}
	l.toks = append(l.toks, token{kind: tkNumber, text: l.src[start:l.pos], pos: start})
}

func (l *lexer) ident() {
	start := l.pos
	for l.pos < len(l.src) {
		c := rune(l.src[l.pos])
		if isIdentStart(c) || unicode.IsDigit(c) {
			l.pos++
			continue
		}
		break
	}
	text := l.src[start:l.pos]
	up := strings.ToUpper(text)
	if keywords[up] {
		l.toks = append(l.toks, token{kind: tkKeyword, text: up, pos: start})
		return
	}
	l.toks = append(l.toks, token{kind: tkIdent, text: strings.ToLower(text), pos: start})
}

func (l *lexer) op() {
	start := l.pos
	c := l.src[l.pos]
	l.pos++
	text := string(c)
	if l.pos < len(l.src) {
		two := text + string(l.src[l.pos])
		if two == "<=" || two == ">=" || two == "<>" {
			text = two
			l.pos++
		}
	}
	l.toks = append(l.toks, token{kind: tkOp, text: text, pos: start})
}
