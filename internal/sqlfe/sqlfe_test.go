package sqlfe

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/recycler"
)

func testCat(t *testing.T) *catalog.Catalog {
	t.Helper()
	cat := catalog.New()
	tb := cat.CreateTable("sys", "orders", []catalog.ColDef{
		{Name: "okey", Kind: bat.KInt},
		{Name: "total", Kind: bat.KFloat},
		{Name: "status", Kind: bat.KStr},
		{Name: "odate", Kind: bat.KDate},
	})
	d := func(y, m, dd int) bat.Date { return algebra.MkDate(y, m, dd) }
	tb.Append([]catalog.Row{
		{"okey": int64(1), "total": 10.0, "status": "open", "odate": d(1996, 1, 10)},
		{"okey": int64(2), "total": 20.0, "status": "open", "odate": d(1996, 2, 10)},
		{"okey": int64(3), "total": 30.0, "status": "done", "odate": d(1996, 3, 10)},
		{"okey": int64(4), "total": 40.0, "status": "done", "odate": d(1996, 4, 10)},
		{"okey": int64(5), "total": 50.0, "status": "failed late", "odate": d(1996, 5, 10)},
	})
	return cat
}

func exec(t *testing.T, cat *catalog.Catalog, hook mal.RecyclerHook, qid uint64, src string) *mal.Ctx {
	t.Helper()
	f := NewFrontend(cat)
	return execVia(t, f, cat, hook, qid, src)
}

func execVia(t *testing.T, f *Frontend, cat *catalog.Catalog, hook mal.RecyclerHook, qid uint64, src string) *mal.Ctx {
	t.Helper()
	tmpl, params, err := f.Compile(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	ctx := &mal.Ctx{Cat: cat, Hook: hook, QueryID: qid}
	if r, ok := hook.(*recycler.Recycler); ok && r != nil {
		r.BeginQuery(qid, tmpl.ID)
		defer r.EndQuery(qid)
	}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return ctx
}

func TestCountStar(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1, "SELECT COUNT(*) FROM sys.orders WHERE total >= 20")
	if got := ctx.Results[0].Val.I; got != 4 {
		t.Fatalf("count = %d, want 4", got)
	}
}

func TestEqualityAndBetween(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1, "SELECT COUNT(*) FROM sys.orders WHERE status = 'open'")
	if ctx.Results[0].Val.I != 2 {
		t.Fatalf("eq count = %d", ctx.Results[0].Val.I)
	}
	ctx = exec(t, cat, nil, 2, "SELECT COUNT(*) FROM sys.orders WHERE total BETWEEN 20 AND 40")
	if ctx.Results[0].Val.I != 3 {
		t.Fatalf("between count = %d", ctx.Results[0].Val.I)
	}
}

func TestDatePredicates(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1,
		"SELECT COUNT(*) FROM sys.orders WHERE odate >= DATE '1996-02-01' AND odate < DATE '1996-05-01'")
	if ctx.Results[0].Val.I != 3 {
		t.Fatalf("date count = %d", ctx.Results[0].Val.I)
	}
}

func TestLikeAndNotLike(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1, "SELECT COUNT(*) FROM sys.orders WHERE status LIKE '%ail%'")
	if ctx.Results[0].Val.I != 1 {
		t.Fatalf("like count = %d", ctx.Results[0].Val.I)
	}
	ctx = exec(t, cat, nil, 2, "SELECT COUNT(*) FROM sys.orders WHERE status NOT LIKE 'open'")
	if ctx.Results[0].Val.I != 3 {
		t.Fatalf("not like count = %d", ctx.Results[0].Val.I)
	}
}

func TestAggregates(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1,
		"SELECT SUM(total) AS s, AVG(total) AS a, COUNT(DISTINCT status) AS d FROM sys.orders WHERE okey <= 4")
	if ctx.Results[0].Val.F != 100 {
		t.Fatalf("sum = %v", ctx.Results[0].Val.F)
	}
	if ctx.Results[1].Val.F != 25 {
		t.Fatalf("avg = %v", ctx.Results[1].Val.F)
	}
	if ctx.Results[2].Val.I != 2 {
		t.Fatalf("count distinct = %v", ctx.Results[2].Val.I)
	}
}

func TestMinMax(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1, "SELECT MIN(total) AS lo, MAX(total) AS hi FROM sys.orders")
	lo := ctx.Results[0].Val.Bat
	hi := ctx.Results[1].Val.Bat
	if lo.Tail.Get(0) != 10.0 || hi.Tail.Get(0) != 50.0 {
		t.Fatalf("min/max = %v/%v", lo.Tail.Get(0), hi.Tail.Get(0))
	}
}

func TestGroupBy(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1,
		"SELECT status, COUNT(*) AS n, SUM(total) AS s FROM sys.orders GROUP BY status")
	keys := ctx.Results[0].Val.Bat
	counts := ctx.Results[1].Val.Bat
	sums := ctx.Results[2].Val.Bat
	if keys.Len() != 3 || counts.Len() != 3 || sums.Len() != 3 {
		t.Fatalf("group sizes: %d/%d/%d", keys.Len(), counts.Len(), sums.Len())
	}
	// First group in row order is "open": 2 rows totalling 30.
	if keys.Tail.Get(0) != "open" || counts.Tail.Get(0) != int64(2) || sums.Tail.Get(0) != 30.0 {
		t.Fatalf("group 0 = %v/%v/%v", keys.Tail.Get(0), counts.Tail.Get(0), sums.Tail.Get(0))
	}
}

func TestGroupByWithPredicate(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1,
		"SELECT status, COUNT(*) AS n FROM sys.orders WHERE total > 15 GROUP BY status")
	keys := ctx.Results[0].Val.Bat
	if keys.Len() != 3 {
		t.Fatalf("groups = %d", keys.Len())
	}
	if keys.Tail.Get(0) != "open" || ctx.Results[1].Val.Bat.Tail.Get(0) != int64(1) {
		t.Fatalf("filtered group wrong: %v %v", keys.Tail.Get(0), ctx.Results[1].Val.Bat.Tail.Get(0))
	}
}

func TestProjectionWithLimit(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1, "SELECT okey, total FROM sys.orders WHERE total > 15 LIMIT 2")
	if ctx.Results[0].Val.Bat.Len() != 2 || ctx.Results[1].Val.Bat.Len() != 2 {
		t.Fatalf("limit sizes: %d/%d", ctx.Results[0].Val.Bat.Len(), ctx.Results[1].Val.Bat.Len())
	}
}

func TestOrderByLimit(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1, "SELECT total FROM sys.orders ORDER BY total DESC LIMIT 2")
	b := ctx.Results[0].Val.Bat
	if b.Len() != 2 {
		t.Fatalf("rows = %d", b.Len())
	}
	vals := map[float64]bool{b.Tail.Get(0).(float64): true, b.Tail.Get(1).(float64): true}
	if !vals[50.0] || !vals[40.0] {
		t.Fatalf("top-2 wrong: %v", vals)
	}
}

func TestTemplateCacheSharesShapes(t *testing.T) {
	cat := testCat(t)
	f := NewFrontend(cat)
	t1, p1, err := f.Compile("SELECT COUNT(*) FROM sys.orders WHERE total >= 20")
	if err != nil {
		t.Fatal(err)
	}
	t2, p2, err := f.Compile("SELECT COUNT(*) FROM sys.orders WHERE total >= 35")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("same shape should share one template")
	}
	if p1[0].F == p2[0].F {
		t.Fatal("parameters must differ")
	}
	if f.CacheSize() != 1 || f.Hits != 1 || f.Misses != 1 {
		t.Fatalf("cache stats: size=%d hits=%d misses=%d", f.CacheSize(), f.Hits, f.Misses)
	}
	// A different shape compiles separately.
	t3, _, err := f.Compile("SELECT COUNT(*) FROM sys.orders WHERE total < 20")
	if err != nil {
		t.Fatal(err)
	}
	if t3 == t1 || f.CacheSize() != 2 {
		t.Fatal("different shapes must not share templates")
	}
}

func TestSQLWithRecyclerEndToEnd(t *testing.T) {
	cat := testCat(t)
	rec := recycler.New(cat, recycler.Config{Admission: recycler.KeepAll, Subsumption: true})
	f := NewFrontend(cat)
	// Same shape, different constants: the first fills the pool, the
	// second reuses the shared template's binds and subsumes the
	// narrower range.
	execVia(t, f, cat, rec, 1, "SELECT COUNT(*) FROM sys.orders WHERE total BETWEEN 10 AND 50")
	ctx := execVia(t, f, cat, rec, 2, "SELECT COUNT(*) FROM sys.orders WHERE total BETWEEN 20 AND 40")
	if ctx.Results[0].Val.I != 3 {
		t.Fatalf("count = %d", ctx.Results[0].Val.I)
	}
	if ctx.Stats.Subsumed == 0 {
		t.Fatalf("expected subsumption across SQL instances: %+v", ctx.Stats)
	}
	// Exact repetition: full hit.
	ctx = execVia(t, f, cat, rec, 3, "SELECT COUNT(*) FROM sys.orders WHERE total BETWEEN 20 AND 40")
	if ctx.Stats.HitsNonBind == 0 {
		t.Fatal("repeat not served from pool")
	}
}

func TestParseErrorsSQL(t *testing.T) {
	cat := testCat(t)
	f := NewFrontend(cat)
	bad := []string{
		"",
		"SELECT",
		"SELECT FROM sys.orders",
		"SELECT okey FROM",
		"SELECT okey FROM sys.orders WHERE",
		"SELECT okey FROM sys.orders WHERE okey !! 3",
		"SELECT okey FROM sys.orders LIMIT 0",
		"SELECT okey FROM nosuch.table",
		"SELECT nosuch FROM sys.orders WHERE nosuch = 3",
		"SELECT okey FROM sys.orders WHERE okey = 'str'",  // type mismatch
		"SELECT okey FROM sys.orders WHERE status LIKE 3", // like needs string
		"SELECT okey FROM sys.orders WHERE odate > 5",     // date needs DATE
		"SELECT okey FROM sys.orders WHERE okey <> 3",     // <> non-string
	}
	for _, src := range bad {
		if _, _, err := f.Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}

func TestShapeStability(t *testing.T) {
	q1, err := Parse("SELECT COUNT(*) FROM sys.orders WHERE total >= 20 AND status = 'open'")
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse("select count(*) from sys.orders where total >= 99 and status = 'done'")
	if err != nil {
		t.Fatal(err)
	}
	if q1.Shape() != q2.Shape() {
		t.Fatalf("shapes differ:\n%s\n%s", q1.Shape(), q2.Shape())
	}
	q3, _ := Parse("SELECT COUNT(*) FROM sys.orders WHERE total > 20 AND status = 'open'")
	if q1.Shape() == q3.Shape() {
		t.Fatal("different operators must produce different shapes")
	}
}

func TestLexerEscapesAndErrors(t *testing.T) {
	toks, err := lex("SELECT 'it''s' FROM t")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, tok := range toks {
		if tok.kind == tkString && tok.text == "it's" {
			found = true
		}
	}
	if !found {
		t.Fatal("escaped quote not lexed")
	}
	if _, err := lex("SELECT 'unterminated"); err == nil {
		t.Fatal("unterminated string must error")
	}
	if _, err := lex("SELECT ~"); err == nil {
		t.Fatal("bad character must error")
	}
}

func TestHavingFiltersGroups(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1,
		"SELECT status, COUNT(*) AS n, SUM(total) AS s FROM sys.orders GROUP BY status HAVING SUM(total) > 40")
	keys := ctx.Results[0].Val.Bat
	// Groups: open=30, done=70, "failed late"=50 -> done and failed.
	if keys.Len() != 2 {
		t.Fatalf("having groups = %d, want 2: %s", keys.Len(), keys.Dump(5))
	}
	vals := map[string]bool{}
	for i := 0; i < keys.Len(); i++ {
		vals[keys.Tail.Get(i).(string)] = true
	}
	if !vals["done"] || !vals["failed late"] {
		t.Fatalf("having kept wrong groups: %v", vals)
	}
	sums := ctx.Results[2].Val.Bat
	if sums.Len() != 2 {
		t.Fatalf("sums not restricted: %d", sums.Len())
	}
}

func TestHavingCountStar(t *testing.T) {
	cat := testCat(t)
	ctx := exec(t, cat, nil, 1,
		"SELECT status FROM sys.orders GROUP BY status HAVING COUNT(*) >= 2")
	keys := ctx.Results[0].Val.Bat
	if keys.Len() != 2 { // open (2) and done (2)
		t.Fatalf("groups = %d", keys.Len())
	}
}

func TestHavingTemplateReuseAcrossLevels(t *testing.T) {
	// The paper's Q18 case in SQL: the grouping machinery is
	// parameter independent; only the HAVING bound changes.
	cat := testCat(t)
	rec := recycler.New(cat, recycler.Config{Admission: recycler.KeepAll})
	f := NewFrontend(cat)
	execVia(t, f, cat, rec, 1,
		"SELECT status, SUM(total) AS s FROM sys.orders GROUP BY status HAVING SUM(total) > 40")
	ctx := execVia(t, f, cat, rec, 2,
		"SELECT status, SUM(total) AS s FROM sys.orders GROUP BY status HAVING SUM(total) > 60")
	if ctx.Stats.GlobalHits == 0 {
		t.Fatalf("grouping machinery not reused across HAVING levels: %+v", ctx.Stats)
	}
	if ctx.Results[0].Val.Bat.Len() != 1 { // only done=70
		t.Fatalf("having>60 groups = %d", ctx.Results[0].Val.Bat.Len())
	}
}

func TestHavingErrors(t *testing.T) {
	cat := testCat(t)
	f := NewFrontend(cat)
	bad := []string{
		"SELECT status FROM sys.orders HAVING COUNT(*) > 2", // no GROUP BY
		"SELECT status FROM sys.orders GROUP BY status HAVING COUNT(*) <> 2",
		"SELECT status FROM sys.orders GROUP BY status HAVING SUM(nosuch) > 2",
		"SELECT status FROM sys.orders GROUP BY status HAVING COUNT(*) > 'x'",
	}
	for _, src := range bad {
		if _, _, err := f.Compile(src); err == nil {
			t.Errorf("Compile(%q) should fail", src)
		}
	}
}
