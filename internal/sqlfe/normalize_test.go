package sqlfe

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
)

func normCat() *catalog.Catalog {
	cat := catalog.New()
	tb := cat.CreateTable("sys", "t", []catalog.ColDef{
		{Name: "a", Kind: bat.KInt},
		{Name: "b", Kind: bat.KInt},
		{Name: "f", Kind: bat.KFloat},
		{Name: "d", Kind: bat.KDate},
	})
	rows := make([]catalog.Row, 20)
	for i := range rows {
		rows[i] = catalog.Row{
			"a": int64(i), "b": int64(19 - i), "f": float64(i) / 2,
			"d": bat.Date(10957 + i), // 2000-01-01 + i days
		}
	}
	tb.Append(rows)
	return cat
}

func mustCompile(t *testing.T, fe *Frontend, src string) (*mal.Template, []mal.Value) {
	t.Helper()
	tmpl, params, err := fe.Compile(src)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return tmpl, params
}

func mustCount(t *testing.T, cat *catalog.Catalog, tmpl *mal.Template, params []mal.Value) int64 {
	t.Helper()
	ctx := &mal.Ctx{Cat: cat}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		t.Fatal(err)
	}
	return ctx.Results[0].Val.I
}

// TestNormalizeSharesShuffledConjuncts is the tentpole's front-end
// half: the same conjunction in any order is ONE template, and the
// parameter vectors line up with the normalized parameter slots.
func TestNormalizeSharesShuffledConjuncts(t *testing.T) {
	cat := normCat()
	fe := NewFrontend(cat)
	t1, p1 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE a > 3 AND b < 12")
	t2, p2 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE b < 12 AND a > 3")
	if t1 != t2 {
		t.Fatal("shuffled conjuncts must share one template")
	}
	if len(p1) != len(p2) {
		t.Fatalf("param arity differs: %d vs %d", len(p1), len(p2))
	}
	for i := range p1 {
		if !p1[i].EqualConst(p2[i]) {
			t.Fatalf("param %d differs: %v vs %v", i, p1[i], p2[i])
		}
	}
	n1 := mustCount(t, cat, t1, p1)
	n2 := mustCount(t, cat, t2, p2)
	if n1 != n2 {
		t.Fatalf("counts differ: %d vs %d", n1, n2)
	}
	if st := fe.CacheStats(); st.Size != 1 || st.Hits != 1 {
		t.Fatalf("cache stats = %+v, want one shape with one hit", st)
	}
}

// Permutations of same-column same-operator conjuncts also
// canonicalise: the literal is the sort tie-break, and parameter
// extraction follows the sorted order.
func TestNormalizeSortsEqualOpsByLiteral(t *testing.T) {
	cat := normCat()
	fe := NewFrontend(cat)
	t1, p1 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE a > 7 AND a > 2")
	t2, p2 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE a > 2 AND a > 7")
	if t1 != t2 {
		t.Fatal("literal permutation must share one template")
	}
	for i := range p1 {
		if !p1[i].EqualConst(p2[i]) {
			t.Fatalf("param %d differs: %v vs %v", i, p1[i], p2[i])
		}
	}
}

// TestNormalizeMergesRangePairs: >=/<= pairs are the BETWEEN they
// spell.
func TestNormalizeMergesRangePairs(t *testing.T) {
	cat := normCat()
	fe := NewFrontend(cat)
	t1, p1 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE a >= 3 AND a <= 12")
	t2, p2 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE a BETWEEN 3 AND 12")
	if t1 != t2 {
		t.Fatal(">=/<= pair must normalize to the BETWEEN template")
	}
	if n := mustCount(t, cat, t1, p1); n != mustCount(t, cat, t2, p2) || n != 10 {
		t.Fatalf("count = %d, want 10", n)
	}
	// Strict bounds must NOT merge (BETWEEN is inclusive-inclusive).
	t3, _ := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE a > 3 AND a <= 12")
	if t3 == t1 {
		t.Fatal("strict lower bound must not merge into BETWEEN")
	}
}

// TestNormalizeLiteralForms: numeric width and date padding variants
// produce one template and equal parameter values.
func TestNormalizeLiteralForms(t *testing.T) {
	cat := normCat()
	fe := NewFrontend(cat)
	t1, p1 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE f > 3")
	t2, p2 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE f > 3.0")
	if t1 != t2 {
		t.Fatal("int and float spellings on a float column must share one template")
	}
	if !p1[0].EqualConst(p2[0]) {
		t.Fatalf("normalized literals differ: %v vs %v", p1[0], p2[0])
	}
	d1, q1 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE d >= DATE '2000-01-05'")
	d2, q2 := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE d >= DATE '2000-1-5'")
	if d1 != d2 {
		t.Fatal("date padding variants must share one template")
	}
	if !q1[0].EqualConst(q2[0]) {
		t.Fatalf("date values differ: %v vs %v", q1[0], q2[0])
	}
}

// TestSkipNormalizeSQLRestoresSeedBehaviour: with the pass disabled,
// shuffled spellings are distinct shapes again (the experiment
// baseline the equivalence workload measures against).
func TestSkipNormalizeSQLRestoresSeedBehaviour(t *testing.T) {
	cat := normCat()
	fe := NewFrontendOpt(cat, opt.Options{SkipNormalizeSQL: true})
	t1, _ := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE a > 3 AND b < 12")
	t2, _ := mustCompile(t, fe, "SELECT COUNT(*) FROM sys.t WHERE b < 12 AND a > 3")
	if t1 == t2 {
		t.Fatal("SkipNormalizeSQL must keep spellings distinct")
	}
}

// TestNormalizeIdempotent: normalizing a normalized query is a no-op
// (the shape is a fixed point, so cache keys are stable).
func TestNormalizeIdempotent(t *testing.T) {
	q, err := Parse("SELECT COUNT(*) FROM sys.t WHERE b < 12 AND a >= 1 AND a <= 9 AND f > 0.5")
	if err != nil {
		t.Fatal(err)
	}
	s1 := Normalize(q).Shape()
	s2 := Normalize(q).Shape()
	if s1 != s2 {
		t.Fatalf("shape not a fixed point: %q vs %q", s1, s2)
	}
}
