// Package sqlfe implements the engine's SQL front end for a focused
// query subset: single-table SELECT with conjunctive predicates,
// grouping, aggregates and LIMIT. Its defining feature is the paper's
// template extraction (§2.2): every literal constant in the query is
// factored out into a template parameter, so textually different
// queries that share a shape compile to the *same* cached template —
// which is what gives the recycler its inter-query reuse surface.
//
// Shapes are taken over the NORMALIZED query (see Normalize): the
// WHERE conjunction in canonical order, >=/<= pairs merged into
// BETWEEN, literal forms collapsed. Semantically equal texts that
// merely render differently therefore share one template too, and
// their parameter vectors align with the normalized predicate order.
package sqlfe
