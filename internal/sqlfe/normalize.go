package sqlfe

import (
	"fmt"
	"sort"
	"strconv"
)

// This file implements query normalization: rewriting a parsed query
// into a canonical form so that semantically equal SQL texts compile
// to ONE shape, one cached template, and — downstream — one family of
// run-time signatures in the recycle pool. Without it, `WHERE a>1 AND
// b<2` and `WHERE b<2 AND a>1` occupy two templates whose instruction
// instances are guaranteed recycler misses.
//
// Normalization exploits exactly two algebraic facts:
//
//   - AND is commutative and associative, and every supported
//     predicate is a pure single-column filter, so the conjuncts of
//     WHERE may be reordered freely.
//   - `c >= lo AND c <= hi` is `c BETWEEN lo AND hi`.
//
// The pipeline runs in the front end, before Shape() is taken, so the
// template cache (and the server's prepared-statement layer above it)
// key on the normalized shape. It is gated by
// opt.Options.SkipNormalizeSQL for experiments that need the seed
// behaviour.

// Normalize rewrites q into canonical form in place and returns it:
// complementary >=/<= conjunct pairs merge into BETWEEN, then the
// conjunction is sorted by (column, operator, literal). Sorting by
// literal as the final tie-break makes even permutations of same-
// column same-operator conjuncts canonical: parameter extraction
// follows the sorted order, so equal instances produce equal parameter
// vectors too.
func Normalize(q *Query) *Query {
	q.Preds = mergeRangePairs(q.Preds)
	sort.SliceStable(q.Preds, func(i, j int) bool {
		return predLess(&q.Preds[i], &q.Preds[j])
	})
	return q
}

// mergeRangePairs folds `c >= lo` + `c <= hi` into `c BETWEEN lo AND
// hi` when the column has exactly one of each (both spellings bound
// the same closed interval; a conjunction is order-free). Columns with
// other range shapes (strict bounds, duplicates) are left alone —
// BETWEEN is inclusive-inclusive only.
func mergeRangePairs(preds []Pred) []Pred {
	type bounds struct{ ge, le, other int }
	byCol := map[string]*bounds{}
	for i := range preds {
		b := byCol[preds[i].Col]
		if b == nil {
			b = &bounds{ge: -1, le: -1}
			byCol[preds[i].Col] = b
		}
		switch preds[i].Op {
		case OpGe:
			if b.ge >= 0 {
				b.other++
			} else {
				b.ge = i
			}
		case OpLe:
			if b.le >= 0 {
				b.other++
			} else {
				b.le = i
			}
		case OpGt, OpLt, OpBetween:
			b.other++
		}
	}
	drop := map[int]bool{}
	for _, b := range byCol {
		if b.ge < 0 || b.le < 0 || b.other > 0 {
			continue
		}
		preds[b.ge] = Pred{
			Col:  preds[b.ge].Col,
			Op:   OpBetween,
			Args: []Lit{preds[b.ge].Args[0], preds[b.le].Args[0]},
		}
		drop[b.le] = true
	}
	if len(drop) == 0 {
		return preds
	}
	out := preds[:0]
	for i := range preds {
		if !drop[i] {
			out = append(out, preds[i])
		}
	}
	return out
}

// predLess orders conjuncts by (column, operator, literals).
func predLess(a, b *Pred) bool {
	if a.Col != b.Col {
		return a.Col < b.Col
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	for i := 0; i < len(a.Args) && i < len(b.Args); i++ {
		ka, kb := litKey(a.Args[i]), litKey(b.Args[i])
		if ka != kb {
			return ka < kb
		}
	}
	return len(a.Args) < len(b.Args)
}

// litKey renders a literal's canonical comparison key. Numeric
// spellings collapse (10, 10.0 and 1e1 order equally — the front end
// types them identically against the column later), and date literals
// collapse to their padded ISO form.
func litKey(l Lit) string {
	switch l.Kind {
	case LInt:
		return "n" + strconv.FormatFloat(float64(l.I), 'g', -1, 64)
	case LFloat:
		return "n" + strconv.FormatFloat(l.F, 'g', -1, 64)
	case LDate:
		if y, m, d, err := splitISODate(l.S); err == nil {
			return fmt.Sprintf("d%04d-%02d-%02d", y, m, d)
		}
		return "d" + l.S
	default:
		return "s" + l.S
	}
}
