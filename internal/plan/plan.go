// Package plan defines the one structured semantic identity of a plan
// instruction instance — plan.Signature — shared by every layer that
// needs to decide "are these two computations the same?": the
// recycler's exact-match pool index, the disk spill tier's durable
// keys, and (through the SQL front end's normalized shapes upstream)
// the template and prepared-statement caches.
//
// Before this package existed the repo had three disjoint identity
// notions: the front end's literal-stripped shape string, the
// recycler's ad-hoc render()/signature() strings, and the spill tier's
// hand-rolled canonical signatures. They have been unified: every
// matching key in the system is now a *derivation* of one Signature
// value, so a normalization improvement upstream (canonical conjunct
// order, merged common subexpressions, normalized literals) propagates
// to every cache at once.
//
// A Signature has two encodings:
//
//   - Key() — the run-time exact-match key. BAT operands are named by
//     the recycle pool entry id of their producer ("e12"), scalars by
//     their typed literal key ("i7", "f0.5", "sfoo"). Entry ids die
//     with the process (and with evictions), so this key is only
//     meaningful while the producers are pooled.
//   - Canonical() — the durable, provenance-free key. Each BAT operand
//     is replaced by its producer's own canonical signature,
//     recursively, so the key survives eviction of the producers and
//     process restarts. The spill tier stores records under it, and
//     RuntimeKey rebuilds a fresh run-time key from it at prewarm.
package plan

import (
	"strings"
	"unicode/utf8"

	"repro/internal/mal"
)

// Operand is one argument of a signed instruction instance.
type Operand struct {
	// Bat marks a BAT operand; Prov is the recycle pool entry id of
	// its producer.
	Bat  bool
	Prov uint64
	// Key is the normalized literal matching key of a scalar operand.
	Key string
}

// Signature is the structured semantic identity of one instruction
// instance: the operation plus its canonical operands. Build it with
// Sign; derive string keys with Key, Render and Canonical.
type Signature struct {
	Op   string
	Args []Operand
}

// Sign derives the signature of an instruction instance from its
// operation name and runtime argument values. ok=false reports a BAT
// argument with unknown provenance (lineage cut, e.g. by an exhausted
// admission credit): such an instance has no semantic identity the
// pool could match, so neither matching nor admission is possible.
func Sign(op string, args []mal.Value) (Signature, bool) {
	s := Signature{Op: op, Args: make([]Operand, len(args))}
	for i, a := range args {
		if a.IsBat() {
			if a.Prov == 0 {
				return Signature{}, false
			}
			s.Args[i] = Operand{Bat: true, Prov: a.Prov}
		} else {
			s.Args[i] = Operand{Key: a.Key()}
		}
	}
	return s, true
}

// Key renders the run-time exact-match key: operation plus the
// provenance id of every BAT operand and the literal key of every
// scalar. Two instances with equal keys compute the same result — the
// recycler's matching criterion (paper §3.2).
func (s Signature) Key() string {
	var sb strings.Builder
	sb.WriteString(s.Op)
	sb.WriteByte('(')
	for i, a := range s.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if a.Bat {
			sb.WriteByte('e')
			writeUint(&sb, a.Prov)
		} else {
			sb.WriteString(a.Key)
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// renderMaxConst bounds the rendered length of one scalar constant in
// RenderInstr output (pool dumps stay one line per entry).
const renderMaxConst = 24

// RenderInstr renders the human-readable listing form of an
// instruction instance (Table I style pool dumps): BAT operands as
// entry references, scalar constants in display form, truncated on
// rune boundaries. Total over any operand, including degenerate
// zero-provenance BATs.
func RenderInstr(op string, args []mal.Value) string {
	var sb strings.Builder
	sb.WriteString(op)
	sb.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if a.IsBat() {
			sb.WriteByte('e')
			if a.Prov != 0 {
				writeUint(&sb, a.Prov)
			}
		} else {
			sb.WriteString(TruncateRunes(a.String(), renderMaxConst))
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// CanonArg is one operand in canonical (provenance-free) form: a BAT
// operand carries its producer's canonical signature, a scalar its
// literal key. This is the per-argument shape the spill tier persists.
type CanonArg struct {
	Bat   bool
	Canon string // canonical signature of the producing entry (Bat)
	Key   string // literal matching key (scalar)
}

// Canonical derives the durable form of the signature: every BAT
// operand's producer is resolved through resolve (entry id → that
// entry's own canonical signature) and substituted in place of the
// transient entry id. ok=false when a producer cannot be resolved (it
// left the pool, or was itself un-canonical); the instance then has no
// durable identity. The returned canon string equals
// CanonKey(s.Op, args).
func (s Signature) Canonical(resolve func(uint64) (string, bool)) (canon string, args []CanonArg, ok bool) {
	args = make([]CanonArg, len(s.Args))
	for i, a := range s.Args {
		if a.Bat {
			c, found := resolve(a.Prov)
			if !found {
				return "", nil, false
			}
			args[i] = CanonArg{Bat: true, Canon: c}
		} else {
			args[i] = CanonArg{Key: a.Key}
		}
	}
	return CanonKey(s.Op, args), args, true
}

// CanonKey renders the canonical key of an operation over canonical
// operands. BAT operands are bracketed so nested signatures cannot
// collide with literal keys.
func CanonKey(op string, args []CanonArg) string {
	var sb strings.Builder
	sb.WriteString(op)
	sb.WriteByte('(')
	for i, a := range args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if a.Bat {
			sb.WriteByte('[')
			sb.WriteString(a.Canon)
			sb.WriteByte(']')
		} else {
			sb.WriteString(a.Key)
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// RuntimeKey rebuilds the run-time exact-match key of a canonical
// signature by resolving every BAT operand's canonical signature to a
// live pool entry id, and returns the distinct entry ids in operand
// order (the lineage edges of the rebuilt entry). ok=false while an
// operand's producer is not (yet) pooled — the spill tier's bottom-up
// prewarm retries such records after their producers load.
func RuntimeKey(op string, args []CanonArg, resolve func(string) (uint64, bool)) (key string, deps []uint64, ok bool) {
	var sb strings.Builder
	sb.WriteString(op)
	sb.WriteByte('(')
	seen := map[uint64]bool{}
	for i, a := range args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if a.Bat {
			id, found := resolve(a.Canon)
			if !found {
				return "", nil, false
			}
			sb.WriteByte('e')
			writeUint(&sb, id)
			if !seen[id] {
				seen[id] = true
				deps = append(deps, id)
			}
		} else {
			sb.WriteString(a.Key)
		}
	}
	sb.WriteByte(')')
	return sb.String(), deps, true
}

// TruncateRunes shortens s to at most max bytes without splitting a
// multi-byte rune, appending an ellipsis when it cut anything.
func TruncateRunes(s string, max int) string {
	if len(s) <= max {
		return s
	}
	cut := max
	for cut > 0 && !utf8.RuneStart(s[cut]) {
		cut--
	}
	return s[:cut] + "…"
}

// writeUint appends the decimal form of v without allocating.
func writeUint(sb *strings.Builder, v uint64) {
	var buf [20]byte
	i := len(buf)
	for {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
		if v == 0 {
			break
		}
	}
	sb.Write(buf[i:])
}
