package plan

import (
	"strings"
	"testing"
	"unicode/utf8"

	"repro/internal/bat"
	"repro/internal/mal"
)

func batVal(prov uint64) mal.Value {
	v := mal.BatV(bat.NewDenseHead(bat.NewInts([]int64{1})))
	v.Prov = prov
	return v
}

func TestSignUnmatchableOnUnknownProvenance(t *testing.T) {
	if _, ok := Sign("algebra.select", []mal.Value{batVal(0)}); ok {
		t.Fatal("bat arg without provenance must be unmatchable")
	}
	sig, ok := Sign("algebra.select", []mal.Value{batVal(3), mal.IntV(7)})
	if !ok || sig.Key() != "algebra.select(e3,i7)" {
		t.Fatalf("key = %q, ok = %v", sig.Key(), ok)
	}
}

func TestKeyScalarKinds(t *testing.T) {
	sig, ok := Sign("x.y", []mal.Value{
		mal.IntV(-4), mal.FloatV(0.5), mal.StrV("ab"), mal.BoolV(true), mal.VoidV(),
	})
	if !ok {
		t.Fatal("scalar-only signature must sign")
	}
	if got := sig.Key(); got != "x.y(i-4,f0.5,sab,bT,v)" {
		t.Fatalf("key = %q", got)
	}
}

func TestCanonicalRecursesThroughProducers(t *testing.T) {
	// e1 = bind, e2 = select over e1: the canonical form of the select
	// names the bind's canonical signature, not the entry id.
	canonOf := func(id uint64) (string, bool) {
		if id == 1 {
			return `sql.bind(ssys,st,sc,i0)`, true
		}
		return "", false
	}
	sig, _ := Sign("algebra.select", []mal.Value{batVal(1), mal.IntV(5)})
	canon, args, ok := sig.Canonical(canonOf)
	if !ok {
		t.Fatal("canonical must resolve")
	}
	want := "algebra.select([sql.bind(ssys,st,sc,i0)],i5)"
	if canon != want {
		t.Fatalf("canon = %q, want %q", canon, want)
	}
	if len(args) != 2 || !args[0].Bat || args[0].Canon == "" || args[1].Key != "i5" {
		t.Fatalf("args = %+v", args)
	}
	if CanonKey(sig.Op, args) != canon {
		t.Fatal("CanonKey must reproduce Canonical's rendering")
	}

	// An unresolvable producer (evicted, never canonical) has no
	// durable identity.
	sig2, _ := Sign("algebra.select", []mal.Value{batVal(9), mal.IntV(5)})
	if _, _, ok := sig2.Canonical(canonOf); ok {
		t.Fatal("unresolvable producer must not canonicalise")
	}
}

func TestRuntimeKeyRoundTrip(t *testing.T) {
	canonOf := func(id uint64) (string, bool) { return "sql.bind(sa,sb,sc,i0)", id == 1 }
	sig, _ := Sign("algebra.semijoin", []mal.Value{batVal(1), batVal(1)})
	_, cargs, ok := sig.Canonical(canonOf)
	if !ok {
		t.Fatal("canonical failed")
	}
	// In a later process the producer lives under a fresh entry id.
	key, deps, ok := RuntimeKey(sig.Op, cargs, func(canon string) (uint64, bool) {
		return 42, canon == "sql.bind(sa,sb,sc,i0)"
	})
	if !ok || key != "algebra.semijoin(e42,e42)" {
		t.Fatalf("key = %q, ok = %v", key, ok)
	}
	if len(deps) != 1 || deps[0] != 42 {
		t.Fatalf("deps = %v (must be distinct)", deps)
	}
	// A missing producer defers the record.
	if _, _, ok := RuntimeKey(sig.Op, cargs, func(string) (uint64, bool) { return 0, false }); ok {
		t.Fatal("unresolved canon must not produce a runtime key")
	}
}

func TestRenderInstrTruncatesLongStrings(t *testing.T) {
	long := strings.Repeat("x", 100)
	r := RenderInstr("algebra.likeselect", []mal.Value{mal.StrV(long)})
	if len(r) > 60 {
		t.Fatalf("render too long: %d chars", len(r))
	}
}

func TestRenderInstrTruncatesOnRuneBoundary(t *testing.T) {
	// 1 ASCII byte then 4-byte runes: the cut lands mid-rune and must
	// back up instead of emitting invalid UTF-8.
	long := "a" + strings.Repeat("\U0001F642", 10)
	r := RenderInstr("algebra.likeselect", []mal.Value{mal.StrV(long)})
	if !utf8.ValidString(r) {
		t.Fatalf("render emitted invalid UTF-8: %q", r)
	}
	if !strings.Contains(r, "…") {
		t.Fatalf("long constant not truncated: %q", r)
	}
}

func TestRenderInstrHandlesDegenerateBat(t *testing.T) {
	// A BAT value with zero provenance renders as a bare "e" rather
	// than failing; render must stay total because it runs on
	// arbitrary captured instruction instances.
	r := RenderInstr("algebra.select", []mal.Value{batVal(0), mal.IntV(3)})
	if !strings.HasPrefix(r, "algebra.select(e") {
		t.Fatalf("render = %q", r)
	}
}
