package plan

// DeltaClass classifies an operation for the recycler's incremental
// maintenance mode: which delta-propagation rule (if any) keeps a
// pooled result of the operation consistent under an INSERT/DELETE
// commit to a base table. The classification is static — purely a
// property of the operation name — and deliberately conservative:
// anything not provably maintainable in O(|delta|) with bit-identical
// results classifies DeltaNone and falls back to invalidation.
//
// Select-chain fusion (opt.PlanFusion) does not interact with this
// classification: fusion is an execution-time rewrite that leaves the
// instruction list, per-op identity and therefore the static per-op
// delta class untouched, and monitored (recycled) runs — the only
// runs that admit pool entries needing maintenance — never execute
// fused.
type DeltaClass int

// Delta classes.
const (
	// DeltaNone: no sound O(delta) rule — invalidate on update.
	DeltaNone DeltaClass = iota
	// DeltaBase: a catalog bind; refreshes directly from storage and
	// seeds the propagation with the commit's own insert delta.
	DeltaBase
	// DeltaFilter: a row filter (select/uselect/likeselect/
	// notlikeselect/selectNotNil) over one rowset parent; maintained
	// as DeleteHeads(old) ∪ P(parent delta).
	DeltaFilter
	// DeltaProject: a projection (semijoin of a bind against a rowset)
	// over two parents of the same base table; maintained as
	// DeleteHeads(old) ∪ Semijoin(δL, δR) — old rows cannot match
	// fresh-oid delta rows and vice versa, so the cross terms vanish.
	DeltaProject
	// DeltaAgg: a flat additive aggregate (count / int sum / float
	// sum) over one rowset parent; count and int sums apply the delta
	// arithmetically, float sums recompute over the maintained parent
	// (floating-point addition is non-associative, and recomputing in
	// parent order is what keeps the result bit-identical).
	DeltaAgg
)

// String names the class for diagnostics.
func (c DeltaClass) String() string {
	switch c {
	case DeltaBase:
		return "base"
	case DeltaFilter:
		return "filter"
	case DeltaProject:
		return "project"
	case DeltaAgg:
		return "agg"
	}
	return "none"
}

// ClassifyOp returns the delta class of an operation name.
//
// Deliberately excluded (they classify DeltaNone):
//
//	sql.bindIdxbat        delta depends on two tables' alignment
//	algebra.join          sound insert-only differential exists (the
//	                      propagate mode uses it) but not with deletes
//	algebra.markT         deletes punch holes in the dense tail
//	bat.reverse/mirror    value-headed views; head tombstoning unsound
//	group.* / aggr.sum    grouped aggregates need per-group state
//	aggr.min/max/avg...   MIN/MAX not maintainable under deletes
//	algebra.sort/topn     order statistics, recompute
func ClassifyOp(op string) DeltaClass {
	switch op {
	case "sql.bind":
		return DeltaBase
	case "algebra.select", "algebra.uselect", "algebra.likeselect",
		"algebra.notlikeselect", "algebra.selectNotNil":
		return DeltaFilter
	case "algebra.semijoin":
		return DeltaProject
	case "aggr.count", "aggr.sumInt", "aggr.sumFlt":
		return DeltaAgg
	}
	return DeltaNone
}
