package plan

import "testing"

func TestClassifyOp(t *testing.T) {
	cases := map[string]DeltaClass{
		"sql.bind":              DeltaBase,
		"algebra.select":        DeltaFilter,
		"algebra.uselect":       DeltaFilter,
		"algebra.likeselect":    DeltaFilter,
		"algebra.notlikeselect": DeltaFilter,
		"algebra.selectNotNil":  DeltaFilter,
		"algebra.semijoin":      DeltaProject,
		"aggr.count":            DeltaAgg,
		"aggr.sumInt":           DeltaAgg,
		"aggr.sumFlt":           DeltaAgg,
		// Excluded shapes must stay excluded: each has a documented
		// soundness obstruction (see ClassifyOp).
		"sql.bindIdxbat": DeltaNone,
		"algebra.join":   DeltaNone,
		"algebra.markT":  DeltaNone,
		"bat.reverse":    DeltaNone,
		"bat.mirror":     DeltaNone,
		"group.new":      DeltaNone,
		"aggr.sum":       DeltaNone,
		"aggr.min":       DeltaNone,
		"aggr.max":       DeltaNone,
		"algebra.sort":   DeltaNone,
		"algebra.topn":   DeltaNone,
		"":               DeltaNone,
	}
	for op, want := range cases {
		if got := ClassifyOp(op); got != want {
			t.Errorf("ClassifyOp(%q) = %v, want %v", op, got, want)
		}
	}
}

func TestDeltaClassString(t *testing.T) {
	for c, want := range map[DeltaClass]string{
		DeltaNone: "none", DeltaBase: "base", DeltaFilter: "filter",
		DeltaProject: "project", DeltaAgg: "agg",
	} {
		if c.String() != want {
			t.Errorf("DeltaClass(%d).String() = %q, want %q", c, c.String(), want)
		}
	}
}
