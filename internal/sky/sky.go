package sky

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/opt"
)

// Schema for all SkyServer tables.
const Schema = "sky"

// propCols are the photometric property columns projected by the
// dominant query pattern (the paper's pattern projects 19 properties).
var propCols = []string{
	"run", "rerun", "camcol", "field", "obj",
	"psfmag_u", "psfmag_g", "psfmag_r", "psfmag_i", "psfmag_z",
	"petrorad_r", "petror50_r", "petror90_r",
	"dered_u", "dered_g", "dered_r", "dered_i", "dered_z", "status",
}

// DB is a generated SkyServer-like database.
type DB struct {
	Cat     *catalog.Catalog
	Objects int
	rng     *rand.Rand
}

// Generate builds the synthetic catalog with n sky objects.
func Generate(n int, seed int64) *DB {
	if n <= 0 {
		n = 50000
	}
	db := &DB{Cat: catalog.New(), Objects: n, rng: rand.New(rand.NewSource(seed))}
	db.genPhotoObj()
	db.genDocs()
	db.genSpecObj()
	return db
}

func (db *DB) genPhotoObj() {
	defs := []catalog.ColDef{
		{Name: "objid", Kind: bat.KInt, Sorted: true},
		{Name: "ra", Kind: bat.KFloat},
		{Name: "dec", Kind: bat.KFloat},
		{Name: "mode", Kind: bat.KInt},
	}
	for _, c := range propCols[:5] {
		defs = append(defs, catalog.ColDef{Name: c, Kind: bat.KInt})
	}
	for _, c := range propCols[5 : len(propCols)-1] {
		defs = append(defs, catalog.ColDef{Name: c, Kind: bat.KFloat})
	}
	defs = append(defs, catalog.ColDef{Name: "status", Kind: bat.KInt})
	t := db.Cat.CreateTable(Schema, "photoobj", defs)

	rows := make([]catalog.Row, db.Objects)
	for i := range rows {
		r := catalog.Row{
			"objid": int64(0x0500000000000000) + int64(i),
			"ra":    db.rng.Float64() * 360,
			"dec":   db.rng.Float64()*180 - 90,
			"mode":  int64(db.rng.Intn(2) + 1),
		}
		for _, c := range propCols[:5] {
			r[c] = int64(db.rng.Intn(10000))
		}
		for _, c := range propCols[5 : len(propCols)-1] {
			r[c] = 10 + db.rng.Float64()*15
		}
		r["status"] = int64(db.rng.Intn(8))
		rows[i] = r
	}
	t.Append(rows)
	t.DefineKeyIndex("objid")
}

func (db *DB) genDocs() {
	t := db.Cat.CreateTable(Schema, "dbobjects", []catalog.ColDef{
		{Name: "name", Kind: bat.KStr},
		{Name: "type", Kind: bat.KStr},
		{Name: "description", Kind: bat.KStr},
	})
	kinds := []string{"U", "V", "F", "P"}
	rows := make([]catalog.Row, 400)
	for i := range rows {
		rows[i] = catalog.Row{
			"name":        fmt.Sprintf("dbobj_%03d", i),
			"type":        kinds[i%len(kinds)],
			"description": fmt.Sprintf("documentation entry %d for the schema browser", i),
		}
	}
	t.Append(rows)
}

func (db *DB) genSpecObj() {
	t := db.Cat.CreateTable(Schema, "elredshift", []catalog.ColDef{
		{Name: "specobjid", Kind: bat.KInt, Sorted: true},
		{Name: "z", Kind: bat.KFloat},
		{Name: "zerr", Kind: bat.KFloat},
	})
	n := db.Objects / 10
	if n < 100 {
		n = 100
	}
	rows := make([]catalog.Row, n)
	for i := range rows {
		rows[i] = catalog.Row{
			"specobjid": int64(0x0559000000000000) + int64(i),
			"z":         db.rng.Float64(),
			"zerr":      db.rng.Float64() / 100,
		}
	}
	t.Append(rows)
}

// Table is a convenience accessor.
func (db *DB) Table(name string) *catalog.Table { return db.Cat.MustTable(Schema, name) }

// --- query templates ---------------------------------------------------

// NearbyObjTemplate is the dominant log pattern: a bounding-box
// spatial search over (ra, dec) — our stand-in for
// fGetNearbyObjEq(ra,dec,r) joined with PhotoPrimary — projecting the
// popular property columns and returning the first match.
//
// Params: A0..A3 = raLo, raHi, decLo, decHi.
func NearbyObjTemplate() *mal.Template {
	b := mal.NewBuilder("nearby_obj")
	raLo := b.Param("A0", mal.VFloat)
	raHi := b.Param("A1", mal.VFloat)
	decLo := b.Param("A2", mal.VFloat)
	decHi := b.Param("A3", mal.VFloat)

	cs := func(s string) mal.Arg { return mal.C(mal.StrV(s)) }
	bind := func(col string) mal.Arg {
		return b.Op1("sql", "bind", cs(Schema), cs("photoobj"), cs(col), mal.C(mal.IntV(0)))
	}
	tr := mal.C(mal.BoolV(true))

	ra := bind("ra")
	rsel := b.Op1("algebra", "select", ra, raLo, raHi, tr, tr)
	dec := b.Op1("algebra", "semijoin", bind("dec"), rsel)
	rows := b.Op1("algebra", "select", dec, decLo, decHi, tr, tr)
	// PhotoPrimary view: mode = 1.
	mode := b.Op1("algebra", "semijoin", bind("mode"), rows)
	prim := b.Op1("algebra", "uselect", mode, mal.C(mal.IntV(1)))
	objid := b.Op1("algebra", "semijoin", bind("objid"), prim)
	b.Do("sql", "exportCol", cs("objid"), b.Op1("algebra", "topn", objid, mal.C(mal.IntV(1))))
	for _, c := range propCols {
		col := b.Op1("algebra", "semijoin", bind(c), prim)
		b.Do("sql", "exportCol", cs(c), b.Op1("algebra", "topn", col, mal.C(mal.IntV(1))))
	}
	return opt.Optimize(b.Freeze(), opt.Options{})
}

// DocsTemplate is the documentation-table pattern (~36% of the log):
// look up schema metadata by name.
func DocsTemplate() *mal.Template {
	b := mal.NewBuilder("docs")
	a0 := b.Param("A0", mal.VStr)
	cs := func(s string) mal.Arg { return mal.C(mal.StrV(s)) }
	name := b.Op1("sql", "bind", cs(Schema), cs("dbobjects"), cs("name"), mal.C(mal.IntV(0)))
	sel := b.Op1("algebra", "uselect", name, a0)
	desc := b.Op1("sql", "bind", cs(Schema), cs("dbobjects"), cs("description"), mal.C(mal.IntV(0)))
	out := b.Op1("algebra", "semijoin", desc, sel)
	b.Do("sql", "exportCol", cs("description"), out)
	return opt.Optimize(b.Freeze(), opt.Options{})
}

// PointTemplate is the point-lookup pattern (~2% of the log):
// SELECT * FROM ELRedshift WHERE specObjId = X.
func PointTemplate() *mal.Template {
	b := mal.NewBuilder("point")
	a0 := b.Param("A0", mal.VInt)
	cs := func(s string) mal.Arg { return mal.C(mal.StrV(s)) }
	id := b.Op1("sql", "bind", cs(Schema), cs("elredshift"), cs("specobjid"), mal.C(mal.IntV(0)))
	sel := b.Op1("algebra", "uselect", id, a0)
	z := b.Op1("sql", "bind", cs(Schema), cs("elredshift"), cs("z"), mal.C(mal.IntV(0)))
	out := b.Op1("algebra", "semijoin", z, sel)
	b.Do("sql", "exportCol", cs("z"), out)
	return opt.Optimize(b.Freeze(), opt.Options{})
}

// MicroSelectTemplate is the §8.3 micro-benchmark pattern: a spatial
// search over right ascension (with a fixed declination window) whose
// selection is the target of combined subsumption.
func MicroSelectTemplate() *mal.Template {
	b := mal.NewBuilder("micro_ra")
	raLo := b.Param("A0", mal.VFloat)
	raHi := b.Param("A1", mal.VFloat)
	cs := func(s string) mal.Arg { return mal.C(mal.StrV(s)) }
	tr := mal.C(mal.BoolV(true))
	ra := b.Op1("sql", "bind", cs(Schema), cs("photoobj"), cs("ra"), mal.C(mal.IntV(0)))
	rsel := b.Op1("algebra", "select", ra, raLo, raHi, tr, tr)
	cnt := b.Op1("aggr", "count", rsel)
	b.Do("sql", "exportValue", cs("n"), cnt)
	return opt.Optimize(b.Freeze(), opt.Options{})
}

// --- workload sampling --------------------------------------------------

// Query is one sampled workload query: a template plus parameter
// values.
type Query struct {
	Kind   string // "nearby", "docs", "point"
	Params []mal.Value
}

// Workload bundles the compiled templates with a sampled batch.
type Workload struct {
	Nearby *mal.Template
	Docs   *mal.Template
	Point  *mal.Template
	Batch  []Query
}

// Template returns the template for a query kind.
func (w *Workload) Template(kind string) *mal.Template {
	switch kind {
	case "nearby":
		return w.Nearby
	case "docs":
		return w.Docs
	case "point":
		return w.Point
	}
	panic("sky: unknown query kind " + kind)
}

// SampleWorkload draws n queries following the §8.1 log statistics:
// >60% nearby-object searches drawn from two overlapping parameter
// sets, ~36% documentation lookups, ~2% point queries.
func SampleWorkload(db *DB, n int, seed int64) *Workload {
	rng := rand.New(rand.NewSource(seed))
	w := &Workload{
		Nearby: NearbyObjTemplate(),
		Docs:   DocsTemplate(),
		Point:  PointTemplate(),
	}
	// The two overlapping footprints observed in the log: same region
	// of sky, slightly different centre/size.
	footprints := [][4]float64{
		{195.0, 197.5, 2.0, 3.0},
		{195.5, 198.0, 2.2, 3.2},
	}
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.62:
			fp := footprints[rng.Intn(2)]
			w.Batch = append(w.Batch, Query{Kind: "nearby", Params: []mal.Value{
				mal.FloatV(fp[0]), mal.FloatV(fp[1]), mal.FloatV(fp[2]), mal.FloatV(fp[3]),
			}})
		case r < 0.98:
			w.Batch = append(w.Batch, Query{Kind: "docs", Params: []mal.Value{
				mal.StrV(fmt.Sprintf("dbobj_%03d", rng.Intn(40))),
			}})
		default:
			w.Batch = append(w.Batch, Query{Kind: "point", Params: []mal.Value{
				mal.IntV(int64(0x0559000000000000) + int64(rng.Intn(100))),
			}})
		}
	}
	return w
}

// --- §8.3 micro-benchmarks ----------------------------------------------

// MicroBench is a generated B-k benchmark: a sequence of ra-range
// queries in which every (k+1)-th query (the seed) is answerable by
// combined subsumption from the k covering queries before it.
type MicroBench struct {
	K       int
	Templ   *mal.Template
	Queries [][]mal.Value // each entry: raLo, raHi
	// SeedIdx marks which batch positions are seed queries.
	SeedIdx map[int]bool
}

// GenMicroBench builds the benchmark of §8.3: seed queries with
// selectivity factor s over ra, each preceded by k covering queries of
// selectivity 1.5*s/(k-1) (per the paper's formula), positioned so
// that (a) consecutive covering queries overlap, (b) their union
// covers the seed range, and (c) no single covering query contains the
// seed — forcing the *combined* subsumption path.
func GenMicroBench(k, seeds int, s float64, seed int64) *MicroBench {
	if k < 2 {
		panic("sky: micro benchmark needs k >= 2")
	}
	rng := rand.New(rand.NewSource(seed))
	mb := &MicroBench{K: k, Templ: MicroSelectTemplate(), SeedIdx: map[int]bool{}}
	span := 360.0 * s // seed query width in ra degrees (ra is uniform)
	cover := 360.0 * (1.5 * s / float64(k-1))
	// Each covering query owns one of k equal seed segments and
	// spends its extra width on margins: the outermost queries push
	// their margin outside the seed range, interior ones split it, so
	// none covers the whole seed alone while neighbours overlap.
	extra := cover - span/float64(k)
	if extra <= 0 {
		extra = 0.1 * span
		cover = span/float64(k) + extra
	}
	for i := 0; i < seeds; i++ {
		lo := extra + rng.Float64()*(360-span-4*extra)
		hi := lo + span
		for j := 0; j < k; j++ {
			segLo := lo + float64(j)*span/float64(k)
			segHi := lo + float64(j+1)*span/float64(k)
			left, right := 0.5*extra, 0.5*extra
			if j == 0 {
				left, right = 0.8*extra, 0.2*extra
			}
			if j == k-1 {
				left, right = 0.2*extra, 0.8*extra
			}
			mb.Queries = append(mb.Queries, []mal.Value{
				mal.FloatV(segLo - left), mal.FloatV(segHi + right),
			})
		}
		mb.SeedIdx[len(mb.Queries)] = true
		mb.Queries = append(mb.Queries, []mal.Value{mal.FloatV(lo), mal.FloatV(hi)})
	}
	return mb
}
