package sky

import (
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/recycler"
)

var testDB = Generate(5000, 17)

func runQ(t *testing.T, db *DB, rec *recycler.Recycler, qid uint64, tmpl *mal.Template, params []mal.Value) *mal.Ctx {
	t.Helper()
	ctx := &mal.Ctx{Cat: db.Cat, QueryID: qid}
	if rec != nil {
		ctx.Hook = rec
		rec.BeginQuery(qid, tmpl.ID)
		defer rec.EndQuery(qid)
	}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestGenerateTables(t *testing.T) {
	for _, name := range []string{"photoobj", "dbobjects", "elredshift"} {
		tb := testDB.Cat.Table(Schema, name)
		if tb == nil || tb.NumRows() == 0 {
			t.Fatalf("table %s missing or empty", name)
		}
	}
	if testDB.Table("photoobj").NumRows() != 5000 {
		t.Fatalf("photoobj rows = %d", testDB.Table("photoobj").NumRows())
	}
}

func TestNearbyObjCorrectness(t *testing.T) {
	tmpl := NearbyObjTemplate()
	params := []mal.Value{mal.FloatV(100), mal.FloatV(140), mal.FloatV(-10), mal.FloatV(30)}
	ctx := runQ(t, testDB, nil, 1, tmpl, params)
	// Reference count of primary objects in the box.
	ra := testDB.Table("photoobj").MustColumn("ra").Bind().Tail.(*bat.Floats).V
	dec := testDB.Table("photoobj").MustColumn("dec").Bind().Tail.(*bat.Floats).V
	mode := testDB.Table("photoobj").MustColumn("mode").Bind().Tail.(*bat.Ints).V
	want := 0
	for i := range ra {
		if ra[i] >= 100 && ra[i] <= 140 && dec[i] >= -10 && dec[i] <= 30 && mode[i] == 1 {
			want++
		}
	}
	if want == 0 {
		t.Fatal("test box selects nothing; enlarge it")
	}
	// The template exports LIMIT 1 columns: objid present iff matches.
	if len(ctx.Results) != 1+len(propCols) {
		t.Fatalf("results = %d, want %d", len(ctx.Results), 1+len(propCols))
	}
	if ctx.Results[0].Val.Bat.Len() != 1 {
		t.Fatalf("objid rows = %d, want 1 (limit)", ctx.Results[0].Val.Bat.Len())
	}
}

func TestDocsAndPointQueries(t *testing.T) {
	dt := DocsTemplate()
	ctx := runQ(t, testDB, nil, 1, dt, []mal.Value{mal.StrV("dbobj_007")})
	if ctx.Results[0].Val.Bat.Len() != 1 {
		t.Fatalf("docs result rows = %d", ctx.Results[0].Val.Bat.Len())
	}
	pt := PointTemplate()
	ctx = runQ(t, testDB, nil, 2, pt, []mal.Value{mal.IntV(int64(0x0559000000000000) + 5)})
	if ctx.Results[0].Val.Bat.Len() != 1 {
		t.Fatalf("point result rows = %d", ctx.Results[0].Val.Bat.Len())
	}
}

func TestSampleWorkloadMix(t *testing.T) {
	w := SampleWorkload(testDB, 1000, 5)
	counts := map[string]int{}
	for _, q := range w.Batch {
		counts[q.Kind]++
	}
	if counts["nearby"] < 550 || counts["nearby"] > 700 {
		t.Fatalf("nearby fraction off: %d/1000", counts["nearby"])
	}
	if counts["docs"] < 280 || counts["docs"] > 430 {
		t.Fatalf("docs fraction off: %d/1000", counts["docs"])
	}
	if counts["point"] == 0 || counts["point"] > 60 {
		t.Fatalf("point fraction off: %d/1000", counts["point"])
	}
}

func TestWorkloadHighReuseWithRecycler(t *testing.T) {
	db := Generate(5000, 23)
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll, Subsumption: true})
	w := SampleWorkload(db, 100, 9)
	var marked, hits int
	for i, q := range w.Batch {
		tmpl := w.Template(q.Kind)
		ctx := runQ(t, db, rec, uint64(i+1), tmpl, q.Params)
		marked += ctx.Stats.MarkedNonBind
		hits += ctx.Stats.HitsNonBind
	}
	ratio := float64(hits) / float64(marked)
	// The paper reports 95.6% reuse on the 100-query batch; our
	// synthetic workload must reach a comparably high plateau.
	if ratio < 0.80 {
		t.Fatalf("workload hit ratio = %.2f, want >= 0.80", ratio)
	}
}

func TestMicroBenchGeometry(t *testing.T) {
	for _, k := range []int{2, 4} {
		mb := GenMicroBench(k, 5, 0.02, 3)
		if len(mb.Queries) != 5*(k+1) {
			t.Fatalf("k=%d: %d queries, want %d", k, len(mb.Queries), 5*(k+1))
		}
		for idx := range mb.SeedIdx {
			seedLo := mb.Queries[idx][0].F
			seedHi := mb.Queries[idx][1].F
			// Union of the k preceding queries covers the seed...
			unionLo, unionHi := mb.Queries[idx-k][0].F, mb.Queries[idx-k][1].F
			for j := idx - k + 1; j < idx; j++ {
				if mb.Queries[j][0].F > unionHi {
					t.Fatalf("k=%d seed %d: gap in cover", k, idx)
				}
				if mb.Queries[j][1].F > unionHi {
					unionHi = mb.Queries[j][1].F
				}
			}
			if unionLo > seedLo || unionHi < seedHi {
				t.Fatalf("k=%d seed %d: union [%f,%f] does not cover [%f,%f]", k, idx, unionLo, unionHi, seedLo, seedHi)
			}
			// ...but no single covering query does.
			for j := idx - k; j < idx; j++ {
				if mb.Queries[j][0].F <= seedLo && mb.Queries[j][1].F >= seedHi {
					t.Fatalf("k=%d seed %d: query %d singleton-covers the seed", k, idx, j)
				}
			}
		}
	}
}

func TestMicroBenchTriggersCombinedSubsumption(t *testing.T) {
	db := Generate(20000, 31)
	rec := recycler.New(db.Cat, recycler.Config{
		Admission: recycler.KeepAll, Subsumption: true, CombinedSubsumption: true,
	})
	mb := GenMicroBench(2, 6, 0.02, 3)
	combined := 0
	for i, params := range mb.Queries {
		ctx := runQ(t, db, rec, uint64(i+1), mb.Templ, params)
		if mb.SeedIdx[i] {
			if ctx.Stats.Combined > 0 {
				combined++
			}
			// Whatever the path, the count must equal a naive run.
			nctx := runQ(t, db, nil, uint64(1000+i), mb.Templ, params)
			if ctx.Results[0].Val.I != nctx.Results[0].Val.I {
				t.Fatalf("seed %d: combined count %d != naive %d", i, ctx.Results[0].Val.I, nctx.Results[0].Val.I)
			}
		}
	}
	if combined < 4 {
		t.Fatalf("combined subsumption fired on %d/6 seeds", combined)
	}
}

func TestSubsumedSelectionOnSecondFootprint(t *testing.T) {
	// The two workload footprints overlap; a query over the second
	// footprint cannot (in general) exactly match the first, but the
	// dec semijoin path must still benefit through subsumption when
	// one footprint contains the other.
	db := Generate(5000, 41)
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll, Subsumption: true})
	tmpl := NearbyObjTemplate()
	runQ(t, db, rec, 1, tmpl, []mal.Value{mal.FloatV(100), mal.FloatV(200), mal.FloatV(-20), mal.FloatV(40)})
	ctx := runQ(t, db, rec, 2, tmpl, []mal.Value{mal.FloatV(120), mal.FloatV(180), mal.FloatV(-10), mal.FloatV(30)})
	if ctx.Stats.Subsumed == 0 {
		t.Fatalf("no subsumption on contained footprint: %+v", ctx.Stats)
	}
}
