// Package sky provides the SkyServer substrate of the reproduction
// (paper §8): a synthetic photometric object catalog standing in for
// the Sloan Digital Sky Survey Data Release 4, the query patterns the
// paper samples from the January 2008 query log, and the B2/B4
// combined-subsumption micro-benchmarks of §8.3.
//
// Substitution note (per DESIGN.md): the paper uses a 100 GB subset of
// DR4 plus the public query log. We regenerate the *statistical
// structure* the paper reports: >60% of queries instantiate the
// fGetNearbyObjEq spatial pattern with two distinct but overlapping
// parameter sets, ~36% touch small documentation tables, and ~2% are
// point lookups by object id. The cone search is approximated by a
// bounding-box search over (ra, dec); the recycler's behaviour depends
// only on the overlapping range-select structure, which is preserved.
package sky
