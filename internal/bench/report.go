package bench

import (
	"encoding/json"
	"os"
	"runtime"
	"time"
)

// This file implements skybench's machine-readable output: one JSON
// document (conventionally BENCH_recycle.json) accumulating a ModeStat
// row per benchmark configuration, so the perf trajectory — QPS,
// hit/miss/subsumption counts, lock waits — is diffable across PRs
// without scraping the human tables.

// ReportSchema versions the JSON layout; bump it when ModeStat fields
// change meaning. Schema 2 added per-query latency percentiles
// (p50_ns/p95_ns/p99_ns).
const ReportSchema = 2

// Report is the top-level JSON document.
type Report struct {
	Schema     int        `json:"schema"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Modes      []ModeStat `json:"modes"`
}

// ModeStat is one benchmark configuration's outcome in comparable
// units.
type ModeStat struct {
	Experiment string  `json:"experiment"`        // "equiv", "mt", "serve", "batch"
	Mode       string  `json:"mode"`              // configuration label within the experiment
	Clients    int     `json:"clients,omitempty"` // concurrent clients (mt/serve)
	Queries    int     `json:"queries"`           // statements executed
	QPS        float64 `json:"qps"`
	// Hits/Misses split the non-bind monitored instructions into pool
	// hits and executions; Subsumed/Combined count the subsumption
	// rewrites among the hits' production.
	Hits     int `json:"hits"`
	Misses   int `json:"misses"`
	Subsumed int `json:"subsumed"`
	Combined int `json:"combined"`
	// ExactHitRate is the equivalence workload's headline number
	// (variant exact hits / variant potential); zero elsewhere.
	ExactHitRate float64 `json:"exact_hit_rate,omitempty"`
	LockWaits    int64   `json:"lock_waits"`
	LockWaitNS   int64   `json:"lock_wait_ns"`
	// Per-query latency percentiles (nanoseconds). In-process
	// experiments derive them from a trace.Histogram (bucketed, so
	// approximate); the serve experiment keeps its exact sorted-sample
	// percentiles. Zero for experiments without per-query latencies
	// (batch).
	P50NS int64 `json:"p50_ns,omitempty"`
	P95NS int64 `json:"p95_ns,omitempty"`
	P99NS int64 `json:"p99_ns,omitempty"`
}

// NewReport starts an empty report for this host.
func NewReport() *Report {
	return &Report{Schema: ReportSchema, GOMAXPROCS: runtime.GOMAXPROCS(0)}
}

// Add appends one configuration row.
func (r *Report) Add(m ModeStat) { r.Modes = append(r.Modes, m) }

// AddEquiv records an equivalence-workload result.
func (r *Report) AddEquiv(e EquivResult) {
	r.Add(ModeStat{
		Experiment:   "equiv",
		Mode:         e.Mode,
		Queries:      e.Queries + e.Variants,
		QPS:          e.QPS,
		Hits:         e.Hits,
		Misses:       e.Marked - e.Hits,
		ExactHitRate: e.ExactHitRate(),
		LockWaits:    e.LockWaits,
		LockWaitNS:   e.LockWait.Nanoseconds(),
		P50NS:        e.P50.Nanoseconds(),
		P95NS:        e.P95.Nanoseconds(),
		P99NS:        e.P99.Nanoseconds(),
	})
}

// AddRW records a mixed read/write workload result.
func (r *Report) AddRW(w RWResult) {
	r.Add(ModeStat{
		Experiment:   "rw",
		Mode:         w.Mode,
		Queries:      w.Reads + w.Writes,
		QPS:          w.QPS,
		Hits:         w.Hits,
		Misses:       w.Marked - w.Hits,
		ExactHitRate: w.ExactHitRate(),
		LockWaits:    w.LockWaits,
		LockWaitNS:   w.LockWait.Nanoseconds(),
		P50NS:        w.P50.Nanoseconds(),
		P95NS:        w.P95.Nanoseconds(),
		P99NS:        w.P99.Nanoseconds(),
	})
}

// AddMT records a multi-client throughput row.
func (r *Report) AddMT(m MTRow) {
	mode := m.Exec + "/naive"
	if m.Recycled {
		mode = m.Exec + "/recycled"
	}
	r.Add(ModeStat{
		Experiment: "mt",
		Mode:       mode,
		Clients:    m.Clients,
		Queries:    m.Queries,
		QPS:        m.QPS,
		Hits:       m.Hits,
		Misses:     m.Pot - m.Hits,
		Subsumed:   m.Subsumed,
		Combined:   m.Combined,
		LockWaits:  m.LockWaits,
		LockWaitNS: m.LockWait.Nanoseconds(),
		P50NS:      m.P50.Nanoseconds(),
		P95NS:      m.P95.Nanoseconds(),
		P99NS:      m.P99.Nanoseconds(),
	})
}

// AddServe records an over-the-wire load row.
func (r *Report) AddServe(l LoadResult) {
	r.Add(ModeStat{
		Experiment: "serve",
		Mode:       l.Label,
		Clients:    l.Clients,
		Queries:    l.Queries,
		QPS:        l.QPS,
		Hits:       l.Hits,
		Misses:     l.Marked - l.Hits,
		LockWaits:  l.LockWaits,
		LockWaitNS: l.LockWait.Nanoseconds(),
		P50NS:      l.P50.Nanoseconds(),
		P95NS:      l.P95.Nanoseconds(),
		P99NS:      l.P99.Nanoseconds(),
	})
}

// AddBatch records a Fig. 14 batch split as an effective-QPS row (the
// batch has no wall-clock loop; per-query elapsed sums stand in).
func (r *Report) AddBatch(f Fig14Row, queries int) {
	for _, m := range []struct {
		label string
		d     time.Duration
	}{{"naive", f.Naive}, {"crd-lru", f.CrdLru}, {"keepall", f.KeepAll}} {
		qps := 0.0
		if m.d > 0 {
			qps = float64(queries) / m.d.Seconds()
		}
		r.Add(ModeStat{
			Experiment: "batch",
			Mode:       f.Split + "/" + m.label,
			Queries:    queries,
			QPS:        qps,
		})
	}
}

// Write marshals the report to path (pretty-printed, trailing
// newline).
func (r *Report) Write(path string) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}
