package bench

import (
	"fmt"
	"io"
	"math/rand"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
	"repro/internal/sky"
	"repro/internal/sqlfe"
	"repro/internal/trace"
)

// This file implements the equivalent-query workload: semantically
// equal SQL statements that RENDER differently — shuffled conjunct
// order, >=/<= pairs vs BETWEEN, numeric literal spellings. It
// measures the recycler's exact-hit rate on the variants after the
// canonical spelling warmed the pool, once with the normalization
// pipeline disabled (the seed behaviour: every spelling is its own
// template, so variants miss) and once enabled (one template, one
// family of signatures: variants hit exactly). This is the tentpole's
// before/after validation, and CI gates on the normalized rate.

// EquivQuery is one canonical statement plus semantically equal
// spellings of it.
type EquivQuery struct {
	Canonical string
	Variants  []string
}

// conjunct is one predicate of the generated bounding-box query, with
// alternative spellings.
type conjunct struct {
	between string // canonical BETWEEN form
	pair    string // ">= lo AND <= hi" split form ("" when not a range)
}

// spellFloat renders a float bound in one of several equal spellings.
func spellFloat(v float64, style int) string {
	s := strconv.FormatFloat(v, 'g', -1, 64)
	if v == float64(int64(v)) {
		switch style % 3 {
		case 0:
			return strconv.FormatInt(int64(v), 10) // "10"
		case 1:
			return strconv.FormatInt(int64(v), 10) + ".0" // "10.0"
		default:
			return s
		}
	}
	return s
}

// EquivWorkload samples n bounding-box searches over sky.photoobj,
// each with `variants` distinct equivalent spellings. Bounds land on a
// 0.5° grid so integer-valued bounds exist and the int-vs-float
// spelling variants actually differ textually.
func EquivWorkload(n, variants int, seed int64) []EquivQuery {
	rng := rand.New(rand.NewSource(seed))
	out := make([]EquivQuery, 0, n)
	for i := 0; i < n; i++ {
		raLo := float64(rng.Intn(640)) * 0.5
		raHi := raLo + float64(rng.Intn(8)+1)*0.5
		decLo := float64(rng.Intn(300))*0.5 - 85
		decHi := decLo + float64(rng.Intn(6)+1)*0.5
		mk := func(style int) []conjunct {
			ra := [2]string{spellFloat(raLo, style), spellFloat(raHi, style+1)}
			dec := [2]string{spellFloat(decLo, style+2), spellFloat(decHi, style)}
			mode := "1"
			if style%2 == 1 {
				mode = "01"
			}
			return []conjunct{
				{between: "ra BETWEEN " + ra[0] + " AND " + ra[1],
					pair: "ra >= " + ra[0] + " AND ra <= " + ra[1]},
				{between: "dec BETWEEN " + dec[0] + " AND " + dec[1],
					pair: "dec >= " + dec[0] + " AND dec <= " + dec[1]},
				{between: "mode = " + mode},
			}
		}
		render := func(cs []conjunct, order []int, split bool) string {
			parts := make([]string, 0, len(cs))
			for _, j := range order {
				c := cs[j]
				if split && c.pair != "" {
					parts = append(parts, c.pair)
				} else {
					parts = append(parts, c.between)
				}
			}
			return "SELECT COUNT(*) FROM sky.photoobj WHERE " + strings.Join(parts, " AND ")
		}
		canonical := render(mk(2), []int{0, 1, 2}, false)
		q := EquivQuery{Canonical: canonical}
		seen := map[string]bool{canonical: true}
		for v := 0; len(q.Variants) < variants && v < variants*8; v++ {
			order := rng.Perm(3)
			split := v%2 == 1
			if !split && order[0] == 0 && order[1] == 1 {
				// A pure literal respell in canonical conjunct order
				// shares the canonical SHAPE even without
				// normalization; every variant must actually shuffle
				// (or split a range), so the baseline measures the
				// misses the issue is about.
				continue
			}
			s := render(mk(v), order, split)
			if !seen[s] {
				seen[s] = true
				q.Variants = append(q.Variants, s)
			}
		}
		out = append(out, q)
	}
	return out
}

// EquivResult is one configuration's outcome over the equivalence
// workload.
type EquivResult struct {
	Mode     string // "baseline" (normalization off) or "normalized"
	Queries  int    // canonical statements executed
	Variants int    // variant statements executed
	// Marked/Hits count non-bind monitored instructions and pool hits
	// over the VARIANT executions only (the canonical pass warms the
	// pool and is excluded).
	Marked int
	Hits   int
	// Templates is the number of distinct templates the front end
	// compiled — n under normalization, roughly n*(variants+1)
	// without.
	Templates int
	Wall      time.Duration
	QPS       float64
	LockWaits int64
	LockWait  time.Duration
	// Per-statement latency percentiles over every executed statement
	// (canonical + variants), from a bucketed trace.Histogram.
	P50, P95, P99 time.Duration
}

// ExactHitRate returns variant pool hits over variant potential hits.
func (r *EquivResult) ExactHitRate() float64 {
	if r.Marked == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Marked)
}

// sqlRunner is the minimal SQL execution stack the workload needs:
// front end + recycler + interpreter, wired the way repro.Engine wires
// them. (bench deliberately does not import the repro facade: the root
// package's own tests import bench.)
type sqlRunner struct {
	db  *sky.DB
	fe  *sqlfe.Frontend
	rec *recycler.Recycler
	qid uint64
}

func newSQLRunner(db *sky.DB, opts opt.Options) *sqlRunner {
	return &sqlRunner{
		db:  db,
		fe:  sqlfe.NewFrontendOpt(db.Cat, opts),
		rec: recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll}),
	}
}

func (s *sqlRunner) execSQL(src string) (*mal.Ctx, error) {
	tmpl, params, err := s.fe.Compile(src)
	if err != nil {
		return nil, err
	}
	s.qid++
	ctx := &mal.Ctx{Cat: s.db.Cat, Hook: s.rec, QueryID: s.qid}
	s.rec.BeginQuery(s.qid, tmpl.ID)
	defer s.rec.EndQuery(s.qid)
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		return nil, err
	}
	return ctx, nil
}

// RunEquiv executes the workload against a fresh recycled engine
// stack. normalized selects whether the normalization pipeline (SQL
// query normalization + commute + CSE) runs; subsumption stays off so
// every hit counted is an EXACT hit.
func RunEquiv(db *sky.DB, queries []EquivQuery, normalized bool) EquivResult {
	mode := "normalized"
	var opts opt.Options
	if !normalized {
		mode = "baseline"
		opts = opt.Options{SkipNormalizeSQL: true, SkipCSE: true, SkipCommute: true}
	}
	r := newSQLRunner(db, opts)
	defer r.rec.Close()

	res := EquivResult{Mode: mode, Queries: len(queries)}
	var lat trace.Histogram
	start := time.Now()
	for _, q := range queries {
		q0 := time.Now()
		if _, err := r.execSQL(q.Canonical); err != nil {
			panic(fmt.Sprintf("equiv: canonical %q: %v", q.Canonical, err))
		}
		lat.Observe(time.Since(q0))
		for _, v := range q.Variants {
			q0 = time.Now()
			ctx, err := r.execSQL(v)
			if err != nil {
				panic(fmt.Sprintf("equiv: variant %q: %v", v, err))
			}
			lat.Observe(time.Since(q0))
			res.Variants++
			res.Marked += ctx.Stats.MarkedNonBind
			res.Hits += ctx.Stats.HitsNonBind
		}
	}
	res.Wall = time.Since(start)
	res.P50, res.P95, res.P99 = lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99)
	if res.Wall > 0 {
		res.QPS = float64(res.Queries+res.Variants) / res.Wall.Seconds()
	}
	st := r.rec.Snapshot()
	res.Templates = r.fe.CacheSize()
	res.LockWaits = st.WriterLockWaits + st.ShardLockWaits
	res.LockWait = st.WriterLockWait + st.ShardLockWait
	return res
}

// PrintEquiv renders the before/after comparison.
func PrintEquiv(w io.Writer, rows []EquivResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tQueries\tVariants\tTemplates\tExactHits\tPotential\tHitRate\tQPS")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\t%.1f%%\t%.0f\n",
			r.Mode, r.Queries, r.Variants, r.Templates, r.Hits, r.Marked,
			100*r.ExactHitRate(), r.QPS)
	}
	tw.Flush()
}
