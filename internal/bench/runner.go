package bench

import (
	"sync/atomic"
	"time"

	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/recycler"
)

// Runner executes templates against one engine configuration. A single
// runner may be shared by many client goroutines (the multi-user
// experiments): query ids are drawn atomically and each Run builds a
// fresh context.
type Runner struct {
	Cat      *catalog.Catalog
	Rec      *recycler.Recycler // nil = naive execution
	Measure  bool               // time marked instructions in naive mode
	Workers  int                // per-query dataflow parallelism (0 = GOMAXPROCS, 1 = sequential)
	NoFusion bool               // disable fused select-chain execution
	queryID  atomic.Uint64
}

// NewNaive builds a runner without recycling (optionally measuring
// marked-instruction time for potential-savings reporting).
//
// Runners reproduce the paper's single-threaded experiments, whose
// admission/eviction bookkeeping is defined in terms of program-order
// execution, so they default to the sequential interpreter
// (Workers = 1). The multi-client harness sets Workers explicitly.
//
// They also disable select-chain fusion: a recycled run of monitored
// instructions never fuses (admission is per instruction), so the
// recycled-vs-naive ratios the paper reports only isolate recycling if
// the naive arm executes the identical per-instruction kernels. The
// naive-baseline experiment (RunNaiveStream) measures the full kernel
// stack, fusion included, and is gated separately in CI.
func NewNaive(cat *catalog.Catalog, measure bool) *Runner {
	return &Runner{Cat: cat, Measure: measure, Workers: 1, NoFusion: true}
}

// NewRecycled builds a runner with a fresh recycler. Sequential by
// default, like NewNaive.
func NewRecycled(cat *catalog.Catalog, cfg recycler.Config) *Runner {
	return &Runner{Cat: cat, Rec: recycler.New(cat, cfg), Workers: 1, NoFusion: true}
}

// Run executes one query instance and returns its context (with
// statistics filled in).
func (r *Runner) Run(tmpl *mal.Template, params ...mal.Value) (*mal.Ctx, error) {
	qid := r.queryID.Add(1)
	ctx := &mal.Ctx{Cat: r.Cat, QueryID: qid, Measure: r.Measure, Workers: r.Workers, NoFusion: r.NoFusion}
	if r.Rec != nil {
		ctx.Hook = r.Rec
		r.Rec.BeginQuery(qid, tmpl.ID)
		defer r.Rec.EndQuery(qid)
	}
	err := mal.Run(ctx, tmpl, params...)
	return ctx, err
}

// MustRun is Run that panics on error (experiment code paths).
func (r *Runner) MustRun(tmpl *mal.Template, params ...mal.Value) *mal.Ctx {
	ctx, err := r.Run(tmpl, params...)
	if err != nil {
		panic(err)
	}
	return ctx
}

// PoolBytes returns the recycle pool memory, 0 for naive runners.
func (r *Runner) PoolBytes() int64 {
	if r.Rec == nil {
		return 0
	}
	return r.Rec.PoolBytes()
}

// PoolEntries returns the number of cache lines, 0 for naive runners.
func (r *Runner) PoolEntries() int {
	if r.Rec == nil {
		return 0
	}
	return r.Rec.PoolLen()
}

// Warmup executes the given (template, params) pairs once to touch all
// persistent columns, then resets the recycle pool — the experimental
// preparation the paper describes (§7): factor out IO, start from an
// empty pool.
func (r *Runner) Warmup(queries []WarmupQuery) {
	for _, q := range queries {
		r.MustRun(q.Templ, q.Params...)
	}
	if r.Rec != nil {
		r.Rec.Reset()
	}
}

// WarmupQuery names one warmup execution.
type WarmupQuery struct {
	Templ  *mal.Template
	Params []mal.Value
}

// Timed runs fn and returns its wall-clock duration.
func Timed(fn func()) time.Duration {
	start := time.Now()
	fn()
	return time.Since(start)
}
