package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
	"repro/internal/tpch"
)

// --- Table II ---------------------------------------------------------

// Table2Row reproduces one row of the paper's Table II: commonality
// characteristics and recycler savings of a TPC-H query.
type Table2Row struct {
	QNum   int
	Marked int // monitored instructions (binds excluded)
	// IntraPct / InterPct: percentage of monitored instructions
	// reused within one instance resp. across instances.
	IntraPct float64
	InterPct float64
	// Total: naive execution time; Potential: time in monitored
	// instructions; LocalSav/GlobalSav: measured savings.
	Total     time.Duration
	Potential time.Duration
	LocalSav  time.Duration
	GlobalSav time.Duration
}

// Table2 regenerates Table II: for every query it measures a naive
// run, a first recycled instance (intra-query reuse) and a second
// instance with fresh parameters (inter-query reuse).
func Table2(db *tpch.DB, seed int64) []Table2Row {
	// The paper's Table II measures run-time reuse over plans that
	// still carry their duplicate sub-plans (MonetDB's plan generator
	// did not CSE). The default pipeline now merges those duplicates
	// at compile time, which would zero the intra-query column, so the
	// reproduction compiles with CSE disabled.
	defs := tpch.QueriesOpt(opt.Options{SkipCSE: true})
	rows := make([]Table2Row, 0, len(defs))
	rng := rand.New(rand.NewSource(seed))
	for _, d := range defs {
		p1 := d.Params(rng)
		p2 := d.Params(rng)

		naive := NewNaive(db.Cat, true)
		naive.MustRun(d.Templ, p1...) // warm caches / page in columns
		nctx := naive.MustRun(d.Templ, p1...)

		rec := NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll})
		rec.Warmup([]WarmupQuery{{Templ: d.Templ, Params: p1}})
		c1 := rec.MustRun(d.Templ, p1...)
		c2 := rec.MustRun(d.Templ, p2...)

		marked := d.Templ.MarkedCount(true)
		intra := float64(c1.Stats.HitsNonBind)
		inter := float64(c2.Stats.HitsNonBind) - intra
		if inter < 0 {
			inter = 0
		}
		rows = append(rows, Table2Row{
			QNum:      d.Num,
			Marked:    marked,
			IntraPct:  100 * intra / float64(marked),
			InterPct:  100 * inter / float64(marked),
			Total:     nctx.Stats.Elapsed,
			Potential: nctx.Stats.TimeInMarked,
			LocalSav:  c1.Stats.SavedLocal,
			GlobalSav: c2.Stats.SavedGlobal,
		})
	}
	return rows
}

// PrintTable2 renders the rows in the paper's layout.
func PrintTable2(w io.Writer, rows []Table2Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Query\t#\tIntra%\tInter%\tTotal\tPot.\tLocal\tGlob.")
	for _, r := range rows {
		fmt.Fprintf(tw, "Q%d\t%d\t%.1f\t%.1f\t%v\t%v\t%v\t%v\n",
			r.QNum, r.Marked, r.IntraPct, r.InterPct,
			r.Total.Round(time.Microsecond), r.Potential.Round(time.Microsecond),
			r.LocalSav.Round(time.Microsecond), r.GlobalSav.Round(time.Microsecond))
	}
	tw.Flush()
}

// --- Figs. 4–5: micro-benchmark query profiles -------------------------

// ProfilePoint is one instance of a 10-instance micro-benchmark run
// (the three stacked diagrams of Figs. 4–5).
type ProfilePoint struct {
	Instance   int
	HitRatio   float64
	Naive      time.Duration
	Recycled   time.Duration
	TotalMem   int64
	ReusedMem  int64
	PoolLines  int
	LocalHits  int
	GlobalHits int
}

// MicroProfile runs `instances` instances of query qnum with fresh
// TPC-H parameters under keepall/unlimited recycling and returns the
// per-instance profile (hit ratio, naive vs recycled time, RP memory).
func MicroProfile(db *tpch.DB, qnum, instances int, seed int64) []ProfilePoint {
	// Paper plans (CSE off), like Table2 and mixedWorkload: the
	// per-instance local-hit profile measures the run-time dedup of
	// duplicates the default pipeline would merge at compile time.
	d := tpch.QueryMapOpt(opt.Options{SkipCSE: true})[qnum]
	rng := rand.New(rand.NewSource(seed))
	params := make([][]mal.Value, instances)
	for i := range params {
		params[i] = d.Params(rng)
	}

	naive := NewNaive(db.Cat, false)
	rec := NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	// Preparation step (§7): touch all columns, then empty the pool.
	naive.MustRun(d.Templ, params[0]...)
	rec.Warmup([]WarmupQuery{{Templ: d.Templ, Params: params[0]}})

	out := make([]ProfilePoint, 0, instances)
	for i := 0; i < instances; i++ {
		nctx := naive.MustRun(d.Templ, params[i]...)
		rctx := rec.MustRun(d.Templ, params[i]...)
		reusedEntries, reusedBytes := rec.Rec.PoolReusedStats()
		_ = reusedEntries
		out = append(out, ProfilePoint{
			Instance:   i + 1,
			HitRatio:   rctx.Stats.HitRatio(),
			Naive:      nctx.Stats.Elapsed,
			Recycled:   rctx.Stats.Elapsed,
			TotalMem:   rec.Rec.PoolBytes(),
			ReusedMem:  reusedBytes,
			PoolLines:  rec.Rec.PoolLen(),
			LocalHits:  rctx.Stats.LocalHits,
			GlobalHits: rctx.Stats.GlobalHits,
		})
	}
	return out
}

// PrintProfile renders a micro-benchmark profile.
func PrintProfile(w io.Writer, qnum int, pts []ProfilePoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "Q%d\tHitRatio\tNaive\tRecycler\tRP-Mem(KB)\tReused(KB)\tLines\n", qnum)
	for _, p := range pts {
		fmt.Fprintf(tw, "#%d\t%.2f\t%v\t%v\t%d\t%d\t%d\n",
			p.Instance, p.HitRatio,
			p.Naive.Round(time.Microsecond), p.Recycled.Round(time.Microsecond),
			p.TotalMem/1024, p.ReusedMem/1024, p.PoolLines)
	}
	tw.Flush()
}

// --- Fig. 6: average improvements --------------------------------------

// Fig6Row summarises a 10-instance batch: naive average, first
// recycled instance, average of the remaining recycled instances.
type Fig6Row struct {
	QNum         int
	NaiveAvg     time.Duration
	RecycleFirst time.Duration
	RecycleAvg   time.Duration
}

// Fig6 computes the Fig. 6 bars for the given queries.
func Fig6(db *tpch.DB, qnums []int, instances int, seed int64) []Fig6Row {
	out := make([]Fig6Row, 0, len(qnums))
	for _, q := range qnums {
		pts := MicroProfile(db, q, instances, seed)
		var naiveSum, recSum time.Duration
		for i, p := range pts {
			naiveSum += p.Naive
			if i > 0 {
				recSum += p.Recycled
			}
		}
		out = append(out, Fig6Row{
			QNum:         q,
			NaiveAvg:     naiveSum / time.Duration(len(pts)),
			RecycleFirst: pts[0].Recycled,
			RecycleAvg:   recSum / time.Duration(len(pts)-1),
		})
	}
	return out
}

// PrintFig6 renders the Fig. 6 summary.
func PrintFig6(w io.Writer, rows []Fig6Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Query\tNaive(avg)\tRecycle(first)\tRecycle(avg)")
	for _, r := range rows {
		fmt.Fprintf(tw, "Q%d\t%v\t%v\t%v\n", r.QNum,
			r.NaiveAvg.Round(time.Microsecond), r.RecycleFirst.Round(time.Microsecond), r.RecycleAvg.Round(time.Microsecond))
	}
	tw.Flush()
}

// --- Figs. 7–9: admission policies --------------------------------------

// AdmissionPoint is one (credits, policy) measurement.
type AdmissionPoint struct {
	Credits          int
	Policy           string
	HitRatioToKeep   float64 // hits relative to the keepall baseline
	TotalMem         int64
	ReusedMemPct     float64
	ReusedEntriesPct float64
	BatchTime        time.Duration
}

// mixedWorkload builds the §7.2 batch: `per` instances of each of the
// ten high-overlap queries, interleaved deterministically.
func mixedWorkload(per int, seed int64) []WorkItem {
	qnums := []int{4, 7, 8, 11, 12, 16, 18, 19, 21, 22}
	// Paper plans (CSE off): the multi-query experiments measure the
	// run-time recycler against the plan shapes the paper's MonetDB
	// produced, duplicates included — see the Table2 note above.
	qm := tpch.QueryMapOpt(opt.Options{SkipCSE: true})
	rng := rand.New(rand.NewSource(seed))
	var items []WorkItem
	for i := 0; i < per; i++ {
		for _, qn := range qnums {
			d := qm[qn]
			items = append(items, WorkItem{QNum: qn, Templ: d.Templ, Params: d.Params(rng)})
		}
	}
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items
}

// WorkItem is one query instance of a batch.
type WorkItem struct {
	QNum   int
	Templ  *mal.Template
	Params []mal.Value
}

// BatchResult aggregates a batch execution.
type BatchResult struct {
	Hits, Potential int
	Elapsed         time.Duration
	TotalMem        int64
	Entries         int
	ReusedMem       int64
	ReusedEntries   int
	// CumHits/CumPotential give cumulative counts after each query
	// (the hit-ratio curves of Figs. 10–11).
	CumHits      []int
	CumPotential []int
	// MemSeries/EntriesSeries sample the pool after each statement
	// (Figs. 12–13).
	MemSeries     []int64
	EntriesSeries []int
}

// RunBatch executes the batch on the runner, collecting aggregates.
func RunBatch(r *Runner, items []WorkItem) *BatchResult {
	res := &BatchResult{}
	start := time.Now()
	for _, it := range items {
		ctx := r.MustRun(it.Templ, it.Params...)
		res.Hits += ctx.Stats.HitsNonBind
		res.Potential += ctx.Stats.MarkedNonBind
		res.CumHits = append(res.CumHits, res.Hits)
		res.CumPotential = append(res.CumPotential, res.Potential)
		res.MemSeries = append(res.MemSeries, r.PoolBytes())
		res.EntriesSeries = append(res.EntriesSeries, r.PoolEntries())
	}
	res.Elapsed = time.Since(start)
	res.TotalMem = r.PoolBytes()
	res.Entries = r.PoolEntries()
	if r.Rec != nil {
		res.ReusedEntries, res.ReusedMem = r.Rec.PoolReusedStats()
	}
	return res
}

// AdmissionSweep reproduces Figs. 7–9: it runs the given workload for
// credits 2..maxCredits under keepall, credit and adapt admission and
// reports resource utilisation and performance.
func AdmissionSweep(db *tpch.DB, items []WorkItem, maxCredits int) []AdmissionPoint {
	warm := warmupOf(items)

	keepall := NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	keepall.Warmup(warm)
	base := RunBatch(keepall, items)

	out := []AdmissionPoint{{
		Credits: 0, Policy: "keepall", HitRatioToKeep: 1,
		TotalMem:     base.TotalMem,
		ReusedMemPct: pct(base.ReusedMem, base.TotalMem), ReusedEntriesPct: pct64(base.ReusedEntries, base.Entries),
		BatchTime: base.Elapsed,
	}}
	for credits := 2; credits <= maxCredits; credits++ {
		for _, kind := range []recycler.AdmissionKind{recycler.Credit, recycler.Adapt} {
			r := NewRecycled(db.Cat, recycler.Config{Admission: kind, Credits: credits})
			r.Warmup(warm)
			res := RunBatch(r, items)
			out = append(out, AdmissionPoint{
				Credits: credits, Policy: kind.String(),
				HitRatioToKeep: ratio(res.Hits, base.Hits),
				TotalMem:       res.TotalMem,
				ReusedMemPct:   pct(res.ReusedMem, res.TotalMem),
				ReusedEntriesPct: pct64(res.ReusedEntries,
					res.Entries),
				BatchTime: res.Elapsed,
			})
		}
	}
	return out
}

func warmupOf(items []WorkItem) []WarmupQuery {
	seen := map[int]bool{}
	var out []WarmupQuery
	for _, it := range items {
		if !seen[it.QNum] {
			seen[it.QNum] = true
			out = append(out, WarmupQuery{Templ: it.Templ, Params: it.Params})
		}
	}
	return out
}

func pct(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func pct64(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func ratio(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PrintAdmission renders the admission sweep (Figs. 7–9 data).
func PrintAdmission(w io.Writer, pts []AdmissionPoint) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Policy\tCredits\tHitRatio/KeepAll\tMem(KB)\tReusedMem%\tReusedEntries%\tTime")
	for _, p := range pts {
		fmt.Fprintf(tw, "%s\t%d\t%.2f\t%d\t%.1f\t%.1f\t%v\n",
			p.Policy, p.Credits, p.HitRatioToKeep, p.TotalMem/1024,
			p.ReusedMemPct, p.ReusedEntriesPct, p.BatchTime.Round(time.Millisecond))
	}
	tw.Flush()
}

// --- Figs. 10–11: eviction policies -------------------------------------

// EvictionCurve is one policy/limit combination: the cumulative
// hit-ratio curve over the batch plus the total time relative to the
// naive strategy.
type EvictionCurve struct {
	Policy    string
	LimitPct  int
	HitCurve  []float64
	TimeRatio float64
}

// EvictionSweep reproduces Figs. 10–11. limitKind is "entries" or
// "memory"; limits are percentages of the keepall/unlimited totals.
func EvictionSweep(db *tpch.DB, items []WorkItem, limitKind string, limitPcts []int) []EvictionCurve {
	warm := warmupOf(items)

	// Total resources needed (keepall/unlimited), per §7.3.
	keepall := NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	keepall.Warmup(warm)
	base := RunBatch(keepall, items)

	naive := NewNaive(db.Cat, false)
	naive.Warmup(warm)
	naiveRes := RunBatch(naive, items)

	configs := []struct {
		name string
		adm  recycler.AdmissionKind
		evt  recycler.EvictionKind
	}{
		{"lru", recycler.KeepAll, recycler.EvictLRU},
		{"crd+lru", recycler.Credit, recycler.EvictLRU},
		{"bp", recycler.KeepAll, recycler.EvictBP},
		{"crd+bp", recycler.Credit, recycler.EvictBP},
		{"hp", recycler.KeepAll, recycler.EvictHP},
	}

	curves := []EvictionCurve{{
		Policy: "nolimit", LimitPct: 100,
		HitCurve:  hitCurve(base),
		TimeRatio: float64(base.Elapsed) / float64(naiveRes.Elapsed),
	}}
	for _, pctLimit := range limitPcts {
		for _, cfgDef := range configs {
			cfg := recycler.Config{Admission: cfgDef.adm, Credits: 5, Eviction: cfgDef.evt}
			switch limitKind {
			case "entries":
				cfg.MaxEntries = max(1, base.Entries*pctLimit/100)
			case "memory":
				cfg.MaxBytes = max64b(1, base.TotalMem*int64(pctLimit)/100)
			default:
				panic("bench: unknown limit kind " + limitKind)
			}
			r := NewRecycled(db.Cat, cfg)
			r.Warmup(warm)
			res := RunBatch(r, items)
			curves = append(curves, EvictionCurve{
				Policy:    cfgDef.name,
				LimitPct:  pctLimit,
				HitCurve:  hitCurve(res),
				TimeRatio: float64(res.Elapsed) / float64(naiveRes.Elapsed),
			})
		}
	}
	return curves
}

func hitCurve(res *BatchResult) []float64 {
	out := make([]float64, len(res.CumHits))
	for i := range out {
		if res.CumPotential[i] > 0 {
			out[i] = float64(res.CumHits[i]) / float64(res.CumPotential[i])
		}
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func max64b(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// PrintEviction renders final hit ratios and time ratios per curve.
func PrintEviction(w io.Writer, curves []EvictionCurve) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Policy\tLimit%\tFinalHitRatio\tTime/Naive")
	for _, c := range curves {
		final := 0.0
		if len(c.HitCurve) > 0 {
			final = c.HitCurve[len(c.HitCurve)-1]
		}
		fmt.Fprintf(tw, "%s\t%d\t%.3f\t%.3f\n", c.Policy, c.LimitPct, final, c.TimeRatio)
	}
	tw.Flush()
}

// --- Figs. 12–13: recycling with updates --------------------------------

// UpdateSeries tracks RP memory and entries across a batch with
// injected update blocks.
type UpdateSeries struct {
	Strategy      string
	MemSeries     []int64
	EntriesSeries []int
	Elapsed       time.Duration
}

// UpdatesSweep reproduces Figs. 12–13: the mixed workload with one
// TPC-H refresh block in the middle of every K queries, run with
// keepall/unlimited and LRU at two memory limits (fractions of the
// keepall peak).
func UpdatesSweep(sf float64, genSeed int64, items func(db *tpch.DB) []WorkItem, k int) []UpdateSeries {
	// Each strategy gets a fresh database so updates don't accumulate
	// across strategies.
	run := func(strategy string, mk func(db *tpch.DB, peak int64) *Runner, peak int64) (UpdateSeries, int64) {
		db := tpch.Generate(sf, genSeed)
		batch := items(db)
		r := mk(db, peak)
		r.Warmup(warmupOf(batch))
		s := UpdateSeries{Strategy: strategy}
		start := time.Now()
		for i, it := range batch {
			if k > 0 && i > 0 && i%k == k/2 {
				db.UpdateBlock()
				s.MemSeries = append(s.MemSeries, r.PoolBytes())
				s.EntriesSeries = append(s.EntriesSeries, r.PoolEntries())
			}
			r.MustRun(it.Templ, it.Params...)
			s.MemSeries = append(s.MemSeries, r.PoolBytes())
			s.EntriesSeries = append(s.EntriesSeries, r.PoolEntries())
		}
		s.Elapsed = time.Since(start)
		var maxMem int64
		for _, m := range s.MemSeries {
			if m > maxMem {
				maxMem = m
			}
		}
		return s, maxMem
	}

	keepall, peak := run("keepall", func(db *tpch.DB, _ int64) *Runner {
		return NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	}, 0)
	lru50, _ := run("lru/50%", func(db *tpch.DB, p int64) *Runner {
		return NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll, Eviction: recycler.EvictLRU, MaxBytes: p / 2})
	}, peak)
	lru20, _ := run("lru/20%", func(db *tpch.DB, p int64) *Runner {
		return NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll, Eviction: recycler.EvictLRU, MaxBytes: p / 5})
	}, peak)
	return []UpdateSeries{keepall, lru50, lru20}
}

// PrintUpdates renders pool memory/entry series samples.
func PrintUpdates(w io.Writer, series []UpdateSeries, every int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Strategy\tStatement\tRP-Mem(KB)\tEntries")
	for _, s := range series {
		for i := 0; i < len(s.MemSeries); i += every {
			fmt.Fprintf(tw, "%s\t%d\t%d\t%d\n", s.Strategy, i, s.MemSeries[i]/1024, s.EntriesSeries[i])
		}
	}
	tw.Flush()
}

// MixedWorkload exposes the §7.2 batch builder.
func MixedWorkload(per int, seed int64) []WorkItem { return mixedWorkload(per, seed) }

// --- throughput ----------------------------------------------------------

// ThroughputRow compares sustained queries/second with and without
// recycling on the mixed batch — the paper's abstract promises
// improvements in both response time and throughput.
type ThroughputRow struct {
	Strategy string
	Queries  int
	Elapsed  time.Duration
	QPS      float64
}

// Throughput runs the batch under the naive and keepall strategies.
func Throughput(db *tpch.DB, items []WorkItem) []ThroughputRow {
	warm := warmupOf(items)
	row := func(name string, r *Runner) ThroughputRow {
		r.Warmup(warm)
		res := RunBatch(r, items)
		return ThroughputRow{
			Strategy: name,
			Queries:  len(items),
			Elapsed:  res.Elapsed,
			QPS:      float64(len(items)) / res.Elapsed.Seconds(),
		}
	}
	return []ThroughputRow{
		row("naive", NewNaive(db.Cat, false)),
		row("keepall", NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll})),
		row("adapt+bp", NewRecycled(db.Cat, recycler.Config{
			Admission: recycler.Adapt, Credits: 5, Eviction: recycler.EvictBP,
		})),
	}
}

// PrintThroughput renders the comparison.
func PrintThroughput(w io.Writer, rows []ThroughputRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Strategy\tQueries\tTime\tQPS")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\t%.1f\n", r.Strategy, r.Queries, r.Elapsed.Round(time.Millisecond), r.QPS)
	}
	tw.Flush()
}

// --- §6 ablation: invalidation vs delta propagation ----------------------

// SyncAblationRow compares update-synchronisation modes on the same
// volatile workload.
type SyncAblationRow struct {
	Mode    string
	Hits    int
	Elapsed time.Duration
}

// SyncAblation runs the mixed workload with an update block every k
// queries under immediate invalidation (the paper's implemented mode)
// and under delta propagation (§6.3), reporting reuse and total time.
// Propagation must never lose hits relative to invalidation.
func SyncAblation(sf float64, genSeed int64, items func(db *tpch.DB) []WorkItem, k int) []SyncAblationRow {
	run := func(mode recycler.SyncMode, name string) SyncAblationRow {
		db := tpch.Generate(sf, genSeed)
		batch := items(db)
		r := NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll, Sync: mode})
		r.Warmup(warmupOf(batch))
		row := SyncAblationRow{Mode: name}
		start := time.Now()
		for i, it := range batch {
			if k > 0 && i > 0 && i%k == k/2 {
				db.UpdateBlock()
			}
			ctx := r.MustRun(it.Templ, it.Params...)
			row.Hits += ctx.Stats.HitsNonBind
		}
		row.Elapsed = time.Since(start)
		return row
	}
	return []SyncAblationRow{
		run(recycler.SyncInvalidate, "invalidate"),
		run(recycler.SyncPropagate, "propagate"),
	}
}

// PrintSyncAblation renders the comparison.
func PrintSyncAblation(w io.Writer, rows []SyncAblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "SyncMode\tHits\tTime")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%v\n", r.Mode, r.Hits, r.Elapsed.Round(time.Millisecond))
	}
	tw.Flush()
}
