//go:build race

package bench

// raceEnabled reports that this binary was built with the race
// detector, whose instrumentation distorts wall-clock ratios (it
// multiplies per-access memory costs, compressing the recycled-vs-
// naive speedup toward 1). Timing assertions consult it and keep only
// their correctness checks under -race.
const raceEnabled = true
