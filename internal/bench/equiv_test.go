package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro"
	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/sky"
)

// TestEquivWorkloadDeterministicAndEquivalent: the generator is
// seed-stable, and every variant really is a different spelling of its
// canonical statement.
func TestEquivWorkloadDeterministicAndEquivalent(t *testing.T) {
	a := EquivWorkload(10, 3, 42)
	b := EquivWorkload(10, 3, 42)
	if len(a) != 10 {
		t.Fatalf("queries = %d", len(a))
	}
	for i := range a {
		if a[i].Canonical != b[i].Canonical {
			t.Fatal("generator not deterministic")
		}
		if len(a[i].Variants) == 0 {
			t.Fatalf("query %d has no variants", i)
		}
		for _, v := range a[i].Variants {
			if v == a[i].Canonical {
				t.Fatalf("variant equals canonical: %q", v)
			}
		}
	}
}

// TestEquivNormalizationTurnsMissesIntoHits is the tentpole's
// acceptance check at unit scale: with normalization the variant
// exact-hit rate is >= 95% (in fact 100%), without it the same
// workload mostly misses, and both configurations return identical
// COUNT(*) answers.
func TestEquivNormalizationTurnsMissesIntoHits(t *testing.T) {
	db := sky.Generate(2000, 17)
	queries := EquivWorkload(15, 3, 42)
	base := RunEquiv(db, queries, false)
	norm := RunEquiv(db, queries, true)
	if rate := norm.ExactHitRate(); rate < 0.95 {
		t.Fatalf("normalized exact-hit rate = %.2f, want >= 0.95", rate)
	}
	if base.ExactHitRate() > 0.5 {
		t.Fatalf("baseline exact-hit rate = %.2f, want low (misses)", base.ExactHitRate())
	}
	if norm.Templates != 1 {
		t.Fatalf("normalized templates = %d, want 1", norm.Templates)
	}
	if base.Templates <= norm.Templates {
		t.Fatalf("baseline templates = %d, want > %d", base.Templates, norm.Templates)
	}

	var buf bytes.Buffer
	PrintEquiv(&buf, []EquivResult{base, norm})
	if !strings.Contains(buf.String(), "normalized") {
		t.Fatal("print output incomplete")
	}
}

// TestGeneratedSkySQLOptimizePreservesResults: every statement of the
// generated SkySQL workload returns bit-identical results whether the
// engine compiles with the full normalization pipeline or with every
// pass disabled.
func TestGeneratedSkySQLOptimizePreservesResults(t *testing.T) {
	db := sky.Generate(2000, 17)
	raw := repro.NewEngine(db.Cat, repro.WithOptimizer(opt.Options{
		SkipConstFold: true, SkipDeadCode: true, SkipCommute: true,
		SkipCSE: true, SkipNormalizeSQL: true,
	}))
	full := repro.NewEngine(db.Cat)
	for _, sql := range SkySQLWorkload(40, 42) {
		want, err := raw.ExecSQL(sql)
		if err != nil {
			t.Fatalf("raw %q: %v", sql, err)
		}
		got, err := full.ExecSQL(sql)
		if err != nil {
			t.Fatalf("optimized %q: %v", sql, err)
		}
		if len(want.Results) != len(got.Results) {
			t.Fatalf("%q: result count %d != %d", sql, len(want.Results), len(got.Results))
		}
		for i := range want.Results {
			va, vb := want.Results[i].Val, got.Results[i].Val
			if va.Kind != vb.Kind {
				t.Fatalf("%q col %d: kind %v != %v", sql, i, va.Kind, vb.Kind)
			}
			if va.Kind != mal.VBat {
				if !va.EqualConst(vb) {
					t.Fatalf("%q col %d: %v != %v", sql, i, va, vb)
				}
				continue
			}
			if va.Bat.Len() != vb.Bat.Len() {
				t.Fatalf("%q col %d: len %d != %d", sql, i, va.Bat.Len(), vb.Bat.Len())
			}
			for j := 0; j < va.Bat.Len(); j++ {
				if va.Bat.Tail.Get(j) != vb.Bat.Tail.Get(j) {
					t.Fatalf("%q col %d row %d differs", sql, i, j)
				}
			}
		}
	}
}

// TestReportRoundTrip: the JSON report is stable enough to diff across
// PRs.
func TestReportRoundTrip(t *testing.T) {
	r := NewReport()
	r.AddEquiv(EquivResult{Mode: "normalized", Queries: 3, Variants: 9, Marked: 50, Hits: 50})
	r.AddMT(MTRow{Exec: "seq", Recycled: true, Clients: 2, Queries: 10, QPS: 123, Hits: 4, Pot: 8})
	path := filepath.Join(t.TempDir(), "BENCH_recycle.json")
	if err := r.Write(path); err != nil {
		t.Fatal(err)
	}
	var back Report
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != ReportSchema || len(back.Modes) != 2 {
		t.Fatalf("round trip = %+v", back)
	}
	if back.Modes[0].ExactHitRate != 1 || back.Modes[1].Mode != "seq/recycled" {
		t.Fatalf("modes = %+v", back.Modes)
	}
}
