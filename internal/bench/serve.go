package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/recycler"
)

// This file implements the over-the-wire load harness: a closed-loop
// HTTP generator driving a running server (internal/server) with the
// SkyServer workload mix, so the recycler's multi-user gain is
// measured end to end — network, JSON, admission gate and all —
// rather than in-process.

// SkySQLWorkload samples n SQL statements following the same §8.1 log
// statistics as sky.SampleWorkload, but as SQL text for the wire:
// >60% bounding-box searches over two overlapping footprints, ~36%
// documentation lookups, ~2% point queries. Statements repeat across
// clients (the generator hands each client the same list at a
// different offset), which is exactly the condition for cross-client
// reuse in the shared pool.
func SkySQLWorkload(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	footprints := [][4]float64{
		{195.0, 197.5, 2.0, 3.0},
		{195.5, 198.0, 2.2, 3.2},
	}
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case r < 0.62:
			fp := footprints[rng.Intn(2)]
			out = append(out, fmt.Sprintf(
				"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN %g AND %g AND dec BETWEEN %g AND %g AND mode = 1",
				fp[0], fp[1], fp[2], fp[3]))
		case r < 0.98:
			out = append(out, fmt.Sprintf(
				"SELECT description FROM sky.dbobjects WHERE name = 'dbobj_%03d'", rng.Intn(40)))
		default:
			out = append(out, fmt.Sprintf(
				"SELECT z FROM sky.elredshift WHERE specobjid = %d", int64(0x0559000000000000)+int64(rng.Intn(100))))
		}
	}
	return out
}

// LoadResult is one closed-loop run's outcome.
type LoadResult struct {
	Label    string
	Clients  int
	Duration time.Duration // actual wall time of the run
	Queries  int
	Errors   int
	QPS      float64
	P50      time.Duration
	P95      time.Duration
	P99      time.Duration
	Max      time.Duration
	// Hits/Marked accumulate the per-query recycler stats reported in
	// the responses (non-bind pool hits over monitored instructions).
	Hits   int
	Marked int
	// LockWaits/LockWait report the server-side recycler lock
	// contention the run caused (blocked writer- and shard-lock
	// acquisitions and total blocked time), read from GET /stats
	// before and after the run. Zero when the server runs naive.
	LockWaits int64
	LockWait  time.Duration
}

// HitRatio returns pool hits over potential hits for the run.
func (r *LoadResult) HitRatio() float64 {
	if r.Marked == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Marked)
}

// queryWireResponse mirrors server.QueryResponse closely enough to
// harvest the stats (the bench package deliberately does not import
// internal/server: it drives the wire format, not the Go API).
type queryWireResponse struct {
	Stats struct {
		HitsNonBind int `json:"hits_nonbind"`
		Marked      int `json:"marked"`
	} `json:"stats"`
	Error string `json:"error"`
}

// fetchLockWait reads the recycler lock-contention counters from the
// server's /stats endpoint, decoding straight into recycler.Stats —
// the same struct the server marshals — so the harness and the server
// can never disagree on field names or units. ok=false reports a
// failed fetch so the caller can skip the delta instead of reporting
// a bogus one.
func fetchLockWait(client *http.Client, baseURL string) (waits int64, wait time.Duration, ok bool) {
	resp, err := client.Get(baseURL + "/stats")
	if err != nil {
		return 0, 0, false
	}
	defer resp.Body.Close()
	var st struct {
		Engine struct {
			Recycler recycler.Stats
		} `json:"engine"`
	}
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return 0, 0, false
	}
	rec := st.Engine.Recycler
	return rec.WriterLockWaits + rec.ShardLockWaits,
		rec.WriterLockWait + rec.ShardLockWait, true
}

// HTTPLoad drives baseURL with clients concurrent closed-loop workers
// for the given duration: each worker POSTs /query statements from
// the list (starting at its own offset so the mix interleaves), waits
// for the response, and immediately issues the next. It returns
// aggregate throughput, latency percentiles and recycler hit totals.
func HTTPLoad(baseURL string, queries []string, clients int, duration time.Duration) LoadResult {
	if clients < 1 {
		clients = 1
	}
	type tally struct {
		n, errs, hits, marked int
		lats                  []time.Duration
	}
	tallies := make([]tally, clients)
	client := &http.Client{Timeout: 30 * time.Second}
	baseWaits, baseWait, baseOK := fetchLockWait(client, baseURL)
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			for i := c; time.Now().Before(deadline); i++ {
				sql := queries[i%len(queries)]
				body, _ := json.Marshal(map[string]string{"sql": sql})
				qStart := time.Now()
				resp, err := client.Post(baseURL+"/query", "application/json", bytes.NewReader(body))
				lat := time.Since(qStart)
				if err != nil {
					t.errs++
					continue
				}
				var wire queryWireResponse
				dec := json.NewDecoder(resp.Body)
				decErr := dec.Decode(&wire)
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if decErr != nil || resp.StatusCode != http.StatusOK {
					t.errs++
					continue
				}
				t.n++
				t.hits += wire.Stats.HitsNonBind
				t.marked += wire.Stats.Marked
				t.lats = append(t.lats, lat)
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	res := LoadResult{Clients: clients, Duration: wall}
	if endWaits, endWait, endOK := fetchLockWait(client, baseURL); baseOK && endOK {
		res.LockWaits = endWaits - baseWaits
		res.LockWait = endWait - baseWait
	}
	var all []time.Duration
	for _, t := range tallies {
		res.Queries += t.n
		res.Errors += t.errs
		res.Hits += t.hits
		res.Marked += t.marked
		all = append(all, t.lats...)
	}
	if wall > 0 {
		res.QPS = float64(res.Queries) / wall.Seconds()
	}
	if len(all) > 0 {
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		res.P50 = all[len(all)/2]
		res.P95 = all[min(len(all)*95/100, len(all)-1)]
		res.P99 = all[min(len(all)*99/100, len(all)-1)]
		res.Max = all[len(all)-1]
	}
	return res
}

// PrintLoad renders closed-loop runs; rows labelled with the same
// client count but different labels (e.g. "naive" vs "recycled")
// compare the over-the-wire speedup.
func PrintLoad(w io.Writer, rows []LoadResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Config\tClients\tQueries\tErrors\tQPS\tp50\tp95\tp99\tmax\tHitRatio\tLockWait")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%.0f\t%v\t%v\t%v\t%v\t%.1f%%\t%v/%d\n",
			r.Label, r.Clients, r.Queries, r.Errors, r.QPS,
			r.P50.Round(time.Microsecond), r.P95.Round(time.Microsecond),
			r.P99.Round(time.Microsecond), r.Max.Round(time.Microsecond),
			100*r.HitRatio(), r.LockWait.Round(time.Microsecond), r.LockWaits)
	}
	tw.Flush()
}
