package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/sky"
	"repro/internal/trace"
)

// This file implements the naive single-stream baseline: the SkyServer
// workload mix driven by ONE client with no recycler, no measurement
// hooks and the sequential interpreter. It is the denominator of every
// recycled-vs-naive ratio the other experiments report, so its QPS is
// recorded in BENCH_recycle.json (experiment "naive-baseline") and CI
// gates kernel regressions against the recorded seed value.

// NaiveResult is one naive single-stream run.
type NaiveResult struct {
	Queries       int
	Wall          time.Duration
	QPS           float64
	P50, P95, P99 time.Duration
}

// RunNaiveStream executes the sampled workload once, single-stream,
// against a naive sequential runner, and returns the throughput.
func RunNaiveStream(db *sky.DB, n int, seed int64) NaiveResult {
	w := sky.SampleWorkload(db, n, seed)
	r := NewNaive(db.Cat, false)
	// The baseline measures the full naive kernel stack — typed scans,
	// arena joins AND fused select chains — unlike the ratio
	// experiments, which hold fusion off on both arms.
	r.NoFusion = false
	r.Warmup(SkyWarmup(w))
	var lat trace.Histogram
	start := time.Now()
	for _, q := range w.Batch {
		q0 := time.Now()
		r.MustRun(w.Template(q.Kind), q.Params...)
		lat.Observe(time.Since(q0))
	}
	wall := time.Since(start)
	res := NaiveResult{Queries: len(w.Batch), Wall: wall}
	if wall > 0 {
		res.QPS = float64(res.Queries) / wall.Seconds()
	}
	res.P50, res.P95, res.P99 = lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99)
	return res
}

// AddNaiveBaseline records a naive single-stream row. Mode "current" is
// this run; mode "seed" carries the frozen pre-kernel-pass value the CI
// gate compares against (0 when unset).
func (r *Report) AddNaiveBaseline(mode string, n NaiveResult) {
	r.Add(ModeStat{
		Experiment: "naive-baseline",
		Mode:       mode,
		Clients:    1,
		Queries:    n.Queries,
		QPS:        n.QPS,
		P50NS:      n.P50.Nanoseconds(),
		P95NS:      n.P95.Nanoseconds(),
		P99NS:      n.P99.Nanoseconds(),
	})
}

// PrintNaive renders the baseline row and, when a seed value is known,
// the speedup against it.
func PrintNaive(w io.Writer, res NaiveResult, seedQPS float64) {
	fmt.Fprintf(w, "queries %d  wall %v  QPS %.1f  p50 %v  p95 %v  p99 %v\n",
		res.Queries, res.Wall.Round(time.Millisecond), res.QPS,
		res.P50.Round(time.Microsecond), res.P95.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	if seedQPS > 0 {
		fmt.Fprintf(w, "seed-kernel baseline %.1f QPS -> speedup %.2fx\n", seedQPS, res.QPS/seedQPS)
	}
}
