package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/recycler"
	"repro/internal/sky"
	"repro/internal/tpch"
)

var benchDB = tpch.Generate(0.002, 7)

func TestTable2ShapesMatchPaper(t *testing.T) {
	rows := Table2(benchDB, 5)
	if len(rows) != 22 {
		t.Fatalf("rows = %d, want 22", len(rows))
	}
	byQ := map[int]Table2Row{}
	for _, r := range rows {
		byQ[r.QNum] = r
	}
	// Q18 and Q22 are the flagship inter-query cases (75% in the
	// paper); they must show strong inter-query reuse.
	for _, q := range []int{18, 22} {
		if byQ[q].InterPct < 40 {
			t.Errorf("Q%d inter%% = %.1f, want >= 40", q, byQ[q].InterPct)
		}
	}
	// Q11 is the flagship intra-query case (33.3%).
	if byQ[11].IntraPct < 20 {
		t.Errorf("Q11 intra%% = %.1f, want >= 20", byQ[11].IntraPct)
	}
	// Q6 has no overlap at all.
	if byQ[6].IntraPct != 0 || byQ[6].InterPct != 0 {
		t.Errorf("Q6 overlap = %.1f/%.1f, want 0/0", byQ[6].IntraPct, byQ[6].InterPct)
	}
	// Q4 overlaps across instances through the constant late-lineitem
	// scan.
	if byQ[4].InterPct < 20 {
		t.Errorf("Q4 inter%% = %.1f, want >= 20", byQ[4].InterPct)
	}
	var buf bytes.Buffer
	PrintTable2(&buf, rows)
	if !strings.Contains(buf.String(), "Q18") {
		t.Fatal("print output incomplete")
	}
}

func TestMicroProfileQ18Shape(t *testing.T) {
	pts := MicroProfile(benchDB, 18, 6, 3)
	if len(pts) != 6 {
		t.Fatalf("points = %d", len(pts))
	}
	// First instance: low hit ratio; later instances: high.
	if pts[0].HitRatio > 0.5 {
		t.Errorf("instance 1 hit ratio = %.2f, want low", pts[0].HitRatio)
	}
	if pts[3].HitRatio < 0.55 {
		t.Errorf("instance 4 hit ratio = %.2f, want high (inter-query reuse)", pts[3].HitRatio)
	}
	// Memory flattens: the last instances add little.
	growthLate := pts[5].TotalMem - pts[3].TotalMem
	growthEarly := pts[1].TotalMem
	if growthLate > growthEarly {
		t.Errorf("memory still growing late: %d vs %d", growthLate, growthEarly)
	}
}

func TestMicroProfileQ14Overhead(t *testing.T) {
	pts := MicroProfile(benchDB, 14, 5, 3)
	// Q14 instances barely overlap: hit ratio stays small.
	for _, p := range pts {
		if p.HitRatio > 0.4 {
			t.Errorf("Q14 instance %d hit ratio = %.2f, want small", p.Instance, p.HitRatio)
		}
	}
	// But memory keeps growing (intermediates accumulate unused).
	if pts[4].TotalMem <= pts[0].TotalMem {
		t.Error("Q14 memory should keep growing")
	}
}

func TestFig6Shape(t *testing.T) {
	rows := Fig6(benchDB, []int{18, 14}, 5, 3)
	byQ := map[int]Fig6Row{}
	for _, r := range rows {
		byQ[r.QNum] = r
	}
	// Q18 recycled average must beat its first (cold) instance by a
	// wide margin.
	if byQ[18].RecycleAvg*2 > byQ[18].RecycleFirst {
		t.Errorf("Q18 avg %v vs first %v: expected >=2x gap", byQ[18].RecycleAvg, byQ[18].RecycleFirst)
	}
}

func TestAdmissionSweepShapes(t *testing.T) {
	items := MixedWorkload(3, 11)
	pts := AdmissionSweep(benchDB, items, 4)
	var keepall AdmissionPoint
	adapt := map[int]AdmissionPoint{}
	credit := map[int]AdmissionPoint{}
	for _, p := range pts {
		switch p.Policy {
		case "keepall":
			keepall = p
		case "adapt":
			adapt[p.Credits] = p
		case "crd":
			credit[p.Credits] = p
		}
	}
	// Credit and adapt use no more memory than keepall.
	for c, p := range credit {
		if p.TotalMem > keepall.TotalMem {
			t.Errorf("credit(%d) memory %d > keepall %d", c, p.TotalMem, keepall.TotalMem)
		}
		if p.HitRatioToKeep > 1.01 {
			t.Errorf("credit(%d) hit ratio %f > 1", c, p.HitRatioToKeep)
		}
	}
	// Adapt achieves a high hit ratio (paper: ~95%).
	if p, ok := adapt[3]; ok && p.HitRatioToKeep < 0.7 {
		t.Errorf("adapt(3) hit ratio = %.2f, want >= 0.7", p.HitRatioToKeep)
	}
	// Resource utilisation improves: reused-memory percentage of the
	// restricted policies is at least keepall's.
	if p, ok := adapt[3]; ok && p.ReusedMemPct+1e-9 < keepall.ReusedMemPct {
		t.Errorf("adapt(3) reused-mem%% %.1f < keepall %.1f", p.ReusedMemPct, keepall.ReusedMemPct)
	}
	var buf bytes.Buffer
	PrintAdmission(&buf, pts)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestEvictionSweepShapes(t *testing.T) {
	items := MixedWorkload(3, 13)
	curves := EvictionSweep(benchDB, items, "entries", []int{20, 60})
	var noLimit EvictionCurve
	final := func(c EvictionCurve) float64 { return c.HitCurve[len(c.HitCurve)-1] }
	byKey := map[string]EvictionCurve{}
	for _, c := range curves {
		if c.Policy == "nolimit" {
			noLimit = c
			continue
		}
		byKey[c.Policy+"@"+itoa(c.LimitPct)] = c
	}
	// Limits reduce (or keep) the hit ratio, and 60% hurts less than
	// 20% for the same policy.
	for _, pol := range []string{"lru", "bp"} {
		c20, ok20 := byKey[pol+"@20"]
		c60, ok60 := byKey[pol+"@60"]
		if !ok20 || !ok60 {
			t.Fatalf("missing curves for %s", pol)
		}
		if final(c20) > final(noLimit)+1e-9 {
			t.Errorf("%s@20 final hit ratio above unlimited", pol)
		}
		if final(c60)+1e-9 < final(c20) {
			t.Errorf("%s: 60%% limit (%f) worse than 20%% (%f)", pol, final(c60), final(c20))
		}
	}
	// Memory variant exercises the knapsack path.
	mcurves := EvictionSweep(benchDB, items, "memory", []int{40})
	if len(mcurves) < 2 {
		t.Fatal("memory sweep incomplete")
	}
	var buf bytes.Buffer
	PrintEviction(&buf, mcurves)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func itoa(i int) string {
	return string(rune('0'+i/10%10)) + string(rune('0'+i%10))
}

func TestUpdatesSweepShapes(t *testing.T) {
	series := UpdatesSweep(0.002, 7, func(db *tpch.DB) []WorkItem { return MixedWorkload(2, 17) }, 5)
	if len(series) != 3 {
		t.Fatalf("series = %d", len(series))
	}
	keepall := series[0]
	// Update blocks invalidate pool content: the memory series is not
	// monotonically increasing.
	drops := 0
	for i := 1; i < len(keepall.MemSeries); i++ {
		if keepall.MemSeries[i] < keepall.MemSeries[i-1] {
			drops++
		}
	}
	if drops == 0 {
		t.Error("no invalidation drops observed in keepall memory series")
	}
	// Limited strategies stay under their caps relative to keepall.
	maxOf := func(s UpdateSeries) int64 {
		var m int64
		for _, v := range s.MemSeries {
			if v > m {
				m = v
			}
		}
		return m
	}
	if maxOf(series[2]) > maxOf(series[0]) {
		t.Error("lru/20% exceeded keepall peak")
	}
	var buf bytes.Buffer
	PrintUpdates(&buf, series, 10)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

// --- Sky experiments ----------------------------------------------------

// 30k objects: the typed branch-free kernels pushed per-query scan
// time down far enough that at the old 4k scale recycler bookkeeping
// outweighed the kernel time it saves. Recycling-beats-naive is a
// statement about data-dominated queries (the paper runs 1.6M-object
// SkyServer tables), so the fixture stays large enough for kernel time
// to dominate the per-instruction overhead.
var skyDB = sky.Generate(30000, 19)

func TestSkyBatchShape(t *testing.T) {
	w := sky.SampleWorkload(skyDB, 60, 3)
	row := SkyBatch(skyDB, w, 1, 3)
	// Keepall recycling must beat naive by a wide margin on this
	// highly repetitive workload (the paper reports ~10x or more). The
	// ratio check is skipped under the race detector: instrumentation
	// taxes the naive arm's scans and the recycler's bookkeeping very
	// differently, so the wall-clock ratio is meaningless there.
	if !raceEnabled && row.KeepAll*2 > row.Naive {
		t.Errorf("keepall %v vs naive %v: expected >= 2x speedup", row.KeepAll, row.Naive)
	}
	if row.Reused < 0.5 {
		t.Errorf("reuse fraction = %.2f, want >= 0.5", row.Reused)
	}
	var buf bytes.Buffer
	PrintFig14(&buf, []Fig14Row{row})
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestTable3Breakdown(t *testing.T) {
	w := sky.SampleWorkload(skyDB, 40, 5)
	rows := Table3(skyDB, w)
	if len(rows) == 0 {
		t.Fatal("no breakdown")
	}
	ops := map[string]recycler.TypeRow{}
	for _, r := range rows {
		ops[r.Op] = r
	}
	if _, ok := ops["algebra.semijoin"]; !ok {
		t.Error("semijoin missing from breakdown")
	}
	if _, ok := ops["algebra.select"]; !ok {
		t.Error("select missing from breakdown")
	}
	var buf bytes.Buffer
	PrintTable3(&buf, rows)
	if !strings.Contains(buf.String(), "Total") {
		t.Fatal("no totals row")
	}
}

func TestSkySubsumeShape(t *testing.T) {
	mb := sky.GenMicroBench(2, 5, 0.02, 7)
	pts := SkySubsume(skyDB, mb)
	if len(pts) != len(mb.Queries) {
		t.Fatalf("points = %d", len(pts))
	}
	combinedSeeds := 0
	for _, p := range pts {
		if p.Seed && p.Combined {
			combinedSeeds++
			if p.SelRatio <= 0 {
				t.Errorf("seed %d: missing selection ratio", p.Query)
			}
		}
	}
	if combinedSeeds < 3 {
		t.Errorf("combined subsumption on %d/5 seeds", combinedSeeds)
	}
	var buf bytes.Buffer
	PrintFig15(&buf, 2, pts)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestSyncAblation(t *testing.T) {
	rows := SyncAblation(0.002, 7, func(db *tpch.DB) []WorkItem { return MixedWorkload(2, 17) }, 5)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	inval, prop := rows[0], rows[1]
	// Propagation keeps select-over-bind chains alive, so it must not
	// lose reuse relative to immediate invalidation.
	if prop.Hits < inval.Hits {
		t.Errorf("propagation hits %d < invalidation hits %d", prop.Hits, inval.Hits)
	}
	var buf bytes.Buffer
	PrintSyncAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}

func TestThroughput(t *testing.T) {
	items := MixedWorkload(3, 23)
	rows := Throughput(benchDB, items)
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ThroughputRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	// Recycling improves throughput on the overlap-heavy batch.
	if byName["keepall"].QPS <= byName["naive"].QPS {
		t.Errorf("keepall QPS %.1f <= naive %.1f", byName["keepall"].QPS, byName["naive"].QPS)
	}
	var buf bytes.Buffer
	PrintThroughput(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print")
	}
}
