package bench

import (
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"repro/internal/recycler"
	"repro/internal/sky"
	"repro/internal/trace"
)

// This file implements the multi-client throughput harness: the
// paper's multi-user setting (§6, SkyServer traffic) where N
// concurrent sessions share one engine and one recycle pool. It is
// also the measurement surface for the dataflow scheduler — the same
// workload is driven with the sequential interpreter and with
// intra-query parallelism, with and without recycling.

// MTRow is one multi-client configuration's outcome.
type MTRow struct {
	Exec     string // "seq" or "dataflow"
	Recycled bool
	Clients  int
	Queries  int
	Wall     time.Duration // wall-clock time for the whole batch
	QPS      float64
	SumQuery time.Duration // summed per-query elapsed (total work done)
	Hits     int           // non-bind pool hits across all clients
	Pot      int           // non-bind monitored instructions (potential)
	Subsumed int           // singleton subsumption rewrites
	Combined int           // combined subsumption hits
	PoolMem  int64         // recycle pool bytes after the batch

	// LockWaits/LockWait aggregate the recycler's contention during the
	// batch: blocked writer- and shard-lock acquisitions and the total
	// time clients spent waiting on them (zero for naive runners).
	LockWaits int64
	LockWait  time.Duration
	// Per-query latency percentiles across all clients, from a shared
	// trace.Histogram (wait-free, so the concurrent clients feed it
	// without coordination).
	P50, P95, P99 time.Duration
}

// HitRatio returns pool hits over potential hits for the whole batch.
func (r *MTRow) HitRatio() float64 {
	if r.Pot == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Pot)
}

// SkyMultiClient drives the sampled workload from `clients` concurrent
// client goroutines sharing one runner (and therefore one recycle
// pool). The batch is partitioned round-robin, so every client mixes
// the query kinds and overlapping parameter regions — the condition
// under which cross-client (global) reuse appears.
func SkyMultiClient(r *Runner, w *sky.Workload, clients int) MTRow {
	if clients < 1 {
		clients = 1
	}
	type tally struct {
		n, hits, pot, sub, comb int
		sum                     time.Duration
	}
	tallies := make([]tally, clients)
	var lockBase recycler.Stats
	if r.Rec != nil {
		lockBase = r.Rec.Snapshot()
	}
	var lat trace.Histogram
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			t := &tallies[c]
			for i := c; i < len(w.Batch); i += clients {
				q := w.Batch[i]
				q0 := time.Now()
				ctx := r.MustRun(w.Template(q.Kind), q.Params...)
				lat.Observe(time.Since(q0))
				t.n++
				t.hits += ctx.Stats.HitsNonBind
				t.pot += ctx.Stats.MarkedNonBind
				t.sub += ctx.Stats.Subsumed
				t.comb += ctx.Stats.Combined
				t.sum += ctx.Stats.Elapsed
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	// Label from the *effective* execution mode: mal.Run falls back to
	// the sequential loop whenever it resolves to a single worker, so
	// a "dataflow" label must mean the scheduler actually ran.
	eff := r.Workers
	if eff <= 0 {
		eff = runtime.GOMAXPROCS(0)
	}
	row := MTRow{
		Exec:     "dataflow",
		Recycled: r.Rec != nil,
		Clients:  clients,
		Wall:     wall,
		PoolMem:  r.PoolBytes(),
	}
	if r.Rec != nil {
		s := r.Rec.Snapshot()
		row.LockWaits = (s.WriterLockWaits - lockBase.WriterLockWaits) +
			(s.ShardLockWaits - lockBase.ShardLockWaits)
		row.LockWait = (s.WriterLockWait - lockBase.WriterLockWait) +
			(s.ShardLockWait - lockBase.ShardLockWait)
	}
	if eff <= 1 {
		row.Exec = "seq"
	}
	for _, t := range tallies {
		row.Queries += t.n
		row.Hits += t.hits
		row.Pot += t.pot
		row.Subsumed += t.sub
		row.Combined += t.comb
		row.SumQuery += t.sum
	}
	if wall > 0 {
		row.QPS = float64(row.Queries) / wall.Seconds()
	}
	row.P50, row.P95, row.P99 = lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99)
	return row
}

// SkyWarmup derives the warmup list touching every distinct template
// of the batch once (the experimental preparation of §7: factor out
// cold IO, start from an empty pool).
func SkyWarmup(batch *sky.Workload) []WarmupQuery {
	var warm []WarmupQuery
	seen := map[string]bool{}
	for _, q := range batch.Batch {
		if !seen[q.Kind] {
			seen[q.Kind] = true
			warm = append(warm, WarmupQuery{Templ: batch.Template(q.Kind), Params: q.Params})
		}
	}
	return warm
}

// PrintMT renders the multi-client comparison. Speedup is each row's
// wall-clock gain over the 1-client sequential row of the same
// recycler setting.
func PrintMT(w io.Writer, rows []MTRow) {
	base := map[bool]time.Duration{}
	for _, r := range rows {
		if r.Clients == 1 && r.Exec == "seq" {
			base[r.Recycled] = r.Wall
		}
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Clients\tExec\tRecycler\tWall\tQPS\tHitRatio\tPoolMem(KB)\tLockWait\tSpeedup")
	for _, r := range rows {
		rec := "off"
		if r.Recycled {
			rec = "shared"
		}
		speedup := ""
		if b := base[r.Recycled]; b > 0 && r.Wall > 0 {
			speedup = fmt.Sprintf("%.2fx", float64(b)/float64(r.Wall))
		}
		lockWait := "-"
		if r.Recycled {
			lockWait = fmt.Sprintf("%v/%d", r.LockWait.Round(time.Microsecond), r.LockWaits)
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%v\t%.0f\t%.1f%%\t%d\t%s\t%s\n",
			r.Clients, r.Exec, rec, r.Wall.Round(time.Millisecond), r.QPS,
			100*r.HitRatio(), r.PoolMem/1024, lockWait, speedup)
	}
	tw.Flush()
}
