// Package bench implements the paper's experiment harness: it drives
// query batches against engines with and without the recycler and
// regenerates every table and figure of the evaluation sections
// (Table II, Figs. 4–13 for TPC-H; Fig. 14, Table III and Fig. 15 for
// SkyServer). The per-experiment index lives in DESIGN.md.
package bench
