package bench

import (
	"fmt"
	"io"
	"text/tabwriter"
	"time"

	"repro/internal/recycler"
	"repro/internal/sky"
)

// --- Fig. 14: SkyServer batch performance --------------------------------

// Fig14Row is one batch split: total times of the naive strategy, the
// resource-limited CRD/LRU recycler, and keepall/unlimited recycling.
type Fig14Row struct {
	Split    string
	Naive    time.Duration
	CrdLru   time.Duration
	KeepAll  time.Duration
	PeakMem  int64
	Reused   float64 // fraction of monitored instructions reused (keepall)
	Segments int
}

// SkyBatch reproduces Fig. 14: the sampled workload executed in
// segments (4x25, 2x50, 1x100 over a 100-query batch), cleaning the
// recycle pool between segments. The CRD/LRU runner's memory limit is
// 65% of the keepall peak, following §8.2.
func SkyBatch(db *sky.DB, batch *sky.Workload, segments int, seed int64) Fig14Row {
	n := len(batch.Batch)
	segLen := n / segments

	warm := SkyWarmup(batch)

	runSegments := func(r *Runner) (time.Duration, int, int, int64) {
		var total time.Duration
		hits, pot := 0, 0
		var peak int64
		start := 0
		for s := 0; s < segments; s++ {
			end := start + segLen
			if s == segments-1 {
				end = n
			}
			for _, q := range batch.Batch[start:end] {
				ctx := r.MustRun(batch.Template(q.Kind), q.Params...)
				total += ctx.Stats.Elapsed
				hits += ctx.Stats.HitsNonBind
				pot += ctx.Stats.MarkedNonBind
				if m := r.PoolBytes(); m > peak {
					peak = m
				}
			}
			if r.Rec != nil {
				r.Rec.Reset()
			}
			start = end
		}
		return total, hits, pot, peak
	}

	naive := NewNaive(db.Cat, false)
	naive.Warmup(warm)
	nTime, _, _, _ := runSegments(naive)

	keepall := NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll, Subsumption: true})
	keepall.Warmup(warm)
	kTime, kHits, kPot, kPeak := runSegments(keepall)
	keepall.Rec.Close()

	crd := NewRecycled(db.Cat, recycler.Config{
		Admission: recycler.Credit, Credits: 5,
		Eviction: recycler.EvictLRU, MaxBytes: max64b(1, kPeak*65/100),
		Subsumption: true,
	})
	crd.Warmup(warm)
	cTime, _, _, _ := runSegments(crd)
	crd.Rec.Close()

	reused := 0.0
	if kPot > 0 {
		reused = float64(kHits) / float64(kPot)
	}
	return Fig14Row{
		Split:    fmt.Sprintf("%dx%d", segments, segLen),
		Naive:    nTime,
		CrdLru:   cTime,
		KeepAll:  kTime,
		PeakMem:  kPeak,
		Reused:   reused,
		Segments: segments,
	}
}

// PrintFig14 renders the batch comparison.
func PrintFig14(w io.Writer, rows []Fig14Row) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Split\tNaive\tCRD/LRU(65%)\tKeepAll/Unlim\tPeakMem(KB)\tReuse")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%v\t%v\t%v\t%d\t%.1f%%\n", r.Split,
			r.Naive.Round(time.Millisecond), r.CrdLru.Round(time.Millisecond),
			r.KeepAll.Round(time.Millisecond), r.PeakMem/1024, 100*r.Reused)
	}
	tw.Flush()
}

// --- Table III: recycle pool content breakdown ---------------------------

// Table3 runs the batch under keepall/unlimited and returns the
// instruction-type breakdown of the final pool.
func Table3(db *sky.DB, batch *sky.Workload) []recycler.TypeRow {
	r := NewRecycled(db.Cat, recycler.Config{Admission: recycler.KeepAll, Subsumption: true})
	for _, q := range batch.Batch {
		r.MustRun(batch.Template(q.Kind), q.Params...)
	}
	rows := r.Rec.PoolTypeBreakdown()
	r.Rec.Close()
	return rows
}

// PrintTable3 renders the pool breakdown in the paper's Table III
// layout.
func PrintTable3(w io.Writer, rows []recycler.TypeRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Instruction\tLines\tMemory(KB)\tAvgTime\tReusedLines\tReuses\tAvgSaved")
	var lines, reuses int
	var mem int64
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%v\t%d\t%d\t%v\n", r.Op, r.Lines, r.Bytes/1024,
			r.AvgCost.Round(time.Microsecond), r.ReusedLines, r.Reuses, r.AvgSaved.Round(time.Microsecond))
		lines += r.Lines
		mem += r.Bytes
		reuses += r.Reuses
	}
	fmt.Fprintf(tw, "Total\t%d\t%d\t\t\t%d\t\n", lines, mem/1024, reuses)
	tw.Flush()
}

// --- Fig. 15: combined subsumption micro-benchmarks ----------------------

// Fig15Point is one query of a B-k micro-benchmark.
type Fig15Point struct {
	Query      int
	Seed       bool
	TotalRatio float64 // recycled / naive total time
	SelRatio   float64 // subsumed selection / regular selection time
	AlgTime    time.Duration
	Combined   bool
}

// SkySubsume reproduces Fig. 15: it runs a B-k benchmark with
// combined subsumption enabled and reports, per query, the total time
// ratio against regular execution, the selection-time ratio for
// subsumed seeds, and the time spent in the subsumption search.
func SkySubsume(db *sky.DB, mb *sky.MicroBench) []Fig15Point {
	rec := NewRecycled(db.Cat, recycler.Config{
		Admission: recycler.KeepAll, Subsumption: true, CombinedSubsumption: true,
	})
	naive := NewNaive(db.Cat, true)
	// Warm both paths.
	naive.MustRun(mb.Templ, mb.Queries[0]...)
	rec.Warmup([]WarmupQuery{{Templ: mb.Templ, Params: mb.Queries[0]}})

	out := make([]Fig15Point, 0, len(mb.Queries))
	for i, params := range mb.Queries {
		// The recycled run happens once (it mutates the pool); the
		// naive baseline repeats and keeps the fastest run to reduce
		// timing noise on sub-millisecond selections.
		nctx := naive.MustRun(mb.Templ, params...)
		for rep := 0; rep < 2; rep++ {
			c := naive.MustRun(mb.Templ, params...)
			if c.Stats.Elapsed < nctx.Stats.Elapsed {
				nctx = c
			}
		}
		rctx := rec.MustRun(mb.Templ, params...)
		p := Fig15Point{
			Query:      i + 1,
			Seed:       mb.SeedIdx[i],
			TotalRatio: ratioDur(rctx.Stats.Elapsed, nctx.Stats.Elapsed),
			AlgTime:    rctx.Stats.SubsumeOverhead,
			Combined:   rctx.Stats.Combined > 0,
		}
		if p.Combined && nctx.Stats.TimeInMarked > 0 {
			p.SelRatio = ratioDur(rctx.Stats.CombinedExec, nctx.Stats.TimeInMarked)
		}
		out = append(out, p)
	}
	rec.Rec.Close()
	return out
}

func ratioDur(a, b time.Duration) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// PrintFig15 renders the micro-benchmark series.
func PrintFig15(w io.Writer, k int, pts []Fig15Point) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "B%d query\tseed\ttotal-ratio\tsel-ratio\talg-time\tcombined\n", k)
	for _, p := range pts {
		seed := ""
		if p.Seed {
			seed = "*"
		}
		fmt.Fprintf(tw, "%d\t%s\t%.2f\t%.2f\t%v\t%v\n", p.Query, seed, p.TotalRatio, p.SelRatio,
			p.AlgTime.Round(time.Microsecond), p.Combined)
	}
	tw.Flush()
}
