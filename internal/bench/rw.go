package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"
	"time"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
	"repro/internal/sky"
	"repro/internal/sqlfe"
	"repro/internal/trace"
)

// This file implements the mixed read/write workload: the SkyServer
// bounding-box mix interleaved with DML against sky.photoobj at a
// configurable write fraction, run once per update-synchronisation
// mode. It measures what each mode leaves of the pool under churn —
// invalidation throws affected entries away on every commit, so the
// repeating reads keep rebuilding them; propagation saves the shapes
// its delta rules cover; incremental maintenance keeps whole
// select/semijoin/aggregate chains alive. The exact-hit rate over the
// read statements is the headline number, and CI gates maintain
// against invalidate on it.

// RWResult is one sync mode's outcome over the mixed workload.
type RWResult struct {
	Mode   string // "invalidate", "propagate" or "maintain"
	Reads  int
	Writes int
	// Marked/Hits count non-bind monitored instructions and pool hits
	// over the read statements (the warmup pass is excluded).
	Marked int
	Hits   int
	Wall   time.Duration
	QPS    float64
	// Recycler counters after the run: what the writes did to the pool.
	Invalidated int64
	Maintained  int64
	Fallback    int64
	DeltaRows   int64
	LockWaits   int64
	LockWait    time.Duration
	// Per-read-statement latency percentiles (writes excluded; the
	// reads are what the sync modes differentiate).
	P50, P95, P99 time.Duration
}

// ExactHitRate returns read pool hits over read potential hits.
func (r *RWResult) ExactHitRate() float64 {
	if r.Marked == 0 {
		return 0
	}
	return float64(r.Hits) / float64(r.Marked)
}

// RWStatements samples k distinct bounding-box COUNT statements over
// sky.photoobj. Every statement compiles to a maintainable chain
// (bind, range selects, semijoins, aggr.count), so the workload
// separates the sync modes rather than the eligibility rules.
func RWStatements(k int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, k)
	seen := map[string]bool{}
	for len(out) < k {
		raLo := float64(rng.Intn(640)) * 0.5
		raHi := raLo + float64(rng.Intn(8)+1)*0.5
		decLo := float64(rng.Intn(300))*0.5 - 85
		decHi := decLo + float64(rng.Intn(6)+1)*0.5
		s := fmt.Sprintf(
			"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN %g AND %g AND dec BETWEEN %g AND %g AND mode = 1",
			raLo, raHi, decLo, decHi)
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

// rwRow builds one photoobj row with every column populated (Append
// requires complete rows). ra/dec land inside the sampled footprint
// space so some inserts actually change cached results.
func rwRow(t *catalog.Table, rng *rand.Rand, objid int64) catalog.Row {
	r := catalog.Row{}
	for _, c := range t.Cols {
		switch c.Name {
		case "objid":
			r[c.Name] = objid
		case "ra":
			r[c.Name] = rng.Float64() * 360
		case "dec":
			r[c.Name] = rng.Float64()*180 - 90
		case "mode":
			r[c.Name] = int64(rng.Intn(2) + 1)
		default:
			switch c.KindOf {
			case bat.KInt:
				r[c.Name] = int64(rng.Intn(10000))
			case bat.KFloat:
				r[c.Name] = 10 + rng.Float64()*15
			case bat.KStr:
				r[c.Name] = fmt.Sprintf("rw_%d", objid)
			}
		}
	}
	return r
}

// RunRW executes n operations — reads cycling through the statement
// set, writes (row appends and deletions of previously appended rows)
// at writeFrac — against a fresh recycled stack configured with the
// given sync mode. The statement set is executed once beforehand to
// warm the pool; absent writes every read would then hit exactly.
func RunRW(db *sky.DB, stmts []string, n int, writeFrac float64, seed int64, mode string, sync recycler.SyncMode) RWResult {
	fe := sqlfe.NewFrontendOpt(db.Cat, opt.Options{})
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll, Sync: sync})
	defer rec.Close()

	var qid uint64
	exec := func(src string) (hits, marked int) {
		tmpl, params, err := fe.Compile(src)
		if err != nil {
			panic(fmt.Sprintf("rw: compile %q: %v", src, err))
		}
		qid++
		ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: qid}
		rec.BeginQuery(qid, tmpl.ID)
		err = mal.Run(ctx, tmpl, params...)
		rec.EndQuery(qid)
		if err != nil {
			panic(fmt.Sprintf("rw: %q: %v", src, err))
		}
		return ctx.Stats.HitsNonBind, ctx.Stats.MarkedNonBind
	}

	for _, s := range stmts {
		exec(s)
	}

	t := db.Cat.Table(sky.Schema, "photoobj")
	rng := rand.New(rand.NewSource(seed))
	nextObjid := int64(0x0500000000000000) + int64(db.Objects) + seed*1_000_000
	var appended []bat.Oid

	res := RWResult{Mode: mode}
	var lat trace.Histogram
	start := time.Now()
	for i := 0; i < n; i++ {
		if rng.Float64() < writeFrac {
			res.Writes++
			if len(appended) >= 8 && rng.Intn(3) == 0 {
				// Delete a couple of previously appended rows so both
				// delta directions (and their interleavings) occur.
				t.Delete(appended[:2])
				appended = appended[2:]
			} else {
				rows := make([]catalog.Row, 4)
				for j := range rows {
					rows[j] = rwRow(t, rng, nextObjid)
					nextObjid++
				}
				first := t.Append(rows)
				for j := range rows {
					appended = append(appended, first+bat.Oid(j))
				}
			}
			continue
		}
		res.Reads++
		q0 := time.Now()
		h, m := exec(stmts[res.Reads%len(stmts)])
		lat.Observe(time.Since(q0))
		res.Hits += h
		res.Marked += m
	}
	res.Wall = time.Since(start)
	res.P50, res.P95, res.P99 = lat.Quantile(0.50), lat.Quantile(0.95), lat.Quantile(0.99)
	if res.Wall > 0 {
		res.QPS = float64(res.Reads+res.Writes) / res.Wall.Seconds()
	}

	st := rec.Snapshot()
	res.Invalidated = st.Invalidated
	res.Maintained = st.Maintained
	res.Fallback = st.MaintainFallback
	res.DeltaRows = st.DeltaRows
	res.LockWaits = st.WriterLockWaits + st.ShardLockWaits
	res.LockWait = st.WriterLockWait + st.ShardLockWait
	return res
}

// PrintRW renders the per-mode comparison.
func PrintRW(w io.Writer, rows []RWResult) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Mode\tReads\tWrites\tExactHits\tPotential\tHitRate\tQPS\tInvalidated\tMaintained\tFallback\tDeltaRows")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%.1f%%\t%.0f\t%d\t%d\t%d\t%d\n",
			r.Mode, r.Reads, r.Writes, r.Hits, r.Marked,
			100*r.ExactHitRate(), r.QPS,
			r.Invalidated, r.Maintained, r.Fallback, r.DeltaRows)
	}
	tw.Flush()
}
