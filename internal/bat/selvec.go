package bat

// SelectionVector is a list of positional indices into a BAT, the
// intermediate currency of fused filter chains: each conjunct refines
// the positions of the previous one instead of materialising a BAT per
// step. Positions are int32 — vectors are bounded well below 2^31 rows
// and halving the index width keeps refinement loops in cache.
type SelectionVector []int32

// NewFullSel returns the identity selection 0..n-1.
func NewFullSel(n int) SelectionVector {
	s := make(SelectionVector, n)
	for i := range s {
		s[i] = int32(i)
	}
	return s
}

// GatherSel materialises the rows of b at the selected positions, in
// order. It is Gather for int32 positions, with the head-gather loops
// monomorphized per head representation.
func GatherSel(b *BAT, sel SelectionVector) *BAT {
	headOut := make([]Oid, len(sel))
	switch h := b.Head.(type) {
	case *Oids:
		for i, p := range sel {
			headOut[i] = h.V[p]
		}
	case *DenseOids:
		for i, p := range sel {
			headOut[i] = h.Start + Oid(p)
		}
	default:
		panic("bat: GatherSel on non-oid head")
	}
	return New(NewOids(headOut), GatherVectorSel(b.Tail, sel))
}

// GatherVectorSel materialises the elements of vec at the selected
// positions, in order.
func GatherVectorSel(vec Vector, sel SelectionVector) Vector {
	switch t := vec.(type) {
	case *Ints:
		v := make([]int64, len(sel))
		for i, p := range sel {
			v[i] = t.V[p]
		}
		return NewInts(v)
	case *Floats:
		v := make([]float64, len(sel))
		for i, p := range sel {
			v[i] = t.V[p]
		}
		return NewFloats(v)
	case *Strings:
		v := make([]string, len(sel))
		for i, p := range sel {
			v[i] = t.V[p]
		}
		return NewStrings(v)
	case *Dates:
		v := make([]Date, len(sel))
		for i, p := range sel {
			v[i] = t.V[p]
		}
		return NewDates(v)
	case *Bools:
		v := make([]bool, len(sel))
		for i, p := range sel {
			v[i] = t.V[p]
		}
		return NewBools(v)
	case *Oids:
		v := make([]Oid, len(sel))
		for i, p := range sel {
			v[i] = t.V[p]
		}
		return NewOids(v)
	case *DenseOids:
		v := make([]Oid, len(sel))
		for i, p := range sel {
			v[i] = t.Start + Oid(p)
		}
		return NewOids(v)
	default:
		panic("bat: GatherVectorSel of unknown vector type")
	}
}

// GatherOidsSel materialises the oids of an oid-kinded vector at the
// selected positions. Scatter-style helper for head construction.
func GatherOidsSel(v Vector, sel SelectionVector) []Oid {
	out := make([]Oid, len(sel))
	switch o := v.(type) {
	case *Oids:
		for i, p := range sel {
			out[i] = o.V[p]
		}
	case *DenseOids:
		for i, p := range sel {
			out[i] = o.Start + Oid(p)
		}
	default:
		panic("bat: GatherOidsSel on non-oid vector")
	}
	return out
}
