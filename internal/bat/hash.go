package bat

// HashIndex is a hash structure over a BAT's tail values supporting
// fast key lookup, used by hash joins and semijoins. MonetDB builds
// equivalent structures lazily on persistent BATs; we build them on
// demand and let callers cache them. Since the raw-speed kernel pass
// it is a thin wrapper over the typed chained Table (table.go); the
// Lookup* methods materialise position lists for compatibility, while
// hot join loops iterate First/Next on the typed table directly.
type HashIndex struct {
	kind Kind
	ints *Table[int64]
	oids *Table[Oid]
	strs *Table[string]
	dats *Table[Date]
	flts *Table[float64]
}

// BuildHashOnTail indexes the tail values of b, mapping value -> list
// of positional indices (ascending).
func BuildHashOnTail(b *BAT) *HashIndex {
	h := &HashIndex{kind: b.Tail.Kind()}
	switch t := b.Tail.(type) {
	case *Ints:
		h.ints = BuildInts(t.V)
	case *Oids:
		h.oids = BuildOids(t.V)
	case *DenseOids:
		h.oids = BuildOids(MaterialiseOids(t))
	case *Strings:
		h.strs = BuildStrings(t.V)
	case *Dates:
		h.dats = BuildDates(t.V)
	case *Floats:
		h.flts = BuildFloats(t.V)
	default:
		panic("bat: hash index over unsupported tail type")
	}
	return h
}

// collect materialises the ascending position list for key k, nil when
// the key is absent (matching the old map lookup contract).
func collect[K comparable](t *Table[K], k K) []int {
	n := t.Count(k)
	if n == 0 {
		return nil
	}
	out := make([]int, 0, n)
	for p := t.First(k); p >= 0; p = t.Next(p, k) {
		out = append(out, int(p))
	}
	return out
}

// LookupOid returns the positions whose indexed value equals v.
func (h *HashIndex) LookupOid(v Oid) []int { return collect(h.oids, v) }

// LookupInt returns the positions whose indexed value equals v.
func (h *HashIndex) LookupInt(v int64) []int { return collect(h.ints, v) }

// LookupStr returns the positions whose indexed value equals v.
func (h *HashIndex) LookupStr(v string) []int { return collect(h.strs, v) }

// LookupDate returns the positions whose indexed value equals v.
func (h *HashIndex) LookupDate(v Date) []int { return collect(h.dats, v) }

// LookupFloat returns the positions whose indexed value equals v.
func (h *HashIndex) LookupFloat(v float64) []int { return collect(h.flts, v) }

// HeadTable indexes the head oids of b as a typed chained table; chain
// walks enumerate positions in ascending order.
func HeadTable(b *BAT) *Table[Oid] {
	return BuildOids(MaterialiseOids(b.Head))
}

// HeadSet returns the set of head oids of b.
func HeadSet(b *BAT) map[Oid]struct{} {
	s := make(map[Oid]struct{}, b.Len())
	switch hd := b.Head.(type) {
	case *Oids:
		for _, v := range hd.V {
			s[v] = struct{}{}
		}
	case *DenseOids:
		for i := 0; i < hd.N; i++ {
			s[hd.At(i)] = struct{}{}
		}
	default:
		panic("bat: head set over non-oid head")
	}
	return s
}

// TailOidSet returns the set of tail oids of an oid-tailed BAT.
func TailOidSet(b *BAT) map[Oid]struct{} {
	s := make(map[Oid]struct{}, b.Len())
	switch t := b.Tail.(type) {
	case *Oids:
		for _, v := range t.V {
			s[v] = struct{}{}
		}
	case *DenseOids:
		for i := 0; i < t.N; i++ {
			s[t.At(i)] = struct{}{}
		}
	default:
		panic("bat: tail oid set over non-oid tail")
	}
	return s
}
