package bat

// HashIndex is a hash structure over a BAT's tail values supporting
// fast key lookup, used by hash joins and semijoins. MonetDB builds
// equivalent structures lazily on persistent BATs; we build them on
// demand and let callers cache them.
type HashIndex struct {
	kind Kind
	ints map[int64][]int
	oids map[Oid][]int
	strs map[string][]int
	dats map[Date][]int
	flts map[float64][]int
}

// BuildHashOnTail indexes the tail values of b, mapping value -> list
// of positional indices.
func BuildHashOnTail(b *BAT) *HashIndex {
	h := &HashIndex{kind: b.Tail.Kind()}
	n := b.Len()
	switch t := b.Tail.(type) {
	case *Ints:
		h.ints = make(map[int64][]int, n)
		for i, v := range t.V {
			h.ints[v] = append(h.ints[v], i)
		}
	case *Oids:
		h.oids = make(map[Oid][]int, n)
		for i, v := range t.V {
			h.oids[v] = append(h.oids[v], i)
		}
	case *DenseOids:
		h.oids = make(map[Oid][]int, n)
		for i := 0; i < t.N; i++ {
			h.oids[t.At(i)] = append(h.oids[t.At(i)], i)
		}
	case *Strings:
		h.strs = make(map[string][]int, n)
		for i, v := range t.V {
			h.strs[v] = append(h.strs[v], i)
		}
	case *Dates:
		h.dats = make(map[Date][]int, n)
		for i, v := range t.V {
			h.dats[v] = append(h.dats[v], i)
		}
	case *Floats:
		h.flts = make(map[float64][]int, n)
		for i, v := range t.V {
			h.flts[v] = append(h.flts[v], i)
		}
	default:
		panic("bat: hash index over unsupported tail type")
	}
	return h
}

// LookupOid returns the positions whose indexed value equals v.
func (h *HashIndex) LookupOid(v Oid) []int { return h.oids[v] }

// LookupInt returns the positions whose indexed value equals v.
func (h *HashIndex) LookupInt(v int64) []int { return h.ints[v] }

// LookupStr returns the positions whose indexed value equals v.
func (h *HashIndex) LookupStr(v string) []int { return h.strs[v] }

// LookupDate returns the positions whose indexed value equals v.
func (h *HashIndex) LookupDate(v Date) []int { return h.dats[v] }

// LookupFloat returns the positions whose indexed value equals v.
func (h *HashIndex) LookupFloat(v float64) []int { return h.flts[v] }

// BuildHashOnHead indexes the head oids of b, mapping oid -> positions.
func BuildHashOnHead(b *BAT) map[Oid][]int {
	n := b.Len()
	m := make(map[Oid][]int, n)
	switch hd := b.Head.(type) {
	case *Oids:
		for i, v := range hd.V {
			m[v] = append(m[v], i)
		}
	case *DenseOids:
		for i := 0; i < hd.N; i++ {
			m[hd.At(i)] = append(m[hd.At(i)], i)
		}
	default:
		panic("bat: head hash over non-oid head")
	}
	return m
}

// HeadSet returns the set of head oids of b.
func HeadSet(b *BAT) map[Oid]struct{} {
	s := make(map[Oid]struct{}, b.Len())
	switch hd := b.Head.(type) {
	case *Oids:
		for _, v := range hd.V {
			s[v] = struct{}{}
		}
	case *DenseOids:
		for i := 0; i < hd.N; i++ {
			s[hd.At(i)] = struct{}{}
		}
	default:
		panic("bat: head set over non-oid head")
	}
	return s
}

// TailOidSet returns the set of tail oids of an oid-tailed BAT.
func TailOidSet(b *BAT) map[Oid]struct{} {
	s := make(map[Oid]struct{}, b.Len())
	switch t := b.Tail.(type) {
	case *Oids:
		for _, v := range t.V {
			s[v] = struct{}{}
		}
	case *DenseOids:
		for i := 0; i < t.N; i++ {
			s[t.At(i)] = struct{}{}
		}
	default:
		panic("bat: tail oid set over non-oid tail")
	}
	return s
}
