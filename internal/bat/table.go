package bat

import "math"

// This file implements the typed hash table behind hash joins,
// semijoins, grouping and deduplication: an open-addressing bucket
// array over the typed key slice plus an arena-backed chain array,
// replacing the seed's map[K][]int (which allocated a slice header per
// distinct key and boxed every probe through runtime map internals).
//
// Layout: buckets is a power-of-two array of entry indices (-1 empty);
// next chains entries that share a bucket. Both arrays are preallocated
// from the build-side cardinality, so building is two allocations total
// and probing touches only flat int32 arrays. Keys stay in the caller's
// typed slice — the table stores positions, never copies values.
//
// Chains are built by walking the key slice in REVERSE index order, so
// First/Next enumerate matching positions in ascending order — the
// exact order the seed's append-built map values had, which join result
// order (and therefore bit-identical replay) depends on.

// Table is a chained hash index over a typed key slice. K is one of
// the engine's base column types; hash is fixed at build time.
type Table[K comparable] struct {
	keys    []K
	buckets []int32
	next    []int32
	mask    uint64
	hash    func(K) uint64
}

// NewTable indexes keys. The keys slice is retained (not copied); it
// must not be mutated while the table is in use.
func NewTable[K comparable](keys []K, hash func(K) uint64) *Table[K] {
	n := len(keys)
	nb := bucketCount(n)
	t := &Table[K]{
		keys:    keys,
		buckets: make([]int32, nb),
		next:    make([]int32, n),
		mask:    uint64(nb - 1),
		hash:    hash,
	}
	for i := range t.buckets {
		t.buckets[i] = -1
	}
	for i := n - 1; i >= 0; i-- {
		b := hash(keys[i]) & t.mask
		t.next[i] = t.buckets[b]
		t.buckets[b] = int32(i)
	}
	return t
}

// bucketCount returns the bucket array size for n keys: the smallest
// power of two >= 2n (load factor <= 0.5), at least 8.
func bucketCount(n int) int {
	nb := 8
	for nb < 2*n {
		nb <<= 1
	}
	return nb
}

// Len returns the number of indexed positions.
func (t *Table[K]) Len() int { return len(t.next) }

// First returns the smallest position whose key equals k, or -1.
func (t *Table[K]) First(k K) int32 {
	for p := t.buckets[t.hash(k)&t.mask]; p >= 0; p = t.next[p] {
		if t.keys[p] == k {
			return p
		}
	}
	return -1
}

// Next returns the next position after p whose key equals k, or -1.
// p must be a position previously returned by First or Next for k.
func (t *Table[K]) Next(p int32, k K) int32 {
	for p = t.next[p]; p >= 0; p = t.next[p] {
		if t.keys[p] == k {
			return p
		}
	}
	return -1
}

// Has reports whether any position holds key k.
func (t *Table[K]) Has(k K) bool { return t.First(k) >= 0 }

// Count returns the number of positions whose key equals k.
func (t *Table[K]) Count(k K) int {
	n := 0
	for p := t.First(k); p >= 0; p = t.Next(p, k) {
		n++
	}
	return n
}

// --- hash functions ------------------------------------------------------
//
// Integers use a splitmix64-style finalizer (full avalanche, two
// multiplies); floats hash their IEEE bits, so NaN keys never match on
// probe (comparison fails), the same observable semantics Go maps give
// them; strings use FNV-1a, deterministic across processes so spill
// replays rebuild identical tables.

func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// HashInt hashes an int64 key.
func HashInt(v int64) uint64 { return mix64(uint64(v)) }

// HashOid hashes an oid key.
func HashOid(v Oid) uint64 { return mix64(uint64(v)) }

// HashDate hashes a date key.
func HashDate(v Date) uint64 { return mix64(uint64(uint32(v))) }

// HashFloat hashes a float64 key by IEEE-754 bits.
func HashFloat(v float64) uint64 { return mix64(math.Float64bits(v)) }

// HashBool hashes a bool key.
func HashBool(v bool) uint64 {
	if v {
		return mix64(1)
	}
	return mix64(0)
}

// HashStr hashes a string key (FNV-1a, finalized).
func HashStr(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return mix64(h)
}

// Typed constructors for the base kinds.

// BuildInts indexes an int64 slice.
func BuildInts(keys []int64) *Table[int64] { return NewTable(keys, HashInt) }

// BuildOids indexes an oid slice.
func BuildOids(keys []Oid) *Table[Oid] { return NewTable(keys, HashOid) }

// BuildDates indexes a date slice.
func BuildDates(keys []Date) *Table[Date] { return NewTable(keys, HashDate) }

// BuildFloats indexes a float64 slice.
func BuildFloats(keys []float64) *Table[float64] { return NewTable(keys, HashFloat) }

// BuildStrings indexes a string slice.
func BuildStrings(keys []string) *Table[string] { return NewTable(keys, HashStr) }
