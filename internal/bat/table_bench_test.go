package bat

import (
	"fmt"
	"math/rand"
	"testing"
)

// Benchmarks for the typed chained hash table backing joins, semijoins
// and grouping. Sizes span cache-resident to bandwidth-bound so the
// benchstat CI artifact shows both regimes.

var tableSizes = []int{10_000, 100_000, 1_000_000}

func benchKeys(n int) []Oid {
	rng := rand.New(rand.NewSource(21))
	keys := make([]Oid, n)
	for i := range keys {
		keys[i] = Oid(rng.Intn(n))
	}
	return keys
}

func BenchmarkTableBuild(b *testing.B) {
	for _, n := range tableSizes {
		keys := benchKeys(n)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				BuildOids(keys)
			}
		})
	}
}

func BenchmarkTableProbe(b *testing.B) {
	for _, n := range tableSizes {
		keys := benchKeys(n)
		t := BuildOids(keys)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				var hits int
				for _, k := range keys {
					if t.First(k) >= 0 {
						hits++
					}
				}
				if hits == 0 {
					b.Fatal("no probe hits")
				}
			}
		})
	}
}
