package bat

import (
	"fmt"
	"math"
)

// Oid is a row object identifier.
type Oid uint64

// NilOid is the sentinel for a missing oid.
const NilOid = Oid(math.MaxUint64)

// Date is a day count since 1970-01-01. The TPC-H generator and the
// date arithmetic in query templates use this representation.
type Date int32

// Nil sentinels per base type, MonetDB style.
const (
	NilInt   = int64(math.MinInt64)
	NilDate  = Date(math.MinInt32)
	NilOidV  = NilOid
	nilStrRn = '\x00'
)

// NilStr is the sentinel for a missing string value.
const NilStr = "\x00"

// NilFloat reports a missing float value.
func NilFloat() float64 { return math.NaN() }

// IsNilFloat reports whether f is the float nil sentinel.
func IsNilFloat(f float64) bool { return math.IsNaN(f) }

// Kind enumerates the base column types supported by the engine.
type Kind uint8

// Base type kinds.
const (
	KOid Kind = iota
	KInt
	KFloat
	KStr
	KDate
	KBool
)

// String returns the MAL-style type name.
func (k Kind) String() string {
	switch k {
	case KOid:
		return ":oid"
	case KInt:
		return ":int"
	case KFloat:
		return ":dbl"
	case KStr:
		return ":str"
	case KDate:
		return ":date"
	case KBool:
		return ":bit"
	}
	return fmt.Sprintf(":kind(%d)", uint8(k))
}

// ElemSize returns the in-memory size in bytes of one element of the
// kind, used for recycle pool memory accounting. Strings are accounted
// by actual length at vector level; this returns the header size.
func (k Kind) ElemSize() int64 {
	switch k {
	case KOid, KInt, KFloat:
		return 8
	case KDate:
		return 4
	case KBool:
		return 1
	case KStr:
		return 16 // string header; payload added separately
	}
	return 8
}

// Vector is a typed column of values. Implementations share underlying
// storage when sliced, mirroring MonetDB's BAT views.
type Vector interface {
	// Kind returns the base type of the vector.
	Kind() Kind
	// Len returns the number of elements.
	Len() int
	// ByteSize returns the memory attributed to this vector. Views over
	// shared storage report only their administrative overhead.
	ByteSize() int64
	// Slice returns a view of elements [i, j). The view shares storage.
	Slice(i, j int) Vector
	// Get returns the element at index i boxed as an any. Intended for
	// tests, debugging and the generic fallback paths; hot operator
	// paths type-switch on the concrete vector types instead.
	Get(i int) any
}

// viewOverhead is the administrative cost we attribute to a vector view
// that shares storage with another vector (slice headers, bookkeeping).
const viewOverhead = int64(48)

// Oids is a materialised oid vector.
type Oids struct {
	V    []Oid
	view bool
}

// NewOids wraps a slice of oids as a vector.
func NewOids(v []Oid) *Oids { return &Oids{V: v} }

// Kind implements Vector.
func (o *Oids) Kind() Kind { return KOid }

// Len implements Vector.
func (o *Oids) Len() int { return len(o.V) }

// ByteSize implements Vector.
func (o *Oids) ByteSize() int64 {
	if o.view {
		return viewOverhead
	}
	return int64(len(o.V)) * 8
}

// Slice implements Vector.
func (o *Oids) Slice(i, j int) Vector { return &Oids{V: o.V[i:j], view: true} }

// Get implements Vector.
func (o *Oids) Get(i int) any { return o.V[i] }

// DenseOids is a virtual oid vector holding the dense sequence
// Start, Start+1, ..., Start+N-1 without materialising it. It models
// MonetDB's void columns.
type DenseOids struct {
	Start Oid
	N     int
}

// NewDense returns a dense oid vector of n elements starting at start.
func NewDense(start Oid, n int) *DenseOids { return &DenseOids{Start: start, N: n} }

// Kind implements Vector.
func (d *DenseOids) Kind() Kind { return KOid }

// Len implements Vector.
func (d *DenseOids) Len() int { return d.N }

// ByteSize implements Vector. Dense sequences cost only their descriptor.
func (d *DenseOids) ByteSize() int64 { return 16 }

// Slice implements Vector.
func (d *DenseOids) Slice(i, j int) Vector {
	return &DenseOids{Start: d.Start + Oid(i), N: j - i}
}

// Get implements Vector.
func (d *DenseOids) Get(i int) any { return d.Start + Oid(i) }

// At returns the oid at index i.
func (d *DenseOids) At(i int) Oid { return d.Start + Oid(i) }

// Ints is an int64 vector.
type Ints struct {
	V    []int64
	view bool
}

// NewInts wraps a slice of int64 as a vector.
func NewInts(v []int64) *Ints { return &Ints{V: v} }

// Kind implements Vector.
func (x *Ints) Kind() Kind { return KInt }

// Len implements Vector.
func (x *Ints) Len() int { return len(x.V) }

// ByteSize implements Vector.
func (x *Ints) ByteSize() int64 {
	if x.view {
		return viewOverhead
	}
	return int64(len(x.V)) * 8
}

// Slice implements Vector.
func (x *Ints) Slice(i, j int) Vector { return &Ints{V: x.V[i:j], view: true} }

// Get implements Vector.
func (x *Ints) Get(i int) any { return x.V[i] }

// Floats is a float64 vector.
type Floats struct {
	V    []float64
	view bool
}

// NewFloats wraps a slice of float64 as a vector.
func NewFloats(v []float64) *Floats { return &Floats{V: v} }

// Kind implements Vector.
func (x *Floats) Kind() Kind { return KFloat }

// Len implements Vector.
func (x *Floats) Len() int { return len(x.V) }

// ByteSize implements Vector.
func (x *Floats) ByteSize() int64 {
	if x.view {
		return viewOverhead
	}
	return int64(len(x.V)) * 8
}

// Slice implements Vector.
func (x *Floats) Slice(i, j int) Vector { return &Floats{V: x.V[i:j], view: true} }

// Get implements Vector.
func (x *Floats) Get(i int) any { return x.V[i] }

// Strings is a string vector.
type Strings struct {
	V    []string
	view bool
}

// NewStrings wraps a slice of strings as a vector.
func NewStrings(v []string) *Strings { return &Strings{V: v} }

// Kind implements Vector.
func (x *Strings) Kind() Kind { return KStr }

// Len implements Vector.
func (x *Strings) Len() int { return len(x.V) }

// ByteSize implements Vector.
func (x *Strings) ByteSize() int64 {
	if x.view {
		return viewOverhead
	}
	var sz int64
	for _, s := range x.V {
		sz += 16 + int64(len(s))
	}
	return sz
}

// Slice implements Vector.
func (x *Strings) Slice(i, j int) Vector { return &Strings{V: x.V[i:j], view: true} }

// Get implements Vector.
func (x *Strings) Get(i int) any { return x.V[i] }

// Dates is a Date vector.
type Dates struct {
	V    []Date
	view bool
}

// NewDates wraps a slice of dates as a vector.
func NewDates(v []Date) *Dates { return &Dates{V: v} }

// Kind implements Vector.
func (x *Dates) Kind() Kind { return KDate }

// Len implements Vector.
func (x *Dates) Len() int { return len(x.V) }

// ByteSize implements Vector.
func (x *Dates) ByteSize() int64 {
	if x.view {
		return viewOverhead
	}
	return int64(len(x.V)) * 4
}

// Slice implements Vector.
func (x *Dates) Slice(i, j int) Vector { return &Dates{V: x.V[i:j], view: true} }

// Get implements Vector.
func (x *Dates) Get(i int) any { return x.V[i] }

// Bools is a bool vector.
type Bools struct {
	V    []bool
	view bool
}

// NewBools wraps a slice of bools as a vector.
func NewBools(v []bool) *Bools { return &Bools{V: v} }

// Kind implements Vector.
func (x *Bools) Kind() Kind { return KBool }

// Len implements Vector.
func (x *Bools) Len() int { return len(x.V) }

// ByteSize implements Vector.
func (x *Bools) ByteSize() int64 {
	if x.view {
		return viewOverhead
	}
	return int64(len(x.V))
}

// Slice implements Vector.
func (x *Bools) Slice(i, j int) Vector { return &Bools{V: x.V[i:j], view: true} }

// Get implements Vector.
func (x *Bools) Get(i int) any { return x.V[i] }

// EmptyVector returns a zero-length vector of the given kind.
func EmptyVector(k Kind) Vector {
	switch k {
	case KOid:
		return &Oids{}
	case KInt:
		return &Ints{}
	case KFloat:
		return &Floats{}
	case KStr:
		return &Strings{}
	case KDate:
		return &Dates{}
	case KBool:
		return &Bools{}
	}
	panic(fmt.Sprintf("bat: empty vector of unknown kind %d", k))
}

// FromAnys materialises boxed values of one kind into a vector. The
// catalog's commit hook uses it to encode in-place update values for
// the write-ahead log; elements must already have the kind's Go type.
func FromAnys(k Kind, vals []any) Vector {
	switch k {
	case KOid:
		v := make([]Oid, len(vals))
		for i, x := range vals {
			v[i] = x.(Oid)
		}
		return NewOids(v)
	case KInt:
		v := make([]int64, len(vals))
		for i, x := range vals {
			v[i] = x.(int64)
		}
		return NewInts(v)
	case KFloat:
		v := make([]float64, len(vals))
		for i, x := range vals {
			v[i] = x.(float64)
		}
		return NewFloats(v)
	case KStr:
		v := make([]string, len(vals))
		for i, x := range vals {
			v[i] = x.(string)
		}
		return NewStrings(v)
	case KDate:
		v := make([]Date, len(vals))
		for i, x := range vals {
			v[i] = x.(Date)
		}
		return NewDates(v)
	case KBool:
		v := make([]bool, len(vals))
		for i, x := range vals {
			v[i] = x.(bool)
		}
		return NewBools(v)
	}
	panic(fmt.Sprintf("bat: FromAnys of unknown kind %d", k))
}

// AppendVectors concatenates two vectors of the same kind into a newly
// materialised vector. It is used by delta propagation and combined
// subsumption merges.
func AppendVectors(a, b Vector) Vector {
	if a.Kind() != b.Kind() {
		panic(fmt.Sprintf("bat: append of mismatched kinds %v and %v", a.Kind(), b.Kind()))
	}
	switch av := a.(type) {
	case *Oids:
		out := make([]Oid, 0, a.Len()+b.Len())
		out = append(out, av.V...)
		out = appendOids(out, b)
		return NewOids(out)
	case *DenseOids:
		out := make([]Oid, 0, a.Len()+b.Len())
		for i := 0; i < av.N; i++ {
			out = append(out, av.At(i))
		}
		out = appendOids(out, b)
		return NewOids(out)
	case *Ints:
		bv := b.(*Ints)
		out := make([]int64, 0, a.Len()+b.Len())
		out = append(out, av.V...)
		out = append(out, bv.V...)
		return NewInts(out)
	case *Floats:
		bv := b.(*Floats)
		out := make([]float64, 0, a.Len()+b.Len())
		out = append(out, av.V...)
		out = append(out, bv.V...)
		return NewFloats(out)
	case *Strings:
		bv := b.(*Strings)
		out := make([]string, 0, a.Len()+b.Len())
		out = append(out, av.V...)
		out = append(out, bv.V...)
		return NewStrings(out)
	case *Dates:
		bv := b.(*Dates)
		out := make([]Date, 0, a.Len()+b.Len())
		out = append(out, av.V...)
		out = append(out, bv.V...)
		return NewDates(out)
	case *Bools:
		bv := b.(*Bools)
		out := make([]bool, 0, a.Len()+b.Len())
		out = append(out, av.V...)
		out = append(out, bv.V...)
		return NewBools(out)
	}
	panic("bat: append of unknown vector type")
}

func appendOids(dst []Oid, b Vector) []Oid {
	switch bv := b.(type) {
	case *Oids:
		return append(dst, bv.V...)
	case *DenseOids:
		for i := 0; i < bv.N; i++ {
			dst = append(dst, bv.At(i))
		}
		return dst
	}
	panic("bat: appendOids of non-oid vector")
}

// OidAt extracts the oid at index i from an oid-kinded vector.
func OidAt(v Vector, i int) Oid {
	switch o := v.(type) {
	case *Oids:
		return o.V[i]
	case *DenseOids:
		return o.At(i)
	}
	panic("bat: OidAt on non-oid vector")
}

// MaterialiseOids converts any oid-kinded vector into a plain []Oid.
func MaterialiseOids(v Vector) []Oid {
	switch o := v.(type) {
	case *Oids:
		return o.V
	case *DenseOids:
		out := make([]Oid, o.N)
		for i := range out {
			out[i] = o.At(i)
		}
		return out
	}
	panic("bat: MaterialiseOids on non-oid vector")
}
