package bat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDenseOids(t *testing.T) {
	d := NewDense(10, 5)
	if d.Len() != 5 {
		t.Fatalf("len = %d, want 5", d.Len())
	}
	if d.At(0) != 10 || d.At(4) != 14 {
		t.Fatalf("At out of sequence: %d %d", d.At(0), d.At(4))
	}
	s := d.Slice(1, 4).(*DenseOids)
	if s.Start != 11 || s.N != 3 {
		t.Fatalf("slice = %+v, want start=11 n=3", s)
	}
	if d.ByteSize() != 16 {
		t.Fatalf("dense ByteSize = %d, want descriptor-only 16", d.ByteSize())
	}
}

func TestVectorSliceSharesStorage(t *testing.T) {
	v := NewInts([]int64{1, 2, 3, 4})
	s := v.Slice(1, 3).(*Ints)
	s.V[0] = 99
	if v.V[1] != 99 {
		t.Fatal("slice does not share storage")
	}
	if s.ByteSize() != viewOverhead {
		t.Fatalf("view ByteSize = %d, want overhead %d", s.ByteSize(), viewOverhead)
	}
}

func TestStringsByteSize(t *testing.T) {
	v := NewStrings([]string{"ab", "cde"})
	want := int64(16+2) + int64(16+3)
	if v.ByteSize() != want {
		t.Fatalf("ByteSize = %d, want %d", v.ByteSize(), want)
	}
}

func TestBATViewsZeroCost(t *testing.T) {
	b := NewDenseHead(NewInts([]int64{5, 6, 7}))
	r := b.Reverse()
	if r.Head.Kind() != KInt || r.Tail.Kind() != KOid {
		t.Fatal("reverse did not swap columns")
	}
	m := b.Mirror()
	if m.Tail.Kind() != KOid || m.Tail.Get(2) != Oid(2) {
		t.Fatalf("mirror tail = %v", m.Tail.Get(2))
	}
	mk := b.MarkT(100)
	if mk.Tail.(*DenseOids).Start != 100 || mk.Len() != 3 {
		t.Fatal("markT wrong")
	}
	// Views over the same base must attribute near-zero extra memory.
	if r.ByteSize() > b.ByteSize() {
		t.Fatalf("reverse view costs %d > base %d", r.ByteSize(), b.ByteSize())
	}
}

func TestGatherAndSortByHead(t *testing.T) {
	b := New(NewOids([]Oid{3, 1, 2}), NewStrings([]string{"c", "a", "b"}))
	s := b.SortByHead()
	if !s.HeadSorted {
		t.Fatal("SortByHead did not set HeadSorted")
	}
	for i, want := range []string{"a", "b", "c"} {
		if s.Tail.Get(i) != want {
			t.Fatalf("row %d tail = %v, want %s", i, s.Tail.Get(i), want)
		}
	}
	if OidAt(s.Head, 0) != 1 || OidAt(s.Head, 2) != 3 {
		t.Fatal("head not sorted")
	}
	// Sorting an already sorted BAT returns the receiver.
	if s.SortByHead() != s {
		t.Fatal("SortByHead of sorted BAT should be identity")
	}
}

func TestAppend(t *testing.T) {
	a := New(NewOids([]Oid{0, 1}), NewInts([]int64{10, 11}))
	a.HeadSorted = true
	b := New(NewOids([]Oid{2}), NewInts([]int64{12}))
	b.HeadSorted = true
	c := Append(a, b)
	if c.Len() != 3 || !c.HeadSorted {
		t.Fatalf("append len=%d sorted=%v", c.Len(), c.HeadSorted)
	}
	if Append(a, New(NewOids(nil), NewInts(nil))) != a {
		t.Fatal("append with empty should be identity")
	}
}

func TestAppendVectorsDense(t *testing.T) {
	a := NewDense(0, 3)
	b := NewOids([]Oid{9})
	out := AppendVectors(a, b).(*Oids)
	want := []Oid{0, 1, 2, 9}
	for i, w := range want {
		if out.V[i] != w {
			t.Fatalf("out[%d]=%d want %d", i, out.V[i], w)
		}
	}
}

func TestHashIndex(t *testing.T) {
	b := NewDenseHead(NewInts([]int64{7, 8, 7}))
	h := BuildHashOnTail(b)
	if got := h.LookupInt(7); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("LookupInt(7) = %v", got)
	}
	if got := h.LookupInt(99); got != nil {
		t.Fatalf("LookupInt(99) = %v, want nil", got)
	}
}

func TestHeadSetAndTailOidSet(t *testing.T) {
	b := New(NewOids([]Oid{4, 5, 4}), NewDense(20, 3))
	hs := HeadSet(b)
	if len(hs) != 2 {
		t.Fatalf("head set size = %d", len(hs))
	}
	ts := TailOidSet(b)
	if _, ok := ts[21]; !ok || len(ts) != 3 {
		t.Fatalf("tail set = %v", ts)
	}
}

func TestKindStringAndElemSize(t *testing.T) {
	cases := map[Kind]string{KOid: ":oid", KInt: ":int", KFloat: ":dbl", KStr: ":str", KDate: ":date", KBool: ":bit"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, k.String(), want)
		}
		if k.ElemSize() <= 0 {
			t.Errorf("Kind(%d).ElemSize() = %d", k, k.ElemSize())
		}
	}
}

func TestEmptyVectorAllKinds(t *testing.T) {
	for _, k := range []Kind{KOid, KInt, KFloat, KStr, KDate, KBool} {
		v := EmptyVector(k)
		if v.Len() != 0 || v.Kind() != k {
			t.Errorf("EmptyVector(%v) wrong: len=%d kind=%v", k, v.Len(), v.Kind())
		}
	}
}

// Property: SortByHead is a permutation that leaves the (head, tail)
// pairing intact.
func TestSortByHeadIsPermutation(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		size := int(n%50) + 1
		heads := make([]Oid, size)
		tails := make([]int64, size)
		pair := make(map[Oid]map[int64]int)
		for i := range heads {
			heads[i] = Oid(rng.Intn(20))
			tails[i] = int64(rng.Intn(100))
			if pair[heads[i]] == nil {
				pair[heads[i]] = map[int64]int{}
			}
			pair[heads[i]][tails[i]]++
		}
		b := New(NewOids(heads), NewInts(tails))
		s := b.SortByHead()
		if s.Len() != size {
			return false
		}
		prev := Oid(0)
		for i := 0; i < s.Len(); i++ {
			h := OidAt(s.Head, i)
			if i > 0 && h < prev {
				return false
			}
			prev = h
			tl := s.Tail.(*Ints).V[i]
			if pair[h][tl] == 0 {
				return false
			}
			pair[h][tl]--
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: Gather(b, idx) picks exactly the rows named by idx in order.
func TestGatherProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := rng.Intn(40) + 1
		tails := make([]int64, size)
		for i := range tails {
			tails[i] = rng.Int63n(1000)
		}
		b := NewDenseHead(NewInts(tails))
		k := rng.Intn(size + 1)
		idx := make([]int, k)
		for i := range idx {
			idx[i] = rng.Intn(size)
		}
		g := Gather(b, idx)
		if g.Len() != k {
			return false
		}
		for i, p := range idx {
			if OidAt(g.Head, i) != Oid(p) || g.Tail.(*Ints).V[i] != tails[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
