package bat

import (
	"fmt"
	"sort"
	"strings"
)

// BAT is a binary association table: a mapping from a head column of
// oids to a tail column of typed values, schema BAT(head:oid, tail:any).
// Relational operators consume and produce BATs; auxiliary operators
// (reverse, mirror, markT) produce views that share storage.
type BAT struct {
	// Head holds the row identifiers. It is KOid in every BAT produced
	// by the engine, and frequently a DenseOids (void) vector.
	Head Vector
	// Tail holds the values, one per head entry.
	Tail Vector

	// TailSorted records that Tail is non-decreasing, enabling
	// binary-search range selects (a cheap "bat view" select, §2.3).
	TailSorted bool
	// HeadSorted records that Head is non-decreasing. Dense heads are
	// always sorted; operators preserve head order where possible.
	HeadSorted bool

	// KeyUnique records that head values are unique.
	KeyUnique bool
}

// New constructs a BAT over the given head and tail, which must have
// equal lengths.
func New(head, tail Vector) *BAT {
	if head.Len() != tail.Len() {
		panic(fmt.Sprintf("bat: head/tail length mismatch %d != %d", head.Len(), tail.Len()))
	}
	b := &BAT{Head: head, Tail: tail}
	if _, ok := head.(*DenseOids); ok {
		b.HeadSorted = true
		b.KeyUnique = true
	}
	return b
}

// NewDenseHead constructs a BAT with a dense head 0..len(tail)-1.
func NewDenseHead(tail Vector) *BAT {
	return New(NewDense(0, tail.Len()), tail)
}

// Len returns the number of (head, tail) pairs.
func (b *BAT) Len() int { return b.Head.Len() }

// TailKind returns the base type of the tail column.
func (b *BAT) TailKind() Kind { return b.Tail.Kind() }

// ByteSize returns the memory attributed to the BAT: the sum of its
// column costs plus a fixed descriptor overhead. Views over shared
// storage contribute only their administrative cost, implementing the
// paper's observation that keeping viewpoint intermediates is cheap.
func (b *BAT) ByteSize() int64 { return b.Head.ByteSize() + b.Tail.ByteSize() + 64 }

// Reverse returns a view with head and tail swapped. Zero-cost.
func (b *BAT) Reverse() *BAT {
	return &BAT{
		Head: b.Tail, Tail: b.Head,
		TailSorted: b.HeadSorted, HeadSorted: b.TailSorted,
	}
}

// Mirror returns a view whose tail is a mirror of the head. Zero-cost.
func (b *BAT) Mirror() *BAT {
	return &BAT{Head: b.Head, Tail: b.Head, HeadSorted: b.HeadSorted, TailSorted: b.HeadSorted, KeyUnique: b.KeyUnique}
}

// MarkT returns a BAT with the same head and a fresh dense sequence of
// oids starting at base in the tail. Zero-cost (dense tails are
// virtual).
func (b *BAT) MarkT(base Oid) *BAT {
	return &BAT{Head: b.Head, Tail: NewDense(base, b.Len()), HeadSorted: b.HeadSorted, TailSorted: true, KeyUnique: b.KeyUnique}
}

// Slice returns a view of rows [i, j).
func (b *BAT) Slice(i, j int) *BAT {
	return &BAT{
		Head: b.Head.Slice(i, j), Tail: b.Tail.Slice(i, j),
		TailSorted: b.TailSorted, HeadSorted: b.HeadSorted, KeyUnique: b.KeyUnique,
	}
}

// String renders a compact description for debugging and pool dumps.
func (b *BAT) String() string {
	return fmt.Sprintf("bat[:oid,%s]#%d", b.Tail.Kind(), b.Len())
}

// Dump renders up to max rows for tests and debugging.
func (b *BAT) Dump(max int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s {", b.String())
	n := b.Len()
	if max > 0 && n > max {
		n = max
	}
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%v->%v", b.Head.Get(i), b.Tail.Get(i))
	}
	if n < b.Len() {
		sb.WriteString(", ...")
	}
	sb.WriteString("}")
	return sb.String()
}

// SortByHead returns a BAT with rows reordered so the head is
// non-decreasing. If the head is already sorted the receiver is
// returned unchanged.
func (b *BAT) SortByHead() *BAT {
	if b.HeadSorted {
		return b
	}
	idx := make([]int, b.Len())
	for i := range idx {
		idx[i] = i
	}
	heads := MaterialiseOids(b.Head)
	sort.SliceStable(idx, func(i, j int) bool { return heads[idx[i]] < heads[idx[j]] })
	out := Gather(b, idx)
	out.HeadSorted = true
	return out
}

// Gather materialises the rows of b at the given positional indices,
// in order. The result owns fresh storage.
func Gather(b *BAT, idx []int) *BAT {
	headOut := make([]Oid, len(idx))
	for i, p := range idx {
		headOut[i] = OidAt(b.Head, p)
	}
	return New(NewOids(headOut), GatherVector(b.Tail, idx))
}

// GatherVector materialises the elements of v at the given positional
// indices, in order.
func GatherVector(vec Vector, idx []int) Vector {
	switch t := vec.(type) {
	case *Ints:
		v := make([]int64, len(idx))
		for i, p := range idx {
			v[i] = t.V[p]
		}
		return NewInts(v)
	case *Floats:
		v := make([]float64, len(idx))
		for i, p := range idx {
			v[i] = t.V[p]
		}
		return NewFloats(v)
	case *Strings:
		v := make([]string, len(idx))
		for i, p := range idx {
			v[i] = t.V[p]
		}
		return NewStrings(v)
	case *Dates:
		v := make([]Date, len(idx))
		for i, p := range idx {
			v[i] = t.V[p]
		}
		return NewDates(v)
	case *Bools:
		v := make([]bool, len(idx))
		for i, p := range idx {
			v[i] = t.V[p]
		}
		return NewBools(v)
	case *Oids, *DenseOids:
		v := make([]Oid, len(idx))
		for i, p := range idx {
			v[i] = OidAt(vec, p)
		}
		return NewOids(v)
	default:
		panic("bat: gather of unknown vector type")
	}
}

// Append concatenates two BATs (used by delta propagation). The result
// owns fresh storage and inherits no sortedness guarantees except what
// can be cheaply verified.
func Append(a, b *BAT) *BAT {
	if b.Len() == 0 {
		return a
	}
	if a.Len() == 0 {
		return b
	}
	out := New(AppendVectors(a.Head, b.Head), AppendVectors(a.Tail, b.Tail))
	if a.HeadSorted && b.HeadSorted && OidAt(a.Head, a.Len()-1) <= OidAt(b.Head, 0) {
		out.HeadSorted = true
	}
	return out
}
