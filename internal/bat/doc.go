// Package bat implements Binary Association Tables (BATs), the columnar
// storage primitive of the engine, modelled after MonetDB's storage layer
// as described in Section 2 of Ivanova et al., "An Architecture for
// Recycling Intermediates in a Column-store" (TODS 2010).
//
// A BAT is a binary table mapping a head column of object identifiers
// (oids) to a tail column of values of a single base type. Heads are
// usually dense ("void" in MonetDB terms) and represented without
// materialisation. Auxiliary instructions such as reverse and mirror
// materialise only new viewpoints over shared storage, so they are
// (near) zero-cost, which is what makes keeping prefix intermediates in
// the recycle pool cheap.
package bat
