package catalog

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/bat"
)

// Catalog is the collection of tables, keyed by schema-qualified name.
//
// A single RWMutex covers the whole catalog: binds and index lookups
// take it shared, DDL/DML take it exclusively, so concurrent sessions
// may query while updates serialise against them. Update listeners are
// notified after the lock is released — they may freely read the
// catalog, and pool invalidation therefore lands momentarily after the
// commit itself (the recycler's epoch guard keeps queries that straddle
// a commit from polluting or consuming the pool inconsistently).
//
// Isolation is per *bind*, not per query: each bind snapshots its
// column consistently, but a query that binds two columns around a
// concurrent commit observes the table at two different versions —
// the storage layer is not multi-versioned. Workloads needing
// cross-column consistency within one query must not run DML
// concurrently with queries reading the same table.
type Catalog struct {
	mu        sync.RWMutex
	tables    map[string]*Table
	listeners []UpdateListener

	// commitSeq counts committed statements (DDL and DML) catalog-wide.
	// It is the durable commit epoch: the store layer snapshots it with
	// every checkpoint and stamps every WAL record with it, so replay
	// after a crash can skip records the snapshot already covers.
	commitSeq uint64
	// commitHook, when set, observes every committed statement *under
	// the catalog write lock*, immediately after the mutation became
	// visible — hook invocation order is therefore exactly commit
	// order, which is what a write-ahead log needs. The hook must be
	// fast and must not call back into the catalog.
	commitHook func(CommitRecord)
}

// CommitKind enumerates the durable statement classes a CommitRecord
// can describe.
type CommitKind uint8

// Commit record kinds.
const (
	// CommitCreate records a CreateTable.
	CommitCreate CommitKind = iota
	// CommitInsert records an Append.
	CommitInsert
	// CommitDelete records a Delete.
	CommitDelete
	// CommitUpdate records an UpdateInPlace.
	CommitUpdate
	// CommitDrop records a DropTable.
	CommitDrop
	// CommitInvalidate marks an UpdateEvent whose mutation panicked
	// partway: columns may be partially applied, so listeners must
	// invalidate everything depending on the table. It is an event
	// kind only — never written to the durability hook (keeping WAL
	// record numbering unchanged).
	CommitInvalidate
)

// CommitRecord describes one committed statement for the durability
// hook (SetCommitHook). Unlike UpdateEvent it is self-contained —
// plain names and value vectors, no *Table pointers — so it can be
// serialised and replayed against a recovered catalog.
type CommitRecord struct {
	// Seq is the catalog-wide commit sequence number of the statement,
	// assigned under the write lock.
	Seq          uint64
	Kind         CommitKind
	Schema, Name string

	// Cols holds the column definitions (CommitCreate).
	Cols []ColDef

	// Inserts maps column name to the per-column insert delta
	// (CommitInsert); FirstOid/NumRows locate the appended rows.
	Inserts  map[string]bat.Vector
	FirstOid bat.Oid
	NumRows  int

	// Deleted holds the tombstoned oids (CommitDelete).
	Deleted []bat.Oid

	// UpdCol/UpdOids/UpdVals describe an in-place column overwrite
	// (CommitUpdate).
	UpdCol  string
	UpdOids []bat.Oid
	UpdVals bat.Vector
}

// SetCommitHook installs the durability hook. The hook is called for
// every committed statement while the catalog write lock is held, so
// its invocation order equals commit order. Pass nil to detach.
func (c *Catalog) SetCommitHook(h func(CommitRecord)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commitHook = h
}

// CommitSeq returns the catalog-wide commit sequence number.
func (c *Catalog) CommitSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.commitSeq
}

// RestoreCommitSeq sets the commit sequence during recovery, before
// WAL replay re-applies the statements the last snapshot missed.
func (c *Catalog) RestoreCommitSeq(seq uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commitSeq = seq
}

// TableStamp returns the named table's identity stamp: the commit
// sequence at which it was created, plus its committed-update counter.
// The recycler's disk tier keys spilled intermediates on the pair: a
// spilled entry is only reloadable while every dependency table still
// has both the creation stamp and the version recorded at spill time —
// the creation stamp catches a dropped-and-recreated table whose
// restarted version counter would otherwise alias the old one.
func (c *Catalog) TableStamp(schema, name string) (created uint64, version int64, ok bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t := c.tables[key(schema, name)]
	if t == nil {
		return 0, 0, false
	}
	return t.created, t.Version, true
}

// UpdateListener observes committed changes to persistent tables. The
// recycler registers one to keep the recycle pool synchronised.
type UpdateListener interface {
	// OnBeforeUpdate is called before a DML statement's mutation
	// becomes visible (and outside the catalog lock). The recycler
	// marks the table as having a commit in flight, so queries running
	// or beginning between this point and OnUpdate's invalidation are
	// treated as straddling the commit and refused stale pool
	// interactions. Every OnBeforeUpdate is followed by exactly one
	// OnUpdate, OnDrop or OnAbortUpdate for the same table.
	OnBeforeUpdate(table *Table)
	// OnAbortUpdate closes an OnBeforeUpdate whose statement turned
	// out to be a no-op (nothing committed).
	OnAbortUpdate(table *Table)
	// OnUpdate is called once per committed update with the table
	// changed, the columns affected (all columns for inserts/deletes,
	// the touched ones for in-place updates), the per-column insert
	// deltas (may be nil) and the set of deleted oids (may be empty).
	OnUpdate(ev UpdateEvent)
	// OnDrop is called when a table is dropped.
	OnDrop(table *Table)
}

// UpdateEvent describes one committed DML statement.
type UpdateEvent struct {
	Table *Table
	// Kind classifies the statement: CommitInsert (Append),
	// CommitDelete (Delete), CommitUpdate (UpdateInPlace) or
	// CommitInvalidate (a mutation that panicked partway; listeners
	// must treat every dependent intermediate as unknown). Listeners
	// that propagate deltas key on it: an in-place update reports the
	// overwritten oids in Deleted, but the rows are NOT tombstoned —
	// treating it as a row deletion silently corrupts cached results.
	Kind CommitKind
	// Cols lists the affected column names.
	Cols []string
	// Inserts maps column name to the insert delta BAT (head: fresh
	// oids, tail: appended values). Nil when the statement only
	// deleted rows.
	Inserts map[string]*bat.BAT
	// Deleted holds the oids removed by the statement
	// (CommitDelete), or the oids whose values were overwritten
	// (CommitUpdate).
	Deleted []bat.Oid
}

// New creates an empty catalog.
func New() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// AddListener registers an update listener.
func (c *Catalog) AddListener(l UpdateListener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.listeners = append(c.listeners, l)
}

// RemoveListener unregisters a listener. Benchmarks that cycle many
// recycler configurations over one catalog use it so retired pools
// stop receiving (and surviving for) update notifications.
func (c *Catalog) RemoveListener(l UpdateListener) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, x := range c.listeners {
		if x == l {
			c.listeners = append(c.listeners[:i], c.listeners[i+1:]...)
			return
		}
	}
}

// listenersLocked copies the registered listeners for notification
// after the lock is released. Caller holds c.mu (read or write).
func (c *Catalog) listenersLocked() []UpdateListener {
	return append([]UpdateListener(nil), c.listeners...)
}

func key(schema, name string) string { return schema + "." + name }

// CreateTable registers a new table with the given column definitions.
func (c *Catalog) CreateTable(schema, name string, cols []ColDef) *Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &Table{
		Schema:    schema,
		Name:      name,
		catalog:   c,
		colByName: make(map[string]*Column, len(cols)),
	}
	for _, d := range cols {
		col := &Column{Table: t, Name: d.Name, KindOf: d.Kind, Data: bat.EmptyVector(d.Kind), Sorted: d.Sorted}
		t.Cols = append(t.Cols, col)
		t.colByName[d.Name] = col
	}
	c.tables[key(schema, name)] = t
	c.commitSeq++
	t.created = c.commitSeq
	if c.commitHook != nil {
		c.commitHook(CommitRecord{
			Seq: c.commitSeq, Kind: CommitCreate, Schema: schema, Name: name,
			Cols: append([]ColDef(nil), cols...),
		})
	}
	return t
}

// DropTable removes a table and notifies listeners.
func (c *Catalog) DropTable(schema, name string) {
	t := c.Table(schema, name)
	if t == nil {
		return
	}
	ls := t.preNotify()
	c.mu.Lock()
	cur, ok := c.tables[key(schema, name)]
	ok = ok && cur == t // a recreated table under the same name is not ours to drop
	if ok {
		delete(c.tables, key(schema, name))
		c.commitSeq++
		if c.commitHook != nil {
			c.commitHook(CommitRecord{Seq: c.commitSeq, Kind: CommitDrop, Schema: schema, Name: name})
		}
	}
	c.mu.Unlock()
	if !ok {
		// Lost a race with a concurrent drop (or drop+recreate).
		t.abortNotify(ls)
		return
	}
	for _, l := range ls {
		l.OnDrop(t)
	}
}

// Table returns the named table or nil.
func (c *Catalog) Table(schema, name string) *Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.tables[key(schema, name)]
}

// MustTable returns the named table or panics.
func (c *Catalog) MustTable(schema, name string) *Table {
	t := c.Table(schema, name)
	if t == nil {
		panic(fmt.Sprintf("catalog: unknown table %s.%s", schema, name))
	}
	return t
}

// Tables returns all tables in deterministic order.
func (c *Catalog) Tables() []*Table {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]*Table, len(names))
	for i, n := range names {
		out[i] = c.tables[n]
	}
	return out
}

// ColDef describes a column at table-creation time.
type ColDef struct {
	Name   string
	Kind   bat.Kind
	Sorted bool // declared sorted (e.g. dense surrogate keys)
}

// Table is a persistent relational table stored column-wise.
type Table struct {
	Schema, Name string

	// Cols holds the columns in definition order.
	Cols []*Column

	catalog   *Catalog
	colByName map[string]*Column

	nrows   int
	deleted map[bat.Oid]struct{}

	// Version counts committed updates; bind results are tagged with
	// it so staleness is detectable.
	Version int64

	// created is the catalog commit sequence at which the table was
	// created — a durable identity distinguishing a table from a later
	// re-creation under the same name (see TableStamp).
	created uint64

	keyIndexes  map[string]map[int64]bat.Oid // unique int key column -> oid
	joinIdx     map[string][]bat.Oid         // FK join indices, child row -> parent oid
	joinIdxMeta map[string]joinIdxDef        // definitions for incremental maintenance
}

// QName returns the schema-qualified table name.
func (t *Table) QName() string { return t.Schema + "." + t.Name }

// Column returns the named column or nil.
func (t *Table) Column(name string) *Column { return t.colByName[name] }

// MustColumn returns the named column or panics.
func (t *Table) MustColumn(name string) *Column {
	c := t.colByName[name]
	if c == nil {
		panic(fmt.Sprintf("catalog: unknown column %s.%s", t.QName(), name))
	}
	return c
}

// NumRows returns the number of live rows.
func (t *Table) NumRows() int {
	t.catalog.mu.RLock()
	defer t.catalog.mu.RUnlock()
	return t.nrows - len(t.deleted)
}

// HasDeletes reports whether the table carries tombstones.
func (t *Table) HasDeletes() bool {
	t.catalog.mu.RLock()
	defer t.catalog.mu.RUnlock()
	return len(t.deleted) > 0
}

// Column is one typed column of a table.
type Column struct {
	Table  *Table
	Name   string
	KindOf bat.Kind
	// Data holds the committed values; row oid i maps to Data[i].
	// Deleted rows keep their slot (tombstoned via Table.deleted).
	Data bat.Vector
	// Sorted is a declared property enabling view-based range selects.
	Sorted bool
}

// QName returns the fully qualified column name.
func (c *Column) QName() string { return c.Table.QName() + "." + c.Name }

// Bind returns a BAT over the live rows of the column, the engine's
// sql.bind. Without deletions this is a zero-copy dense-headed view;
// with tombstones the head materialises the surviving oids. The view
// snapshots the column under the shared lock, so a bind taken before a
// concurrent append keeps its consistent pre-update length.
func (c *Column) Bind() *bat.BAT {
	t := c.Table
	t.catalog.mu.RLock()
	defer t.catalog.mu.RUnlock()
	if len(t.deleted) == 0 {
		// The tail is a view over the committed column: binding
		// materialises nothing, so recycle pool accounting must not
		// charge the column's storage to the bind intermediate.
		b := bat.New(bat.NewDense(0, c.Data.Len()), c.Data.Slice(0, c.Data.Len()))
		b.TailSorted = c.Sorted
		return b
	}
	live := make([]int, 0, t.nrows-len(t.deleted))
	for i := 0; i < t.nrows; i++ {
		if _, dead := t.deleted[bat.Oid(i)]; !dead {
			live = append(live, i)
		}
	}
	heads := make([]bat.Oid, len(live))
	for i, p := range live {
		heads[i] = bat.Oid(p)
	}
	b := bat.New(bat.NewOids(heads), bat.GatherVector(c.Data, live))
	b.HeadSorted = true
	b.KeyUnique = true
	b.TailSorted = c.Sorted
	return b
}

// Row is a tuple addressed by column name, used by bulk loads and DML.
type Row map[string]any

// commitLocked finalises one DML statement under the write lock,
// bumping both the table's version and the catalog-wide commit
// sequence (the durable commit epoch).
func (t *Table) commitLocked() {
	t.Version++
	t.catalog.commitSeq++
}

// hookLocked delivers a commit record to the durability hook, under
// the write lock and after commitLocked assigned the sequence number.
func (t *Table) hookLocked(rec CommitRecord) {
	if t.catalog.commitHook == nil {
		return
	}
	rec.Seq = t.catalog.commitSeq
	rec.Schema, rec.Name = t.Schema, t.Name
	t.catalog.commitHook(rec)
}

// Append inserts rows and commits them as one update event.
// It returns the oid of the first inserted row.
func (t *Table) Append(rows []Row) bat.Oid {
	if len(rows) == 0 {
		t.catalog.mu.RLock()
		defer t.catalog.mu.RUnlock()
		return bat.Oid(t.nrows)
	}
	ls := t.preNotify()
	var ev UpdateEvent
	committed := false
	defer t.completeNotify(ls, &committed, &ev)
	// The mutation runs under a deferred unlock so a panic (e.g. a row
	// value of the wrong type) cannot leave the catalog locked forever.
	first := func() bat.Oid {
		t.catalog.mu.Lock()
		defer t.catalog.mu.Unlock()
		first := bat.Oid(t.nrows)
		inserts := make(map[string]*bat.BAT, len(t.Cols))
		logging := t.catalog.commitHook != nil
		var deltas map[string]bat.Vector
		if logging {
			deltas = make(map[string]bat.Vector, len(t.Cols))
		}
		cols := make([]string, 0, len(t.Cols))
		for _, c := range t.Cols {
			delta := buildDelta(c.KindOf, rows, c.Name)
			c.Data = bat.AppendVectors(c.Data, delta)
			db := bat.New(bat.NewDense(first, len(rows)), delta)
			inserts[c.Name] = db
			if logging {
				deltas[c.Name] = delta
			}
			cols = append(cols, c.Name)
			if c.Sorted {
				c.Sorted = stillSorted(c.Data)
			}
		}
		t.nrows += len(rows)
		t.maintainIndexesOnAppend(first, rows)
		ev = UpdateEvent{Table: t, Kind: CommitInsert, Cols: cols, Inserts: inserts}
		t.commitLocked()
		t.hookLocked(CommitRecord{Kind: CommitInsert, Inserts: deltas, FirstOid: first, NumRows: len(rows)})
		return first
	}()
	committed = true
	return first
}

func stillSorted(v bat.Vector) bool {
	n := v.Len()
	if n < 2 {
		return true
	}
	// Only verify the boundary region; appends to sorted columns are
	// rare and correctness only needs a conservative answer.
	for i := 1; i < n; i++ {
		if algebraCmp(v.Get(i-1), v.Get(i)) > 0 {
			return false
		}
	}
	return true
}

// algebraCmp duplicates algebra.Cmp to avoid an import cycle (algebra
// depends only on bat; catalog is beneath algebra for binds).
func algebraCmp(a, b any) int {
	switch av := a.(type) {
	case int64:
		bv := b.(int64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case float64:
		bv := b.(float64)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case string:
		bv := b.(string)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case bat.Date:
		bv := b.(bat.Date)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	case bat.Oid:
		bv := b.(bat.Oid)
		switch {
		case av < bv:
			return -1
		case av > bv:
			return 1
		}
		return 0
	}
	panic(fmt.Sprintf("catalog: cmp of unsupported type %T", a))
}

func buildDelta(k bat.Kind, rows []Row, col string) bat.Vector {
	switch k {
	case bat.KInt:
		v := make([]int64, len(rows))
		for i, r := range rows {
			v[i] = r[col].(int64)
		}
		return bat.NewInts(v)
	case bat.KFloat:
		v := make([]float64, len(rows))
		for i, r := range rows {
			v[i] = r[col].(float64)
		}
		return bat.NewFloats(v)
	case bat.KStr:
		v := make([]string, len(rows))
		for i, r := range rows {
			v[i] = r[col].(string)
		}
		return bat.NewStrings(v)
	case bat.KDate:
		v := make([]bat.Date, len(rows))
		for i, r := range rows {
			v[i] = r[col].(bat.Date)
		}
		return bat.NewDates(v)
	case bat.KOid:
		v := make([]bat.Oid, len(rows))
		for i, r := range rows {
			v[i] = r[col].(bat.Oid)
		}
		return bat.NewOids(v)
	case bat.KBool:
		v := make([]bool, len(rows))
		for i, r := range rows {
			v[i] = r[col].(bool)
		}
		return bat.NewBools(v)
	}
	panic("catalog: delta of unsupported kind")
}

// Delete tombstones the given oids and commits one update event.
func (t *Table) Delete(oids []bat.Oid) {
	if len(oids) == 0 {
		return
	}
	ls := t.preNotify()
	var ev UpdateEvent
	committed, noop := false, false
	defer func() {
		if noop {
			t.abortNotify(ls)
		} else {
			t.completeNotify(ls, &committed, &ev)
		}
	}()
	func() {
		t.catalog.mu.Lock()
		defer t.catalog.mu.Unlock()
		if t.deleted == nil {
			t.deleted = make(map[bat.Oid]struct{}, len(oids))
		}
		var really []bat.Oid
		for _, o := range oids {
			if int(o) >= t.nrows {
				continue
			}
			if _, dup := t.deleted[o]; dup {
				continue
			}
			t.deleted[o] = struct{}{}
			really = append(really, o)
		}
		if len(really) == 0 {
			noop = true
			return
		}
		t.maintainIndexesOnDelete(really)
		cols := make([]string, len(t.Cols))
		for i, c := range t.Cols {
			cols[i] = c.Name
		}
		ev = UpdateEvent{Table: t, Kind: CommitDelete, Cols: cols, Deleted: really}
		t.commitLocked()
		t.hookLocked(CommitRecord{Kind: CommitDelete, Deleted: really})
		committed = true
	}()
}

// UpdateInPlace overwrites a single column's values at the given oids
// and commits an update event naming only that column (paper §6.4:
// updates invalidate only the columns directly affected). The deltas
// are reported as a combined delete+insert on the column.
//
// Unlike Append (whose storage is copy-on-write), the overwrite lands
// in the committed vector itself: binds taken *after* the update see
// the new values, but a session still holding a view bound before the
// update would observe the write mid-query. Run in-place updates only
// when no query is concurrently reading the affected column — the
// same exclusion covers the durable store's background readers
// (checkpoint serialisation and recycle pool spilling), which read
// bind views over the committed vectors without the catalog lock.
func (t *Table) UpdateInPlace(col string, oids []bat.Oid, vals []any) {
	c := t.MustColumn(col)
	if len(oids) != len(vals) {
		panic("catalog: update length mismatch")
	}
	if len(oids) == 0 {
		return
	}
	ls := t.preNotify()
	ev := UpdateEvent{Table: t, Kind: CommitUpdate, Cols: []string{col}, Deleted: oids}
	committed := false
	defer t.completeNotify(ls, &committed, &ev)
	func() {
		t.catalog.mu.Lock()
		defer t.catalog.mu.Unlock()
		switch d := c.Data.(type) {
		case *bat.Ints:
			for i, o := range oids {
				d.V[o] = vals[i].(int64)
			}
		case *bat.Floats:
			for i, o := range oids {
				d.V[o] = vals[i].(float64)
			}
		case *bat.Strings:
			for i, o := range oids {
				d.V[o] = vals[i].(string)
			}
		case *bat.Dates:
			for i, o := range oids {
				d.V[o] = vals[i].(bat.Date)
			}
		default:
			panic("catalog: update of unsupported column type")
		}
		t.commitLocked()
		t.hookLocked(CommitRecord{
			Kind: CommitUpdate, UpdCol: col,
			UpdOids: append([]bat.Oid(nil), oids...),
			UpdVals: bat.FromAnys(c.KindOf, vals),
		})
	}()
	committed = true
}

// notify delivers a committed update to the listeners. It runs after
// the catalog lock is released, so listeners (the recycler) may read
// the catalog without deadlocking against the committing session.
func notify(ls []UpdateListener, ev UpdateEvent) {
	for _, l := range ls {
		l.OnUpdate(ev)
	}
}

// preNotify announces an impending commit to the listeners, before
// the mutation is applied and without holding the catalog lock. It
// returns the notified listeners so the caller can deliver the
// matching completion (OnUpdate/OnDrop, or OnAbortUpdate for a no-op)
// to exactly the same set.
func (t *Table) preNotify() []UpdateListener {
	t.catalog.mu.RLock()
	ls := t.catalog.listenersLocked()
	t.catalog.mu.RUnlock()
	for _, l := range ls {
		l.OnBeforeUpdate(t)
	}
	return ls
}

// abortNotify closes a preNotify whose statement committed nothing.
func (t *Table) abortNotify(ls []UpdateListener) {
	for _, l := range ls {
		l.OnAbortUpdate(t)
	}
}

// completeNotify closes a preNotify from a deferred context: delivered
// normally when the mutation committed, and as a full-table
// invalidation event when the mutation panicked partway (columns may
// be partially applied, so every dependent intermediate must go). The
// pending-commit contract thus closes on every exit path.
func (t *Table) completeNotify(ls []UpdateListener, committed *bool, ev *UpdateEvent) {
	if *committed {
		notify(ls, *ev)
		return
	}
	cols := make([]string, len(t.Cols))
	for i, c := range t.Cols {
		cols[i] = c.Name
	}
	notify(ls, UpdateEvent{Table: t, Kind: CommitInvalidate, Cols: cols})
}

// DefineKeyIndex builds a unique key index on an int column, mapping
// key value to row oid. Needed for FK join index maintenance and for
// delete-by-key workloads (TPC-H refresh functions).
func (t *Table) DefineKeyIndex(col string) {
	t.catalog.mu.Lock()
	defer t.catalog.mu.Unlock()
	t.defineKeyIndexLocked(col)
}

func (t *Table) defineKeyIndexLocked(col string) {
	c := t.MustColumn(col)
	data := c.Data.(*bat.Ints)
	idx := make(map[int64]bat.Oid, data.Len())
	for i, v := range data.V {
		idx[v] = bat.Oid(i)
	}
	if t.keyIndexes == nil {
		t.keyIndexes = make(map[string]map[int64]bat.Oid)
	}
	t.keyIndexes[col] = idx
}

// LookupKey returns the oid of the row whose key column equals v.
func (t *Table) LookupKey(col string, v int64) (bat.Oid, bool) {
	t.catalog.mu.RLock()
	defer t.catalog.mu.RUnlock()
	idx := t.keyIndexes[col]
	if idx == nil {
		panic(fmt.Sprintf("catalog: no key index on %s.%s", t.QName(), col))
	}
	o, ok := idx[v]
	if ok {
		if _, dead := t.deleted[o]; dead {
			return 0, false
		}
	}
	return o, ok
}

// DefineJoinIndex builds a foreign-key join index named idxName: for
// every row of t, the oid of the parent row whose key column matches
// the child's FK column. Plans access it via sql.bindIdxbat, avoiding
// a value join (paper §2.2).
func (t *Table) DefineJoinIndex(idxName, fkCol string, parent *Table, parentKeyCol string) {
	t.catalog.mu.Lock()
	defer t.catalog.mu.Unlock()
	if parent.keyIndexes == nil || parent.keyIndexes[parentKeyCol] == nil {
		parent.defineKeyIndexLocked(parentKeyCol)
	}
	pIdx := parent.keyIndexes[parentKeyCol]
	fk := t.MustColumn(fkCol).Data.(*bat.Ints)
	ji := make([]bat.Oid, fk.Len())
	for i, v := range fk.V {
		o, ok := pIdx[v]
		if !ok {
			o = bat.NilOid
		}
		ji[i] = o
	}
	if t.joinIdx == nil {
		t.joinIdx = make(map[string][]bat.Oid)
	}
	t.joinIdx[idxName] = ji
	if t.joinIdxMeta == nil {
		t.joinIdxMeta = make(map[string]joinIdxDef)
	}
	t.joinIdxMeta[idxName] = joinIdxDef{fkCol: fkCol, parent: parent, parentKey: parentKeyCol}
}

type joinIdxDef struct {
	fkCol     string
	parent    *Table
	parentKey string
}

// JoinIndexParent returns the parent table of a join index, or nil.
// The recycler uses it to derive invalidation dependencies for
// bindIdxbat intermediates.
func (t *Table) JoinIndexParent(idxName string) *Table {
	t.catalog.mu.RLock()
	defer t.catalog.mu.RUnlock()
	def, ok := t.joinIdxMeta[idxName]
	if !ok {
		return nil
	}
	return def.parent
}

// BindIdx returns the join index as a BAT (child oid -> parent oid),
// the engine's sql.bindIdxbat. Tombstoned child rows are filtered out.
func (t *Table) BindIdx(idxName string) *bat.BAT {
	t.catalog.mu.RLock()
	defer t.catalog.mu.RUnlock()
	ji, ok := t.joinIdx[idxName]
	if !ok {
		panic(fmt.Sprintf("catalog: unknown join index %s on %s", idxName, t.QName()))
	}
	if len(t.deleted) == 0 {
		b := bat.New(bat.NewDense(0, len(ji)), bat.NewOids(ji))
		return b
	}
	heads := make([]bat.Oid, 0, len(ji)-len(t.deleted))
	tails := make([]bat.Oid, 0, len(ji)-len(t.deleted))
	for i, p := range ji {
		if _, dead := t.deleted[bat.Oid(i)]; dead {
			continue
		}
		heads = append(heads, bat.Oid(i))
		tails = append(tails, p)
	}
	b := bat.New(bat.NewOids(heads), bat.NewOids(tails))
	b.HeadSorted = true
	b.KeyUnique = true
	return b
}

func (t *Table) maintainIndexesOnAppend(first bat.Oid, rows []Row) {
	for col, idx := range t.keyIndexes {
		for i, r := range rows {
			idx[r[col].(int64)] = first + bat.Oid(i)
		}
	}
	for name, def := range t.joinIdxMeta {
		pIdx := def.parent.keyIndexes[def.parentKey]
		ji := t.joinIdx[name]
		for _, r := range rows {
			v := r[def.fkCol].(int64)
			o, ok := pIdx[v]
			if !ok {
				o = bat.NilOid
			}
			ji = append(ji, o)
		}
		t.joinIdx[name] = ji
	}
}

func (t *Table) maintainIndexesOnDelete(oids []bat.Oid) {
	// Key index entries for tombstoned rows are filtered by LookupKey;
	// nothing to do eagerly. Join indices filter via BindIdx.
	_ = oids
}

// joinIdxMeta records join index definitions for incremental
// maintenance. Declared on Table; initialised lazily.

// --- durable export / import ------------------------------------------

// JoinIndexDef names a join index by plain strings, so checkpoint
// metadata can round-trip without table pointers. The index array
// itself is not exported: DefineJoinIndex rebuilds it deterministically
// from the recovered column data.
type JoinIndexDef struct {
	Name, FKCol, ParentSchema, ParentName, ParentKey string
}

// TableState is a consistent export of one table's durable state, the
// unit a checkpoint serialises. Data holds references to the committed
// column vectors: appends are copy-on-write, so the referenced storage
// is immutable under concurrent DML — with the same caveat as
// UpdateInPlace, which overwrites storage in place and therefore must
// not run concurrently with a checkpoint.
type TableState struct {
	Schema, Name string
	// Cols carries the definitions with their *current* Sorted flags
	// (appends may have cleared a declared sortedness).
	Cols []ColDef
	// Data holds the committed vectors, one per column, in Cols order.
	// Length equals NRows (tombstoned rows keep their slots).
	Data []bat.Vector
	// NRows counts committed rows including tombstoned ones.
	NRows int
	// Deleted lists the tombstoned oids in ascending order.
	Deleted []bat.Oid
	// Version is the table's committed-update counter.
	Version int64
	// Created is the commit sequence at which the table was created
	// (the durable half of TableStamp).
	Created uint64
	// KeyIndexCols names the unique key indexes to rebuild.
	KeyIndexCols []string
	// JoinIndexes names the FK join indexes to rebuild.
	JoinIndexes []JoinIndexDef
}

// ExportState captures every table's durable state plus the commit
// sequence, consistently under one shared-lock acquisition. Checkpoint
// writers serialise the result after the lock is released.
func (c *Catalog) ExportState() ([]TableState, uint64) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]TableState, 0, len(names))
	for _, n := range names {
		t := c.tables[n]
		ts := TableState{
			Schema:  t.Schema,
			Name:    t.Name,
			NRows:   t.nrows,
			Version: t.Version,
			Created: t.created,
		}
		for _, col := range t.Cols {
			ts.Cols = append(ts.Cols, ColDef{Name: col.Name, Kind: col.KindOf, Sorted: col.Sorted})
			ts.Data = append(ts.Data, col.Data)
		}
		for o := range t.deleted {
			ts.Deleted = append(ts.Deleted, o)
		}
		sort.Slice(ts.Deleted, func(i, j int) bool { return ts.Deleted[i] < ts.Deleted[j] })
		for col := range t.keyIndexes {
			ts.KeyIndexCols = append(ts.KeyIndexCols, col)
		}
		sort.Strings(ts.KeyIndexCols)
		for name, def := range t.joinIdxMeta {
			ts.JoinIndexes = append(ts.JoinIndexes, JoinIndexDef{
				Name: name, FKCol: def.fkCol,
				ParentSchema: def.parent.Schema, ParentName: def.parent.Name,
				ParentKey: def.parentKey,
			})
		}
		sort.Slice(ts.JoinIndexes, func(i, j int) bool { return ts.JoinIndexes[i].Name < ts.JoinIndexes[j].Name })
		out = append(out, ts)
	}
	return out, c.commitSeq
}

// ImportTable recreates a table from exported state during recovery:
// data, tombstones, version and key indexes are restored without
// notifying listeners or the commit hook, and without advancing the
// commit sequence (RestoreCommitSeq sets it explicitly). Join indexes
// are not rebuilt here — the caller re-issues DefineJoinIndex once all
// tables are imported, since parents may import later.
func (c *Catalog) ImportTable(ts TableState) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.tables[key(ts.Schema, ts.Name)]; dup {
		return nil, fmt.Errorf("catalog: import of existing table %s.%s", ts.Schema, ts.Name)
	}
	if len(ts.Cols) != len(ts.Data) {
		return nil, fmt.Errorf("catalog: import of %s.%s: %d defs, %d vectors", ts.Schema, ts.Name, len(ts.Cols), len(ts.Data))
	}
	t := &Table{
		Schema:    ts.Schema,
		Name:      ts.Name,
		catalog:   c,
		colByName: make(map[string]*Column, len(ts.Cols)),
		nrows:     ts.NRows,
		Version:   ts.Version,
		created:   ts.Created,
	}
	for i, d := range ts.Cols {
		if ts.Data[i].Len() != ts.NRows {
			return nil, fmt.Errorf("catalog: import of %s.%s.%s: %d values for %d rows", ts.Schema, ts.Name, d.Name, ts.Data[i].Len(), ts.NRows)
		}
		col := &Column{Table: t, Name: d.Name, KindOf: d.Kind, Data: ts.Data[i], Sorted: d.Sorted}
		t.Cols = append(t.Cols, col)
		t.colByName[d.Name] = col
	}
	if len(ts.Deleted) > 0 {
		t.deleted = make(map[bat.Oid]struct{}, len(ts.Deleted))
		for _, o := range ts.Deleted {
			t.deleted[o] = struct{}{}
		}
	}
	for _, col := range ts.KeyIndexCols {
		t.defineKeyIndexLocked(col)
	}
	c.tables[key(ts.Schema, ts.Name)] = t
	return t, nil
}
