// Package catalog implements the persistent store of the engine:
// schemas, tables, typed columns, key and foreign-key (join) indices,
// and delta-based updates. Query plans access persistent data through
// bind operations that return BAT views over committed column storage
// (paper §2.2); DML goes through append/delete deltas whose commit
// notifies registered listeners (the recycler) so cached intermediates
// can be invalidated or propagated (paper §6).
package catalog
