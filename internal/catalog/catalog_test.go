package catalog

import (
	"testing"

	"repro/internal/bat"
)

func twoColTable(t *testing.T) (*Catalog, *Table) {
	t.Helper()
	c := New()
	tb := c.CreateTable("sys", "orders", []ColDef{
		{Name: "o_orderkey", Kind: bat.KInt},
		{Name: "o_total", Kind: bat.KFloat},
	})
	tb.Append([]Row{
		{"o_orderkey": int64(1), "o_total": 10.0},
		{"o_orderkey": int64(2), "o_total": 20.0},
		{"o_orderkey": int64(3), "o_total": 30.0},
	})
	return c, tb
}

func TestCreateAndBind(t *testing.T) {
	_, tb := twoColTable(t)
	if tb.NumRows() != 3 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	b := tb.MustColumn("o_total").Bind()
	if b.Len() != 3 || b.Tail.Get(1) != 20.0 {
		t.Fatalf("bind wrong: %s", b.Dump(5))
	}
	if _, dense := b.Head.(*bat.DenseOids); !dense {
		t.Fatal("bind head should be dense without deletes")
	}
}

func TestDeleteTombstonesBind(t *testing.T) {
	_, tb := twoColTable(t)
	tb.Delete([]bat.Oid{1})
	if tb.NumRows() != 2 || !tb.HasDeletes() {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	b := tb.MustColumn("o_orderkey").Bind()
	if b.Len() != 2 || bat.OidAt(b.Head, 1) != 2 {
		t.Fatalf("bind after delete wrong: %s", b.Dump(5))
	}
	// Deleting again or out of range is a no-op (no event).
	var events int
	tb.catalog.AddListener(countListener{n: &events})
	tb.Delete([]bat.Oid{1, 99})
	if events != 0 {
		t.Fatalf("duplicate delete fired %d events", events)
	}
}

type countListener struct{ n *int }

func (c countListener) OnBeforeUpdate(*Table) {}
func (c countListener) OnAbortUpdate(*Table)  {}
func (c countListener) OnUpdate(UpdateEvent)  { *c.n++ }
func (c countListener) OnDrop(*Table)         {}

func TestAppendEventCarriesDeltas(t *testing.T) {
	c, tb := twoColTable(t)
	var got UpdateEvent
	c.AddListener(funcListener{onUpdate: func(ev UpdateEvent) { got = ev }})
	first := tb.Append([]Row{{"o_orderkey": int64(9), "o_total": 90.0}})
	if first != 3 {
		t.Fatalf("first oid = %d", first)
	}
	if got.Table != tb || len(got.Inserts) != 2 || len(got.Deleted) != 0 {
		t.Fatalf("event wrong: %+v", got)
	}
	d := got.Inserts["o_orderkey"]
	if d.Len() != 1 || bat.OidAt(d.Head, 0) != 3 || d.Tail.Get(0) != int64(9) {
		t.Fatalf("delta wrong: %s", d.Dump(5))
	}
}

type funcListener struct {
	onUpdate func(UpdateEvent)
	onDrop   func(*Table)
}

func (f funcListener) OnBeforeUpdate(*Table) {}

func (f funcListener) OnAbortUpdate(*Table) {}

func (f funcListener) OnUpdate(ev UpdateEvent) {
	if f.onUpdate != nil {
		f.onUpdate(ev)
	}
}
func (f funcListener) OnDrop(t *Table) {
	if f.onDrop != nil {
		f.onDrop(t)
	}
}

func TestUpdateInPlaceNamesOnlyColumn(t *testing.T) {
	c, tb := twoColTable(t)
	var got UpdateEvent
	c.AddListener(funcListener{onUpdate: func(ev UpdateEvent) { got = ev }})
	tb.UpdateInPlace("o_total", []bat.Oid{0}, []any{99.0})
	if len(got.Cols) != 1 || got.Cols[0] != "o_total" {
		t.Fatalf("update event cols = %v", got.Cols)
	}
	if tb.MustColumn("o_total").Bind().Tail.Get(0) != 99.0 {
		t.Fatal("update not applied")
	}
}

func TestKeyIndexAndLookup(t *testing.T) {
	_, tb := twoColTable(t)
	tb.DefineKeyIndex("o_orderkey")
	o, ok := tb.LookupKey("o_orderkey", 2)
	if !ok || o != 1 {
		t.Fatalf("lookup = %v, %v", o, ok)
	}
	tb.Delete([]bat.Oid{1})
	if _, ok := tb.LookupKey("o_orderkey", 2); ok {
		t.Fatal("lookup of deleted row should fail")
	}
	// Appends maintain the index.
	tb.Append([]Row{{"o_orderkey": int64(7), "o_total": 70.0}})
	o, ok = tb.LookupKey("o_orderkey", 7)
	if !ok || o != 3 {
		t.Fatalf("lookup after append = %v, %v", o, ok)
	}
}

func TestJoinIndex(t *testing.T) {
	c := New()
	orders := c.CreateTable("sys", "orders", []ColDef{{Name: "o_orderkey", Kind: bat.KInt}})
	orders.Append([]Row{
		{"o_orderkey": int64(100)},
		{"o_orderkey": int64(200)},
	})
	li := c.CreateTable("sys", "lineitem", []ColDef{{Name: "l_orderkey", Kind: bat.KInt}})
	li.Append([]Row{
		{"l_orderkey": int64(200)},
		{"l_orderkey": int64(100)},
		{"l_orderkey": int64(999)}, // dangling FK
	})
	li.DefineJoinIndex("li_fkey", "l_orderkey", orders, "o_orderkey")
	b := li.BindIdx("li_fkey")
	if b.Len() != 3 {
		t.Fatalf("idx len = %d", b.Len())
	}
	if bat.OidAt(b.Tail, 0) != 1 || bat.OidAt(b.Tail, 1) != 0 || bat.OidAt(b.Tail, 2) != bat.NilOid {
		t.Fatalf("join index wrong: %s", b.Dump(5))
	}
	// Incremental maintenance on append.
	li.Append([]Row{{"l_orderkey": int64(100)}})
	b = li.BindIdx("li_fkey")
	if b.Len() != 4 || bat.OidAt(b.Tail, 3) != 0 {
		t.Fatalf("join index after append wrong: %s", b.Dump(10))
	}
	// Tombstoned child rows are filtered.
	li.Delete([]bat.Oid{0})
	b = li.BindIdx("li_fkey")
	if b.Len() != 3 || bat.OidAt(b.Head, 0) != 1 {
		t.Fatalf("join index after delete wrong: %s", b.Dump(10))
	}
}

func TestDropTableNotifies(t *testing.T) {
	c, tb := twoColTable(t)
	var dropped *Table
	c.AddListener(funcListener{onDrop: func(t *Table) { dropped = t }})
	c.DropTable("sys", "orders")
	if dropped != tb || c.Table("sys", "orders") != nil {
		t.Fatal("drop did not notify or remove")
	}
}

func TestVersionBumps(t *testing.T) {
	_, tb := twoColTable(t)
	v := tb.Version
	tb.Append([]Row{{"o_orderkey": int64(4), "o_total": 1.0}})
	if tb.Version != v+1 {
		t.Fatalf("version = %d, want %d", tb.Version, v+1)
	}
	tb.Delete([]bat.Oid{0})
	if tb.Version != v+2 {
		t.Fatalf("version = %d, want %d", tb.Version, v+2)
	}
}

func TestTablesDeterministicOrder(t *testing.T) {
	c := New()
	c.CreateTable("sys", "b", nil)
	c.CreateTable("sys", "a", nil)
	ts := c.Tables()
	if len(ts) != 2 || ts[0].Name != "a" || ts[1].Name != "b" {
		t.Fatalf("tables order wrong: %v, %v", ts[0].Name, ts[1].Name)
	}
}

func TestSortedPropertyMaintained(t *testing.T) {
	c := New()
	tb := c.CreateTable("sys", "t", []ColDef{{Name: "k", Kind: bat.KInt, Sorted: true}})
	tb.Append([]Row{{"k": int64(1)}, {"k": int64(2)}})
	if !tb.MustColumn("k").Sorted {
		t.Fatal("sorted lost on ordered append")
	}
	tb.Append([]Row{{"k": int64(0)}})
	if tb.MustColumn("k").Sorted {
		t.Fatal("sorted kept on out-of-order append")
	}
}
