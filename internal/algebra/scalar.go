package algebra

import (
	"fmt"
	"strings"

	"repro/internal/bat"
)

// Cmp compares two scalar values of the same dynamic type. It returns
// -1, 0 or 1. Supported types: int64, float64, string, bat.Date,
// bat.Oid, bool. It is used by range selects and by the recycler's
// subsumption analysis to reason about range containment.
func Cmp(a, b any) int {
	switch av := a.(type) {
	case int64:
		bv := b.(int64)
		return cmpOrdered(av, bv)
	case float64:
		bv := b.(float64)
		return cmpOrdered(av, bv)
	case string:
		bv := b.(string)
		return strings.Compare(av, bv)
	case bat.Date:
		bv := b.(bat.Date)
		return cmpOrdered(av, bv)
	case bat.Oid:
		bv := b.(bat.Oid)
		return cmpOrdered(av, bv)
	case bool:
		bv := b.(bool)
		if av == bv {
			return 0
		}
		if !av {
			return -1
		}
		return 1
	}
	panic(fmt.Sprintf("algebra: Cmp of unsupported type %T", a))
}

func cmpOrdered[T int64 | float64 | bat.Date | bat.Oid](a, b T) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// ScalarKind returns the bat.Kind of a boxed scalar value.
func ScalarKind(v any) bat.Kind {
	switch v.(type) {
	case int64:
		return bat.KInt
	case float64:
		return bat.KFloat
	case string:
		return bat.KStr
	case bat.Date:
		return bat.KDate
	case bat.Oid:
		return bat.KOid
	case bool:
		return bat.KBool
	}
	panic(fmt.Sprintf("algebra: ScalarKind of unsupported type %T", v))
}

// IsNilScalar reports whether the boxed scalar is the type's nil
// sentinel.
func IsNilScalar(v any) bool {
	switch x := v.(type) {
	case int64:
		return x == bat.NilInt
	case float64:
		return bat.IsNilFloat(x)
	case string:
		return x == bat.NilStr
	case bat.Date:
		return x == bat.NilDate
	case bat.Oid:
		return x == bat.NilOid
	}
	return false
}
