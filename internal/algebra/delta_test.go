package algebra

import (
	"testing"

	"repro/internal/bat"
)

func deadSet(oids ...bat.Oid) map[bat.Oid]struct{} {
	m := make(map[bat.Oid]struct{}, len(oids))
	for _, o := range oids {
		m[o] = struct{}{}
	}
	return m
}

func TestSplitHeads(t *testing.T) {
	b := bat.New(bat.NewOids([]bat.Oid{0, 2, 5, 7}), bat.NewInts([]int64{10, 20, 30, 40}))

	kept, removed := SplitHeads(b, deadSet(2, 7))
	if kept.Len() != 2 || removed.Len() != 2 {
		t.Fatalf("split sizes: kept=%d removed=%d", kept.Len(), removed.Len())
	}
	if bat.OidAt(kept.Head, 0) != 0 || bat.OidAt(kept.Head, 1) != 5 {
		t.Fatalf("kept heads wrong: %v %v", kept.Head.Get(0), kept.Head.Get(1))
	}
	if removed.Tail.Get(0) != int64(20) || removed.Tail.Get(1) != int64(40) {
		t.Fatalf("removed tails wrong: %v %v", removed.Tail.Get(0), removed.Tail.Get(1))
	}

	// Empty delta: the input comes back untouched, no removed rows.
	kept, removed = SplitHeads(b, nil)
	if kept != b || removed != nil {
		t.Fatal("empty dead set must return the input unchanged")
	}
	// Dead oids absent from b: same.
	kept, removed = SplitHeads(b, deadSet(99))
	if kept != b || removed != nil {
		t.Fatal("irrelevant dead set must return the input unchanged")
	}

	// All rows deleted.
	kept, removed = SplitHeads(b, deadSet(0, 2, 5, 7))
	if kept.Len() != 0 || removed.Len() != 4 {
		t.Fatalf("all-deleted split: kept=%d removed=%d", kept.Len(), removed.Len())
	}
}

func TestDeltaCount(t *testing.T) {
	add := bat.New(bat.NewDense(10, 3), bat.NewInts([]int64{1, 2, 3}))
	rem := bat.New(bat.NewOids([]bat.Oid{1}), bat.NewInts([]int64{5}))
	if got := DeltaCount(7, add, rem); got != 9 {
		t.Fatalf("DeltaCount = %d, want 9", got)
	}
	if got := DeltaCount(7, nil, nil); got != 7 {
		t.Fatalf("DeltaCount with nil deltas = %d, want 7", got)
	}
}

func TestDeltaSumInt(t *testing.T) {
	add := bat.New(bat.NewDense(10, 3), bat.NewInts([]int64{1, 2, bat.NilInt}))
	rem := bat.New(bat.NewOids([]bat.Oid{1, 4}), bat.NewInts([]int64{5, bat.NilInt}))
	// 100 + (1+2) - 5; nils ignored, matching SumInt semantics.
	if got := DeltaSumInt(100, add, rem); got != 98 {
		t.Fatalf("DeltaSumInt = %d, want 98", got)
	}
	if got := DeltaSumInt(100, nil, nil); got != 100 {
		t.Fatalf("DeltaSumInt with nil deltas = %d, want 100", got)
	}
	// Delta application must agree with recomputation over the merged rows.
	base := bat.New(bat.NewDense(0, 4), bat.NewInts([]int64{5, 7, 11, 13}))
	kept, removed := SplitHeads(base, deadSet(1))
	merged := bat.Append(kept, add)
	if got, want := DeltaSumInt(SumInt(base), add, removed), SumInt(merged); got != want {
		t.Fatalf("delta sum %d != recomputed sum %d", got, want)
	}
}
