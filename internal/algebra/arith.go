package algebra

import (
	"fmt"
	"sort"

	"repro/internal/bat"
)

// MulFloat multiplies two positionally aligned float BATs, producing a
// float BAT with a's head. Nil in either operand yields nil.
func MulFloat(a, b *bat.BAT) *bat.BAT {
	return zipFloat(a, b, func(x, y float64) float64 { return x * y })
}

// AddFloat adds two positionally aligned float BATs.
func AddFloat(a, b *bat.BAT) *bat.BAT {
	return zipFloat(a, b, func(x, y float64) float64 { return x + y })
}

func zipFloat(a, b *bat.BAT, f func(x, y float64) float64) *bat.BAT {
	at := a.Tail.(*bat.Floats)
	bt := b.Tail.(*bat.Floats)
	if len(at.V) != len(bt.V) {
		panic("algebra: arithmetic alignment mismatch")
	}
	out := make([]float64, len(at.V))
	for i := range out {
		if bat.IsNilFloat(at.V[i]) || bat.IsNilFloat(bt.V[i]) {
			out[i] = bat.NilFloat()
			continue
		}
		out[i] = f(at.V[i], bt.V[i])
	}
	res := bat.New(a.Head, bat.NewFloats(out))
	res.HeadSorted = a.HeadSorted
	return res
}

// AddConstFloat adds the constant c to every non-nil float tail value.
func AddConstFloat(a *bat.BAT, c float64) *bat.BAT {
	return mapConstFloat(a, func(x float64) float64 { return x + c })
}

// MulConstFloat multiplies every non-nil float tail value by c.
func MulConstFloat(a *bat.BAT, c float64) *bat.BAT {
	return mapConstFloat(a, func(x float64) float64 { return x * c })
}

// SubFromConstFloat computes c - x for every non-nil float tail value
// (e.g. 1 - l_discount).
func SubFromConstFloat(a *bat.BAT, c float64) *bat.BAT {
	return mapConstFloat(a, func(x float64) float64 { return c - x })
}

func mapConstFloat(a *bat.BAT, f func(float64) float64) *bat.BAT {
	at := a.Tail.(*bat.Floats)
	out := make([]float64, len(at.V))
	for i, x := range at.V {
		if bat.IsNilFloat(x) {
			out[i] = bat.NilFloat()
			continue
		}
		out[i] = f(x)
	}
	res := bat.New(a.Head, bat.NewFloats(out))
	res.HeadSorted = a.HeadSorted
	return res
}

// LessThan compares two positionally aligned BATs, producing a bool
// BAT that is true where a.tail < b.tail. Nil operands compare false.
// Supported tails: int, float, date.
func LessThan(a, b *bat.BAT) *bat.BAT {
	n := a.Len()
	if b.Len() != n {
		panic("algebra: lt alignment mismatch")
	}
	out := make([]bool, n)
	switch at := a.Tail.(type) {
	case *bat.Ints:
		bt := b.Tail.(*bat.Ints)
		for i := range out {
			out[i] = at.V[i] != bat.NilInt && bt.V[i] != bat.NilInt && at.V[i] < bt.V[i]
		}
	case *bat.Floats:
		bt := b.Tail.(*bat.Floats)
		for i := range out {
			out[i] = !bat.IsNilFloat(at.V[i]) && !bat.IsNilFloat(bt.V[i]) && at.V[i] < bt.V[i]
		}
	case *bat.Dates:
		bt := b.Tail.(*bat.Dates)
		for i := range out {
			out[i] = at.V[i] != bat.NilDate && bt.V[i] != bat.NilDate && at.V[i] < bt.V[i]
		}
	default:
		panic(fmt.Sprintf("algebra: lt over unsupported tail %T", a.Tail))
	}
	res := bat.New(a.Head, bat.NewBools(out))
	res.HeadSorted = a.HeadSorted
	return res
}

// AvgFloat computes the scalar average of the non-nil tail values of a
// float or int BAT; it returns the nil float when no values qualify.
func AvgFloat(b *bat.BAT) float64 {
	var sum float64
	var n int64
	switch t := b.Tail.(type) {
	case *bat.Floats:
		for _, x := range t.V {
			if !bat.IsNilFloat(x) {
				sum += x
				n++
			}
		}
	case *bat.Ints:
		for _, x := range t.V {
			if x != bat.NilInt {
				sum += float64(x)
				n++
			}
		}
	default:
		panic(fmt.Sprintf("algebra: avg over unsupported tail %T", b.Tail))
	}
	if n == 0 {
		return bat.NilFloat()
	}
	return sum / float64(n)
}

// IntToFloat converts an int tail to a float tail.
func IntToFloat(a *bat.BAT) *bat.BAT {
	at := a.Tail.(*bat.Ints)
	out := make([]float64, len(at.V))
	for i, x := range at.V {
		if x == bat.NilInt {
			out[i] = bat.NilFloat()
			continue
		}
		out[i] = float64(x)
	}
	res := bat.New(a.Head, bat.NewFloats(out))
	res.HeadSorted = a.HeadSorted
	return res
}

// AddMonths implements mtime.addmonths over a scalar date: it advances
// d by n months using a proleptic Gregorian calendar.
func AddMonths(d bat.Date, n int) bat.Date {
	y, m, day := CivilFromDays(int32(d))
	m += n
	y += (m - 1) / 12
	m = (m-1)%12 + 1
	if m <= 0 {
		m += 12
		y--
	}
	if dm := DaysInMonth(y, m); day > dm {
		day = dm
	}
	return bat.Date(DaysFromCivil(y, m, day))
}

// AddYears advances d by n years.
func AddYears(d bat.Date, n int) bat.Date { return AddMonths(d, n*12) }

// MkDate builds a Date from a civil year, month, day.
func MkDate(y, m, d int) bat.Date { return bat.Date(DaysFromCivil(y, m, d)) }

// DaysFromCivil converts a civil date to days since 1970-01-01
// (Howard Hinnant's algorithm).
func DaysFromCivil(y, m, d int) int32 {
	if m <= 2 {
		y--
	}
	var era int
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return int32(era*146097 + doe - 719468)
}

// CivilFromDays converts days since 1970-01-01 back to a civil date.
func CivilFromDays(z int32) (y, m, d int) {
	zz := int(z) + 719468
	var era int
	if zz >= 0 {
		era = zz / 146097
	} else {
		era = (zz - 146096) / 146097
	}
	doe := zz - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	yy := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	d = doy - (153*mp+2)/5 + 1
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		yy++
	}
	return yy, m, d
}

// DaysInMonth returns the number of days in the given month.
func DaysInMonth(y, m int) int {
	switch m {
	case 1, 3, 5, 7, 8, 10, 12:
		return 31
	case 4, 6, 9, 11:
		return 30
	case 2:
		if (y%4 == 0 && y%100 != 0) || y%400 == 0 {
			return 29
		}
		return 28
	}
	panic(fmt.Sprintf("algebra: bad month %d", m))
}

// Year extracts the civil year of a date tail into an int BAT
// (EXTRACT(YEAR FROM ...)).
func Year(a *bat.BAT) *bat.BAT {
	at := a.Tail.(*bat.Dates)
	out := make([]int64, len(at.V))
	for i, x := range at.V {
		if x == bat.NilDate {
			out[i] = bat.NilInt
			continue
		}
		y, _, _ := CivilFromDays(int32(x))
		out[i] = int64(y)
	}
	res := bat.New(a.Head, bat.NewInts(out))
	res.HeadSorted = a.HeadSorted
	return res
}

// SortByTail returns a BAT reordered by ascending (or descending) tail
// value. Used for ORDER BY in result construction.
func SortByTail(b *bat.BAT, asc bool) *bat.BAT {
	idx := make([]int, b.Len())
	for i := range idx {
		idx[i] = i
	}
	less := tailLess(b.Tail)
	sort.SliceStable(idx, func(i, j int) bool {
		if asc {
			return less(idx[i], idx[j])
		}
		return less(idx[j], idx[i])
	})
	out := bat.Gather(b, idx)
	if asc {
		out.TailSorted = true
	}
	return out
}

func tailLess(t bat.Vector) func(i, j int) bool {
	switch v := t.(type) {
	case *bat.Ints:
		return func(i, j int) bool { return v.V[i] < v.V[j] }
	case *bat.Floats:
		return func(i, j int) bool { return v.V[i] < v.V[j] }
	case *bat.Strings:
		return func(i, j int) bool { return v.V[i] < v.V[j] }
	case *bat.Dates:
		return func(i, j int) bool { return v.V[i] < v.V[j] }
	case *bat.Oids:
		return func(i, j int) bool { return v.V[i] < v.V[j] }
	case *bat.DenseOids:
		return func(i, j int) bool { return i < j }
	}
	panic(fmt.Sprintf("algebra: sort over unsupported tail %T", t))
}

// TopN returns the first n rows of b (LIMIT n).
func TopN(b *bat.BAT, n int) *bat.BAT {
	if b.Len() <= n {
		return b
	}
	return b.Slice(0, n)
}
