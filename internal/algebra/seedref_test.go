package algebra

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/bat"
)

// Differential suite for the raw-speed kernel pass: every typed
// branch-free kernel is compared against a boxed reference
// implementation with the pre-rewrite semantics — interface-valued
// scans that skip nil sentinels, map[any]-backed joins and dedup (so
// float NaN never matches a probe but IS retained as a distinct key),
// first-occurrence group ids. Inputs are randomized over every vector
// kind, with nil sentinels mixed in and sorted variants to force the
// binary-search fast paths.

// --- boxed reference kernels ----------------------------------------------

func isNilAny(v any) bool {
	switch x := v.(type) {
	case int64:
		return x == bat.NilInt
	case float64:
		return math.IsNaN(x)
	case string:
		return x == bat.NilStr
	case bat.Date:
		return x == bat.NilDate
	case bat.Oid:
		return x == bat.NilOid
	}
	return false
}

// refSelect is the seed scan: skip nils, then Cmp-based bound checks.
func refSelect(b *bat.BAT, lo, hi any, incLo, incHi bool) []int {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		v := b.Tail.Get(i)
		if isNilAny(v) {
			continue
		}
		if lo != nil {
			c := Cmp(v, lo)
			if incLo && c < 0 || !incLo && c <= 0 {
				continue
			}
		}
		if hi != nil {
			c := Cmp(v, hi)
			if incHi && c > 0 || !incHi && c >= 0 {
				continue
			}
		}
		idx = append(idx, i)
	}
	return idx
}

// refUselect is boxed equality — any(NaN) == any(NaN) is false, so
// float nils match nothing, and other nil sentinels match themselves.
func refUselect(b *bat.BAT, v any) []int {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if b.Tail.Get(i) == v {
			idx = append(idx, i)
		}
	}
	return idx
}

func refSelectNotNil(b *bat.BAT) []int {
	var idx []int
	for i := 0; i < b.Len(); i++ {
		if !isNilAny(b.Tail.Get(i)) {
			idx = append(idx, i)
		}
	}
	return idx
}

// refJoin is the nested-loop reference for the hash join: l order
// outer, r order inner, boxed equality (NaN matches nothing).
func refJoin(l, r *bat.BAT) (li, ri []int) {
	for i := 0; i < l.Len(); i++ {
		lv := l.Tail.Get(i)
		if fv, ok := lv.(float64); ok && math.IsNaN(fv) {
			continue
		}
		for j := 0; j < r.Len(); j++ {
			if r.Head.Get(j) == lv {
				li = append(li, i)
				ri = append(ri, j)
			}
		}
	}
	return li, ri
}

func refSemijoin(l, r *bat.BAT) []int {
	set := map[bat.Oid]bool{}
	for j := 0; j < r.Len(); j++ {
		set[bat.OidAt(r.Head, j)] = true
	}
	var idx []int
	for i := 0; i < l.Len(); i++ {
		if set[bat.OidAt(l.Head, i)] {
			idx = append(idx, i)
		}
	}
	return idx
}

func refAntiSemijoin(l, r *bat.BAT) []int {
	set := map[bat.Oid]bool{}
	for j := 0; j < r.Len(); j++ {
		set[bat.OidAt(r.Head, j)] = true
	}
	var idx []int
	for i := 0; i < l.Len(); i++ {
		if !set[bat.OidAt(l.Head, i)] {
			idx = append(idx, i)
		}
	}
	return idx
}

// refKUnique keeps first occurrences keyed on map[any] — NaN heads are
// stored but never found again, so every NaN row survives as distinct.
func refKUnique(b *bat.BAT) []int {
	seen := map[any]bool{}
	var idx []int
	for i := 0; i < b.Len(); i++ {
		k := b.Head.Get(i)
		if seen[k] {
			continue
		}
		seen[k] = true
		idx = append(idx, i)
	}
	return idx
}

// refGroupNew assigns first-occurrence group ids via map[any]; NaN
// misses every lookup and opens a fresh group per row.
func refGroupNew(b *bat.BAT) (grp []int, ngroups int) {
	m := map[any]int{}
	grp = make([]int, b.Len())
	for i := 0; i < b.Len(); i++ {
		k := b.Tail.Get(i)
		if id, ok := m[k]; ok {
			grp[i] = id
			continue
		}
		id := ngroups
		ngroups++
		m[k] = id
		grp[i] = id
	}
	return grp, ngroups
}

// --- randomized input construction ----------------------------------------

// randVector builds a random vector of the given kind with ~10% nil
// sentinels. Returned with the matching sortedness when asked. Sorted
// float and string vectors carry no nils: their sentinels (NaN,
// "\x00") don't occupy an end of the sort order, and the sorted
// binary-search path intentionally keeps the seed's boxed-Cmp
// behaviour of including in-range sentinels, which the nil-skipping
// scan reference doesn't model.
func randVector(rng *rand.Rand, kind bat.Kind, n int, sorted bool) bat.Vector {
	switch kind {
	case bat.KInt:
		v := make([]int64, n)
		for i := range v {
			if rng.Intn(10) == 0 {
				v[i] = bat.NilInt
			} else {
				v[i] = int64(rng.Intn(40))
			}
		}
		if sorted {
			sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		}
		return bat.NewInts(v)
	case bat.KFloat:
		v := make([]float64, n)
		for i := range v {
			if !sorted && rng.Intn(10) == 0 {
				v[i] = bat.NilFloat()
			} else {
				v[i] = float64(rng.Intn(40)) / 2
			}
		}
		if sorted {
			sort.Float64s(v)
		}
		return bat.NewFloats(v)
	case bat.KDate:
		v := make([]bat.Date, n)
		for i := range v {
			if rng.Intn(10) == 0 {
				v[i] = bat.NilDate
			} else {
				v[i] = bat.Date(rng.Intn(400))
			}
		}
		if sorted {
			sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		}
		return bat.NewDates(v)
	case bat.KStr:
		words := []string{"", "a", "ab", "abc", "b", "ba", "zz", bat.NilStr}
		if sorted {
			words = words[:len(words)-1]
		}
		v := make([]string, n)
		for i := range v {
			v[i] = words[rng.Intn(len(words))]
		}
		if sorted {
			sort.Strings(v)
		}
		return bat.NewStrings(v)
	case bat.KOid:
		v := make([]bat.Oid, n)
		for i := range v {
			if rng.Intn(10) == 0 {
				v[i] = bat.NilOid
			} else {
				v[i] = bat.Oid(rng.Intn(40))
			}
		}
		if sorted {
			sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
		}
		return bat.NewOids(v)
	}
	panic("unsupported kind")
}

// randBound draws a bound value of the kind (possibly nil = open).
func randBound(rng *rand.Rand, kind bat.Kind) any {
	if rng.Intn(4) == 0 {
		return nil
	}
	switch kind {
	case bat.KInt:
		return int64(rng.Intn(44) - 2)
	case bat.KFloat:
		return float64(rng.Intn(44)-2) / 2
	case bat.KDate:
		return bat.Date(rng.Intn(440) - 20)
	case bat.KStr:
		return []string{"", "a", "ab", "b", "z"}[rng.Intn(5)]
	case bat.KOid:
		return bat.Oid(rng.Intn(44))
	}
	panic("unsupported kind")
}

func headsOf(b *bat.BAT) []bat.Oid {
	h := make([]bat.Oid, b.Len())
	for i := range h {
		h[i] = bat.OidAt(b.Head, i)
	}
	return h
}

// valEq is boxed equality that treats two float nils (NaN) as equal.
func valEq(a, b any) bool {
	if fa, ok := a.(float64); ok {
		if fb, ok := b.(float64); ok && math.IsNaN(fa) && math.IsNaN(fb) {
			return true
		}
	}
	return a == b
}

// expectPairs asserts out contains exactly base's (head, tail) rows at
// the reference positions.
func expectPairs(t *testing.T, ctxt string, base, out *bat.BAT, idx []int) {
	t.Helper()
	if out.Len() != len(idx) {
		t.Fatalf("%s: got %d rows, want %d", ctxt, out.Len(), len(idx))
	}
	for k, i := range idx {
		if bat.OidAt(out.Head, k) != bat.OidAt(base.Head, i) {
			t.Fatalf("%s: row %d head = %v, want %v", ctxt, k, bat.OidAt(out.Head, k), bat.OidAt(base.Head, i))
		}
		if !valEq(out.Tail.Get(k), base.Tail.Get(i)) {
			t.Fatalf("%s: row %d tail = %v, want %v", ctxt, k, out.Tail.Get(k), base.Tail.Get(i))
		}
	}
}

var diffKinds = []bat.Kind{bat.KInt, bat.KFloat, bat.KDate, bat.KStr, bat.KOid}

// --- differential tests ----------------------------------------------------

func TestSelectMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 400; trial++ {
		kind := diffKinds[rng.Intn(len(diffKinds))]
		sorted := rng.Intn(2) == 0
		n := rng.Intn(60) + 1
		b := bat.New(bat.NewDense(bat.Oid(rng.Intn(5)), n), randVector(rng, kind, n, sorted))
		b.TailSorted = sorted
		lo, hi := randBound(rng, kind), randBound(rng, kind)
		incLo, incHi := rng.Intn(2) == 0, rng.Intn(2) == 0
		got := Select(b, lo, hi, incLo, incHi)
		want := refSelect(b, lo, hi, incLo, incHi)
		expectPairs(t, "select", b, got, want)
	}
}

func TestUselectMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		kind := diffKinds[rng.Intn(len(diffKinds))]
		sorted := rng.Intn(2) == 0
		n := rng.Intn(60) + 1
		b := bat.New(bat.NewDense(0, n), randVector(rng, kind, n, sorted))
		b.TailSorted = sorted
		v := randBound(rng, kind)
		if v == nil {
			continue
		}
		got := Uselect(b, v)
		want := refUselect(b, v)
		if got.Len() != len(want) {
			t.Fatalf("uselect %v n=%d v=%v: got %d rows, want %d", kind, n, v, got.Len(), len(want))
		}
		for k, i := range want {
			if bat.OidAt(got.Head, k) != bat.OidAt(b.Head, i) {
				t.Fatalf("uselect row %d: head %v want %v", k, bat.OidAt(got.Head, k), bat.OidAt(b.Head, i))
			}
		}
	}
}

func TestSelectNotNilMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 200; trial++ {
		kind := diffKinds[rng.Intn(len(diffKinds))]
		n := rng.Intn(60) + 1
		b := bat.New(bat.NewDense(0, n), randVector(rng, kind, n, false))
		got := SelectNotNil(b)
		want := refSelectNotNil(b)
		expectPairs(t, "selectNotNil", b, got, want)
	}
}

func TestJoinMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 300; trial++ {
		// L: oid tail referencing R's head space; R head dense or
		// materialised oids (hash path) or value-typed (value join).
		mode := rng.Intn(3)
		ln, rn := rng.Intn(40)+1, rng.Intn(40)+1
		switch mode {
		case 0, 1:
			lt := make([]bat.Oid, ln)
			for i := range lt {
				lt[i] = bat.Oid(rng.Intn(rn + 10))
			}
			l := bat.New(bat.NewDense(0, ln), bat.NewOids(lt))
			var r *bat.BAT
			if mode == 0 {
				r = bat.New(bat.NewDense(0, rn), randVector(rng, bat.KInt, rn, false))
			} else {
				rh := make([]bat.Oid, rn)
				for i := range rh {
					rh[i] = bat.Oid(rng.Intn(rn + 10))
				}
				r = bat.New(bat.NewOids(rh), randVector(rng, bat.KInt, rn, false))
			}
			got := Join(l, r)
			li, ri := refJoin(l, r)
			if got.Len() != len(li) {
				t.Fatalf("join mode=%d: got %d rows, want %d", mode, got.Len(), len(li))
			}
			for k := range li {
				if bat.OidAt(got.Head, k) != bat.OidAt(l.Head, li[k]) {
					t.Fatalf("join row %d: head mismatch", k)
				}
				if !valEq(got.Tail.Get(k), r.Tail.Get(ri[k])) {
					t.Fatalf("join row %d: tail mismatch", k)
				}
			}
		default:
			// Value join: int-typed join column.
			kind := []bat.Kind{bat.KInt, bat.KFloat, bat.KStr, bat.KDate}[rng.Intn(4)]
			l := bat.New(bat.NewDense(0, ln), randVector(rng, kind, ln, false))
			r := bat.New(randVector(rng, kind, rn, false), randVector(rng, bat.KInt, rn, false))
			got := Join(l, r)
			li, ri := refJoin(l, r)
			if got.Len() != len(li) {
				t.Fatalf("value join %v: got %d rows, want %d", kind, got.Len(), len(li))
			}
			for k := range li {
				if bat.OidAt(got.Head, k) != bat.OidAt(l.Head, li[k]) {
					t.Fatalf("value join row %d: head mismatch", k)
				}
				if !valEq(got.Tail.Get(k), r.Tail.Get(ri[k])) {
					t.Fatalf("value join row %d: tail mismatch", k)
				}
			}
		}
	}
}

func TestSemijoinMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 400; trial++ {
		ln, rn := rng.Intn(50)+1, rng.Intn(50)+1
		// L head: dense, sorted-unique oids, or arbitrary oids — covers
		// all three Semijoin strategies plus the probe fallback.
		var l *bat.BAT
		switch rng.Intn(3) {
		case 0:
			l = bat.New(bat.NewDense(bat.Oid(rng.Intn(4)), ln), randVector(rng, bat.KInt, ln, false))
		case 1:
			h := make([]bat.Oid, ln)
			seen := map[bat.Oid]bool{}
			for i := range h {
				v := bat.Oid(rng.Intn(200))
				for seen[v] {
					v = bat.Oid(rng.Intn(200))
				}
				seen[v] = true
				h[i] = v
			}
			sort.Slice(h, func(i, j int) bool { return h[i] < h[j] })
			l = bat.New(bat.NewOids(h), randVector(rng, bat.KInt, ln, false))
			l.HeadSorted, l.KeyUnique = true, true
		default:
			h := make([]bat.Oid, ln)
			for i := range h {
				h[i] = bat.Oid(rng.Intn(30))
			}
			l = bat.New(bat.NewOids(h), randVector(rng, bat.KInt, ln, false))
		}
		rh := make([]bat.Oid, rn)
		for i := range rh {
			rh[i] = bat.Oid(rng.Intn(30))
		}
		r := bat.New(bat.NewOids(rh), randVector(rng, bat.KInt, rn, false))

		got := Semijoin(l, r)
		want := refSemijoin(l, r)
		expectPairs(t, "semijoin", l, got, want)

		gotAnti := AntiSemijoin(l, r)
		wantAnti := refAntiSemijoin(l, r)
		expectPairs(t, "antisemijoin", l, gotAnti, wantAnti)
	}
}

func TestKUniqueMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 300; trial++ {
		kind := diffKinds[rng.Intn(len(diffKinds))]
		n := rng.Intn(60) + 1
		b := bat.New(randVector(rng, kind, n, false), bat.NewDense(0, n))
		got := KUnique(b)
		want := refKUnique(b)
		if got.Len() != len(want) {
			t.Fatalf("kunique %v n=%d: got %d rows, want %d", kind, n, got.Len(), len(want))
		}
		for k, i := range want {
			if !valEq(got.Head.Get(k), b.Head.Get(i)) {
				t.Fatalf("kunique row %d: head %v want %v", k, got.Head.Get(k), b.Head.Get(i))
			}
			if !valEq(got.Tail.Get(k), b.Tail.Get(i)) {
				t.Fatalf("kunique row %d: tail mismatch", k)
			}
		}
		if !got.KeyUnique {
			t.Fatal("kunique result must set KeyUnique")
		}
	}
}

func TestGroupNewMatchesSeedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 300; trial++ {
		kind := diffKinds[rng.Intn(len(diffKinds))]
		n := rng.Intn(60) + 1
		b := bat.New(bat.NewDense(0, n), randVector(rng, kind, n, false))
		g := GroupNew(b)
		want, ng := refGroupNew(b)
		if g.NGroups != ng {
			t.Fatalf("group %v n=%d: ngroups %d want %d", kind, n, g.NGroups, ng)
		}
		ids := g.Grp.Tail.(*bat.Oids).V
		for i := range want {
			if int(ids[i]) != want[i] {
				t.Fatalf("group %v row %d: id %d want %d", kind, i, ids[i], want[i])
			}
		}
		// Derive against a second random column and cross-check with a
		// composite-key reference.
		kind2 := diffKinds[rng.Intn(len(diffKinds))]
		b2 := bat.New(bat.NewDense(0, n), randVector(rng, kind2, n, false))
		d := GroupDerive(g, b2)
		type ck struct {
			g int
			v any
		}
		m := map[ck]int{}
		nref := 0
		for i := 0; i < n; i++ {
			k := ck{want[i], b2.Tail.Get(i)}
			id, ok := m[k]
			if !ok {
				id = nref
				nref++
				m[k] = id
			}
			if int(d.Grp.Tail.(*bat.Oids).V[i]) != id {
				t.Fatalf("derive row %d: id %d want %d", i, d.Grp.Tail.(*bat.Oids).V[i], id)
			}
		}
		if d.NGroups != nref {
			t.Fatalf("derive ngroups %d want %d", d.NGroups, nref)
		}
	}
}

func TestFusedSelectMatchesUnfusedChain(t *testing.T) {
	rng := rand.New(rand.NewSource(48))
	for trial := 0; trial < 300; trial++ {
		n := rng.Intn(80) + 1
		start := bat.Oid(rng.Intn(3))
		cols := []*bat.BAT{
			bat.New(bat.NewDense(start, n), randVector(rng, bat.KFloat, n, false)),
			bat.New(bat.NewDense(start, n), randVector(rng, bat.KInt, n, false)),
			bat.New(bat.NewDense(start, n), randVector(rng, bat.KStr, n, false)),
		}
		base := cols[rng.Intn(len(cols))]
		nsteps := rng.Intn(4) + 1
		var steps []FusedStep
		cur := base
		unfused := base
		for s := 0; s < nsteps; s++ {
			if s > 0 && rng.Intn(2) == 0 {
				col := cols[rng.Intn(len(cols))]
				steps = append(steps, FusedStep{Kind: FuseSwitch, Col: col})
				unfused = Semijoin(col, unfused)
				cur = col
				continue
			}
			kind := cur.Tail.Kind()
			switch {
			case kind == bat.KStr && rng.Intn(2) == 0:
				pat := []string{"%a%", "%b%", "a%", "%z"}[rng.Intn(4)]
				if rng.Intn(2) == 0 {
					steps = append(steps, FusedStep{Kind: FuseLike, Pattern: pat})
					unfused = LikeSelect(unfused, pat)
				} else {
					steps = append(steps, FusedStep{Kind: FuseNotLike, Pattern: pat})
					unfused = NotLikeSelect(unfused, pat)
				}
			case rng.Intn(4) == 0:
				steps = append(steps, FusedStep{Kind: FuseNotNil})
				unfused = SelectNotNil(unfused)
			default:
				lo, hi := randBound(rng, kind), randBound(rng, kind)
				incLo, incHi := rng.Intn(2) == 0, rng.Intn(2) == 0
				steps = append(steps, FusedStep{Kind: FuseSelect, Lo: lo, Hi: hi, IncLo: incLo, IncHi: incHi})
				unfused = Select(unfused, lo, hi, incLo, incHi)
			}
		}
		// Optionally terminate with a uselect.
		if rng.Intn(3) == 0 {
			v := randBound(rng, cur.Tail.Kind())
			if v != nil {
				steps = append(steps, FusedStep{Kind: FuseUselect, V: v})
				unfused = Uselect(unfused, v)
			}
		}
		got := FusedSelect(base, steps)
		if got.Len() != unfused.Len() {
			t.Fatalf("trial %d: fused %d rows, unfused %d", trial, got.Len(), unfused.Len())
		}
		for i := 0; i < got.Len(); i++ {
			if bat.OidAt(got.Head, i) != bat.OidAt(unfused.Head, i) {
				t.Fatalf("trial %d row %d: head %v want %v", trial, i, bat.OidAt(got.Head, i), bat.OidAt(unfused.Head, i))
			}
			if !valEq(got.Tail.Get(i), unfused.Tail.Get(i)) {
				t.Fatalf("trial %d row %d: tail %v want %v", trial, i, got.Tail.Get(i), unfused.Tail.Get(i))
			}
		}
		// Flags may be more conservative than the per-instruction chain
		// (e.g. SelectNotNil's no-drop early return keeps KeyUnique where
		// the fused pass clears it) but must never claim a property the
		// data lacks.
		h := headsOf(got)
		if got.HeadSorted {
			for i := 1; i < len(h); i++ {
				if h[i] < h[i-1] {
					t.Fatalf("trial %d: HeadSorted claimed but heads descend at %d", trial, i)
				}
			}
		}
		if got.KeyUnique {
			seen := map[bat.Oid]bool{}
			for i, v := range h {
				if seen[v] {
					t.Fatalf("trial %d: KeyUnique claimed but head %v repeats at %d", trial, v, i)
				}
				seen[v] = true
			}
		}
	}
}
