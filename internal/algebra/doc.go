// Package algebra implements the binary relational algebra operators of
// the column-store engine: range and equality selections, joins,
// semijoins, grouping, aggregation, column arithmetic and the auxiliary
// viewpoint operators (markT, reverse, mirror). Every operator consumes
// and fully materialises BATs, following the operator-at-a-time
// execution paradigm the recycler harvests (paper §2.2–2.3).
package algebra
