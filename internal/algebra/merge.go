package algebra

import (
	"sort"

	"repro/internal/bat"
)

// MergeDedupByHead concatenates the given BATs and removes duplicate
// head oids, keeping the first occurrence after a stable sort by head.
// The recycler's combined subsumption (paper §5.2, Algorithm 2) uses it
// to union piecewise selections over overlapping cached intermediates:
// overlapping pieces contribute the same (head, tail) pairs, so
// deduplication by head restores set semantics.
func MergeDedupByHead(parts []*bat.BAT) *bat.BAT {
	switch len(parts) {
	case 0:
		panic("algebra: merge of zero parts")
	case 1:
		return parts[0]
	}
	allSorted := true
	total := 0
	for _, p := range parts {
		total += p.Len()
		if !p.HeadSorted {
			allSorted = false
		}
	}
	if allSorted {
		return mergeSortedParts(parts, total)
	}
	type row struct {
		head bat.Oid
		part int
		pos  int
	}
	rows := make([]row, 0, total)
	for pi, p := range parts {
		n := p.Len()
		for i := 0; i < n; i++ {
			rows = append(rows, row{head: bat.OidAt(p.Head, i), part: pi, pos: i})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].head < rows[j].head })
	// Gather deduplicated rows part-by-part index lists to reuse Gather.
	heads := make([]bat.Oid, 0, len(rows))
	srcPart := make([]int, 0, len(rows))
	srcPos := make([]int, 0, len(rows))
	for i, r := range rows {
		if i > 0 && r.head == rows[i-1].head {
			continue
		}
		heads = append(heads, r.head)
		srcPart = append(srcPart, r.part)
		srcPos = append(srcPos, r.pos)
	}
	tail := gatherTailAcross(parts, srcPart, srcPos)
	out := bat.New(bat.NewOids(heads), tail)
	out.HeadSorted = true
	out.KeyUnique = true
	return out
}

// mergeSortedParts performs a k-way merge of head-sorted parts with
// duplicate elimination — the common case for combined subsumption,
// whose pieces are clipped selects over oid-ordered intermediates.
func mergeSortedParts(parts []*bat.BAT, total int) *bat.BAT {
	pos := make([]int, len(parts))
	heads := make([]bat.Oid, 0, total)
	srcPart := make([]int, 0, total)
	srcPos := make([]int, 0, total)
	for {
		best := -1
		var bestHead bat.Oid
		for pi, p := range parts {
			if pos[pi] >= p.Len() {
				continue
			}
			h := bat.OidAt(p.Head, pos[pi])
			if best < 0 || h < bestHead {
				best, bestHead = pi, h
			}
		}
		if best < 0 {
			break
		}
		if n := len(heads); n == 0 || heads[n-1] != bestHead {
			heads = append(heads, bestHead)
			srcPart = append(srcPart, best)
			srcPos = append(srcPos, pos[best])
		}
		pos[best]++
	}
	out := bat.New(bat.NewOids(heads), gatherTailAcross(parts, srcPart, srcPos))
	out.HeadSorted = true
	out.KeyUnique = true
	return out
}

func gatherTailAcross(parts []*bat.BAT, srcPart, srcPos []int) bat.Vector {
	k := parts[0].Tail.Kind()
	n := len(srcPart)
	switch k {
	case bat.KInt:
		v := make([]int64, n)
		for i := range v {
			v[i] = parts[srcPart[i]].Tail.(*bat.Ints).V[srcPos[i]]
		}
		return bat.NewInts(v)
	case bat.KFloat:
		v := make([]float64, n)
		for i := range v {
			v[i] = parts[srcPart[i]].Tail.(*bat.Floats).V[srcPos[i]]
		}
		return bat.NewFloats(v)
	case bat.KStr:
		v := make([]string, n)
		for i := range v {
			v[i] = parts[srcPart[i]].Tail.(*bat.Strings).V[srcPos[i]]
		}
		return bat.NewStrings(v)
	case bat.KDate:
		v := make([]bat.Date, n)
		for i := range v {
			v[i] = parts[srcPart[i]].Tail.(*bat.Dates).V[srcPos[i]]
		}
		return bat.NewDates(v)
	case bat.KOid:
		v := make([]bat.Oid, n)
		for i := range v {
			v[i] = bat.OidAt(parts[srcPart[i]].Tail, srcPos[i])
		}
		return bat.NewOids(v)
	case bat.KBool:
		v := make([]bool, n)
		for i := range v {
			v[i] = parts[srcPart[i]].Tail.(*bat.Bools).V[srcPos[i]]
		}
		return bat.NewBools(v)
	}
	panic("algebra: merge of unsupported tail kind")
}
