package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

func TestJoinDenseHead(t *testing.T) {
	// L: (h, tail-oid into R), R: dense head -> string.
	l := bat.New(bat.NewOids([]bat.Oid{10, 11, 12}), bat.NewOids([]bat.Oid{2, 0, 5}))
	r := bat.NewDenseHead(bat.NewStrings([]string{"a", "b", "c"}))
	j := Join(l, r)
	if j.Len() != 2 {
		t.Fatalf("join len = %d, want 2 (oid 5 unmatched)", j.Len())
	}
	if bat.OidAt(j.Head, 0) != 10 || j.Tail.Get(0) != "c" {
		t.Fatalf("row0 = %v->%v", bat.OidAt(j.Head, 0), j.Tail.Get(0))
	}
	if bat.OidAt(j.Head, 1) != 11 || j.Tail.Get(1) != "a" {
		t.Fatalf("row1 = %v->%v", bat.OidAt(j.Head, 1), j.Tail.Get(1))
	}
}

func TestJoinHashedHead(t *testing.T) {
	l := bat.New(bat.NewOids([]bat.Oid{1, 2}), bat.NewOids([]bat.Oid{7, 9}))
	r := bat.New(bat.NewOids([]bat.Oid{9, 7, 7}), bat.NewInts([]int64{90, 70, 71}))
	j := Join(l, r)
	// oid 7 matches twice, oid 9 once -> 3 result rows.
	if j.Len() != 3 {
		t.Fatalf("join len = %d, want 3", j.Len())
	}
}

func TestJoinByValue(t *testing.T) {
	l := bat.NewDenseHead(bat.NewInts([]int64{100, 200}))
	r := bat.New(bat.NewInts([]int64{200, 300}), bat.NewStrings([]string{"x", "y"}))
	j := Join(l, r)
	if j.Len() != 1 || j.Tail.Get(0) != "x" || bat.OidAt(j.Head, 0) != 1 {
		t.Fatalf("value join wrong: %s", j.Dump(5))
	}
}

func TestSemijoinAndAnti(t *testing.T) {
	l := bat.New(bat.NewOids([]bat.Oid{1, 2, 3}), bat.NewInts([]int64{10, 20, 30}))
	r := bat.New(bat.NewOids([]bat.Oid{2, 3, 9}), bat.NewInts([]int64{0, 0, 0}))
	s := Semijoin(l, r)
	if s.Len() != 2 || bat.OidAt(s.Head, 0) != 2 {
		t.Fatalf("semijoin wrong: %s", s.Dump(5))
	}
	a := AntiSemijoin(l, r)
	if a.Len() != 1 || bat.OidAt(a.Head, 0) != 1 {
		t.Fatalf("antisemijoin wrong: %s", a.Dump(5))
	}
	// Semijoin with superset right operand is identity.
	if Semijoin(l, l) != l {
		t.Fatal("semijoin with all-matching right should return receiver")
	}
}

func TestKUnique(t *testing.T) {
	b := bat.New(bat.NewOids([]bat.Oid{5, 5, 6, 5}), bat.NewInts([]int64{1, 2, 3, 4}))
	u := KUnique(b)
	if u.Len() != 2 || !u.KeyUnique {
		t.Fatalf("kunique wrong: %s", u.Dump(5))
	}
	if u.Tail.Get(0) != int64(1) || u.Tail.Get(1) != int64(3) {
		t.Fatal("kunique did not keep first occurrences")
	}
}

func TestDeleteHeads(t *testing.T) {
	b := bat.New(bat.NewOids([]bat.Oid{1, 2, 3}), bat.NewInts([]int64{10, 20, 30}))
	out := DeleteHeads(b, map[bat.Oid]struct{}{2: {}})
	if out.Len() != 2 || bat.OidAt(out.Head, 1) != 3 {
		t.Fatalf("DeleteHeads wrong: %s", out.Dump(5))
	}
	if DeleteHeads(b, nil) != b {
		t.Fatal("DeleteHeads with empty set should be identity")
	}
}

// Property: semijoin(L, R) keeps exactly the rows of L whose head is in
// head(R), in order — and the semijoin subsumption condition holds:
// if W ⊆ V then semijoin(semijoin(X, V), W) == semijoin(X, W). (§5.1)
func TestSemijoinSubsumptionEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		heads := make([]bat.Oid, n)
		tails := make([]int64, n)
		for i := range heads {
			heads[i] = bat.Oid(rng.Intn(30))
			tails[i] = rng.Int63n(100)
		}
		x := bat.New(bat.NewOids(heads), bat.NewInts(tails))
		// V: random oid set; W: subset of V.
		var vHeads, wHeads []bat.Oid
		for o := bat.Oid(0); o < 30; o++ {
			if rng.Intn(2) == 0 {
				vHeads = append(vHeads, o)
				if rng.Intn(2) == 0 {
					wHeads = append(wHeads, o)
				}
			}
		}
		v := bat.New(bat.NewOids(vHeads), bat.NewOids(vHeads))
		w := bat.New(bat.NewOids(wHeads), bat.NewOids(wHeads))
		direct := Semijoin(x, w)
		via := Semijoin(Semijoin(x, v), w)
		if direct.Len() != via.Len() {
			return false
		}
		for i := 0; i < direct.Len(); i++ {
			if bat.OidAt(direct.Head, i) != bat.OidAt(via.Head, i) ||
				direct.Tail.Get(i) != via.Tail.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: join over a dense-headed right operand equals the generic
// hash join.
func TestJoinDenseEqualsHash(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nl := rng.Intn(40) + 1
		nr := rng.Intn(40) + 1
		lt := make([]bat.Oid, nl)
		for i := range lt {
			lt[i] = bat.Oid(rng.Intn(nr + 5))
		}
		rt := make([]int64, nr)
		for i := range rt {
			rt[i] = rng.Int63n(100)
		}
		l := bat.New(bat.NewDense(100, nl), bat.NewOids(lt))
		rDense := bat.NewDenseHead(bat.NewInts(rt))
		rMat := bat.New(bat.NewOids(bat.MaterialiseOids(rDense.Head)), bat.NewInts(rt))
		a := Join(l, rDense)
		b := Join(l, rMat)
		if a.Len() != b.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if bat.OidAt(a.Head, i) != bat.OidAt(b.Head, i) || a.Tail.Get(i) != b.Tail.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
