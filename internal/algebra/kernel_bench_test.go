package algebra

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bat"
)

// Size-parameterized kernel benchmarks for the raw-speed pass. Each
// kernel runs at 1e4, 1e5 and 1e6 rows so the benchstat CI artifact
// exposes both the per-row cost (cache-resident sizes) and the
// bandwidth-bound regime. scripts/profile.sh pairs these with a pprof
// capture of the full SkyServer mix.

var kernelSizes = []int{10_000, 100_000, 1_000_000}

func BenchmarkKernelSelect(b *testing.B) {
	for _, n := range kernelSizes {
		data := randInts(n, 11)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				Select(data, int64(1000), int64(1<<19), true, true)
			}
		})
	}
}

func BenchmarkKernelSelectFloat(b *testing.B) {
	for _, n := range kernelSizes {
		data := randFloats(n, 12)
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				Select(data, 45.0, 270.0, true, true)
			}
		})
	}
}

func BenchmarkKernelHashBuild(b *testing.B) {
	for _, n := range kernelSizes {
		rng := rand.New(rand.NewSource(13))
		keys := make([]bat.Oid, n)
		for i := range keys {
			keys[i] = bat.Oid(rng.Intn(n))
		}
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				bat.BuildOids(keys)
			}
		})
	}
}

func BenchmarkKernelJoin(b *testing.B) {
	for _, n := range kernelSizes {
		rng := rand.New(rand.NewSource(14))
		lt := make([]bat.Oid, n)
		for i := range lt {
			lt[i] = bat.Oid(rng.Intn(n / 10))
		}
		l := bat.New(bat.NewDense(0, n), bat.NewOids(lt))
		rh := make([]bat.Oid, n/10)
		rt := make([]int64, n/10)
		for i := range rh {
			rh[i] = bat.Oid(i)
			rt[i] = int64(i)
		}
		r := bat.New(bat.NewOids(rh), bat.NewInts(rt))
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				Join(l, r)
			}
		})
	}
}

func BenchmarkKernelGroup(b *testing.B) {
	for _, n := range kernelSizes {
		rng := rand.New(rand.NewSource(15))
		keys := make([]int64, n)
		for i := range keys {
			keys[i] = int64(rng.Intn(1000))
		}
		kb := bat.NewDenseHead(bat.NewInts(keys))
		b.Run(fmt.Sprintf("rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				GroupNew(kb)
			}
		})
	}
}

// BenchmarkKernelFusedChain compares a three-conjunct select chain run
// as three materializing kernels against the single fused pass — the
// kernel-level view of the interpreter's fusion win.
func BenchmarkKernelFusedChain(b *testing.B) {
	for _, n := range kernelSizes {
		data := randInts(n, 16)
		steps := []FusedStep{
			{Kind: FuseSelect, Lo: int64(1000), Hi: int64(1 << 19), IncLo: true, IncHi: true},
			{Kind: FuseSelect, Lo: int64(2000), Hi: int64(1 << 18), IncLo: true, IncHi: true},
			{Kind: FuseSelect, Lo: int64(4000), Hi: int64(1 << 17), IncLo: true, IncHi: true},
		}
		b.Run(fmt.Sprintf("unfused/rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				s1 := Select(data, int64(1000), int64(1<<19), true, true)
				s2 := Select(s1, int64(2000), int64(1<<18), true, true)
				Select(s2, int64(4000), int64(1<<17), true, true)
			}
		})
		b.Run(fmt.Sprintf("fused/rows=%d", n), func(b *testing.B) {
			b.SetBytes(int64(n * 8))
			for i := 0; i < b.N; i++ {
				FusedSelect(data, steps)
			}
		})
	}
}
