package algebra

import (
	"repro/internal/bat"
)

// Join implements the binary equi-join algebra.join(L, R): it matches
// L's tail values against R's head oids and produces (L.head, R.tail)
// pairs. This is MonetDB's canonical join shape: the left operand ends
// in a column of oids referencing the right operand's head. The result
// preserves L's row order.
func Join(l, r *bat.BAT) *bat.BAT {
	if l.Tail.Kind() != bat.KOid {
		return joinByValue(l, r)
	}
	// Fast path: R has a dense head, so matching is direct indexing.
	if dh, ok := r.Head.(*bat.DenseOids); ok {
		return joinDenseHead(l, r, dh)
	}
	rIdx := bat.BuildHashOnHead(r)
	var li []int
	var ri []int
	n := l.Len()
	for i := 0; i < n; i++ {
		v := bat.OidAt(l.Tail, i)
		for _, p := range rIdx[v] {
			li = append(li, i)
			ri = append(ri, p)
		}
	}
	_ = n
	return gatherJoin(l, r, li, ri)
}

func joinDenseHead(l, r *bat.BAT, dh *bat.DenseOids) *bat.BAT {
	var li, ri []int
	n := l.Len()
	for i := 0; i < n; i++ {
		v := bat.OidAt(l.Tail, i)
		if v >= dh.Start && v < dh.Start+bat.Oid(dh.N) {
			li = append(li, i)
			ri = append(ri, int(v-dh.Start))
		}
	}
	return gatherJoin(l, r, li, ri)
}

// joinByValue joins on value equality between L.tail and R.head when
// the join column is not oid-typed (e.g. joining through a value key).
// R.head must then be a materialised vector of the same kind.
func joinByValue(l, r *bat.BAT) *bat.BAT {
	// Build value -> positions over R's head by viewing it as a tail.
	rv := bat.New(r.Head, r.Head)
	h := bat.BuildHashOnTail(rv)
	var li, ri []int
	n := l.Len()
	for i := 0; i < n; i++ {
		var ps []int
		switch t := l.Tail.(type) {
		case *bat.Ints:
			ps = h.LookupInt(t.V[i])
		case *bat.Strings:
			ps = h.LookupStr(t.V[i])
		case *bat.Dates:
			ps = h.LookupDate(t.V[i])
		case *bat.Floats:
			ps = h.LookupFloat(t.V[i])
		default:
			panic("algebra: joinByValue unsupported tail type")
		}
		for _, p := range ps {
			li = append(li, i)
			ri = append(ri, p)
		}
	}
	return gatherJoin(l, r, li, ri)
}

func gatherJoin(l, r *bat.BAT, li, ri []int) *bat.BAT {
	heads := make([]bat.Oid, len(li))
	for i, p := range li {
		heads[i] = bat.OidAt(l.Head, p)
	}
	out := bat.New(bat.NewOids(heads), bat.GatherVector(r.Tail, ri))
	out.HeadSorted = l.HeadSorted
	return out
}

// Semijoin implements algebra.semijoin(L, R): the rows of L whose head
// oid appears among R's head oids. It preserves L's order.
func Semijoin(l, r *bat.BAT) *bat.BAT {
	set := bat.HeadSet(r)
	idx := make([]int, 0, min(l.Len(), r.Len()))
	n := l.Len()
	for i := 0; i < n; i++ {
		if _, ok := set[bat.OidAt(l.Head, i)]; ok {
			idx = append(idx, i)
		}
	}
	if len(idx) == n {
		return l
	}
	out := bat.Gather(l, idx)
	out.HeadSorted = l.HeadSorted
	out.KeyUnique = l.KeyUnique
	return out
}

// AntiSemijoin returns the rows of L whose head oid does NOT appear
// among R's head oids. Used by delete propagation.
func AntiSemijoin(l, r *bat.BAT) *bat.BAT {
	set := bat.HeadSet(r)
	idx := make([]int, 0, l.Len())
	n := l.Len()
	for i := 0; i < n; i++ {
		if _, ok := set[bat.OidAt(l.Head, i)]; !ok {
			idx = append(idx, i)
		}
	}
	if len(idx) == n {
		return l
	}
	out := bat.Gather(l, idx)
	out.HeadSorted = l.HeadSorted
	out.KeyUnique = l.KeyUnique
	return out
}

// DeleteHeads returns the rows of b whose head oid is not in the given
// set. Used by update invalidation/propagation paths.
func DeleteHeads(b *bat.BAT, dead map[bat.Oid]struct{}) *bat.BAT {
	if len(dead) == 0 {
		return b
	}
	idx := make([]int, 0, b.Len())
	n := b.Len()
	for i := 0; i < n; i++ {
		if _, ok := dead[bat.OidAt(b.Head, i)]; !ok {
			idx = append(idx, i)
		}
	}
	if len(idx) == n {
		return b
	}
	out := bat.Gather(b, idx)
	out.HeadSorted = b.HeadSorted
	return out
}

// KUnique implements bat.kunique: it retains the first occurrence of
// every distinct head value, preserving order. Heads of any base type
// are supported (queries often reverse a value column into the head
// before deduplicating, as in the paper's Fig. 1).
func KUnique(b *bat.BAT) *bat.BAT {
	n := b.Len()
	seen := make(map[any]struct{}, n)
	idx := make([]int, 0, n)
	for i := 0; i < n; i++ {
		h := b.Head.Get(i)
		if _, ok := seen[h]; ok {
			continue
		}
		seen[h] = struct{}{}
		idx = append(idx, i)
	}
	if len(idx) == n {
		out := *b
		out.KeyUnique = true
		return &out
	}
	out := gatherAnyHead(b, idx)
	out.KeyUnique = true
	out.HeadSorted = b.HeadSorted
	return out
}

// gatherAnyHead materialises rows of b at idx, tolerating non-oid
// heads (unlike bat.Gather, which requires oid heads).
func gatherAnyHead(b *bat.BAT, idx []int) *bat.BAT {
	return bat.New(bat.GatherVector(b.Head, idx), bat.GatherVector(b.Tail, idx))
}
