package algebra

import (
	"sort"

	"repro/internal/bat"
)

// Join kernels over the typed chained hash table (bat.Table): build
// sides preallocate from cardinality, probe loops are monomorphized
// per key kind, and match lists are exact-capacity (count-then-fill)
// instead of append-grown. Chain walks enumerate positions in
// ascending order, so results are bit-identical to the historical
// map-based kernels.

// Join implements the binary equi-join algebra.join(L, R): it matches
// L's tail values against R's head oids and produces (L.head, R.tail)
// pairs. This is MonetDB's canonical join shape: the left operand ends
// in a column of oids referencing the right operand's head. The result
// preserves L's row order.
func Join(l, r *bat.BAT) *bat.BAT {
	if l.Tail.Kind() != bat.KOid {
		return joinByValue(l, r)
	}
	// Fast path: R has a dense head, so matching is direct indexing.
	if dh, ok := r.Head.(*bat.DenseOids); ok {
		return joinDenseHead(l, r, dh)
	}
	t := bat.HeadTable(r)
	li, ri := probeJoin(bat.MaterialiseOids(l.Tail), t)
	return gatherJoin(l, r, li, ri)
}

func joinDenseHead(l, r *bat.BAT, dh *bat.DenseOids) *bat.BAT {
	// A dense head is unique, so each left row matches at most once:
	// preallocate both position lists at l.Len() and truncate.
	n := l.Len()
	li := make(bat.SelectionVector, n)
	ri := make(bat.SelectionVector, n)
	j := 0
	lt := bat.MaterialiseOids(l.Tail)
	lim := dh.Start + bat.Oid(dh.N)
	for i, v := range lt {
		li[j] = int32(i)
		ri[j] = int32(v - dh.Start)
		if v >= dh.Start && v < lim {
			j++
		}
	}
	return gatherJoin(l, r, li[:j], ri[:j])
}

// probeJoin probes every key against the table and returns the exact
// match pair lists: li[k] is the probe-side position, ri[k] the
// build-side position. Two passes: count, then fill preallocated.
func probeJoin[K comparable](keys []K, t *bat.Table[K]) (li, ri bat.SelectionVector) {
	total := 0
	for _, k := range keys {
		total += t.Count(k)
	}
	li = make(bat.SelectionVector, total)
	ri = make(bat.SelectionVector, total)
	j := 0
	for i, k := range keys {
		for p := t.First(k); p >= 0; p = t.Next(p, k) {
			li[j] = int32(i)
			ri[j] = p
			j++
		}
	}
	return li, ri
}

// joinByValue joins on value equality between L.tail and R.head when
// the join column is not oid-typed (e.g. joining through a value key).
// R.head must then be a materialised vector of the same kind. The type
// switch is hoisted out of the probe loop: each arm builds a typed
// table over R's head and runs a monomorphized probe.
func joinByValue(l, r *bat.BAT) *bat.BAT {
	var li, ri bat.SelectionVector
	switch lt := l.Tail.(type) {
	case *bat.Ints:
		li, ri = probeJoin(lt.V, bat.BuildInts(r.Head.(*bat.Ints).V))
	case *bat.Strings:
		li, ri = probeJoin(lt.V, bat.BuildStrings(r.Head.(*bat.Strings).V))
	case *bat.Dates:
		li, ri = probeJoin(lt.V, bat.BuildDates(r.Head.(*bat.Dates).V))
	case *bat.Floats:
		li, ri = probeJoin(lt.V, bat.BuildFloats(r.Head.(*bat.Floats).V))
	default:
		panic("algebra: joinByValue unsupported tail type")
	}
	return gatherJoin(l, r, li, ri)
}

func gatherJoin(l, r *bat.BAT, li, ri bat.SelectionVector) *bat.BAT {
	heads := bat.GatherOidsSel(l.Head, li)
	out := bat.New(bat.NewOids(heads), bat.GatherVectorSel(r.Tail, ri))
	out.HeadSorted = l.HeadSorted
	return out
}

// Semijoin implements algebra.semijoin(L, R): the rows of L whose head
// oid appears among R's head oids. It preserves L's order.
//
// When L's head is dense or sorted and R is the smaller side, the
// positions are computed from R in O(|R| log |R|) instead of scanning
// L — the dominant case in projection semijoins, where L is a full
// base column and R a handful of qualifying rows.
func Semijoin(l, r *bat.BAT) *bat.BAT {
	n := l.Len()
	var sel bat.SelectionVector
	switch {
	case n == 0 || r.Len() == 0:
		sel = nil
	case isDenseHead(l) && r.Len() <= n:
		sel = semijoinDense(l.Head.(*bat.DenseOids), r)
	case l.HeadSorted && l.KeyUnique && r.Len() <= n:
		sel = semijoinSortedUnique(l, r)
	default:
		t := bat.HeadTable(r)
		sel = make(bat.SelectionVector, n)
		j := 0
		lh := bat.MaterialiseOids(l.Head)
		for i, v := range lh {
			sel[j] = int32(i)
			if t.Has(v) {
				j++
			}
		}
		sel = sel[:j]
	}
	if len(sel) == n {
		return l
	}
	out := bat.GatherSel(l, sel)
	out.HeadSorted = l.HeadSorted
	out.KeyUnique = l.KeyUnique
	return out
}

func isDenseHead(b *bat.BAT) bool {
	_, ok := b.Head.(*bat.DenseOids)
	return ok
}

// semijoinDense maps R's head oids straight to positions in a dense L
// head (position = oid - start), then sorts and deduplicates. When R's
// head is already sorted and unique the positions come out ascending
// and distinct, so the O(|R| log |R|) sort is skipped entirely.
func semijoinDense(dh *bat.DenseOids, r *bat.BAT) bat.SelectionVector {
	lim := dh.Start + bat.Oid(dh.N)
	sel := make(bat.SelectionVector, r.Len())
	j := 0
	switch rh := r.Head.(type) {
	case *bat.Oids:
		for _, v := range rh.V {
			if v >= dh.Start && v < lim {
				sel[j] = int32(v - dh.Start)
				j++
			}
		}
	case *bat.DenseOids:
		for i := 0; i < rh.N; i++ {
			v := rh.At(i)
			if v >= dh.Start && v < lim {
				sel[j] = int32(v - dh.Start)
				j++
			}
		}
	default:
		panic("bat: semijoin over non-oid head")
	}
	sel = sel[:j]
	if r.HeadSorted && r.KeyUnique {
		return sel
	}
	return sortDedupSel(sel)
}

// semijoinSortedUnique binary-searches each R head oid in L's sorted
// unique head, then sorts and deduplicates the hit positions.
func semijoinSortedUnique(l, r *bat.BAT) bat.SelectionVector {
	lh := bat.MaterialiseOids(l.Head)
	rh := bat.MaterialiseOids(r.Head)
	sel := make(bat.SelectionVector, 0, len(rh))
	for _, v := range rh {
		p := sort.Search(len(lh), func(i int) bool { return lh[i] >= v })
		if p < len(lh) && lh[p] == v {
			sel = append(sel, int32(p))
		}
	}
	if r.HeadSorted && r.KeyUnique {
		return sel
	}
	return sortDedupSel(sel)
}

// sortDedupSel sorts a selection vector ascending and removes
// duplicates in place.
func sortDedupSel(sel bat.SelectionVector) bat.SelectionVector {
	if len(sel) < 2 {
		return sel
	}
	sort.Slice(sel, func(i, j int) bool { return sel[i] < sel[j] })
	j := 1
	for i := 1; i < len(sel); i++ {
		if sel[i] != sel[i-1] {
			sel[j] = sel[i]
			j++
		}
	}
	return sel[:j]
}

// AntiSemijoin returns the rows of L whose head oid does NOT appear
// among R's head oids. Used by delete propagation.
func AntiSemijoin(l, r *bat.BAT) *bat.BAT {
	n := l.Len()
	t := bat.HeadTable(r)
	sel := make(bat.SelectionVector, n)
	j := 0
	lh := bat.MaterialiseOids(l.Head)
	for i, v := range lh {
		sel[j] = int32(i)
		if !t.Has(v) {
			j++
		}
	}
	sel = sel[:j]
	if len(sel) == n {
		return l
	}
	out := bat.GatherSel(l, sel)
	out.HeadSorted = l.HeadSorted
	out.KeyUnique = l.KeyUnique
	return out
}

// DeleteHeads returns the rows of b whose head oid is not in the given
// set. Used by update invalidation/propagation paths.
func DeleteHeads(b *bat.BAT, dead map[bat.Oid]struct{}) *bat.BAT {
	if len(dead) == 0 {
		return b
	}
	n := b.Len()
	sel := make(bat.SelectionVector, n)
	j := 0
	for i := 0; i < n; i++ {
		sel[j] = int32(i)
		if _, ok := dead[bat.OidAt(b.Head, i)]; !ok {
			j++
		}
	}
	sel = sel[:j]
	if len(sel) == n {
		return b
	}
	out := bat.GatherSel(b, sel)
	out.HeadSorted = b.HeadSorted
	return out
}

// KUnique implements bat.kunique: it retains the first occurrence of
// every distinct head value, preserving order. Heads of any base type
// are supported (queries often reverse a value column into the head
// before deduplicating, as in the paper's Fig. 1).
func KUnique(b *bat.BAT) *bat.BAT {
	n := b.Len()
	var sel bat.SelectionVector
	switch h := b.Head.(type) {
	case *bat.DenseOids:
		// Dense heads are unique by construction.
		out := *b
		out.KeyUnique = true
		return &out
	case *bat.Oids:
		sel = kuniqueSel(h.V, bat.HashOid)
	case *bat.Ints:
		sel = kuniqueSel(h.V, bat.HashInt)
	case *bat.Floats:
		sel = kuniqueSel(h.V, bat.HashFloat)
	case *bat.Strings:
		sel = kuniqueSel(h.V, bat.HashStr)
	case *bat.Dates:
		sel = kuniqueSel(h.V, bat.HashDate)
	case *bat.Bools:
		sel = kuniqueSel(h.V, bat.HashBool)
	default:
		panic("algebra: kunique over unsupported head type")
	}
	if len(sel) == n {
		out := *b
		out.KeyUnique = true
		return &out
	}
	out := bat.New(bat.GatherVectorSel(b.Head, sel), bat.GatherVectorSel(b.Tail, sel))
	out.KeyUnique = true
	out.HeadSorted = b.HeadSorted
	return out
}

// kuniqueSel keeps position i iff it is the first occurrence of its
// key: build the chained table once, then a position is first exactly
// when the table's chain for its key starts at it. A probe that finds
// nothing (possible only for keys that are != themselves, i.e. float
// NaN) keeps the row — interface-keyed maps behaved the same way, so
// every nil float was retained as distinct.
func kuniqueSel[K comparable](keys []K, hash func(K) uint64) bat.SelectionVector {
	t := bat.NewTable(keys, hash)
	sel := make(bat.SelectionVector, len(keys))
	j := 0
	for i, k := range keys {
		sel[j] = int32(i)
		if f := t.First(k); f == int32(i) || f < 0 {
			j++
		}
	}
	return sel[:j]
}
