package algebra

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/bat"
)

// Range selection kernels. The scan paths are monomorphized per vector
// kind and run branch-free inner loops over the typed slices directly
// (store position, conditionally advance — no Get(i) any boxing, no
// append growth). Bounds are normalised once per call into a closed
// typed interval whose low end already excludes the type's nil
// sentinel, so the hot loop is two comparisons per element.

// Select implements the range selection algebra.select(b, lo, hi,
// incLo, incHi): it returns the (head, tail) pairs of b whose tail
// value falls in the given range. A nil bound means unbounded on that
// side. Nil tail values never qualify. On tail-sorted BATs the
// selection degrades to a binary search returning a view, matching the
// paper's observation that range selects over ordered columns are
// near-zero cost (§2.3).
func Select(b *bat.BAT, lo, hi any, incLo, incHi bool) *bat.BAT {
	if b.TailSorted && sortedRangeApplies(b.Tail, lo, hi) {
		return selectSortedRange(b, lo, hi, incLo, incHi)
	}
	sel := rangeSel(b.Tail, lo, hi, incLo, incHi)
	out := bat.GatherSel(b, sel)
	out.HeadSorted = b.HeadSorted
	out.KeyUnique = b.KeyUnique
	return out
}

// sortedRangeApplies reports whether the binary-search fast path is
// valid for the given bounds. With both bounds set it always is. With
// an open bound it holds only for kinds whose nil sentinel occupies an
// end of the sort order (ints and dates: nil is the type minimum, a
// prefix of the sorted column; oids: nil is the maximum, a suffix).
// Float nil is NaN and string nil "\x00" sorts above "", so open-bound
// selects on those fall back to the scan, which skips nils explicitly.
func sortedRangeApplies(tail bat.Vector, lo, hi any) bool {
	if lo != nil && hi != nil {
		return true
	}
	switch tail.(type) {
	case *bat.Ints, *bat.Dates, *bat.Oids, *bat.DenseOids:
		return true
	}
	return false
}

// selectSortedRange binary-searches the sorted tail for the qualifying
// run and returns it as a zero-copy view. Open bounds clamp to the
// first non-nil element (nils sort to one end for the kinds routed
// here; see sortedRangeApplies).
func selectSortedRange(b *bat.BAT, lo, hi any, incLo, incHi bool) *bat.BAT {
	n := b.Len()
	var start, end int
	switch t := b.Tail.(type) {
	case *bat.Ints:
		start, end = sortedBounds(t.V, bat.NilInt+1, math.MaxInt64, asInt(lo), asInt(hi), incLo, incHi)
	case *bat.Dates:
		start, end = sortedBounds(t.V, bat.NilDate+1, bat.Date(math.MaxInt32), asDate(lo), asDate(hi), incLo, incHi)
	case *bat.Oids:
		start, end = sortedBounds(t.V, 0, bat.NilOid-1, asOid(lo), asOid(hi), incLo, incHi)
	case *bat.DenseOids:
		r := normOidRange(lo, hi, incLo, incHi)
		start, end = denseOidRange(t, r)
	case *bat.Floats:
		// Seed-compatible closed-bound search: comparisons go through
		// cmpOrdered so NaN (nil) compares "equal" to any bound, as the
		// boxed Cmp path did.
		start = sort.Search(n, func(i int) bool {
			c := cmpOrdered(t.V[i], lo.(float64))
			if incLo {
				return c >= 0
			}
			return c > 0
		})
		end = sort.Search(n, func(i int) bool {
			c := cmpOrdered(t.V[i], hi.(float64))
			if incHi {
				return c > 0
			}
			return c >= 0
		})
	default:
		at := func(i int) any { return b.Tail.Get(i) }
		start = sort.Search(n, func(i int) bool {
			c := Cmp(at(i), lo)
			if incLo {
				return c >= 0
			}
			return c > 0
		})
		end = sort.Search(n, func(i int) bool {
			c := Cmp(at(i), hi)
			if incHi {
				return c > 0
			}
			return c >= 0
		})
	}
	if end < start {
		end = start
	}
	out := b.Slice(start, end)
	out.TailSorted = true
	return out
}

// sortedBounds finds [start, end) of the qualifying run in a sorted
// typed slice. nilLo/nilHi are the open-bound substitutes: the
// smallest and largest non-nil values of the kind.
func sortedBounds[T int64 | bat.Date | bat.Oid](v []T, nilLo, nilHi T, lo, hi *T, incLo, incHi bool) (int, int) {
	n := len(v)
	lov, hiv := nilLo, nilHi
	loInc, hiInc := true, true
	if lo != nil {
		lov, loInc = *lo, incLo
		if lov < nilLo {
			lov, loInc = nilLo, true
		}
	}
	if hi != nil {
		hiv, hiInc = *hi, incHi
		if hiv > nilHi {
			hiv, hiInc = nilHi, true
		}
	}
	start := sort.Search(n, func(i int) bool {
		if loInc {
			return v[i] >= lov
		}
		return v[i] > lov
	})
	end := sort.Search(n, func(i int) bool {
		if hiInc {
			return v[i] > hiv
		}
		return v[i] >= hiv
	})
	return start, end
}

func asInt(v any) *int64 {
	if v == nil {
		return nil
	}
	x := v.(int64)
	return &x
}

func asDate(v any) *bat.Date {
	if v == nil {
		return nil
	}
	x := v.(bat.Date)
	return &x
}

func asOid(v any) *bat.Oid {
	if v == nil {
		return nil
	}
	x := v.(bat.Oid)
	return &x
}

// --- normalised typed ranges ---------------------------------------------
//
// Each range is a closed interval [lo, hi] in the kind's domain with
// the nil sentinel already excluded, so scan loops need exactly two
// comparisons and no nil test. empty short-circuits contradictory
// bounds (e.g. an exclusive bound at the domain edge).

type intRange struct {
	lo, hi int64
	empty  bool
}

func normIntRange(lo, hi any, incLo, incHi bool) intRange {
	r := intRange{lo: bat.NilInt + 1, hi: math.MaxInt64}
	if lo != nil {
		v := lo.(int64)
		if !incLo {
			if v == math.MaxInt64 {
				r.empty = true
				return r
			}
			v++
		}
		if v > r.lo {
			r.lo = v
		}
	}
	if hi != nil {
		v := hi.(int64)
		if !incHi {
			if v == math.MinInt64 {
				r.empty = true
				return r
			}
			v--
		}
		if v < r.hi {
			r.hi = v
		}
	}
	r.empty = r.lo > r.hi
	return r
}

type dateRange struct {
	lo, hi bat.Date
	empty  bool
}

func normDateRange(lo, hi any, incLo, incHi bool) dateRange {
	r := dateRange{lo: bat.NilDate + 1, hi: bat.Date(math.MaxInt32)}
	if lo != nil {
		v := lo.(bat.Date)
		if !incLo {
			if v == bat.Date(math.MaxInt32) {
				r.empty = true
				return r
			}
			v++
		}
		if v > r.lo {
			r.lo = v
		}
	}
	if hi != nil {
		v := hi.(bat.Date)
		if !incHi {
			if v == bat.Date(math.MinInt32) {
				r.empty = true
				return r
			}
			v--
		}
		if v < r.hi {
			r.hi = v
		}
	}
	r.empty = r.lo > r.hi
	return r
}

type oidRange struct {
	lo, hi bat.Oid
	empty  bool
}

func normOidRange(lo, hi any, incLo, incHi bool) oidRange {
	r := oidRange{lo: 0, hi: bat.NilOid - 1}
	if lo != nil {
		v := lo.(bat.Oid)
		if !incLo {
			if v == bat.NilOid {
				r.empty = true
				return r
			}
			v++
		}
		if v > r.lo {
			r.lo = v
		}
	}
	if hi != nil {
		v := hi.(bat.Oid)
		if !incHi {
			if v == 0 {
				r.empty = true
				return r
			}
			v--
		}
		if v < r.hi {
			r.hi = v
		}
	}
	r.empty = r.lo > r.hi
	return r
}

type fltRange struct {
	lo, hi float64
	empty  bool
}

func normFltRange(lo, hi any, incLo, incHi bool) fltRange {
	r := fltRange{lo: math.Inf(-1), hi: math.Inf(1)}
	if lo != nil {
		v := lo.(float64)
		if !incLo {
			if math.IsInf(v, 1) {
				r.empty = true
				return r
			}
			v = math.Nextafter(v, math.Inf(1))
		}
		if v > r.lo {
			r.lo = v
		}
	}
	if hi != nil {
		v := hi.(float64)
		if !incHi {
			if math.IsInf(v, -1) {
				r.empty = true
				return r
			}
			v = math.Nextafter(v, math.Inf(-1))
		}
		if v < r.hi {
			r.hi = v
		}
	}
	r.empty = r.lo > r.hi
	return r
}

// denseOidRange intersects a dense oid run with a normalised range,
// returning positional [start, end).
func denseOidRange(t *bat.DenseOids, r oidRange) (int, int) {
	if r.empty || t.N == 0 {
		return 0, 0
	}
	start, end := 0, t.N
	if r.lo > t.Start {
		start = int(r.lo - t.Start)
		if start > t.N {
			start = t.N
		}
	}
	last := t.Start + bat.Oid(t.N-1)
	if r.hi < last {
		end = t.N - int(last-r.hi)
		if end < 0 {
			end = 0
		}
	}
	if end < start {
		end = start
	}
	return start, end
}

// rangeSel scans the tail and returns the qualifying positions. The
// per-kind loops are branch-free: store the candidate position, then
// advance the write cursor only when the predicate holds.
func rangeSel(tail bat.Vector, lo, hi any, incLo, incHi bool) bat.SelectionVector {
	switch t := tail.(type) {
	case *bat.Ints:
		r := normIntRange(lo, hi, incLo, incHi)
		if r.empty {
			return nil
		}
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			if v >= r.lo && v <= r.hi {
				j++
			}
		}
		return sel[:j]
	case *bat.Floats:
		r := normFltRange(lo, hi, incLo, incHi)
		if r.empty {
			return nil
		}
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, v := range t.V {
			// NaN (the float nil) fails both comparisons.
			sel[j] = int32(i)
			if v >= r.lo && v <= r.hi {
				j++
			}
		}
		return sel[:j]
	case *bat.Dates:
		r := normDateRange(lo, hi, incLo, incHi)
		if r.empty {
			return nil
		}
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			if v >= r.lo && v <= r.hi {
				j++
			}
		}
		return sel[:j]
	case *bat.Oids:
		r := normOidRange(lo, hi, incLo, incHi)
		if r.empty {
			return nil
		}
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			if v >= r.lo && v <= r.hi {
				j++
			}
		}
		return sel[:j]
	case *bat.DenseOids:
		r := normOidRange(lo, hi, incLo, incHi)
		start, end := denseOidRange(t, r)
		sel := make(bat.SelectionVector, end-start)
		for i := range sel {
			sel[i] = int32(start + i)
		}
		return sel
	case *bat.Strings:
		return scanStringsRange(t.V, lo, hi, incLo, incHi, nil)
	case *bat.Bools:
		return scanBoolsRange(t.V, lo, hi, incLo, incHi, nil)
	default:
		panic(fmt.Sprintf("algebra: select over unsupported tail %T", tail))
	}
}

// scanStringsRange selects string positions in range; when sel is
// non-nil only those positions are considered (fusion refinement).
// String compares dominate, so the loop keeps plain branches.
func scanStringsRange(v []string, lo, hi any, incLo, incHi bool, sel bat.SelectionVector) bat.SelectionVector {
	var lov, hiv string
	if lo != nil {
		lov = lo.(string)
	}
	if hi != nil {
		hiv = hi.(string)
	}
	keep := func(x string) bool {
		if x == bat.NilStr {
			return false
		}
		if lo != nil {
			if incLo {
				if x < lov {
					return false
				}
			} else if x <= lov {
				return false
			}
		}
		if hi != nil {
			if incHi {
				if x > hiv {
					return false
				}
			} else if x >= hiv {
				return false
			}
		}
		return true
	}
	if sel == nil {
		out := make(bat.SelectionVector, 0, len(v)/4+1)
		for i, x := range v {
			if keep(x) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	j := 0
	for _, p := range sel {
		if keep(v[p]) {
			sel[j] = p
			j++
		}
	}
	return sel[:j]
}

// scanBoolsRange mirrors the seed's bool range semantics (false < true,
// no nil representation).
func scanBoolsRange(v []bool, lo, hi any, incLo, incHi bool, sel bat.SelectionVector) bat.SelectionVector {
	keep := func(x bool) bool {
		if lo != nil && Cmp(x, lo) < 0 {
			return false
		}
		if hi != nil && Cmp(x, hi) > 0 {
			return false
		}
		return true
	}
	if sel == nil {
		out := make(bat.SelectionVector, 0, len(v))
		for i, x := range v {
			if keep(x) {
				out = append(out, int32(i))
			}
		}
		return out
	}
	j := 0
	for _, p := range sel {
		if keep(v[p]) {
			sel[j] = p
			j++
		}
	}
	return sel[:j]
}

// Uselect implements the equality selection algebra.uselect(b, v):
// the rows of b whose tail equals v. The result's tail shares the
// head's storage (the tail carries no information, as with MonetDB's
// void-tailed uselect results). Sorted tails binary-search the
// equality run instead of scanning.
func Uselect(b *bat.BAT, v any) *bat.BAT {
	var heads []bat.Oid
	if b.TailSorted && uselectSortedApplies(b.Tail) {
		start, end := sortedEqualRun(b.Tail, v)
		heads = make([]bat.Oid, end-start)
		switch h := b.Head.(type) {
		case *bat.Oids:
			copy(heads, h.V[start:end])
		case *bat.DenseOids:
			for i := range heads {
				heads[i] = h.Start + bat.Oid(start+i)
			}
		default:
			for i := range heads {
				heads[i] = bat.OidAt(b.Head, start+i)
			}
		}
	} else {
		sel := equalitySel(b.Tail, v)
		heads = bat.GatherOidsSel(b.Head, sel)
	}
	hv := bat.NewOids(heads)
	out := bat.New(hv, hv.Slice(0, len(heads)))
	out.HeadSorted = b.HeadSorted
	out.KeyUnique = b.KeyUnique
	return out
}

// uselectSortedApplies restricts the sorted equality fast path to
// kinds with total order under ==; float columns may contain NaN,
// which breaks binary-search invariants, so they scan.
func uselectSortedApplies(tail bat.Vector) bool {
	switch tail.(type) {
	case *bat.Ints, *bat.Dates, *bat.Oids, *bat.DenseOids, *bat.Strings:
		return true
	}
	return false
}

// sortedEqualRun returns positional [start, end) of tail values == v.
func sortedEqualRun(tail bat.Vector, v any) (int, int) {
	switch t := tail.(type) {
	case *bat.Ints:
		w := v.(int64)
		start := sort.Search(len(t.V), func(i int) bool { return t.V[i] >= w })
		end := sort.Search(len(t.V), func(i int) bool { return t.V[i] > w })
		return start, end
	case *bat.Dates:
		w := v.(bat.Date)
		start := sort.Search(len(t.V), func(i int) bool { return t.V[i] >= w })
		end := sort.Search(len(t.V), func(i int) bool { return t.V[i] > w })
		return start, end
	case *bat.Oids:
		w := v.(bat.Oid)
		start := sort.Search(len(t.V), func(i int) bool { return t.V[i] >= w })
		end := sort.Search(len(t.V), func(i int) bool { return t.V[i] > w })
		return start, end
	case *bat.Strings:
		w := v.(string)
		start := sort.Search(len(t.V), func(i int) bool { return t.V[i] >= w })
		end := sort.Search(len(t.V), func(i int) bool { return t.V[i] > w })
		return start, end
	case *bat.DenseOids:
		w := v.(bat.Oid)
		if w >= t.Start && w < t.Start+bat.Oid(t.N) {
			p := int(w - t.Start)
			return p, p + 1
		}
		return 0, 0
	}
	panic("algebra: sortedEqualRun on unsupported tail")
}

// equalitySel scans the tail for positions equal to v. Branch-free
// store-then-advance loops per kind; matches the seed's semantics (nil
// sentinels are NOT excluded — equality with the sentinel matches it).
func equalitySel(tail bat.Vector, v any) bat.SelectionVector {
	switch t := tail.(type) {
	case *bat.Ints:
		w := v.(int64)
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, x := range t.V {
			sel[j] = int32(i)
			if x == w {
				j++
			}
		}
		return sel[:j]
	case *bat.Strings:
		w := v.(string)
		sel := make(bat.SelectionVector, 0, 8)
		for i, x := range t.V {
			if x == w {
				sel = append(sel, int32(i))
			}
		}
		return sel
	case *bat.Dates:
		w := v.(bat.Date)
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, x := range t.V {
			sel[j] = int32(i)
			if x == w {
				j++
			}
		}
		return sel[:j]
	case *bat.Floats:
		w := v.(float64)
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, x := range t.V {
			sel[j] = int32(i)
			if x == w {
				j++
			}
		}
		return sel[:j]
	case *bat.Oids:
		w := v.(bat.Oid)
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, x := range t.V {
			sel[j] = int32(i)
			if x == w {
				j++
			}
		}
		return sel[:j]
	case *bat.DenseOids:
		w := v.(bat.Oid)
		if w >= t.Start && w < t.Start+bat.Oid(t.N) {
			return bat.SelectionVector{int32(w - t.Start)}
		}
		return nil
	case *bat.Bools:
		w := v.(bool)
		sel := make(bat.SelectionVector, len(t.V))
		j := 0
		for i, x := range t.V {
			sel[j] = int32(i)
			if x == w {
				j++
			}
		}
		return sel[:j]
	default:
		panic(fmt.Sprintf("algebra: uselect over unsupported tail %T", tail))
	}
}

// SelectNotNil implements algebra.selectNotNil: rows whose tail is not
// the type's nil sentinel.
func SelectNotNil(b *bat.BAT) *bat.BAT {
	n := b.Len()
	var sel bat.SelectionVector
	switch t := b.Tail.(type) {
	case *bat.Ints:
		sel = make(bat.SelectionVector, n)
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			if v != bat.NilInt {
				j++
			}
		}
		sel = sel[:j]
	case *bat.Floats:
		sel = make(bat.SelectionVector, n)
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			// v == v is false exactly for NaN, the float nil.
			if v == v {
				j++
			}
		}
		sel = sel[:j]
	case *bat.Strings:
		sel = make(bat.SelectionVector, n)
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			if v != bat.NilStr {
				j++
			}
		}
		sel = sel[:j]
	case *bat.Dates:
		sel = make(bat.SelectionVector, n)
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			if v != bat.NilDate {
				j++
			}
		}
		sel = sel[:j]
	case *bat.Oids:
		sel = make(bat.SelectionVector, n)
		j := 0
		for i, v := range t.V {
			sel[j] = int32(i)
			if v != bat.NilOid {
				j++
			}
		}
		sel = sel[:j]
	default:
		return b
	}
	if len(sel) == n {
		return b
	}
	out := bat.GatherSel(b, sel)
	out.HeadSorted = b.HeadSorted
	return out
}

// LikeSelect implements string pattern selection with SQL LIKE
// semantics ('%' matches any run, '_' any single character). It
// returns the qualifying (head, tail) pairs.
func LikeSelect(b *bat.BAT, pattern string) *bat.BAT {
	t, ok := b.Tail.(*bat.Strings)
	if !ok {
		panic("algebra: likeselect over non-string tail")
	}
	m := CompileLike(pattern)
	sel := make(bat.SelectionVector, 0, b.Len()/8+1)
	for i, v := range t.V {
		if v != bat.NilStr && m.Match(v) {
			sel = append(sel, int32(i))
		}
	}
	out := bat.GatherSel(b, sel)
	out.HeadSorted = b.HeadSorted
	return out
}

// NotLikeSelect returns the rows whose string tail does NOT match the
// LIKE pattern (nils excluded), the complement of LikeSelect.
func NotLikeSelect(b *bat.BAT, pattern string) *bat.BAT {
	t, ok := b.Tail.(*bat.Strings)
	if !ok {
		panic("algebra: notlikeselect over non-string tail")
	}
	m := CompileLike(pattern)
	sel := make(bat.SelectionVector, 0, b.Len())
	for i, v := range t.V {
		if v != bat.NilStr && !m.Match(v) {
			sel = append(sel, int32(i))
		}
	}
	out := bat.GatherSel(b, sel)
	out.HeadSorted = b.HeadSorted
	return out
}

// LikeMatcher matches SQL LIKE patterns without regexp.
type LikeMatcher struct {
	pattern string
}

// CompileLike prepares a matcher for the given LIKE pattern.
func CompileLike(pattern string) *LikeMatcher { return &LikeMatcher{pattern: pattern} }

// Match reports whether s matches the pattern.
func (m *LikeMatcher) Match(s string) bool { return likeMatch(m.pattern, s) }

func likeMatch(p, s string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// LikeLiteral extracts the longest literal run of a LIKE pattern (the
// pattern with wildcards stripped). Used by the recycler's like
// subsumption test: if pat1 = %lit1% and lit1 is a substring of the
// literal of pat2, every match of pat2 matches pat1.
func LikeLiteral(pattern string) (lit string, pureInfix bool) {
	pureInfix = len(pattern) >= 2 && pattern[0] == '%' && pattern[len(pattern)-1] == '%'
	var cur, best []byte
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if c == '%' || c == '_' {
			if len(cur) > len(best) {
				best = cur
			}
			cur = nil
			if c == '_' {
				pureInfix = false
			}
			continue
		}
		cur = append(cur, c)
	}
	if len(cur) > len(best) {
		best = cur
	}
	if pureInfix {
		// pure infix means the pattern is exactly %lit%
		inner := pattern[1 : len(pattern)-1]
		for i := 0; i < len(inner); i++ {
			if inner[i] == '%' || inner[i] == '_' {
				pureInfix = false
				break
			}
		}
	}
	return string(best), pureInfix
}
