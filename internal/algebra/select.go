package algebra

import (
	"fmt"
	"sort"

	"repro/internal/bat"
)

// Select implements the range selection algebra.select(b, lo, hi,
// incLo, incHi): it returns the (head, tail) pairs of b whose tail
// value falls in the given range. A nil bound means unbounded on that
// side. Nil tail values never qualify. On tail-sorted BATs the
// selection degrades to a binary search returning a view, matching the
// paper's observation that range selects over ordered columns are
// near-zero cost (§2.3).
func Select(b *bat.BAT, lo, hi any, incLo, incHi bool) *bat.BAT {
	if b.TailSorted && lo != nil && hi != nil {
		return selectSortedRange(b, lo, hi, incLo, incHi)
	}
	idx := make([]int, 0, b.Len()/4+1)
	scanRange(b.Tail, lo, hi, incLo, incHi, func(i int) { idx = append(idx, i) })
	out := bat.Gather(b, idx)
	out.HeadSorted = b.HeadSorted
	out.KeyUnique = b.KeyUnique
	return out
}

func selectSortedRange(b *bat.BAT, lo, hi any, incLo, incHi bool) *bat.BAT {
	n := b.Len()
	at := func(i int) any { return b.Tail.Get(i) }
	start := sort.Search(n, func(i int) bool {
		c := Cmp(at(i), lo)
		if incLo {
			return c >= 0
		}
		return c > 0
	})
	end := sort.Search(n, func(i int) bool {
		c := Cmp(at(i), hi)
		if incHi {
			return c > 0
		}
		return c >= 0
	})
	if end < start {
		end = start
	}
	out := b.Slice(start, end)
	out.TailSorted = true
	return out
}

// scanRange calls yield(i) for every position whose tail value lies in
// [lo, hi] respecting inclusiveness; nil bounds are open.
func scanRange(tail bat.Vector, lo, hi any, incLo, incHi bool, yield func(int)) {
	inLo := func(c int) bool {
		if incLo {
			return c >= 0
		}
		return c > 0
	}
	inHi := func(c int) bool {
		if incHi {
			return c <= 0
		}
		return c < 0
	}
	switch t := tail.(type) {
	case *bat.Ints:
		var lov, hiv int64
		if lo != nil {
			lov = lo.(int64)
		}
		if hi != nil {
			hiv = hi.(int64)
		}
		for i, v := range t.V {
			if v == bat.NilInt {
				continue
			}
			if lo != nil && !inLo(cmpOrdered(v, lov)) {
				continue
			}
			if hi != nil && !inHi(cmpOrdered(v, hiv)) {
				continue
			}
			yield(i)
		}
	case *bat.Floats:
		var lov, hiv float64
		if lo != nil {
			lov = lo.(float64)
		}
		if hi != nil {
			hiv = hi.(float64)
		}
		for i, v := range t.V {
			if bat.IsNilFloat(v) {
				continue
			}
			if lo != nil && !inLo(cmpOrdered(v, lov)) {
				continue
			}
			if hi != nil && !inHi(cmpOrdered(v, hiv)) {
				continue
			}
			yield(i)
		}
	case *bat.Dates:
		var lov, hiv bat.Date
		if lo != nil {
			lov = lo.(bat.Date)
		}
		if hi != nil {
			hiv = hi.(bat.Date)
		}
		for i, v := range t.V {
			if v == bat.NilDate {
				continue
			}
			if lo != nil && !inLo(cmpOrdered(v, lov)) {
				continue
			}
			if hi != nil && !inHi(cmpOrdered(v, hiv)) {
				continue
			}
			yield(i)
		}
	case *bat.Strings:
		var lov, hiv string
		if lo != nil {
			lov = lo.(string)
		}
		if hi != nil {
			hiv = hi.(string)
		}
		for i, v := range t.V {
			if v == bat.NilStr {
				continue
			}
			if lo != nil && !inLo(Cmp(v, lov)) {
				continue
			}
			if hi != nil && !inHi(Cmp(v, hiv)) {
				continue
			}
			yield(i)
		}
	case *bat.Oids:
		var lov, hiv bat.Oid
		if lo != nil {
			lov = lo.(bat.Oid)
		}
		if hi != nil {
			hiv = hi.(bat.Oid)
		}
		for i, v := range t.V {
			if v == bat.NilOid {
				continue
			}
			if lo != nil && !inLo(cmpOrdered(v, lov)) {
				continue
			}
			if hi != nil && !inHi(cmpOrdered(v, hiv)) {
				continue
			}
			yield(i)
		}
	case *bat.DenseOids:
		for i := 0; i < t.N; i++ {
			v := t.At(i)
			if lo != nil && !inLo(cmpOrdered(v, lo.(bat.Oid))) {
				continue
			}
			if hi != nil && !inHi(cmpOrdered(v, hi.(bat.Oid))) {
				continue
			}
			yield(i)
		}
	case *bat.Bools:
		for i, v := range t.V {
			if lo != nil && Cmp(v, lo) < 0 {
				continue
			}
			if hi != nil && Cmp(v, hi) > 0 {
				continue
			}
			yield(i)
		}
	default:
		panic(fmt.Sprintf("algebra: select over unsupported tail %T", tail))
	}
}

// Uselect implements the equality selection algebra.uselect(b, v):
// the rows of b whose tail equals v. The result's tail shares the
// head's storage (the tail carries no information, as with MonetDB's
// void-tailed uselect results).
func Uselect(b *bat.BAT, v any) *bat.BAT {
	idx := equalityPositions(b.Tail, v)
	heads := make([]bat.Oid, len(idx))
	for i, p := range idx {
		heads[i] = bat.OidAt(b.Head, p)
	}
	hv := bat.NewOids(heads)
	out := bat.New(hv, hv.Slice(0, len(heads)))
	out.HeadSorted = b.HeadSorted
	out.KeyUnique = b.KeyUnique
	return out
}

func equalityPositions(tail bat.Vector, v any) []int {
	var idx []int
	switch t := tail.(type) {
	case *bat.Ints:
		w := v.(int64)
		for i, x := range t.V {
			if x == w {
				idx = append(idx, i)
			}
		}
	case *bat.Strings:
		w := v.(string)
		for i, x := range t.V {
			if x == w {
				idx = append(idx, i)
			}
		}
	case *bat.Dates:
		w := v.(bat.Date)
		for i, x := range t.V {
			if x == w {
				idx = append(idx, i)
			}
		}
	case *bat.Floats:
		w := v.(float64)
		for i, x := range t.V {
			if x == w {
				idx = append(idx, i)
			}
		}
	case *bat.Oids:
		w := v.(bat.Oid)
		for i, x := range t.V {
			if x == w {
				idx = append(idx, i)
			}
		}
	case *bat.DenseOids:
		w := v.(bat.Oid)
		if w >= t.Start && w < t.Start+bat.Oid(t.N) {
			idx = append(idx, int(w-t.Start))
		}
	case *bat.Bools:
		w := v.(bool)
		for i, x := range t.V {
			if x == w {
				idx = append(idx, i)
			}
		}
	default:
		panic(fmt.Sprintf("algebra: uselect over unsupported tail %T", tail))
	}
	return idx
}

// SelectNotNil implements algebra.selectNotNil: rows whose tail is not
// the type's nil sentinel.
func SelectNotNil(b *bat.BAT) *bat.BAT {
	idx := make([]int, 0, b.Len())
	n := b.Len()
	switch t := b.Tail.(type) {
	case *bat.Ints:
		for i, v := range t.V {
			if v != bat.NilInt {
				idx = append(idx, i)
			}
		}
	case *bat.Floats:
		for i, v := range t.V {
			if !bat.IsNilFloat(v) {
				idx = append(idx, i)
			}
		}
	case *bat.Strings:
		for i, v := range t.V {
			if v != bat.NilStr {
				idx = append(idx, i)
			}
		}
	case *bat.Dates:
		for i, v := range t.V {
			if v != bat.NilDate {
				idx = append(idx, i)
			}
		}
	case *bat.Oids:
		for i, v := range t.V {
			if v != bat.NilOid {
				idx = append(idx, i)
			}
		}
	default:
		for i := 0; i < n; i++ {
			idx = append(idx, i)
		}
	}
	if len(idx) == n {
		return b
	}
	out := bat.Gather(b, idx)
	out.HeadSorted = b.HeadSorted
	return out
}

// LikeSelect implements string pattern selection with SQL LIKE
// semantics ('%' matches any run, '_' any single character). It
// returns the qualifying (head, tail) pairs.
func LikeSelect(b *bat.BAT, pattern string) *bat.BAT {
	t, ok := b.Tail.(*bat.Strings)
	if !ok {
		panic("algebra: likeselect over non-string tail")
	}
	m := CompileLike(pattern)
	idx := make([]int, 0, b.Len()/8+1)
	for i, v := range t.V {
		if v != bat.NilStr && m.Match(v) {
			idx = append(idx, i)
		}
	}
	out := bat.Gather(b, idx)
	out.HeadSorted = b.HeadSorted
	return out
}

// NotLikeSelect returns the rows whose string tail does NOT match the
// LIKE pattern (nils excluded), the complement of LikeSelect.
func NotLikeSelect(b *bat.BAT, pattern string) *bat.BAT {
	t, ok := b.Tail.(*bat.Strings)
	if !ok {
		panic("algebra: notlikeselect over non-string tail")
	}
	m := CompileLike(pattern)
	idx := make([]int, 0, b.Len())
	for i, v := range t.V {
		if v != bat.NilStr && !m.Match(v) {
			idx = append(idx, i)
		}
	}
	out := bat.Gather(b, idx)
	out.HeadSorted = b.HeadSorted
	return out
}

// LikeMatcher matches SQL LIKE patterns without regexp.
type LikeMatcher struct {
	pattern string
}

// CompileLike prepares a matcher for the given LIKE pattern.
func CompileLike(pattern string) *LikeMatcher { return &LikeMatcher{pattern: pattern} }

// Match reports whether s matches the pattern.
func (m *LikeMatcher) Match(s string) bool { return likeMatch(m.pattern, s) }

func likeMatch(p, s string) bool {
	// Iterative two-pointer algorithm with backtracking on '%'.
	pi, si := 0, 0
	star, mark := -1, 0
	for si < len(s) {
		switch {
		case pi < len(p) && (p[pi] == '_' || p[pi] == s[si]):
			pi++
			si++
		case pi < len(p) && p[pi] == '%':
			star = pi
			mark = si
			pi++
		case star >= 0:
			pi = star + 1
			mark++
			si = mark
		default:
			return false
		}
	}
	for pi < len(p) && p[pi] == '%' {
		pi++
	}
	return pi == len(p)
}

// LikeLiteral extracts the longest literal run of a LIKE pattern (the
// pattern with wildcards stripped). Used by the recycler's like
// subsumption test: if pat1 = %lit1% and lit1 is a substring of the
// literal of pat2, every match of pat2 matches pat1.
func LikeLiteral(pattern string) (lit string, pureInfix bool) {
	pureInfix = len(pattern) >= 2 && pattern[0] == '%' && pattern[len(pattern)-1] == '%'
	var cur, best []byte
	for i := 0; i < len(pattern); i++ {
		c := pattern[i]
		if c == '%' || c == '_' {
			if len(cur) > len(best) {
				best = cur
			}
			cur = nil
			if c == '_' {
				pureInfix = false
			}
			continue
		}
		cur = append(cur, c)
	}
	if len(cur) > len(best) {
		best = cur
	}
	if pureInfix {
		// pure infix means the pattern is exactly %lit%
		inner := pattern[1 : len(pattern)-1]
		for i := 0; i < len(inner); i++ {
			if inner[i] == '%' || inner[i] == '_' {
				pureInfix = false
				break
			}
		}
	}
	return string(best), pureInfix
}
