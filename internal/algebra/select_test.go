package algebra

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

func intBAT(vals ...int64) *bat.BAT { return bat.NewDenseHead(bat.NewInts(vals)) }

func TestSelectIntRange(t *testing.T) {
	b := intBAT(5, 1, 9, 3, 7)
	r := Select(b, int64(3), int64(7), true, true)
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3", r.Len())
	}
	wantHeads := []bat.Oid{0, 3, 4}
	for i, w := range wantHeads {
		if bat.OidAt(r.Head, i) != w {
			t.Fatalf("head[%d] = %v, want %v", i, bat.OidAt(r.Head, i), w)
		}
	}
}

func TestSelectExclusiveBounds(t *testing.T) {
	b := intBAT(3, 4, 5, 6, 7)
	r := Select(b, int64(3), int64(7), false, false)
	if r.Len() != 3 {
		t.Fatalf("len = %d, want 3 (exclusive)", r.Len())
	}
	r2 := Select(b, int64(3), int64(7), true, false)
	if r2.Len() != 4 {
		t.Fatalf("len = %d, want 4 (half-open)", r2.Len())
	}
}

func TestSelectOpenBounds(t *testing.T) {
	b := intBAT(1, 2, 3)
	if r := Select(b, nil, int64(2), true, true); r.Len() != 2 {
		t.Fatalf("hi-only len = %d", r.Len())
	}
	if r := Select(b, int64(2), nil, true, true); r.Len() != 2 {
		t.Fatalf("lo-only len = %d", r.Len())
	}
	if r := Select(b, nil, nil, true, true); r.Len() != 3 {
		t.Fatalf("open len = %d", r.Len())
	}
}

func TestSelectSkipsNil(t *testing.T) {
	b := intBAT(1, bat.NilInt, 3)
	r := Select(b, nil, nil, true, true)
	if r.Len() != 2 {
		t.Fatalf("nil not skipped: len = %d", r.Len())
	}
}

func TestSelectSortedUsesView(t *testing.T) {
	vals := make([]int64, 100)
	for i := range vals {
		vals[i] = int64(i)
	}
	b := intBAT(vals...)
	b.TailSorted = true
	r := Select(b, int64(10), int64(90), true, true)
	if r.Len() != 81 {
		t.Fatalf("sorted select len = %d", r.Len())
	}
	// The result of a sorted select must be a cheap view: its tail
	// must not own a fresh copy of the qualifying values.
	if r.Tail.ByteSize() >= int64(r.Len())*8 {
		t.Fatalf("sorted select materialised its tail: %d bytes", r.Tail.ByteSize())
	}
	if bat.OidAt(r.Head, 0) != 10 {
		t.Fatalf("sorted select head[0] = %v", bat.OidAt(r.Head, 0))
	}
}

func TestSelectDates(t *testing.T) {
	d := func(y, m, dd int) bat.Date { return MkDate(y, m, dd) }
	b := bat.NewDenseHead(bat.NewDates([]bat.Date{d(1996, 6, 30), d(1996, 7, 1), d(1996, 8, 15), d(1996, 10, 1)}))
	r := Select(b, d(1996, 7, 1), d(1996, 10, 1), true, false)
	if r.Len() != 2 {
		t.Fatalf("date range len = %d, want 2", r.Len())
	}
}

func TestUselect(t *testing.T) {
	b := bat.NewDenseHead(bat.NewStrings([]string{"R", "A", "R", "N"}))
	r := Uselect(b, "R")
	if r.Len() != 2 || bat.OidAt(r.Head, 0) != 0 || bat.OidAt(r.Head, 1) != 2 {
		t.Fatalf("uselect wrong: %s", r.Dump(10))
	}
	// Tail shares head storage: near-zero cost.
	if r.Tail.ByteSize() > 64 {
		t.Fatalf("uselect tail materialised: %d bytes", r.Tail.ByteSize())
	}
}

func TestSelectNotNil(t *testing.T) {
	b := bat.NewDenseHead(bat.NewFloats([]float64{1.5, bat.NilFloat(), 2.5}))
	r := SelectNotNil(b)
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	// Identity when no nils present.
	c := bat.NewDenseHead(bat.NewInts([]int64{1, 2}))
	if SelectNotNil(c) != c {
		t.Fatal("SelectNotNil should be identity without nils")
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%green%", "dark green metal", true},
		{"%green%", "dark red metal", false},
		{"abc", "abc", true},
		{"abc", "abcd", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"%", "", true},
		{"%a%b%", "xaxbx", true},
		{"%a%b%", "xbxax", false},
		{"a%", "abc", true},
		{"%c", "abc", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.pat, c.s); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestLikeSelect(t *testing.T) {
	b := bat.NewDenseHead(bat.NewStrings([]string{"forest green", "red", "lime green shiny", bat.NilStr}))
	r := LikeSelect(b, "%green%")
	if r.Len() != 2 {
		t.Fatalf("likeselect len = %d", r.Len())
	}
}

func TestLikeLiteral(t *testing.T) {
	lit, pure := LikeLiteral("%green%")
	if lit != "green" || !pure {
		t.Fatalf("LikeLiteral = %q, %v", lit, pure)
	}
	lit, pure = LikeLiteral("gr%een")
	if lit != "een" || pure {
		t.Fatalf("LikeLiteral = %q, %v", lit, pure)
	}
	_, pure = LikeLiteral("%gr_en%")
	if pure {
		t.Fatal("pattern with _ must not be pure infix")
	}
}

// Property: a sorted-path select equals the scan-path select.
func TestSelectSortedEqualsScan(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(60) + 1
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(30))
		}
		sorted := append([]int64(nil), vals...)
		for i := 1; i < len(sorted); i++ {
			for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
				sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
			}
		}
		b := intBAT(sorted...)
		bs := intBAT(sorted...)
		bs.TailSorted = true
		lo := int64(rng.Intn(30))
		hi := lo + int64(rng.Intn(10))
		incLo, incHi := rng.Intn(2) == 0, rng.Intn(2) == 0
		a := Select(b, lo, hi, incLo, incHi)
		c := Select(bs, lo, hi, incLo, incHi)
		if a.Len() != c.Len() {
			return false
		}
		for i := 0; i < a.Len(); i++ {
			if a.Tail.Get(i) != c.Tail.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: select(select(b, L), L') == select(b, L') when [L'] ⊂ [L].
// This is the soundness condition behind the recycler's singleton
// subsumption (paper §5.1).
func TestSelectSubsumptionEquivalence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(80) + 1
		vals := make([]int64, n)
		for i := range vals {
			vals[i] = int64(rng.Intn(50))
		}
		b := intBAT(vals...)
		lo1 := int64(rng.Intn(20))
		hi1 := lo1 + int64(rng.Intn(25)) + 5
		lo2 := lo1 + int64(rng.Intn(3))
		hi2 := hi1 - int64(rng.Intn(3))
		if hi2 < lo2 {
			hi2 = lo2
		}
		super := Select(b, lo1, hi1, true, true)
		direct := Select(b, lo2, hi2, true, true)
		viaSuper := Select(super, lo2, hi2, true, true)
		if direct.Len() != viaSuper.Len() {
			return false
		}
		for i := 0; i < direct.Len(); i++ {
			if bat.OidAt(direct.Head, i) != bat.OidAt(viaSuper.Head, i) ||
				direct.Tail.Get(i) != viaSuper.Tail.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
