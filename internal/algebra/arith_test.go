package algebra

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

func TestLessThan(t *testing.T) {
	a := bat.NewDenseHead(bat.NewInts([]int64{1, 5, 3, bat.NilInt}))
	b := bat.NewDenseHead(bat.NewInts([]int64{2, 4, 3, 7}))
	out := LessThan(a, b).Tail.(*bat.Bools).V
	want := []bool{true, false, false, false}
	for i, w := range want {
		if out[i] != w {
			t.Fatalf("lt[%d] = %v, want %v", i, out[i], w)
		}
	}
}

func TestLessThanDates(t *testing.T) {
	d1 := MkDate(1996, 1, 1)
	d2 := MkDate(1996, 2, 1)
	a := bat.NewDenseHead(bat.NewDates([]bat.Date{d1, d2}))
	b := bat.NewDenseHead(bat.NewDates([]bat.Date{d2, d1}))
	out := LessThan(a, b).Tail.(*bat.Bools).V
	if !out[0] || out[1] {
		t.Fatalf("date lt wrong: %v", out)
	}
}

func TestLessThanFloats(t *testing.T) {
	a := bat.NewDenseHead(bat.NewFloats([]float64{1.5, bat.NilFloat()}))
	b := bat.NewDenseHead(bat.NewFloats([]float64{2.5, 9}))
	out := LessThan(a, b).Tail.(*bat.Bools).V
	if !out[0] || out[1] {
		t.Fatalf("float lt wrong: %v", out)
	}
}

func TestAvgFloat(t *testing.T) {
	b := bat.NewDenseHead(bat.NewFloats([]float64{1, 2, 3, bat.NilFloat()}))
	if got := AvgFloat(b); got != 2 {
		t.Fatalf("avg = %v", got)
	}
	ints := bat.NewDenseHead(bat.NewInts([]int64{2, 4, bat.NilInt}))
	if got := AvgFloat(ints); got != 3 {
		t.Fatalf("int avg = %v", got)
	}
	empty := bat.NewDenseHead(bat.NewFloats(nil))
	if !math.IsNaN(AvgFloat(empty)) {
		t.Fatal("avg of empty should be nil")
	}
}

func TestNotLikeSelect(t *testing.T) {
	b := bat.NewDenseHead(bat.NewStrings([]string{"promo pack", "standard", bat.NilStr, "promo box"}))
	r := NotLikeSelect(b, "promo%")
	if r.Len() != 1 || r.Tail.Get(0) != "standard" {
		t.Fatalf("notlike wrong: %s", r.Dump(5))
	}
	// LikeSelect and NotLikeSelect partition the non-nil rows.
	l := LikeSelect(b, "promo%")
	if l.Len()+r.Len() != 3 {
		t.Fatalf("partition broken: %d + %d != 3", l.Len(), r.Len())
	}
}

// Property: for any pattern built from literals, %, and _, LikeSelect
// and NotLikeSelect partition the non-nil input rows.
func TestLikePartitionProperty(t *testing.T) {
	alphabet := []string{"a", "b", "%", "_"}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		pat := ""
		for i := 0; i < rng.Intn(6); i++ {
			pat += alphabet[rng.Intn(len(alphabet))]
		}
		n := rng.Intn(40) + 1
		vals := make([]string, n)
		for i := range vals {
			s := ""
			for j := 0; j < rng.Intn(5); j++ {
				s += alphabet[rng.Intn(2)] // only literals in the data
			}
			vals[i] = s
		}
		b := bat.NewDenseHead(bat.NewStrings(vals))
		l := LikeSelect(b, pat)
		nl := NotLikeSelect(b, pat)
		return l.Len()+nl.Len() == n
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: the sorted k-way merge path equals the generic sort-based
// merge path of MergeDedupByHead.
func TestMergeSortedEqualsGeneric(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mkPart := func() *bat.BAT {
			n := rng.Intn(20) + 1
			heads := make([]bat.Oid, n)
			tails := make([]int64, n)
			h := bat.Oid(rng.Intn(5))
			for i := range heads {
				heads[i] = h
				// Tail is a function of head so duplicates agree.
				tails[i] = int64(h) * 7
				h += bat.Oid(rng.Intn(4) + 1)
			}
			p := bat.New(bat.NewOids(heads), bat.NewInts(tails))
			p.HeadSorted = true
			return p
		}
		parts := []*bat.BAT{mkPart(), mkPart(), mkPart()}
		sorted := MergeDedupByHead(parts)
		// Force the generic path by cloning without the flag.
		generic := MergeDedupByHead([]*bat.BAT{
			unsortedClone(parts[0]), unsortedClone(parts[1]), unsortedClone(parts[2]),
		})
		if sorted.Len() != generic.Len() {
			return false
		}
		for i := 0; i < sorted.Len(); i++ {
			if bat.OidAt(sorted.Head, i) != bat.OidAt(generic.Head, i) ||
				sorted.Tail.Get(i) != generic.Tail.Get(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func unsortedClone(b *bat.BAT) *bat.BAT {
	c := bat.New(b.Head, b.Tail)
	c.HeadSorted = false
	return c
}

func TestMergeSortedPartsManyKinds(t *testing.T) {
	mk := func(heads []bat.Oid, tail bat.Vector) *bat.BAT {
		p := bat.New(bat.NewOids(heads), tail)
		p.HeadSorted = true
		return p
	}
	// Strings.
	a := mk([]bat.Oid{1, 3}, bat.NewStrings([]string{"x", "y"}))
	b := mk([]bat.Oid{2, 3}, bat.NewStrings([]string{"z", "y"}))
	m := MergeDedupByHead([]*bat.BAT{a, b})
	if m.Len() != 3 || m.Tail.Get(2) != "y" {
		t.Fatalf("string merge wrong: %s", m.Dump(5))
	}
	// Dates.
	ad := mk([]bat.Oid{1}, bat.NewDates([]bat.Date{100}))
	bd := mk([]bat.Oid{2}, bat.NewDates([]bat.Date{200}))
	md := MergeDedupByHead([]*bat.BAT{ad, bd})
	if md.Len() != 2 {
		t.Fatalf("date merge wrong: %s", md.Dump(5))
	}
	// Bools.
	ab := mk([]bat.Oid{1}, bat.NewBools([]bool{true}))
	bb := mk([]bat.Oid{1}, bat.NewBools([]bool{true}))
	mbo := MergeDedupByHead([]*bat.BAT{ab, bb})
	if mbo.Len() != 1 {
		t.Fatalf("bool merge wrong: %s", mbo.Dump(5))
	}
	// Oid tails.
	ao := mk([]bat.Oid{1}, bat.NewOids([]bat.Oid{11}))
	bo := mk([]bat.Oid{2}, bat.NewOids([]bat.Oid{22}))
	mo := MergeDedupByHead([]*bat.BAT{ao, bo})
	if mo.Len() != 2 || bat.OidAt(mo.Tail, 1) != 22 {
		t.Fatalf("oid merge wrong: %s", mo.Dump(5))
	}
	// Float tails.
	af := mk([]bat.Oid{5}, bat.NewFloats([]float64{0.5}))
	bf := mk([]bat.Oid{6}, bat.NewFloats([]float64{0.25}))
	mf := MergeDedupByHead([]*bat.BAT{af, bf})
	if mf.Len() != 2 || mf.Tail.Get(0) != 0.5 {
		t.Fatalf("float merge wrong: %s", mf.Dump(5))
	}
}

func TestCmpAllTypes(t *testing.T) {
	if Cmp(int64(1), int64(2)) != -1 || Cmp(int64(2), int64(1)) != 1 || Cmp(int64(1), int64(1)) != 0 {
		t.Fatal("int cmp")
	}
	if Cmp(1.5, 2.5) != -1 || Cmp("a", "b") != -1 || Cmp(bat.Date(1), bat.Date(2)) != -1 {
		t.Fatal("cmp")
	}
	if Cmp(bat.Oid(1), bat.Oid(2)) != -1 {
		t.Fatal("oid cmp")
	}
	if Cmp(false, true) != -1 || Cmp(true, false) != 1 || Cmp(true, true) != 0 {
		t.Fatal("bool cmp")
	}
}

func TestScalarKindAndNil(t *testing.T) {
	if ScalarKind(int64(1)) != bat.KInt || ScalarKind("x") != bat.KStr ||
		ScalarKind(1.0) != bat.KFloat || ScalarKind(bat.Date(1)) != bat.KDate ||
		ScalarKind(bat.Oid(1)) != bat.KOid || ScalarKind(true) != bat.KBool {
		t.Fatal("scalar kinds wrong")
	}
	if !IsNilScalar(bat.NilInt) || IsNilScalar(int64(0)) {
		t.Fatal("int nil detection")
	}
	if !IsNilScalar(bat.NilFloat()) || !IsNilScalar(bat.NilStr) ||
		!IsNilScalar(bat.NilDate) || !IsNilScalar(bat.NilOid) {
		t.Fatal("nil detection")
	}
	if IsNilScalar(true) {
		t.Fatal("bool has no nil")
	}
}
