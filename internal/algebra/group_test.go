package algebra

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bat"
)

func TestGroupNewAndCount(t *testing.T) {
	b := bat.NewDenseHead(bat.NewStrings([]string{"a", "b", "a", "c", "b", "a"}))
	g := GroupNew(b)
	if g.NGroups != 3 {
		t.Fatalf("ngroups = %d, want 3", g.NGroups)
	}
	c := AggrCount(g.Grp, g.NGroups)
	counts := c.Tail.(*bat.Ints).V
	if counts[0] != 3 || counts[1] != 2 || counts[2] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestGroupDerive(t *testing.T) {
	a := bat.NewDenseHead(bat.NewStrings([]string{"x", "x", "y", "y"}))
	b := bat.NewDenseHead(bat.NewInts([]int64{1, 2, 1, 1}))
	g := GroupNew(a)
	g2 := GroupDerive(g, b)
	if g2.NGroups != 3 {
		t.Fatalf("derived ngroups = %d, want 3", g2.NGroups)
	}
}

func TestAggrSumIntAndFloat(t *testing.T) {
	vals := bat.NewDenseHead(bat.NewInts([]int64{10, 20, 30}))
	grpB := bat.NewDenseHead(bat.NewStrings([]string{"g1", "g2", "g1"}))
	g := GroupNew(grpB)
	s := AggrSum(vals, g.Grp, g.NGroups)
	sums := s.Tail.(*bat.Ints).V
	if sums[0] != 40 || sums[1] != 20 {
		t.Fatalf("sums = %v", sums)
	}
	fvals := bat.NewDenseHead(bat.NewFloats([]float64{1.5, 2.5, bat.NilFloat()}))
	fs := AggrSum(fvals, g.Grp, g.NGroups)
	fsums := fs.Tail.(*bat.Floats).V
	if fsums[0] != 1.5 || fsums[1] != 2.5 {
		t.Fatalf("float sums = %v (nil must be skipped)", fsums)
	}
}

func TestAggrAvgMinMax(t *testing.T) {
	vals := bat.NewDenseHead(bat.NewInts([]int64{10, 20, 30, bat.NilInt}))
	grpB := bat.NewDenseHead(bat.NewInts([]int64{1, 1, 2, 2}))
	g := GroupNew(grpB)
	avg := AggrAvg(vals, g.Grp, g.NGroups).Tail.(*bat.Floats).V
	if avg[0] != 15 || avg[1] != 30 {
		t.Fatalf("avg = %v", avg)
	}
	mn := AggrMin(vals, g.Grp, g.NGroups).Tail.(*bat.Ints).V
	mx := AggrMax(vals, g.Grp, g.NGroups).Tail.(*bat.Ints).V
	if mn[0] != 10 || mx[0] != 20 || mn[1] != 30 || mx[1] != 30 {
		t.Fatalf("min = %v max = %v", mn, mx)
	}
}

func TestGroupHeads(t *testing.T) {
	b := bat.New(bat.NewOids([]bat.Oid{7, 8, 9}), bat.NewStrings([]string{"a", "b", "a"}))
	g := GroupNew(b)
	gh := GroupHeads(g, b)
	if bat.OidAt(gh.Tail, 0) != 7 || bat.OidAt(gh.Tail, 1) != 8 {
		t.Fatalf("group heads wrong: %s", gh.Dump(5))
	}
}

func TestScalarAggregates(t *testing.T) {
	fb := bat.NewDenseHead(bat.NewFloats([]float64{1, 2, bat.NilFloat()}))
	if SumFloat(fb) != 3 {
		t.Fatalf("SumFloat = %v", SumFloat(fb))
	}
	ib := bat.NewDenseHead(bat.NewInts([]int64{1, 2, bat.NilInt}))
	if SumInt(ib) != 3 {
		t.Fatalf("SumInt = %v", SumInt(ib))
	}
	if Count(ib) != 3 {
		t.Fatalf("Count = %v", Count(ib))
	}
}

func TestArithOps(t *testing.T) {
	a := bat.NewDenseHead(bat.NewFloats([]float64{2, 3}))
	b := bat.NewDenseHead(bat.NewFloats([]float64{5, 7}))
	if got := MulFloat(a, b).Tail.(*bat.Floats).V; got[0] != 10 || got[1] != 21 {
		t.Fatalf("mul = %v", got)
	}
	if got := AddFloat(a, b).Tail.(*bat.Floats).V; got[0] != 7 || got[1] != 10 {
		t.Fatalf("add = %v", got)
	}
	if got := SubFromConstFloat(a, 1).Tail.(*bat.Floats).V; got[0] != -1 || got[1] != -2 {
		t.Fatalf("1-x = %v", got)
	}
	if got := AddConstFloat(a, 1).Tail.(*bat.Floats).V; got[0] != 3 {
		t.Fatalf("x+1 = %v", got)
	}
	if got := MulConstFloat(a, 2).Tail.(*bat.Floats).V; got[1] != 6 {
		t.Fatalf("2x = %v", got)
	}
	nilIn := bat.NewDenseHead(bat.NewFloats([]float64{bat.NilFloat()}))
	if got := AddConstFloat(nilIn, 1).Tail.(*bat.Floats).V; !math.IsNaN(got[0]) {
		t.Fatalf("nil not propagated: %v", got)
	}
	iv := bat.NewDenseHead(bat.NewInts([]int64{4, bat.NilInt}))
	fv := IntToFloat(iv).Tail.(*bat.Floats).V
	if fv[0] != 4 || !math.IsNaN(fv[1]) {
		t.Fatalf("IntToFloat = %v", fv)
	}
}

func TestDateArithmetic(t *testing.T) {
	d := MkDate(1996, 7, 1)
	if got := AddMonths(d, 3); got != MkDate(1996, 10, 1) {
		t.Fatalf("addmonths = %v", got)
	}
	if got := AddMonths(MkDate(1996, 12, 15), 1); got != MkDate(1997, 1, 15) {
		t.Fatalf("year rollover = %v", got)
	}
	if got := AddMonths(MkDate(1996, 1, 31), 1); got != MkDate(1996, 2, 29) {
		t.Fatalf("leap clamp = %v", got)
	}
	if got := AddYears(MkDate(1995, 1, 1), 2); got != MkDate(1997, 1, 1) {
		t.Fatalf("addyears = %v", got)
	}
	y, m, day := CivilFromDays(int32(MkDate(1998, 12, 1)))
	if y != 1998 || m != 12 || day != 1 {
		t.Fatalf("civil roundtrip = %d-%d-%d", y, m, day)
	}
}

func TestYearExtract(t *testing.T) {
	b := bat.NewDenseHead(bat.NewDates([]bat.Date{MkDate(1995, 3, 4), MkDate(1996, 1, 1), bat.NilDate}))
	ys := Year(b).Tail.(*bat.Ints).V
	if ys[0] != 1995 || ys[1] != 1996 || ys[2] != bat.NilInt {
		t.Fatalf("years = %v", ys)
	}
}

func TestSortByTailAndTopN(t *testing.T) {
	b := bat.NewDenseHead(bat.NewInts([]int64{3, 1, 2}))
	asc := SortByTail(b, true)
	if asc.Tail.Get(0) != int64(1) || !asc.TailSorted {
		t.Fatalf("sort asc wrong: %s", asc.Dump(5))
	}
	desc := SortByTail(b, false)
	if desc.Tail.Get(0) != int64(3) {
		t.Fatalf("sort desc wrong: %s", desc.Dump(5))
	}
	top := TopN(desc, 2)
	if top.Len() != 2 {
		t.Fatalf("topn len = %d", top.Len())
	}
	if TopN(b, 10) != b {
		t.Fatal("topn larger than input should be identity")
	}
}

func TestMergeDedupByHead(t *testing.T) {
	a := bat.New(bat.NewOids([]bat.Oid{1, 3}), bat.NewInts([]int64{10, 30}))
	b := bat.New(bat.NewOids([]bat.Oid{3, 5}), bat.NewInts([]int64{30, 50}))
	m := MergeDedupByHead([]*bat.BAT{a, b})
	if m.Len() != 3 || !m.HeadSorted || !m.KeyUnique {
		t.Fatalf("merge wrong: %s", m.Dump(5))
	}
	if bat.OidAt(m.Head, 1) != 3 || m.Tail.Get(1) != int64(30) {
		t.Fatalf("merge row1 wrong: %s", m.Dump(5))
	}
	if MergeDedupByHead([]*bat.BAT{a}) != a {
		t.Fatal("single-part merge should be identity")
	}
}

// Property: per-group sums add up to the scalar total.
func TestAggrSumConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(100) + 1
		vals := make([]int64, n)
		keys := make([]int64, n)
		var total int64
		for i := range vals {
			vals[i] = rng.Int63n(1000)
			keys[i] = int64(rng.Intn(10))
			total += vals[i]
		}
		vb := bat.NewDenseHead(bat.NewInts(vals))
		kb := bat.NewDenseHead(bat.NewInts(keys))
		g := GroupNew(kb)
		s := AggrSum(vb, g.Grp, g.NGroups)
		var sum int64
		for _, x := range s.Tail.(*bat.Ints).V {
			sum += x
		}
		return sum == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: merged dedup of randomly split parts of a key-unique BAT
// reconstructs the original row set.
func TestMergeDedupReconstructs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(50) + 2
		heads := make([]bat.Oid, n)
		tails := make([]int64, n)
		for i := range heads {
			heads[i] = bat.Oid(i * 2)
			tails[i] = rng.Int63n(100)
		}
		full := bat.New(bat.NewOids(heads), bat.NewInts(tails))
		// Two overlapping slices covering the whole BAT.
		cut1 := rng.Intn(n-1) + 1
		cut0 := rng.Intn(cut1)
		p1 := full.Slice(0, cut1)
		p2 := full.Slice(cut0, n)
		m := MergeDedupByHead([]*bat.BAT{p1, p2})
		if m.Len() != n {
			return false
		}
		for i := 0; i < n; i++ {
			if bat.OidAt(m.Head, i) != heads[i] || m.Tail.Get(i) != tails[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
