package algebra

import (
	"fmt"

	"repro/internal/bat"
)

// Fused select-chain kernel. A chain of adjacent filter instructions
// over positionally aligned columns (select, uselect, selectNotNil,
// like/notlike, plus semijoins against aligned binds, which merely
// switch the active column) evaluates in ONE pass: a SelectionVector
// of surviving positions is refined step by step, and only the final
// member's result BAT is materialised. No intermediate BATs, no
// per-operator gather — the streaming-iterator composition idiom
// mapped onto MAL operator fusion.
//
// Fusion is an execution-time rewrite only: plan.Signature, pool keys
// and per-instruction identity are untouched (see internal/opt's
// PlanFusion and docs/ARCHITECTURE.md).

// FusedOpKind identifies one step of a fused chain.
type FusedOpKind uint8

// Fused step kinds.
const (
	// FuseSelect refines by a range predicate over the active column.
	FuseSelect FusedOpKind = iota
	// FuseUselect refines by equality; as the last step it produces the
	// uselect result shape (tail sharing head storage).
	FuseUselect
	// FuseNotNil drops rows whose active-column value is the nil
	// sentinel.
	FuseNotNil
	// FuseLike refines by SQL LIKE match over a string column.
	FuseLike
	// FuseNotLike refines by SQL LIKE non-match.
	FuseNotLike
	// FuseSwitch changes the active column to Col (a semijoin against a
	// positionally aligned bind of the same table).
	FuseSwitch
)

// FusedStep is one member of a fused chain.
type FusedStep struct {
	Kind FusedOpKind

	// Col is the new active column for FuseSwitch.
	Col *bat.BAT

	// Range bounds for FuseSelect (nil = open).
	Lo, Hi       any
	IncLo, IncHi bool

	// V is the equality value for FuseUselect.
	V any

	// Pattern is the LIKE pattern for FuseLike/FuseNotLike.
	Pattern string
}

// FusedSelect evaluates the chain over base and returns the final
// member's result, bit-identical to running the members one at a time.
// The caller guarantees every FuseSwitch column is positionally
// aligned with base (same dense head).
func FusedSelect(base *bat.BAT, steps []FusedStep) *bat.BAT {
	if len(steps) == 0 {
		return base
	}
	cur := base
	headSorted, keyUnique := base.HeadSorted, base.KeyUnique
	var sel bat.SelectionVector
	first := true
	for i := range steps {
		st := &steps[i]
		switch st.Kind {
		case FuseSwitch:
			cur = st.Col
			headSorted, keyUnique = cur.HeadSorted, cur.KeyUnique
		case FuseSelect:
			if first {
				sel = rangeSel(cur.Tail, st.Lo, st.Hi, st.IncLo, st.IncHi)
				first = false
			} else {
				sel = refineRangeSel(cur.Tail, st.Lo, st.Hi, st.IncLo, st.IncHi, sel)
			}
		case FuseUselect:
			if first {
				sel = equalitySel(cur.Tail, st.V)
				first = false
			} else {
				sel = refineEqualSel(cur.Tail, st.V, sel)
			}
		case FuseNotNil:
			if first {
				sel = notNilSel(cur.Tail)
				first = false
			} else {
				sel = refineNotNilSel(cur.Tail, sel)
			}
			keyUnique = false
		case FuseLike, FuseNotLike:
			want := st.Kind == FuseLike
			m := CompileLike(st.Pattern)
			v := cur.Tail.(*bat.Strings).V
			if first {
				sel = make(bat.SelectionVector, 0, len(v)/8+1)
				for i, x := range v {
					if x != bat.NilStr && m.Match(x) == want {
						sel = append(sel, int32(i))
					}
				}
				first = false
			} else {
				j := 0
				for _, p := range sel {
					x := v[p]
					if x != bat.NilStr && m.Match(x) == want {
						sel[j] = p
						j++
					}
				}
				sel = sel[:j]
			}
			keyUnique = false
		default:
			panic(fmt.Sprintf("algebra: unknown fused step kind %d", st.Kind))
		}
	}
	if steps[len(steps)-1].Kind == FuseUselect {
		heads := bat.GatherOidsSel(cur.Head, sel)
		hv := bat.NewOids(heads)
		out := bat.New(hv, hv.Slice(0, len(heads)))
		out.HeadSorted = headSorted
		out.KeyUnique = keyUnique
		return out
	}
	out := bat.GatherSel(cur, sel)
	out.HeadSorted = headSorted
	out.KeyUnique = keyUnique
	return out
}

// refineOrdered keeps the selected positions whose value lies in
// [lo, hi], in place. NaN values fail both comparisons, so float nils
// drop out without a dedicated test.
func refineOrdered[T int64 | float64 | bat.Date | bat.Oid](v []T, lo, hi T, sel bat.SelectionVector) bat.SelectionVector {
	j := 0
	for _, p := range sel {
		x := v[p]
		sel[j] = p
		if x >= lo && x <= hi {
			j++
		}
	}
	return sel[:j]
}

// refineRangeSel refines sel by a range predicate over the tail,
// mirroring rangeSel's normalised-bound semantics.
func refineRangeSel(tail bat.Vector, lo, hi any, incLo, incHi bool, sel bat.SelectionVector) bat.SelectionVector {
	switch t := tail.(type) {
	case *bat.Ints:
		r := normIntRange(lo, hi, incLo, incHi)
		if r.empty {
			return sel[:0]
		}
		return refineOrdered(t.V, r.lo, r.hi, sel)
	case *bat.Floats:
		r := normFltRange(lo, hi, incLo, incHi)
		if r.empty {
			return sel[:0]
		}
		return refineOrdered(t.V, r.lo, r.hi, sel)
	case *bat.Dates:
		r := normDateRange(lo, hi, incLo, incHi)
		if r.empty {
			return sel[:0]
		}
		return refineOrdered(t.V, r.lo, r.hi, sel)
	case *bat.Oids:
		r := normOidRange(lo, hi, incLo, incHi)
		if r.empty {
			return sel[:0]
		}
		return refineOrdered(t.V, r.lo, r.hi, sel)
	case *bat.DenseOids:
		r := normOidRange(lo, hi, incLo, incHi)
		if r.empty {
			return sel[:0]
		}
		start, end := denseOidRange(t, r)
		j := 0
		for _, p := range sel {
			sel[j] = p
			if int(p) >= start && int(p) < end {
				j++
			}
		}
		return sel[:j]
	case *bat.Strings:
		return scanStringsRange(t.V, lo, hi, incLo, incHi, sel)
	case *bat.Bools:
		return scanBoolsRange(t.V, lo, hi, incLo, incHi, sel)
	default:
		panic(fmt.Sprintf("algebra: fused select over unsupported tail %T", tail))
	}
}

// refineEqual keeps the selected positions whose value equals w.
func refineEqual[T comparable](v []T, w T, sel bat.SelectionVector) bat.SelectionVector {
	j := 0
	for _, p := range sel {
		x := v[p]
		sel[j] = p
		if x == w {
			j++
		}
	}
	return sel[:j]
}

// refineEqualSel refines sel by tail == v, mirroring equalitySel.
func refineEqualSel(tail bat.Vector, v any, sel bat.SelectionVector) bat.SelectionVector {
	switch t := tail.(type) {
	case *bat.Ints:
		return refineEqual(t.V, v.(int64), sel)
	case *bat.Strings:
		return refineEqual(t.V, v.(string), sel)
	case *bat.Dates:
		return refineEqual(t.V, v.(bat.Date), sel)
	case *bat.Floats:
		return refineEqual(t.V, v.(float64), sel)
	case *bat.Oids:
		return refineEqual(t.V, v.(bat.Oid), sel)
	case *bat.DenseOids:
		w := v.(bat.Oid)
		j := 0
		for _, p := range sel {
			sel[j] = p
			if t.At(int(p)) == w {
				j++
			}
		}
		return sel[:j]
	case *bat.Bools:
		return refineEqual(t.V, v.(bool), sel)
	default:
		panic(fmt.Sprintf("algebra: fused uselect over unsupported tail %T", tail))
	}
}

// notNilSel scans the tail for non-nil positions.
func notNilSel(tail bat.Vector) bat.SelectionVector {
	n := tail.Len()
	sel := bat.NewFullSel(n)
	return refineNotNilSel(tail, sel)
}

// refineNotNilSel drops selected positions holding the nil sentinel.
func refineNotNilSel(tail bat.Vector, sel bat.SelectionVector) bat.SelectionVector {
	j := 0
	switch t := tail.(type) {
	case *bat.Ints:
		for _, p := range sel {
			sel[j] = p
			if t.V[p] != bat.NilInt {
				j++
			}
		}
	case *bat.Floats:
		for _, p := range sel {
			x := t.V[p]
			sel[j] = p
			if x == x {
				j++
			}
		}
	case *bat.Strings:
		for _, p := range sel {
			sel[j] = p
			if t.V[p] != bat.NilStr {
				j++
			}
		}
	case *bat.Dates:
		for _, p := range sel {
			sel[j] = p
			if t.V[p] != bat.NilDate {
				j++
			}
		}
	case *bat.Oids:
		for _, p := range sel {
			sel[j] = p
			if t.V[p] != bat.NilOid {
				j++
			}
		}
	default:
		// Dense and bool tails have no nil representation.
		return sel
	}
	return sel[:j]
}
