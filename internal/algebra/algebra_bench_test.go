package algebra

import (
	"math/rand"
	"testing"

	"repro/internal/bat"
)

// Micro-benchmarks for the operator kernel: the costs the recycler
// trades against pool maintenance (paper §2.3, §4).

func randInts(n int, seed int64) *bat.BAT {
	rng := rand.New(rand.NewSource(seed))
	v := make([]int64, n)
	for i := range v {
		v[i] = rng.Int63n(1 << 20)
	}
	return bat.NewDenseHead(bat.NewInts(v))
}

func randFloats(n int, seed int64) *bat.BAT {
	rng := rand.New(rand.NewSource(seed))
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64() * 360
	}
	return bat.NewDenseHead(bat.NewFloats(v))
}

func BenchmarkSelectScan100k(b *testing.B) {
	data := randInts(100_000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(data, int64(1000), int64(200_000), true, true)
	}
}

func BenchmarkSelectSortedView100k(b *testing.B) {
	v := make([]int64, 100_000)
	for i := range v {
		v[i] = int64(i)
	}
	data := bat.NewDenseHead(bat.NewInts(v))
	data.TailSorted = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Select(data, int64(1000), int64(50_000), true, true)
	}
}

func BenchmarkUselect100k(b *testing.B) {
	data := randInts(100_000, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Uselect(data, int64(4242))
	}
}

func BenchmarkHashJoin100k(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	lt := make([]bat.Oid, 100_000)
	for i := range lt {
		lt[i] = bat.Oid(rng.Intn(10_000))
	}
	l := bat.New(bat.NewDense(0, len(lt)), bat.NewOids(lt))
	r := bat.NewDenseHead(bat.NewInts(make([]int64, 10_000)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Join(l, r)
	}
}

func BenchmarkSemijoin100k(b *testing.B) {
	l := randInts(100_000, 4)
	sub := Select(l, int64(0), int64(1<<19), true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Semijoin(l, sub)
	}
}

func BenchmarkGroupAggr100k(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	keys := make([]int64, 100_000)
	vals := make([]int64, 100_000)
	for i := range keys {
		keys[i] = int64(rng.Intn(1000))
		vals[i] = rng.Int63n(100)
	}
	kb := bat.NewDenseHead(bat.NewInts(keys))
	vb := bat.NewDenseHead(bat.NewInts(vals))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := GroupNew(kb)
		AggrSum(vb, g.Grp, g.NGroups)
	}
}

func BenchmarkLikeSelect100k(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	words := []string{"forest", "green", "metal", "red", "shiny", "dark"}
	v := make([]string, 100_000)
	for i := range v {
		v[i] = words[rng.Intn(len(words))] + " " + words[rng.Intn(len(words))]
	}
	data := bat.NewDenseHead(bat.NewStrings(v))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		LikeSelect(data, "%green%")
	}
}

func BenchmarkMergeDedupSorted(b *testing.B) {
	base := randFloats(200_000, 7)
	p1 := Select(base, 10.0, 25.0, true, true)
	p2 := Select(base, 20.0, 35.0, true, true)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MergeDedupByHead([]*bat.BAT{p1, p2})
	}
}

func BenchmarkReverseView(b *testing.B) {
	data := randInts(100_000, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		data.Reverse()
	}
}

func BenchmarkRevenueArith100k(b *testing.B) {
	price := randFloats(100_000, 9)
	disc := randFloats(100_000, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MulFloat(price, SubFromConstFloat(disc, 1))
	}
}
