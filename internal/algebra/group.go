package algebra

import (
	"fmt"

	"repro/internal/bat"
)

// Grouping produces, for a column BAT, a mapping from each row to a
// dense group id. Rows are grouped by tail value. Multi-attribute
// grouping refines an existing Grouping via GroupDerive, mirroring
// MonetDB's group.new / group.derive pair.
type Grouping struct {
	// Grp maps each row (positionally aligned with the input BAT) to a
	// group id in [0, NGroups).
	Grp *bat.BAT
	// NGroups is the number of distinct groups.
	NGroups int
	// Repr holds, per group id, a representative row position.
	Repr []int
}

// GroupNew groups the rows of b by tail value. Group ids are assigned
// in first-occurrence order. Instead of a per-kind map[K]int it builds
// one chained table over the key column and exploits that a chain's
// first position IS the group representative: row i opens a new group
// exactly when First(key_i) == i, otherwise it inherits the id already
// assigned to that earlier position.
func GroupNew(b *bat.BAT) *Grouping {
	n := b.Len()
	grp := make([]bat.Oid, n)
	var repr []int
	switch t := b.Tail.(type) {
	case *bat.Ints:
		repr = groupKeys(t.V, bat.HashInt, grp)
	case *bat.Strings:
		repr = groupKeys(t.V, bat.HashStr, grp)
	case *bat.Dates:
		repr = groupKeys(t.V, bat.HashDate, grp)
	case *bat.Oids:
		repr = groupKeys(t.V, bat.HashOid, grp)
	case *bat.DenseOids:
		repr = make([]int, t.N)
		for i := 0; i < t.N; i++ {
			grp[i] = bat.Oid(i)
			repr[i] = i
		}
	case *bat.Floats:
		repr = groupKeys(t.V, bat.HashFloat, grp)
	case *bat.Bools:
		repr = groupKeys(t.V, bat.HashBool, grp)
	default:
		panic(fmt.Sprintf("algebra: group over unsupported tail %T", b.Tail))
	}
	g := bat.New(b.Head, bat.NewOids(grp))
	return &Grouping{Grp: g, NGroups: len(repr), Repr: repr}
}

// groupKeys assigns dense group ids over a typed key slice, writing
// row->id into grp and returning the representative positions. A probe
// that finds no chain (float NaN, which is != itself) opens a fresh
// group per row, the same behaviour NaN keys had under Go maps.
func groupKeys[K comparable](keys []K, hash func(K) uint64, grp []bat.Oid) []int {
	t := bat.NewTable(keys, hash)
	repr := make([]int, 0, 16)
	for i, k := range keys {
		if f := t.First(k); int(f) == i || f < 0 {
			grp[i] = bat.Oid(len(repr))
			repr = append(repr, i)
		} else {
			grp[i] = grp[f]
		}
	}
	return repr
}

// grpKey is the composite (group id, refining value) key used by
// GroupDerive; typed instantiation avoids boxing every row's value
// into an interface as the old map[{Oid, any}]int did.
type grpKey[K comparable] struct {
	g bat.Oid
	v K
}

// GroupDerive refines grouping g with the values of b (positionally
// aligned): two rows end in the same refined group iff they were in
// the same group of g and agree on b's tail value.
func GroupDerive(g *Grouping, b *bat.BAT) *Grouping {
	n := b.Len()
	if g.Grp.Len() != n {
		panic("algebra: group.derive alignment mismatch")
	}
	grp := make([]bat.Oid, n)
	var repr []int
	ids := g.Grp.Tail.(*bat.Oids).V
	switch t := b.Tail.(type) {
	case *bat.Ints:
		repr = deriveKeys(ids, t.V, grp)
	case *bat.Strings:
		repr = deriveKeys(ids, t.V, grp)
	case *bat.Dates:
		repr = deriveKeys(ids, t.V, grp)
	case *bat.Oids:
		repr = deriveKeys(ids, t.V, grp)
	case *bat.DenseOids:
		// Dense values are pairwise distinct: every row refines into
		// its own group, ids in row order.
		repr = make([]int, n)
		for i := 0; i < n; i++ {
			grp[i] = bat.Oid(i)
			repr[i] = i
		}
	case *bat.Floats:
		repr = deriveKeys(ids, t.V, grp)
	case *bat.Bools:
		repr = deriveKeys(ids, t.V, grp)
	default:
		panic(fmt.Sprintf("algebra: group.derive over unsupported tail %T", b.Tail))
	}
	return &Grouping{Grp: bat.New(b.Head, bat.NewOids(grp)), NGroups: len(repr), Repr: repr}
}

// deriveKeys assigns refined group ids over (prior id, typed value)
// composite keys in first-occurrence order.
func deriveKeys[K comparable](ids []bat.Oid, vals []K, grp []bat.Oid) []int {
	m := make(map[grpKey[K]]int, 16)
	repr := make([]int, 0, 16)
	for i, v := range vals {
		k := grpKey[K]{g: ids[i], v: v}
		id, ok := m[k]
		if !ok {
			id = len(m)
			m[k] = id
			repr = append(repr, i)
		}
		grp[i] = bat.Oid(id)
	}
	return repr
}

// GroupHeads returns a BAT mapping group id -> head oid of the group's
// representative row, used to label aggregate outputs.
func GroupHeads(g *Grouping, b *bat.BAT) *bat.BAT {
	heads := make([]bat.Oid, g.NGroups)
	for id, p := range g.Repr {
		heads[id] = bat.OidAt(b.Head, p)
	}
	return bat.New(bat.NewDense(0, g.NGroups), bat.NewOids(heads))
}

// grpIDs extracts the group-id vector from a grouping BAT produced by
// GroupNew/GroupDerive.
func grpIDs(grp *bat.BAT) []bat.Oid {
	return grp.Tail.(*bat.Oids).V
}

// AggrCount counts rows per group: result head is the dense group id,
// tail the count.
func AggrCount(grp *bat.BAT, ngroups int) *bat.BAT {
	counts := make([]int64, ngroups)
	for _, g := range grpIDs(grp) {
		counts[g]++
	}
	return bat.New(bat.NewDense(0, ngroups), bat.NewInts(counts))
}

// AggrSum sums v's tail per group. v must be positionally aligned with
// grp. Integer and date tails sum to int64; float tails to float64.
func AggrSum(v *bat.BAT, grp *bat.BAT, ngroups int) *bat.BAT {
	ids := grpIDs(grp)
	if v.Len() != len(ids) {
		panic("algebra: aggr.sum alignment mismatch")
	}
	switch t := v.Tail.(type) {
	case *bat.Ints:
		sums := make([]int64, ngroups)
		for i, x := range t.V {
			if x != bat.NilInt {
				sums[ids[i]] += x
			}
		}
		return bat.New(bat.NewDense(0, ngroups), bat.NewInts(sums))
	case *bat.Floats:
		sums := make([]float64, ngroups)
		for i, x := range t.V {
			if !bat.IsNilFloat(x) {
				sums[ids[i]] += x
			}
		}
		return bat.New(bat.NewDense(0, ngroups), bat.NewFloats(sums))
	}
	panic(fmt.Sprintf("algebra: aggr.sum over unsupported tail %T", v.Tail))
}

// AggrAvg averages v's tail per group, producing a float tail. Groups
// with no non-nil values yield the float nil sentinel.
func AggrAvg(v *bat.BAT, grp *bat.BAT, ngroups int) *bat.BAT {
	ids := grpIDs(grp)
	sums := make([]float64, ngroups)
	counts := make([]int64, ngroups)
	switch t := v.Tail.(type) {
	case *bat.Ints:
		for i, x := range t.V {
			if x != bat.NilInt {
				sums[ids[i]] += float64(x)
				counts[ids[i]]++
			}
		}
	case *bat.Floats:
		for i, x := range t.V {
			if !bat.IsNilFloat(x) {
				sums[ids[i]] += x
				counts[ids[i]]++
			}
		}
	default:
		panic(fmt.Sprintf("algebra: aggr.avg over unsupported tail %T", v.Tail))
	}
	out := make([]float64, ngroups)
	for g := range out {
		if counts[g] == 0 {
			out[g] = bat.NilFloat()
		} else {
			out[g] = sums[g] / float64(counts[g])
		}
	}
	return bat.New(bat.NewDense(0, ngroups), bat.NewFloats(out))
}

// AggrMin computes the per-group minimum of v's tail.
func AggrMin(v *bat.BAT, grp *bat.BAT, ngroups int) *bat.BAT {
	return aggrMinMax(v, grp, ngroups, true)
}

// AggrMax computes the per-group maximum of v's tail.
func AggrMax(v *bat.BAT, grp *bat.BAT, ngroups int) *bat.BAT {
	return aggrMinMax(v, grp, ngroups, false)
}

func aggrMinMax(v *bat.BAT, grp *bat.BAT, ngroups int, isMin bool) *bat.BAT {
	ids := grpIDs(grp)
	switch t := v.Tail.(type) {
	case *bat.Ints:
		out := make([]int64, ngroups)
		seen := make([]bool, ngroups)
		for i, x := range t.V {
			if x == bat.NilInt {
				continue
			}
			g := ids[i]
			if !seen[g] || (isMin && x < out[g]) || (!isMin && x > out[g]) {
				out[g] = x
				seen[g] = true
			}
		}
		for g := range out {
			if !seen[g] {
				out[g] = bat.NilInt
			}
		}
		return bat.New(bat.NewDense(0, ngroups), bat.NewInts(out))
	case *bat.Floats:
		out := make([]float64, ngroups)
		seen := make([]bool, ngroups)
		for i, x := range t.V {
			if bat.IsNilFloat(x) {
				continue
			}
			g := ids[i]
			if !seen[g] || (isMin && x < out[g]) || (!isMin && x > out[g]) {
				out[g] = x
				seen[g] = true
			}
		}
		for g := range out {
			if !seen[g] {
				out[g] = bat.NilFloat()
			}
		}
		return bat.New(bat.NewDense(0, ngroups), bat.NewFloats(out))
	case *bat.Dates:
		out := make([]bat.Date, ngroups)
		seen := make([]bool, ngroups)
		for i, x := range t.V {
			if x == bat.NilDate {
				continue
			}
			g := ids[i]
			if !seen[g] || (isMin && x < out[g]) || (!isMin && x > out[g]) {
				out[g] = x
				seen[g] = true
			}
		}
		for g := range out {
			if !seen[g] {
				out[g] = bat.NilDate
			}
		}
		return bat.New(bat.NewDense(0, ngroups), bat.NewDates(out))
	}
	panic(fmt.Sprintf("algebra: aggr.min/max over unsupported tail %T", v.Tail))
}

// Count returns the number of rows (aggr.count as a scalar).
func Count(b *bat.BAT) int64 { return int64(b.Len()) }

// SumFloat computes the scalar sum of a float tail, skipping nils.
func SumFloat(b *bat.BAT) float64 {
	t := b.Tail.(*bat.Floats)
	var s float64
	for _, x := range t.V {
		if !bat.IsNilFloat(x) {
			s += x
		}
	}
	return s
}

// SumInt computes the scalar sum of an int tail, skipping nils.
func SumInt(b *bat.BAT) int64 {
	t := b.Tail.(*bat.Ints)
	var s int64
	for _, x := range t.V {
		if x != bat.NilInt {
			s += x
		}
	}
	return s
}
