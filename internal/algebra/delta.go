package algebra

import (
	"repro/internal/bat"
)

// Delta-apply kernels for incremental pool maintenance (IVM over
// recycled intermediates). The recycler's maintain mode treats a pool
// entry as a materialized view and applies a commit's INSERT/DELETE
// delta through the entry's lineage instead of invalidating it; these
// kernels are the O(|delta|) primitives that path composes.
//
// The correctness argument all of them lean on: maintained rowsets
// stay in ascending head-oid order. Deletions remove rows preserving
// order; insertions append rows with fresh oids larger than every
// existing oid. A maintained rowset is therefore the same sequence a
// from-scratch recompute would produce — the bit-identity the
// differential tests assert.

// SplitHeads partitions b's rows by head membership in dead: kept
// holds the survivors (exactly DeleteHeads(b, dead)), removed the
// rows whose head is in dead. Aggregate maintenance needs the removed
// rows' VALUES — the catalog only reports deleted oids, but the
// pre-update pooled result still carries the tombstoned rows, so the
// split recovers them without touching base storage. Both outputs
// preserve b's row order.
func SplitHeads(b *bat.BAT, dead map[bat.Oid]struct{}) (kept, removed *bat.BAT) {
	if len(dead) == 0 {
		return b, nil
	}
	n := b.Len()
	keep := make([]int, 0, n)
	var drop []int
	for i := 0; i < n; i++ {
		if _, ok := dead[bat.OidAt(b.Head, i)]; ok {
			drop = append(drop, i)
		} else {
			keep = append(keep, i)
		}
	}
	if len(drop) == 0 {
		return b, nil
	}
	kept = bat.Gather(b, keep)
	kept.HeadSorted = b.HeadSorted
	removed = bat.Gather(b, drop)
	removed.HeadSorted = b.HeadSorted
	return kept, removed
}

// DeltaCount maintains a scalar aggr.count: old plus the inserted
// rows minus the deleted ones.
func DeltaCount(old int64, added, removed *bat.BAT) int64 {
	if added != nil {
		old += int64(added.Len())
	}
	if removed != nil {
		old -= int64(removed.Len())
	}
	return old
}

// DeltaSumInt maintains a scalar aggr.sumInt: integer addition is
// associative and commutative, so adding the inserted rows' sum and
// subtracting the removed rows' is exact. Nil deltas contribute
// nothing. (Float sums are NOT maintained this way: floating-point
// addition is non-associative, so the maintain path recomputes
// SumFloat over the maintained parent rowset instead — same values in
// the same order as a full recompute, hence bit-identical.)
func DeltaSumInt(old int64, added, removed *bat.BAT) int64 {
	if added != nil && added.Len() > 0 {
		old += SumInt(added)
	}
	if removed != nil && removed.Len() > 0 {
		old -= SumInt(removed)
	}
	return old
}
