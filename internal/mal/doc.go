// Package mal implements the engine's abstract machine: typed runtime
// values, instructions, parametrised query templates and the linear
// interpreter that executes them (paper §2.2). The interpreter exposes
// entry/exit hooks around instructions marked for recycling, which is
// how the recycler's run-time support (Algorithm 1) plugs in without
// the interpreter knowing any policy details.
package mal
