package mal

import (
	"fmt"
	"strconv"

	"repro/internal/bat"
)

// ValueKind tags the dynamic type of a runtime Value.
type ValueKind uint8

// Value kinds.
const (
	VBat ValueKind = iota
	VInt
	VFloat
	VStr
	VDate
	VBool
	VOid
	VVoid // unset / no value
)

// String returns the MAL-ish name of the kind.
func (k ValueKind) String() string {
	switch k {
	case VBat:
		return ":bat"
	case VInt:
		return ":int"
	case VFloat:
		return ":dbl"
	case VStr:
		return ":str"
	case VDate:
		return ":date"
	case VBool:
		return ":bit"
	case VOid:
		return ":oid"
	case VVoid:
		return ":void"
	}
	return ":?"
}

// Value is a runtime value on the interpreter stack: either a BAT or a
// scalar. Prov carries the recycle pool entry id that produced the
// value (0 when unknown); it implements the lineage needed for
// bottom-up sequence matching (paper §3.4, Alternative 1).
type Value struct {
	Kind ValueKind
	Bat  *bat.BAT
	I    int64
	F    float64
	S    string
	D    bat.Date
	B    bool
	O    bat.Oid

	// Prov is the recycle pool entry id whose result this value is.
	Prov uint64
}

// Convenience constructors.

// BatV wraps a BAT as a Value.
func BatV(b *bat.BAT) Value { return Value{Kind: VBat, Bat: b} }

// IntV wraps an int64.
func IntV(v int64) Value { return Value{Kind: VInt, I: v} }

// FloatV wraps a float64.
func FloatV(v float64) Value { return Value{Kind: VFloat, F: v} }

// StrV wraps a string.
func StrV(v string) Value { return Value{Kind: VStr, S: v} }

// DateV wraps a date.
func DateV(v bat.Date) Value { return Value{Kind: VDate, D: v} }

// BoolV wraps a bool.
func BoolV(v bool) Value { return Value{Kind: VBool, B: v} }

// OidV wraps an oid.
func OidV(v bat.Oid) Value { return Value{Kind: VOid, O: v} }

// VoidV is the unset value.
func VoidV() Value { return Value{Kind: VVoid} }

// Scalar unboxes a scalar Value for the algebra layer (range bounds
// etc.). Panics on BATs.
func (v Value) Scalar() any {
	switch v.Kind {
	case VInt:
		return v.I
	case VFloat:
		return v.F
	case VStr:
		return v.S
	case VDate:
		return v.D
	case VBool:
		return v.B
	case VOid:
		return v.O
	}
	panic(fmt.Sprintf("mal: Scalar() of %v", v.Kind))
}

// IsBat reports whether the value holds a BAT.
func (v Value) IsBat() bool { return v.Kind == VBat }

// EqualConst compares two scalar values for exact equality. BAT values
// never compare equal through this path (their identity is their
// provenance).
func (v Value) EqualConst(o Value) bool {
	if v.Kind != o.Kind || v.Kind == VBat {
		return false
	}
	switch v.Kind {
	case VInt:
		return v.I == o.I
	case VFloat:
		return v.F == o.F
	case VStr:
		return v.S == o.S
	case VDate:
		return v.D == o.D
	case VBool:
		return v.B == o.B
	case VOid:
		return v.O == o.O
	case VVoid:
		return true
	}
	return false
}

// Key renders a canonical matching key for the value: scalars render
// their literal, BATs render their provenance entry id. Two
// instructions with equal op names and equal argument keys compute the
// same result, which is the recycler's run-time matching criterion.
func (v Value) Key() string {
	switch v.Kind {
	case VBat:
		return "e" + strconv.FormatUint(v.Prov, 10)
	case VInt:
		return "i" + strconv.FormatInt(v.I, 10)
	case VFloat:
		return "f" + strconv.FormatFloat(v.F, 'g', -1, 64)
	case VStr:
		return "s" + v.S
	case VDate:
		return "d" + strconv.FormatInt(int64(v.D), 10)
	case VBool:
		if v.B {
			return "bT"
		}
		return "bF"
	case VOid:
		return "o" + strconv.FormatUint(uint64(v.O), 10)
	case VVoid:
		return "v"
	}
	return "?"
}

// String renders the value for debugging and pool dumps.
func (v Value) String() string {
	switch v.Kind {
	case VBat:
		if v.Bat == nil {
			return "bat(nil)"
		}
		return v.Bat.String()
	case VInt:
		return strconv.FormatInt(v.I, 10)
	case VFloat:
		return strconv.FormatFloat(v.F, 'g', -1, 64)
	case VStr:
		return strconv.Quote(v.S)
	case VDate:
		y, m, d := civil(v.D)
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	case VBool:
		return strconv.FormatBool(v.B)
	case VOid:
		return strconv.FormatUint(uint64(v.O), 10) + "@0"
	case VVoid:
		return "nil"
	}
	return "?"
}

func civil(d bat.Date) (int, int, int) {
	// Mirror of algebra.CivilFromDays, duplicated to keep mal free of
	// an algebra dependency at the value level.
	z := int(d) + 719468
	var era int
	if z >= 0 {
		era = z / 146097
	} else {
		era = (z - 146096) / 146097
	}
	doe := z - era*146097
	yoe := (doe - doe/1460 + doe/36524 - doe/146096) / 365
	y := yoe + era*400
	doy := doe - (365*yoe + yoe/4 - yoe/100)
	mp := (5*doy + 2) / 153
	day := doy - (153*mp+2)/5 + 1
	var m int
	if mp < 10 {
		m = mp + 3
	} else {
		m = mp - 9
	}
	if m <= 2 {
		y++
	}
	return y, m, day
}

// dateFromCivil converts a civil date to the engine's day count
// (inverse of civil()).
func dateFromCivil(y, m, d int) bat.Date {
	if m <= 2 {
		y--
	}
	var era int
	if y >= 0 {
		era = y / 400
	} else {
		era = (y - 399) / 400
	}
	yoe := y - era*400
	var mp int
	if m > 2 {
		mp = m - 3
	} else {
		mp = m + 9
	}
	doy := (153*mp+2)/5 + d - 1
	doe := yoe*365 + yoe/4 - yoe/100 + doy
	return bat.Date(era*146097 + doe - 719468)
}

func oidOf(n uint64) bat.Oid { return bat.Oid(n) }

// Bytes returns the memory footprint of a value for recycle pool
// accounting: the BAT size for BATs, a small constant for scalars.
func (v Value) Bytes() int64 {
	if v.Kind == VBat && v.Bat != nil {
		return v.Bat.ByteSize()
	}
	return 16
}

// Tuples returns the row count for BAT values, 1 for scalars.
func (v Value) Tuples() int {
	if v.Kind == VBat && v.Bat != nil {
		return v.Bat.Len()
	}
	return 1
}
