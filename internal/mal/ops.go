package mal

import (
	"errors"
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bat"
)

// This file registers the engine's operation set: catalogue access,
// the binary relational algebra, grouping/aggregation, column
// arithmetic and result-set export. Names follow the paper's MAL
// listings (Fig. 1) where applicable.

func init() {
	// Catalogue and persistent data access.
	RegisterOp("sql.bind", opBind)
	RegisterOp("sql.bindIdxbat", opBindIdx)
	RegisterOp("sql.exportValue", opExportValue)
	RegisterOp("sql.exportCol", opExportCol)

	// Binary relational algebra.
	RegisterOp("algebra.select", opSelect)
	RegisterOp("algebra.uselect", opUselect)
	RegisterOp("algebra.likeselect", opLikeSelect)
	RegisterOp("algebra.selectNotNil", opSelectNotNil)
	RegisterOp("algebra.join", opJoin)
	RegisterOp("algebra.semijoin", opSemijoin)
	RegisterOp("algebra.kunique", opKUnique)
	RegisterOp("algebra.markT", opMarkT)
	RegisterOp("algebra.sort", opSort)
	RegisterOp("algebra.topn", opTopN)

	// BAT viewpoint administration.
	RegisterOp("bat.reverse", opReverse)
	RegisterOp("bat.mirror", opMirror)

	// Grouping and aggregation.
	RegisterOp("group.new", opGroupNew)
	RegisterOp("group.derive", opGroupDerive)
	RegisterOp("group.heads", opGroupHeads)
	RegisterOp("aggr.countGrp", opAggrCountGrp)
	RegisterOp("aggr.sum", opAggrSum)
	RegisterOp("aggr.avg", opAggrAvg)
	RegisterOp("aggr.min", opAggrMin)
	RegisterOp("aggr.max", opAggrMax)
	RegisterOp("aggr.count", opAggrCount)
	RegisterOp("aggr.sumFlt", opAggrSumFlt)
	RegisterOp("aggr.sumInt", opAggrSumInt)

	// Column arithmetic.
	RegisterOp("batcalc.mul", opCalcMul)
	RegisterOp("batcalc.add", opCalcAdd)
	RegisterOp("batcalc.csub", opCalcCSub)
	RegisterOp("batcalc.cadd", opCalcCAdd)
	RegisterOp("batcalc.cmul", opCalcCMul)
	RegisterOp("batcalc.int2dbl", opCalcInt2Dbl)
	RegisterOp("batcalc.year", opCalcYear)

	// Scalar temporal arithmetic.
	RegisterOp("mtime.addmonths", opAddMonths)
	RegisterOp("mtime.addyears", opAddYears)

	// Extended operations used by the TPC-H and SkyServer templates.
	RegisterOp("algebra.notlikeselect", opNotLikeSelect)
	RegisterOp("algebra.union", opUnion)
	RegisterOp("algebra.antisemijoin", opAntiSemijoin)
	RegisterOp("batcalc.lt", opCalcLt)
	RegisterOp("aggr.avgFlt", opAggrAvgFlt)

	// Cheap scalar arithmetic (never recycled).
	RegisterOp("calc.mulFlt", func(_ *Ctx, _ *Instr, args []Value) (Value, error) {
		return FloatV(args[0].F * args[1].F), nil
	})
	RegisterOp("calc.addFlt", func(_ *Ctx, _ *Instr, args []Value) (Value, error) {
		return FloatV(args[0].F + args[1].F), nil
	})
	RegisterOp("calc.addInt", func(_ *Ctx, _ *Instr, args []Value) (Value, error) {
		return IntV(args[0].I + args[1].I), nil
	})
}

var errArity = errors.New("wrong argument count")

func wantBat(v Value) (*bat.BAT, error) {
	if v.Kind != VBat || v.Bat == nil {
		return nil, fmt.Errorf("expected bat argument, got %v", v.Kind)
	}
	return v.Bat, nil
}

func opBind(ctx *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 4 {
		return Value{}, errArity
	}
	t := ctx.Cat.Table(args[0].S, args[1].S)
	if t == nil {
		return Value{}, fmt.Errorf("unknown table %s.%s", args[0].S, args[1].S)
	}
	c := t.Column(args[2].S)
	if c == nil {
		return Value{}, fmt.Errorf("unknown column %s", args[2].S)
	}
	return BatV(c.Bind()), nil
}

func opBindIdx(ctx *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 3 {
		return Value{}, errArity
	}
	t := ctx.Cat.Table(args[0].S, args[1].S)
	if t == nil {
		return Value{}, fmt.Errorf("unknown table %s.%s", args[0].S, args[1].S)
	}
	return BatV(t.BindIdx(args[2].S)), nil
}

func opExportValue(ctx *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errArity
	}
	ctx.AppendResult(Result{Name: args[0].S, Val: args[1]})
	return VoidV(), nil
}

func opExportCol(ctx *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errArity
	}
	if _, err := wantBat(args[1]); err != nil {
		return Value{}, err
	}
	ctx.AppendResult(Result{Name: args[0].S, Val: args[1]})
	return VoidV(), nil
}

// SelectBounds extracts the range-select bounds from an
// algebra.select argument list (b, lo, hi, incLo, incHi). VVoid
// bounds are open. Exposed for the recycler's subsumption analysis.
func SelectBounds(args []Value) (lo, hi any, incLo, incHi bool) {
	if args[1].Kind != VVoid {
		lo = args[1].Scalar()
	}
	if args[2].Kind != VVoid {
		hi = args[2].Scalar()
	}
	return lo, hi, args[3].B, args[4].B
}

func opSelect(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 5 {
		return Value{}, errArity
	}
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	lo, hi, incLo, incHi := SelectBounds(args)
	return BatV(algebra.Select(b, lo, hi, incLo, incHi)), nil
}

func opUselect(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errArity
	}
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.Uselect(b, args[1].Scalar())), nil
}

func opLikeSelect(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errArity
	}
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.LikeSelect(b, args[1].S)), nil
}

func opSelectNotNil(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.SelectNotNil(b)), nil
}

func opJoin(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errArity
	}
	l, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	r, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.Join(l, r)), nil
}

func opSemijoin(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errArity
	}
	l, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	r, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.Semijoin(l, r)), nil
}

func opKUnique(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.KUnique(b)), nil
}

func opMarkT(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	if len(args) != 2 {
		return Value{}, errArity
	}
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(b.MarkT(args[1].O)), nil
}

func opSort(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.SortByTail(b, args[1].B)), nil
}

func opTopN(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.TopN(b, int(args[1].I))), nil
}

func opReverse(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(b.Reverse()), nil
}

func opMirror(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(b.Mirror()), nil
}

func opGroupNew(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	g := algebra.GroupNew(b)
	return BatV(g.Grp), nil
}

func opGroupDerive(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	grp, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	b, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	g := regroup(grp)
	return BatV(algebra.GroupDerive(g, b).Grp), nil
}

// regroup reconstructs a Grouping descriptor from a grouping BAT
// (head: row oid, tail: dense group ids).
func regroup(grp *bat.BAT) *algebra.Grouping {
	ids := grp.Tail.(*bat.Oids).V
	max := -1
	var repr []int
	seen := map[bat.Oid]int{}
	for i, g := range ids {
		if int(g) > max {
			max = int(g)
		}
		if _, ok := seen[g]; !ok {
			seen[g] = i
		}
	}
	repr = make([]int, max+1)
	for g, i := range seen {
		repr[g] = i
	}
	return &algebra.Grouping{Grp: grp, NGroups: max + 1, Repr: repr}
}

func opGroupHeads(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	grp, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	b, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	g := regroup(grp)
	return BatV(algebra.GroupHeads(g, b)), nil
}

func opAggrCountGrp(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	grp, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	g := regroup(grp)
	return BatV(algebra.AggrCount(g.Grp, g.NGroups)), nil
}

func aggr2(args []Value, f func(v, grp *bat.BAT, n int) *bat.BAT) (Value, error) {
	v, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	grp, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	g := regroup(grp)
	return BatV(f(v, g.Grp, g.NGroups)), nil
}

func opAggrSum(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return aggr2(args, algebra.AggrSum)
}
func opAggrAvg(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return aggr2(args, algebra.AggrAvg)
}
func opAggrMin(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return aggr2(args, algebra.AggrMin)
}
func opAggrMax(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return aggr2(args, algebra.AggrMax)
}

func opAggrCount(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return IntV(algebra.Count(b)), nil
}

func opAggrSumFlt(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return FloatV(algebra.SumFloat(b)), nil
}

func opAggrSumInt(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return IntV(algebra.SumInt(b)), nil
}

func calc2(args []Value, f func(a, b *bat.BAT) *bat.BAT) (Value, error) {
	a, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	b, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	return BatV(f(a, b)), nil
}

func opCalcMul(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return calc2(args, algebra.MulFloat)
}
func opCalcAdd(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return calc2(args, algebra.AddFloat)
}

func opCalcCSub(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	// csub(c, b) computes c - tail(b).
	b, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.SubFromConstFloat(b, args[0].F)), nil
}

func opCalcCAdd(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.AddConstFloat(b, args[1].F)), nil
}

func opCalcCMul(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.MulConstFloat(b, args[1].F)), nil
}

func opCalcInt2Dbl(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.IntToFloat(b)), nil
}

func opCalcYear(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.Year(b)), nil
}

func opNotLikeSelect(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.NotLikeSelect(b, args[1].S)), nil
}

func opUnion(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	l, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	r, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.MergeDedupByHead([]*bat.BAT{l, r})), nil
}

func opAntiSemijoin(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	l, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	r, err := wantBat(args[1])
	if err != nil {
		return Value{}, err
	}
	return BatV(algebra.AntiSemijoin(l, r)), nil
}

func opCalcLt(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return calc2(args, algebra.LessThan)
}

func opAggrAvgFlt(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	b, err := wantBat(args[0])
	if err != nil {
		return Value{}, err
	}
	return FloatV(algebra.AvgFloat(b)), nil
}

func opAddMonths(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return DateV(algebra.AddMonths(args[0].D, int(args[1].I))), nil
}

func opAddYears(_ *Ctx, _ *Instr, args []Value) (Value, error) {
	return DateV(algebra.AddYears(args[0].D, int(args[1].I))), nil
}
