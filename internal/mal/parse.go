package mal

import (
	"fmt"
	"strconv"
	"strings"
)

// This file implements a textual format for query templates that
// round-trips with Template.String(): the same MAL-like listing the
// paper prints (Fig. 1) can be parsed back into an executable
// template. The format is line-oriented:
//
//	function q18(A0:int):
//	  X1 := sql.bind("sys", "lineitem", "l_orderkey", 0)
//	  X2 := group.new(X1)
//	  ...
//	  sql.exportValue("n", X9)
//
// Literals: integers (0), floats (0.5), strings ("..."), booleans
// (true/false), dates (1996-07-01), oids (0@0), nil. Variable
// references are any identifier previously assigned or a declared
// parameter.

// ParseTemplate parses the textual form of a template.
func ParseTemplate(src string) (*Template, error) {
	p := &parser{}
	lines := strings.Split(src, "\n")
	i := 0
	// Skip blank/comment prologue.
	for i < len(lines) && blankOrComment(lines[i]) {
		i++
	}
	if i == len(lines) {
		return nil, fmt.Errorf("mal: empty template source")
	}
	if err := p.header(strings.TrimSpace(lines[i])); err != nil {
		return nil, err
	}
	i++
	for ; i < len(lines); i++ {
		line := strings.TrimSpace(lines[i])
		if blankOrComment(line) || line == "end" {
			continue
		}
		if err := p.instr(line); err != nil {
			return nil, fmt.Errorf("mal: line %d: %w", i+1, err)
		}
	}
	return p.b.Freeze(), nil
}

func blankOrComment(line string) bool {
	s := strings.TrimSpace(line)
	return s == "" || strings.HasPrefix(s, "#")
}

type parser struct {
	b    *Builder
	vars map[string]Arg
}

// header parses "function name(P0:kind, P1:kind):".
func (p *parser) header(line string) error {
	if !strings.HasPrefix(line, "function ") {
		return fmt.Errorf("mal: template must start with 'function', got %q", line)
	}
	rest := strings.TrimPrefix(line, "function ")
	open := strings.IndexByte(rest, '(')
	close_ := strings.LastIndexByte(rest, ')')
	if open < 0 || close_ < open {
		return fmt.Errorf("mal: malformed function header %q", line)
	}
	name := strings.TrimSpace(rest[:open])
	p.b = NewBuilder(name)
	p.vars = map[string]Arg{}
	paramList := strings.TrimSpace(rest[open+1 : close_])
	if paramList == "" {
		return nil
	}
	for _, decl := range strings.Split(paramList, ",") {
		parts := strings.SplitN(strings.TrimSpace(decl), ":", 2)
		if len(parts) != 2 {
			return fmt.Errorf("mal: malformed parameter %q", decl)
		}
		kind, err := parseKind(strings.TrimSpace(parts[1]))
		if err != nil {
			return err
		}
		pname := strings.TrimSpace(parts[0])
		p.vars[pname] = p.b.Param(pname, kind)
	}
	return nil
}

func parseKind(s string) (ValueKind, error) {
	switch strings.TrimPrefix(s, ":") {
	case "int", "lng":
		return VInt, nil
	case "dbl", "flt":
		return VFloat, nil
	case "str":
		return VStr, nil
	case "date":
		return VDate, nil
	case "bit", "bool":
		return VBool, nil
	case "oid":
		return VOid, nil
	case "bat":
		return VBat, nil
	}
	return 0, fmt.Errorf("mal: unknown kind %q", s)
}

// instr parses "X := module.op(args)" or "module.op(args)". A leading
// "*" or " " (the String() mark column) is tolerated.
func (p *parser) instr(line string) error {
	line = strings.TrimLeft(line, "* ")
	var ret string
	if idx := strings.Index(line, ":="); idx >= 0 {
		ret = strings.TrimSpace(line[:idx])
		line = strings.TrimSpace(line[idx+2:])
	}
	open := strings.IndexByte(line, '(')
	if open < 0 || !strings.HasSuffix(line, ")") {
		return fmt.Errorf("malformed instruction %q", line)
	}
	name := strings.TrimSpace(line[:open])
	dot := strings.IndexByte(name, '.')
	if dot < 0 {
		return fmt.Errorf("operation %q needs module.op form", name)
	}
	module, op := name[:dot], name[dot+1:]
	if !ident(module) || !ident(op) {
		return fmt.Errorf("malformed operation name %q", name)
	}
	args, err := p.args(line[open+1 : len(line)-1])
	if err != nil {
		return err
	}
	if ret == "" {
		p.b.Do(module, op, args...)
		return nil
	}
	if _, dup := p.vars[ret]; dup {
		return fmt.Errorf("variable %s reassigned (plans are single-assignment)", ret)
	}
	p.vars[ret] = p.b.Op1(module, op, args...)
	return nil
}

// ident reports whether s is a plain identifier (letters, digits,
// underscores, not starting with a digit).
func ident(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c == '_', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// args splits a comma-separated argument list, honouring string
// quoting.
func (p *parser) args(s string) ([]Arg, error) {
	var out []Arg
	var cur strings.Builder
	inStr := false
	flush := func() error {
		tok := strings.TrimSpace(cur.String())
		cur.Reset()
		if tok == "" {
			return nil
		}
		a, err := p.arg(tok)
		if err != nil {
			return err
		}
		out = append(out, a)
		return nil
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"' && (i == 0 || s[i-1] != '\\'):
			inStr = !inStr
			cur.WriteByte(c)
		case c == ',' && !inStr:
			if err := flush(); err != nil {
				return nil, err
			}
		default:
			cur.WriteByte(c)
		}
	}
	if inStr {
		return nil, fmt.Errorf("unterminated string in %q", s)
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// arg parses a single token into a literal or a variable reference.
func (p *parser) arg(tok string) (Arg, error) {
	switch {
	case tok == "nil":
		return C(VoidV()), nil
	case tok == "true":
		return C(BoolV(true)), nil
	case tok == "false":
		return C(BoolV(false)), nil
	case strings.HasPrefix(tok, "\""):
		s, err := strconv.Unquote(tok)
		if err != nil {
			return Arg{}, fmt.Errorf("bad string literal %s: %w", tok, err)
		}
		return C(StrV(s)), nil
	case strings.HasSuffix(tok, "@0"):
		n, err := strconv.ParseUint(strings.TrimSuffix(tok, "@0"), 10, 64)
		if err != nil {
			return Arg{}, fmt.Errorf("bad oid literal %s: %w", tok, err)
		}
		return C(Value{Kind: VOid, O: oidOf(n)}), nil
	}
	if d, ok := parseDateLit(tok); ok {
		return C(d), nil
	}
	if n, err := strconv.ParseInt(tok, 10, 64); err == nil {
		return C(IntV(n)), nil
	}
	if f, err := strconv.ParseFloat(tok, 64); err == nil {
		return C(FloatV(f)), nil
	}
	if a, ok := p.vars[tok]; ok {
		return a, nil
	}
	return Arg{}, fmt.Errorf("unknown variable or literal %q", tok)
}

// parseDateLit parses YYYY-MM-DD.
func parseDateLit(tok string) (Value, bool) {
	if len(tok) != 10 || tok[4] != '-' || tok[7] != '-' {
		return Value{}, false
	}
	y, err1 := strconv.Atoi(tok[:4])
	m, err2 := strconv.Atoi(tok[5:7])
	d, err3 := strconv.Atoi(tok[8:])
	if err1 != nil || err2 != nil || err3 != nil || m < 1 || m > 12 || d < 1 || d > 31 {
		return Value{}, false
	}
	return DateV(dateFromCivil(y, m, d)), true
}
