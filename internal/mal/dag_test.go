package mal

import (
	"reflect"
	"sort"
	"testing"
)

// diamondTemplate builds a plan with a known dependency shape over the
// scalar calc ops (no catalog needed):
//
//	pc0: a := calc.addInt(P0, 1)     deps: —        (param only)
//	pc1: b := calc.addInt(P0, 2)     deps: —
//	pc2: c := calc.addInt(a, b)      deps: pc0, pc1
//	pc3: exportValue("c", c)         deps: pc2
//	pc4: exportValue("b", b)         deps: pc1, pc3 (effect chain)
func diamondTemplate() *Template {
	b := NewBuilder("diamond")
	p := b.Param("P0", VInt)
	a := b.Op1("calc", "addInt", p, C(IntV(1)))
	bb := b.Op1("calc", "addInt", p, C(IntV(2)))
	c := b.Op1("calc", "addInt", a, bb)
	b.Do("sql", "exportValue", C(StrV("c")), c)
	b.Do("sql", "exportValue", C(StrV("b")), bb)
	return b.Freeze()
}

func sorted(s []int) []int {
	out := append([]int(nil), s...)
	sort.Ints(out)
	return out
}

func TestDAGEdges(t *testing.T) {
	tmpl := diamondTemplate()
	d := tmpl.DAG()

	if want := []int{0, 0, 2, 1, 2}; !reflect.DeepEqual(d.NDeps, want) {
		t.Fatalf("NDeps = %v, want %v", d.NDeps, want)
	}
	if want := []int{0, 1}; !reflect.DeepEqual(d.Roots, want) {
		t.Fatalf("Roots = %v, want %v", d.Roots, want)
	}
	succs := [][]int{{2}, {2, 4}, {3}, {4}, nil}
	for pc, want := range succs {
		if got := sorted(d.Succs[pc]); !reflect.DeepEqual(got, sorted(want)) {
			t.Fatalf("Succs[%d] = %v, want %v", pc, got, want)
		}
	}
}

func TestDAGDuplicateInstructionChained(t *testing.T) {
	b := NewBuilder("dup")
	p := b.Param("P0", VInt)
	b.Op1("calc", "addInt", p, C(IntV(1)))
	b.Op1("calc", "addInt", p, C(IntV(1))) // statically identical to pc0
	tmpl := b.Freeze()
	d := tmpl.DAG()
	if d.NDeps[1] != 1 || len(d.Succs[0]) != 1 || d.Succs[0][0] != 1 {
		t.Fatalf("duplicate instruction not chained: NDeps=%v Succs=%v", d.NDeps, d.Succs)
	}
}

func TestDAGRebuiltAfterRewrite(t *testing.T) {
	tmpl := diamondTemplate()
	old := tmpl.DAG()
	// Simulate an optimizer pass dropping the last instruction.
	tmpl.Instrs = tmpl.Instrs[:len(tmpl.Instrs)-1]
	d := tmpl.BuildDAG()
	if len(d.NDeps) != len(tmpl.Instrs) || len(old.NDeps) == len(d.NDeps) {
		t.Fatalf("BuildDAG did not track the rewritten plan: %d vs %d", len(old.NDeps), len(d.NDeps))
	}
	if got := tmpl.DAG(); got != d {
		t.Fatal("DAG() did not return the rebuilt graph")
	}
}

// TestDataflowMatchesSeq runs the same plan through the sequential
// loop and the worker-pool scheduler and requires identical exports,
// including program-order export sequence.
func TestDataflowMatchesSeq(t *testing.T) {
	tmpl := diamondTemplate()

	seq := &Ctx{QueryID: 1}
	if err := RunSeq(seq, tmpl, IntV(10)); err != nil {
		t.Fatal(err)
	}
	par := &Ctx{QueryID: 2, Workers: 4}
	if err := Run(par, tmpl, IntV(10)); err != nil {
		t.Fatal(err)
	}

	if len(seq.Results) != 2 || len(par.Results) != 2 {
		t.Fatalf("results: seq=%d par=%d", len(seq.Results), len(par.Results))
	}
	for i := range seq.Results {
		if seq.Results[i].Name != par.Results[i].Name || seq.Results[i].Val.I != par.Results[i].Val.I {
			t.Fatalf("result %d differs: seq=%+v par=%+v", i, seq.Results[i], par.Results[i])
		}
	}
	// (10+1) + (10+2) = 23, then b = 12.
	if par.Results[0].Val.I != 23 || par.Results[1].Val.I != 12 {
		t.Fatalf("wrong values: %+v", par.Results)
	}
}

func TestDataflowErrorPropagates(t *testing.T) {
	b := NewBuilder("bad")
	p := b.Param("P0", VInt)
	x := b.Op1("calc", "addInt", p, C(IntV(1)))
	y := b.Op1("nosuch", "op", x)
	b.Do("sql", "exportValue", C(StrV("y")), y)
	tmpl := b.Freeze()

	ctx := &Ctx{QueryID: 1, Workers: 4}
	err := Run(ctx, tmpl, IntV(1))
	if err == nil {
		t.Fatal("want error from unknown op")
	}
	seqCtx := &Ctx{QueryID: 2}
	seqErr := RunSeq(seqCtx, tmpl, IntV(1))
	if seqErr == nil || err.Error() != seqErr.Error() {
		t.Fatalf("error mismatch:\n  dataflow: %v\n  seq:      %v", err, seqErr)
	}
}
