package mal

import (
	"strings"
	"testing"

	"repro/internal/algebra"
	"repro/internal/catalog"

	"repro/internal/bat"
)

const demoPlan = `
# count orders in a date window
function wincount(A0:date, A1:int):
  X1 := sql.bind("sys", "orders", "o_orderdate", 0)
  X2 := mtime.addmonths(A0, A1)
  X3 := algebra.select(X1, A0, X2, true, false)
  X4 := aggr.count(X3)
  sql.exportValue("n", X4)
`

func parseCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	tb := c.CreateTable("sys", "orders", []catalog.ColDef{
		{Name: "o_orderdate", Kind: bat.KDate},
	})
	d := func(y, m, dd int) bat.Date { return algebra.MkDate(y, m, dd) }
	tb.Append([]catalog.Row{
		{"o_orderdate": d(1996, 6, 15)},
		{"o_orderdate": d(1996, 7, 15)},
		{"o_orderdate": d(1996, 9, 15)},
		{"o_orderdate": d(1996, 11, 15)},
	})
	return c
}

func TestParseAndExecute(t *testing.T) {
	tmpl, err := ParseTemplate(demoPlan)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Name != "wincount" || len(tmpl.Params) != 2 {
		t.Fatalf("template header wrong: %s %d", tmpl.Name, len(tmpl.Params))
	}
	ctx := &Ctx{Cat: parseCatalog(t)}
	if err := Run(ctx, tmpl, DateV(algebra.MkDate(1996, 7, 1)), IntV(3)); err != nil {
		t.Fatal(err)
	}
	if got := ctx.Results[0].Val.I; got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	tmpl, err := ParseTemplate(demoPlan)
	if err != nil {
		t.Fatal(err)
	}
	rendered := tmpl.String()
	again, err := ParseTemplate(rendered)
	if err != nil {
		t.Fatalf("re-parse of rendered template failed: %v\n%s", err, rendered)
	}
	if len(again.Instrs) != len(tmpl.Instrs) {
		t.Fatalf("instr count changed: %d -> %d", len(tmpl.Instrs), len(again.Instrs))
	}
	for i := range again.Instrs {
		if again.Instrs[i].Name() != tmpl.Instrs[i].Name() {
			t.Fatalf("instr %d: %s != %s", i, again.Instrs[i].Name(), tmpl.Instrs[i].Name())
		}
	}
	// The round-tripped template must execute identically.
	ctx := &Ctx{Cat: parseCatalog(t)}
	if err := Run(ctx, again, DateV(algebra.MkDate(1996, 7, 1)), IntV(3)); err != nil {
		t.Fatal(err)
	}
	if ctx.Results[0].Val.I != 2 {
		t.Fatalf("round-trip result = %d", ctx.Results[0].Val.I)
	}
}

func TestParseLiterals(t *testing.T) {
	src := `function lits():
  X1 := sql.exportValue("s", "he\"llo")
`
	tmpl, err := ParseTemplate(src)
	if err != nil {
		t.Fatal(err)
	}
	if got := tmpl.Instrs[0].Args[1].Const.S; got != `he"llo` {
		t.Fatalf("escaped string = %q", got)
	}
	src2 := `function lits2():
  X1 := algebra.markT(X0, 5@0)
`
	if _, err := ParseTemplate(src2); err == nil {
		t.Fatal("unknown variable X0 must error")
	}
}

func TestParseDateAndFloatLiterals(t *testing.T) {
	src := `function d():
  sql.exportValue("d", 1996-07-01)
  sql.exportValue("f", 0.25)
  sql.exportValue("b", true)
  sql.exportValue("n", nil)
  sql.exportValue("o", 7@0)
`
	tmpl, err := ParseTemplate(src)
	if err != nil {
		t.Fatal(err)
	}
	if tmpl.Instrs[0].Args[1].Const.Kind != VDate {
		t.Fatal("date literal not recognised")
	}
	if tmpl.Instrs[0].Args[1].Const.D != algebra.MkDate(1996, 7, 1) {
		t.Fatal("date literal value wrong")
	}
	if tmpl.Instrs[1].Args[1].Const.F != 0.25 {
		t.Fatal("float literal wrong")
	}
	if !tmpl.Instrs[2].Args[1].Const.B {
		t.Fatal("bool literal wrong")
	}
	if tmpl.Instrs[3].Args[1].Const.Kind != VVoid {
		t.Fatal("nil literal wrong")
	}
	if tmpl.Instrs[4].Args[1].Const.O != bat.Oid(7) {
		t.Fatal("oid literal wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"nonsense",
		"function f(:\n",
		"function f(A0:wat):\n",
		"function f():\n  X1 := nodot(1)\n",
		"function f():\n  X1 := a.b(\"unterminated)\n",
		"function f():\n  X1 := a.b(1)\n  X1 := a.b(2)\n", // reassignment
		"function f():\n  X1 x a.b(1)\n",
	}
	for _, src := range cases {
		if _, err := ParseTemplate(src); err == nil {
			t.Errorf("ParseTemplate(%q) should fail", src)
		}
	}
}

func TestParseSkipsMarkColumn(t *testing.T) {
	// Template.String() prefixes marked instructions with '*'.
	src := "function f():\n  *X1 := sql.exportValue(\"x\", 1)\n"
	tmpl, err := ParseTemplate(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(tmpl.Instrs) != 1 {
		t.Fatal("marked line not parsed")
	}
	_ = strings.TrimSpace
}
