package mal

import (
	"time"

	"repro/internal/algebra"
	"repro/internal/bat"
)

// Fused select-chain execution. The optimizer annotates templates with
// FusedChains (internal/opt.PlanFusion); at run time an eligible chain
// skips its member instructions and evaluates the whole filter chain
// in one pass at the last member's pc via algebra.FusedSelect. The
// rewrite is invisible to the plan: signatures, pool keys and the
// dependency DAG are those of the original instructions, and the last
// member's result slot receives a value bit-identical to unfused
// execution.

// fusionEligible decides whether chain ci fuses in this context.
// Recycler-monitored chains never fuse while a hook or measurement is
// active: fusion would bypass per-instruction pool admission and the
// potential-savings accounting, changing the recycler's observable
// behaviour. Fusion therefore accelerates the naive execution path.
func fusionEligible(ctx *Ctx, ci int) bool {
	if ctx.NoFusion {
		return false
	}
	ch := &ctx.Template.fused[ci]
	return !(ch.AnyMarked && (ctx.Hook != nil || ctx.Measure))
}

// stepFused handles one instruction belonging to a fused chain.
// Non-last members complete trivially (their single-use results only
// exist inside the chain); the last member resolves the whole chain
// and writes its own result slot. Under the dataflow scheduler the
// chain's internal data dependencies serialise the members, so every
// operand bind has completed by the time the last member runs.
func stepFused(ctx *Ctx, pc int, in *Instr, worker int, ci int, last bool, spanStart time.Time) error {
	t := ctx.Template
	ch := &t.fused[ci]
	tr := ctx.Trace
	if !last {
		if tr != nil {
			tr.SetFused(pc, ch.Pcs[len(ch.Pcs)-1:])
			tr.EndSpan(pc, in.Name(), worker, spanStart, 0, 0, 0, 0)
		}
		return nil
	}
	ret, rowsIn, err := evalFusedChain(ctx, ch)
	if err != nil {
		return err
	}
	if in.Ret >= 0 {
		ctx.Stack[in.Ret] = ret
	}
	if tr != nil {
		tr.SetFused(pc, ch.Pcs)
		tr.EndSpan(pc, in.Name(), worker, spanStart, 0, rowsIn, ret.Tuples(), ret.Bytes())
	}
	return nil
}

// evalFusedChain translates the chain's members into FusedSteps and
// runs the fused kernel. Column switches are checked for positional
// alignment at run time (both heads dense over the same oid range); a
// chain that fails the check falls back to per-member evaluation with
// chain-local intermediates, preserving exact semantics.
func evalFusedChain(ctx *Ctx, ch *FusedChain) (Value, int, error) {
	t := ctx.Template
	resolve := func(a Arg) Value {
		if a.IsConst() {
			return a.Const
		}
		return ctx.Stack[a.Var]
	}
	first := &t.Instrs[ch.Pcs[0]]
	base, err := wantBat(resolve(first.Args[0]))
	if err != nil {
		return Value{}, 0, err
	}
	steps := make([]algebra.FusedStep, 0, len(ch.Pcs))
	aligned := true
	for _, pc := range ch.Pcs {
		in := &t.Instrs[pc]
		switch in.Op {
		case "select":
			args := make([]Value, len(in.Args))
			for i, a := range in.Args {
				args[i] = resolve(a)
			}
			lo, hi, incLo, incHi := SelectBounds(args)
			steps = append(steps, algebra.FusedStep{Kind: algebra.FuseSelect, Lo: lo, Hi: hi, IncLo: incLo, IncHi: incHi})
		case "uselect":
			steps = append(steps, algebra.FusedStep{Kind: algebra.FuseUselect, V: resolve(in.Args[1]).Scalar()})
		case "selectNotNil":
			steps = append(steps, algebra.FusedStep{Kind: algebra.FuseNotNil})
		case "likeselect":
			steps = append(steps, algebra.FusedStep{Kind: algebra.FuseLike, Pattern: resolve(in.Args[1]).S})
		case "notlikeselect":
			steps = append(steps, algebra.FusedStep{Kind: algebra.FuseNotLike, Pattern: resolve(in.Args[1]).S})
		case "semijoin":
			col, cerr := wantBat(resolve(in.Args[0]))
			if cerr != nil || !alignedHeads(base, col) {
				aligned = false
			} else {
				steps = append(steps, algebra.FusedStep{Kind: algebra.FuseSwitch, Col: col})
			}
		default:
			aligned = false
		}
		if !aligned {
			break
		}
	}
	if !aligned {
		ret, err := evalChainUnfused(ctx, ch)
		return ret, base.Len(), err
	}
	return BatV(algebra.FusedSelect(base, steps)), base.Len(), nil
}

// alignedHeads reports whether two BATs share a dense head over the
// identical oid range, i.e. equal positions reference equal oids.
func alignedHeads(a, b *bat.BAT) bool {
	ah, ok1 := a.Head.(*bat.DenseOids)
	bh, ok2 := b.Head.(*bat.DenseOids)
	return ok1 && ok2 && ah.Start == bh.Start && ah.N == bh.N
}

// evalChainUnfused executes the chain's members one at a time with
// intermediates held in a chain-local scope (member result slots stay
// unwritten on the stack, exactly as in fused execution) and returns
// the last member's value.
func evalChainUnfused(ctx *Ctx, ch *FusedChain) (Value, error) {
	t := ctx.Template
	local := make(map[int]Value, len(ch.Pcs))
	var ret Value
	for _, pc := range ch.Pcs {
		in := &t.Instrs[pc]
		args := make([]Value, len(in.Args))
		for i, a := range in.Args {
			if a.IsConst() {
				args[i] = a.Const
			} else if v, ok := local[a.Var]; ok {
				args[i] = v
			} else {
				args[i] = ctx.Stack[a.Var]
			}
		}
		v, err := Eval(ctx, in, args)
		if err != nil {
			return Value{}, err
		}
		if in.Ret >= 0 {
			local[in.Ret] = v
		}
		ret = v
	}
	return ret, nil
}
