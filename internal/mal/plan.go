package mal

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// Arg is an instruction argument: a variable reference or a literal
// constant.
type Arg struct {
	// Var is the variable slot index, or -1 for a constant.
	Var int
	// Const holds the literal when Var == -1.
	Const Value
}

// V references variable slot v.
func V(v int) Arg { return Arg{Var: v} }

// C wraps a constant value.
func C(v Value) Arg { return Arg{Var: -1, Const: v} }

// IsConst reports whether the argument is a literal.
func (a Arg) IsConst() bool { return a.Var < 0 }

// Instr is one abstract-machine instruction: module.op applied to
// arguments, assigning result(s) to variable slots.
type Instr struct {
	Module, Op string
	// Ret is the output variable slot (all engine ops are single-
	// assignment, matching the paper's linear plans). Ret < 0 means
	// the instruction is executed for its side effects only.
	Ret  int
	Args []Arg

	// Marked is set by the recycler optimizer: the instruction is
	// subject to recycler monitoring (paper §3.1).
	Marked bool
	// ParamDep is set when the instruction (transitively) depends on a
	// template parameter; such instructions only match across template
	// instances with compatible parameter values (Fig. 2's light
	// nodes).
	ParamDep bool
}

// Name returns "module.op".
func (in *Instr) Name() string { return in.Module + "." + in.Op }

// HasSideEffect reports whether the instruction mutates query-visible
// state beyond its result slot (the export family appends to the shared
// result set). Side-effecting instructions keep program order relative
// to each other under the dataflow scheduler, and root liveness in the
// dead-code pass.
func (in *Instr) HasSideEffect() bool {
	return in.Ret < 0 || in.Module == "sql" && (in.Op == "exportValue" || in.Op == "exportCol")
}

// Param declares a template parameter.
type Param struct {
	Name string
	Kind ValueKind
}

// Template is a parametrised query plan: the compiled form the SQL
// front end caches and re-instantiates with new literal bindings
// (paper §2.2). Templates are immutable after Freeze.
type Template struct {
	// ID uniquely identifies the template within the process; the
	// recycler's credit bookkeeping keys on (ID, pc).
	ID   uint64
	Name string

	Params  []Param
	Instrs  []Instr
	NumVars int

	// VarNames holds a debug name per variable slot.
	VarNames []string

	// dag caches the dependency graph derived from Instrs. Freeze and
	// the optimizer store it; Run loads it. Atomic so one template can
	// be executed by many sessions concurrently.
	dag atomic.Pointer[DAG]

	// fused/fusedAt hold the optimizer's fusion annotation (see
	// internal/opt.PlanFusion). Written once before the template's first
	// run, read-only afterwards — same discipline as Marked.
	fused   []FusedChain
	fusedAt []int32
}

// FusedChain annotates one fusable run of filter instructions. The
// instructions stay in the plan verbatim — signatures, pool keys and
// recycler identity are untouched — but an eligible execution skips
// the member pcs and evaluates the whole chain in one fused kernel at
// the last member's pc.
type FusedChain struct {
	// Pcs lists the member instructions in program order. All but the
	// last produce single-use intermediates consumed inside the chain.
	Pcs []int
	// AnyMarked is set when any member is recycler-monitored; such
	// chains stay unfused whenever a hook or measurement is active so
	// per-instruction admission and statistics are preserved.
	AnyMarked bool
}

// SetFusedChains installs the fusion annotation. Must be called before
// the template executes (the optimizer's last rewriting step).
func (t *Template) SetFusedChains(chains []FusedChain) {
	t.fused = chains
	if len(chains) == 0 {
		t.fusedAt = nil
		return
	}
	t.fusedAt = make([]int32, len(t.Instrs))
	for i := range t.fusedAt {
		t.fusedAt[i] = -1
	}
	for ci := range chains {
		for _, pc := range chains[ci].Pcs {
			t.fusedAt[pc] = int32(ci)
		}
	}
}

// FusedChains returns the fusion annotation (nil when none).
func (t *Template) FusedChains() []FusedChain { return t.fused }

// fusedChainAt reports whether pc belongs to a fused chain, and
// whether it is the chain's last member (the pc the fused kernel runs
// at).
func (t *Template) fusedChainAt(pc int) (ci int, last bool, ok bool) {
	if t.fusedAt == nil || t.fusedAt[pc] < 0 {
		return 0, false, false
	}
	ci = int(t.fusedAt[pc])
	pcs := t.fused[ci].Pcs
	return ci, pcs[len(pcs)-1] == pc, true
}

var templateIDs atomic.Uint64

// Builder incrementally constructs a Template. Typical use:
//
//	b := mal.NewBuilder("q18")
//	qty := b.Param("A0", mal.VInt)
//	x1 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), ...)
//	...
//	t := b.Freeze()
type Builder struct {
	t       *Template
	nextVar int
}

// NewBuilder starts a template with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{t: &Template{ID: templateIDs.Add(1), Name: name}}
}

// Param declares the next parameter; parameters occupy the first
// variable slots in declaration order.
func (b *Builder) Param(name string, kind ValueKind) Arg {
	if len(b.t.Instrs) > 0 {
		panic("mal: parameters must be declared before instructions")
	}
	b.t.Params = append(b.t.Params, Param{Name: name, Kind: kind})
	slot := b.alloc(name)
	return V(slot)
}

func (b *Builder) alloc(name string) int {
	slot := b.nextVar
	b.nextVar++
	b.t.VarNames = append(b.t.VarNames, name)
	return slot
}

// Op1 appends an instruction with one result and returns a reference
// to the result variable.
func (b *Builder) Op1(module, op string, args ...Arg) Arg {
	slot := b.alloc(fmt.Sprintf("X%d", b.nextVar))
	b.t.Instrs = append(b.t.Instrs, Instr{Module: module, Op: op, Ret: slot, Args: args})
	return V(slot)
}

// Do appends a side-effect instruction with no result variable.
func (b *Builder) Do(module, op string, args ...Arg) {
	b.t.Instrs = append(b.t.Instrs, Instr{Module: module, Op: op, Ret: -1, Args: args})
}

// Freeze finalises and returns the template. The dependency DAG for
// the dataflow scheduler derives lazily on first use (and the
// optimizer rebuilds it after rewriting the plan), so templates that
// go straight into opt.Optimize do not pay for a graph that is
// immediately discarded.
func (b *Builder) Freeze() *Template {
	b.t.NumVars = b.nextVar
	return b.t
}

// DAG is the dataflow dependency graph of a template: instruction i
// may execute once all its predecessors completed. Because plans are
// single-assignment, every argument variable has exactly one producing
// instruction, so the graph is acyclic by construction (producers
// always precede consumers in program order).
type DAG struct {
	// NDeps[i] counts the distinct predecessor instructions of
	// instruction i.
	NDeps []int
	// Succs[i] lists the instructions that must wait for instruction i.
	Succs [][]int
	// Roots lists the instructions with no predecessors — the initial
	// ready set.
	Roots []int
}

// BuildDAG (re)derives the dependency DAG from the current instruction
// list and caches it on the template. Freeze calls it, and the
// optimizer calls it again after rewriting instructions.
func (t *Template) BuildDAG() *DAG {
	d := buildDAG(t)
	t.dag.Store(d)
	return d
}

// DAG returns the cached dependency graph, deriving it on first use
// for templates that bypassed Freeze.
func (t *Template) DAG() *DAG {
	if d := t.dag.Load(); d != nil {
		return d
	}
	return t.BuildDAG()
}

func buildDAG(t *Template) *DAG {
	n := len(t.Instrs)
	d := &DAG{NDeps: make([]int, n), Succs: make([][]int, n)}
	producer := make([]int, t.NumVars)
	for i := range producer {
		producer[i] = -1
	}
	lastEffect := -1
	// sameSig chains statically identical instructions so a later
	// duplicate still observes the earlier instance's pool admission
	// (deterministic local reuse, as in the sequential interpreter).
	sameSig := make(map[string]int, n)
	for i := range t.Instrs {
		in := &t.Instrs[i]
		preds := make([]int, 0, len(in.Args)+2)
		addPred := func(p int) {
			for _, q := range preds {
				if q == p {
					return
				}
			}
			preds = append(preds, p)
			d.Succs[p] = append(d.Succs[p], i)
			d.NDeps[i]++
		}
		for _, a := range in.Args {
			if !a.IsConst() && a.Var < len(producer) && producer[a.Var] >= 0 {
				addPred(producer[a.Var])
			}
		}
		if in.HasSideEffect() {
			if lastEffect >= 0 {
				addPred(lastEffect)
			}
			lastEffect = i
		}
		key := in.StaticSig()
		if prev, ok := sameSig[key]; ok {
			addPred(prev)
		}
		sameSig[key] = i
		if in.Ret >= 0 && in.Ret < len(producer) {
			producer[in.Ret] = i
		}
		if d.NDeps[i] == 0 {
			d.Roots = append(d.Roots, i)
		}
	}
	return d
}

// StaticSig renders an instruction's compile-time identity: operation
// plus argument slots/literals. Two instructions with equal static
// signatures compute the same value in every instance of the template
// — the identity the optimizer's CSE pass merges on and the dataflow
// DAG chains duplicate instructions by. It is the compile-time
// counterpart of the run-time plan.Signature (which resolves variable
// slots to actual operand values).
func (in *Instr) StaticSig() string {
	var sb strings.Builder
	sb.WriteString(in.Name())
	sb.WriteByte('(')
	for i, a := range in.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		if a.IsConst() {
			// The TYPED literal key, not the display form: IntV(2)
			// and FloatV(2) both render "2" but are different
			// constants, and CSE merges on this signature — a
			// display-form collision would substitute a value of the
			// wrong kind.
			sb.WriteString(a.Const.Key())
		} else {
			fmt.Fprintf(&sb, "V%d", a.Var)
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// String renders the template as a readable MAL-like listing.
func (t *Template) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "function %s(", t.Name)
	for i, p := range t.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s%s", p.Name, p.Kind)
	}
	sb.WriteString("):\n")
	for i := range t.Instrs {
		in := &t.Instrs[i]
		sb.WriteString("  ")
		if in.Marked {
			sb.WriteString("*")
		} else {
			sb.WriteString(" ")
		}
		if in.Ret >= 0 {
			fmt.Fprintf(&sb, "%s := ", t.VarNames[in.Ret])
		}
		fmt.Fprintf(&sb, "%s(", in.Name())
		for j, a := range in.Args {
			if j > 0 {
				sb.WriteString(", ")
			}
			if a.IsConst() {
				sb.WriteString(a.Const.String())
			} else {
				sb.WriteString(t.VarNames[a.Var])
			}
		}
		sb.WriteString(")\n")
	}
	return sb.String()
}

// MarkedCount returns the number of instructions marked for recycling,
// optionally excluding data-access binds, which the paper's Table II
// excludes from its potential-hit counts ("the number does not include
// instructions that bind columns to variables").
func (t *Template) MarkedCount(excludeBinds bool) int {
	n := 0
	for i := range t.Instrs {
		in := &t.Instrs[i]
		if !in.Marked {
			continue
		}
		if excludeBinds && in.Module == "sql" {
			continue
		}
		n++
	}
	return n
}
