package mal

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
)

func testCatalog(t *testing.T) *catalog.Catalog {
	t.Helper()
	c := catalog.New()
	orders := c.CreateTable("sys", "orders", []catalog.ColDef{
		{Name: "o_orderkey", Kind: bat.KInt},
		{Name: "o_orderdate", Kind: bat.KDate},
	})
	d := func(y, m, dd int) bat.Date { return algebra.MkDate(y, m, dd) }
	orders.Append([]catalog.Row{
		{"o_orderkey": int64(100), "o_orderdate": d(1996, 6, 15)},
		{"o_orderkey": int64(101), "o_orderdate": d(1996, 7, 15)},
		{"o_orderkey": int64(102), "o_orderdate": d(1996, 8, 15)},
		{"o_orderkey": int64(103), "o_orderdate": d(1996, 11, 15)},
	})
	li := c.CreateTable("sys", "lineitem", []catalog.ColDef{
		{Name: "l_orderkey", Kind: bat.KInt},
		{Name: "l_returnflag", Kind: bat.KStr},
	})
	li.Append([]catalog.Row{
		{"l_orderkey": int64(101), "l_returnflag": "R"},
		{"l_orderkey": int64(101), "l_returnflag": "N"},
		{"l_orderkey": int64(102), "l_returnflag": "R"},
		{"l_orderkey": int64(103), "l_returnflag": "R"},
	})
	li.DefineJoinIndex("li_fkey", "l_orderkey", orders, "o_orderkey")
	return c
}

// exampleTemplate builds the paper's running example (Fig. 1): count
// distinct orderkeys of orders in a date window having a lineitem with
// a given return flag.
func exampleTemplate() *Template {
	b := NewBuilder("s1_2")
	a0 := b.Param("A0", VDate)
	a1 := b.Param("A1", VDate)
	a2 := b.Param("A2", VInt)
	a3 := b.Param("A3", VStr)

	x5 := b.Op1("sql", "bind", C(StrV("sys")), C(StrV("lineitem")), C(StrV("l_returnflag")), C(IntV(0)))
	x11 := b.Op1("algebra", "uselect", x5, a3)
	x14 := b.Op1("algebra", "markT", x11, C(OidV(0)))
	x15 := b.Op1("bat", "reverse", x14)
	x16 := b.Op1("sql", "bindIdxbat", C(StrV("sys")), C(StrV("lineitem")), C(StrV("li_fkey")))
	x18 := b.Op1("algebra", "join", x15, x16)
	x19 := b.Op1("sql", "bind", C(StrV("sys")), C(StrV("orders")), C(StrV("o_orderdate")), C(IntV(0)))
	x25 := b.Op1("mtime", "addmonths", a1, a2)
	x26 := b.Op1("algebra", "select", x19, a0, x25, C(BoolV(true)), C(BoolV(false)))
	x30 := b.Op1("algebra", "markT", x26, C(OidV(0)))
	x31 := b.Op1("bat", "reverse", x30)
	x32 := b.Op1("sql", "bind", C(StrV("sys")), C(StrV("orders")), C(StrV("o_orderkey")), C(IntV(0)))
	x34 := b.Op1("bat", "mirror", x32)
	x35 := b.Op1("algebra", "join", x31, x34)
	x36 := b.Op1("bat", "reverse", x35)
	x37 := b.Op1("algebra", "join", x18, x36)
	x38 := b.Op1("bat", "reverse", x37)
	x40 := b.Op1("algebra", "markT", x38, C(OidV(0)))
	x41 := b.Op1("bat", "reverse", x40)
	x45 := b.Op1("algebra", "join", x31, x32)
	x46 := b.Op1("algebra", "join", x41, x45)
	x49 := b.Op1("algebra", "selectNotNil", x46)
	x50 := b.Op1("bat", "reverse", x49)
	x51 := b.Op1("algebra", "kunique", x50)
	x52 := b.Op1("bat", "reverse", x51)
	x53 := b.Op1("aggr", "count", x52)
	b.Do("sql", "exportValue", C(StrV("L1")), x53)
	return b.Freeze()
}

func runExample(t *testing.T, c *catalog.Catalog, tmpl *Template, retflag string, lo bat.Date, months int64) int64 {
	t.Helper()
	ctx := &Ctx{Cat: c}
	err := Run(ctx, tmpl,
		DateV(lo), DateV(lo), IntV(months), StrV(retflag))
	if err != nil {
		t.Fatal(err)
	}
	if len(ctx.Results) != 1 {
		t.Fatalf("results = %d", len(ctx.Results))
	}
	return ctx.Results[0].Val.I
}

func TestExampleQueryCorrectness(t *testing.T) {
	c := testCatalog(t)
	tmpl := exampleTemplate()
	// Window Jul..Oct (exclusive hi): orders 101 (Jul), 102 (Aug) are
	// inside; both have an 'R' lineitem -> count distinct = 2.
	got := runExample(t, c, tmpl, "R", algebra.MkDate(1996, 7, 1), 3)
	if got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	// Flag 'N': only order 101 has an N item.
	got = runExample(t, c, tmpl, "N", algebra.MkDate(1996, 7, 1), 3)
	if got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	// Window containing nothing.
	got = runExample(t, c, tmpl, "R", algebra.MkDate(1990, 1, 1), 1)
	if got != 0 {
		t.Fatalf("count = %d, want 0", got)
	}
}

func TestRunParamValidation(t *testing.T) {
	c := testCatalog(t)
	tmpl := exampleTemplate()
	ctx := &Ctx{Cat: c}
	if err := Run(ctx, tmpl, DateV(0)); err == nil {
		t.Fatal("want arity error")
	}
	if err := Run(ctx, tmpl, IntV(0), DateV(0), IntV(0), StrV("")); err == nil {
		t.Fatal("want kind error")
	}
}

func TestUnknownOp(t *testing.T) {
	b := NewBuilder("bad")
	b.Op1("nope", "missing")
	tmpl := b.Freeze()
	ctx := &Ctx{Cat: catalog.New()}
	if err := Run(ctx, tmpl); err == nil {
		t.Fatal("want unknown-op error")
	}
}

func TestValueKeyAndEquality(t *testing.T) {
	if IntV(3).Key() == IntV(4).Key() {
		t.Fatal("distinct ints share keys")
	}
	if !StrV("x").EqualConst(StrV("x")) || StrV("x").EqualConst(StrV("y")) {
		t.Fatal("string equality wrong")
	}
	if IntV(1).EqualConst(FloatV(1)) {
		t.Fatal("cross-kind equality must fail")
	}
	bv := BatV(bat.NewDenseHead(bat.NewInts([]int64{1})))
	bv.Prov = 7
	if bv.Key() != "e7" {
		t.Fatalf("bat key = %q", bv.Key())
	}
	if bv.EqualConst(bv) {
		t.Fatal("bats must not compare as consts")
	}
}

func TestValueStringAndBytes(t *testing.T) {
	if DateV(algebra.MkDate(1996, 7, 1)).String() != "1996-07-01" {
		t.Fatalf("date string = %s", DateV(algebra.MkDate(1996, 7, 1)).String())
	}
	if IntV(5).Bytes() != 16 || IntV(5).Tuples() != 1 {
		t.Fatal("scalar accounting wrong")
	}
	b := BatV(bat.NewDenseHead(bat.NewInts([]int64{1, 2, 3})))
	if b.Tuples() != 3 || b.Bytes() <= 0 {
		t.Fatal("bat accounting wrong")
	}
}

func TestTemplateStringRendersMarks(t *testing.T) {
	tmpl := exampleTemplate()
	tmpl.Instrs[0].Marked = true
	s := tmpl.String()
	if len(s) == 0 {
		t.Fatal("empty render")
	}
}

// countingHook counts hook invocations atomically: the dataflow
// scheduler may call Entry/Exit from several goroutines at once.
type countingHook struct {
	entries, exits atomic.Int64
}

func (h *countingHook) Entry(_ *Ctx, _ int, _ *Instr, _ []Value) EntryResult {
	h.entries.Add(1)
	return EntryResult{}
}

func (h *countingHook) Exit(_ *Ctx, _ int, _ *Instr, _ []Value, _ Value, _ time.Duration, _ *Rewrite) uint64 {
	h.exits.Add(1)
	return 0
}

func TestHookWrapsMarkedInstructions(t *testing.T) {
	c := testCatalog(t)
	tmpl := exampleTemplate()
	// Mark everything except scalar/export ops by hand.
	marked := 0
	for i := range tmpl.Instrs {
		in := &tmpl.Instrs[i]
		if in.Module == "mtime" || in.Op == "exportValue" {
			continue
		}
		in.Marked = true
		marked++
	}
	h := &countingHook{}
	ctx := &Ctx{Cat: c, Hook: h}
	err := Run(ctx, tmpl, DateV(algebra.MkDate(1996, 7, 1)), DateV(algebra.MkDate(1996, 7, 1)), IntV(3), StrV("R"))
	if err != nil {
		t.Fatal(err)
	}
	if h.entries.Load() != int64(marked) || h.exits.Load() != int64(marked) {
		t.Fatalf("hook calls = %d/%d, want %d", h.entries.Load(), h.exits.Load(), marked)
	}
	if ctx.Stats.Marked != marked {
		t.Fatalf("stats.Marked = %d, want %d", ctx.Stats.Marked, marked)
	}
	if ctx.Stats.MarkedNonBind != marked-3-1 { // 3 binds + 1 bindIdx are sql module
		t.Fatalf("stats.MarkedNonBind = %d", ctx.Stats.MarkedNonBind)
	}
}

type hitHook struct {
	canned Value
}

func (h *hitHook) Entry(_ *Ctx, _ int, in *Instr, _ []Value) EntryResult {
	if in.Name() == "aggr.count" {
		return EntryResult{Hit: true, Val: h.canned}
	}
	return EntryResult{}
}

func (h *hitHook) Exit(_ *Ctx, _ int, _ *Instr, _ []Value, _ Value, _ time.Duration, _ *Rewrite) uint64 {
	return 0
}

func TestHookHitSkipsExecution(t *testing.T) {
	c := testCatalog(t)
	tmpl := exampleTemplate()
	for i := range tmpl.Instrs {
		if tmpl.Instrs[i].Name() == "aggr.count" {
			tmpl.Instrs[i].Marked = true
		}
	}
	ctx := &Ctx{Cat: c, Hook: &hitHook{canned: IntV(42)}}
	err := Run(ctx, tmpl, DateV(algebra.MkDate(1996, 7, 1)), DateV(algebra.MkDate(1996, 7, 1)), IntV(3), StrV("R"))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Results[0].Val.I != 42 {
		t.Fatalf("hit value not used: %d", ctx.Results[0].Val.I)
	}
}

func TestMeasureModeCollectsPotential(t *testing.T) {
	c := testCatalog(t)
	tmpl := exampleTemplate()
	for i := range tmpl.Instrs {
		if tmpl.Instrs[i].Module == "algebra" {
			tmpl.Instrs[i].Marked = true
		}
	}
	ctx := &Ctx{Cat: c, Measure: true}
	err := Run(ctx, tmpl, DateV(algebra.MkDate(1996, 7, 1)), DateV(algebra.MkDate(1996, 7, 1)), IntV(3), StrV("R"))
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Stats.Marked == 0 {
		t.Fatal("measure mode did not count marked instructions")
	}
}

func TestMarkedCount(t *testing.T) {
	tmpl := exampleTemplate()
	for i := range tmpl.Instrs {
		tmpl.Instrs[i].Marked = true
	}
	all := tmpl.MarkedCount(false)
	nonBind := tmpl.MarkedCount(true)
	// 3 binds + 1 bindIdxbat + 1 exportValue live in the sql module.
	if all <= nonBind || all-nonBind != 5 {
		t.Fatalf("MarkedCount: all=%d nonbind=%d", all, nonBind)
	}
}

func TestSelectBoundsOpenEnds(t *testing.T) {
	args := []Value{BatV(nil), VoidV(), IntV(5), BoolV(true), BoolV(false)}
	lo, hi, il, ih := SelectBounds(args)
	if lo != nil || hi.(int64) != 5 || !il || ih {
		t.Fatalf("bounds = %v %v %v %v", lo, hi, il, ih)
	}
}
