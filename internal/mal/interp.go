package mal

import (
	"fmt"
	"time"

	"repro/internal/catalog"
)

// Rewrite describes a subsumption rewrite decided by the recycler at
// recycleEntry time: the instruction executes with Args substituted
// (e.g. the column operand replaced by a cached superset intermediate),
// and the admitted result records a derivation edge to SubsetOf
// (paper §5.1). The original template instruction is left untouched, so
// re-evaluation with other parameters remains possible.
type Rewrite struct {
	Args     []Value
	SubsetOf uint64
}

// EntryResult is the outcome of the recycler's recycleEntry operation.
type EntryResult struct {
	// Hit means the result was taken from the pool (exact match or
	// combined subsumption); Val holds it and the instruction body is
	// skipped.
	Hit bool
	Val Value
	// Rewrite, when non-nil on a miss, requests execution with
	// substituted arguments (singleton subsumption).
	Rewrite *Rewrite
}

// RecyclerHook is the interface between the interpreter and the
// recycler run-time support (Algorithm 1). A nil hook disables
// recycling entirely.
type RecyclerHook interface {
	// Entry is called before executing a marked instruction.
	Entry(ctx *Ctx, pc int, in *Instr, args []Value) EntryResult
	// Exit is called after a marked instruction executed (normally or
	// through a rewrite) and decides admission to the pool. It returns
	// the provenance id assigned to the result (0 if not admitted).
	Exit(ctx *Ctx, pc int, in *Instr, args []Value, ret Value, elapsed time.Duration, rw *Rewrite) uint64
}

// Result is one exported query result (a scalar or a column).
type Result struct {
	Name string
	Val  Value
}

// QueryStats aggregates per-query execution metrics used by the
// paper's experiments (Table II, Figs. 4–15).
type QueryStats struct {
	QueryID uint64
	// Marked counts marked (monitored) instructions encountered;
	// MarkedNonBind excludes catalogue binds, matching Table II's
	// potential-hit counting.
	Marked        int
	MarkedNonBind int
	// Hits counts instructions satisfied from the recycle pool.
	Hits        int
	HitsNonBind int
	LocalHits   int // reuse of entries admitted by this same query
	GlobalHits  int // reuse of entries admitted by earlier queries
	Subsumed    int // singleton subsumption rewrites
	Combined    int // combined subsumption hits
	// TimeInMarked sums the execution time of monitored instructions
	// that actually ran (the "potential savings" of Table II).
	TimeInMarked time.Duration
	// SavedTime sums the recorded cost of reused intermediates;
	// SavedLocal/SavedGlobal split it by reuse type (Table II).
	SavedTime   time.Duration
	SavedLocal  time.Duration
	SavedGlobal time.Duration
	// SubsumeOverhead sums time spent in the combined subsumption
	// search itself (Fig. 15 bottom).
	SubsumeOverhead time.Duration
	// CombinedExec sums the piecewise execution time of combined-
	// subsumption hits (the subsumed selection time of Fig. 15).
	CombinedExec time.Duration
	// Elapsed is the wall time of the whole query.
	Elapsed time.Duration
}

// HitRatio returns hits over potential hits, both excluding binds
// (the paper's per-query hit ratio).
func (s *QueryStats) HitRatio() float64 {
	if s.MarkedNonBind == 0 {
		return 0
	}
	return float64(s.HitsNonBind) / float64(s.MarkedNonBind)
}

// Ctx is one query execution context.
type Ctx struct {
	Cat  *catalog.Catalog
	Hook RecyclerHook
	// Measure enables per-instruction timing of marked instructions
	// even without a hook (needed to report potential savings for
	// naive runs).
	Measure bool

	QueryID  uint64
	Template *Template
	Stack    []Value
	Stats    QueryStats
	Results  []Result
}

// Run executes template t with the given parameter values.
func Run(ctx *Ctx, t *Template, params ...Value) error {
	if len(params) != len(t.Params) {
		return fmt.Errorf("mal: %s expects %d params, got %d", t.Name, len(t.Params), len(params))
	}
	ctx.Template = t
	ctx.Stack = make([]Value, t.NumVars)
	ctx.Results = ctx.Results[:0]
	ctx.Stats = QueryStats{QueryID: ctx.QueryID}
	for i, p := range params {
		if p.Kind != t.Params[i].Kind {
			return fmt.Errorf("mal: %s param %s expects %v, got %v", t.Name, t.Params[i].Name, t.Params[i].Kind, p.Kind)
		}
		ctx.Stack[i] = p
	}
	start := time.Now()
	for pc := range t.Instrs {
		if err := step(ctx, pc, &t.Instrs[pc]); err != nil {
			return fmt.Errorf("mal: %s pc=%d %s: %w", t.Name, pc, t.Instrs[pc].Name(), err)
		}
	}
	ctx.Stats.Elapsed = time.Since(start)
	return nil
}

func step(ctx *Ctx, pc int, in *Instr) error {
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		if a.IsConst() {
			args[i] = a.Const
		} else {
			args[i] = ctx.Stack[a.Var]
		}
	}

	fn := lookupOp(in.Name())
	if fn == nil {
		return fmt.Errorf("unknown operation")
	}

	if in.Marked && ctx.Hook != nil {
		ctx.Stats.Marked++
		if in.Module != "sql" {
			ctx.Stats.MarkedNonBind++
		}
		res := ctx.Hook.Entry(ctx, pc, in, args)
		if res.Hit {
			if in.Ret >= 0 {
				ctx.Stack[in.Ret] = res.Val
			}
			return nil
		}
		execArgs := args
		if res.Rewrite != nil {
			execArgs = res.Rewrite.Args
		}
		start := time.Now()
		ret, err := fn(ctx, in, execArgs)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		ctx.Stats.TimeInMarked += elapsed
		prov := ctx.Hook.Exit(ctx, pc, in, args, ret, elapsed, res.Rewrite)
		ret.Prov = prov
		if in.Ret >= 0 {
			ctx.Stack[in.Ret] = ret
		}
		return nil
	}

	// Regular execution without recycling.
	if in.Marked && ctx.Measure {
		ctx.Stats.Marked++
		if in.Module != "sql" {
			ctx.Stats.MarkedNonBind++
		}
		start := time.Now()
		ret, err := fn(ctx, in, args)
		if err != nil {
			return err
		}
		ctx.Stats.TimeInMarked += time.Since(start)
		if in.Ret >= 0 {
			ctx.Stack[in.Ret] = ret
		}
		return nil
	}
	ret, err := fn(ctx, in, args)
	if err != nil {
		return err
	}
	if in.Ret >= 0 {
		ctx.Stack[in.Ret] = ret
	}
	return nil
}

// OpFunc implements one abstract-machine operation.
type OpFunc func(ctx *Ctx, in *Instr, args []Value) (Value, error)

var opRegistry = map[string]OpFunc{}

// RegisterOp installs an operation implementation under "module.op".
// Registration happens at package init time; later registrations
// overwrite earlier ones (used by tests to stub ops).
func RegisterOp(name string, fn OpFunc) { opRegistry[name] = fn }

func lookupOp(name string) OpFunc { return opRegistry[name] }

// HasOp reports whether an operation is registered.
func HasOp(name string) bool { return opRegistry[name] != nil }

// Eval executes a single instruction against explicit argument values,
// outside the normal interpreter loop. The optimizer's constant folder
// and the recycler's delta propagation use it.
func Eval(ctx *Ctx, in *Instr, args []Value) (Value, error) {
	fn := lookupOp(in.Name())
	if fn == nil {
		return Value{}, fmt.Errorf("mal: unknown operation %s", in.Name())
	}
	return fn(ctx, in, args)
}
