package mal

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/catalog"
	"repro/internal/trace"
)

// Rewrite describes a subsumption rewrite decided by the recycler at
// recycleEntry time: the instruction executes with Args substituted
// (e.g. the column operand replaced by a cached superset intermediate),
// and the admitted result records a derivation edge to SubsetOf
// (paper §5.1). The original template instruction is left untouched, so
// re-evaluation with other parameters remains possible.
type Rewrite struct {
	Args     []Value
	SubsetOf uint64
}

// EntryResult is the outcome of the recycler's recycleEntry operation.
type EntryResult struct {
	// Hit means the result was taken from the pool (exact match or
	// combined subsumption); Val holds it and the instruction body is
	// skipped.
	Hit bool
	Val Value
	// Rewrite, when non-nil on a miss, requests execution with
	// substituted arguments (singleton subsumption).
	Rewrite *Rewrite
	// Reason explains the decision for tracing ("hit:exact",
	// "rewrite:subsume-select", ...). Empty means unstated; the
	// interpreter then records a plain "hit" or "miss".
	Reason string
}

// RecyclerHook is the interface between the interpreter and the
// recycler run-time support (Algorithm 1). A nil hook disables
// recycling entirely.
//
// Implementations must be safe for concurrent use: the dataflow
// scheduler invokes Entry and Exit from multiple goroutines — across
// sessions sharing one hook, and for independent instructions within
// a single query — and the interpreter takes no lock around either
// call, so all synchronisation (including any work an implementation
// performs on behalf of a hit, such as combined subsumption's
// piecewise execution) is the hook's own responsibility. Mutations of
// per-query state must go through Ctx.UpdateStats.
type RecyclerHook interface {
	// Entry is called before executing a marked instruction.
	Entry(ctx *Ctx, pc int, in *Instr, args []Value) EntryResult
	// Exit is called after a marked instruction executed (normally or
	// through a rewrite) and decides admission to the pool. It returns
	// the provenance id assigned to the result (0 if not admitted).
	Exit(ctx *Ctx, pc int, in *Instr, args []Value, ret Value, elapsed time.Duration, rw *Rewrite) uint64
}

// Result is one exported query result (a scalar or a column).
type Result struct {
	Name string
	Val  Value
}

// QueryStats aggregates per-query execution metrics used by the
// paper's experiments (Table II, Figs. 4–15).
type QueryStats struct {
	QueryID uint64
	// Marked counts marked (monitored) instructions encountered;
	// MarkedNonBind excludes catalogue binds, matching Table II's
	// potential-hit counting.
	Marked        int
	MarkedNonBind int
	// Hits counts instructions satisfied from the recycle pool.
	Hits        int
	HitsNonBind int
	LocalHits   int // reuse of entries admitted by this same query
	GlobalHits  int // reuse of entries admitted by earlier queries
	Subsumed    int // singleton subsumption rewrites
	Combined    int // combined subsumption hits
	// TimeInMarked sums the execution time of monitored instructions
	// that actually ran (the "potential savings" of Table II).
	TimeInMarked time.Duration
	// SavedTime sums the recorded cost of reused intermediates;
	// SavedLocal/SavedGlobal split it by reuse type (Table II).
	SavedTime   time.Duration
	SavedLocal  time.Duration
	SavedGlobal time.Duration
	// SubsumeOverhead sums time spent in the combined subsumption
	// search itself (Fig. 15 bottom).
	SubsumeOverhead time.Duration
	// CombinedExec sums the piecewise execution time of combined-
	// subsumption hits (the subsumed selection time of Fig. 15).
	CombinedExec time.Duration
	// Elapsed is the wall time of the whole query.
	Elapsed time.Duration
}

// HitRatio returns hits over potential hits, both excluding binds
// (the paper's per-query hit ratio).
func (s *QueryStats) HitRatio() float64 {
	if s.MarkedNonBind == 0 {
		return 0
	}
	return float64(s.HitsNonBind) / float64(s.MarkedNonBind)
}

// Ctx is one query execution context.
type Ctx struct {
	Cat  *catalog.Catalog
	Hook RecyclerHook
	// Measure enables per-instruction timing of marked instructions
	// even without a hook (needed to report potential savings for
	// naive runs).
	Measure bool
	// Workers bounds the intra-query parallelism of Run: 0 uses
	// GOMAXPROCS, 1 forces sequential execution, n > 1 runs at most n
	// independent instructions concurrently.
	Workers int
	// NoFusion disables fused select-chain execution for this context,
	// forcing the per-instruction interpreter path even on templates
	// annotated by the optimizer's fusion pass.
	NoFusion bool

	// Trace, when non-nil, records one span per executed instruction.
	// Span slots are written lock-free: each pc runs exactly once on
	// one worker goroutine and the dataflow completion channel orders
	// those writes before Finish. Nil disables tracing at the cost of
	// a pointer test per instruction.
	Trace *trace.Recorder
	// Metrics, when non-nil, receives stage-latency observations
	// (recycler lookup, schedule) into the process-wide histograms.
	Metrics *trace.Metrics

	QueryID  uint64
	Template *Template
	Stack    []Value
	Stats    QueryStats
	Results  []Result

	// mu guards Stats and Results while the dataflow scheduler runs
	// instructions of this query on several goroutines.
	mu sync.Mutex
}

// UpdateStats applies f to the query statistics under the context lock.
// The interpreter and the recycler hook both funnel their per-query
// bookkeeping through it so concurrently executing instructions of one
// query do not race.
func (ctx *Ctx) UpdateStats(f func(*QueryStats)) {
	ctx.mu.Lock()
	f(&ctx.Stats)
	ctx.mu.Unlock()
}

// AppendResult exports one named result. Export instructions are
// chained in the dependency DAG, so results arrive in program order
// even under the dataflow scheduler.
func (ctx *Ctx) AppendResult(r Result) {
	ctx.mu.Lock()
	ctx.Results = append(ctx.Results, r)
	ctx.mu.Unlock()
}

// begin validates the parameters and resets the context for one run.
func (ctx *Ctx) begin(t *Template, params []Value) error {
	if len(params) != len(t.Params) {
		return fmt.Errorf("mal: %s expects %d params, got %d", t.Name, len(t.Params), len(params))
	}
	ctx.Template = t
	ctx.Stack = make([]Value, t.NumVars)
	ctx.Results = ctx.Results[:0]
	ctx.Stats = QueryStats{QueryID: ctx.QueryID}
	for i, p := range params {
		if p.Kind != t.Params[i].Kind {
			return fmt.Errorf("mal: %s param %s expects %v, got %v", t.Name, t.Params[i].Name, t.Params[i].Kind, p.Kind)
		}
		ctx.Stack[i] = p
	}
	return nil
}

func wrapErr(t *Template, pc int, err error) error {
	return fmt.Errorf("mal: %s pc=%d %s: %w", t.Name, pc, t.Instrs[pc].Name(), err)
}

// Run executes template t with the given parameter values on the
// dataflow scheduler: the template's dependency DAG (derived at Freeze
// time) drives a worker pool that executes independent instructions
// concurrently, MonetDB's dataflow-optimizer analogue. ctx.Workers
// bounds the parallelism; Workers == 1 (or a single-instruction plan)
// falls back to RunSeq.
func Run(ctx *Ctx, t *Template, params ...Value) error {
	workers := ctx.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(t.Instrs) {
		workers = len(t.Instrs)
	}
	if workers <= 1 {
		return RunSeq(ctx, t, params...)
	}
	if err := ctx.begin(t, params); err != nil {
		return err
	}
	start := time.Now()
	if err := runDataflow(ctx, t, workers); err != nil {
		return err
	}
	ctx.Stats.Elapsed = time.Since(start)
	return nil
}

// RunSeq executes template t in program order on the calling goroutine
// — the classical operator-at-a-time loop. It is the fallback for
// single-worker contexts and the reference semantics the dataflow
// scheduler must preserve.
func RunSeq(ctx *Ctx, t *Template, params ...Value) error {
	if err := ctx.begin(t, params); err != nil {
		return err
	}
	if ctx.Trace != nil {
		ctx.Trace.SetParents(dagParents(t))
	}
	start := time.Now()
	for pc := range t.Instrs {
		if err := step(ctx, pc, &t.Instrs[pc], 0); err != nil {
			return wrapErr(t, pc, err)
		}
	}
	ctx.Stats.Elapsed = time.Since(start)
	return nil
}

// dagParents inverts the dependency DAG's successor lists into
// per-instruction parent lists for the trace tree.
func dagParents(t *Template) [][]int {
	d := t.DAG()
	parents := make([][]int, len(t.Instrs))
	for pc, succs := range d.Succs {
		for _, s := range succs {
			parents[s] = append(parents[s], pc)
		}
	}
	return parents
}

// runDataflow schedules the template's instructions over a worker
// pool. A single coordinator (the calling goroutine) owns the ready
// queue: workers report completions, the coordinator decrements
// successor in-degrees and enqueues instructions as they become
// runnable. On the first error it stops issuing work, drains what is
// in flight and returns the error. Channel capacities equal the
// instruction count, so neither side ever blocks on a full buffer.
func runDataflow(ctx *Ctx, t *Template, workers int) error {
	var schedStart time.Time
	if ctx.Trace != nil || ctx.Metrics != nil {
		schedStart = time.Now()
	}
	if ctx.Trace != nil {
		ctx.Trace.SetParents(dagParents(t))
	}
	d := t.DAG()
	n := len(t.Instrs)
	indeg := append([]int(nil), d.NDeps...)
	type completion struct {
		pc  int
		err error
	}
	ready := make(chan int, n)
	done := make(chan completion, n)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for pc := range ready {
				done <- completion{pc, step(ctx, pc, &t.Instrs[pc], worker)}
			}
		}(w)
	}
	issued := 0
	for _, pc := range d.Roots {
		ready <- pc
		issued++
	}
	if !schedStart.IsZero() {
		sd := time.Since(schedStart)
		if ctx.Metrics != nil {
			ctx.Metrics.Schedule.Observe(sd)
		}
		ctx.Trace.SetSchedule(sd)
	}
	var firstErr error
	for completed := 0; completed < issued; completed++ {
		c := <-done
		if c.err != nil {
			if firstErr == nil {
				firstErr = wrapErr(t, c.pc, c.err)
			}
			continue
		}
		if firstErr != nil {
			continue // draining; do not issue successors
		}
		for _, s := range d.Succs[c.pc] {
			if indeg[s]--; indeg[s] == 0 {
				ready <- s
				issued++
			}
		}
	}
	close(ready)
	wg.Wait()
	return firstErr
}

func step(ctx *Ctx, pc int, in *Instr, worker int) error {
	tr := ctx.Trace // nil when tracing is disabled: the only cost below is pointer tests
	var spanStart time.Time
	if tr != nil {
		spanStart = time.Now()
	}
	if ctx.Template.fusedAt != nil {
		if ci, last, ok := ctx.Template.fusedChainAt(pc); ok && fusionEligible(ctx, ci) {
			return stepFused(ctx, pc, in, worker, ci, last, spanStart)
		}
	}
	args := make([]Value, len(in.Args))
	for i, a := range in.Args {
		if a.IsConst() {
			args[i] = a.Const
		} else {
			args[i] = ctx.Stack[a.Var]
		}
	}

	fn := lookupOp(in.Name())
	if fn == nil {
		return fmt.Errorf("unknown operation")
	}

	if in.Marked && ctx.Hook != nil {
		ctx.UpdateStats(func(s *QueryStats) {
			s.Marked++
			if in.Module != "sql" {
				s.MarkedNonBind++
			}
		})
		var lookStart time.Time
		if tr != nil || ctx.Metrics != nil {
			lookStart = time.Now()
		}
		res := ctx.Hook.Entry(ctx, pc, in, args)
		var lookup time.Duration
		if !lookStart.IsZero() {
			lookup = time.Since(lookStart)
			if ctx.Metrics != nil {
				ctx.Metrics.RecyclerLookup.Observe(lookup)
			}
		}
		if res.Hit {
			if in.Ret >= 0 {
				ctx.Stack[in.Ret] = res.Val
			}
			if tr != nil {
				tr.SetRecycle(pc, reasonOr(res.Reason, "hit"))
				tr.EndSpan(pc, in.Name(), worker, spanStart, lookup, spanRows(args), res.Val.Tuples(), res.Val.Bytes())
			}
			return nil
		}
		execArgs := args
		if res.Rewrite != nil {
			execArgs = res.Rewrite.Args
		}
		start := time.Now()
		ret, err := fn(ctx, in, execArgs)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		ctx.UpdateStats(func(s *QueryStats) { s.TimeInMarked += elapsed })
		prov := ctx.Hook.Exit(ctx, pc, in, args, ret, elapsed, res.Rewrite)
		ret.Prov = prov
		if in.Ret >= 0 {
			ctx.Stack[in.Ret] = ret
		}
		if tr != nil {
			tr.SetRecycle(pc, reasonOr(res.Reason, "miss"))
			tr.EndSpan(pc, in.Name(), worker, spanStart, lookup, spanRows(args), ret.Tuples(), ret.Bytes())
		}
		return nil
	}

	// Regular execution without recycling.
	if in.Marked && ctx.Measure {
		ctx.UpdateStats(func(s *QueryStats) {
			s.Marked++
			if in.Module != "sql" {
				s.MarkedNonBind++
			}
		})
		start := time.Now()
		ret, err := fn(ctx, in, args)
		elapsed := time.Since(start)
		if err != nil {
			return err
		}
		ctx.UpdateStats(func(s *QueryStats) { s.TimeInMarked += elapsed })
		if in.Ret >= 0 {
			ctx.Stack[in.Ret] = ret
		}
		if tr != nil {
			tr.EndSpan(pc, in.Name(), worker, spanStart, 0, spanRows(args), ret.Tuples(), ret.Bytes())
		}
		return nil
	}
	ret, err := fn(ctx, in, args)
	if err != nil {
		return err
	}
	if in.Ret >= 0 {
		ctx.Stack[in.Ret] = ret
	}
	if tr != nil {
		tr.EndSpan(pc, in.Name(), worker, spanStart, 0, spanRows(args), ret.Tuples(), ret.Bytes())
	}
	return nil
}

func reasonOr(r, def string) string {
	if r == "" {
		return def
	}
	return r
}

// spanRows sums the tuple counts of the column arguments.
func spanRows(args []Value) int {
	n := 0
	for _, a := range args {
		if a.IsBat() {
			n += a.Tuples()
		}
	}
	return n
}

// OpFunc implements one abstract-machine operation.
type OpFunc func(ctx *Ctx, in *Instr, args []Value) (Value, error)

var opRegistry = map[string]OpFunc{}

// RegisterOp installs an operation implementation under "module.op".
// Registration happens at package init time; later registrations
// overwrite earlier ones (used by tests to stub ops).
func RegisterOp(name string, fn OpFunc) { opRegistry[name] = fn }

func lookupOp(name string) OpFunc { return opRegistry[name] }

// HasOp reports whether an operation is registered.
func HasOp(name string) bool { return opRegistry[name] != nil }

// Eval executes a single instruction against explicit argument values,
// outside the normal interpreter loop. The optimizer's constant folder
// and the recycler's delta propagation use it.
func Eval(ctx *Ctx, in *Instr, args []Value) (Value, error) {
	fn := lookupOp(in.Name())
	if fn == nil {
		return Value{}, fmt.Errorf("mal: unknown operation %s", in.Name())
	}
	return fn(ctx, in, args)
}
