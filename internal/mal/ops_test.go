package mal

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
)

// evalOp runs a single registered op against explicit values.
func evalOp(t *testing.T, ctx *Ctx, name string, args ...Value) Value {
	t.Helper()
	parts := splitName(name)
	in := &Instr{Module: parts[0], Op: parts[1], Ret: 0}
	v, err := Eval(ctx, in, args)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return v
}

func splitName(name string) [2]string {
	for i := range name {
		if name[i] == '.' {
			return [2]string{name[:i], name[i+1:]}
		}
	}
	panic("bad op name " + name)
}

func intsBat(vals ...int64) Value { return BatV(bat.NewDenseHead(bat.NewInts(vals))) }

func TestOpsRegistered(t *testing.T) {
	for _, name := range []string{
		"sql.bind", "sql.bindIdxbat", "sql.exportValue", "sql.exportCol",
		"algebra.select", "algebra.uselect", "algebra.likeselect",
		"algebra.notlikeselect", "algebra.selectNotNil", "algebra.join",
		"algebra.semijoin", "algebra.antisemijoin", "algebra.union",
		"algebra.kunique", "algebra.markT", "algebra.sort", "algebra.topn",
		"bat.reverse", "bat.mirror",
		"group.new", "group.derive", "group.heads",
		"aggr.countGrp", "aggr.sum", "aggr.avg", "aggr.min", "aggr.max",
		"aggr.count", "aggr.sumFlt", "aggr.sumInt", "aggr.avgFlt",
		"batcalc.mul", "batcalc.add", "batcalc.csub", "batcalc.cadd",
		"batcalc.cmul", "batcalc.int2dbl", "batcalc.year", "batcalc.lt",
		"mtime.addmonths", "mtime.addyears",
		"calc.mulFlt", "calc.addFlt", "calc.addInt",
	} {
		if !HasOp(name) {
			t.Errorf("op %s not registered", name)
		}
	}
}

func TestScalarCalcOps(t *testing.T) {
	ctx := &Ctx{}
	if v := evalOp(t, ctx, "calc.mulFlt", FloatV(3), FloatV(2)); v.F != 6 {
		t.Fatalf("mulFlt = %v", v.F)
	}
	if v := evalOp(t, ctx, "calc.addFlt", FloatV(3), FloatV(2)); v.F != 5 {
		t.Fatalf("addFlt = %v", v.F)
	}
	if v := evalOp(t, ctx, "calc.addInt", IntV(3), IntV(2)); v.I != 5 {
		t.Fatalf("addInt = %v", v.I)
	}
}

func TestOpArityAndTypeErrors(t *testing.T) {
	ctx := &Ctx{}
	bad := []struct {
		name string
		args []Value
	}{
		{"algebra.select", []Value{intsBat(1)}},                                          // arity
		{"algebra.join", []Value{intsBat(1), IntV(1)}},                                   // type
		{"algebra.select", []Value{IntV(1), IntV(0), IntV(1), BoolV(true), BoolV(true)}}, // non-bat
		{"sql.bind", []Value{StrV("sys")}},                                               // arity
		{"aggr.count", []Value{IntV(1)}},                                                 // non-bat
		{"batcalc.mul", []Value{intsBat(1), IntV(1)}},                                    // type
	}
	for _, c := range bad {
		parts := splitName(c.name)
		in := &Instr{Module: parts[0], Op: parts[1]}
		if _, err := Eval(ctx, in, c.args); err == nil {
			t.Errorf("%s with bad args: want error", c.name)
		}
	}
}

func TestBindUnknownTableAndColumn(t *testing.T) {
	ctx := &Ctx{Cat: catalog.New()}
	in := &Instr{Module: "sql", Op: "bind"}
	if _, err := Eval(ctx, in, []Value{StrV("sys"), StrV("nope"), StrV("c"), IntV(0)}); err == nil {
		t.Fatal("want unknown-table error")
	}
	cat := catalog.New()
	cat.CreateTable("sys", "t", []catalog.ColDef{{Name: "a", Kind: bat.KInt}})
	ctx = &Ctx{Cat: cat}
	if _, err := Eval(ctx, in, []Value{StrV("sys"), StrV("t"), StrV("nope"), IntV(0)}); err == nil {
		t.Fatal("want unknown-column error")
	}
}

func TestGroupOpsRoundTrip(t *testing.T) {
	ctx := &Ctx{}
	keys := BatV(bat.NewDenseHead(bat.NewInts([]int64{7, 8, 7, 9})))
	grp := evalOp(t, ctx, "group.new", keys)
	cnt := evalOp(t, ctx, "aggr.countGrp", grp)
	counts := cnt.Bat.Tail.(*bat.Ints).V
	if len(counts) != 3 || counts[0] != 2 {
		t.Fatalf("counts = %v", counts)
	}
	heads := evalOp(t, ctx, "group.heads", grp, keys)
	if heads.Bat.Len() != 3 {
		t.Fatalf("group heads = %d", heads.Bat.Len())
	}
	sub := BatV(bat.NewDenseHead(bat.NewInts([]int64{1, 1, 2, 2})))
	grp2 := evalOp(t, ctx, "group.derive", grp, sub)
	cnt2 := evalOp(t, ctx, "aggr.countGrp", grp2)
	if cnt2.Bat.Len() != 4 {
		t.Fatalf("derived groups = %d", cnt2.Bat.Len())
	}
}

func TestAggrOpsThroughRegistry(t *testing.T) {
	ctx := &Ctx{}
	vals := BatV(bat.NewDenseHead(bat.NewInts([]int64{10, 20, 30})))
	grp := evalOp(t, ctx, "group.new", BatV(bat.NewDenseHead(bat.NewInts([]int64{1, 1, 2}))))
	sum := evalOp(t, ctx, "aggr.sum", vals, grp)
	if sum.Bat.Tail.(*bat.Ints).V[0] != 30 {
		t.Fatal("aggr.sum wrong")
	}
	avg := evalOp(t, ctx, "aggr.avg", vals, grp)
	if avg.Bat.Tail.(*bat.Floats).V[0] != 15 {
		t.Fatal("aggr.avg wrong")
	}
	mn := evalOp(t, ctx, "aggr.min", vals, grp)
	mx := evalOp(t, ctx, "aggr.max", vals, grp)
	if mn.Bat.Tail.(*bat.Ints).V[0] != 10 || mx.Bat.Tail.(*bat.Ints).V[0] != 20 {
		t.Fatal("aggr.min/max wrong")
	}
	if v := evalOp(t, ctx, "aggr.sumInt", vals); v.I != 60 {
		t.Fatal("aggr.sumInt wrong")
	}
	if v := evalOp(t, ctx, "aggr.avgFlt", vals); v.F != 20 {
		t.Fatal("aggr.avgFlt wrong")
	}
}

func TestUnionAntiSemijoinOps(t *testing.T) {
	ctx := &Ctx{}
	mk := func(heads []bat.Oid) Value {
		b := bat.New(bat.NewOids(heads), bat.NewOids(heads))
		b.HeadSorted = true
		return BatV(b)
	}
	u := evalOp(t, ctx, "algebra.union", mk([]bat.Oid{1, 2}), mk([]bat.Oid{2, 3}))
	if u.Bat.Len() != 3 {
		t.Fatalf("union = %d rows", u.Bat.Len())
	}
	a := evalOp(t, ctx, "algebra.antisemijoin", mk([]bat.Oid{1, 2, 3}), mk([]bat.Oid{2}))
	if a.Bat.Len() != 2 {
		t.Fatalf("antisemijoin = %d rows", a.Bat.Len())
	}
}

func TestDateOps(t *testing.T) {
	ctx := &Ctx{}
	d := algebra.MkDate(1996, 7, 1)
	v := evalOp(t, ctx, "mtime.addmonths", DateV(d), IntV(3))
	if v.D != algebra.MkDate(1996, 10, 1) {
		t.Fatalf("addmonths = %v", v)
	}
	v = evalOp(t, ctx, "mtime.addyears", DateV(d), IntV(1))
	if v.D != algebra.MkDate(1997, 7, 1) {
		t.Fatalf("addyears = %v", v)
	}
	yb := BatV(bat.NewDenseHead(bat.NewDates([]bat.Date{d})))
	y := evalOp(t, ctx, "batcalc.year", yb)
	if y.Bat.Tail.(*bat.Ints).V[0] != 1996 {
		t.Fatal("batcalc.year wrong")
	}
}

func TestSortAndTopNOps(t *testing.T) {
	ctx := &Ctx{}
	b := intsBat(3, 1, 2)
	s := evalOp(t, ctx, "algebra.sort", b, BoolV(true))
	if s.Bat.Tail.Get(0) != int64(1) {
		t.Fatal("sort wrong")
	}
	top := evalOp(t, ctx, "algebra.topn", s, IntV(2))
	if top.Bat.Len() != 2 {
		t.Fatal("topn wrong")
	}
}

func TestExportOps(t *testing.T) {
	ctx := &Ctx{}
	evalOp(t, ctx, "sql.exportValue", StrV("x"), IntV(42))
	evalOp(t, ctx, "sql.exportCol", StrV("c"), intsBat(1, 2))
	if len(ctx.Results) != 2 || ctx.Results[0].Val.I != 42 {
		t.Fatalf("results = %+v", ctx.Results)
	}
	// exportCol of a non-bat errors.
	in := &Instr{Module: "sql", Op: "exportCol"}
	if _, err := Eval(ctx, in, []Value{StrV("c"), IntV(1)}); err == nil {
		t.Fatal("want error")
	}
}
