// Package opt implements the engine's optimizer pipeline: constant
// expression evaluation, canonical argument ordering for commutative
// operations, common-subexpression elimination, dead-code elimination
// and — the pass this reproduction exists for — the recycler optimizer
// that marks instructions eligible for run-time recycling (paper
// §3.1).
//
// The commute and CSE passes are the plan-level half of the
// normalization pipeline (the SQL front end's query normalization is
// the other half): they make semantically equal plans render ONE
// identity, so equivalent work shares recycle pool entries instead of
// missing. See docs/ARCHITECTURE.md, "the single-signature
// invariant".
//
// Pass order is fixed in Optimize: folding first (later passes compare
// materialised literals), commute before CSE (so commuted duplicates
// merge), marking last (it must see the final instruction list).
package opt
