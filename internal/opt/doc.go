// Package opt implements the engine's optimizer pipeline: constant
// expression evaluation, dead-code elimination and — the pass this
// reproduction exists for — the recycler optimizer that marks
// instructions eligible for run-time recycling (paper §3.1).
//
// The recycler pass must run after constant folding and dead-code
// elimination but before any resource-release instructions would be
// injected, mirroring the ordering constraints discussed in the paper.
package opt
