package opt

import (
	"repro/internal/mal"
)

// Options selects which passes run. The zero value runs everything.
type Options struct {
	SkipConstFold bool
	SkipDeadCode  bool
	SkipRecycler  bool
}

// Optimize runs the pipeline over the template in place and returns it.
func Optimize(t *mal.Template, opts Options) *mal.Template {
	if !opts.SkipConstFold {
		ConstFold(t)
	}
	if !opts.SkipDeadCode {
		DeadCode(t)
	}
	if !opts.SkipRecycler {
		MarkRecycle(t)
	}
	// The passes rewrite the instruction list in place; rebuild the
	// dataflow dependency DAG so the scheduler sees the final plan.
	t.BuildDAG()
	return t
}

// foldable lists side-effect-free scalar operations the constant
// folder may evaluate at optimization time when all arguments are
// literals.
var foldable = map[string]bool{
	"mtime.addmonths": true,
	"mtime.addyears":  true,
}

// ConstFold evaluates foldable scalar instructions whose arguments are
// all literal constants, replacing later references to their result
// with the literal. Instructions over template parameters cannot fold
// (their values arrive at run time).
func ConstFold(t *mal.Template) {
	lit := make(map[int]mal.Value) // var slot -> folded literal
	out := t.Instrs[:0]
	for i := range t.Instrs {
		in := t.Instrs[i]
		// Substitute known literals into the argument list first.
		for j, a := range in.Args {
			if !a.IsConst() {
				if v, ok := lit[a.Var]; ok {
					in.Args[j] = mal.C(v)
				}
			}
		}
		if foldable[in.Name()] && allConst(in.Args) && in.Ret >= 0 {
			ctx := &mal.Ctx{}
			args := make([]mal.Value, len(in.Args))
			for j, a := range in.Args {
				args[j] = a.Const
			}
			v, err := evalOp(ctx, &in, args)
			if err == nil {
				lit[in.Ret] = v
				continue // drop the folded instruction
			}
		}
		out = append(out, in)
	}
	t.Instrs = out
}

func evalOp(ctx *mal.Ctx, in *mal.Instr, args []mal.Value) (mal.Value, error) {
	return mal.Eval(ctx, in, args)
}

func allConst(args []mal.Arg) bool {
	for _, a := range args {
		if !a.IsConst() {
			return false
		}
	}
	return true
}

// DeadCode removes instructions whose results are never used and that
// have no side effects (everything except the sql.export* family).
func DeadCode(t *mal.Template) {
	used := make([]bool, t.NumVars)
	keep := make([]bool, len(t.Instrs))
	// Walk backwards: side-effect instructions root the liveness.
	for i := len(t.Instrs) - 1; i >= 0; i-- {
		in := &t.Instrs[i]
		if in.HasSideEffect() || (in.Ret >= 0 && used[in.Ret]) {
			keep[i] = true
			for _, a := range in.Args {
				if !a.IsConst() {
					used[a.Var] = true
				}
			}
		}
	}
	out := t.Instrs[:0]
	for i := range t.Instrs {
		if keep[i] {
			out = append(out, t.Instrs[i])
		}
	}
	t.Instrs = out
}

// recyclableModules lists modules whose BAT-producing operations are
// of interest to the recycler. Cheap scalar expressions (mtime.*) and
// side-effecting exports are excluded: the overhead of their
// administration outweighs the expected gain (paper §3.1).
var recyclableModules = map[string]bool{
	"sql":     true, // binds only; exports filtered below
	"algebra": true,
	"bat":     true,
	"group":   true,
	"aggr":    true,
	"batcalc": true,
}

var neverRecycle = map[string]bool{
	"sql.exportValue": true,
	"sql.exportCol":   true,
}

// MarkRecycle implements the recycler optimizer: it marks an
// instruction for run-time monitoring when its operation is of
// interest and all of its BAT arguments are produced by instructions
// already marked (threads rooted at catalogue binds). Scalar arguments
// — literals, template parameters and values derived from them — are
// compared by value at run time, so they never block marking, but they
// do taint the instruction as parameter-dependent (Fig. 2's light
// nodes).
func MarkRecycle(t *mal.Template) {
	candidate := make([]bool, t.NumVars) // var produced by a marked instruction
	paramDep := make([]bool, t.NumVars)
	scalar := make([]bool, t.NumVars) // var holds a scalar (non-BAT) value
	for i := range t.Params {
		paramDep[i] = true
		scalar[i] = true
	}
	for i := range t.Instrs {
		in := &t.Instrs[i]
		name := in.Name()
		ok := recyclableModules[in.Module] && !neverRecycle[name]
		dep := false
		for _, a := range in.Args {
			if a.IsConst() {
				continue
			}
			if paramDep[a.Var] {
				dep = true
			}
			if scalar[a.Var] {
				continue // runtime value comparison suffices
			}
			if !candidate[a.Var] {
				ok = false
			}
		}
		in.Marked = ok
		in.ParamDep = dep
		if in.Ret >= 0 {
			if ok {
				candidate[in.Ret] = true
			}
			if dep {
				paramDep[in.Ret] = true
			}
			if scalarResult(in) {
				scalar[in.Ret] = true
			}
		}
	}
}

// scalarResult reports whether the instruction produces a non-BAT
// value. Used to let scalar derivations flow through marking.
func scalarResult(in *mal.Instr) bool {
	switch in.Name() {
	case "mtime.addmonths", "mtime.addyears", "aggr.count", "aggr.sumFlt", "aggr.sumInt", "aggr.avgFlt",
		"calc.mulFlt", "calc.addFlt", "calc.addInt":
		return true
	}
	return false
}
