package opt

import (
	"sort"
	"sync/atomic"

	"repro/internal/mal"
)

// Options selects which passes run. The zero value runs everything —
// the normalization passes exist to make semantically equal plans
// render identically (one semantic signature from the SQL front end
// down to the recycler and its spill tier), so disabling them is an
// experiment/debugging knob, not a tuning default. See docs/TUNING.md.
type Options struct {
	SkipConstFold bool
	SkipDeadCode  bool
	SkipRecycler  bool
	// SkipCommute disables canonical argument ordering for commutative
	// scalar operations.
	SkipCommute bool
	// SkipCSE disables intra-template common-subexpression
	// elimination.
	SkipCSE bool
	// SkipNormalizeSQL disables the SQL front end's query
	// normalization (canonical conjunct order, range-pair merging).
	// It is honoured by internal/sqlfe, not by Optimize itself, but
	// lives here so one Options value gates the whole normalization
	// pipeline.
	SkipNormalizeSQL bool
	// SkipFusion disables the select-chain fusion annotation. Unlike
	// the normalization passes, fusion never changes plan identity —
	// it only marks chains the interpreter may execute in one fused
	// kernel — so skipping it is purely a performance knob.
	SkipFusion bool

	// Stats, when non-nil, accumulates pass counters across Optimize
	// calls (the SQL front end threads one collector through all its
	// compiles and surfaces it in /stats and /metrics).
	Stats *Stats
}

// Stats counts the normalization work the pipeline performed. Counters
// are atomic so concurrent compiles may share one collector.
type Stats struct {
	// CSEMerged counts instructions removed by common-subexpression
	// elimination (each merged into an earlier identical instruction).
	CSEMerged atomic.Int64
	// Commuted counts commutative instructions whose arguments were
	// reordered into canonical form.
	Commuted atomic.Int64
}

// Optimize runs the pipeline over the template in place and returns
// it. Pass order matters: constant folding first (it materialises
// literals the later passes compare), then canonical argument ordering
// (so CSE sees commuted duplicates as equal), then CSE, then dead code
// and recycler marking over the final instruction list.
func Optimize(t *mal.Template, opts Options) *mal.Template {
	if !opts.SkipConstFold {
		ConstFold(t)
	}
	if !opts.SkipCommute {
		n := CommuteArgs(t)
		if opts.Stats != nil {
			opts.Stats.Commuted.Add(int64(n))
		}
	}
	if !opts.SkipCSE {
		n := CSE(t)
		if opts.Stats != nil {
			opts.Stats.CSEMerged.Add(int64(n))
		}
	}
	if !opts.SkipDeadCode {
		DeadCode(t)
	}
	if !opts.SkipRecycler {
		MarkRecycle(t)
	}
	if !opts.SkipFusion {
		// After MarkRecycle so chains know whether any member is
		// monitored, and after the rewriting passes so pcs are final.
		PlanFusion(t)
	}
	// The passes rewrite the instruction list in place; rebuild the
	// dataflow dependency DAG so the scheduler sees the final plan.
	t.BuildDAG()
	return t
}

// foldable lists side-effect-free scalar operations the constant
// folder may evaluate at optimization time when all arguments are
// literals.
var foldable = map[string]bool{
	"mtime.addmonths": true,
	"mtime.addyears":  true,
}

// ConstFold evaluates foldable scalar instructions whose arguments are
// all literal constants, replacing later references to their result
// with the literal. Instructions over template parameters cannot fold
// (their values arrive at run time).
func ConstFold(t *mal.Template) {
	lit := make(map[int]mal.Value) // var slot -> folded literal
	out := t.Instrs[:0]
	for i := range t.Instrs {
		in := t.Instrs[i]
		// Substitute known literals into the argument list first.
		for j, a := range in.Args {
			if !a.IsConst() {
				if v, ok := lit[a.Var]; ok {
					in.Args[j] = mal.C(v)
				}
			}
		}
		if foldable[in.Name()] && allConst(in.Args) && in.Ret >= 0 {
			ctx := &mal.Ctx{}
			args := make([]mal.Value, len(in.Args))
			for j, a := range in.Args {
				args[j] = a.Const
			}
			v, err := evalOp(ctx, &in, args)
			if err == nil {
				lit[in.Ret] = v
				continue // drop the folded instruction
			}
		}
		out = append(out, in)
	}
	t.Instrs = out
}

func evalOp(ctx *mal.Ctx, in *mal.Instr, args []mal.Value) (mal.Value, error) {
	return mal.Eval(ctx, in, args)
}

func allConst(args []mal.Arg) bool {
	for _, a := range args {
		if !a.IsConst() {
			return false
		}
	}
	return true
}

// DeadCode removes instructions whose results are never used and that
// have no side effects (everything except the sql.export* family).
func DeadCode(t *mal.Template) {
	used := make([]bool, t.NumVars)
	keep := make([]bool, len(t.Instrs))
	// Walk backwards: side-effect instructions root the liveness.
	for i := len(t.Instrs) - 1; i >= 0; i-- {
		in := &t.Instrs[i]
		if in.HasSideEffect() || (in.Ret >= 0 && used[in.Ret]) {
			keep[i] = true
			for _, a := range in.Args {
				if !a.IsConst() {
					used[a.Var] = true
				}
			}
		}
	}
	out := t.Instrs[:0]
	for i := range t.Instrs {
		if keep[i] {
			out = append(out, t.Instrs[i])
		}
	}
	t.Instrs = out
}

// commutative lists operations whose result is invariant under any
// permutation of their arguments. Only pure scalar arithmetic
// qualifies: the BAT-valued batcalc zips take their result head from
// the first operand, so swapping them is NOT semantics-preserving in
// general.
var commutative = map[string]bool{
	"calc.addInt": true,
	"calc.addFlt": true,
	"calc.mulFlt": true,
}

// CommuteArgs sorts the arguments of commutative operations into a
// canonical order (variables by slot, then constants by literal key),
// so the two spellings of a+b carry one compile-time identity — and,
// downstream, one run-time signature in the recycle pool. Returns the
// number of instructions whose argument order changed.
func CommuteArgs(t *mal.Template) int {
	n := 0
	for i := range t.Instrs {
		in := &t.Instrs[i]
		if !commutative[in.Name()] || len(in.Args) < 2 {
			continue
		}
		if sortArgsCanonical(in.Args) {
			n++
		}
	}
	return n
}

// sortArgsCanonical orders args by their canonical key and reports
// whether anything moved.
func sortArgsCanonical(args []mal.Arg) bool {
	if sort.SliceIsSorted(args, func(i, j int) bool { return argLess(args[i], args[j]) }) {
		return false
	}
	sort.SliceStable(args, func(i, j int) bool { return argLess(args[i], args[j]) })
	return true
}

// argLess orders variable references before constants, variables by
// slot, constants by typed literal key.
func argLess(a, b mal.Arg) bool {
	switch {
	case !a.IsConst() && b.IsConst():
		return true
	case a.IsConst() && !b.IsConst():
		return false
	case !a.IsConst():
		return a.Var < b.Var
	default:
		return a.Const.Key() < b.Const.Key()
	}
}

// CSE merges duplicate pure instructions: two instructions with the
// same static signature (operation + identical argument slots and
// literals) compute the same value in every template instance, so the
// later one is removed and its uses rewritten to the earlier result.
// Side-effecting instructions are never merged (each export emits a
// result). Value numbering is transitive: once X2 is rewritten to X1,
// instructions over X2 become instructions over X1 and merge with
// their X1 twins. Returns the number of instructions removed.
//
// Beyond shrinking plans, CSE canonicalises them: the SQL front end
// freely emits repeated binds and projections, and without CSE each
// duplicate is a separate recycler-monitored instruction (a guaranteed
// pool lookup per execution). Merging them before the recycler ever
// sees the plan turns that run-time dedup into a compile-time one.
func CSE(t *mal.Template) int {
	repl := make([]int, t.NumVars) // var slot -> canonical var slot
	for i := range repl {
		repl[i] = i
	}
	seen := make(map[string]int, len(t.Instrs)) // static sig -> canonical ret slot
	out := t.Instrs[:0]
	merged := 0
	for i := range t.Instrs {
		in := t.Instrs[i]
		for j, a := range in.Args {
			if !a.IsConst() {
				in.Args[j].Var = repl[a.Var]
			}
		}
		if in.HasSideEffect() || in.Ret < 0 {
			out = append(out, in)
			continue
		}
		key := in.StaticSig()
		if prev, ok := seen[key]; ok {
			repl[in.Ret] = prev
			merged++
			continue
		}
		seen[key] = in.Ret
		out = append(out, in)
	}
	t.Instrs = out
	return merged
}

// recyclableModules lists modules whose BAT-producing operations are
// of interest to the recycler. Cheap scalar expressions (mtime.*) and
// side-effecting exports are excluded: the overhead of their
// administration outweighs the expected gain (paper §3.1).
var recyclableModules = map[string]bool{
	"sql":     true, // binds only; exports filtered below
	"algebra": true,
	"bat":     true,
	"group":   true,
	"aggr":    true,
	"batcalc": true,
}

var neverRecycle = map[string]bool{
	"sql.exportValue": true,
	"sql.exportCol":   true,
}

// MarkRecycle implements the recycler optimizer: it marks an
// instruction for run-time monitoring when its operation is of
// interest and all of its BAT arguments are produced by instructions
// already marked (threads rooted at catalogue binds). Scalar arguments
// — literals, template parameters and values derived from them — are
// compared by value at run time, so they never block marking, but they
// do taint the instruction as parameter-dependent (Fig. 2's light
// nodes).
func MarkRecycle(t *mal.Template) {
	candidate := make([]bool, t.NumVars) // var produced by a marked instruction
	paramDep := make([]bool, t.NumVars)
	scalar := make([]bool, t.NumVars) // var holds a scalar (non-BAT) value
	for i := range t.Params {
		paramDep[i] = true
		scalar[i] = true
	}
	for i := range t.Instrs {
		in := &t.Instrs[i]
		name := in.Name()
		ok := recyclableModules[in.Module] && !neverRecycle[name]
		dep := false
		for _, a := range in.Args {
			if a.IsConst() {
				continue
			}
			if paramDep[a.Var] {
				dep = true
			}
			if scalar[a.Var] {
				continue // runtime value comparison suffices
			}
			if !candidate[a.Var] {
				ok = false
			}
		}
		in.Marked = ok
		in.ParamDep = dep
		if in.Ret >= 0 {
			if ok {
				candidate[in.Ret] = true
			}
			if dep {
				paramDep[in.Ret] = true
			}
			if scalarResult(in) {
				scalar[in.Ret] = true
			}
		}
	}
}

// scalarResult reports whether the instruction produces a non-BAT
// value. Used to let scalar derivations flow through marking.
func scalarResult(in *mal.Instr) bool {
	switch in.Name() {
	case "mtime.addmonths", "mtime.addyears", "aggr.count", "aggr.sumFlt", "aggr.sumInt", "aggr.avgFlt",
		"calc.mulFlt", "calc.addFlt", "calc.addInt":
		return true
	}
	return false
}
