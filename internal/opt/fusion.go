package opt

import "repro/internal/mal"

// Select-chain fusion planning. PlanFusion finds linear runs of filter
// instructions whose intermediates exist only to feed the next filter
// — the shape the SQL front end emits for conjunct chains (select →
// semijoin-switch → select → ... → uselect) — and annotates them on
// the template as FusedChains. The instructions themselves are NOT
// rewritten: static signatures, recycler marks, pool keys and the
// dependency DAG stay exactly as before, so recycling and EXPLAIN
// identity are untouched. The interpreter decides per execution
// whether a chain actually fuses (see mal.Ctx.NoFusion and the
// eligibility rule in internal/mal/fused.go).

// selectLike reports whether in starts or extends a chain by filtering
// the rows of its first argument.
func selectLike(in *mal.Instr) bool {
	if in.Module != "algebra" {
		return false
	}
	switch in.Op {
	case "select", "uselect", "selectNotNil", "likeselect", "notlikeselect":
		return true
	}
	return false
}

// isBind reports whether in is a catalogue column bind.
func isBind(in *mal.Instr) bool {
	return in.Module == "sql" && in.Op == "bind" && len(in.Args) == 4
}

// bindAlignKey renders the positional-alignment identity of a bind:
// schema, table and access path. Two binds with equal keys produce
// columns over the same dense head range, so a semijoin between a
// selection of one and the other is a pure column switch. The column
// name (arg 2) is deliberately excluded. Returns "" when the bind's
// identity is not statically known.
func bindAlignKey(in *mal.Instr) string {
	for _, i := range []int{0, 1, 3} {
		if !in.Args[i].IsConst() {
			return ""
		}
	}
	return in.Args[0].Const.Key() + "|" + in.Args[1].Const.Key() + "|" + in.Args[3].Const.Key()
}

// PlanFusion annotates t with its fusable chains and returns how many
// chains were found. It must run after the rewriting passes (pcs are
// recorded) and after MarkRecycle (chains record whether any member is
// monitored).
func PlanFusion(t *mal.Template) int {
	n := len(t.Instrs)
	use := make([]int, t.NumVars)
	producer := make([]int, t.NumVars)
	consumer := make([]int, t.NumVars)
	for i := range producer {
		producer[i] = -1
		consumer[i] = -1
	}
	for i := range t.Instrs {
		in := &t.Instrs[i]
		for _, a := range in.Args {
			if !a.IsConst() {
				use[a.Var]++
				consumer[a.Var] = i // the sole consumer when use == 1
			}
		}
		if in.Ret >= 0 {
			producer[in.Ret] = i
		}
	}

	inChain := make([]bool, n)
	var chains []mal.FusedChain
	for pc := 0; pc < n; pc++ {
		in := &t.Instrs[pc]
		if inChain[pc] || !selectLike(in) || len(in.Args) == 0 || in.Args[0].IsConst() {
			continue
		}
		// Column switches are only provably aligned when the chain's
		// base column comes from a bind with static identity.
		alignKey := ""
		if bp := producer[in.Args[0].Var]; bp >= 0 && isBind(&t.Instrs[bp]) {
			alignKey = bindAlignKey(&t.Instrs[bp])
		}
		members := []int{pc}
		// After a uselect the running value is a head-projection, so
		// only a column switch may follow, never another refiner.
		headsOnly := in.Op == "uselect"
		cur := pc
		for {
			ret := t.Instrs[cur].Ret
			if ret < 0 || use[ret] != 1 {
				break
			}
			nx := consumer[ret]
			if nx < 0 || inChain[nx] {
				break
			}
			nin := &t.Instrs[nx]
			switch {
			case isSemijoinSwitch(t, nin, ret, alignKey, producer):
				headsOnly = false
			case !headsOnly && selectLike(nin) && !nin.Args[0].IsConst() && nin.Args[0].Var == ret:
				headsOnly = nin.Op == "uselect"
			default:
				goto done
			}
			members = append(members, nx)
			cur = nx
		}
	done:
		// A trailing uselect is a valid terminal, but a chain is only
		// worth fusing past its first member.
		if len(members) < 2 {
			continue
		}
		ch := mal.FusedChain{Pcs: members}
		for _, m := range members {
			inChain[m] = true
			if t.Instrs[m].Marked {
				ch.AnyMarked = true
			}
		}
		chains = append(chains, ch)
	}
	t.SetFusedChains(chains)
	return len(chains)
}

// isSemijoinSwitch reports whether nin is algebra.semijoin(col, prev)
// where prev is the chain's running result (variable ret) and col is a
// bind positionally aligned with the chain's base bind.
func isSemijoinSwitch(t *mal.Template, nin *mal.Instr, ret int, alignKey string, producer []int) bool {
	if alignKey == "" || nin.Module != "algebra" || nin.Op != "semijoin" || len(nin.Args) != 2 {
		return false
	}
	if nin.Args[1].IsConst() || nin.Args[1].Var != ret || nin.Args[0].IsConst() {
		return false
	}
	cp := producer[nin.Args[0].Var]
	return cp >= 0 && isBind(&t.Instrs[cp]) && bindAlignKey(&t.Instrs[cp]) == alignKey
}
