package opt

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/mal"
)

// buildExample reproduces the paper's Fig. 1 plan shape for marking
// tests: threads rooted at binds, a parameter-dependent select, a
// scalar mtime derivation and a final export.
func buildExample() *mal.Template {
	b := mal.NewBuilder("example")
	a0 := b.Param("A0", mal.VDate)
	a1 := b.Param("A1", mal.VDate)
	a2 := b.Param("A2", mal.VInt)
	a3 := b.Param("A3", mal.VStr)
	x5 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("lineitem")), mal.C(mal.StrV("l_returnflag")), mal.C(mal.IntV(0)))
	x11 := b.Op1("algebra", "uselect", x5, a3)
	x14 := b.Op1("algebra", "markT", x11, mal.C(mal.OidV(0)))
	x15 := b.Op1("bat", "reverse", x14)
	x19 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("orders")), mal.C(mal.StrV("o_orderdate")), mal.C(mal.IntV(0)))
	x25 := b.Op1("mtime", "addmonths", a1, a2)
	x26 := b.Op1("algebra", "select", x19, a0, x25, mal.C(mal.BoolV(true)), mal.C(mal.BoolV(false)))
	x27 := b.Op1("algebra", "join", x15, x26)
	x53 := b.Op1("aggr", "count", x27)
	b.Do("sql", "exportValue", mal.C(mal.StrV("L1")), x53)
	return b.Freeze()
}

func instrByName(t *mal.Template, name string) *mal.Instr {
	for i := range t.Instrs {
		if t.Instrs[i].Name() == name {
			return &t.Instrs[i]
		}
	}
	return nil
}

func TestMarkRecycleRootsAndPropagation(t *testing.T) {
	tmpl := buildExample()
	MarkRecycle(tmpl)
	for _, name := range []string{"sql.bind", "algebra.uselect", "algebra.markT", "bat.reverse", "algebra.select", "algebra.join", "aggr.count"} {
		in := instrByName(tmpl, name)
		if in == nil || !in.Marked {
			t.Errorf("%s should be marked", name)
		}
	}
	if in := instrByName(tmpl, "mtime.addmonths"); in.Marked {
		t.Error("mtime.addmonths must not be marked (cheap scalar op)")
	}
	if in := instrByName(tmpl, "sql.exportValue"); in.Marked {
		t.Error("exportValue must not be marked (side effect)")
	}
}

func TestMarkRecycleParamDependence(t *testing.T) {
	tmpl := buildExample()
	MarkRecycle(tmpl)
	if in := instrByName(tmpl, "sql.bind"); in.ParamDep {
		t.Error("bind must be parameter independent (dark node)")
	}
	if in := instrByName(tmpl, "algebra.uselect"); !in.ParamDep {
		t.Error("uselect depends on A3")
	}
	if in := instrByName(tmpl, "algebra.select"); !in.ParamDep {
		t.Error("select depends on A0 and the A1-derived bound")
	}
	if in := instrByName(tmpl, "algebra.join"); !in.ParamDep {
		t.Error("join inherits param dependence from both sides")
	}
}

func TestMarkRecycleBlocksOnUnmarkedBatArg(t *testing.T) {
	b := mal.NewBuilder("blocked")
	// A bat produced by an unmarkable op (export is a stand-in; use a
	// fake module) taints its consumers.
	x1 := b.Op1("custom", "source")
	x2 := b.Op1("algebra", "selectNotNil", x1)
	_ = x2
	tmpl := b.Freeze()
	MarkRecycle(tmpl)
	if tmpl.Instrs[0].Marked {
		t.Error("custom.source must not be marked")
	}
	if tmpl.Instrs[1].Marked {
		t.Error("consumer of unmarked bat must not be marked")
	}
}

func TestConstFoldEvaluatesLiteralDates(t *testing.T) {
	b := mal.NewBuilder("fold")
	d := algebra.MkDate(1996, 7, 1)
	x1 := b.Op1("mtime", "addmonths", mal.C(mal.DateV(d)), mal.C(mal.IntV(3)))
	x2 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("orders")), mal.C(mal.StrV("o_orderdate")), mal.C(mal.IntV(0)))
	x3 := b.Op1("algebra", "select", x2, mal.C(mal.DateV(d)), x1, mal.C(mal.BoolV(true)), mal.C(mal.BoolV(false)))
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), x3)
	tmpl := b.Freeze()
	ConstFold(tmpl)
	if got := len(tmpl.Instrs); got != 3 {
		t.Fatalf("instrs after fold = %d, want 3", got)
	}
	sel := instrByName(tmpl, "algebra.select")
	if sel == nil {
		t.Fatal("select missing")
	}
	hiArg := sel.Args[2]
	if !hiArg.IsConst() || hiArg.Const.D != algebra.MkDate(1996, 10, 1) {
		t.Fatalf("folded bound = %+v", hiArg)
	}
}

func TestConstFoldSkipsParamDependent(t *testing.T) {
	b := mal.NewBuilder("nofold")
	a0 := b.Param("A0", mal.VDate)
	x1 := b.Op1("mtime", "addmonths", a0, mal.C(mal.IntV(3)))
	b.Do("sql", "exportValue", mal.C(mal.StrV("v")), x1)
	tmpl := b.Freeze()
	ConstFold(tmpl)
	if len(tmpl.Instrs) != 2 {
		t.Fatalf("param-dependent fold happened: %d instrs", len(tmpl.Instrs))
	}
}

func TestDeadCodeRemovesUnused(t *testing.T) {
	b := mal.NewBuilder("dead")
	x1 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("t")), mal.C(mal.StrV("c")), mal.C(mal.IntV(0)))
	b.Op1("bat", "reverse", x1) // dead
	x3 := b.Op1("algebra", "selectNotNil", x1)
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), x3)
	tmpl := b.Freeze()
	DeadCode(tmpl)
	if len(tmpl.Instrs) != 3 {
		t.Fatalf("instrs after DCE = %d, want 3", len(tmpl.Instrs))
	}
	if instrByName(tmpl, "bat.reverse") != nil {
		t.Fatal("dead reverse survived")
	}
}

func TestOptimizePipeline(t *testing.T) {
	tmpl := buildExample()
	Optimize(tmpl, Options{})
	if instrByName(tmpl, "algebra.select") == nil {
		t.Fatal("select lost")
	}
	if !instrByName(tmpl, "algebra.select").Marked {
		t.Fatal("pipeline did not mark")
	}
}

func TestCSEMergesDuplicateBinds(t *testing.T) {
	// The SQL front end emits one bind per column mention; CSE must
	// fold them so the plan carries each bind once.
	b := mal.NewBuilder("dupbind")
	a0 := b.Param("A0", mal.VInt)
	bind := func() mal.Arg {
		return b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("t")), mal.C(mal.StrV("c")), mal.C(mal.IntV(0)))
	}
	x1 := bind()
	sel := b.Op1("algebra", "uselect", x1, a0)
	x2 := bind() // duplicate of x1
	out := b.Op1("algebra", "semijoin", x2, sel)
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), out)
	tmpl := b.Freeze()
	if n := CSE(tmpl); n != 1 {
		t.Fatalf("CSE merged %d, want 1", n)
	}
	binds := 0
	for i := range tmpl.Instrs {
		if tmpl.Instrs[i].Name() == "sql.bind" {
			binds++
		}
	}
	if binds != 1 {
		t.Fatalf("binds after CSE = %d, want 1", binds)
	}
	// The semijoin must now reference the surviving bind's slot.
	semi := instrByName(tmpl, "algebra.semijoin")
	if semi.Args[0].Var != x1.Var {
		t.Fatalf("semijoin arg not rewired: %+v", semi.Args[0])
	}
}

func TestCSEIsTransitive(t *testing.T) {
	// Two identical bind+select chains: the second select only merges
	// because its bind argument was value-numbered onto the first.
	b := mal.NewBuilder("chain")
	mk := func() mal.Arg {
		bind := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("t")), mal.C(mal.StrV("c")), mal.C(mal.IntV(0)))
		return b.Op1("algebra", "uselect", bind, mal.C(mal.IntV(7)))
	}
	s1 := mk()
	s2 := mk()
	j := b.Op1("algebra", "semijoin", s1, s2)
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), j)
	tmpl := b.Freeze()
	if n := CSE(tmpl); n != 2 {
		t.Fatalf("CSE merged %d, want 2 (bind and select)", n)
	}
	semi := instrByName(tmpl, "algebra.semijoin")
	if semi.Args[0].Var != semi.Args[1].Var {
		t.Fatalf("both semijoin args must name the surviving select: %+v", semi.Args)
	}
}

func TestCSEKeepsSideEffects(t *testing.T) {
	b := mal.NewBuilder("effects")
	x := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("t")), mal.C(mal.StrV("c")), mal.C(mal.IntV(0)))
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), x)
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), x) // identical export: must survive
	tmpl := b.Freeze()
	if n := CSE(tmpl); n != 0 {
		t.Fatalf("CSE merged %d side-effecting instructions", n)
	}
	if len(tmpl.Instrs) != 3 {
		t.Fatalf("instrs = %d, want 3", len(tmpl.Instrs))
	}
}

func TestCSEDoesNotMergeAcrossConstKinds(t *testing.T) {
	// IntV(2) and FloatV(2) display identically ("2") but are
	// different constants; merging them would substitute a value of
	// the wrong kind. StaticSig must key on the typed literal.
	b := mal.NewBuilder("kinds")
	a0 := b.Param("A0", mal.VFloat)
	x1 := b.Op1("calc", "addFlt", a0, mal.C(mal.FloatV(2)))
	x2 := b.Op1("calc", "addFlt", a0, mal.C(mal.IntV(2)))
	b.Do("sql", "exportValue", mal.C(mal.StrV("f")), x1)
	b.Do("sql", "exportValue", mal.C(mal.StrV("i")), x2)
	tmpl := b.Freeze()
	if n := CSE(tmpl); n != 0 {
		t.Fatalf("CSE merged %d instructions across constant kinds", n)
	}
}

func TestCommuteArgsCanonicalises(t *testing.T) {
	// a+b and b+a must render one static identity; const operands sort
	// after variables.
	b := mal.NewBuilder("commute")
	a0 := b.Param("A0", mal.VInt)
	a1 := b.Param("A1", mal.VInt)
	x1 := b.Op1("calc", "addInt", a1, a0)
	x2 := b.Op1("calc", "addInt", a0, a1)
	x3 := b.Op1("calc", "addInt", mal.C(mal.IntV(3)), a0)
	b.Do("sql", "exportValue", mal.C(mal.StrV("s")), x1)
	b.Do("sql", "exportValue", mal.C(mal.StrV("t")), x2)
	b.Do("sql", "exportValue", mal.C(mal.StrV("u")), x3)
	tmpl := b.Freeze()
	if n := CommuteArgs(tmpl); n != 2 {
		t.Fatalf("commuted %d, want 2", n)
	}
	if tmpl.Instrs[0].StaticSig() != tmpl.Instrs[1].StaticSig() {
		t.Fatalf("commuted spellings differ: %q vs %q",
			tmpl.Instrs[0].StaticSig(), tmpl.Instrs[1].StaticSig())
	}
	if tmpl.Instrs[2].Args[0].IsConst() {
		t.Fatal("constant must sort after the variable operand")
	}
	// And CSE can now fold the two spellings.
	if n := CSE(tmpl); n != 1 {
		t.Fatalf("CSE after commute merged %d, want 1", n)
	}
}

func TestCommuteArgsLeavesNonCommutative(t *testing.T) {
	b := mal.NewBuilder("noncommute")
	x := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("t")), mal.C(mal.StrV("c")), mal.C(mal.IntV(0)))
	// batcalc zips take the result head from the first operand —
	// not in the commutative set.
	y := b.Op1("batcalc", "mul", x, x)
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), y)
	tmpl := b.Freeze()
	before := tmpl.Instrs[1].StaticSig()
	if n := CommuteArgs(tmpl); n != 0 {
		t.Fatalf("commuted %d non-commutative instructions", n)
	}
	if tmpl.Instrs[1].StaticSig() != before {
		t.Fatal("non-commutative args reordered")
	}
}

func TestOptimizeStatsCollector(t *testing.T) {
	var st Stats
	b := mal.NewBuilder("stats")
	a0 := b.Param("A0", mal.VInt)
	a1 := b.Param("A1", mal.VInt)
	x1 := b.Op1("calc", "addInt", a1, a0)
	x2 := b.Op1("calc", "addInt", a0, a1)
	b.Do("sql", "exportValue", mal.C(mal.StrV("s")), x1)
	b.Do("sql", "exportValue", mal.C(mal.StrV("t")), x2)
	Optimize(b.Freeze(), Options{Stats: &st})
	if st.Commuted.Load() != 1 {
		t.Fatalf("Commuted = %d, want 1", st.Commuted.Load())
	}
	if st.CSEMerged.Load() != 1 {
		t.Fatalf("CSEMerged = %d, want 1", st.CSEMerged.Load())
	}
}

func TestScalarDerivationFlowsThroughMarking(t *testing.T) {
	// A select whose bound comes via mtime over params must still be
	// marked: scalar args are value-compared at run time.
	tmpl := buildExample()
	MarkRecycle(tmpl)
	sel := instrByName(tmpl, "algebra.select")
	if !sel.Marked {
		t.Fatal("select with scalar-derived bound must be marked")
	}
	_ = bat.KInt
}
