package opt

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/mal"
)

// buildExample reproduces the paper's Fig. 1 plan shape for marking
// tests: threads rooted at binds, a parameter-dependent select, a
// scalar mtime derivation and a final export.
func buildExample() *mal.Template {
	b := mal.NewBuilder("example")
	a0 := b.Param("A0", mal.VDate)
	a1 := b.Param("A1", mal.VDate)
	a2 := b.Param("A2", mal.VInt)
	a3 := b.Param("A3", mal.VStr)
	x5 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("lineitem")), mal.C(mal.StrV("l_returnflag")), mal.C(mal.IntV(0)))
	x11 := b.Op1("algebra", "uselect", x5, a3)
	x14 := b.Op1("algebra", "markT", x11, mal.C(mal.OidV(0)))
	x15 := b.Op1("bat", "reverse", x14)
	x19 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("orders")), mal.C(mal.StrV("o_orderdate")), mal.C(mal.IntV(0)))
	x25 := b.Op1("mtime", "addmonths", a1, a2)
	x26 := b.Op1("algebra", "select", x19, a0, x25, mal.C(mal.BoolV(true)), mal.C(mal.BoolV(false)))
	x27 := b.Op1("algebra", "join", x15, x26)
	x53 := b.Op1("aggr", "count", x27)
	b.Do("sql", "exportValue", mal.C(mal.StrV("L1")), x53)
	return b.Freeze()
}

func instrByName(t *mal.Template, name string) *mal.Instr {
	for i := range t.Instrs {
		if t.Instrs[i].Name() == name {
			return &t.Instrs[i]
		}
	}
	return nil
}

func TestMarkRecycleRootsAndPropagation(t *testing.T) {
	tmpl := buildExample()
	MarkRecycle(tmpl)
	for _, name := range []string{"sql.bind", "algebra.uselect", "algebra.markT", "bat.reverse", "algebra.select", "algebra.join", "aggr.count"} {
		in := instrByName(tmpl, name)
		if in == nil || !in.Marked {
			t.Errorf("%s should be marked", name)
		}
	}
	if in := instrByName(tmpl, "mtime.addmonths"); in.Marked {
		t.Error("mtime.addmonths must not be marked (cheap scalar op)")
	}
	if in := instrByName(tmpl, "sql.exportValue"); in.Marked {
		t.Error("exportValue must not be marked (side effect)")
	}
}

func TestMarkRecycleParamDependence(t *testing.T) {
	tmpl := buildExample()
	MarkRecycle(tmpl)
	if in := instrByName(tmpl, "sql.bind"); in.ParamDep {
		t.Error("bind must be parameter independent (dark node)")
	}
	if in := instrByName(tmpl, "algebra.uselect"); !in.ParamDep {
		t.Error("uselect depends on A3")
	}
	if in := instrByName(tmpl, "algebra.select"); !in.ParamDep {
		t.Error("select depends on A0 and the A1-derived bound")
	}
	if in := instrByName(tmpl, "algebra.join"); !in.ParamDep {
		t.Error("join inherits param dependence from both sides")
	}
}

func TestMarkRecycleBlocksOnUnmarkedBatArg(t *testing.T) {
	b := mal.NewBuilder("blocked")
	// A bat produced by an unmarkable op (export is a stand-in; use a
	// fake module) taints its consumers.
	x1 := b.Op1("custom", "source")
	x2 := b.Op1("algebra", "selectNotNil", x1)
	_ = x2
	tmpl := b.Freeze()
	MarkRecycle(tmpl)
	if tmpl.Instrs[0].Marked {
		t.Error("custom.source must not be marked")
	}
	if tmpl.Instrs[1].Marked {
		t.Error("consumer of unmarked bat must not be marked")
	}
}

func TestConstFoldEvaluatesLiteralDates(t *testing.T) {
	b := mal.NewBuilder("fold")
	d := algebra.MkDate(1996, 7, 1)
	x1 := b.Op1("mtime", "addmonths", mal.C(mal.DateV(d)), mal.C(mal.IntV(3)))
	x2 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("orders")), mal.C(mal.StrV("o_orderdate")), mal.C(mal.IntV(0)))
	x3 := b.Op1("algebra", "select", x2, mal.C(mal.DateV(d)), x1, mal.C(mal.BoolV(true)), mal.C(mal.BoolV(false)))
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), x3)
	tmpl := b.Freeze()
	ConstFold(tmpl)
	if got := len(tmpl.Instrs); got != 3 {
		t.Fatalf("instrs after fold = %d, want 3", got)
	}
	sel := instrByName(tmpl, "algebra.select")
	if sel == nil {
		t.Fatal("select missing")
	}
	hiArg := sel.Args[2]
	if !hiArg.IsConst() || hiArg.Const.D != algebra.MkDate(1996, 10, 1) {
		t.Fatalf("folded bound = %+v", hiArg)
	}
}

func TestConstFoldSkipsParamDependent(t *testing.T) {
	b := mal.NewBuilder("nofold")
	a0 := b.Param("A0", mal.VDate)
	x1 := b.Op1("mtime", "addmonths", a0, mal.C(mal.IntV(3)))
	b.Do("sql", "exportValue", mal.C(mal.StrV("v")), x1)
	tmpl := b.Freeze()
	ConstFold(tmpl)
	if len(tmpl.Instrs) != 2 {
		t.Fatalf("param-dependent fold happened: %d instrs", len(tmpl.Instrs))
	}
}

func TestDeadCodeRemovesUnused(t *testing.T) {
	b := mal.NewBuilder("dead")
	x1 := b.Op1("sql", "bind", mal.C(mal.StrV("sys")), mal.C(mal.StrV("t")), mal.C(mal.StrV("c")), mal.C(mal.IntV(0)))
	b.Op1("bat", "reverse", x1) // dead
	x3 := b.Op1("algebra", "selectNotNil", x1)
	b.Do("sql", "exportCol", mal.C(mal.StrV("c")), x3)
	tmpl := b.Freeze()
	DeadCode(tmpl)
	if len(tmpl.Instrs) != 3 {
		t.Fatalf("instrs after DCE = %d, want 3", len(tmpl.Instrs))
	}
	if instrByName(tmpl, "bat.reverse") != nil {
		t.Fatal("dead reverse survived")
	}
}

func TestOptimizePipeline(t *testing.T) {
	tmpl := buildExample()
	Optimize(tmpl, Options{})
	if instrByName(tmpl, "algebra.select") == nil {
		t.Fatal("select lost")
	}
	if !instrByName(tmpl, "algebra.select").Marked {
		t.Fatal("pipeline did not mark")
	}
}

func TestScalarDerivationFlowsThroughMarking(t *testing.T) {
	// A select whose bound comes via mtime over params must still be
	// marked: scalar args are value-compared at run time.
	tmpl := buildExample()
	MarkRecycle(tmpl)
	sel := instrByName(tmpl, "algebra.select")
	if !sel.Marked {
		t.Fatal("select with scalar-derived bound must be marked")
	}
	_ = bat.KInt
}
