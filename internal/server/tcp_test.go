package server

import (
	"bufio"
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/recycler"
	"repro/internal/sky"
)

// tcpSession dials the server and returns line-oriented send/expect
// helpers.
type tcpSession struct {
	t    *testing.T
	conn net.Conn
	rd   *bufio.Reader
}

func dialTCP(t *testing.T, addr string) *tcpSession {
	t.Helper()
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	t.Cleanup(func() { conn.Close() })
	return &tcpSession{t: t, conn: conn, rd: bufio.NewReader(conn)}
}

func (s *tcpSession) send(line string) {
	s.t.Helper()
	if _, err := s.conn.Write([]byte(line + "\n")); err != nil {
		s.t.Fatalf("write: %v", err)
	}
}

func (s *tcpSession) expect(prefix string) string {
	s.t.Helper()
	s.conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	line, err := s.rd.ReadString('\n')
	if err != nil {
		s.t.Fatalf("read (waiting for %q): %v", prefix, err)
	}
	line = strings.TrimRight(line, "\n")
	if !strings.HasPrefix(line, prefix) {
		s.t.Fatalf("got %q, want prefix %q", line, prefix)
	}
	return line
}

func TestTCPProtocol(t *testing.T) {
	db := sky.Generate(2000, 17)
	eng := repro.NewEngine(db.Cat, repro.WithRecycler(recycler.Config{
		Admission: recycler.KeepAll, Subsumption: true,
	}))
	defer eng.Recycler().Close()
	s := New(eng, Config{MaxConcurrency: 4})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.ServeTCP(ln) }()

	c := dialTCP(t, ln.Addr().String())

	// A SELECT produces ROW lines then an OK terminator.
	c.send("SELECT COUNT(*) FROM sky.dbobjects WHERE type = 'U'")
	row := c.expect("ROW count\t")
	if !strings.Contains(row, "100") { // 400 docs entries, 4 kinds
		t.Fatalf("unexpected count row %q", row)
	}
	c.expect("OK 1 cols")

	// The identical statement again: served via the prepared cache and
	// the recycle pool, with hits reported on the OK line.
	c.send("SELECT COUNT(*) FROM sky.dbobjects WHERE type = 'U'")
	c.expect("ROW count\t")
	ok := c.expect("OK 1 cols")
	if !strings.Contains(ok, "hits=2/2") {
		t.Fatalf("repeat gave no pool hits: %q", ok)
	}

	// DML and STATS.
	c.send("INSERT INTO sky.dbobjects (name, type, description) VALUES ('tcp_x', 'U', 'via tcp')")
	c.expect("OK insert 1 rows")
	c.send("DELETE FROM sky.dbobjects WHERE name = 'tcp_x'")
	c.expect("OK delete 1 rows")
	c.send("STATS")
	st := c.expect("OK session queries=2")
	if !strings.Contains(st, "hits=2/4") {
		t.Fatalf("session stats wrong: %q", st)
	}

	// Parse errors keep the connection usable.
	c.send("SELEC nonsense")
	c.expect("ERR ")

	// Stored values containing framing characters (inserted through a
	// channel that allows them, e.g. /exec JSON) are escaped on the
	// ROW line so they cannot desynchronise the protocol.
	if _, _, err := execDML(db.Cat, "INSERT INTO sky.dbobjects (name, type, description) VALUES ('tcp_esc', 'Z', 'a\tb\nc')"); err != nil {
		t.Fatal(err)
	}
	c.send("SELECT description FROM sky.dbobjects WHERE name = 'tcp_esc'")
	if row := c.expect("ROW description\t"); !strings.HasSuffix(row, `a\tb\nc`) {
		t.Fatalf("framing characters not escaped: %q", row)
	}
	c.expect("OK 1 cols")
	c.send("SELECT COUNT(*) FROM sky.dbobjects WHERE type = 'V'")
	c.expect("ROW count\t")
	c.expect("OK 1 cols")

	c.send("QUIT")
	c.expect("OK bye")

	// A second connection sharing the pool sees the first one's
	// intermediates as global hits.
	c2 := dialTCP(t, ln.Addr().String())
	c2.send("SELECT COUNT(*) FROM sky.dbobjects WHERE type = 'V'")
	c2.expect("ROW count\t")
	if ok := c2.expect("OK 1 cols"); !strings.Contains(ok, "hits=2/2") {
		t.Fatalf("cross-connection reuse missing: %q", ok)
	}

	// Shutdown closes the listener and the idle connection.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("ServeTCP returned %v after Shutdown", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeTCP did not return after Shutdown")
	}
	if n := eng.Recycler().ActiveQueries(); n != 0 {
		t.Fatalf("%d active-query pins leaked", n)
	}
}
