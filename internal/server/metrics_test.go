package server

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro"
	"repro/internal/recycler"
	"repro/internal/sky"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestMetricsGolden pins the exact /metrics exposition of an idle
// server: metric names, HELP/TYPE lines and zero values are part of
// the operator contract (dashboards key on them). Run with -update
// after deliberately adding a metric.
func TestMetricsGolden(t *testing.T) {
	db := sky.Generate(500, 17)
	eng := repro.NewEngine(db.Cat, repro.WithRecycler(recycler.Config{
		Admission: recycler.KeepAll, Subsumption: true,
	}))
	defer eng.Recycler().Close()
	s := New(eng, Config{MaxConcurrency: 4})

	var buf bytes.Buffer
	s.WriteMetrics(&buf)

	golden := filepath.Join("testdata", "metrics.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("metrics exposition drifted from golden.\n--- got ---\n%s--- want ---\n%s", buf.Bytes(), want)
	}
}
