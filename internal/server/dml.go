package server

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
)

// execDML parses and executes the /exec statement subset:
//
//	INSERT INTO [schema.]table (c1, c2, ...) VALUES (v1, v2, ...)[, (...)]*
//	DELETE FROM [schema.]table WHERE col = literal
//
// Literals: integers, floats, 'strings', DATE 'YYYY-MM-DD', TRUE and
// FALSE. Values are coerced to the column's kind (an integer literal
// fills a float column). The statements commit through the catalog's
// regular DML path, so the recycler's OnBeforeUpdate/OnUpdate
// listeners fire exactly as for in-process updates — remote writers
// drive the §6 invalidation/propagation machinery.
func execDML(cat *catalog.Catalog, src string) (op string, affected int, err error) {
	toks, err := tokenizeDML(src)
	if err != nil {
		return "", 0, err
	}
	if len(toks) == 0 {
		return "", 0, fmt.Errorf("empty statement")
	}
	switch strings.ToUpper(toks[0]) {
	case "INSERT":
		n, err := execInsert(cat, toks)
		return "insert", n, err
	case "DELETE":
		n, err := execDelete(cat, toks)
		return "delete", n, err
	}
	return "", 0, fmt.Errorf("unsupported statement %q (exec accepts INSERT and DELETE; use /query for SELECT)", toks[0])
}

// tokenizeDML splits the statement into words, punctuation and
// 'single-quoted' string tokens (kept with their quotes so literal
// parsing can tell strings from identifiers).
func tokenizeDML(src string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(' || c == ')' || c == ',' || c == '=' || c == '.':
			toks = append(toks, string(c))
			i++
		case c == '\'':
			j := i + 1
			for j < len(src) && src[j] != '\'' {
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("unterminated string literal")
			}
			toks = append(toks, src[i:j+1])
			i = j + 1
		default:
			j := i
			for j < len(src) && !strings.ContainsAny(string(src[j]), " \t\n\r(),='.") {
				j++
			}
			// Allow dots inside numbers (1.5, -0.5) but split identifier
			// dots (schema.table) — a numeric token keeps its dot.
			if j < len(src) && src[j] == '.' && isNumeric(src[i:j]) {
				k := j + 1
				for k < len(src) && src[k] >= '0' && src[k] <= '9' {
					k++
				}
				j = k
			}
			toks = append(toks, src[i:j])
			i = j
		}
	}
	return toks, nil
}

// isNumeric reports whether s is an optional sign followed by digits.
func isNumeric(s string) bool {
	if len(s) > 0 && (s[0] == '-' || s[0] == '+') {
		s = s[1:]
	}
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return true
}

// dmlParser is a cursor over the token stream.
type dmlParser struct {
	toks []string
	pos  int
}

func (p *dmlParser) peek() string {
	if p.pos >= len(p.toks) {
		return ""
	}
	return p.toks[p.pos]
}

func (p *dmlParser) next() string {
	t := p.peek()
	p.pos++
	return t
}

func (p *dmlParser) expect(word string) error {
	t := p.next()
	if !strings.EqualFold(t, word) {
		return fmt.Errorf("expected %q, got %q", word, t)
	}
	return nil
}

// tableRef parses [schema.]table, defaulting the schema to "sys"
// (the TPC-H schema) when unqualified.
func (p *dmlParser) tableRef(cat *catalog.Catalog) (*catalog.Table, error) {
	first := p.next()
	if first == "" {
		return nil, fmt.Errorf("expected table name")
	}
	schema, name := "sys", first
	if p.peek() == "." {
		p.next()
		schema, name = first, p.next()
	}
	t := cat.Table(schema, name)
	if t == nil {
		return nil, fmt.Errorf("unknown table %s.%s", schema, name)
	}
	return t, nil
}

func execInsert(cat *catalog.Catalog, toks []string) (int, error) {
	p := &dmlParser{toks: toks}
	if err := p.expect("INSERT"); err != nil {
		return 0, err
	}
	if err := p.expect("INTO"); err != nil {
		return 0, err
	}
	t, err := p.tableRef(cat)
	if err != nil {
		return 0, err
	}
	if err := p.expect("("); err != nil {
		return 0, err
	}
	var cols []string
	seen := make(map[string]bool)
	for {
		c := p.next()
		if c == "" {
			return 0, fmt.Errorf("unterminated column list")
		}
		if t.Column(c) == nil {
			return 0, fmt.Errorf("unknown column %s.%s", t.QName(), c)
		}
		if seen[c] {
			return 0, fmt.Errorf("column %s listed twice", c)
		}
		seen[c] = true
		cols = append(cols, c)
		sep := p.next()
		if sep == ")" {
			break
		}
		if sep != "," {
			return 0, fmt.Errorf("expected , or ) in column list, got %q", sep)
		}
	}
	// Distinct + all-known + full count together guarantee every table
	// column is present: catalog.Append reads each column from every
	// row and must never see a missing one.
	if len(cols) != len(t.Cols) {
		return 0, fmt.Errorf("INSERT must list all %d columns of %s (got %d)", len(t.Cols), t.QName(), len(cols))
	}
	if err := p.expect("VALUES"); err != nil {
		return 0, err
	}
	var rows []catalog.Row
	for {
		if err := p.expect("("); err != nil {
			return 0, err
		}
		row := catalog.Row{}
		for i, col := range cols {
			if i > 0 {
				if err := p.expect(","); err != nil {
					return 0, err
				}
			}
			v, err := parseLiteral(p, t.MustColumn(col).KindOf)
			if err != nil {
				return 0, fmt.Errorf("column %s: %w", col, err)
			}
			row[col] = v
		}
		if err := p.expect(")"); err != nil {
			return 0, err
		}
		rows = append(rows, row)
		if p.peek() != "," {
			break
		}
		p.next()
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("trailing tokens after VALUES list: %q", p.peek())
	}
	t.Append(rows)
	return len(rows), nil
}

func execDelete(cat *catalog.Catalog, toks []string) (int, error) {
	p := &dmlParser{toks: toks}
	if err := p.expect("DELETE"); err != nil {
		return 0, err
	}
	if err := p.expect("FROM"); err != nil {
		return 0, err
	}
	t, err := p.tableRef(cat)
	if err != nil {
		return 0, err
	}
	if err := p.expect("WHERE"); err != nil {
		return 0, err
	}
	colName := p.next()
	col := t.Column(colName)
	if col == nil {
		return 0, fmt.Errorf("unknown column %s.%s", t.QName(), colName)
	}
	if err := p.expect("="); err != nil {
		return 0, err
	}
	want, err := parseLiteral(p, col.KindOf)
	if err != nil {
		return 0, err
	}
	if p.pos != len(p.toks) {
		return 0, fmt.Errorf("DELETE supports a single col = literal predicate; trailing %q", p.peek())
	}
	// Scan the committed column for matching oids. Bind snapshots the
	// live rows, so tombstoned rows are never re-deleted.
	b := col.Bind()
	var oids []bat.Oid
	for i := 0; i < b.Len(); i++ {
		if b.Tail.Get(i) == want {
			oids = append(oids, b.Head.Get(i).(bat.Oid))
		}
	}
	if len(oids) == 0 {
		return 0, nil
	}
	t.Delete(oids)
	return len(oids), nil
}

// parseLiteral consumes one literal and coerces it to the column kind.
func parseLiteral(p *dmlParser, kind bat.Kind) (any, error) {
	tok := p.next()
	if tok == "" {
		return nil, fmt.Errorf("expected literal")
	}
	if strings.EqualFold(tok, "DATE") {
		tok = p.next() // the quoted date follows
	}
	switch kind {
	case bat.KInt:
		v, err := strconv.ParseInt(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expected integer, got %q", tok)
		}
		return v, nil
	case bat.KFloat:
		v, err := strconv.ParseFloat(tok, 64)
		if err != nil {
			return nil, fmt.Errorf("expected number, got %q", tok)
		}
		return v, nil
	case bat.KStr:
		s, ok := unquote(tok)
		if !ok {
			return nil, fmt.Errorf("expected 'string', got %q", tok)
		}
		return s, nil
	case bat.KDate:
		s, ok := unquote(tok)
		if !ok {
			return nil, fmt.Errorf("expected DATE 'YYYY-MM-DD', got %q", tok)
		}
		var y, m, d int
		if _, err := fmt.Sscanf(s, "%d-%d-%d", &y, &m, &d); err != nil {
			return nil, fmt.Errorf("bad date %q", s)
		}
		return bat.Date(algebra.DaysFromCivil(y, m, d)), nil
	case bat.KBool:
		switch strings.ToUpper(tok) {
		case "TRUE":
			return true, nil
		case "FALSE":
			return false, nil
		}
		return nil, fmt.Errorf("expected TRUE or FALSE, got %q", tok)
	case bat.KOid:
		v, err := strconv.ParseUint(tok, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("expected oid, got %q", tok)
		}
		return bat.Oid(v), nil
	}
	return nil, fmt.Errorf("unsupported column kind")
}

func unquote(tok string) (string, bool) {
	if len(tok) >= 2 && tok[0] == '\'' && tok[len(tok)-1] == '\'' {
		return tok[1 : len(tok)-1], true
	}
	return "", false
}
