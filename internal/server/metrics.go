package server

import (
	"fmt"
	"io"
	"net/http"
)

// handleMetrics renders the server and engine counters in Prometheus
// text exposition format. Counter names are stable (the /metrics
// golden test pins them); add new metrics at the end of their family.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.WriteMetrics(w)
}

// WriteMetrics writes the Prometheus exposition to w.
func (s *Server) WriteMetrics(w io.Writer) {
	st := s.Stats()

	metric := func(name, typ, help string, v any) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %v\n", name, help, name, typ, name, v)
	}

	metric("repro_server_queries_total", "counter",
		"Query statements accepted past the admission gate.", st.Server.Queries)
	metric("repro_server_execs_total", "counter",
		"DML statements accepted past the admission gate.", st.Server.Execs)
	metric("repro_server_errors_total", "counter",
		"Statements that returned an error.", st.Server.Errors)
	metric("repro_server_rejected_total", "counter",
		"Statements refused at the gate (queue timeout or shutdown).", st.Server.Rejected)
	metric("repro_server_active_statements", "gauge",
		"Statements currently executing.", st.Server.Active)
	metric("repro_server_max_concurrency", "gauge",
		"Admission gate width.", st.Server.MaxConcurrency)
	metric("repro_server_prepared_hits_total", "counter",
		"Statements served from the prepared-statement cache.", st.Server.PreparedHits)
	metric("repro_server_prepared_misses_total", "counter",
		"Statements compiled through the SQL front end.", st.Server.PreparedMisses)
	metric("repro_server_prepared_texts", "gauge",
		"Distinct SQL texts in the prepared-statement cache.", st.Server.PreparedTexts)
	metric("repro_server_prepared_shapes", "gauge",
		"Distinct normalized shapes those texts collapse onto (texts/shapes = spellings shared per shape).", st.Server.PreparedShapes)

	metric("repro_engine_queries_total", "counter",
		"Queries started by the engine.", st.Engine.Queries)
	metric("repro_engine_errors_total", "counter",
		"Engine compiles or executions that failed.", st.Engine.Errors)
	metric("repro_engine_active_queries", "gauge",
		"Queries currently pinning recycle pool entries.", st.Engine.ActiveQueries)
	metric("repro_template_cache_size", "gauge",
		"Distinct query shapes in the SQL template cache.", st.Engine.TemplateCache.Size)
	metric("repro_template_cache_hits_total", "counter",
		"Template compiles served from the shape cache.", st.Engine.TemplateCache.Hits)
	metric("repro_template_cache_misses_total", "counter",
		"Template compiles that built a fresh plan.", st.Engine.TemplateCache.Misses)
	metric("repro_opt_cse_merged_total", "counter",
		"Instructions merged away by common-subexpression elimination.", st.Engine.TemplateCache.CSEMerged)
	metric("repro_opt_commuted_total", "counter",
		"Commutative instructions reordered into canonical argument order.", st.Engine.TemplateCache.Commuted)

	recycling := 0
	if st.Engine.Recycling {
		recycling = 1
	}
	metric("repro_recycler_enabled", "gauge",
		"1 when the engine runs with a recycler.", recycling)
	metric("repro_pool_entries", "gauge",
		"Cache lines currently in the recycle pool.", st.Engine.Recycler.Entries)
	metric("repro_pool_bytes", "gauge",
		"Memory held by pooled intermediates.", st.Engine.Recycler.Bytes)
	metric("repro_pool_reused_entries", "gauge",
		"Live pool entries reused at least once.", st.Engine.Recycler.ReusedEntries)
	metric("repro_pool_reuses_total", "counter",
		"Pool hits served over the recycler lifetime.", st.Engine.Recycler.Reuses)
	metric("repro_pool_admitted_total", "counter",
		"Intermediates admitted to the pool.", st.Engine.Recycler.Admitted)
	metric("repro_pool_evicted_total", "counter",
		"Intermediates evicted from the pool.", st.Engine.Recycler.Evicted)
	metric("repro_pool_invalidated_total", "counter",
		"Intermediates invalidated by updates.", st.Engine.Recycler.Invalidated)
	metric("repro_pool_writer_lock_waits_total", "counter",
		"Recycler writer-lock acquisitions that blocked on contention.", st.Engine.Recycler.WriterLockWaits)
	metric("repro_pool_writer_lock_wait_seconds_total", "counter",
		"Total time spent blocked on the recycler writer lock.", st.Engine.Recycler.WriterLockWait.Seconds())
	metric("repro_pool_shard_lock_waits_total", "counter",
		"Hit-path signature-shard read-lock acquisitions that blocked.", st.Engine.Recycler.ShardLockWaits)
	metric("repro_pool_shard_lock_wait_seconds_total", "counter",
		"Total time spent blocked on signature-shard read locks.", st.Engine.Recycler.ShardLockWait.Seconds())
	metric("repro_pool_spilled_total", "counter",
		"Intermediates demoted to the disk spill tier.", st.Engine.Recycler.Spilled)
	metric("repro_pool_spill_reloads_total", "counter",
		"Exact-match misses served by reloading a spilled intermediate.", st.Engine.Recycler.Reloaded)
	metric("repro_pool_prewarmed_total", "counter",
		"Spilled intermediates reloaded into the pool at startup.", st.Engine.Recycler.Prewarmed)
	metric("repro_pool_spill_stale_drops_total", "counter",
		"Spilled intermediates lazily dropped as epoch-stale.", st.Engine.Recycler.StaleDropped)
	metric("repro_pool_maintained_total", "counter",
		"Pool entries delta-maintained across commits (maintain mode).", st.Engine.Recycler.Maintained)
	metric("repro_pool_maintain_fallback_total", "counter",
		"Affected entries that invalidated instead of maintaining.", st.Engine.Recycler.MaintainFallback)
	metric("repro_pool_maintain_seconds_total", "counter",
		"Total time spent in incremental maintenance passes.", st.Engine.Recycler.MaintainTime.Seconds())
	metric("repro_pool_delta_rows_total", "counter",
		"Delta rows physically applied to maintained entries.", st.Engine.Recycler.DeltaRows)

	metric("repro_admission_granted_total", "counter",
		"Admission decisions that allowed the intermediate in.", st.Engine.Admission.Granted)
	metric("repro_admission_denied_total", "counter",
		"Admission decisions that kept the intermediate out.", st.Engine.Admission.Denied)
	metric("repro_admission_refunded_total", "counter",
		"Credits returned after failed admissions.", st.Engine.Admission.Refunded)
	metric("repro_admission_promoted_total", "counter",
		"Instructions promoted to unlimited credits (adapt).", st.Engine.Admission.Promoted)
	metric("repro_admission_demoted_total", "counter",
		"Instructions blocked from admission (adapt).", st.Engine.Admission.Demoted)

	// Per-stage latency histograms (all zero when tracing is off; the
	// families render regardless so dashboards never see them vanish).
	s.metrics.WriteProm(w)
}
