package server

import (
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/mal"
)

// preparedCache is the server-side prepared-statement cache. The text
// level keys on the *exact* SQL text: a repeated statement skips
// lexing, parsing and parameter extraction entirely and re-executes
// the stored template with the stored parameter values. Beneath it,
// statements are re-keyed on their *normalized shape* (the template's
// identity, recovered from the SQL front end): distinct texts of one
// shape — shuffled conjunct order, literal spelling variants — share
// one shape entry and therefore one template, and the texts-per-shape
// ratio is the sharing the normalization pipeline buys, exported via
// /stats and /metrics.
//
// The text level is bounded; when full, an arbitrary entry is dropped
// (Go map iteration order), which is good enough for a cache whose
// entries are all equally cheap to rebuild. Shape entries are
// reference-counted by their texts and die with the last one.
type preparedCache struct {
	limit int

	mu      sync.Mutex
	stmts   map[string]*preparedStmt
	shapes  map[string]*preparedShape
	hitsN   atomic.Uint64
	missesN atomic.Uint64
}

// preparedShape is one normalized shape: the shared template plus the
// number of cached texts that compile onto it.
type preparedShape struct {
	tmpl  *mal.Template
	texts int
}

// preparedStmt is one exact text: its parameter values plus the shape
// it normalizes to.
type preparedStmt struct {
	shape  *preparedShape
	params []mal.Value
}

func newPreparedCache(limit int) *preparedCache {
	if limit <= 0 {
		limit = 1024
	}
	return &preparedCache{
		limit:  limit,
		stmts:  make(map[string]*preparedStmt),
		shapes: make(map[string]*preparedShape),
	}
}

// compile returns the template and parameters for src, from cache or
// by compiling through the engine's SQL front end.
func (p *preparedCache) compile(eng *repro.Engine, src string) (*mal.Template, []mal.Value, error) {
	p.mu.Lock()
	st := p.stmts[src]
	p.mu.Unlock()
	if st != nil {
		p.hitsN.Add(1)
		return st.shape.tmpl, st.params, nil
	}
	tmpl, params, err := eng.CompileSQL(src)
	if err != nil {
		return nil, nil, err
	}
	p.missesN.Add(1)
	p.mu.Lock()
	if prev := p.stmts[src]; prev != nil {
		// A concurrent miss on the same text compiled and published
		// first (the lock is released around the compile). Keep the
		// winner: inserting again would bump its shape's text count
		// for a single stmts entry and leak the shape at eviction.
		p.mu.Unlock()
		return prev.shape.tmpl, prev.params, nil
	}
	if len(p.stmts) >= p.limit {
		for k := range p.stmts {
			p.evictLocked(k)
			break
		}
	}
	// The template's name IS the normalized shape (the front end
	// builds it as "sql:"+shape), and the front end returns one shared
	// *Template per shape — so keying on it re-keys the cache on the
	// normalized shape without re-deriving it here.
	sh := p.shapes[tmpl.Name]
	if sh == nil {
		sh = &preparedShape{tmpl: tmpl}
		p.shapes[tmpl.Name] = sh
	}
	sh.texts++
	p.stmts[src] = &preparedStmt{shape: sh, params: params}
	p.mu.Unlock()
	return tmpl, params, nil
}

// evictLocked drops one text, unreferencing (and possibly freeing) its
// shape. Caller holds p.mu.
func (p *preparedCache) evictLocked(src string) {
	st := p.stmts[src]
	if st == nil {
		return
	}
	delete(p.stmts, src)
	st.shape.texts--
	if st.shape.texts <= 0 {
		delete(p.shapes, st.shape.tmpl.Name)
	}
}

func (p *preparedCache) stats() (hits, misses uint64) {
	return p.hitsN.Load(), p.missesN.Load()
}

// shapeStats reports the cache's sharing: how many distinct SQL texts
// are cached and how many normalized shapes they collapse onto.
// texts/shapes > 1 means the normalization pipeline is deduplicating
// spellings.
func (p *preparedCache) shapeStats() (texts, shapes int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.stmts), len(p.shapes)
}
