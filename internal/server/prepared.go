package server

import (
	"sync"
	"sync/atomic"

	"repro"
	"repro/internal/mal"
)

// preparedCache is the server-side prepared-statement cache. It keys
// on the *exact* SQL text: a repeated statement skips lexing, parsing
// and parameter extraction entirely and re-executes the stored
// template with the stored parameter values. Distinct texts of the
// same shape still share one template underneath through the SQL
// front end's shape cache — this layer only removes the parse.
//
// The cache is bounded; when full, an arbitrary entry is dropped
// (Go map iteration order), which is good enough for a cache whose
// entries are all equally cheap to rebuild.
type preparedCache struct {
	limit int

	mu      sync.Mutex
	stmts   map[string]*preparedStmt
	hitsN   atomic.Uint64
	missesN atomic.Uint64
}

type preparedStmt struct {
	tmpl   *mal.Template
	params []mal.Value
}

func newPreparedCache(limit int) *preparedCache {
	if limit <= 0 {
		limit = 1024
	}
	return &preparedCache{limit: limit, stmts: make(map[string]*preparedStmt)}
}

// compile returns the template and parameters for src, from cache or
// by compiling through the engine's SQL front end.
func (p *preparedCache) compile(eng *repro.Engine, src string) (*mal.Template, []mal.Value, error) {
	p.mu.Lock()
	st := p.stmts[src]
	p.mu.Unlock()
	if st != nil {
		p.hitsN.Add(1)
		return st.tmpl, st.params, nil
	}
	tmpl, params, err := eng.CompileSQL(src)
	if err != nil {
		return nil, nil, err
	}
	p.missesN.Add(1)
	p.mu.Lock()
	if len(p.stmts) >= p.limit {
		for k := range p.stmts {
			delete(p.stmts, k)
			break
		}
	}
	p.stmts[src] = &preparedStmt{tmpl: tmpl, params: params}
	p.mu.Unlock()
	return tmpl, params, nil
}

func (p *preparedCache) stats() (hits, misses uint64) {
	return p.hitsN.Load(), p.missesN.Load()
}
