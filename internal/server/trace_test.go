package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro"
	"repro/internal/recycler"
	"repro/internal/sky"
	"repro/internal/trace"
)

// newTracedServer is newTestServer with a tracer attached and a
// threshold that classifies every query as slow, so the slow log is
// exercised without sleeping.
func newTracedServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := sky.Generate(2000, 17)
	eng := repro.NewEngine(db.Cat,
		repro.WithRecycler(recycler.Config{Admission: recycler.KeepAll, Subsumption: true}),
		repro.WithTracer(trace.New(trace.Config{SlowQuery: time.Nanosecond, RingSize: 8})),
	)
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		eng.Recycler().Close()
	})
	return s, ts
}

func postQueryTraced(t *testing.T, url, sql string) *QueryResponse {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql})
	resp, err := http.Post(url+"/query?trace=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query?trace=1: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query?trace=1: status %d", resp.StatusCode)
	}
	var out QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /query response: %v", err)
	}
	return &out
}

// TestQueryTraceParam is the tentpole's HTTP acceptance: ?trace=1
// returns the per-instruction trace alongside the rows, every
// monitored instruction carries a recycler decision reason, and a
// repeated query shows hits.
func TestQueryTraceParam(t *testing.T) {
	_, ts := newTracedServer(t, Config{MaxConcurrency: 4})
	const sql = "SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1"

	first := postQueryTraced(t, ts.URL, sql)
	if first.Trace == nil {
		t.Fatal("?trace=1 returned no trace")
	}
	if len(first.Trace.Spans) == 0 {
		t.Fatal("trace has no spans")
	}
	if first.Trace.SQL != sql {
		t.Errorf("trace sql = %q, want the submitted text", first.Trace.SQL)
	}
	monitored := 0
	for _, sp := range first.Trace.Spans {
		if sp.Op == "" {
			continue
		}
		if sp.Recycle != "" {
			monitored++
		}
	}
	if monitored == 0 {
		t.Error("no span carries a recycler decision reason")
	}

	second := postQueryTraced(t, ts.URL, sql)
	hits := 0
	for _, sp := range second.Trace.Spans {
		if strings.HasPrefix(sp.Recycle, "hit") {
			hits++
		}
	}
	if hits == 0 {
		t.Errorf("repeated query shows no hit reasons; spans: %+v", second.Trace.Spans)
	}
	if second.Trace.QueryID == first.Trace.QueryID {
		t.Error("distinct queries share a query id")
	}

	// Without the parameter the trace stays out of the response.
	plain, code := postQuery(t, ts.URL, sql)
	if code != http.StatusOK {
		t.Fatalf("plain /query: status %d", code)
	}
	if plain.Trace != nil {
		t.Error("plain /query returned a trace without ?trace=1")
	}
}

// TestQueryTraceWithoutTracer: ?trace=1 on an engine without a tracer
// degrades to a normal response, no error.
func TestQueryTraceWithoutTracer(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrency: 4})
	res := postQueryTraced(t, ts.URL, "SELECT COUNT(*) FROM sky.photoobj WHERE mode = 1")
	if res.Trace != nil {
		t.Error("traceless engine returned a trace")
	}
	if len(res.Results) == 0 {
		t.Error("traceless engine returned no rows")
	}
}

// TestDebugQueriesEndpoint: the recent ring, slow log and event ring
// are served at /debug/queries.
func TestDebugQueriesEndpoint(t *testing.T) {
	_, ts := newTracedServer(t, Config{MaxConcurrency: 4})
	const sql = "SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1"
	postQueryTraced(t, ts.URL, sql)
	if _, code := postQuery(t, ts.URL, sql); code != http.StatusOK {
		t.Fatalf("plain query: status %d", code)
	}

	resp, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatalf("GET /debug/queries: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/queries: status %d", resp.StatusCode)
	}
	var out DebugQueriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /debug/queries: %v", err)
	}
	if !out.Tracing {
		t.Fatal("tracing reported off on a traced server")
	}
	// Both queries must appear: the recent ring sees all traffic, not
	// just ?trace=1 requests.
	if out.Queries < 2 {
		t.Errorf("queries = %d, want >= 2", out.Queries)
	}
	if len(out.Recent) < 2 {
		t.Errorf("recent ring holds %d traces, want >= 2", len(out.Recent))
	}
	if len(out.Slow) < 2 {
		t.Errorf("slow log holds %d traces with a 1ns threshold, want >= 2", len(out.Slow))
	}
	if out.SlowThresholdMS != 0 { // 1ns rounds to 0ms
		t.Errorf("slow_threshold_ms = %d, want 0", out.SlowThresholdMS)
	}
}

// TestDebugQueriesWithoutTracer: the endpoint answers (empty) when
// tracing is off instead of erroring.
func TestDebugQueriesWithoutTracer(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrency: 4})
	resp, err := http.Get(ts.URL + "/debug/queries")
	if err != nil {
		t.Fatalf("GET /debug/queries: %v", err)
	}
	defer resp.Body.Close()
	var out DebugQueriesResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /debug/queries: %v", err)
	}
	if out.Tracing || len(out.Recent) != 0 || len(out.Slow) != 0 {
		t.Errorf("traceless /debug/queries not empty: %+v", out)
	}
}

// TestPprofWired: the standard pprof index answers on the ops mux.
func TestPprofWired(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrency: 4})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatalf("GET /debug/pprof/: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("GET /debug/pprof/: status %d", resp.StatusCode)
	}
}

// TestMetricsHistogramExposition validates the /metrics exposition
// format for the new histogram families: at least 5 histogram-typed
// families, each with cumulative non-decreasing buckets, a +Inf
// bucket equal to _count, and a _sum sample.
func TestMetricsHistogramExposition(t *testing.T) {
	s, ts := newTracedServer(t, Config{MaxConcurrency: 4})
	// Feed the histograms real observations first.
	postQueryTraced(t, ts.URL, "SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1")

	var buf bytes.Buffer
	s.WriteMetrics(&buf)

	type family struct {
		typ     string
		buckets []struct {
			le    float64
			inf   bool
			count int64
		}
		sum, count string
	}
	families := map[string]*family{}
	get := func(name string) *family {
		f := families[name]
		if f == nil {
			f = &family{}
			families[name] = f
		}
		return f
	}
	for _, line := range strings.Split(buf.String(), "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			get(parts[2]).typ = parts[3]
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Fatalf("unknown comment line: %q", line)
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line: %q", line)
		}
		key, val := line[:sp], line[sp+1:]
		switch {
		case strings.Contains(key, "_bucket{le=\""):
			name := key[:strings.Index(key, "_bucket{")]
			leStr := key[strings.Index(key, "le=\"")+4 : len(key)-2]
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				t.Fatalf("bucket count %q not an integer: %v", line, err)
			}
			b := struct {
				le    float64
				inf   bool
				count int64
			}{count: n}
			if leStr == "+Inf" {
				b.inf = true
			} else if b.le, err = strconv.ParseFloat(leStr, 64); err != nil {
				t.Fatalf("bucket bound %q unparsable: %v", leStr, err)
			}
			f := get(name)
			f.buckets = append(f.buckets, b)
		case strings.HasSuffix(key, "_sum"):
			get(strings.TrimSuffix(key, "_sum")).sum = val
		case strings.HasSuffix(key, "_count"):
			get(strings.TrimSuffix(key, "_count")).count = val
		}
	}

	var histograms []string
	for name, f := range families {
		if f.typ == "histogram" {
			histograms = append(histograms, name)
		}
	}
	sort.Strings(histograms)
	if len(histograms) < 5 {
		t.Fatalf("only %d histogram families exposed (%v), want >= 5", len(histograms), histograms)
	}
	for _, name := range histograms {
		f := families[name]
		if len(f.buckets) == 0 {
			t.Errorf("%s: no buckets", name)
			continue
		}
		last := f.buckets[len(f.buckets)-1]
		if !last.inf {
			t.Errorf("%s: final bucket is not le=\"+Inf\"", name)
		}
		prev := int64(-1)
		prevLE := -1.0
		for _, b := range f.buckets {
			if b.count < prev {
				t.Errorf("%s: bucket counts not cumulative (%d after %d)", name, b.count, prev)
			}
			prev = b.count
			if !b.inf {
				if b.le <= prevLE {
					t.Errorf("%s: bucket bounds not increasing (%g after %g)", name, b.le, prevLE)
				}
				prevLE = b.le
			}
		}
		if f.sum == "" || f.count == "" {
			t.Errorf("%s: missing _sum or _count sample", name)
		}
		if n, err := strconv.ParseInt(f.count, 10, 64); err != nil || n != last.count {
			t.Errorf("%s: _count %s != +Inf bucket %d", name, f.count, last.count)
		}
	}
	// The execute histogram must have seen the queries above.
	exec := families["repro_stage_execute_seconds"]
	if exec == nil {
		t.Fatal("repro_stage_execute_seconds family missing")
	}
	if n, _ := strconv.ParseInt(exec.count, 10, 64); n == 0 {
		t.Error("execute histogram saw no observations after a traced query")
	}
}
