package server

import (
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/catalog"
)

func dmlCatalog() *catalog.Catalog {
	cat := catalog.New()
	t := cat.CreateTable("sys", "m", []catalog.ColDef{
		{Name: "id", Kind: bat.KInt},
		{Name: "val", Kind: bat.KFloat},
		{Name: "tag", Kind: bat.KStr},
		{Name: "day", Kind: bat.KDate},
	})
	t.Append([]catalog.Row{
		{"id": int64(1), "val": 1.5, "tag": "a", "day": bat.Date(0)},
		{"id": int64(2), "val": -0.5, "tag": "b, c", "day": bat.Date(1)},
	})
	return cat
}

func TestExecDMLInsertDelete(t *testing.T) {
	cat := dmlCatalog()
	tab := cat.MustTable("sys", "m")

	// Unqualified table names default to the sys schema; literals are
	// coerced to the column kinds (3 fills a float column).
	op, n, err := execDML(cat,
		"INSERT INTO m (id, val, tag, day) VALUES (3, 3, 'x (no), wait', DATE '2008-01-15'), (-4, -2.25, '', DATE '1999-12-31')")
	if err != nil {
		t.Fatal(err)
	}
	if op != "insert" || n != 2 {
		t.Fatalf("got %s/%d, want insert/2", op, n)
	}
	if got := tab.NumRows(); got != 4 {
		t.Fatalf("NumRows = %d, want 4", got)
	}

	// Delete matching a string with an embedded comma.
	op, n, err = execDML(cat, "DELETE FROM sys.m WHERE tag = 'b, c'")
	if err != nil {
		t.Fatal(err)
	}
	if op != "delete" || n != 1 || tab.NumRows() != 3 {
		t.Fatalf("got %s/%d rows=%d, want delete/1 rows=3", op, n, tab.NumRows())
	}

	// Deleting nothing affects zero rows without error.
	if _, n, err = execDML(cat, "DELETE FROM m WHERE id = 999"); err != nil || n != 0 {
		t.Fatalf("no-match delete: n=%d err=%v", n, err)
	}

	// Float equality delete, negative literal.
	if _, n, err = execDML(cat, "DELETE FROM m WHERE val = -2.25"); err != nil || n != 1 {
		t.Fatalf("float delete: n=%d err=%v", n, err)
	}
}

func TestExecDMLErrors(t *testing.T) {
	cat := dmlCatalog()
	cases := []struct {
		sql, want string
	}{
		{"UPDATE m SET id = 1", "unsupported statement"},
		{"INSERT INTO nosuch (a) VALUES (1)", "unknown table"},
		{"INSERT INTO m (id) VALUES (1)", "must list all"},
		// A duplicated column would slip past a pure length check and
		// panic inside catalog.Append with a half-applied insert.
		{"INSERT INTO m (id, id, val, tag) VALUES (1, 2, 1.0, 'a')", "listed twice"},
		{"INSERT INTO m (id, val, tag, nope) VALUES (1, 1, 'a', 0)", "unknown column"},
		{"INSERT INTO m (id, val, tag, day) VALUES ('x', 1, 'a', DATE '2000-01-01')", "expected integer"},
		{"DELETE FROM m WHERE nope = 1", "unknown column"},
		{"DELETE FROM m WHERE id = 1 AND val = 2", "single col = literal"},
		{"DELETE FROM m WHERE tag = 'unterminated", "unterminated string"},
		{"", "empty statement"},
	}
	for _, c := range cases {
		if _, _, err := execDML(cat, c.sql); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: err = %v, want containing %q", c.sql, err, c.want)
		}
	}
}
