package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/mal"
	"repro/internal/trace"
)

// Config parametrises a Server.
type Config struct {
	// MaxConcurrency bounds the number of statements executing at once
	// across all protocols (the admission gate). 0 means twice the
	// number of CPUs — enough to keep every core busy while the rest
	// of the flood queues at the door.
	MaxConcurrency int
	// QueueTimeout bounds how long a statement may wait for a gate
	// slot before being rejected with 503. 0 waits as long as the
	// client does (the request context is still honoured).
	QueueTimeout time.Duration
	// MaxRows caps the values returned per result column on /query
	// and the TCP protocol (0 = 1000). The pool still holds the full
	// intermediate; the cap only bounds the response encoding.
	MaxRows int
}

// ErrShuttingDown is returned for statements that arrive after
// Shutdown has begun.
var ErrShuttingDown = errors.New("server: shutting down")

// errGateTimeout reports a statement that waited longer than
// QueueTimeout for an execution slot.
var errGateTimeout = errors.New("server: admission queue timeout")

// Server serves one shared Engine over HTTP and a line-oriented TCP
// protocol. All statements from all protocols pass one admission gate
// and are drained by Shutdown.
type Server struct {
	eng *repro.Engine
	cfg Config

	gate chan struct{}

	mu        sync.Mutex
	closed    bool
	inflight  sync.WaitGroup // statements currently executing
	listeners []net.Listener
	conns     map[net.Conn]struct{}
	connWG    sync.WaitGroup // TCP connection handlers

	prepared *preparedCache

	// metrics is the engine tracer's histogram registry, or a detached
	// (never-fed) one when tracing is off so /metrics always exposes the
	// full set of families.
	metrics *trace.Metrics

	queries  atomic.Uint64 // /query + TCP SELECTs accepted past the gate
	execs    atomic.Uint64 // /exec statements accepted past the gate
	errorsN  atomic.Uint64 // statements that returned an error
	rejected atomic.Uint64 // statements refused (gate timeout or shutdown)
	active   atomic.Int64  // statements currently past the gate
}

// New creates a server over the engine. The engine (and its catalog
// and recycler) is shared: every connection's queries meet in the same
// recycle pool.
func New(eng *repro.Engine, cfg Config) *Server {
	if cfg.MaxConcurrency <= 0 {
		cfg.MaxConcurrency = 2 * runtime.GOMAXPROCS(0)
	}
	if cfg.MaxRows <= 0 {
		cfg.MaxRows = 1000
	}
	metrics := eng.Tracer().Metrics()
	if metrics == nil {
		metrics = trace.NewMetrics()
	}
	return &Server{
		eng:      eng,
		cfg:      cfg,
		gate:     make(chan struct{}, cfg.MaxConcurrency),
		conns:    make(map[net.Conn]struct{}),
		prepared: newPreparedCache(1024),
		metrics:  metrics,
	}
}

// Engine returns the served engine.
func (s *Server) Engine() *repro.Engine { return s.eng }

// acquire claims an execution slot and registers the statement with
// the drain group. Every successful acquire must be paired with
// release.
func (s *Server) acquire(ctx context.Context) error {
	var timeout <-chan time.Time
	if s.cfg.QueueTimeout > 0 {
		t := time.NewTimer(s.cfg.QueueTimeout)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case s.gate <- struct{}{}:
	case <-ctx.Done():
		s.rejected.Add(1)
		return ctx.Err()
	case <-timeout:
		s.rejected.Add(1)
		return errGateTimeout
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.gate
		s.rejected.Add(1)
		return ErrShuttingDown
	}
	s.inflight.Add(1)
	s.mu.Unlock()
	s.active.Add(1)
	return nil
}

func (s *Server) release() {
	s.active.Add(-1)
	s.inflight.Done()
	<-s.gate
}

// execSQL runs one SELECT through the prepared-statement cache under
// the gate (already acquired by the caller).
func (s *Server) execSQL(src string) (*repro.ExecResult, error) {
	tmpl, params, err := s.prepared.compile(s.eng, src)
	if err != nil {
		return nil, err
	}
	return s.eng.Exec(tmpl, params...)
}

// execSQLTraced is execSQL returning the per-instruction trace as
// well (nil when the engine has no tracer). Front-end timings are not
// threaded through the prepared cache — a prepared hit skips the
// front end entirely — so the trace's parse/optimize stages read zero
// here; the stage histograms are still fed on cache misses inside
// Engine.CompileSQL.
func (s *Server) execSQLTraced(src string) (*repro.ExecResult, *trace.QueryTrace, error) {
	tmpl, params, err := s.prepared.compile(s.eng, src)
	if err != nil {
		return nil, nil, err
	}
	return s.eng.ExecTraced(src, 0, 0, tmpl, params...)
}

// Shutdown gracefully stops the server: listeners close, new
// statements are refused, in-flight statements run to completion
// (each releasing its recycler pin through the engine's paired
// BeginQuery/EndQuery), and finally all TCP connections are closed.
// It returns ctx.Err() if the context expires before the drain
// completes; the drain itself keeps going in the background.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	lns := s.listeners
	s.listeners = nil
	s.mu.Unlock()
	if !already {
		for _, ln := range lns {
			ln.Close()
		}
	}

	drained := make(chan struct{})
	go func() {
		s.inflight.Wait()
		// Only after the drain: kill connections (a connection blocked
		// in Read holds no statement and may be cut; one mid-statement
		// was just waited for).
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		s.connWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// --- HTTP ---------------------------------------------------------------

// Handler returns the HTTP API: POST /query (?trace=1 returns the
// per-instruction trace), POST /exec, GET /stats, GET /metrics,
// GET /healthz, GET /debug/queries (recent + slow query traces) and
// the standard net/http/pprof endpoints under /debug/pprof/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /exec", s.handleExec)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("GET /debug/queries", s.handleDebugQueries)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

// DebugQueriesResponse is the body of GET /debug/queries: the bounded
// recent-query ring, the slow-query log and the tracer's commit/spill
// event ring, most recent first.
type DebugQueriesResponse struct {
	// Tracing is false when the engine runs without a tracer; all the
	// rings are empty then.
	Tracing         bool                `json:"tracing"`
	SlowThresholdMS int64               `json:"slow_threshold_ms"`
	Queries         uint64              `json:"queries"`
	Recent          []*trace.QueryTrace `json:"recent"`
	Slow            []*trace.QueryTrace `json:"slow"`
	Events          []trace.TracerEvent `json:"events"`
}

func (s *Server) handleDebugQueries(w http.ResponseWriter, r *http.Request) {
	tr := s.eng.Tracer()
	writeJSON(w, http.StatusOK, DebugQueriesResponse{
		Tracing:         tr != nil,
		SlowThresholdMS: tr.SlowThreshold().Milliseconds(),
		Queries:         tr.Queries(),
		Recent:          tr.Recent(),
		Slow:            tr.Slow(),
		Events:          tr.Events(),
	})
}

// QueryRequest is the body of POST /query.
type QueryRequest struct {
	SQL string `json:"sql"`
	// MaxRows overrides the server's per-column row cap for this
	// request (bounded above by the server cap).
	MaxRows int `json:"max_rows,omitempty"`
}

// ResultColumn is one exported result: a named column of values (or a
// single scalar, e.g. COUNT(*)).
type ResultColumn struct {
	Name string `json:"name"`
	// Values holds the column values, capped at MaxRows.
	Values []any `json:"values"`
	// Tuples is the uncapped cardinality of the result.
	Tuples int `json:"tuples"`
	// Truncated reports Values was capped below Tuples.
	Truncated bool `json:"truncated,omitempty"`
}

// QueryStatsJSON is the per-query recycler summary returned with each
// /query response.
type QueryStatsJSON struct {
	ElapsedUS   int64 `json:"elapsed_us"`
	Marked      int   `json:"marked"`
	Hits        int   `json:"hits"`
	HitsNonBind int   `json:"hits_nonbind"`
	LocalHits   int   `json:"local_hits"`
	GlobalHits  int   `json:"global_hits"`
	Subsumed    int   `json:"subsumed"`
	Combined    int   `json:"combined"`
	SavedUS     int64 `json:"saved_us"`
}

// QueryResponse is the body of a successful POST /query. Trace is set
// only when the request asked for ?trace=1 and the engine has a
// tracer attached.
type QueryResponse struct {
	Results []ResultColumn    `json:"results"`
	Stats   QueryStatsJSON    `json:"stats"`
	Trace   *trace.QueryTrace `json:"trace,omitempty"`
}

// ExecRequest is the body of POST /exec.
type ExecRequest struct {
	SQL string `json:"sql"`
}

// ExecResponse is the body of a successful POST /exec.
type ExecResponse struct {
	Op           string `json:"op"`
	RowsAffected int    `json:"rows_affected"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	enc.Encode(v)
}

func (s *Server) gateError(w http.ResponseWriter, err error) {
	code := http.StatusServiceUnavailable
	if errors.Is(err, context.Canceled) {
		code = 499 // client went away
	}
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be JSON {\"sql\": \"SELECT ...\"}"})
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		s.gateError(w, err)
		return
	}
	defer s.release()
	s.queries.Add(1)
	var res *repro.ExecResult
	var qt *trace.QueryTrace
	var err error
	if r.URL.Query().Get("trace") == "1" {
		res, qt, err = s.execSQLTraced(req.SQL)
	} else {
		res, err = s.execSQL(req.SQL)
	}
	if err != nil {
		s.errorsN.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	maxRows := s.cfg.MaxRows
	if req.MaxRows > 0 && req.MaxRows < maxRows {
		maxRows = req.MaxRows
	}
	writeJSON(w, http.StatusOK, QueryResponse{
		Results: encodeResults(res.Results, maxRows),
		Stats:   encodeStats(res.Stats),
		Trace:   qt,
	})
}

func (s *Server) handleExec(w http.ResponseWriter, r *http.Request) {
	var req ExecRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.SQL == "" {
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "body must be JSON {\"sql\": \"INSERT ...\"}"})
		return
	}
	if err := s.acquire(r.Context()); err != nil {
		s.gateError(w, err)
		return
	}
	defer s.release()
	s.execs.Add(1)
	op, n, err := execDML(s.eng.Catalog(), req.SQL)
	if err != nil {
		s.errorsN.Add(1)
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, ExecResponse{Op: op, RowsAffected: n})
}

// StatsResponse is the body of GET /stats: the engine snapshot plus
// the server's own counters.
type StatsResponse struct {
	Engine repro.EngineStats `json:"engine"`
	Server ServerStats       `json:"server"`
}

// ServerStats summarises the serving layer.
type ServerStats struct {
	Queries        uint64 `json:"queries"`
	Execs          uint64 `json:"execs"`
	Errors         uint64 `json:"errors"`
	Rejected       uint64 `json:"rejected"`
	Active         int64  `json:"active"`
	MaxConcurrency int    `json:"max_concurrency"`
	PreparedHits   uint64 `json:"prepared_hits"`
	PreparedMisses uint64 `json:"prepared_misses"`
	// PreparedTexts / PreparedShapes report the prepared-statement
	// cache's normalized-shape sharing: how many distinct SQL texts
	// are cached and how many normalized shapes they collapse onto.
	// texts/shapes is the average number of spellings each shape
	// absorbed.
	PreparedTexts  int `json:"prepared_texts"`
	PreparedShapes int `json:"prepared_shapes"`
}

// Stats snapshots the serving layer and the engine underneath.
func (s *Server) Stats() StatsResponse {
	ph, pm := s.prepared.stats()
	texts, shapes := s.prepared.shapeStats()
	return StatsResponse{
		Engine: s.eng.StatsSnapshot(),
		Server: ServerStats{
			Queries:        s.queries.Load(),
			Execs:          s.execs.Load(),
			Errors:         s.errorsN.Load(),
			Rejected:       s.rejected.Load(),
			Active:         s.active.Load(),
			MaxConcurrency: s.cfg.MaxConcurrency,
			PreparedHits:   ph,
			PreparedMisses: pm,
			PreparedTexts:  texts,
			PreparedShapes: shapes,
		},
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// --- result encoding ----------------------------------------------------

func encodeResults(results []mal.Result, maxRows int) []ResultColumn {
	out := make([]ResultColumn, 0, len(results))
	for _, r := range results {
		out = append(out, encodeResult(r, maxRows))
	}
	return out
}

func encodeResult(r mal.Result, maxRows int) ResultColumn {
	col := ResultColumn{Name: r.Name}
	if r.Val.Kind != mal.VBat {
		col.Tuples = 1
		col.Values = []any{jsonValue(r.Val.Scalar())}
		return col
	}
	b := r.Val.Bat
	if b == nil {
		return col
	}
	n := b.Len()
	col.Tuples = n
	limit := n
	if limit > maxRows {
		limit = maxRows
		col.Truncated = true
	}
	col.Values = make([]any, limit)
	for i := 0; i < limit; i++ {
		col.Values[i] = jsonValue(b.Tail.Get(i))
	}
	return col
}

func encodeStats(st mal.QueryStats) QueryStatsJSON {
	return QueryStatsJSON{
		ElapsedUS:   st.Elapsed.Microseconds(),
		Marked:      st.MarkedNonBind,
		Hits:        st.Hits,
		HitsNonBind: st.HitsNonBind,
		LocalHits:   st.LocalHits,
		GlobalHits:  st.GlobalHits,
		Subsumed:    st.Subsumed,
		Combined:    st.Combined,
		SavedUS:     st.SavedTime.Microseconds(),
	}
}
