// Package server exposes the engine over the network, turning the
// reproduction into the long-running multi-user service the paper's
// recycler is designed for: many clients' queries sharing one recycle
// pool (the SkyServer setting of §8).
//
// Two protocols front one shared Engine:
//
//   - HTTP/JSON: POST /query executes a SELECT and returns rows plus
//     per-query recycler statistics; POST /exec runs a small DML
//     subset (INSERT, DELETE) for effect, exercising the update
//     synchronisation path (§6) over the wire; GET /stats returns the
//     engine-wide EngineStats snapshot as JSON; GET /metrics renders
//     the same counters in Prometheus text format; GET /healthz is a
//     liveness probe.
//   - A line-oriented TCP protocol: one repro.Session per connection,
//     one SQL statement per line, results as tab-separated ROW lines
//     terminated by an OK or ERR line (see tcp.go for the grammar).
//
// Every statement passes a configurable max-concurrency admission
// gate, so a flood of clients queues at the door instead of piling
// onto the interpreter. Identical statement texts are served from a
// server-side prepared-statement cache keyed on the SQL string, which
// skips the parser entirely and feeds the same shape-cached template
// the SQL front end would produce — repeated traffic reaches the
// recycler's matcher with minimal overhead.
//
// Shutdown drains: new statements are refused, in-flight ones run to
// completion (releasing their recycler pins via Engine.Exec's paired
// BeginQuery/EndQuery), and only then are connections closed. After a
// clean Shutdown the recycler's active-query set is empty, so no pool
// entry stays pinned by a query that will never finish.
package server
