package server

import (
	"fmt"

	"repro/internal/algebra"
	"repro/internal/bat"
)

// jsonValue converts an engine tail value into its JSON encoding:
// numbers stay numbers, dates render as "YYYY-MM-DD", oids as
// numbers. int64 is encoded as a JSON number; callers that need
// 64-bit exactness should treat the wire format as approximate above
// 2^53 (the SkyServer objid space fits).
func jsonValue(v any) any {
	switch x := v.(type) {
	case bat.Date:
		y, m, d := algebra.CivilFromDays(int32(x))
		return fmt.Sprintf("%04d-%02d-%02d", y, m, d)
	case bat.Oid:
		return uint64(x)
	default:
		return v
	}
}
