package server

import (
	"testing"

	"repro"
	"repro/internal/bat"
	"repro/internal/catalog"
)

// TestPreparedCacheSharesNormalizedShapes pins the prepared layer's
// re-keying: distinct SQL texts that normalize to one shape share one
// shape entry (and template), and the /stats sharing counters see it.
func TestPreparedCacheSharesNormalizedShapes(t *testing.T) {
	cat := catalog.New()
	tb := cat.CreateTable("sys", "t", []catalog.ColDef{
		{Name: "a", Kind: bat.KInt},
		{Name: "b", Kind: bat.KInt},
	})
	tb.Append([]catalog.Row{{"a": int64(1), "b": int64(2)}})
	eng := repro.NewEngine(cat)
	p := newPreparedCache(8)

	t1, _, err := p.compile(eng, "SELECT COUNT(*) FROM sys.t WHERE a > 1 AND b < 5")
	if err != nil {
		t.Fatal(err)
	}
	t2, _, err := p.compile(eng, "SELECT COUNT(*) FROM sys.t WHERE b < 5 AND a > 1")
	if err != nil {
		t.Fatal(err)
	}
	if t1 != t2 {
		t.Fatal("equivalent texts must share one template")
	}
	texts, shapes := p.shapeStats()
	if texts != 2 || shapes != 1 {
		t.Fatalf("texts/shapes = %d/%d, want 2/1", texts, shapes)
	}
	// A repeated text is a text-level hit, not a new entry.
	if _, _, err := p.compile(eng, "SELECT COUNT(*) FROM sys.t WHERE a > 1 AND b < 5"); err != nil {
		t.Fatal(err)
	}
	if h, m := p.stats(); h != 1 || m != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", h, m)
	}

	// Eviction unreferences the shape; the last text out frees it.
	p.mu.Lock()
	p.evictLocked("SELECT COUNT(*) FROM sys.t WHERE a > 1 AND b < 5")
	p.evictLocked("SELECT COUNT(*) FROM sys.t WHERE b < 5 AND a > 1")
	p.mu.Unlock()
	if texts, shapes := p.shapeStats(); texts != 0 || shapes != 0 {
		t.Fatalf("after eviction texts/shapes = %d/%d, want 0/0", texts, shapes)
	}
}
