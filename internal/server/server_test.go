package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro"
	"repro/internal/recycler"
	"repro/internal/sky"
)

// newTestServer builds a small SkyServer catalog served with a
// keepall recycler — the shared-pool multi-user setup of the paper.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	db := sky.Generate(2000, 17)
	eng := repro.NewEngine(db.Cat, repro.WithRecycler(recycler.Config{
		Admission:   recycler.KeepAll,
		Subsumption: true,
	}))
	s := New(eng, cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		eng.Recycler().Close()
	})
	return s, ts
}

func postQuery(t *testing.T, url, sql string) (*QueryResponse, int) {
	t.Helper()
	body, _ := json.Marshal(QueryRequest{SQL: sql})
	resp, err := http.Post(url+"/query", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /query: %v", err)
	}
	defer resp.Body.Close()
	var out QueryResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode /query response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return &out, resp.StatusCode
}

func postExec(t *testing.T, url, sql string) (*ExecResponse, int) {
	t.Helper()
	body, _ := json.Marshal(ExecRequest{SQL: sql})
	resp, err := http.Post(url+"/exec", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /exec: %v", err)
	}
	defer resp.Body.Close()
	var out ExecResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decode /exec response: %v", err)
		}
	} else {
		io.Copy(io.Discard, resp.Body)
	}
	return &out, resp.StatusCode
}

func getStats(t *testing.T, url string) StatsResponse {
	t.Helper()
	resp, err := http.Get(url + "/stats")
	if err != nil {
		t.Fatalf("GET /stats: %v", err)
	}
	defer resp.Body.Close()
	var out StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decode /stats: %v", err)
	}
	return out
}

// TestConcurrentClientsSharePool is the acceptance scenario: many
// concurrent HTTP clients against one shared recycle pool, with
// nonzero reuse reported by /stats and no pins left behind.
func TestConcurrentClientsSharePool(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxConcurrency: 16})

	// Overlapping bounding-box searches: the same two footprints the
	// workload sampler uses, so clients hit each other's intermediates.
	queries := []string{
		"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 197.5 AND dec BETWEEN 2.0 AND 3.0 AND mode = 1",
		"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.5 AND 198.0 AND dec BETWEEN 2.2 AND 3.2 AND mode = 1",
		"SELECT description FROM sky.dbobjects WHERE name = 'dbobj_007'",
	}

	const clients = 8
	const perClient = 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				sql := queries[(c+i)%len(queries)]
				res, code := postQuery(t, ts.URL, sql)
				if code != http.StatusOK {
					errs <- fmt.Errorf("client %d: status %d", c, code)
					return
				}
				if len(res.Results) == 0 {
					errs <- fmt.Errorf("client %d: no results", c)
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	st := getStats(t, ts.URL)
	if st.Server.Queries != clients*perClient {
		t.Fatalf("server counted %d queries, want %d", st.Server.Queries, clients*perClient)
	}
	if !st.Engine.Recycling {
		t.Fatal("engine reports recycling disabled")
	}
	if st.Engine.Recycler.Reuses == 0 {
		t.Fatal("no pool reuse across concurrent clients; shared pool not working")
	}
	if st.Engine.Recycler.Entries == 0 {
		t.Fatal("pool is empty after the run")
	}
	if st.Engine.ActiveQueries != 0 {
		t.Fatalf("%d queries still pinned after all responses returned", st.Engine.ActiveQueries)
	}
	if st.Server.PreparedHits == 0 {
		t.Fatal("prepared-statement cache saw no hits for repeated texts")
	}
	// Each statement text appears many times: the shape cache must
	// hold one template per shape, not one per instance.
	if st.Engine.TemplateCache.Size > len(queries) {
		t.Fatalf("template cache holds %d shapes for %d distinct texts", st.Engine.TemplateCache.Size, len(queries))
	}
}

// TestGracefulShutdownDrains checks the drain contract: in-flight
// statements finish, later ones are refused, and no active-query pin
// outlives the drain.
func TestGracefulShutdownDrains(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrency: 4})

	const clients = 8
	var wg sync.WaitGroup
	codes := make(chan int, clients*20)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				// Distinct bounds in EVERY conjunct: normalization
				// sorts the conjunction, so a constant conjunct would
				// become a shared (pool-hit) chain head — each query
				// must do real work while the server shuts down.
				k := (c*20 + i) % 300
				sql := fmt.Sprintf(
					"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN %d.0 AND %d.5 AND dec BETWEEN -%d.0 AND %d.0",
					k, k+3, 50+k%30, 50+(k+7)%30)
				_, code := postQuery(t, ts.URL, sql)
				codes <- code
			}
		}(c)
	}

	// Let some queries get in flight, then drain.
	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not drain: %v", err)
	}
	wg.Wait()
	close(codes)

	var ok, refused int
	for code := range codes {
		switch code {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			refused++
		default:
			t.Fatalf("unexpected status %d during shutdown", code)
		}
	}
	if ok == 0 {
		t.Fatal("no query completed before the drain")
	}
	if refused == 0 {
		t.Fatal("no query was refused after shutdown began (drain raced nothing)")
	}
	if n := s.Engine().Recycler().ActiveQueries(); n != 0 {
		t.Fatalf("%d active-query pins leaked past Shutdown", n)
	}
	// A statement arriving after the drain must be refused, not hang.
	_, code := postQuery(t, ts.URL, "SELECT COUNT(*) FROM sky.photoobj WHERE mode = 1")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-shutdown query got %d, want 503", code)
	}
}

// TestExecDMLInvalidates drives an update over the wire and checks
// both the data change and the §6 invalidation of dependent pool
// entries.
func TestExecDMLInvalidates(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	count := func() float64 {
		res, code := postQuery(t, ts.URL, "SELECT COUNT(*) FROM sky.dbobjects WHERE type = 'U'")
		if code != http.StatusOK {
			t.Fatalf("count query: status %d", code)
		}
		return res.Results[0].Values[0].(float64)
	}

	before := count()
	count() // warm the pool so the insert has something to invalidate

	res, code := postExec(t, ts.URL,
		"INSERT INTO sky.dbobjects (name, type, description) VALUES ('dbobj_x1', 'U', 'wire test'), ('dbobj_x2', 'U', 'wire test')")
	if code != http.StatusOK {
		t.Fatalf("insert: status %d", code)
	}
	if res.Op != "insert" || res.RowsAffected != 2 {
		t.Fatalf("insert reported %+v", res)
	}
	if got := count(); got != before+2 {
		t.Fatalf("count after insert = %v, want %v", got, before+2)
	}

	res, code = postExec(t, ts.URL, "DELETE FROM sky.dbobjects WHERE name = 'dbobj_x1'")
	if code != http.StatusOK || res.RowsAffected != 1 {
		t.Fatalf("delete: status %d, %+v", code, res)
	}
	if got := count(); got != before+1 {
		t.Fatalf("count after delete = %v, want %v", got, before+1)
	}

	st := getStats(t, ts.URL)
	if st.Engine.Recycler.Invalidated == 0 {
		t.Fatal("DML over the wire invalidated nothing")
	}

	// Unsupported statements are errors, not silent no-ops.
	if _, code := postExec(t, ts.URL, "UPDATE sky.dbobjects SET type = 'V'"); code != http.StatusBadRequest {
		t.Fatalf("UPDATE got %d, want 400", code)
	}
	if _, code := postExec(t, ts.URL, "DELETE FROM sky.nosuch WHERE a = 1"); code != http.StatusBadRequest {
		t.Fatalf("unknown table got %d, want 400", code)
	}
}

// TestAdmissionGateQueueTimeout saturates a width-1 gate with a held
// slot and checks that a queued statement is rejected after the
// configured wait.
func TestAdmissionGateQueueTimeout(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrency: 1, QueueTimeout: 30 * time.Millisecond})

	// Hold the only slot directly.
	if err := s.acquire(context.Background()); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	start := time.Now()
	_, code := postQuery(t, ts.URL, "SELECT COUNT(*) FROM sky.dbobjects WHERE type = 'U'")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("saturated gate returned %d, want 503", code)
	}
	if time.Since(start) < 30*time.Millisecond {
		t.Fatal("rejection came before the queue timeout elapsed")
	}
	s.release()

	// With the slot free the same statement succeeds.
	if _, code := postQuery(t, ts.URL, "SELECT COUNT(*) FROM sky.dbobjects WHERE type = 'U'"); code != http.StatusOK {
		t.Fatalf("freed gate returned %d, want 200", code)
	}
	if got := getStats(t, ts.URL); got.Server.Rejected == 0 {
		t.Fatal("rejection not counted")
	}
}

// TestQueryErrorsAndLimits covers malformed requests and the row cap.
func TestQueryErrorsAndLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRows: 5})

	if _, code := postQuery(t, ts.URL, "SELEC nonsense"); code != http.StatusBadRequest {
		t.Fatalf("parse error got %d, want 400", code)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad JSON got %d, want 400", resp.StatusCode)
	}

	res, code := postQuery(t, ts.URL, "SELECT name FROM sky.dbobjects WHERE type = 'U'")
	if code != http.StatusOK {
		t.Fatalf("query: status %d", code)
	}
	col := res.Results[0]
	if len(col.Values) != 5 || !col.Truncated {
		t.Fatalf("row cap not applied: %d values, truncated=%v", len(col.Values), col.Truncated)
	}
	if col.Tuples <= 5 {
		t.Fatalf("tuples should report the uncapped cardinality, got %d", col.Tuples)
	}
}
