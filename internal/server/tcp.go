package server

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"time"

	"repro"
	"repro/internal/mal"
)

// The TCP protocol: one UTF-8 line per statement, one response block
// per statement. A response is zero or more data lines followed by a
// single terminator line:
//
//	ROW <name>\t<value>[\t<value>]*     one per exported result column
//	OK <cols> cols <elapsed> hits=<h>/<m>
//	ERR <message>
//
// Tab, newline, carriage return and backslash inside string values
// are escaped as \t, \n, \r and \\ so stored data can never break the
// line/tab framing.
//
// Client commands (case-insensitive): SELECT ... runs a query;
// INSERT/DELETE run DML; STATS prints a one-line pool summary; QUIT
// closes the connection. Each connection owns one repro.Session, so
// per-client counters accumulate server-side and all sessions share
// the engine's recycle pool.

// ServeTCP accepts connections on ln until the listener is closed
// (Shutdown closes it). It blocks; run it on its own goroutine.
func (s *Server) ServeTCP(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrShuttingDown
	}
	s.listeners = append(s.listeners, ln)
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer func() {
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		conn.Close()
		s.connWG.Done()
	}()
	sess := s.eng.NewSession()
	w := bufio.NewWriter(conn)
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		word := strings.ToUpper(firstWord(line))
		if word == "QUIT" {
			fmt.Fprintln(w, "OK bye")
			w.Flush()
			return
		}
		s.protectedServeLine(w, sess, word, line)
		w.Flush()
	}
}

// protectedServeLine runs one statement, converting a panic anywhere
// below (engine, catalog, DML) into an ERR response instead of
// killing the whole server process: one poisoned statement must not
// take down every other connection.
func (s *Server) protectedServeLine(w *bufio.Writer, sess *repro.Session, word, line string) {
	defer func() {
		if r := recover(); r != nil {
			s.errorsN.Add(1)
			fmt.Fprintf(w, "ERR internal: %v\n", r)
		}
	}()
	s.serveLine(w, sess, word, line)
}

// serveLine executes one statement line and writes its response block.
func (s *Server) serveLine(w *bufio.Writer, sess *repro.Session, word, line string) {
	switch word {
	case "STATS":
		st := sess.Stats()
		es := s.eng.StatsSnapshot()
		fmt.Fprintf(w, "OK session queries=%d hits=%d/%d pool entries=%d bytes=%d reuses=%d\n",
			st.Queries, st.Hits, st.Marked, es.Recycler.Entries, es.Recycler.Bytes, es.Recycler.Reuses)
		return
	case "INSERT", "DELETE":
		if err := s.acquire(context.Background()); err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		defer s.release() // deferred so a panicking statement cannot leak the slot
		s.execs.Add(1)
		op, n, err := execDML(s.eng.Catalog(), line)
		if err != nil {
			s.errorsN.Add(1)
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(w, "OK %s %d rows\n", op, n)
		return
	}
	// Everything else goes to the SQL front end.
	if err := s.acquire(context.Background()); err != nil {
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	defer s.release()
	s.queries.Add(1)
	tmpl, params, err := s.prepared.compile(s.eng, line)
	var res *repro.ExecResult
	if err == nil {
		res, err = sess.Exec(tmpl, params...)
	}
	if err != nil {
		s.errorsN.Add(1)
		fmt.Fprintf(w, "ERR %v\n", err)
		return
	}
	for _, r := range res.Results {
		writeRow(w, r, s.cfg.MaxRows)
	}
	fmt.Fprintf(w, "OK %d cols %v hits=%d/%d\n", len(res.Results),
		res.Stats.Elapsed.Round(time.Microsecond),
		res.Stats.HitsNonBind, res.Stats.MarkedNonBind)
}

// rowEscaper keeps stored values from breaking the protocol framing:
// the field separator (tab), the statement terminator (newline) and
// the escape character itself are escaped on the way out.
var rowEscaper = strings.NewReplacer("\\", "\\\\", "\t", "\\t", "\n", "\\n", "\r", "\\r")

func writeRow(w *bufio.Writer, r mal.Result, maxRows int) {
	fmt.Fprintf(w, "ROW %s", r.Name)
	if r.Val.Kind != mal.VBat {
		fmt.Fprintf(w, "\t%s", rowEscaper.Replace(r.Val.String()))
		fmt.Fprintln(w)
		return
	}
	b := r.Val.Bat
	if b != nil {
		n := b.Len()
		if n > maxRows {
			n = maxRows
		}
		for i := 0; i < n; i++ {
			fmt.Fprintf(w, "\t%s", rowEscaper.Replace(fmt.Sprintf("%v", jsonValue(b.Tail.Get(i)))))
		}
	}
	fmt.Fprintln(w)
}

func firstWord(line string) string {
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		return line[:i]
	}
	return line
}
