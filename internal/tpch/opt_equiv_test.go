package tpch

import (
	"math/rand"
	"testing"

	"repro/internal/mal"
	"repro/internal/opt"
)

// TestOptimizePreservesAllQueries: for every TPC-H template, the fully
// optimized plan (const-fold + commute + CSE + dead code) produces
// BIT-IDENTICAL results to the raw unoptimized plan, across random
// parameter instances. This is the optimizer property test at
// whole-plan scale — the templates carry joins, grouping, duplicate
// sub-plans (Q11) and scalar date arithmetic, so every pass fires
// somewhere in the suite.
func TestOptimizePreservesAllQueries(t *testing.T) {
	raw := QueriesOpt(opt.Options{
		SkipConstFold: true, SkipDeadCode: true, SkipCommute: true, SkipCSE: true,
	})
	full := Queries()
	rng := rand.New(rand.NewSource(31))
	for i, d := range full {
		r := raw[i]
		if r.Num != d.Num {
			t.Fatalf("query order mismatch: %d vs %d", r.Num, d.Num)
		}
		for inst := 0; inst < 2; inst++ {
			// One parameter draw feeds both plans.
			params := d.Params(rng)
			want := runTempl(t, r.Name+"(raw)", r.Templ, params)
			got := runTempl(t, d.Name+"(opt)", d.Templ, params)
			assertBitIdentical(t, d.Name, want, got)
		}
	}
}

func runTempl(t *testing.T, name string, tmpl *mal.Template, params []mal.Value) []mal.Result {
	t.Helper()
	ctx := &mal.Ctx{Cat: testDB.Cat}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return ctx.Results
}

func assertBitIdentical(t *testing.T, name string, a, b []mal.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: result count %d != %d", name, len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			t.Fatalf("%s: column %d name %q != %q", name, i, a[i].Name, b[i].Name)
		}
		va, vb := a[i].Val, b[i].Val
		if va.Kind != vb.Kind {
			t.Fatalf("%s %s: kind %v != %v", name, a[i].Name, va.Kind, vb.Kind)
		}
		if va.Kind != mal.VBat {
			if !va.EqualConst(vb) {
				t.Fatalf("%s %s: %v != %v", name, a[i].Name, va, vb)
			}
			continue
		}
		if va.Bat.Len() != vb.Bat.Len() {
			t.Fatalf("%s %s: len %d != %d", name, a[i].Name, va.Bat.Len(), vb.Bat.Len())
		}
		for j := 0; j < va.Bat.Len(); j++ {
			if va.Bat.Tail.Get(j) != vb.Bat.Tail.Get(j) {
				t.Fatalf("%s %s row %d: %v != %v", name, a[i].Name, j,
					va.Bat.Tail.Get(j), vb.Bat.Tail.Get(j))
			}
		}
	}
}
