package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/opt"
)

// QueryDef bundles one benchmark query: its compiled template and a
// parameter generator following the TPC-H substitution rules (which
// drive how much overlap exists between instances — the inter-query
// commonality of Table II).
type QueryDef struct {
	Num    int
	Name   string
	Templ  *mal.Template
	Params func(rng *rand.Rand) []mal.Value
}

// Queries compiles all 22 query templates under the default optimizer
// pipeline. Templates are simplified to their core
// filter/join/aggregate structure but keep the parameter positions and
// the (intra/inter) commonality profile of the paper's workload
// analysis.
//
// Note that the default pipeline CSEs duplicate sub-plans away (e.g.
// Q11's repeated sub-query chain), converting the paper's *run-time*
// intra-query reuse into a compile-time merge. Experiments that
// reproduce the paper's Table II numbers want the paper's plans —
// which carried the duplicates — and should compile with
// QueriesOpt(opt.Options{SkipCSE: true}).
func Queries() []*QueryDef { return QueriesOpt(opt.Options{}) }

// QueriesOpt compiles the 22 templates with an explicit optimizer
// configuration.
func QueriesOpt(opts opt.Options) []*QueryDef {
	defs := []*QueryDef{
		q1(), q2(), q3(), q4(), q5(), q6(), q7(), q8(), q9(), q10(), q11(),
		q12(), q13(), q14(), q15(), q16(), q17(), q18(), q19(), q20(), q21(), q22(),
	}
	for _, d := range defs {
		opt.Optimize(d.Templ, opts)
	}
	return defs
}

// QueryMap returns the queries keyed by number.
func QueryMap() map[int]*QueryDef { return QueryMapOpt(opt.Options{}) }

// QueryMapOpt returns the queries keyed by number, compiled with an
// explicit optimizer configuration.
func QueryMapOpt(opts opt.Options) map[int]*QueryDef {
	m := make(map[int]*QueryDef, 22)
	for _, d := range QueriesOpt(opts) {
		m[d.Num] = d
	}
	return m
}

// --- builder helpers -------------------------------------------------

type qb struct{ b *mal.Builder }

func newQ(name string) qb { return qb{b: mal.NewBuilder(name)} }

func cs(s string) mal.Arg      { return mal.C(mal.StrV(s)) }
func ci(i int64) mal.Arg       { return mal.C(mal.IntV(i)) }
func cf(f float64) mal.Arg     { return mal.C(mal.FloatV(f)) }
func cb(v bool) mal.Arg        { return mal.C(mal.BoolV(v)) }
func cd(d bat.Date) mal.Arg    { return mal.C(mal.DateV(d)) }
func co(o bat.Oid) mal.Arg     { return mal.C(mal.OidV(o)) }
func openB() mal.Arg           { return mal.C(mal.VoidV()) }
func date(y, m, d int) mal.Arg { return cd(algebra.MkDate(y, m, d)) }

func (q qb) bind(table, col string) mal.Arg {
	return q.b.Op1("sql", "bind", cs(Schema), cs(table), cs(col), ci(0))
}
func (q qb) bindIdx(table, idx string) mal.Arg {
	return q.b.Op1("sql", "bindIdxbat", cs(Schema), cs(table), cs(idx))
}
func (q qb) sel(b, lo, hi mal.Arg, incLo, incHi bool) mal.Arg {
	return q.b.Op1("algebra", "select", b, lo, hi, cb(incLo), cb(incHi))
}
func (q qb) uselect(b, v mal.Arg) mal.Arg  { return q.b.Op1("algebra", "uselect", b, v) }
func (q qb) like(b, pat mal.Arg) mal.Arg   { return q.b.Op1("algebra", "likeselect", b, pat) }
func (q qb) notlike(b, p mal.Arg) mal.Arg  { return q.b.Op1("algebra", "notlikeselect", b, p) }
func (q qb) join(l, r mal.Arg) mal.Arg     { return q.b.Op1("algebra", "join", l, r) }
func (q qb) semi(l, r mal.Arg) mal.Arg     { return q.b.Op1("algebra", "semijoin", l, r) }
func (q qb) anti(l, r mal.Arg) mal.Arg     { return q.b.Op1("algebra", "antisemijoin", l, r) }
func (q qb) union(l, r mal.Arg) mal.Arg    { return q.b.Op1("algebra", "union", l, r) }
func (q qb) reverse(b mal.Arg) mal.Arg     { return q.b.Op1("bat", "reverse", b) }
func (q qb) mirror(b mal.Arg) mal.Arg      { return q.b.Op1("bat", "mirror", b) }
func (q qb) markT(b mal.Arg) mal.Arg       { return q.b.Op1("algebra", "markT", b, co(0)) }
func (q qb) kunique(b mal.Arg) mal.Arg     { return q.b.Op1("algebra", "kunique", b) }
func (q qb) groupNew(b mal.Arg) mal.Arg    { return q.b.Op1("group", "new", b) }
func (q qb) groupDer(g, b mal.Arg) mal.Arg { return q.b.Op1("group", "derive", g, b) }
func (q qb) groupHeads(g, b mal.Arg) mal.Arg {
	return q.b.Op1("group", "heads", g, b)
}
func (q qb) aggrSum(v, g mal.Arg) mal.Arg { return q.b.Op1("aggr", "sum", v, g) }
func (q qb) aggrAvg(v, g mal.Arg) mal.Arg { return q.b.Op1("aggr", "avg", v, g) }
func (q qb) aggrCountG(g mal.Arg) mal.Arg { return q.b.Op1("aggr", "countGrp", g) }
func (q qb) count(b mal.Arg) mal.Arg      { return q.b.Op1("aggr", "count", b) }
func (q qb) sumFlt(b mal.Arg) mal.Arg     { return q.b.Op1("aggr", "sumFlt", b) }
func (q qb) avgFlt(b mal.Arg) mal.Arg     { return q.b.Op1("aggr", "avgFlt", b) }
func (q qb) mul(a, b mal.Arg) mal.Arg     { return q.b.Op1("batcalc", "mul", a, b) }
func (q qb) oneMinus(b mal.Arg) mal.Arg   { return q.b.Op1("batcalc", "csub", cf(1), b) }
func (q qb) int2dbl(b mal.Arg) mal.Arg    { return q.b.Op1("batcalc", "int2dbl", b) }
func (q qb) lt(a, b mal.Arg) mal.Arg      { return q.b.Op1("batcalc", "lt", a, b) }
func (q qb) sort(b mal.Arg, asc bool) mal.Arg {
	return q.b.Op1("algebra", "sort", b, cb(asc))
}
func (q qb) topn(b mal.Arg, n int64) mal.Arg { return q.b.Op1("algebra", "topn", b, ci(n)) }
func (q qb) addMonths(d, n mal.Arg) mal.Arg  { return q.b.Op1("mtime", "addmonths", d, n) }
func (q qb) exportVal(name string, v mal.Arg) {
	q.b.Do("sql", "exportValue", cs(name), v)
}
func (q qb) exportCol(name string, v mal.Arg) {
	q.b.Do("sql", "exportCol", cs(name), v)
}

// revenue computes extendedprice*(1-discount) for the qualifying rows
// Q (a BAT whose head holds lineitem oids).
func (q qb) revenue(rows mal.Arg) mal.Arg {
	price := q.semi(q.bind("lineitem", "l_extendedprice"), rows)
	disc := q.semi(q.bind("lineitem", "l_discount"), rows)
	return q.mul(price, q.oneMinus(disc))
}

func rdate(rng *rand.Rand, yLo, yHi int) mal.Value {
	y := yLo + rng.Intn(yHi-yLo+1)
	m := rng.Intn(12) + 1
	return mal.DateV(algebra.MkDate(y, m, 1))
}

// --- the 22 queries ----------------------------------------------------

// Q1: pricing summary report. Param: shipdate upper bound
// (1998-12-01 - delta days).
func q1() *QueryDef {
	q := newQ("q01")
	a0 := q.b.Param("A0", mal.VDate)
	ship := q.bind("lineitem", "l_shipdate")
	rows := q.sel(ship, openB(), a0, true, true)
	rf := q.semi(q.bind("lineitem", "l_returnflag"), rows)
	ls := q.semi(q.bind("lineitem", "l_linestatus"), rows)
	g1 := q.groupNew(rf)
	g2 := q.groupDer(g1, ls)
	qty := q.int2dbl(q.semi(q.bind("lineitem", "l_quantity"), rows))
	price := q.semi(q.bind("lineitem", "l_extendedprice"), rows)
	disc := q.semi(q.bind("lineitem", "l_discount"), rows)
	rev := q.mul(price, q.oneMinus(disc))
	q.exportCol("sum_qty", q.aggrSum(qty, g2))
	q.exportCol("sum_base_price", q.aggrSum(price, g2))
	q.exportCol("sum_disc_price", q.aggrSum(rev, g2))
	q.exportCol("avg_qty", q.aggrAvg(qty, g2))
	q.exportCol("count_order", q.aggrCountG(g2))
	return &QueryDef{Num: 1, Name: "q01", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		delta := 60 + rng.Intn(61)
		return []mal.Value{mal.DateV(algebra.MkDate(1998, 12, 1) - bat.Date(delta))}
	}}
}

// Q2: minimum cost supplier. Params: size, type suffix, region.
func q2() *QueryDef {
	q := newQ("q02")
	a0 := q.b.Param("A0", mal.VInt)
	a1 := q.b.Param("A1", mal.VStr)
	a2 := q.b.Param("A2", mal.VStr)
	psize := q.uselect(q.bind("part", "p_size"), a0)
	ptype := q.semi(q.bind("part", "p_type"), psize)
	psel := q.like(ptype, a1)
	psIdxP := q.bindIdx("partsupp", "ps_fk_part")
	psRows := q.join(psIdxP, psel)
	cost := q.semi(q.bind("partsupp", "ps_supplycost"), psRows)
	rsel := q.uselect(q.bind("region", "r_name"), a2)
	nInR := q.join(q.bindIdx("nation", "n_fk_region"), rsel)
	sInR := q.join(q.bindIdx("supplier", "s_fk_nation"), nInR)
	psSupp := q.join(q.bindIdx("partsupp", "ps_fk_supp"), sInR)
	qual := q.semi(cost, psSupp)
	top := q.topn(q.sort(qual, true), 1)
	q.exportCol("min_cost", top)
	return &QueryDef{Num: 2, Name: "q02", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{
			mal.IntV(int64(rng.Intn(50) + 1)),
			mal.StrV("%" + typeSyl3[rng.Intn(len(typeSyl3))]),
			mal.StrV(regionNames[rng.Intn(len(regionNames))]),
		}
	}}
}

// Q3: shipping priority. Params: segment, date.
func q3() *QueryDef {
	q := newQ("q03")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VDate)
	cseg := q.uselect(q.bind("customer", "c_mktsegment"), a0)
	oCust := q.join(q.bindIdx("orders", "o_fk_cust"), cseg)
	odate := q.semi(q.bind("orders", "o_orderdate"), oCust)
	osel := q.sel(odate, openB(), a1, true, false)
	liOrd := q.join(q.bindIdx("lineitem", "li_fk_orders"), osel)
	lship := q.semi(q.bind("lineitem", "l_shipdate"), liOrd)
	rows := q.sel(lship, a1, openB(), false, true)
	rev := q.revenue(rows)
	q.exportVal("revenue", q.sumFlt(rev))
	return &QueryDef{Num: 3, Name: "q03", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{
			mal.StrV(segments[rng.Intn(len(segments))]),
			mal.DateV(algebra.MkDate(1995, 3, 1) + bat.Date(rng.Intn(31))),
		}
	}}
}

// Q4: order priority checking. Param: quarter start. The
// commit<receipt scan is parameter independent, giving Q4 its large
// inter-query overlap (41.7% in Table II).
func q4() *QueryDef {
	q := newQ("q04")
	a0 := q.b.Param("A0", mal.VDate)
	late := q.uselect(q.lt(q.bind("lineitem", "l_commitdate"), q.bind("lineitem", "l_receiptdate")), cb(true))
	lo := q.semi(q.bindIdx("lineitem", "li_fk_orders"), late)
	lateOrds := q.kunique(q.reverse(lo))
	hi := q.addMonths(a0, ci(3))
	osel := q.sel(q.bind("orders", "o_orderdate"), a0, hi, true, false)
	qual := q.semi(osel, lateOrds)
	prio := q.semi(q.bind("orders", "o_orderpriority"), qual)
	g := q.groupNew(prio)
	q.exportCol("order_count", q.aggrCountG(g))
	return &QueryDef{Num: 4, Name: "q04", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{rdate(rng, 1993, 1997)}
	}}
}

// Q5: local supplier volume. Params: region, year start.
func q5() *QueryDef {
	q := newQ("q05")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VDate)
	rsel := q.uselect(q.bind("region", "r_name"), a0)
	nInR := q.join(q.bindIdx("nation", "n_fk_region"), rsel)
	custInR := q.join(q.bindIdx("customer", "c_fk_nation"), nInR)
	ordOfCust := q.join(q.bindIdx("orders", "o_fk_cust"), custInR)
	odate := q.semi(q.bind("orders", "o_orderdate"), ordOfCust)
	hi := q.addMonths(a1, ci(12))
	osel := q.sel(odate, a1, hi, true, false)
	li := q.join(q.bindIdx("lineitem", "li_fk_orders"), osel)
	suppInR := q.join(q.bindIdx("supplier", "s_fk_nation"), nInR)
	liSupp := q.semi(q.bindIdx("lineitem", "li_fk_supp"), li)
	rows := q.join(liSupp, suppInR)
	rev := q.revenue(rows)
	q.exportVal("revenue", q.sumFlt(rev))
	return &QueryDef{Num: 5, Name: "q05", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{
			mal.StrV(regionNames[rng.Intn(len(regionNames))]),
			mal.DateV(algebra.MkDate(1993+rng.Intn(5), 1, 1)),
		}
	}}
}

// Q6: forecasting revenue change. Params: year start, discount
// bounds, quantity cap. Fully parameter dependent: no reuse (Table II
// shows 0/0).
func q6() *QueryDef {
	q := newQ("q06")
	a0 := q.b.Param("A0", mal.VDate)
	a1 := q.b.Param("A1", mal.VFloat)
	a2 := q.b.Param("A2", mal.VFloat)
	a3 := q.b.Param("A3", mal.VInt)
	hi := q.addMonths(a0, ci(12))
	s1 := q.sel(q.bind("lineitem", "l_shipdate"), a0, hi, true, false)
	disc := q.semi(q.bind("lineitem", "l_discount"), s1)
	s2 := q.sel(disc, a1, a2, true, true)
	qty := q.semi(q.bind("lineitem", "l_quantity"), s2)
	s3 := q.sel(qty, openB(), a3, true, false)
	price := q.semi(q.bind("lineitem", "l_extendedprice"), s3)
	discQ := q.semi(s2, s3)
	rev := q.mul(price, discQ)
	q.exportVal("revenue", q.sumFlt(rev))
	return &QueryDef{Num: 6, Name: "q06", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		d := float64(2+rng.Intn(8)) / 100
		return []mal.Value{
			mal.DateV(algebra.MkDate(1993+rng.Intn(5), 1, 1)),
			mal.FloatV(d - 0.01), mal.FloatV(d + 0.01),
			mal.IntV(int64(24 + rng.Intn(2))),
		}
	}}
}

// Q7: volume shipping between two nations. Params: the two nations.
// The 1995-1996 shipdate window is constant, and the two symmetric
// directions share structure (intra + inter overlap).
func q7() *QueryDef {
	q := newQ("q07")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VStr)
	nname := q.bind("nation", "n_name")
	direction := func(suppNation, custNation mal.Arg) mal.Arg {
		ns := q.uselect(nname, suppNation)
		nc := q.uselect(nname, custNation)
		suppN := q.join(q.bindIdx("supplier", "s_fk_nation"), ns)
		custN := q.join(q.bindIdx("customer", "c_fk_nation"), nc)
		shipsel := q.sel(q.bind("lineitem", "l_shipdate"), date(1995, 1, 1), date(1996, 12, 31), true, true)
		lis := q.semi(q.bindIdx("lineitem", "li_fk_supp"), shipsel)
		lisN := q.join(lis, suppN)
		ordC := q.join(q.bindIdx("orders", "o_fk_cust"), custN)
		liOrd := q.semi(q.bindIdx("lineitem", "li_fk_orders"), lisN)
		rows := q.join(liOrd, ordC)
		return q.sumFlt(q.revenue(rows))
	}
	v1 := direction(a0, a1)
	v2 := direction(a1, a0)
	q.exportVal("volume1", v1)
	q.exportVal("volume2", v2)
	return &QueryDef{Num: 7, Name: "q07", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		i := rng.Intn(len(nationDefs))
		j := (i + 1 + rng.Intn(len(nationDefs)-1)) % len(nationDefs)
		return []mal.Value{mal.StrV(nationDefs[i].name), mal.StrV(nationDefs[j].name)}
	}}
}

// Q8: national market share. Params: nation, type. The order-date
// window 1995..1996 is constant.
func q8() *QueryDef {
	q := newQ("q08")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VStr)
	psel := q.uselect(q.bind("part", "p_type"), a1)
	liPart := q.join(q.bindIdx("lineitem", "li_fk_part"), psel)
	osel := q.sel(q.bind("orders", "o_orderdate"), date(1995, 1, 1), date(1996, 12, 31), true, true)
	liOrd := q.semi(q.bindIdx("lineitem", "li_fk_orders"), liPart)
	rows := q.join(liOrd, osel)
	revAll := q.sumFlt(q.revenue(rows))
	nsel := q.uselect(q.bind("nation", "n_name"), a0)
	suppN := q.join(q.bindIdx("supplier", "s_fk_nation"), nsel)
	liSupp := q.semi(q.bindIdx("lineitem", "li_fk_supp"), rows)
	rowsN := q.join(liSupp, suppN)
	revN := q.sumFlt(q.revenue(rowsN))
	q.exportVal("total_volume", revAll)
	q.exportVal("nation_volume", revN)
	return &QueryDef{Num: 8, Name: "q08", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		n := nationDefs[rng.Intn(len(nationDefs))]
		ptype := typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + " " + typeSyl3[rng.Intn(len(typeSyl3))]
		return []mal.Value{mal.StrV(n.name), mal.StrV(ptype)}
	}}
}

// Q9: product type profit. Param: part-name fragment.
func q9() *QueryDef {
	q := newQ("q09")
	a0 := q.b.Param("A0", mal.VStr)
	psel := q.like(q.bind("part", "p_name"), a0)
	rows := q.join(q.bindIdx("lineitem", "li_fk_part"), psel)
	rev := q.revenue(rows)
	liNat := q.join(q.semi(q.bindIdx("lineitem", "li_fk_supp"), rows), q.bindIdx("supplier", "s_fk_nation"))
	liNatName := q.join(liNat, q.bind("nation", "n_name"))
	g := q.groupNew(liNatName)
	q.exportCol("profit_by_nation", q.aggrSum(rev, g))
	return &QueryDef{Num: 9, Name: "q09", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{mal.StrV("%" + nameParts[rng.Intn(len(nameParts))] + "%")}
	}}
}

// Q10: returned item reporting. Param: quarter start. The
// returnflag='R' selection is constant and expensive.
func q10() *QueryDef {
	q := newQ("q10")
	a0 := q.b.Param("A0", mal.VDate)
	rf := q.uselect(q.bind("lineitem", "l_returnflag"), cs("R"))
	hi := q.addMonths(a0, ci(3))
	osel := q.sel(q.bind("orders", "o_orderdate"), a0, hi, true, false)
	liOrd := q.semi(q.bindIdx("lineitem", "li_fk_orders"), rf)
	rows := q.join(liOrd, osel)
	rev := q.revenue(rows)
	liCust := q.join(q.semi(q.bindIdx("lineitem", "li_fk_orders"), rows), q.bindIdx("orders", "o_fk_cust"))
	g := q.groupNew(liCust)
	q.exportCol("revenue_by_cust", q.aggrSum(rev, g))
	return &QueryDef{Num: 10, Name: "q10", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		y := 1993 + rng.Intn(3)
		m := []int{1, 4, 7, 10}[rng.Intn(4)]
		return []mal.Value{mal.DateV(algebra.MkDate(y, m, 1))}
	}}
}

// Q11: important stock identification. Param: nation. The value chain
// is emitted twice (sub-query and outer block), yielding Q11's large
// intra-query overlap (33.3% in Table II).
func q11() *QueryDef {
	q := newQ("q11")
	a0 := q.b.Param("A0", mal.VStr)
	valueChain := func() (mal.Arg, mal.Arg) {
		nsel := q.uselect(q.bind("nation", "n_name"), a0)
		suppN := q.join(q.bindIdx("supplier", "s_fk_nation"), nsel)
		psRows := q.join(q.bindIdx("partsupp", "ps_fk_supp"), suppN)
		cost := q.semi(q.bind("partsupp", "ps_supplycost"), psRows)
		qty := q.int2dbl(q.semi(q.bind("partsupp", "ps_availqty"), psRows))
		return q.mul(cost, qty), psRows
	}
	// Sub-query: total value.
	valInner, _ := valueChain()
	total := q.sumFlt(valInner)
	thr := q.b.Op1("calc", "mulFlt", total, cf(0.0001))
	// Outer block: per-part value (same chain re-emitted).
	valOuter, psRows := valueChain()
	pk := q.semi(q.bind("partsupp", "ps_partkey"), psRows)
	g := q.groupNew(pk)
	sums := q.aggrSum(valOuter, g)
	bigs := q.sel(sums, thr, openB(), false, true)
	q.exportVal("num_big_parts", q.count(bigs))
	return &QueryDef{Num: 11, Name: "q11", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{mal.StrV(nationDefs[rng.Intn(len(nationDefs))].name)}
	}}
}

// Q12: shipping modes and order priority. Params: two shipmodes,
// year. The commit/receipt/ship comparisons are constant scans shared
// with Q4/Q21 instances.
func q12() *QueryDef {
	q := newQ("q12")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VStr)
	a2 := q.b.Param("A2", mal.VDate)
	sm := q.bind("lineitem", "l_shipmode")
	mm := q.union(q.uselect(sm, a0), q.uselect(sm, a1))
	late := q.uselect(q.lt(q.bind("lineitem", "l_commitdate"), q.bind("lineitem", "l_receiptdate")), cb(true))
	early := q.uselect(q.lt(q.bind("lineitem", "l_shipdate"), q.bind("lineitem", "l_commitdate")), cb(true))
	x1 := q.semi(mm, late)
	x2 := q.semi(x1, early)
	rdte := q.semi(q.bind("lineitem", "l_receiptdate"), x2)
	hi := q.addMonths(a2, ci(12))
	rows := q.sel(rdte, a2, hi, true, false)
	liOrd := q.semi(q.bindIdx("lineitem", "li_fk_orders"), rows)
	prio := q.join(liOrd, q.bind("orders", "o_orderpriority"))
	g := q.groupNew(prio)
	q.exportCol("line_count", q.aggrCountG(g))
	return &QueryDef{Num: 12, Name: "q12", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		i := rng.Intn(len(shipmodes))
		j := (i + 1 + rng.Intn(len(shipmodes)-1)) % len(shipmodes)
		return []mal.Value{mal.StrV(shipmodes[i]), mal.StrV(shipmodes[j]),
			mal.DateV(algebra.MkDate(1993+rng.Intn(5), 1, 1))}
	}}
}

// Q13: customer distribution. Param: comment pattern from a small
// domain, so instances repeat (Table II inter 11.8%).
func q13() *QueryDef {
	q := newQ("q13")
	a0 := q.b.Param("A0", mal.VStr)
	notl := q.notlike(q.bind("orders", "o_comment"), a0)
	ocust := q.semi(q.bind("orders", "o_custkey"), notl)
	g := q.groupNew(ocust)
	cnt := q.aggrCountG(g)
	g2 := q.groupNew(cnt)
	q.exportCol("custdist", q.aggrCountG(g2))
	return &QueryDef{Num: 13, Name: "q13", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		w1 := []string{"special", "pending", "unusual", "express"}[rng.Intn(4)]
		w2 := []string{"packages", "requests", "accounts", "deposits"}[rng.Intn(4)]
		return []mal.Value{mal.StrV("%" + w1 + "%" + w2 + "%")}
	}}
}

// Q14: promotion effect. Param: month. Nearly fully parameter
// dependent; the recycler only stores overhead (Fig. 5b).
func q14() *QueryDef {
	q := newQ("q14")
	a0 := q.b.Param("A0", mal.VDate)
	hi := q.addMonths(a0, ci(1))
	rows := q.sel(q.bind("lineitem", "l_shipdate"), a0, hi, true, false)
	liPart := q.semi(q.bindIdx("lineitem", "li_fk_part"), rows)
	ptypes := q.join(liPart, q.bind("part", "p_type"))
	promo := q.like(ptypes, cs("PROMO%"))
	rev := q.revenue(rows)
	revPromo := q.semi(rev, promo)
	q.exportVal("promo_revenue", q.sumFlt(revPromo))
	q.exportVal("total_revenue", q.sumFlt(rev))
	return &QueryDef{Num: 14, Name: "q14", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{mal.DateV(algebra.MkDate(1993+rng.Intn(5), rng.Intn(12)+1, 1))}
	}}
}

// Q15: top supplier. Param: quarter start.
func q15() *QueryDef {
	q := newQ("q15")
	a0 := q.b.Param("A0", mal.VDate)
	hi := q.addMonths(a0, ci(3))
	rows := q.sel(q.bind("lineitem", "l_shipdate"), a0, hi, true, false)
	rev := q.revenue(rows)
	sk := q.semi(q.bind("lineitem", "l_suppkey"), rows)
	g := q.groupNew(sk)
	sums := q.aggrSum(rev, g)
	q.exportCol("top_supplier", q.topn(q.sort(sums, false), 1))
	return &QueryDef{Num: 15, Name: "q15", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		y := 1993 + rng.Intn(5)
		m := []int{1, 4, 7, 10}[rng.Intn(4)]
		return []mal.Value{mal.DateV(algebra.MkDate(y, m, 1))}
	}}
}

// Q16: parts/supplier relationship. Params: brand, type prefix, two
// sizes. The complaint-supplier scan is constant (inter 42.9%).
func q16() *QueryDef {
	q := newQ("q16")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VStr)
	a2 := q.b.Param("A2", mal.VInt)
	a3 := q.b.Param("A3", mal.VInt)
	compl := q.like(q.bind("supplier", "s_comment"), cs("%Customer%Complaints%"))
	pb := q.notlike(q.bind("part", "p_brand"), a0)
	pt := q.notlike(q.semi(q.bind("part", "p_type"), pb), a1)
	sz := q.semi(q.bind("part", "p_size"), pt)
	ss := q.union(q.uselect(sz, a2), q.uselect(sz, a3))
	psPart := q.join(q.bindIdx("partsupp", "ps_fk_part"), ss)
	psSuppOid := q.semi(q.bindIdx("partsupp", "ps_fk_supp"), psPart)
	good := q.reverse(q.anti(q.reverse(psSuppOid), compl))
	distinct := q.kunique(q.reverse(q.semi(q.bind("partsupp", "ps_suppkey"), good)))
	q.exportVal("supplier_cnt", q.count(distinct))
	return &QueryDef{Num: 16, Name: "q16", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{
			mal.StrV(fmt.Sprintf("Brand#%d%d", rng.Intn(brandNums)+1, rng.Intn(brandNums)+1)),
			mal.StrV(typeSyl1[rng.Intn(len(typeSyl1))] + " " + typeSyl2[rng.Intn(len(typeSyl2))] + "%"),
			mal.IntV(int64(rng.Intn(50) + 1)), mal.IntV(int64(rng.Intn(50) + 1)),
		}
	}}
}

// Q17: small-quantity-order revenue. Params: brand, container.
func q17() *QueryDef {
	q := newQ("q17")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VStr)
	bsel := q.uselect(q.bind("part", "p_brand"), a0)
	csel := q.uselect(q.semi(q.bind("part", "p_container"), bsel), a1)
	liP := q.join(q.bindIdx("lineitem", "li_fk_part"), csel)
	qtyf := q.int2dbl(q.semi(q.bind("lineitem", "l_quantity"), liP))
	avg := q.avgFlt(qtyf)
	thr := q.b.Op1("calc", "mulFlt", avg, cf(0.2))
	small := q.sel(qtyf, openB(), thr, true, false)
	price := q.semi(q.bind("lineitem", "l_extendedprice"), small)
	q.exportVal("avg_yearly", q.sumFlt(price))
	return &QueryDef{Num: 17, Name: "q17", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{
			mal.StrV(fmt.Sprintf("Brand#%d%d", rng.Intn(brandNums)+1, rng.Intn(brandNums)+1)),
			mal.StrV(containers[rng.Intn(len(containers))]),
		}
	}}
}

// Q18: large volume customer. Param: quantity level. Grouping and
// aggregation over lineitem are parameter independent — the paper's
// flagship inter-query case (75%, Fig. 4b).
func q18() *QueryDef {
	q := newQ("q18")
	a0 := q.b.Param("A0", mal.VInt)
	lok := q.bind("lineitem", "l_orderkey")
	g := q.groupNew(lok)
	qty := q.bind("lineitem", "l_quantity")
	sums := q.aggrSum(qty, g)
	// Parameter-independent order/customer machinery: orderkey, order
	// row and customer per group — all reusable across instances.
	gh := q.groupHeads(g, lok)
	keyval := q.join(gh, lok)
	orev := q.reverse(q.bind("orders", "o_orderkey"))
	gOrd := q.join(keyval, orev)
	gCust := q.join(gOrd, q.bind("orders", "o_custkey"))
	// Parameter-dependent tail: filter the groups by quantity level.
	bigs := q.sel(sums, a0, openB(), false, true)
	bigKeys := q.semi(keyval, bigs)
	bigCust := q.semi(gCust, bigs)
	q.exportVal("num_big_orders", q.count(bigKeys))
	q.exportCol("orderkeys", bigKeys)
	q.exportCol("custkeys", bigCust)
	return &QueryDef{Num: 18, Name: "q18", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{mal.IntV(int64(150 + rng.Intn(51)))}
	}}
}

// Q19: discounted revenue, three OR branches over brand/quantity with
// shared constant shipmode/shipinstruct filters — intra- and
// inter-query overlap (Fig. 5a).
func q19() *QueryDef {
	q := newQ("q19")
	brands := []mal.Arg{q.b.Param("A0", mal.VStr), q.b.Param("A1", mal.VStr), q.b.Param("A2", mal.VStr)}
	qtys := []mal.Arg{q.b.Param("A3", mal.VInt), q.b.Param("A4", mal.VInt), q.b.Param("A5", mal.VInt)}
	var sums []mal.Arg
	for i := 0; i < 3; i++ {
		// Each OR branch re-emits the constant filters, which the
		// recycler reuses locally after the first branch.
		inst := q.uselect(q.bind("lineitem", "l_shipinstruct"), cs("DELIVER IN PERSON"))
		sm := q.bind("lineitem", "l_shipmode")
		modes := q.union(q.uselect(sm, cs("AIR")), q.uselect(sm, cs("REG AIR")))
		base := q.semi(modes, inst)
		bsel := q.uselect(q.bind("part", "p_brand"), brands[i])
		liP := q.join(q.bindIdx("lineitem", "li_fk_part"), bsel)
		liBase := q.semi(liP, base)
		qtyCol := q.semi(q.bind("lineitem", "l_quantity"), liBase)
		hi := q.b.Op1("calc", "addInt", qtys[i], ci(10))
		rows := q.sel(qtyCol, qtys[i], hi, true, true)
		sums = append(sums, q.sumFlt(q.revenue(rows)))
	}
	s12 := q.b.Op1("calc", "addFlt", sums[0], sums[1])
	q.exportVal("revenue", q.b.Op1("calc", "addFlt", s12, sums[2]))
	return &QueryDef{Num: 19, Name: "q19", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{
			mal.StrV(fmt.Sprintf("Brand#%d%d", rng.Intn(brandNums)+1, rng.Intn(brandNums)+1)),
			mal.StrV(fmt.Sprintf("Brand#%d%d", rng.Intn(brandNums)+1, rng.Intn(brandNums)+1)),
			mal.StrV(fmt.Sprintf("Brand#%d%d", rng.Intn(brandNums)+1, rng.Intn(brandNums)+1)),
			mal.IntV(int64(1 + rng.Intn(10))), mal.IntV(int64(10 + rng.Intn(10))), mal.IntV(int64(20 + rng.Intn(10))),
		}
	}}
}

// Q20: potential part promotion. Params: name prefix, year.
func q20() *QueryDef {
	q := newQ("q20")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VDate)
	psel := q.like(q.bind("part", "p_name"), a0)
	psP := q.join(q.bindIdx("partsupp", "ps_fk_part"), psel)
	hi := q.addMonths(a1, ci(12))
	shipped := q.sel(q.bind("lineitem", "l_shipdate"), a1, hi, true, false)
	_ = shipped // the shipped-quantity correlation is approximated by the availqty filter below
	avail := q.semi(q.bind("partsupp", "ps_availqty"), psP)
	asel := q.sel(avail, ci(5000), openB(), false, true)
	sk := q.semi(q.bind("partsupp", "ps_suppkey"), asel)
	distinct := q.kunique(q.reverse(sk))
	q.exportVal("num_suppliers", q.count(distinct))
	return &QueryDef{Num: 20, Name: "q20", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{
			mal.StrV(nameParts[rng.Intn(len(nameParts))] + "%"),
			mal.DateV(algebra.MkDate(1993+rng.Intn(5), 1, 1)),
		}
	}}
}

// Q21: suppliers who kept orders waiting. Param: nation. The late-
// lineitem scan appears in the main block and in the (anti-join)
// subquery, so it is emitted twice: intra + inter overlap.
func q21() *QueryDef {
	q := newQ("q21")
	a0 := q.b.Param("A0", mal.VStr)
	lateChain := func() mal.Arg {
		return q.uselect(q.lt(q.bind("lineitem", "l_commitdate"), q.bind("lineitem", "l_receiptdate")), cb(true))
	}
	late := lateChain()
	nsel := q.uselect(q.bind("nation", "n_name"), a0)
	suppN := q.join(q.bindIdx("supplier", "s_fk_nation"), nsel)
	ordF := q.uselect(q.bind("orders", "o_orderstatus"), cs("F"))
	liSupp := q.semi(q.bindIdx("lineitem", "li_fk_supp"), late)
	liSuppN := q.join(liSupp, suppN)
	liOrd := q.semi(q.bindIdx("lineitem", "li_fk_orders"), liSuppN)
	rows := q.join(liOrd, ordF)
	// Anti-join subquery: re-emits the late chain (reused locally).
	late2 := lateChain()
	rows2 := q.semi(rows, late2)
	snm := q.join(q.semi(q.bindIdx("lineitem", "li_fk_supp"), rows2), q.bind("supplier", "s_name"))
	g := q.groupNew(snm)
	cnt := q.aggrCountG(g)
	q.exportCol("numwait", q.topn(q.sort(cnt, false), 100))
	return &QueryDef{Num: 21, Name: "q21", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		return []mal.Value{mal.StrV(nationDefs[rng.Intn(len(nationDefs))].name)}
	}}
}

// Q22: global sales opportunity. Params: two phone country codes from
// a small domain. The positive-balance average and the customers-with-
// orders scan are constant (inter 75%).
func q22() *QueryDef {
	q := newQ("q22")
	a0 := q.b.Param("A0", mal.VStr)
	a1 := q.b.Param("A1", mal.VStr)
	phone := q.bind("customer", "c_phone")
	pp := q.union(q.like(phone, a0), q.like(phone, a1))
	acct := q.semi(q.bind("customer", "c_acctbal"), pp)
	pos := q.sel(q.bind("customer", "c_acctbal"), cf(0), openB(), false, true)
	avg := q.avgFlt(pos)
	rich := q.sel(acct, avg, openB(), false, true)
	withOrders := q.kunique(q.reverse(q.bindIdx("orders", "o_fk_cust")))
	noOrders := q.anti(rich, withOrders)
	q.exportVal("numcust", q.count(noOrders))
	q.exportVal("totacctbal", q.sumFlt(noOrders))
	return &QueryDef{Num: 22, Name: "q22", Templ: q.b.Freeze(), Params: func(rng *rand.Rand) []mal.Value {
		i := rng.Intn(7)
		j := (i + 1 + rng.Intn(6)) % 7
		return []mal.Value{
			mal.StrV(fmt.Sprintf("%02d-%%", i+10)),
			mal.StrV(fmt.Sprintf("%02d-%%", j+10)),
		}
	}}
}
