package tpch

import (
	"repro/internal/bat"
	"repro/internal/catalog"
)

// Refresh functions following the TPC-H specification's RF1/RF2 shape
// at the scale the paper uses for its update experiments (§7.4): each
// update block inserts a handful of new customer orders (7-8 rows into
// orders, 25-56 rows into lineitem) and deletes a set of old orders
// from both tables.

// RF1 inserts n new orders with their lineitems and returns the new
// order keys.
func (db *DB) RF1(n int) []int64 {
	orders := db.Table("orders")
	li := db.Table("lineitem")
	var oRows, lRows []catalog.Row
	keys := make([]int64, 0, n)
	for i := 0; i < n; i++ {
		key := db.nextOrderKey
		db.nextOrderKey++
		keys = append(keys, key)
		row := db.orderRow(key)
		oRows = append(oRows, row)
		nl := db.rng.Intn(7) + 1
		for l := 0; l < nl; l++ {
			lRows = append(lRows, db.lineitemRow(key, l, row["o_orderdate"].(bat.Date)))
		}
	}
	orders.Append(oRows)
	li.Append(lRows)
	db.liveOrderKeys = append(db.liveOrderKeys, keys...)
	db.Lineitems += len(lRows)
	return keys
}

// RF2 deletes n of the oldest live orders (and their lineitems) and
// returns the deleted keys.
func (db *DB) RF2(n int) []int64 {
	if n > len(db.liveOrderKeys) {
		n = len(db.liveOrderKeys)
	}
	if n == 0 {
		return nil
	}
	keys := db.liveOrderKeys[:n]
	db.liveOrderKeys = db.liveOrderKeys[n:]

	orders := db.Table("orders")
	li := db.Table("lineitem")

	var oOids []bat.Oid
	for _, k := range keys {
		if o, ok := orders.LookupKey("o_orderkey", k); ok {
			oOids = append(oOids, o)
		}
	}
	// Lineitems of the deleted orders: scan the FK column (tables at
	// this scale make a scan acceptable; a real system would use the
	// join index).
	keySet := make(map[int64]struct{}, len(keys))
	for _, k := range keys {
		keySet[k] = struct{}{}
	}
	lok := li.MustColumn("l_orderkey").Bind()
	var lOids []bat.Oid
	n2 := lok.Len()
	vals := lok.Tail.(*bat.Ints)
	for i := 0; i < n2; i++ {
		if _, hit := keySet[vals.V[i]]; hit {
			lOids = append(lOids, bat.OidAt(lok.Head, i))
		}
	}
	li.Delete(lOids)
	orders.Delete(oOids)
	db.Lineitems -= len(lOids)
	return keys
}

// UpdateBlock runs one paper-style update block: RF1 with 7-8 new
// orders followed by RF2 deleting the same number of old ones.
func (db *DB) UpdateBlock() {
	n := 7 + db.rng.Intn(2)
	db.RF1(n)
	db.RF2(n)
}
