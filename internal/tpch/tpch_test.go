package tpch

import (
	"math/rand"
	"testing"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/mal"
	"repro/internal/opt"
	"repro/internal/recycler"
)

var testDB = Generate(0.002, 7)

func run(t *testing.T, db *DB, hook mal.RecyclerHook, qid uint64, d *QueryDef, params []mal.Value) *mal.Ctx {
	t.Helper()
	ctx := &mal.Ctx{Cat: db.Cat, Hook: hook, QueryID: qid}
	if err := mal.Run(ctx, d.Templ, params...); err != nil {
		t.Fatalf("%s: %v", d.Name, err)
	}
	return ctx
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(0.002, 7)
	b := Generate(0.002, 7)
	if a.Lineitems != b.Lineitems || a.Orders != b.Orders {
		t.Fatalf("generation not deterministic: %d/%d vs %d/%d", a.Lineitems, a.Orders, b.Lineitems, b.Orders)
	}
	if a.Lineitems == 0 || a.Orders < a.Customers {
		t.Fatalf("bad sizes: %+v", a)
	}
}

func TestGenerateSchemaComplete(t *testing.T) {
	for _, name := range []string{"region", "nation", "supplier", "customer", "part", "partsupp", "orders", "lineitem"} {
		tb := testDB.Cat.Table(Schema, name)
		if tb == nil {
			t.Fatalf("missing table %s", name)
		}
		if tb.NumRows() == 0 {
			t.Fatalf("empty table %s", name)
		}
	}
}

// Reference implementation of Q6 for correctness checking.
func refQ6(db *DB, lo bat.Date, dLo, dHi float64, qtyMax int64) float64 {
	li := db.Table("lineitem")
	ship := li.MustColumn("l_shipdate").Bind().Tail.(*bat.Dates).V
	disc := li.MustColumn("l_discount").Bind().Tail.(*bat.Floats).V
	qty := li.MustColumn("l_quantity").Bind().Tail.(*bat.Ints).V
	price := li.MustColumn("l_extendedprice").Bind().Tail.(*bat.Floats).V
	hi := algebra.AddMonths(lo, 12)
	var sum float64
	for i := range ship {
		if ship[i] >= lo && ship[i] < hi && disc[i] >= dLo && disc[i] <= dHi && qty[i] < qtyMax {
			sum += price[i] * disc[i]
		}
	}
	return sum
}

func TestQ6AgainstReference(t *testing.T) {
	qm := QueryMap()
	d := qm[6]
	lo := algebra.MkDate(1994, 1, 1)
	params := []mal.Value{mal.DateV(lo), mal.FloatV(0.05), mal.FloatV(0.07), mal.IntV(24)}
	ctx := run(t, testDB, nil, 1, d, params)
	got := ctx.Results[0].Val.F
	want := refQ6(testDB, lo, 0.05, 0.07, 24)
	if diff := got - want; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("Q6 = %f, want %f", got, want)
	}
}

// Reference implementation of Q18's count of big orders.
func refQ18(db *DB, qty int64) int64 {
	li := db.Table("lineitem")
	lok := li.MustColumn("l_orderkey").Bind().Tail.(*bat.Ints).V
	lq := li.MustColumn("l_quantity").Bind().Tail.(*bat.Ints).V
	sums := map[int64]int64{}
	for i := range lok {
		sums[lok[i]] += lq[i]
	}
	var n int64
	for _, s := range sums {
		if s > qty {
			n++
		}
	}
	return n
}

func TestQ18AgainstReference(t *testing.T) {
	d := QueryMap()[18]
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.IntV(180)})
	got := ctx.Results[0].Val.I
	want := refQ18(testDB, 180)
	if got != want {
		t.Fatalf("Q18 = %d, want %d", got, want)
	}
}

// Reference implementation of Q1's per-group count total.
func TestQ1GroupTotalsAgainstReference(t *testing.T) {
	d := QueryMap()[1]
	hi := algebra.MkDate(1998, 9, 2)
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.DateV(hi)})
	var counts *bat.BAT
	for _, r := range ctx.Results {
		if r.Name == "count_order" {
			counts = r.Val.Bat
		}
	}
	if counts == nil {
		t.Fatal("count_order column missing")
	}
	var total int64
	for _, c := range counts.Tail.(*bat.Ints).V {
		total += c
	}
	// Reference: rows with shipdate <= hi.
	ship := testDB.Table("lineitem").MustColumn("l_shipdate").Bind().Tail.(*bat.Dates).V
	var want int64
	for _, s := range ship {
		if s <= hi {
			want++
		}
	}
	if total != want {
		t.Fatalf("Q1 total rows = %d, want %d", total, want)
	}
	// At most 6 (returnflag, linestatus) groups exist in TPC-H data.
	if counts.Len() > 6 {
		t.Fatalf("Q1 groups = %d, want <= 6", counts.Len())
	}
}

func TestQ4AgainstReference(t *testing.T) {
	d := QueryMap()[4]
	lo := algebra.MkDate(1994, 7, 1)
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.DateV(lo)})
	var got int64
	for _, r := range ctx.Results {
		if r.Name == "order_count" {
			for _, c := range r.Val.Bat.Tail.(*bat.Ints).V {
				got += c
			}
		}
	}
	// Reference.
	li := testDB.Table("lineitem")
	commit := li.MustColumn("l_commitdate").Bind().Tail.(*bat.Dates).V
	receipt := li.MustColumn("l_receiptdate").Bind().Tail.(*bat.Dates).V
	lok := li.MustColumn("l_orderkey").Bind().Tail.(*bat.Ints).V
	lateOrders := map[int64]bool{}
	for i := range commit {
		if commit[i] < receipt[i] {
			lateOrders[lok[i]] = true
		}
	}
	ord := testDB.Table("orders")
	okeys := ord.MustColumn("o_orderkey").Bind().Tail.(*bat.Ints).V
	odates := ord.MustColumn("o_orderdate").Bind().Tail.(*bat.Dates).V
	hi := algebra.AddMonths(lo, 3)
	var want int64
	for i := range okeys {
		if odates[i] >= lo && odates[i] < hi && lateOrders[okeys[i]] {
			want++
		}
	}
	if got != want {
		t.Fatalf("Q4 = %d, want %d", got, want)
	}
}

// The master invariant: for every query, recycling (with subsumption)
// never changes results across repeated instances.
func TestAllQueriesRecycledEqualsNaive(t *testing.T) {
	rec := recycler.New(testDB.Cat, recycler.Config{
		Admission:           recycler.KeepAll,
		Subsumption:         true,
		CombinedSubsumption: true,
	})
	rng := rand.New(rand.NewSource(99))
	qid := uint64(0)
	for _, d := range Queries() {
		for inst := 0; inst < 3; inst++ {
			params := d.Params(rng)
			qid++
			rec.BeginQuery(qid, d.Templ.ID)
			rctx := &mal.Ctx{Cat: testDB.Cat, Hook: rec, QueryID: qid}
			if err := mal.Run(rctx, d.Templ, params...); err != nil {
				t.Fatalf("%s (recycled): %v", d.Name, err)
			}
			rec.EndQuery(qid)
			nctx := &mal.Ctx{Cat: testDB.Cat}
			if err := mal.Run(nctx, d.Templ, params...); err != nil {
				t.Fatalf("%s (naive): %v", d.Name, err)
			}
			compareResults(t, d.Name, rctx.Results, nctx.Results)
		}
	}
}

func compareResults(t *testing.T, name string, a, b []mal.Result) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: result count %d != %d", name, len(a), len(b))
	}
	for i := range a {
		va, vb := a[i].Val, b[i].Val
		if va.Kind != vb.Kind {
			t.Fatalf("%s result %s: kind %v != %v", name, a[i].Name, va.Kind, vb.Kind)
		}
		if va.Kind == mal.VBat {
			if va.Bat.Len() != vb.Bat.Len() {
				t.Fatalf("%s result %s: len %d != %d", name, a[i].Name, va.Bat.Len(), vb.Bat.Len())
			}
			continue
		}
		if va.Kind == mal.VFloat {
			d := va.F - vb.F
			if d > 1e-6 || d < -1e-6 {
				t.Fatalf("%s result %s: %f != %f", name, a[i].Name, va.F, vb.F)
			}
			continue
		}
		if !va.EqualConst(vb) {
			t.Fatalf("%s result %s: %v != %v", name, a[i].Name, va, vb)
		}
	}
}

func TestQ18InterQueryReuse(t *testing.T) {
	db := Generate(0.002, 11)
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	d := QueryMap()[18]
	run1 := func(qid uint64, qty int64) *mal.Ctx {
		rec.BeginQuery(qid, d.Templ.ID)
		ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: qid}
		if err := mal.Run(ctx, d.Templ, mal.IntV(qty)); err != nil {
			t.Fatal(err)
		}
		rec.EndQuery(qid)
		return ctx
	}
	run1(1, 180)
	ctx := run1(2, 200) // different level: grouping still reused
	if ctx.Stats.GlobalHits == 0 {
		t.Fatal("Q18 grouping not reused across instances")
	}
	ratio := ctx.Stats.HitRatio()
	if ratio < 0.4 {
		t.Fatalf("Q18 second-instance hit ratio = %.2f, want >= 0.4", ratio)
	}
}

func TestQ11IntraQueryReuse(t *testing.T) {
	// The paper's plans carry Q11's sub-query chain twice; run-time
	// intra-query recycling dedups it (Table II's 33.3%). Compile with
	// CSE off to get the paper's plan shape.
	db := Generate(0.002, 12)
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	d := QueryMapOpt(opt.Options{SkipCSE: true})[11]
	rec.BeginQuery(1, d.Templ.ID)
	ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: 1}
	if err := mal.Run(ctx, d.Templ, mal.StrV("GERMANY")); err != nil {
		t.Fatal(err)
	}
	rec.EndQuery(1)
	if ctx.Stats.LocalHits == 0 {
		t.Fatal("Q11 sub-query chain not reused locally")
	}
}

// TestQ11CSEMergesSubQueryChain is the compile-time counterpart: under
// the default pipeline the duplicate chain never reaches the recycler,
// and the answer is unchanged.
func TestQ11CSEMergesSubQueryChain(t *testing.T) {
	db := Generate(0.002, 12)
	paper := QueryMapOpt(opt.Options{SkipCSE: true})[11]
	merged := QueryMap()[11]
	if len(merged.Templ.Instrs) >= len(paper.Templ.Instrs) {
		t.Fatalf("CSE did not shrink Q11: %d vs %d instructions",
			len(merged.Templ.Instrs), len(paper.Templ.Instrs))
	}
	run := func(tmpl *mal.Template) *mal.Ctx {
		ctx := &mal.Ctx{Cat: db.Cat}
		if err := mal.Run(ctx, tmpl, mal.StrV("GERMANY")); err != nil {
			t.Fatal(err)
		}
		return ctx
	}
	a, b := run(paper.Templ), run(merged.Templ)
	if len(a.Results) != len(b.Results) {
		t.Fatalf("result arity differs: %d vs %d", len(a.Results), len(b.Results))
	}
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	defer rec.Close()
	ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: 1}
	rec.BeginQuery(1, merged.Templ.ID)
	if err := mal.Run(ctx, merged.Templ, mal.StrV("GERMANY")); err != nil {
		t.Fatal(err)
	}
	rec.EndQuery(1)
	if ctx.Stats.LocalHits != 0 {
		t.Fatalf("local hits = %d, want 0 after CSE", ctx.Stats.LocalHits)
	}
}

func TestQ6NoOverlap(t *testing.T) {
	db := Generate(0.002, 13)
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	d := QueryMap()[6]
	rng := rand.New(rand.NewSource(5))
	var last *mal.Ctx
	for i := uint64(1); i <= 3; i++ {
		rec.BeginQuery(i, d.Templ.ID)
		ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: i}
		if err := mal.Run(ctx, d.Templ, d.Params(rng)...); err != nil {
			t.Fatal(err)
		}
		rec.EndQuery(i)
		last = ctx
	}
	if last.Stats.HitsNonBind > 0 && last.Stats.Subsumed == 0 {
		t.Fatalf("Q6 with distinct params should not hit: %+v", last.Stats)
	}
}

func TestRefreshFunctions(t *testing.T) {
	db := Generate(0.002, 20)
	ordersBefore := db.Table("orders").NumRows()
	liBefore := db.Table("lineitem").NumRows()
	keys := db.RF1(8)
	if len(keys) != 8 {
		t.Fatalf("RF1 inserted %d orders", len(keys))
	}
	if db.Table("orders").NumRows() != ordersBefore+8 {
		t.Fatal("orders not inserted")
	}
	if db.Table("lineitem").NumRows() <= liBefore {
		t.Fatal("lineitems not inserted")
	}
	midLi := db.Table("lineitem").NumRows()
	deleted := db.RF2(8)
	if len(deleted) != 8 {
		t.Fatalf("RF2 deleted %d orders", len(deleted))
	}
	if db.Table("orders").NumRows() != ordersBefore {
		t.Fatal("orders not deleted")
	}
	if db.Table("lineitem").NumRows() >= midLi {
		t.Fatal("lineitems not deleted")
	}
	// Deleted keys are the oldest ones, not the fresh inserts.
	for _, k := range deleted {
		for _, nk := range keys {
			if k == nk {
				t.Fatal("RF2 deleted a fresh key")
			}
		}
	}
}

func TestUpdateBlockInvalidatesRecycler(t *testing.T) {
	db := Generate(0.002, 21)
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	d := QueryMap()[18] // lineitem-derived
	rec.BeginQuery(1, d.Templ.ID)
	ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: 1}
	if err := mal.Run(ctx, d.Templ, mal.IntV(180)); err != nil {
		t.Fatal(err)
	}
	rec.EndQuery(1)
	if rec.Pool().Len() == 0 {
		t.Fatal("nothing admitted")
	}
	db.UpdateBlock()
	// All lineitem/orders-derived entries are invalidated.
	for _, e := range rec.Pool().All() {
		for _, dep := range e.Deps {
			if dep.Table == "sys.lineitem" || dep.Table == "sys.orders" {
				t.Fatalf("stale entry survived: %s (deps %v)", e.Render, e.Deps)
			}
		}
	}
	// Correctness after the update block.
	rec.BeginQuery(2, d.Templ.ID)
	ctx2 := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: 2}
	if err := mal.Run(ctx2, d.Templ, mal.IntV(180)); err != nil {
		t.Fatal(err)
	}
	rec.EndQuery(2)
	if ctx2.Results[0].Val.I != refQ18(db, 180) {
		t.Fatalf("Q18 after update = %d, want %d", ctx2.Results[0].Val.I, refQ18(db, 180))
	}
}

func TestAllQueriesRunAfterUpdates(t *testing.T) {
	db := Generate(0.002, 22)
	rec := recycler.New(db.Cat, recycler.Config{Admission: recycler.KeepAll})
	rng := rand.New(rand.NewSource(3))
	qid := uint64(0)
	for round := 0; round < 2; round++ {
		for _, d := range Queries() {
			qid++
			rec.BeginQuery(qid, d.Templ.ID)
			ctx := &mal.Ctx{Cat: db.Cat, Hook: rec, QueryID: qid}
			if err := mal.Run(ctx, d.Templ, d.Params(rng)...); err != nil {
				t.Fatalf("%s after updates: %v", d.Name, err)
			}
			rec.EndQuery(qid)
		}
		db.UpdateBlock()
	}
}

func TestParamsMatchTemplates(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range Queries() {
		params := d.Params(rng)
		if len(params) != len(d.Templ.Params) {
			t.Fatalf("%s: %d params generated, template wants %d", d.Name, len(params), len(d.Templ.Params))
		}
		for i, p := range params {
			if p.Kind != d.Templ.Params[i].Kind {
				t.Fatalf("%s param %d: kind %v != %v", d.Name, i, p.Kind, d.Templ.Params[i].Kind)
			}
		}
	}
}

func TestMarkedInstructionCounts(t *testing.T) {
	// Every query must expose a non-trivial number of monitored
	// instructions (Table II's # column).
	for _, d := range Queries() {
		n := d.Templ.MarkedCount(true)
		if n < 3 {
			t.Errorf("%s: only %d marked non-bind instructions", d.Name, n)
		}
	}
}
