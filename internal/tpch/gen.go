package tpch

import (
	"fmt"
	"math/rand"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/catalog"
)

// Schema name used for all TPC-H tables.
const Schema = "sys"

// Regions and nations follow the benchmark's fixed tables.
var regionNames = []string{"AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"}

var nationDefs = []struct {
	name   string
	region int
}{
	{"ALGERIA", 0}, {"ARGENTINA", 1}, {"BRAZIL", 1}, {"CANADA", 1},
	{"EGYPT", 4}, {"ETHIOPIA", 0}, {"FRANCE", 3}, {"GERMANY", 3},
	{"INDIA", 2}, {"INDONESIA", 2}, {"IRAN", 4}, {"IRAQ", 4},
	{"JAPAN", 2}, {"JORDAN", 4}, {"KENYA", 0}, {"MOROCCO", 0},
	{"MOZAMBIQUE", 0}, {"PERU", 1}, {"CHINA", 2}, {"ROMANIA", 3},
	{"SAUDI ARABIA", 4}, {"VIETNAM", 2}, {"RUSSIA", 3},
	{"UNITED KINGDOM", 3}, {"UNITED STATES", 1},
}

var (
	segments   = []string{"AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"}
	priorities = []string{"1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"}
	shipmodes  = []string{"REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"}
	instructs  = []string{"DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"}
	containers = []string{"SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "WRAP PACK", "JUMBO PKG"}
	typeSyl1   = []string{"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"}
	typeSyl2   = []string{"ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"}
	typeSyl3   = []string{"TIN", "NICKEL", "BRASS", "STEEL", "COPPER"}
	brandNums  = 5
	nameParts  = []string{"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black", "blanched", "blue", "blush", "brown", "burlywood", "burnished", "chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk", "cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick", "floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod", "green", "grey", "honeydew", "hot", "hotpink", "indian", "ivory", "khaki", "lace", "lavender", "lawn", "lemon", "light", "lime", "linen", "magenta", "maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin", "navajo", "navy", "olive", "orange", "orchid", "pale", "papaya", "peach", "peru", "pink", "plum", "powder", "puff", "purple", "red", "rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell", "sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan", "thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow"}
)

// Dates span 1992-01-01 .. 1998-12-31 as in the benchmark.
var (
	startDate = algebra.MkDate(1992, 1, 1)
	endDate   = algebra.MkDate(1998, 12, 31)
)

// DB is a generated TPC-H database plus the bookkeeping the refresh
// functions need.
type DB struct {
	Cat *catalog.Catalog
	SF  float64

	Customers int
	Orders    int
	Parts     int
	Suppliers int
	Lineitems int

	rng          *rand.Rand
	nextOrderKey int64
	// liveOrderKeys tracks insertable/deletable keys for RF1/RF2.
	liveOrderKeys []int64
}

// Generate builds a database at the given scale factor with a fixed
// seed, loading all eight tables and defining the key and join
// indices the query plans use.
func Generate(sf float64, seed int64) *DB {
	if sf <= 0 {
		sf = 0.01
	}
	db := &DB{Cat: catalog.New(), SF: sf, rng: rand.New(rand.NewSource(seed))}
	db.Customers = scaled(sf, 150000)
	db.Suppliers = scaled(sf, 10000)
	db.Parts = scaled(sf, 200000)
	db.Orders = db.Customers * 10

	db.genRegionNation()
	db.genSupplier()
	db.genCustomer()
	db.genPart()
	db.genPartsupp()
	db.genOrdersLineitem()
	db.defineIndices()
	return db
}

func scaled(sf float64, base int) int {
	n := int(sf * float64(base))
	if n < 10 {
		n = 10
	}
	return n
}

func (db *DB) pick(ss []string) string { return ss[db.rng.Intn(len(ss))] }

func (db *DB) date() bat.Date {
	span := int(endDate - startDate)
	return startDate + bat.Date(db.rng.Intn(span))
}

func (db *DB) genRegionNation() {
	region := db.Cat.CreateTable(Schema, "region", []catalog.ColDef{
		{Name: "r_regionkey", Kind: bat.KInt, Sorted: true},
		{Name: "r_name", Kind: bat.KStr},
	})
	rows := make([]catalog.Row, len(regionNames))
	for i, n := range regionNames {
		rows[i] = catalog.Row{"r_regionkey": int64(i), "r_name": n}
	}
	region.Append(rows)

	nation := db.Cat.CreateTable(Schema, "nation", []catalog.ColDef{
		{Name: "n_nationkey", Kind: bat.KInt, Sorted: true},
		{Name: "n_name", Kind: bat.KStr},
		{Name: "n_regionkey", Kind: bat.KInt},
	})
	rows = make([]catalog.Row, len(nationDefs))
	for i, n := range nationDefs {
		rows[i] = catalog.Row{"n_nationkey": int64(i), "n_name": n.name, "n_regionkey": int64(n.region)}
	}
	nation.Append(rows)
}

func (db *DB) genSupplier() {
	t := db.Cat.CreateTable(Schema, "supplier", []catalog.ColDef{
		{Name: "s_suppkey", Kind: bat.KInt, Sorted: true},
		{Name: "s_name", Kind: bat.KStr},
		{Name: "s_nationkey", Kind: bat.KInt},
		{Name: "s_acctbal", Kind: bat.KFloat},
		{Name: "s_comment", Kind: bat.KStr},
	})
	rows := make([]catalog.Row, db.Suppliers)
	for i := range rows {
		comment := "supplier " + db.pick(nameParts)
		if db.rng.Intn(200) < 1 {
			comment = "Customer Complaints " + comment
		}
		rows[i] = catalog.Row{
			"s_suppkey":   int64(i + 1),
			"s_name":      fmt.Sprintf("Supplier#%09d", i+1),
			"s_nationkey": int64(db.rng.Intn(len(nationDefs))),
			"s_acctbal":   float64(db.rng.Intn(110000))/10 - 1000,
			"s_comment":   comment,
		}
	}
	t.Append(rows)
}

func (db *DB) genCustomer() {
	t := db.Cat.CreateTable(Schema, "customer", []catalog.ColDef{
		{Name: "c_custkey", Kind: bat.KInt, Sorted: true},
		{Name: "c_name", Kind: bat.KStr},
		{Name: "c_nationkey", Kind: bat.KInt},
		{Name: "c_mktsegment", Kind: bat.KStr},
		{Name: "c_acctbal", Kind: bat.KFloat},
		{Name: "c_phone", Kind: bat.KStr},
	})
	rows := make([]catalog.Row, db.Customers)
	for i := range rows {
		nk := db.rng.Intn(len(nationDefs))
		rows[i] = catalog.Row{
			"c_custkey":    int64(i + 1),
			"c_name":       fmt.Sprintf("Customer#%09d", i+1),
			"c_nationkey":  int64(nk),
			"c_mktsegment": db.pick(segments),
			"c_acctbal":    float64(db.rng.Intn(110000))/10 - 1000,
			"c_phone":      fmt.Sprintf("%02d-%03d-%03d-%04d", nk+10, db.rng.Intn(1000), db.rng.Intn(1000), db.rng.Intn(10000)),
		}
	}
	t.Append(rows)
}

func (db *DB) genPart() {
	t := db.Cat.CreateTable(Schema, "part", []catalog.ColDef{
		{Name: "p_partkey", Kind: bat.KInt, Sorted: true},
		{Name: "p_name", Kind: bat.KStr},
		{Name: "p_brand", Kind: bat.KStr},
		{Name: "p_type", Kind: bat.KStr},
		{Name: "p_size", Kind: bat.KInt},
		{Name: "p_container", Kind: bat.KStr},
		{Name: "p_retailprice", Kind: bat.KFloat},
	})
	rows := make([]catalog.Row, db.Parts)
	for i := range rows {
		rows[i] = catalog.Row{
			"p_partkey":     int64(i + 1),
			"p_name":        db.pick(nameParts) + " " + db.pick(nameParts) + " " + db.pick(nameParts),
			"p_brand":       fmt.Sprintf("Brand#%d%d", db.rng.Intn(brandNums)+1, db.rng.Intn(brandNums)+1),
			"p_type":        db.pick(typeSyl1) + " " + db.pick(typeSyl2) + " " + db.pick(typeSyl3),
			"p_size":        int64(db.rng.Intn(50) + 1),
			"p_container":   db.pick(containers),
			"p_retailprice": 900 + float64(i%1000) + float64(db.rng.Intn(100))/100,
		}
	}
	t.Append(rows)
}

func (db *DB) genPartsupp() {
	t := db.Cat.CreateTable(Schema, "partsupp", []catalog.ColDef{
		{Name: "ps_partkey", Kind: bat.KInt, Sorted: true},
		{Name: "ps_suppkey", Kind: bat.KInt},
		{Name: "ps_availqty", Kind: bat.KInt},
		{Name: "ps_supplycost", Kind: bat.KFloat},
	})
	rows := make([]catalog.Row, 0, db.Parts*4)
	for p := 1; p <= db.Parts; p++ {
		for s := 0; s < 4; s++ {
			rows = append(rows, catalog.Row{
				"ps_partkey":    int64(p),
				"ps_suppkey":    int64((p+s*(db.Suppliers/4+1))%db.Suppliers + 1),
				"ps_availqty":   int64(db.rng.Intn(9999) + 1),
				"ps_supplycost": 1 + float64(db.rng.Intn(99900))/100,
			})
		}
	}
	t.Append(rows)
}

func (db *DB) genOrdersLineitem() {
	orders := db.Cat.CreateTable(Schema, "orders", []catalog.ColDef{
		{Name: "o_orderkey", Kind: bat.KInt, Sorted: true},
		{Name: "o_custkey", Kind: bat.KInt},
		{Name: "o_orderstatus", Kind: bat.KStr},
		{Name: "o_totalprice", Kind: bat.KFloat},
		{Name: "o_orderdate", Kind: bat.KDate},
		{Name: "o_orderpriority", Kind: bat.KStr},
		{Name: "o_comment", Kind: bat.KStr},
	})
	li := db.Cat.CreateTable(Schema, "lineitem", []catalog.ColDef{
		{Name: "l_orderkey", Kind: bat.KInt, Sorted: true},
		{Name: "l_partkey", Kind: bat.KInt},
		{Name: "l_suppkey", Kind: bat.KInt},
		{Name: "l_quantity", Kind: bat.KInt},
		{Name: "l_extendedprice", Kind: bat.KFloat},
		{Name: "l_discount", Kind: bat.KFloat},
		{Name: "l_tax", Kind: bat.KFloat},
		{Name: "l_returnflag", Kind: bat.KStr},
		{Name: "l_linestatus", Kind: bat.KStr},
		{Name: "l_shipdate", Kind: bat.KDate},
		{Name: "l_commitdate", Kind: bat.KDate},
		{Name: "l_receiptdate", Kind: bat.KDate},
		{Name: "l_shipinstruct", Kind: bat.KStr},
		{Name: "l_shipmode", Kind: bat.KStr},
	})

	oRows := make([]catalog.Row, 0, db.Orders)
	lRows := make([]catalog.Row, 0, db.Orders*4)
	for o := 0; o < db.Orders; o++ {
		key := int64(o + 1)
		oRows = append(oRows, db.orderRow(key))
		db.liveOrderKeys = append(db.liveOrderKeys, key)
		nl := db.rng.Intn(7) + 1
		for l := 0; l < nl; l++ {
			lRows = append(lRows, db.lineitemRow(key, l, oRows[len(oRows)-1]["o_orderdate"].(bat.Date)))
		}
	}
	db.nextOrderKey = int64(db.Orders + 1)
	db.Lineitems = len(lRows)
	orders.Append(oRows)
	li.Append(lRows)
}

func (db *DB) orderRow(key int64) catalog.Row {
	d := db.date()
	status := "O"
	if db.rng.Intn(2) == 0 {
		status = "F"
	}
	return catalog.Row{
		"o_orderkey":      key,
		"o_custkey":       int64(db.rng.Intn(db.Customers) + 1),
		"o_orderstatus":   status,
		"o_totalprice":    1000 + float64(db.rng.Intn(400000))/100,
		"o_orderdate":     d,
		"o_orderpriority": db.pick(priorities),
		"o_comment":       db.pick(nameParts) + " requests " + db.pick(nameParts),
	}
}

func (db *DB) lineitemRow(orderKey int64, line int, orderDate bat.Date) catalog.Row {
	ship := orderDate + bat.Date(db.rng.Intn(121)+1)
	commit := orderDate + bat.Date(db.rng.Intn(91)+30)
	receipt := ship + bat.Date(db.rng.Intn(30)+1)
	rf := "N"
	if receipt <= algebra.MkDate(1995, 6, 17) {
		if db.rng.Intn(2) == 0 {
			rf = "R"
		} else {
			rf = "A"
		}
	}
	ls := "O"
	if ship <= algebra.MkDate(1995, 6, 17) {
		ls = "F"
	}
	qty := int64(db.rng.Intn(50) + 1)
	price := float64(qty) * (900 + float64(db.rng.Intn(10000))/10)
	return catalog.Row{
		"l_orderkey":      orderKey,
		"l_partkey":       int64(db.rng.Intn(db.Parts) + 1),
		"l_suppkey":       int64(db.rng.Intn(db.Suppliers) + 1),
		"l_quantity":      qty,
		"l_extendedprice": price,
		"l_discount":      float64(db.rng.Intn(11)) / 100,
		"l_tax":           float64(db.rng.Intn(9)) / 100,
		"l_returnflag":    rf,
		"l_linestatus":    ls,
		"l_shipdate":      ship,
		"l_commitdate":    commit,
		"l_receiptdate":   receipt,
		"l_shipinstruct":  db.pick(instructs),
		"l_shipmode":      db.pick(shipmodes),
	}
}

func (db *DB) defineIndices() {
	c := db.Cat
	orders := c.MustTable(Schema, "orders")
	li := c.MustTable(Schema, "lineitem")
	cust := c.MustTable(Schema, "customer")
	supp := c.MustTable(Schema, "supplier")
	nation := c.MustTable(Schema, "nation")
	region := c.MustTable(Schema, "region")
	part := c.MustTable(Schema, "part")
	ps := c.MustTable(Schema, "partsupp")

	orders.DefineKeyIndex("o_orderkey")
	li.DefineJoinIndex("li_fk_orders", "l_orderkey", orders, "o_orderkey")
	li.DefineJoinIndex("li_fk_part", "l_partkey", part, "p_partkey")
	li.DefineJoinIndex("li_fk_supp", "l_suppkey", supp, "s_suppkey")
	orders.DefineJoinIndex("o_fk_cust", "o_custkey", cust, "c_custkey")
	cust.DefineJoinIndex("c_fk_nation", "c_nationkey", nation, "n_nationkey")
	supp.DefineJoinIndex("s_fk_nation", "s_nationkey", nation, "n_nationkey")
	nation.DefineJoinIndex("n_fk_region", "n_regionkey", region, "r_regionkey")
	ps.DefineJoinIndex("ps_fk_part", "ps_partkey", part, "p_partkey")
	ps.DefineJoinIndex("ps_fk_supp", "ps_suppkey", supp, "s_suppkey")
}

// Table is a convenience accessor.
func (db *DB) Table(name string) *catalog.Table { return db.Cat.MustTable(Schema, name) }
