package tpch

import (
	"testing"

	"repro/internal/algebra"
	"repro/internal/bat"
	"repro/internal/mal"
)

// Reference evaluators for additional queries, computed directly over
// the generated column data, cross-checking the MAL templates.

func colInts(db *DB, table, col string) []int64 {
	return db.Table(table).MustColumn(col).Bind().Tail.(*bat.Ints).V
}
func colFloats(db *DB, table, col string) []float64 {
	return db.Table(table).MustColumn(col).Bind().Tail.(*bat.Floats).V
}
func colStrs(db *DB, table, col string) []string {
	return db.Table(table).MustColumn(col).Bind().Tail.(*bat.Strings).V
}
func colDates(db *DB, table, col string) []bat.Date {
	return db.Table(table).MustColumn(col).Bind().Tail.(*bat.Dates).V
}

// refQ3 computes Q3's revenue: lineitems of orders of customers in a
// segment, with order date < D and ship date > D.
func refQ3(db *DB, segment string, d bat.Date) float64 {
	seg := colStrs(db, "customer", "c_mktsegment")
	segCust := map[int64]bool{}
	for i, s := range seg {
		if s == segment {
			segCust[int64(i+1)] = true // custkey = oid+1
		}
	}
	oCust := colInts(db, "orders", "o_custkey")
	oDate := colDates(db, "orders", "o_orderdate")
	oKey := colInts(db, "orders", "o_orderkey")
	qualOrders := map[int64]bool{}
	for i := range oCust {
		if segCust[oCust[i]] && oDate[i] < d {
			qualOrders[oKey[i]] = true
		}
	}
	lOrd := colInts(db, "lineitem", "l_orderkey")
	lShip := colDates(db, "lineitem", "l_shipdate")
	lPrice := colFloats(db, "lineitem", "l_extendedprice")
	lDisc := colFloats(db, "lineitem", "l_discount")
	var rev float64
	for i := range lOrd {
		if qualOrders[lOrd[i]] && lShip[i] > d {
			rev += lPrice[i] * (1 - lDisc[i])
		}
	}
	return rev
}

func TestQ3AgainstReference(t *testing.T) {
	d := QueryMap()[3]
	day := algebra.MkDate(1995, 3, 15)
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.StrV("BUILDING"), mal.DateV(day)})
	got := ctx.Results[0].Val.F
	want := refQ3(testDB, "BUILDING", day)
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("Q3 = %f, want %f", got, want)
	}
}

// refQ12 counts qualifying lineitems per priority for Q12's core.
func refQ12(db *DB, m1, m2 string, lo bat.Date) int64 {
	sm := colStrs(db, "lineitem", "l_shipmode")
	commit := colDates(db, "lineitem", "l_commitdate")
	receipt := colDates(db, "lineitem", "l_receiptdate")
	ship := colDates(db, "lineitem", "l_shipdate")
	hi := algebra.AddMonths(lo, 12)
	var n int64
	for i := range sm {
		if (sm[i] == m1 || sm[i] == m2) &&
			commit[i] < receipt[i] && ship[i] < commit[i] &&
			receipt[i] >= lo && receipt[i] < hi {
			n++
		}
	}
	return n
}

func TestQ12AgainstReference(t *testing.T) {
	d := QueryMap()[12]
	lo := algebra.MkDate(1994, 1, 1)
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.StrV("MAIL"), mal.StrV("SHIP"), mal.DateV(lo)})
	var got int64
	for _, r := range ctx.Results {
		if r.Name == "line_count" {
			for _, c := range r.Val.Bat.Tail.(*bat.Ints).V {
				got += c
			}
		}
	}
	want := refQ12(testDB, "MAIL", "SHIP", lo)
	if got != want {
		t.Fatalf("Q12 = %d, want %d", got, want)
	}
}

// refQ22 counts rich customers with a country code and no orders.
func refQ22(db *DB, c1, c2 string) (int64, float64) {
	phone := colStrs(db, "customer", "c_phone")
	acct := colFloats(db, "customer", "c_acctbal")
	// Average of positive balances over all customers.
	var sum float64
	var n int64
	for _, b := range acct {
		if b > 0 {
			sum += b
			n++
		}
	}
	avg := sum / float64(n)
	// Customers with orders.
	hasOrder := map[int64]bool{}
	for _, ck := range colInts(db, "orders", "o_custkey") {
		hasOrder[ck] = true
	}
	var cnt int64
	var tot float64
	for i := range phone {
		code := phone[i][:2]
		if code != c1 && code != c2 {
			continue
		}
		if acct[i] <= avg {
			continue
		}
		if hasOrder[int64(i+1)] {
			continue
		}
		cnt++
		tot += acct[i]
	}
	return cnt, tot
}

func TestQ22AgainstReference(t *testing.T) {
	d := QueryMap()[22]
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.StrV("13-%"), mal.StrV("17-%")})
	wantCnt, wantTot := refQ22(testDB, "13", "17")
	if got := ctx.Results[0].Val.I; got != wantCnt {
		t.Fatalf("Q22 count = %d, want %d", got, wantCnt)
	}
	if got := ctx.Results[1].Val.F; got-wantTot > 1e-4 || wantTot-got > 1e-4 {
		t.Fatalf("Q22 total = %f, want %f", got, wantTot)
	}
}

// refQ10 computes revenue of returned items per customer and sums it.
func refQ10(db *DB, lo bat.Date) float64 {
	rf := colStrs(db, "lineitem", "l_returnflag")
	lOrd := colInts(db, "lineitem", "l_orderkey")
	lPrice := colFloats(db, "lineitem", "l_extendedprice")
	lDisc := colFloats(db, "lineitem", "l_discount")
	oKey := colInts(db, "orders", "o_orderkey")
	oDate := colDates(db, "orders", "o_orderdate")
	hi := algebra.AddMonths(lo, 3)
	qual := map[int64]bool{}
	for i := range oKey {
		if oDate[i] >= lo && oDate[i] < hi {
			qual[oKey[i]] = true
		}
	}
	var rev float64
	for i := range rf {
		if rf[i] == "R" && qual[lOrd[i]] {
			rev += lPrice[i] * (1 - lDisc[i])
		}
	}
	return rev
}

func TestQ10AgainstReference(t *testing.T) {
	d := QueryMap()[10]
	lo := algebra.MkDate(1993, 10, 1)
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.DateV(lo)})
	var got float64
	for _, r := range ctx.Results {
		if r.Name == "revenue_by_cust" {
			got = algebra.SumFloat(r.Val.Bat)
		}
	}
	want := refQ10(testDB, lo)
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("Q10 = %f, want %f", got, want)
	}
}

// refQ15 finds the max supplier revenue in a quarter.
func refQ15(db *DB, lo bat.Date) float64 {
	ship := colDates(db, "lineitem", "l_shipdate")
	sk := colInts(db, "lineitem", "l_suppkey")
	price := colFloats(db, "lineitem", "l_extendedprice")
	disc := colFloats(db, "lineitem", "l_discount")
	hi := algebra.AddMonths(lo, 3)
	sums := map[int64]float64{}
	for i := range ship {
		if ship[i] >= lo && ship[i] < hi {
			sums[sk[i]] += price[i] * (1 - disc[i])
		}
	}
	var max float64
	for _, s := range sums {
		if s > max {
			max = s
		}
	}
	return max
}

func TestQ15AgainstReference(t *testing.T) {
	d := QueryMap()[15]
	lo := algebra.MkDate(1996, 1, 1)
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.DateV(lo)})
	top := ctx.Results[0].Val.Bat
	if top.Len() != 1 {
		t.Fatalf("top rows = %d", top.Len())
	}
	got := top.Tail.Get(0).(float64)
	want := refQ15(testDB, lo)
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("Q15 = %f, want %f", got, want)
	}
}

// refQ17 sums extended prices of small-quantity lineitems for a
// brand/container pair.
func refQ17(db *DB, brand, container string) float64 {
	pBrand := colStrs(db, "part", "p_brand")
	pCont := colStrs(db, "part", "p_container")
	qualPart := map[int64]bool{}
	for i := range pBrand {
		if pBrand[i] == brand && pCont[i] == container {
			qualPart[int64(i+1)] = true
		}
	}
	lPart := colInts(db, "lineitem", "l_partkey")
	lQty := colInts(db, "lineitem", "l_quantity")
	lPrice := colFloats(db, "lineitem", "l_extendedprice")
	// Average quantity over the qualifying lineitems.
	var qsum float64
	var qn int64
	for i := range lPart {
		if qualPart[lPart[i]] {
			qsum += float64(lQty[i])
			qn++
		}
	}
	if qn == 0 {
		return 0
	}
	thr := 0.2 * qsum / float64(qn)
	var rev float64
	for i := range lPart {
		if qualPart[lPart[i]] && float64(lQty[i]) < thr {
			rev += lPrice[i]
		}
	}
	return rev
}

func TestQ17AgainstReference(t *testing.T) {
	d := QueryMap()[17]
	ctx := run(t, testDB, nil, 1, d, []mal.Value{mal.StrV("Brand#11"), mal.StrV("SM BOX")})
	got := ctx.Results[0].Val.F
	want := refQ17(testDB, "Brand#11", "SM BOX")
	if diff := got - want; diff > 1e-4 || diff < -1e-4 {
		t.Fatalf("Q17 = %f, want %f", got, want)
	}
}
