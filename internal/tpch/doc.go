// Package tpch provides the TPC-H substrate of the reproduction: a
// deterministic, scale-factor-driven data generator for the eight
// benchmark tables, the 22 query templates hand-compiled to MAL plans
// (as the SQL front end of the paper's system would produce them), the
// benchmark's parameter generator, and the RF1/RF2 refresh functions
// used by the update experiments (paper §7).
package tpch
