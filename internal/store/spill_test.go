package store

import (
	"fmt"
	"testing"
	"time"

	"repro"
	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/recycler"
	"repro/internal/sky"
)

// The spill tests drive a real engine over a small SkyServer catalog:
// the queries below produce bind → select → count chains whose
// intermediates are admitted, demoted to the disk tier, and reloaded
// through canonical-signature matching.

const boxQuery = "SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 195.0 AND 215.5 AND dec BETWEEN 2.0 AND 33.0 AND mode = 1"

func countOf(t *testing.T, res *repro.ExecResult) int64 {
	t.Helper()
	if len(res.Results) == 0 {
		t.Fatal("no results")
	}
	v := res.Results[0].Val
	return v.I
}

func newSpillEngine(t *testing.T, cat *catalog.Catalog, tier *Spill) *repro.Engine {
	t.Helper()
	eng := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{
		Admission: recycler.KeepAll,
		Spill:     tier,
	}))
	t.Cleanup(eng.Recycler().Close)
	return eng
}

// TestSpillAllReloadOnMiss: demote the whole pool, empty it, re-run
// the query — every instruction must be served from disk, not
// recomputed.
func TestSpillAllReloadOnMiss(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := newSpillEngine(t, db.Cat, tier)

	res1, err := eng.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := countOf(t, res1)

	rec := eng.Recycler()
	n := rec.SpillAll()
	if n == 0 {
		t.Fatal("SpillAll wrote nothing")
	}
	if entries, _ := tier.Stats(); entries == 0 {
		t.Fatal("tier holds no records")
	}
	rec.Reset()
	if rec.Pool().Len() != 0 {
		t.Fatal("pool not empty after reset")
	}

	res2, err := eng.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res2); got != want {
		t.Fatalf("reloaded result %d != original %d", got, want)
	}
	st := rec.Snapshot()
	if st.Reloaded == 0 {
		t.Fatalf("no disk-tier reloads: %+v", st)
	}
	if res2.Stats.Hits == 0 {
		t.Fatal("second run reported no hits")
	}
}

// TestSpillStaleDroppedAfterCommit: a commit to the dependency table
// between demotion and reload must invalidate the spilled records
// lazily, and the re-run must reflect the new data.
func TestSpillStaleDroppedAfterCommit(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := newSpillEngine(t, db.Cat, tier)

	res1, err := eng.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	before := countOf(t, res1)

	rec := eng.Recycler()
	if rec.SpillAll() == 0 {
		t.Fatal("SpillAll wrote nothing")
	}
	rec.Reset()

	// Insert a row inside the bounding box: every spilled photoobj
	// intermediate is now one version behind.
	tbl := db.Cat.MustTable("sky", "photoobj")
	row := catalog.Row{"objid": int64(1 << 60), "ra": 200.0, "dec": 10.0, "mode": int64(1)}
	for _, c := range tbl.Cols {
		if _, ok := row[c.Name]; !ok {
			switch c.KindOf {
			case bat.KInt:
				row[c.Name] = int64(0)
			case bat.KFloat:
				row[c.Name] = 0.0
			case bat.KStr:
				row[c.Name] = ""
			default:
				t.Fatalf("unexpected column kind %v", c.KindOf)
			}
		}
	}
	tbl.Append([]catalog.Row{row})

	res2, err := eng.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res2); got != before+1 {
		t.Fatalf("post-commit result %d, want %d (stale reload served?)", got, before+1)
	}
	st := rec.Snapshot()
	if st.StaleDropped == 0 {
		t.Fatalf("no stale drops recorded: %+v", st)
	}
	if st.Reloaded != 0 {
		t.Fatalf("stale records were reloaded: %+v", st)
	}
}

// TestPrewarmServesFirstQuery: a fresh recycler over the same catalog
// pre-warms from the tier and serves the very first query from the
// pool.
func TestPrewarmServesFirstQuery(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	engA := newSpillEngine(t, db.Cat, tier)
	res1, err := engA.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := countOf(t, res1)
	if engA.Recycler().SpillAll() == 0 {
		t.Fatal("SpillAll wrote nothing")
	}

	engB := newSpillEngine(t, db.Cat, tier)
	n := engB.Recycler().Prewarm()
	if n == 0 {
		t.Fatal("prewarm admitted nothing")
	}
	res2, err := engB.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res2); got != want {
		t.Fatalf("prewarmed result %d != original %d", got, want)
	}
	if res2.Stats.Hits == 0 {
		t.Fatal("first query after prewarm reported no pool hits")
	}
	st := engB.Recycler().Snapshot()
	if st.Prewarmed == 0 || st.Reuses == 0 {
		t.Fatalf("prewarm stats: %+v", st)
	}
}

// TestPrewarmRejectsStale: records spilled before a commit must not
// pre-warm after it.
func TestPrewarmRejectsStale(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	engA := newSpillEngine(t, db.Cat, tier)
	if _, err := engA.ExecSQL(boxQuery); err != nil {
		t.Fatal(err)
	}
	if engA.Recycler().SpillAll() == 0 {
		t.Fatal("SpillAll wrote nothing")
	}

	// Any committed delete bumps the table version.
	db.Cat.MustTable("sky", "photoobj").Delete([]bat.Oid{1})

	engB := newSpillEngine(t, db.Cat, tier)
	if n := engB.Recycler().Prewarm(); n != 0 {
		t.Fatalf("prewarm admitted %d stale entries", n)
	}
	if st := engB.Recycler().Snapshot(); st.StaleDropped == 0 {
		t.Fatalf("stale records not dropped: %+v", st)
	}
}

// TestPrewarmRejectsRecreatedTable: a dropped-and-recreated table must
// never re-validate the old table's spilled records, even if its
// restarted version counter reaches the old value again. The creation
// stamp (commit sequence at CreateTable) breaks the alias.
func TestPrewarmRejectsRecreatedTable(t *testing.T) {
	cat := catalog.New()
	mk := func() {
		tb := cat.CreateTable("sys", "kv", []catalog.ColDef{
			{Name: "k", Kind: bat.KInt},
			{Name: "v", Kind: bat.KInt},
		})
		tb.Append([]catalog.Row{{"k": int64(1), "v": int64(10)}, {"k": int64(2), "v": int64(20)}})
	}
	mk()
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	engA := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{Admission: recycler.KeepAll, Spill: tier}))
	if _, err := engA.ExecSQL("SELECT COUNT(*) FROM sys.kv WHERE v BETWEEN 5 AND 15"); err != nil {
		t.Fatal(err)
	}
	if engA.Recycler().SpillAll() == 0 {
		t.Fatal("SpillAll wrote nothing")
	}
	engA.Recycler().Close()

	// Drop and recreate with identical data: the new table's Version
	// equals the old one's, but its creation stamp cannot.
	cat.DropTable("sys", "kv")
	mk()

	engB := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{Admission: recycler.KeepAll, Spill: tier}))
	defer engB.Recycler().Close()
	if n := engB.Recycler().Prewarm(); n != 0 {
		t.Fatalf("prewarm admitted %d records of the dropped table", n)
	}
	if st := engB.Recycler().Snapshot(); st.StaleDropped == 0 {
		t.Fatalf("recreated-table records not dropped: %+v", st)
	}
}

// TestNoSpillDuringPendingCommit: an entry must not be demoted while a
// dependency table has a commit in flight — the table version is
// already bumped but the entry still holds pre-commit data, so a spill
// would stamp stale content as fresh.
func TestNoSpillDuringPendingCommit(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := newSpillEngine(t, db.Cat, tier)
	res1, err := eng.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	before := countOf(t, res1)
	rec := eng.Recycler()

	// Open the in-flight window by hand: OnBeforeUpdate marks the
	// table pending, exactly as a committing Append does before its
	// mutation lands.
	tbl := db.Cat.MustTable("sky", "photoobj")
	rec.OnBeforeUpdate(tbl)
	if n := rec.SpillAll(); n != 0 {
		t.Fatalf("SpillAll demoted %d entries of a table with a commit in flight", n)
	}
	rec.OnAbortUpdate(tbl)

	// With the window closed the same entries spill fine, and reload
	// still yields the correct result.
	if n := rec.SpillAll(); n == 0 {
		t.Fatal("SpillAll wrote nothing after the window closed")
	}
	rec.Reset()
	res2, err := eng.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res2); got != before {
		t.Fatalf("reloaded result %d != original %d", got, before)
	}
}

// TestSpillBudgetEvictsOldest: the tier must stay within its byte
// budget by discarding the oldest records.
func TestSpillBudgetEvictsOldest(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 64*1024)
	if err != nil {
		t.Fatal(err)
	}
	eng := newSpillEngine(t, db.Cat, tier)
	queries := []string{
		boxQuery,
		"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 10.0 AND 80.0 AND dec BETWEEN -60.0 AND 60.0 AND mode = 1",
		"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 100.0 AND 180.0 AND dec BETWEEN -60.0 AND 60.0 AND mode = 1",
	}
	for _, q := range queries {
		if _, err := eng.ExecSQL(q); err != nil {
			t.Fatal(err)
		}
	}
	eng.Recycler().SpillAll()
	_, bytes := tier.Stats()
	if bytes > 64*1024 {
		t.Fatalf("tier exceeds budget: %d bytes", bytes)
	}
}

// TestConcurrentSpillReload hammers the demote/reload paths from many
// goroutines over a tightly bounded pool, alternating query shapes so
// entries constantly evict (spill) and return (reload). Run under
// -race in CI; correctness of each result is asserted against a naive
// reference.
func TestConcurrentSpillReload(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	eng := repro.NewEngine(db.Cat, repro.WithRecycler(recycler.Config{
		Admission:  recycler.KeepAll,
		MaxEntries: 6,
		Spill:      tier,
	}))
	defer eng.Recycler().Close()

	queries := []string{
		boxQuery,
		"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 10.0 AND 80.0 AND dec BETWEEN -60.0 AND 60.0 AND mode = 1",
		"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 100.0 AND 180.0 AND dec BETWEEN -60.0 AND 60.0 AND mode = 1",
		"SELECT COUNT(*) FROM sky.photoobj WHERE ra BETWEEN 300.0 AND 350.0 AND dec BETWEEN -20.0 AND 20.0 AND mode = 1",
	}
	naive := repro.NewEngine(db.Cat)
	want := make([]int64, len(queries))
	for i, q := range queries {
		res, err := naive.ExecSQL(q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = countOf(t, res)
	}

	const workers, iters = 8, 30
	errc := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			for i := 0; i < iters; i++ {
				qi := (w + i) % len(queries)
				res, err := eng.ExecSQL(queries[qi])
				if err != nil {
					errc <- err
					return
				}
				if got := res.Results[0].Val.I; got != want[qi] {
					errc <- fmt.Errorf("worker %d query %d: got %d, want %d", w, qi, got, want[qi])
					return
				}
			}
			errc <- nil
		}(w)
	}
	for w := 0; w < workers; w++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	// Demotions are written by the asynchronous spiller goroutine;
	// on a single-core host the workload can finish before it drains
	// the queue, so poll instead of snapshotting instantly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := eng.Recycler().Snapshot()
		if st.Spilled > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Errorf("bounded pool never demoted: %+v", st)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRestartWarmPool is the end-to-end restart path: catalog and pool
// survive a full store cycle (bootstrap → queries → spill + checkpoint
// → close → recover → prewarm) and the first post-restart query hits.
func TestRestartWarmPool(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	db := sky.Generate(2000, 17)
	if err := st.Bootstrap(db.Cat); err != nil {
		t.Fatal(err)
	}
	eng := newSpillEngine(t, db.Cat, st.Spill())
	res1, err := eng.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	want := countOf(t, res1)
	if eng.Recycler().SpillAll() == 0 {
		t.Fatal("SpillAll wrote nothing")
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat2, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	eng2 := newSpillEngine(t, cat2, st2.Spill())
	if n := eng2.Recycler().Prewarm(); n == 0 {
		t.Fatal("nothing prewarmed after restart")
	}
	res2, err := eng2.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res2); got != want {
		t.Fatalf("post-restart result %d != pre-restart %d", got, want)
	}
	if res2.Stats.Hits == 0 {
		t.Fatal("first post-restart query reported no pool hits")
	}
	if st := eng2.Recycler().Snapshot(); st.Reuses == 0 {
		t.Fatalf("no reuses before any recomputation: %+v", st)
	}
}

// boxRow builds one complete photoobj row landing inside boxQuery's
// bounding box.
func boxRow(t *testing.T, tbl *catalog.Table, objid int64) catalog.Row {
	t.Helper()
	row := catalog.Row{"objid": objid, "ra": 200.0, "dec": 10.0, "mode": int64(1)}
	for _, c := range tbl.Cols {
		if _, ok := row[c.Name]; !ok {
			switch c.KindOf {
			case bat.KInt:
				row[c.Name] = int64(0)
			case bat.KFloat:
				row[c.Name] = 0.0
			case bat.KStr:
				row[c.Name] = ""
			default:
				t.Fatalf("unexpected column kind %v", c.KindOf)
			}
		}
	}
	return row
}

func newMaintainSpillEngine(t *testing.T, cat *catalog.Catalog, tier *Spill) *repro.Engine {
	t.Helper()
	eng := repro.NewEngine(cat, repro.WithRecycler(recycler.Config{
		Admission: recycler.KeepAll,
		Spill:     tier,
		Sync:      recycler.SyncMaintain,
	}))
	t.Cleanup(eng.Recycler().Close)
	return eng
}

// TestMaintainSpillRestart is the maintain mode crash-consistency
// contract: commit → maintain → SpillAll → restart → Prewarm must
// rehydrate the MAINTAINED content — the post-commit values, stamped
// at the post-commit table version — and serve it to the first query
// without recomputation.
func TestMaintainSpillRestart(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	engA := newMaintainSpillEngine(t, db.Cat, tier)
	res1, err := engA.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	before := countOf(t, res1)

	// Commit one row inside the box: maintain mode delta-patches the
	// pooled chain in place instead of invalidating it.
	tbl := db.Cat.MustTable("sky", "photoobj")
	tbl.Append([]catalog.Row{boxRow(t, tbl, int64(1<<60))})
	res2, err := engA.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res2); got != before+1 {
		t.Fatalf("maintained result %d, want %d", got, before+1)
	}
	if res2.Stats.Hits == 0 {
		t.Fatal("post-commit query recomputed instead of hitting the maintained pool")
	}
	stA := engA.Recycler().Snapshot()
	if stA.Maintained == 0 {
		t.Fatalf("commit maintained nothing: %+v", stA)
	}

	// Demote the maintained pool and restart.
	if engA.Recycler().SpillAll() == 0 {
		t.Fatal("SpillAll wrote nothing")
	}
	engB := newMaintainSpillEngine(t, db.Cat, tier)
	if n := engB.Recycler().Prewarm(); n == 0 {
		t.Fatal("prewarm admitted nothing after the maintained spill")
	}
	res3, err := engB.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res3); got != before+1 {
		t.Fatalf("post-restart result %d, want maintained %d", got, before+1)
	}
	if res3.Stats.Hits == 0 {
		t.Fatal("first post-restart query reported no pool hits")
	}
}

// TestMaintainStaleSpillDropped: records demoted BEFORE a commit hold
// pre-maintenance content; maintenance patches only the in-memory
// pool, so those records must drop lazily at the next prewarm rather
// than resurrect pre-commit data.
func TestMaintainStaleSpillDropped(t *testing.T) {
	db := sky.Generate(2000, 17)
	tier, err := openSpill(t.TempDir(), 0)
	if err != nil {
		t.Fatal(err)
	}
	engA := newMaintainSpillEngine(t, db.Cat, tier)
	res1, err := engA.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	before := countOf(t, res1)
	if engA.Recycler().SpillAll() == 0 {
		t.Fatal("SpillAll wrote nothing")
	}
	engA.Recycler().Close()

	// The commit happens after the spill (and after the recycler is
	// gone — a crash between demotion and restart): the tier's records
	// are now one version behind.
	tbl := db.Cat.MustTable("sky", "photoobj")
	tbl.Append([]catalog.Row{boxRow(t, tbl, int64(1<<60))})

	engB := newMaintainSpillEngine(t, db.Cat, tier)
	if n := engB.Recycler().Prewarm(); n != 0 {
		t.Fatalf("prewarm admitted %d pre-maintenance records", n)
	}
	if st := engB.Recycler().Snapshot(); st.StaleDropped == 0 {
		t.Fatalf("stale pre-maintenance records not dropped: %+v", st)
	}
	res2, err := engB.ExecSQL(boxQuery)
	if err != nil {
		t.Fatal(err)
	}
	if got := countOf(t, res2); got != before+1 {
		t.Fatalf("post-restart result %d, want recomputed %d", got, before+1)
	}
}
