package store

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bat"
	"repro/internal/mal"
)

// utf8Fixtures are multi-byte-rune strings (the PR 3 render fixtures):
// the codec must round-trip them byte-identically, including the nil
// sentinel and 4-byte emoji runes.
var utf8Fixtures = []string{
	"",
	bat.NilStr,
	"plain ascii",
	"héllo wörld",
	"日本語のテキスト",
	"a" + strings.Repeat("\U0001F642", 10),
	"mixed π≈3.14159 🚀 done",
}

func roundTripVector(t *testing.T, v bat.Vector) bat.Vector {
	t.Helper()
	e := &enc{}
	encodeVector(e, v)
	var buf bytes.Buffer
	if err := writeFrame(&buf, e.b); err != nil {
		t.Fatalf("writeFrame: %v", err)
	}
	payload, err := readFrame(&buf)
	if err != nil {
		t.Fatalf("readFrame: %v", err)
	}
	d := &dec{b: payload}
	out := decodeVector(d)
	if err := d.err(); err != nil || !d.done() {
		t.Fatalf("decode: err=%v done=%v", err, d.done())
	}
	return out
}

// vectorsEqual compares contents; float comparison is bit-exact so nil
// sentinels (NaN) compare equal.
func vectorsEqual(a, b bat.Vector) bool {
	if a.Kind() != b.Kind() || a.Len() != b.Len() {
		return false
	}
	for i := 0; i < a.Len(); i++ {
		av, bv := a.Get(i), b.Get(i)
		if af, ok := av.(float64); ok {
			if math.Float64bits(af) != math.Float64bits(bv.(float64)) {
				return false
			}
			continue
		}
		if av != bv {
			return false
		}
	}
	return true
}

func TestVectorRoundTripAllKinds(t *testing.T) {
	cases := []struct {
		name string
		v    bat.Vector
	}{
		{"oids", bat.NewOids([]bat.Oid{0, 7, bat.NilOid, 1 << 40})},
		{"oids-empty", bat.NewOids(nil)},
		{"dense", bat.NewDense(42, 1000)},
		{"dense-empty", bat.NewDense(0, 0)},
		{"ints", bat.NewInts([]int64{-5, 0, bat.NilInt, math.MaxInt64})},
		{"ints-empty", bat.NewInts(nil)},
		{"floats", bat.NewFloats([]float64{-1.5, 0, bat.NilFloat(), math.MaxFloat64, math.SmallestNonzeroFloat64})},
		{"floats-empty", bat.NewFloats(nil)},
		{"strings", bat.NewStrings(utf8Fixtures)},
		{"strings-empty", bat.NewStrings(nil)},
		{"dates", bat.NewDates([]bat.Date{0, -1, bat.NilDate, 20000})},
		{"dates-empty", bat.NewDates(nil)},
		{"bools", bat.NewBools([]bool{true, false, true})},
		{"bools-empty", bat.NewBools(nil)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			out := roundTripVector(t, tc.v)
			if !vectorsEqual(tc.v, out) {
				t.Fatalf("round trip mismatch: in %v out %v", tc.v, out)
			}
		})
	}
}

func TestDenseHeadStaysDense(t *testing.T) {
	out := roundTripVector(t, bat.NewDense(10, 5))
	if _, ok := out.(*bat.DenseOids); !ok {
		t.Fatalf("dense vector decoded as %T: the virtual representation must survive", out)
	}
}

// TestVectorRoundTripProperty fuzzes random vectors of every kind.
func TestVectorRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	runes := []rune("aβ語🙂x\x00é")
	for iter := 0; iter < 200; iter++ {
		n := rng.Intn(50)
		var v bat.Vector
		switch iter % 6 {
		case 0:
			s := make([]bat.Oid, n)
			for i := range s {
				s[i] = bat.Oid(rng.Uint64())
			}
			v = bat.NewOids(s)
		case 1:
			v = bat.NewDense(bat.Oid(rng.Uint64()>>16), n)
		case 2:
			s := make([]int64, n)
			for i := range s {
				s[i] = rng.Int63() - rng.Int63()
			}
			v = bat.NewInts(s)
		case 3:
			s := make([]float64, n)
			for i := range s {
				s[i] = rng.NormFloat64()
			}
			v = bat.NewFloats(s)
		case 4:
			s := make([]string, n)
			for i := range s {
				var sb strings.Builder
				for k := rng.Intn(12); k > 0; k-- {
					sb.WriteRune(runes[rng.Intn(len(runes))])
				}
				s[i] = sb.String()
			}
			v = bat.NewStrings(s)
		case 5:
			s := make([]bool, n)
			for i := range s {
				s[i] = rng.Intn(2) == 1
			}
			v = bat.NewBools(s)
		}
		out := roundTripVector(t, v)
		if !vectorsEqual(v, out) {
			t.Fatalf("iter %d: round trip mismatch for %T", iter, v)
		}
	}
}

func TestBATRoundTripPreservesFlags(t *testing.T) {
	b := bat.New(bat.NewDense(3, 4), bat.NewInts([]int64{1, 2, 3, 4}))
	b.TailSorted = true
	e := &enc{}
	encodeBAT(e, b)
	d := &dec{b: e.b}
	out := decodeBAT(d)
	if err := d.err(); err != nil || !d.done() {
		t.Fatalf("decode: err=%v done=%v", err, d.done())
	}
	if !out.TailSorted || !out.HeadSorted || !out.KeyUnique {
		t.Fatalf("flags lost: %+v", out)
	}
	if !vectorsEqual(b.Head, out.Head) || !vectorsEqual(b.Tail, out.Tail) {
		t.Fatal("columns lost")
	}
}

func TestValueRoundTrip(t *testing.T) {
	vals := []mal.Value{
		mal.IntV(-42),
		mal.FloatV(2.75),
		mal.StrV("héllo 🙂"),
		mal.DateV(bat.Date(12345)),
		mal.BoolV(true),
		mal.OidV(bat.Oid(99)),
		mal.VoidV(),
		mal.BatV(bat.NewDenseHead(bat.NewStrings(utf8Fixtures))),
	}
	for _, v := range vals {
		e := &enc{}
		encodeValue(e, v)
		d := &dec{b: e.b}
		out := decodeValue(d)
		if err := d.err(); err != nil || !d.done() {
			t.Fatalf("%v: decode err=%v done=%v", v.Kind, d.err(), d.done())
		}
		if out.Kind != v.Kind {
			t.Fatalf("kind changed: %v -> %v", v.Kind, out.Kind)
		}
		if v.Kind == mal.VBat {
			if !vectorsEqual(v.Bat.Tail, out.Bat.Tail) || !vectorsEqual(v.Bat.Head, out.Bat.Head) {
				t.Fatal("bat value lost")
			}
			continue
		}
		if !out.EqualConst(v) && math.Float64bits(out.F) != math.Float64bits(v.F) {
			t.Fatalf("value changed: %v -> %v", v, out)
		}
	}
}

func TestFrameRejectsCorruption(t *testing.T) {
	e := &enc{}
	encodeVector(e, bat.NewInts([]int64{1, 2, 3}))
	var buf bytes.Buffer
	if err := writeFrame(&buf, e.b); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one payload byte: CRC must reject.
	bad := append([]byte(nil), good...)
	bad[len(bad)-1] ^= 0xff
	if _, err := readFrame(bytes.NewReader(bad)); err != errTornFrame {
		t.Fatalf("corrupted frame: got %v, want errTornFrame", err)
	}

	// Truncate mid-payload: short read must reject.
	if _, err := readFrame(bytes.NewReader(good[:len(good)-2])); err != errTornFrame {
		t.Fatalf("truncated frame: got %v, want errTornFrame", err)
	}

	// Truncate mid-header.
	if _, err := readFrame(bytes.NewReader(good[:3])); err != errTornFrame {
		t.Fatalf("truncated header: got %v, want errTornFrame", err)
	}

	// Clean EOF at a frame boundary is not an error.
	if _, err := readFrame(bytes.NewReader(nil)); err == errTornFrame {
		t.Fatal("empty reader must be clean EOF, not torn")
	}

	// Absurd length header must not drive a giant allocation.
	huge := append([]byte(nil), good...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := readFrame(bytes.NewReader(huge)); err != errTornFrame {
		t.Fatalf("absurd length: got %v, want errTornFrame", err)
	}
}

func TestDecodeRejectsTruncatedPayload(t *testing.T) {
	e := &enc{}
	encodeVector(e, bat.NewStrings([]string{"abc", "def"}))
	for cut := 1; cut < len(e.b); cut++ {
		d := &dec{b: e.b[:cut]}
		decodeVector(d)
		if d.err() == nil && d.done() {
			t.Fatalf("cut at %d decoded cleanly", cut)
		}
	}
}
