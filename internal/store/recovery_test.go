package store

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/bat"
	"repro/internal/catalog"
)

// dmlStep is one statement of a recovery scenario, applied identically
// to the durable catalog and to the never-crashed reference.
type dmlStep func(cat *catalog.Catalog)

func insertPeople(rows ...[2]any) dmlStep {
	return func(cat *catalog.Catalog) {
		t := cat.MustTable("sys", "people")
		rs := make([]catalog.Row, len(rows))
		for i, r := range rows {
			rs[i] = catalog.Row{"id": r[0], "name": r[1]}
		}
		t.Append(rs)
	}
}

func deletePeople(oids ...bat.Oid) dmlStep {
	return func(cat *catalog.Catalog) {
		cat.MustTable("sys", "people").Delete(oids)
	}
}

func updatePeople(oid bat.Oid, name string) dmlStep {
	return func(cat *catalog.Catalog) {
		cat.MustTable("sys", "people").UpdateInPlace("name", []bat.Oid{oid}, []any{name})
	}
}

func createScores() dmlStep {
	return func(cat *catalog.Catalog) {
		cat.CreateTable("sys", "scores", []catalog.ColDef{
			{Name: "pid", Kind: bat.KInt},
			{Name: "score", Kind: bat.KFloat},
		})
	}
}

func insertScores(rows ...[2]any) dmlStep {
	return func(cat *catalog.Catalog) {
		t := cat.MustTable("sys", "scores")
		rs := make([]catalog.Row, len(rows))
		for i, r := range rows {
			rs[i] = catalog.Row{"pid": r[0], "score": r[1]}
		}
		t.Append(rs)
	}
}

// seedCatalog builds the base schema + bulk load every scenario starts
// from (what Bootstrap snapshots before any WAL record exists).
func seedCatalog() *catalog.Catalog {
	cat := catalog.New()
	t := cat.CreateTable("sys", "people", []catalog.ColDef{
		{Name: "id", Kind: bat.KInt, Sorted: true},
		{Name: "name", Kind: bat.KStr},
	})
	t.Append([]catalog.Row{
		{"id": int64(1), "name": "ada"},
		{"id": int64(2), "name": "grace"},
		{"id": int64(3), "name": "hédy 🙂"},
	})
	t.DefineKeyIndex("id")
	return cat
}

// catalogsEqual compares the full durable state of two catalogs,
// commit sequence and table versions included.
func catalogsEqual(t *testing.T, got, want *catalog.Catalog) {
	t.Helper()
	gt, gseq := got.ExportState()
	wt, wseq := want.ExportState()
	if gseq != wseq {
		t.Errorf("commit seq: got %d, want %d", gseq, wseq)
	}
	if len(gt) != len(wt) {
		t.Fatalf("table count: got %d, want %d", len(gt), len(wt))
	}
	for i := range gt {
		g, w := gt[i], wt[i]
		if g.Schema != w.Schema || g.Name != w.Name {
			t.Fatalf("table %d: got %s.%s, want %s.%s", i, g.Schema, g.Name, w.Schema, w.Name)
		}
		if g.NRows != w.NRows {
			t.Errorf("%s.%s rows: got %d, want %d", g.Schema, g.Name, g.NRows, w.NRows)
		}
		if g.Version != w.Version {
			t.Errorf("%s.%s version: got %d, want %d", g.Schema, g.Name, g.Version, w.Version)
		}
		if len(g.Deleted) != len(w.Deleted) {
			t.Errorf("%s.%s deleted: got %v, want %v", g.Schema, g.Name, g.Deleted, w.Deleted)
		} else {
			for j := range g.Deleted {
				if g.Deleted[j] != w.Deleted[j] {
					t.Errorf("%s.%s deleted[%d]: got %d, want %d", g.Schema, g.Name, j, g.Deleted[j], w.Deleted[j])
				}
			}
		}
		if len(g.Cols) != len(w.Cols) {
			t.Fatalf("%s.%s columns: got %d, want %d", g.Schema, g.Name, len(g.Cols), len(w.Cols))
		}
		for j := range g.Cols {
			if g.Cols[j] != w.Cols[j] {
				t.Errorf("%s.%s col %d def: got %+v, want %+v", g.Schema, g.Name, j, g.Cols[j], w.Cols[j])
			}
			if !vectorsEqual(g.Data[j], w.Data[j]) {
				t.Errorf("%s.%s.%s data mismatch", g.Schema, g.Name, g.Cols[j].Name)
			}
		}
		if len(g.KeyIndexCols) != len(w.KeyIndexCols) {
			t.Errorf("%s.%s key indexes: got %v, want %v", g.Schema, g.Name, g.KeyIndexCols, w.KeyIndexCols)
		}
	}
}

// runCrash bootstraps a store, applies pre steps, optionally
// checkpoints, applies post steps, then "crashes" (no checkpoint, no
// close) and recovers from disk. The recovered catalog must equal a
// reference that executed the same steps with no store at all.
func runCrash(t *testing.T, pre, post []dmlStep, midCheckpoint bool) (*Store, *catalog.Catalog) {
	t.Helper()
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := seedCatalog()
	if err := st.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	for _, s := range pre {
		s(cat)
	}
	if midCheckpoint {
		if err := st.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	for _, s := range post {
		s(cat)
	}
	// Crash: the store is abandoned with the WAL unclosed. SyncEvery=0
	// means every commit was fsynced, so the on-disk log is complete.
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st2.Close(); st.Close() })

	ref := seedCatalog()
	for _, s := range pre {
		s(ref)
	}
	for _, s := range post {
		s(ref)
	}
	catalogsEqual(t, recovered, ref)
	return st2, recovered
}

func TestCrashRecoveryInterleavings(t *testing.T) {
	cases := []struct {
		name          string
		pre, post     []dmlStep
		midCheckpoint bool
	}{
		{"inserts-only", nil, []dmlStep{
			insertPeople([2]any{int64(4), "alan"}),
			insertPeople([2]any{int64(5), "barbara"}, [2]any{int64(6), "ken"}),
		}, false},
		{"insert-delete", nil, []dmlStep{
			insertPeople([2]any{int64(4), "alan"}),
			deletePeople(1),
			insertPeople([2]any{int64(5), "barbara"}),
			deletePeople(3, 4),
		}, false},
		{"insert-delete-update", nil, []dmlStep{
			insertPeople([2]any{int64(4), "alan"}),
			updatePeople(0, "ada lovelace"),
			deletePeople(2),
			updatePeople(3, "turing"),
		}, false},
		{"create-table-mid-stream", nil, []dmlStep{
			insertPeople([2]any{int64(4), "alan"}),
			createScores(),
			insertScores([2]any{int64(1), 9.5}, [2]any{int64(4), 7.25}),
			deletePeople(1),
		}, false},
		{"checkpoint-then-tail", []dmlStep{
			insertPeople([2]any{int64(4), "alan"}),
			deletePeople(2),
		}, []dmlStep{
			insertPeople([2]any{int64(5), "barbara"}),
			updatePeople(0, "countess"),
		}, true},
		{"checkpoint-then-create", []dmlStep{
			createScores(),
			insertScores([2]any{int64(2), 5.5}),
		}, []dmlStep{
			insertScores([2]any{int64(3), 1.25}),
			deletePeople(1),
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			runCrash(t, tc.pre, tc.post, tc.midCheckpoint)
		})
	}
}

// TestTornTailDiscarded chops bytes off the final WAL record: recovery
// must detect the tear, discard exactly that record, and reproduce the
// reference state that never ran the final statement.
func TestTornTailDiscarded(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := seedCatalog()
	if err := st.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	insertPeople([2]any{int64(4), "alan"})(cat)
	deletePeople(1)(cat)
	insertPeople([2]any{int64(5), "torn-away"})(cat) // this one gets torn

	segs, err := listSegments(filepath.Join(dir, "wal"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no wal segments: %v", err)
	}
	last := segs[len(segs)-1]
	info, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(last, info.Size()-5); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.TornTail {
		t.Error("torn tail not reported")
	}
	if st2.Replayed != 2 {
		t.Errorf("replayed %d records, want 2 (torn third discarded)", st2.Replayed)
	}

	ref := seedCatalog()
	insertPeople([2]any{int64(4), "alan"})(ref)
	deletePeople(1)(ref)
	catalogsEqual(t, recovered, ref)
}

// TestTornTailGarbageAppended covers the other tear shape: a crash
// leaves trailing garbage that looks like a frame header but fails its
// checksum.
func TestTornTailGarbageAppended(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := seedCatalog()
	if err := st.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	insertPeople([2]any{int64(4), "alan"})(cat)

	segs, _ := listSegments(filepath.Join(dir, "wal"))
	f, err := os.OpenFile(segs[len(segs)-1], os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{16, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3})
	f.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !st2.TornTail || st2.Replayed != 1 {
		t.Errorf("torn=%v replayed=%d, want torn tail with 1 record", st2.TornTail, st2.Replayed)
	}
	ref := seedCatalog()
	insertPeople([2]any{int64(4), "alan"})(ref)
	catalogsEqual(t, recovered, ref)
}

// TestWALGapFailsRecovery: a missing commit mid-log (an append that
// failed while later ones succeeded) must fail recovery loudly, not
// replay the remaining records onto divergent state.
func TestWALGapFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := seedCatalog()
	if err := st.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	insertPeople([2]any{int64(4), "alan"})(cat)
	insertPeople([2]any{int64(5), "barbara"})(cat)
	insertPeople([2]any{int64(6), "ken"})(cat)

	// Rewrite the active segment dropping the middle record.
	segs, _ := listSegments(filepath.Join(dir, "wal"))
	last := segs[len(segs)-1]
	f, err := os.Open(last)
	if err != nil {
		t.Fatal(err)
	}
	var frames [][]byte
	for {
		p, err := readFrame(f)
		if err != nil {
			break
		}
		frames = append(frames, p)
	}
	f.Close()
	if len(frames) != 3 {
		t.Fatalf("expected 3 WAL frames, got %d", len(frames))
	}
	out, err := os.Create(last)
	if err != nil {
		t.Fatal(err)
	}
	writeFrame(out, frames[0])
	writeFrame(out, frames[2])
	out.Close()

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Recover(); err == nil {
		t.Fatal("recovery over a WAL gap succeeded; want loud failure")
	}
	st2.Close()
}

// TestCheckpointRetiresSegments verifies a checkpoint leaves nothing
// to replay and deletes the covered segments.
func TestCheckpointRetiresSegments(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := seedCatalog()
	if err := st.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		insertPeople([2]any{int64(10 + i), "x"})(cat)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Replayed != 0 {
		t.Errorf("replayed %d records after checkpoint, want 0", st2.Replayed)
	}
	catalogsEqual(t, recovered, cat)
	segs, _ := listSegments(filepath.Join(dir, "wal"))
	// Only segments opened after the last checkpoint may remain, and
	// they must all be empty.
	for _, s := range segs {
		if info, err := os.Stat(s); err == nil && info.Size() > 0 {
			t.Errorf("retired segment %s still has %d bytes", filepath.Base(s), info.Size())
		}
	}
}

// TestBatchedSyncStillRecovers exercises the fsync-batched WAL mode:
// with SyncEvery > 0 a graceful close must flush everything.
func TestBatchedSyncStillRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{SyncEvery: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	cat := seedCatalog()
	if err := st.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	insertPeople([2]any{int64(4), "alan"})(cat)
	deletePeople(0)(cat)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recovered, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ref := seedCatalog()
	insertPeople([2]any{int64(4), "alan"})(ref)
	deletePeople(0)(ref)
	catalogsEqual(t, recovered, ref)
}

// TestRecoveredCatalogAcceptsNewCommits closes the loop: a recovered
// store keeps logging, and a second recovery sees both generations.
func TestRecoveredCatalogAcceptsNewCommits(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	cat := seedCatalog()
	if err := st.Bootstrap(cat); err != nil {
		t.Fatal(err)
	}
	insertPeople([2]any{int64(4), "alan"})(cat)

	st2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen2, err := st2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	insertPeople([2]any{int64(5), "barbara"})(gen2)
	deletePeople(1)(gen2)

	st3, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	gen3, err := st3.Recover()
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()

	ref := seedCatalog()
	insertPeople([2]any{int64(4), "alan"})(ref)
	insertPeople([2]any{int64(5), "barbara"})(ref)
	deletePeople(1)(ref)
	catalogsEqual(t, gen3, ref)

	// The recovered key index must behave like the reference's.
	if o, ok := gen3.MustTable("sys", "people").LookupKey("id", 5); !ok || o != 4 {
		t.Errorf("recovered key index lookup: got (%d, %v), want (4, true)", o, ok)
	}
	if _, ok := gen3.MustTable("sys", "people").LookupKey("id", 2); ok {
		t.Error("tombstoned row still visible through recovered key index")
	}
}
