package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/bat"
	"repro/internal/catalog"
)

// The write-ahead log is a directory of numbered segment files, each a
// sequence of CRC32-checked frames holding one catalog.CommitRecord
// per frame. Appends go to the newest segment; a checkpoint rotates to
// a fresh segment before exporting the catalog, so every record in an
// older segment is guaranteed to be covered by the snapshot (records
// race into the *new* segment during the export, which is harmless:
// each record carries its commit sequence number and replay skips
// anything the snapshot already contains).
//
// Durability is batched: appends land in the OS page cache immediately
// and a background syncer fsyncs the segment at most every SyncEvery.
// SyncEvery = 0 degrades to one fsync per commit (group commit off).
// A crash can therefore lose up to SyncEvery of committed statements —
// and, independently, tear the final record mid-write. Replay detects
// a torn or checksum-failing tail frame, truncates the segment back to
// the last whole record and stops; torn frames anywhere but the final
// segment's tail are real corruption and fail recovery.

type wal struct {
	dir string

	mu      sync.Mutex
	f       *os.File
	seg     int
	dirty   bool
	pending int // records appended since the last fsync (batch size)

	syncEvery time.Duration
	// onFsync, when set, observes each fsync: the number of records the
	// batch covered and the fsync's own duration. It runs under w.mu —
	// implementations must be cheap and lock-free (histogram
	// observations; never trace-recorder calls).
	onFsync func(records int, d time.Duration)
	stopc   chan struct{}
	done    chan struct{}
}

func segName(n int) string { return fmt.Sprintf("wal-%08d.log", n) }

// listSegments returns the existing segment paths in ascending order.
func listSegments(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &n); err == nil {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	paths := make([]string, len(names))
	for i, n := range names {
		paths[i] = filepath.Join(dir, n)
	}
	return paths, nil
}

// openWAL opens the log directory for appending. Existing segments are
// left untouched (recovery reads them); appends always start a fresh
// segment so a truncated tail is never appended after.
func openWAL(dir string, syncEvery time.Duration, onFsync func(int, time.Duration)) (*wal, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	next := 1
	if len(segs) > 0 {
		fmt.Sscanf(filepath.Base(segs[len(segs)-1]), "wal-%08d.log", &next)
		next++
	}
	w := &wal{dir: dir, seg: next, syncEvery: syncEvery, onFsync: onFsync}
	if err := w.openSegmentLocked(); err != nil {
		return nil, err
	}
	if syncEvery > 0 {
		w.stopc = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop()
	}
	return w, nil
}

// openSegmentLocked creates the active segment file. Caller holds w.mu
// (or is the constructor).
func (w *wal) openSegmentLocked() error {
	f, err := os.OpenFile(filepath.Join(w.dir, segName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	return nil
}

// append frames one payload onto the active segment. With batching
// enabled the write is durable only after the next background fsync.
func (w *wal) append(payload []byte) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return fmt.Errorf("store: wal is closed")
	}
	if err := writeFrame(w.f, payload); err != nil {
		return err
	}
	w.pending++
	if w.syncEvery == 0 {
		// Group commit off: one fsync per record.
		w.dirty = true
		return w.syncLocked()
	}
	w.dirty = true
	return nil
}

// sync flushes the active segment if it has unsynced appends.
func (w *wal) sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncLocked()
}

func (w *wal) syncLocked() error {
	if w.f == nil || !w.dirty {
		return nil
	}
	w.dirty = false
	n := w.pending
	w.pending = 0
	if w.onFsync == nil {
		return w.f.Sync()
	}
	t0 := time.Now()
	err := w.f.Sync()
	w.onFsync(n, time.Since(t0))
	return err
}

func (w *wal) syncLoop() {
	defer close(w.done)
	t := time.NewTicker(w.syncEvery)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			w.sync()
		case <-w.stopc:
			return
		}
	}
}

// rotate syncs and retires the active segment, opens the next one and
// returns the paths of all older segments (the checkpoint deletes them
// once the snapshot is durable).
func (w *wal) rotate() ([]string, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil, fmt.Errorf("store: wal is closed")
	}
	if err := w.syncLocked(); err != nil {
		return nil, err
	}
	if err := w.f.Close(); err != nil {
		return nil, err
	}
	old := make([]string, 0, w.seg)
	for n := 1; n <= w.seg; n++ {
		p := filepath.Join(w.dir, segName(n))
		if _, err := os.Stat(p); err == nil {
			old = append(old, p)
		}
	}
	w.seg++
	if err := w.openSegmentLocked(); err != nil {
		w.f = nil
		return nil, err
	}
	return old, nil
}

// close stops the syncer and durably closes the active segment.
func (w *wal) close() error {
	if w.stopc != nil {
		close(w.stopc)
		<-w.done
		w.stopc = nil
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.f == nil {
		return nil
	}
	err := w.syncLocked()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayWAL reads every segment in order and applies each record with
// Seq > minSeq. A torn tail in the final segment is truncated away and
// reported through tornTail; a torn frame anywhere else fails. Returns
// the number of records applied.
func replayWAL(dir string, minSeq uint64, apply func(catalog.CommitRecord) error) (applied int, tornTail bool, err error) {
	segs, err := listSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, false, nil
		}
		return 0, false, err
	}
	for i, seg := range segs {
		last := i == len(segs)-1
		n, torn, err := replaySegment(seg, last, minSeq, apply)
		applied += n
		if err != nil {
			return applied, torn, err
		}
		if torn {
			tornTail = true
		}
	}
	return applied, tornTail, nil
}

func replaySegment(path string, last bool, minSeq uint64, apply func(catalog.CommitRecord) error) (applied int, torn bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var good int64
	for {
		payload, rerr := readFrame(f)
		if rerr == io.EOF {
			return applied, false, nil
		}
		if rerr == errTornFrame {
			if !last {
				return applied, false, fmt.Errorf("store: corrupt WAL frame mid-log in %s", filepath.Base(path))
			}
			// Crash mid-append: discard the torn tail so it is never
			// replayed, and never appended after (appends use a fresh
			// segment anyway; the truncate keeps the log tidy).
			f.Close()
			if terr := os.Truncate(path, good); terr != nil {
				return applied, true, terr
			}
			return applied, true, nil
		}
		if rerr != nil {
			return applied, false, rerr
		}
		rec, derr := decodeCommit(payload)
		if derr != nil {
			return applied, false, fmt.Errorf("store: undecodable WAL record in %s: %w", filepath.Base(path), derr)
		}
		if rec.Seq > minSeq {
			if aerr := apply(rec); aerr != nil {
				return applied, false, aerr
			}
			applied++
		}
		pos, perr := f.Seek(0, io.SeekCurrent)
		if perr != nil {
			return applied, false, perr
		}
		good = pos
	}
}

// --- commit record codec --------------------------------------------------

func encodeCommit(rec catalog.CommitRecord) []byte {
	e := &enc{}
	e.u8(uint8(rec.Kind))
	e.u64(rec.Seq)
	e.str(rec.Schema)
	e.str(rec.Name)
	switch rec.Kind {
	case catalog.CommitCreate:
		e.u32(uint32(len(rec.Cols)))
		for _, d := range rec.Cols {
			e.str(d.Name)
			e.u8(uint8(d.Kind))
			if d.Sorted {
				e.u8(1)
			} else {
				e.u8(0)
			}
		}
	case catalog.CommitInsert:
		e.u64(uint64(rec.FirstOid))
		e.u32(uint32(rec.NumRows))
		cols := make([]string, 0, len(rec.Inserts))
		for c := range rec.Inserts {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		e.u32(uint32(len(cols)))
		for _, c := range cols {
			e.str(c)
			encodeVector(e, rec.Inserts[c])
		}
	case catalog.CommitDelete:
		e.u32(uint32(len(rec.Deleted)))
		for _, o := range rec.Deleted {
			e.u64(uint64(o))
		}
	case catalog.CommitUpdate:
		e.str(rec.UpdCol)
		e.u32(uint32(len(rec.UpdOids)))
		for _, o := range rec.UpdOids {
			e.u64(uint64(o))
		}
		encodeVector(e, rec.UpdVals)
	case catalog.CommitDrop:
	}
	return e.b
}

func decodeCommit(payload []byte) (catalog.CommitRecord, error) {
	d := &dec{b: payload}
	rec := catalog.CommitRecord{
		Kind:   catalog.CommitKind(d.u8()),
		Seq:    d.u64(),
		Schema: d.str(),
		Name:   d.str(),
	}
	switch rec.Kind {
	case catalog.CommitCreate:
		n := int(d.u32())
		if n < 0 || n > maxFramePayload {
			d.fail = true
			n = 0
		}
		for i := 0; i < n && !d.fail; i++ {
			def := catalog.ColDef{Name: d.str(), Kind: bat.Kind(d.u8()), Sorted: d.u8() != 0}
			rec.Cols = append(rec.Cols, def)
		}
	case catalog.CommitInsert:
		rec.FirstOid = bat.Oid(d.u64())
		rec.NumRows = int(d.u32())
		n := int(d.u32())
		if rec.NumRows < 0 || rec.NumRows > maxFramePayload || n < 0 || n > maxFramePayload {
			d.fail = true
			n = 0
		}
		rec.Inserts = make(map[string]bat.Vector, min(n, 1024))
		for i := 0; i < n && !d.fail; i++ {
			c := d.str()
			rec.Inserts[c] = decodeVector(d)
		}
	case catalog.CommitDelete:
		n := int(d.u32())
		if n > maxFramePayload {
			d.fail = true
			n = 0
		}
		rec.Deleted = make([]bat.Oid, 0, n)
		for i := 0; i < n && !d.fail; i++ {
			rec.Deleted = append(rec.Deleted, bat.Oid(d.u64()))
		}
	case catalog.CommitUpdate:
		rec.UpdCol = d.str()
		n := int(d.u32())
		if n > maxFramePayload {
			d.fail = true
			n = 0
		}
		rec.UpdOids = make([]bat.Oid, 0, n)
		for i := 0; i < n && !d.fail; i++ {
			rec.UpdOids = append(rec.UpdOids, bat.Oid(d.u64()))
		}
		rec.UpdVals = decodeVector(d)
	case catalog.CommitDrop:
	default:
		return rec, ErrCorrupt
	}
	if !d.done() {
		return rec, ErrCorrupt
	}
	return rec, nil
}
