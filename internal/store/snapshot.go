package store

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/bat"
	"repro/internal/catalog"
)

// A snapshot is one file holding a full columnar checkpoint of the
// catalog: a header frame (magic, format version, commit sequence,
// table count), then per table a metadata frame followed by one frame
// per column vector, and a trailing end marker. Every frame is CRC32-
// checked. The file is written to a temporary name, fsynced and
// renamed over the live snapshot, so a crash mid-checkpoint leaves the
// previous snapshot intact — a snapshot either loads completely or the
// recovery fails loudly (unlike the WAL, a half snapshot is never a
// normal crash artefact).

const (
	snapshotMagic   = "RPSNAP"
	snapshotVersion = 1
	snapshotEnd     = "RPEND"
	snapshotFile    = "snapshot.dat"
)

// writeSnapshot serialises the exported tables at commit sequence seq
// into dir/snapshot.dat, atomically.
func writeSnapshot(dir string, tables []catalog.TableState, seq uint64) error {
	tmp, err := os.CreateTemp(dir, "snapshot-*.tmp")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())

	hdr := &enc{}
	hdr.str(snapshotMagic)
	hdr.u32(snapshotVersion)
	hdr.u64(seq)
	hdr.u32(uint32(len(tables)))
	if err := writeFrame(tmp, hdr.b); err != nil {
		tmp.Close()
		return err
	}
	for _, ts := range tables {
		meta := &enc{}
		meta.str(ts.Schema)
		meta.str(ts.Name)
		meta.u64(uint64(ts.NRows))
		meta.i64(ts.Version)
		meta.u64(ts.Created)
		meta.u32(uint32(len(ts.Cols)))
		for _, d := range ts.Cols {
			meta.str(d.Name)
			meta.u8(uint8(d.Kind))
			if d.Sorted {
				meta.u8(1)
			} else {
				meta.u8(0)
			}
		}
		meta.u32(uint32(len(ts.Deleted)))
		for _, o := range ts.Deleted {
			meta.u64(uint64(o))
		}
		meta.u32(uint32(len(ts.KeyIndexCols)))
		for _, c := range ts.KeyIndexCols {
			meta.str(c)
		}
		meta.u32(uint32(len(ts.JoinIndexes)))
		for _, j := range ts.JoinIndexes {
			meta.str(j.Name)
			meta.str(j.FKCol)
			meta.str(j.ParentSchema)
			meta.str(j.ParentName)
			meta.str(j.ParentKey)
		}
		if err := writeFrame(tmp, meta.b); err != nil {
			tmp.Close()
			return err
		}
		for _, v := range ts.Data {
			col := &enc{}
			encodeVector(col, v)
			if err := writeFrame(tmp, col.b); err != nil {
				tmp.Close()
				return err
			}
		}
	}
	end := &enc{}
	end.str(snapshotEnd)
	if err := writeFrame(tmp, end.b); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	final := filepath.Join(dir, snapshotFile)
	if err := os.Rename(tmp.Name(), final); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// loadSnapshot reads dir/snapshot.dat. ok=false reports that no
// snapshot exists (a fresh store); any other failure is corruption.
func loadSnapshot(dir string) (tables []catalog.TableState, seq uint64, ok bool, err error) {
	f, err := os.Open(filepath.Join(dir, snapshotFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, false, nil
		}
		return nil, 0, false, err
	}
	defer f.Close()

	frame := func() (*dec, error) {
		payload, err := readFrame(f)
		if err != nil {
			if err == io.EOF || err == errTornFrame {
				return nil, fmt.Errorf("store: snapshot truncated: %w", ErrCorrupt)
			}
			return nil, err
		}
		return &dec{b: payload}, nil
	}

	hdr, err := frame()
	if err != nil {
		return nil, 0, false, err
	}
	if hdr.str() != snapshotMagic || hdr.u32() != snapshotVersion {
		return nil, 0, false, fmt.Errorf("store: bad snapshot header: %w", ErrCorrupt)
	}
	seq = hdr.u64()
	nTables := int(hdr.u32())
	if err := hdr.err(); err != nil || !hdr.done() {
		return nil, 0, false, fmt.Errorf("store: bad snapshot header: %w", ErrCorrupt)
	}
	for i := 0; i < nTables; i++ {
		meta, err := frame()
		if err != nil {
			return nil, 0, false, err
		}
		ts := catalog.TableState{
			Schema:  meta.str(),
			Name:    meta.str(),
			NRows:   int(meta.u64()),
			Version: meta.i64(),
			Created: meta.u64(),
		}
		nCols := int(meta.u32())
		for c := 0; c < nCols && !meta.fail; c++ {
			ts.Cols = append(ts.Cols, catalog.ColDef{Name: meta.str(), Kind: bat.Kind(meta.u8()), Sorted: meta.u8() != 0})
		}
		nDel := int(meta.u32())
		for c := 0; c < nDel && !meta.fail; c++ {
			ts.Deleted = append(ts.Deleted, bat.Oid(meta.u64()))
		}
		nKey := int(meta.u32())
		for c := 0; c < nKey && !meta.fail; c++ {
			ts.KeyIndexCols = append(ts.KeyIndexCols, meta.str())
		}
		nJoin := int(meta.u32())
		for c := 0; c < nJoin && !meta.fail; c++ {
			ts.JoinIndexes = append(ts.JoinIndexes, catalog.JoinIndexDef{
				Name: meta.str(), FKCol: meta.str(),
				ParentSchema: meta.str(), ParentName: meta.str(), ParentKey: meta.str(),
			})
		}
		if err := meta.err(); err != nil || !meta.done() {
			return nil, 0, false, fmt.Errorf("store: bad table metadata in snapshot: %w", ErrCorrupt)
		}
		for c := 0; c < len(ts.Cols); c++ {
			col, err := frame()
			if err != nil {
				return nil, 0, false, err
			}
			v := decodeVector(col)
			if err := col.err(); err != nil || !col.done() {
				return nil, 0, false, fmt.Errorf("store: bad column vector in snapshot: %w", ErrCorrupt)
			}
			ts.Data = append(ts.Data, v)
		}
		tables = append(tables, ts)
	}
	end, err := frame()
	if err != nil {
		return nil, 0, false, err
	}
	if end.str() != snapshotEnd || !end.done() {
		return nil, 0, false, fmt.Errorf("store: missing snapshot end marker: %w", ErrCorrupt)
	}
	return tables, seq, true, nil
}
