package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/bat"
	"repro/internal/mal"
)

// This file implements the binary columnar codec every durable artefact
// is built from. The unit of I/O is a *frame*:
//
//	u32 payload length | u32 CRC32(payload) | payload
//
// all little-endian. A frame either reads back byte-identical or it is
// rejected: a short header, a short payload or a CRC mismatch all
// surface as errTornFrame, which the WAL replayer uses to distinguish
// a torn tail (expected after a crash mid-append) from a clean end of
// log (io.EOF exactly at a frame boundary). Payloads are decoded with a
// cursor that latches the first error, so corrupt bytes degrade into
// ErrCorrupt rather than panics.

// ErrCorrupt reports a frame whose payload decoded inconsistently —
// the checksum matched but the contents violate the format.
var ErrCorrupt = errors.New("store: corrupt payload")

// errTornFrame reports a frame that ended early or failed its
// checksum; at the tail of a WAL segment this is the signature of a
// crash mid-append and is recovered from by truncation.
var errTornFrame = errors.New("store: torn frame")

// maxFramePayload bounds a frame so a corrupted length header cannot
// drive a multi-gigabyte allocation.
const maxFramePayload = 1 << 30

func writeFrame(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one frame. io.EOF reports a clean end exactly at a
// frame boundary; errTornFrame reports a partial or corrupted frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return nil, io.EOF
		}
		return nil, errTornFrame
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > maxFramePayload {
		return nil, errTornFrame
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, errTornFrame
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, errTornFrame
	}
	return payload, nil
}

// enc builds a frame payload. Appends never fail; the frame writer
// owns the I/O error surface.
type enc struct{ b []byte }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }
func (e *enc) u32(v uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, v)
}
func (e *enc) u64(v uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, v)
}
func (e *enc) i64(v int64) { e.u64(uint64(v)) }
func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec is a cursor over a frame payload that latches the first error:
// after a failure every read returns zero values and err() reports
// ErrCorrupt, so decoders can run straight-line without per-field
// checks.
type dec struct {
	b    []byte
	off  int
	fail bool
}

func (d *dec) err() error {
	if d.fail {
		return ErrCorrupt
	}
	return nil
}

func (d *dec) take(n int) []byte {
	if d.fail || n < 0 || d.off+n > len(d.b) {
		d.fail = true
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}

func (d *dec) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *dec) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *dec) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) str() string {
	n := int(d.u32())
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}

// done reports whether the cursor consumed the payload exactly.
func (d *dec) done() bool { return !d.fail && d.off == len(d.b) }

// --- vectors ------------------------------------------------------------

// Vector tags. Dense oid sequences keep their virtual representation
// (start + length) so a round-tripped dense head stays zero-cost.
const (
	tagOids uint8 = iota
	tagDense
	tagInts
	tagFloats
	tagStrings
	tagDates
	tagBools
)

// encodeVector appends the per-kind encoding of v.
func encodeVector(e *enc, v bat.Vector) {
	switch t := v.(type) {
	case *bat.Oids:
		e.u8(tagOids)
		e.u64(uint64(len(t.V)))
		for _, o := range t.V {
			e.u64(uint64(o))
		}
	case *bat.DenseOids:
		e.u8(tagDense)
		e.u64(uint64(t.Start))
		e.u64(uint64(t.N))
	case *bat.Ints:
		e.u8(tagInts)
		e.u64(uint64(len(t.V)))
		for _, x := range t.V {
			e.i64(x)
		}
	case *bat.Floats:
		e.u8(tagFloats)
		e.u64(uint64(len(t.V)))
		for _, x := range t.V {
			e.u64(math.Float64bits(x))
		}
	case *bat.Strings:
		e.u8(tagStrings)
		e.u64(uint64(len(t.V)))
		for _, s := range t.V {
			e.str(s)
		}
	case *bat.Dates:
		e.u8(tagDates)
		e.u64(uint64(len(t.V)))
		for _, x := range t.V {
			e.u32(uint32(x))
		}
	case *bat.Bools:
		e.u8(tagBools)
		e.u64(uint64(len(t.V)))
		for _, x := range t.V {
			if x {
				e.u8(1)
			} else {
				e.u8(0)
			}
		}
	default:
		panic(fmt.Sprintf("store: encode of unknown vector type %T", v))
	}
}

// decodeVector reads one vector; on malformed input the cursor latches
// and a zero-length vector is returned.
func decodeVector(d *dec) bat.Vector {
	tag := d.u8()
	if tag == tagDense {
		start := bat.Oid(d.u64())
		n := int(d.u64())
		if d.fail || n < 0 {
			d.fail = true
			return bat.NewDense(0, 0)
		}
		return bat.NewDense(start, n)
	}
	n := int(d.u64())
	if d.fail || n < 0 || n > maxFramePayload {
		d.fail = true
		n = 0
	}
	switch tag {
	case tagOids:
		v := make([]bat.Oid, n)
		for i := range v {
			v[i] = bat.Oid(d.u64())
		}
		return bat.NewOids(v)
	case tagInts:
		v := make([]int64, n)
		for i := range v {
			v[i] = d.i64()
		}
		return bat.NewInts(v)
	case tagFloats:
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Float64frombits(d.u64())
		}
		return bat.NewFloats(v)
	case tagStrings:
		v := make([]string, n)
		for i := range v {
			v[i] = d.str()
		}
		return bat.NewStrings(v)
	case tagDates:
		v := make([]bat.Date, n)
		for i := range v {
			v[i] = bat.Date(d.u32())
		}
		return bat.NewDates(v)
	case tagBools:
		v := make([]bool, n)
		for i := range v {
			v[i] = d.u8() != 0
		}
		return bat.NewBools(v)
	}
	d.fail = true
	return bat.NewOids(nil)
}

// --- BATs and values ----------------------------------------------------

const (
	flagTailSorted uint8 = 1 << iota
	flagHeadSorted
	flagKeyUnique
)

// encodeBAT appends head, tail and the sortedness flags.
func encodeBAT(e *enc, b *bat.BAT) {
	encodeVector(e, b.Head)
	encodeVector(e, b.Tail)
	var f uint8
	if b.TailSorted {
		f |= flagTailSorted
	}
	if b.HeadSorted {
		f |= flagHeadSorted
	}
	if b.KeyUnique {
		f |= flagKeyUnique
	}
	e.u8(f)
}

func decodeBAT(d *dec) *bat.BAT {
	head := decodeVector(d)
	tail := decodeVector(d)
	f := d.u8()
	if d.fail || head.Len() != tail.Len() {
		d.fail = true
		return bat.New(bat.NewDense(0, 0), bat.EmptyVector(bat.KOid))
	}
	b := bat.New(head, tail)
	b.TailSorted = f&flagTailSorted != 0
	b.HeadSorted = f&flagHeadSorted != 0
	b.KeyUnique = f&flagKeyUnique != 0
	return b
}

// encodeValue appends a runtime value: the value kind, then the BAT or
// scalar payload. Provenance is deliberately not encoded — pool entry
// ids are meaningless across processes; the spill tier re-assigns them
// on reload.
func encodeValue(e *enc, v mal.Value) {
	e.u8(uint8(v.Kind))
	switch v.Kind {
	case mal.VBat:
		if v.Bat == nil {
			e.u8(0)
			return
		}
		e.u8(1)
		encodeBAT(e, v.Bat)
	case mal.VInt:
		e.i64(v.I)
	case mal.VFloat:
		e.u64(math.Float64bits(v.F))
	case mal.VStr:
		e.str(v.S)
	case mal.VDate:
		e.u32(uint32(v.D))
	case mal.VBool:
		if v.B {
			e.u8(1)
		} else {
			e.u8(0)
		}
	case mal.VOid:
		e.u64(uint64(v.O))
	case mal.VVoid:
	default:
		panic(fmt.Sprintf("store: encode of unknown value kind %v", v.Kind))
	}
}

func decodeValue(d *dec) mal.Value {
	kind := mal.ValueKind(d.u8())
	switch kind {
	case mal.VBat:
		if d.u8() == 0 {
			return mal.Value{Kind: mal.VBat}
		}
		return mal.BatV(decodeBAT(d))
	case mal.VInt:
		return mal.IntV(d.i64())
	case mal.VFloat:
		return mal.FloatV(math.Float64frombits(d.u64()))
	case mal.VStr:
		return mal.StrV(d.str())
	case mal.VDate:
		return mal.DateV(bat.Date(d.u32()))
	case mal.VBool:
		return mal.BoolV(d.u8() != 0)
	case mal.VOid:
		return mal.OidV(bat.Oid(d.u64()))
	case mal.VVoid:
		return mal.VoidV()
	}
	d.fail = true
	return mal.VoidV()
}
