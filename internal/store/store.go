package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/catalog"
)

// Options parametrise a Store.
type Options struct {
	// SyncEvery is the WAL fsync batching window: commits become
	// durable at most this long after they are acknowledged. 0 fsyncs
	// every commit (maximum durability, minimum throughput).
	SyncEvery time.Duration
	// SpillBudget caps the disk tier's total bytes (0 = unlimited).
	SpillBudget int64
	// OnFsync, when set, observes every WAL fsync batch: how many
	// commit records the batch covered and the fsync's duration. The
	// callback runs under the WAL mutex — and, when group commit is
	// off, inside the catalog's commit hook — so it must be cheap and
	// wait-free (a histogram observation; never a trace-recorder call).
	OnFsync func(records int, d time.Duration)
}

// Store is the persistence subsystem: an append-only WAL of committed
// DML, periodic full columnar snapshots, and a disk tier for evicted
// recycle pool entries. One Store owns one data directory:
//
//	<dir>/snapshot.dat   latest full checkpoint
//	<dir>/wal/           commit log segments since that checkpoint
//	<dir>/spill/         demoted recycle pool entries
//
// Lifecycle: Open the directory, then either Recover (a snapshot
// exists: rebuild the catalog and replay the WAL tail) or Bootstrap
// (fresh directory: attach to a generated catalog and write the
// initial checkpoint). Either path leaves the store attached — every
// subsequent committed statement is WAL-logged via the catalog's
// commit hook, in commit order, before Checkpoint folds the log back
// into a new snapshot.
type Store struct {
	dir  string
	opts Options

	wal   *wal
	spill *Spill

	mu  sync.Mutex // serialises Checkpoint/Close against each other
	cat *catalog.Catalog

	// walErr latches the first WAL append failure (e.g. disk full)
	// since the last successful checkpoint. Commits are never blocked
	// on it — the engine stays available — but Checkpoint and Close
	// surface it as "durability was degraded in this window". A
	// successful checkpoint clears it: the new snapshot covers every
	// committed statement, logged or not, so durability is whole again.
	walErr atomic.Pointer[error]

	// TornTail reports that recovery found (and discarded) a torn
	// final WAL record — the expected artefact of a crash mid-append.
	TornTail bool
	// Replayed counts the WAL records applied by Recover.
	Replayed int
}

// Open prepares a store over the data directory, creating it if
// needed. No catalog is attached yet: call Recover or Bootstrap.
func Open(dir string, opts Options) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sp, err := openSpill(filepath.Join(dir, "spill"), opts.SpillBudget)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, opts: opts, spill: sp}, nil
}

// HasSnapshot reports whether the directory holds a checkpoint to
// recover from.
func (s *Store) HasSnapshot() bool {
	_, err := os.Stat(filepath.Join(s.dir, snapshotFile))
	return err == nil
}

// Spill returns the disk tier for the recycle pool (never nil).
func (s *Store) Spill() *Spill { return s.spill }

// Err returns the WAL append error latched since the last successful
// checkpoint, if any.
func (s *Store) Err() error {
	if p := s.walErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Recover rebuilds the catalog: load the latest snapshot, replay the
// WAL tail (skipping records the snapshot already covers, discarding a
// torn final record), rebuild the derived indexes, and attach the
// commit hook so new statements are logged.
func (s *Store) Recover() (*catalog.Catalog, error) {
	tables, seq, ok, err := loadSnapshot(s.dir)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("store: no snapshot in %s (fresh directory? use Bootstrap)", s.dir)
	}
	cat := catalog.New()
	for _, ts := range tables {
		if _, err := cat.ImportTable(ts); err != nil {
			return nil, err
		}
	}
	// Join indexes after all tables exist (parents may import later).
	for _, ts := range tables {
		t := cat.MustTable(ts.Schema, ts.Name)
		for _, j := range ts.JoinIndexes {
			parent := cat.Table(j.ParentSchema, j.ParentName)
			if parent == nil {
				return nil, fmt.Errorf("store: join index %s on %s.%s references missing table %s.%s",
					j.Name, ts.Schema, ts.Name, j.ParentSchema, j.ParentName)
			}
			t.DefineJoinIndex(j.Name, j.FKCol, parent, j.ParentKey)
		}
	}
	cat.RestoreCommitSeq(seq)
	applied, torn, err := replayWAL(filepath.Join(s.dir, "wal"), seq, func(rec catalog.CommitRecord) error {
		// Continuity check: the log must hold every commit after the
		// snapshot. A gap means an append failed mid-run (the latched
		// walErr was never surfaced by a checkpoint before the crash)
		// and the statements after it replayed onto the wrong state —
		// fail loudly rather than recover a silently divergent catalog.
		if want := cat.CommitSeq() + 1; rec.Seq != want {
			return fmt.Errorf("store: WAL gap: expected commit seq %d, found %d (an append failed before the crash)", want, rec.Seq)
		}
		return applyCommit(cat, rec)
	})
	if err != nil {
		return nil, err
	}
	s.Replayed, s.TornTail = applied, torn
	if err := s.attach(cat); err != nil {
		return nil, err
	}
	return cat, nil
}

// Bootstrap attaches the store to a freshly generated catalog and
// writes the initial checkpoint, so the (possibly large) bulk load is
// captured by the snapshot instead of the log.
func (s *Store) Bootstrap(cat *catalog.Catalog) error {
	if err := s.attach(cat); err != nil {
		return err
	}
	return s.Checkpoint()
}

// attach opens the WAL for appending and installs the commit hook.
func (s *Store) attach(cat *catalog.Catalog) error {
	w, err := openWAL(filepath.Join(s.dir, "wal"), s.opts.SyncEvery, s.opts.OnFsync)
	if err != nil {
		return err
	}
	s.wal = w
	s.cat = cat
	cat.SetCommitHook(func(rec catalog.CommitRecord) {
		// Runs under the catalog write lock: append order = commit
		// order. The append lands in the page cache; the batched
		// syncer makes it durable within SyncEvery.
		//lint:allow lockorder WAL append order must equal commit order, which only the catalog write lock provides; the hot path is a page-cache write
		if err := s.wal.append(encodeCommit(rec)); err != nil {
			s.walErr.CompareAndSwap(nil, &err)
		}
	})
	return nil
}

// Checkpoint writes a full columnar snapshot and retires the WAL
// segments it covers. Safe to call concurrently with queries and DML:
// the WAL rotates first, so any record racing the catalog export lands
// in the new segment and is skipped on replay by its commit sequence.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cat == nil || s.wal == nil {
		return fmt.Errorf("store: checkpoint before Recover/Bootstrap")
	}
	old, err := s.wal.rotate()
	if err != nil {
		return err
	}
	tables, seq := s.cat.ExportState()
	if err := writeSnapshot(s.dir, tables, seq); err != nil {
		return err
	}
	for _, p := range old {
		os.Remove(p)
	}
	// The snapshot covers every committed statement, so a WAL append
	// failure latched before this point no longer threatens recovery.
	// Report it once — the durability guarantee was degraded until
	// now — and clear the latch.
	if p := s.walErr.Swap(nil); p != nil {
		return fmt.Errorf("store: WAL appends failed since the previous checkpoint (durability was degraded; now restored): %w", *p)
	}
	return nil
}

// Close syncs and closes the WAL. It does not checkpoint; callers
// wanting a restart without replay checkpoint first.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cat != nil {
		s.cat.SetCommitHook(nil)
	}
	var err error
	if s.wal != nil {
		err = s.wal.close()
		s.wal = nil
	}
	if werr := s.Err(); err == nil {
		err = werr
	}
	return err
}

// applyCommit replays one WAL record through the catalog's regular
// mutation paths, so versions, indexes and the commit sequence advance
// exactly as they did before the crash.
func applyCommit(cat *catalog.Catalog, rec catalog.CommitRecord) error {
	switch rec.Kind {
	case catalog.CommitCreate:
		cat.CreateTable(rec.Schema, rec.Name, rec.Cols)
		return nil
	case catalog.CommitDrop:
		cat.DropTable(rec.Schema, rec.Name)
		return nil
	}
	t := cat.Table(rec.Schema, rec.Name)
	if t == nil {
		return fmt.Errorf("store: WAL record %d for unknown table %s.%s", rec.Seq, rec.Schema, rec.Name)
	}
	switch rec.Kind {
	case catalog.CommitInsert:
		rows := make([]catalog.Row, rec.NumRows)
		for i := range rows {
			rows[i] = make(catalog.Row, len(rec.Inserts))
		}
		for col, vec := range rec.Inserts {
			if vec.Len() != rec.NumRows {
				return fmt.Errorf("store: WAL record %d: column %s has %d values for %d rows", rec.Seq, col, vec.Len(), rec.NumRows)
			}
			for i := range rows {
				rows[i][col] = vec.Get(i)
			}
		}
		first := t.Append(rows)
		if first != rec.FirstOid {
			return fmt.Errorf("store: WAL replay diverged: record %d expected first oid %d, got %d", rec.Seq, rec.FirstOid, first)
		}
	case catalog.CommitDelete:
		t.Delete(rec.Deleted)
	case catalog.CommitUpdate:
		vals := make([]any, rec.UpdVals.Len())
		for i := range vals {
			vals[i] = rec.UpdVals.Get(i)
		}
		t.UpdateInPlace(rec.UpdCol, rec.UpdOids, vals)
	default:
		return fmt.Errorf("store: WAL record %d has unknown kind %d", rec.Seq, rec.Kind)
	}
	return nil
}
