package store

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/recycler"
)

// Spill is the disk tier of the recycle pool: one file per demoted
// intermediate, CRC-framed, keyed by the entry's canonical signature.
// It implements recycler.SpillTier.
//
// The tier is a cache, not a log: files are written without fsync
// (the CRC frames reject torn files on read), lookups that find a
// corrupt file treat it as a miss and unlink it, and a byte budget is
// enforced by deleting the oldest records first. Epoch validity is the
// recycler's concern — the tier stores the dependency versions the
// recycler stamped into each record and hands them back verbatim.
type Spill struct {
	dir    string
	budget int64

	mu    sync.Mutex
	files map[string]*spillFile // canonical signature -> file
	total int64
	clock int64 // admission order for budget eviction
}

type spillFile struct {
	path string
	size int64
	seq  int64
}

// openSpill opens (and scans) the spill directory. Unreadable files
// are discarded.
func openSpill(dir string, budget int64) (*Spill, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sp := &Spill{dir: dir, budget: budget, files: make(map[string]*spillFile)}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range ents {
		if e.IsDir() || filepath.Ext(e.Name()) != ".spl" {
			continue
		}
		path := filepath.Join(dir, e.Name())
		// Only the metadata frame is decoded here — the index needs the
		// canonical signature and the file size, not the (potentially
		// large) result payload, which Prewarm reads on demand anyway.
		rec, err := readSpillMeta(path)
		if err != nil {
			os.Remove(path)
			continue
		}
		info, err := e.Info()
		if err != nil {
			continue
		}
		sp.clock++
		sp.files[rec.CanonSig] = &spillFile{path: path, size: info.Size(), seq: sp.clock}
		sp.total += info.Size()
	}
	return sp, nil
}

// Stats returns the tier's current utilisation.
func (sp *Spill) Stats() (entries int, bytes int64) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.files), sp.total
}

// Empty implements recycler.SpillTier's cheap miss-path gate.
func (sp *Spill) Empty() bool {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	return len(sp.files) == 0
}

// Purge empties the tier. Bootstrap calls it: a freshly generated
// catalog restarts table versions, so records from a previous life
// could alias fresh versions and must not survive into the new one.
func (sp *Spill) Purge() error {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	for canon, f := range sp.files {
		os.Remove(f.path)
		delete(sp.files, canon)
	}
	sp.total = 0
	return nil
}

// pathFor derives a collision-resistant file name for a canonical
// signature. Collisions are resolved by probing; the signature inside
// the file is authoritative.
func (sp *Spill) pathFor(canon string) string {
	h := fnv.New64a()
	h.Write([]byte(canon))
	base := fmt.Sprintf("%016x", h.Sum64())
	for probe := 0; ; probe++ {
		name := base
		if probe > 0 {
			name = fmt.Sprintf("%s-%d", base, probe)
		}
		path := filepath.Join(sp.dir, name+".spl")
		taken := false
		for c, f := range sp.files {
			if f.path == path {
				taken = c != canon
				break
			}
		}
		if !taken {
			return path
		}
	}
}

// Spill implements recycler.SpillTier: persist one record, overwriting
// any previous record under the same canonical signature. The file is
// written to a temporary name with no lock held — sp.mu protects only
// the index bookkeeping and the rename — so the query miss path's
// Lookup never stalls behind a large background spill write.
func (sp *Spill) Spill(rec *recycler.SpillRecord) {
	payload := encodeSpillMeta(rec)
	val := &enc{}
	encodeValue(val, rec.Result)
	size := int64(len(payload)+len(val.b)) + 16 // two frame headers
	if sp.budget > 0 && size > sp.budget {
		return
	}

	tmp, err := os.CreateTemp(sp.dir, "spill-*.tmp")
	if err != nil {
		return
	}
	werr := writeFrame(tmp, payload)
	if werr == nil {
		werr = writeFrame(tmp, val.b)
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		return
	}

	sp.mu.Lock()
	defer sp.mu.Unlock()
	if sp.budget > 0 {
		sp.evictUntilLocked(sp.budget - size)
	}
	path := sp.pathFor(rec.CanonSig)
	if os.Rename(tmp.Name(), path) != nil {
		os.Remove(tmp.Name())
		return
	}
	if old := sp.files[rec.CanonSig]; old != nil {
		sp.total -= old.size
		if old.path != path {
			os.Remove(old.path)
		}
	}
	sp.clock++
	sp.files[rec.CanonSig] = &spillFile{path: path, size: size, seq: sp.clock}
	sp.total += size
}

// evictUntilLocked deletes oldest-spilled records until the tier fits
// within capacity bytes. Caller holds sp.mu.
func (sp *Spill) evictUntilLocked(capacity int64) {
	for sp.total > capacity {
		var victim string
		var oldest int64
		for canon, f := range sp.files {
			if victim == "" || f.seq < oldest {
				victim, oldest = canon, f.seq
			}
		}
		if victim == "" {
			return
		}
		f := sp.files[victim]
		os.Remove(f.path)
		sp.total -= f.size
		delete(sp.files, victim)
	}
}

// Lookup implements recycler.SpillTier. A file that fails to decode is
// unlinked and reported as a miss.
func (sp *Spill) Lookup(canon string) (*recycler.SpillRecord, bool) {
	sp.mu.Lock()
	f := sp.files[canon]
	sp.mu.Unlock()
	if f == nil {
		return nil, false
	}
	rec, err := readSpillFile(f.path)
	if err != nil || rec.CanonSig != canon {
		sp.Drop(canon)
		return nil, false
	}
	return rec, true
}

// Drop implements recycler.SpillTier.
func (sp *Spill) Drop(canon string) {
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if f := sp.files[canon]; f != nil {
		os.Remove(f.path)
		sp.total -= f.size
		delete(sp.files, canon)
	}
}

// Metas implements recycler.SpillTier: list every stored record's
// metadata (no Result payload) for startup pre-warming. Undecodable
// files are dropped silently.
func (sp *Spill) Metas() []*recycler.SpillRecord {
	sp.mu.Lock()
	paths := make(map[string]string, len(sp.files))
	for canon, f := range sp.files {
		paths[canon] = f.path
	}
	sp.mu.Unlock()
	out := make([]*recycler.SpillRecord, 0, len(paths))
	for canon, path := range paths {
		rec, err := readSpillMeta(path)
		if err != nil || rec.CanonSig != canon {
			sp.Drop(canon)
			continue
		}
		out = append(out, rec)
	}
	return out
}

func encodeSpillMeta(rec *recycler.SpillRecord) []byte {
	e := &enc{}
	e.str(rec.CanonSig)
	e.str(rec.OpName)
	e.str(rec.Render)
	e.i64(int64(rec.Cost))
	e.i64(rec.Bytes)
	e.u64(uint64(rec.Tuples))
	e.u32(uint32(len(rec.Args)))
	for _, a := range rec.Args {
		if a.Bat {
			e.u8(1)
			e.str(a.Canon)
		} else {
			e.u8(0)
			e.str(a.Key)
		}
	}
	e.u32(uint32(len(rec.Deps)))
	for _, d := range rec.Deps {
		e.str(d.Ref.Table)
		e.str(d.Ref.Column)
		e.u64(d.Created)
		e.i64(d.Version)
	}
	return e.b
}

func decodeSpillMeta(payload []byte) (*recycler.SpillRecord, error) {
	d := &dec{b: payload}
	rec := &recycler.SpillRecord{
		CanonSig: d.str(),
		OpName:   d.str(),
		Render:   d.str(),
		Cost:     time.Duration(d.i64()),
		Bytes:    d.i64(),
		Tuples:   int(d.u64()),
	}
	nArgs := int(d.u32())
	for i := 0; i < nArgs && !d.fail; i++ {
		if d.u8() != 0 {
			rec.Args = append(rec.Args, recycler.SpillArg{Bat: true, Canon: d.str()})
		} else {
			rec.Args = append(rec.Args, recycler.SpillArg{Key: d.str()})
		}
	}
	nDeps := int(d.u32())
	for i := 0; i < nDeps && !d.fail; i++ {
		dep := recycler.SpillDep{}
		dep.Ref.Table = d.str()
		dep.Ref.Column = d.str()
		dep.Created = d.u64()
		dep.Version = d.i64()
		rec.Deps = append(rec.Deps, dep)
	}
	if err := d.err(); err != nil || !d.done() {
		return nil, ErrCorrupt
	}
	return rec, nil
}

// readSpillMeta decodes only a file's metadata frame (index scans).
func readSpillMeta(path string) (*recycler.SpillRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	meta, err := readFrame(f)
	if err != nil {
		return nil, ErrCorrupt
	}
	return decodeSpillMeta(meta)
}

func readSpillFile(path string) (*recycler.SpillRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	meta, err := readFrame(f)
	if err != nil {
		return nil, ErrCorrupt
	}
	rec, err := decodeSpillMeta(meta)
	if err != nil {
		return nil, err
	}
	val, err := readFrame(f)
	if err != nil {
		return nil, ErrCorrupt
	}
	d := &dec{b: val}
	rec.Result = decodeValue(d)
	if err := d.err(); err != nil || !d.done() {
		return nil, ErrCorrupt
	}
	return rec, nil
}
