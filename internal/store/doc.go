// Package store is the persistence subsystem: it makes the engine's
// catalog — and the warm recycle pool the paper's whole thesis rests
// on — survive a restart.
//
// Three cooperating parts share one binary columnar codec (CRC32-
// checked, length-prefixed frames with per-kind vector encodings):
//
//   - A write-ahead log of committed DML. The catalog's commit hook
//     appends one self-contained record per statement, in commit
//     order, with batched fsyncs; replay after a crash re-applies the
//     tail the last snapshot missed and truncates a torn final record.
//
//   - Full columnar checkpoints. A checkpoint rotates the WAL, exports
//     the catalog consistently (tables, tombstones, versions, index
//     definitions, commit sequence) and atomically replaces the
//     snapshot file, after which the covered WAL segments are deleted.
//     Recovery = load snapshot + replay WAL tail.
//
//   - A disk tier for the recycle pool (recycler.SpillTier): eviction
//     victims are demoted to per-record spill files keyed by canonical
//     signature and stamped with dependency-table versions, consulted
//     on exact-match misses, lazily invalidated when stale, and
//     reloaded wholesale by Recycler.Prewarm at startup.
package store
