package trace

import "io"

// Metrics is the process-wide set of latency histogram families
// exported at /metrics. All fields are wait-free Histograms, so any
// engine layer may observe into them from any lock context.
type Metrics struct {
	Parse          Histogram
	Optimize       Histogram
	Schedule       Histogram
	Execute        Histogram
	RecyclerLookup Histogram
	WriterLockWait Histogram
	ShardLockWait  Histogram
	WALFsync       Histogram
	SpillIO        Histogram
}

// NewMetrics returns an empty metrics set.
func NewMetrics() *Metrics { return &Metrics{} }

// WriteProm renders every histogram family in Prometheus text
// exposition format. Families are emitted in a fixed order; new ones
// are appended at the end (golden-test convention).
func (m *Metrics) WriteProm(w io.Writer) {
	if m == nil {
		m = &Metrics{}
	}
	m.Parse.WriteProm(w, "repro_stage_parse_seconds", "SQL parse+normalize latency.")
	m.Optimize.WriteProm(w, "repro_stage_optimize_seconds", "Plan build and optimizer latency (template-cache misses).")
	m.Schedule.WriteProm(w, "repro_stage_schedule_seconds", "Dataflow DAG build and worker dispatch latency.")
	m.Execute.WriteProm(w, "repro_stage_execute_seconds", "Query execution wall time.")
	m.RecyclerLookup.WriteProm(w, "repro_stage_recycler_lookup_seconds", "Recycler Entry (pool lookup + subsumption) latency per marked instruction.")
	m.WriterLockWait.WriteProm(w, "repro_lock_writer_wait_seconds", "Recycler writer-lock acquisition wait (contended acquisitions only).")
	m.ShardLockWait.WriteProm(w, "repro_lock_shard_wait_seconds", "Signature-shard read-lock wait on the exact-hit path (contended only).")
	m.WALFsync.WriteProm(w, "repro_wal_fsync_seconds", "WAL fsync batch latency.")
	m.SpillIO.WriteProm(w, "repro_spill_io_seconds", "Spill-tier demote and reload I/O latency.")
}
