package trace

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{500 * time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + 1, 1},
		{2 * time.Microsecond, 1},
		{3 * time.Microsecond, 2},
		{time.Millisecond, 10},
		{time.Second, 20},
		{time.Hour, numBuckets},
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
}

func TestHistogramQuantile(t *testing.T) {
	var h Histogram
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", q)
	}
	// 100 observations spread 1ms..100ms: p50 should land near 50ms,
	// p99 near 100ms (bucket resolution is a factor of 2).
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	p50 := h.Quantile(0.50)
	if p50 < 16*time.Millisecond || p50 > 128*time.Millisecond {
		t.Errorf("p50 = %v, outside coarse [16ms,128ms]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 {
		t.Errorf("p99 %v < p50 %v", p99, p50)
	}
	if h.Count() != 100 {
		t.Errorf("count = %d", h.Count())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
}

func TestHistogramProm(t *testing.T) {
	var h Histogram
	h.Observe(time.Millisecond)
	var sb strings.Builder
	h.WriteProm(&sb, "x_seconds", "help text")
	out := sb.String()
	for _, want := range []string{
		"# TYPE x_seconds histogram",
		`x_seconds_bucket{le="+Inf"} 1`,
		"x_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRecorderNilSafe(t *testing.T) {
	var r *Recorder
	r.EndSpan(0, "x", 0, time.Now(), 0, 0, 0, 0)
	r.SetRecycle(0, "hit")
	r.SetAdmission(0, "admit")
	r.AddEvent(0, "e", 0, "")
	if qt := r.Finish("t", 0); qt != nil {
		t.Fatal("nil recorder Finish should return nil")
	}
	var tr *Tracer
	tr.FinishQuery(nil)
	tr.Event("e", 0, "")
	if tr.Metrics() != nil || tr.Recent() != nil {
		t.Fatal("nil tracer accessors should be zero")
	}
}

func TestRecorderRoundTrip(t *testing.T) {
	r := NewRecorder(7, "select 1", 3)
	r.SetRecycle(1, "hit:exact")
	r.EndSpan(1, "algebra.select", 2, r.Start(), time.Microsecond, 10, 5, 40)
	r.SetAdmission(2, "admit:granted")
	r.EndSpan(2, "aggr.count", 0, r.Start(), 0, 5, 1, 8)
	r.SetParents([][]int{nil, {0}, {1}})
	r.AddEvent(2, "spill.reload", time.Millisecond, "sig")
	qt := r.Finish("tmpl", 0)
	if qt.QueryID != 7 || qt.Template != "tmpl" || len(qt.Spans) != 3 {
		t.Fatalf("bad trace header: %+v", qt)
	}
	if qt.Spans[1].Recycle != "hit:exact" || qt.Spans[1].Op != "algebra.select" {
		t.Errorf("span 1 lost fields: %+v", qt.Spans[1])
	}
	if qt.Spans[2].Admit != "admit:granted" {
		t.Errorf("span 2 lost admission: %+v", qt.Spans[2])
	}
	if len(qt.Events) != 1 || qt.Events[0].Name != "spill.reload" {
		t.Errorf("events: %+v", qt.Events)
	}
	if _, err := json.Marshal(qt); err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var sb strings.Builder
	qt.Format(&sb)
	if !strings.Contains(sb.String(), "hit:exact") || !strings.Contains(sb.String(), "algebra.select") {
		t.Errorf("Format output missing span data:\n%s", sb.String())
	}
}

func TestTracerRingAndSlowLog(t *testing.T) {
	tr := New(Config{SlowQuery: 10 * time.Millisecond, RingSize: 4})
	for i := 1; i <= 6; i++ {
		el := time.Duration(i) * time.Millisecond
		if i == 5 {
			el = 50 * time.Millisecond
		}
		tr.FinishQuery(&QueryTrace{QueryID: uint64(i), Elapsed: el})
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent len = %d, want 4", len(recent))
	}
	if recent[0].QueryID != 6 || recent[3].QueryID != 3 {
		t.Errorf("recent order wrong: %d..%d", recent[0].QueryID, recent[3].QueryID)
	}
	slow := tr.Slow()
	if len(slow) != 1 || slow[0].QueryID != 5 {
		t.Fatalf("slow log: %+v", slow)
	}
	if tr.Queries() != 6 {
		t.Errorf("queries = %d", tr.Queries())
	}
	if got := tr.Metrics().Execute.Count(); got != 6 {
		t.Errorf("execute histogram count = %d", got)
	}
	tr.Event("commit.maintain", time.Millisecond, "table=t")
	if ev := tr.Events(); len(ev) != 1 || ev[0].Name != "commit.maintain" {
		t.Fatalf("events: %+v", ev)
	}
}

func TestMetricsWriteProm(t *testing.T) {
	m := NewMetrics()
	m.Parse.Observe(time.Microsecond)
	var sb strings.Builder
	m.WriteProm(&sb)
	out := sb.String()
	fams := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "# TYPE ") && strings.HasSuffix(line, " histogram") {
			fams++
		}
	}
	if fams < 5 {
		t.Fatalf("only %d histogram families, want >= 5:\n%s", fams, out)
	}
}
