package trace

import (
	"sync"
	"time"
)

// Config sizes a Tracer.
type Config struct {
	// SlowQuery is the slow-query threshold; finished queries at or
	// above it are copied into the slow log. 0 disables the slow log.
	SlowQuery time.Duration
	// RingSize bounds the recent-query ring (default 64). The slow log
	// and the global event ring use the same bound.
	RingSize int
}

// TracerEvent is a process-scoped timed event (commit maintenance
// summary, spill prewarm, ...) kept in the global event ring.
type TracerEvent struct {
	Time   time.Time     `json:"time"`
	Name   string        `json:"name"`
	Dur    time.Duration `json:"dur_ns"`
	Detail string        `json:"detail,omitempty"`
}

// Tracer owns the process-wide observability state: the latency
// histograms, a bounded ring of recent query traces, the slow-query
// log, and a global event ring. All methods are safe for concurrent
// use and nil-receiver safe.
type Tracer struct {
	cfg     Config
	metrics *Metrics

	mu      sync.Mutex
	recent  ring[*QueryTrace]
	slow    ring[*QueryTrace]
	events  ring[TracerEvent]
	queries uint64 // finished queries seen
}

// New builds a Tracer. A zero Config means: no slow log, default ring
// sizes.
func New(cfg Config) *Tracer {
	if cfg.RingSize <= 0 {
		cfg.RingSize = 64
	}
	return &Tracer{
		cfg:     cfg,
		metrics: NewMetrics(),
		recent:  newRing[*QueryTrace](cfg.RingSize),
		slow:    newRing[*QueryTrace](cfg.RingSize),
		events:  newRing[TracerEvent](cfg.RingSize),
	}
}

// Metrics returns the tracer's histogram set (nil if t is nil).
func (t *Tracer) Metrics() *Metrics {
	if t == nil {
		return nil
	}
	return t.metrics
}

// SlowThreshold reports the configured slow-query cutoff.
func (t *Tracer) SlowThreshold() time.Duration {
	if t == nil {
		return 0
	}
	return t.cfg.SlowQuery
}

// FinishQuery files a finished trace into the recent ring (and the
// slow log when it crossed the threshold) and observes the execute
// histogram. qt must be immutable from here on.
func (t *Tracer) FinishQuery(qt *QueryTrace) {
	if t == nil || qt == nil {
		return
	}
	t.metrics.Execute.Observe(qt.Elapsed)
	t.mu.Lock()
	t.queries++
	t.recent.push(qt)
	if t.cfg.SlowQuery > 0 && qt.Elapsed >= t.cfg.SlowQuery {
		t.slow.push(qt)
	}
	t.mu.Unlock()
}

// Event appends to the global event ring. Never call while holding a
// ranked engine lock (machine-checked).
func (t *Tracer) Event(name string, d time.Duration, detail string) {
	if t == nil {
		return
	}
	ev := TracerEvent{Time: time.Now(), Name: name, Dur: d, Detail: detail}
	t.mu.Lock()
	t.events.push(ev)
	t.mu.Unlock()
}

// Recent returns the recent-query ring, most recent first.
func (t *Tracer) Recent() []*QueryTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.recent.snapshot()
}

// Slow returns the slow-query log, most recent first.
func (t *Tracer) Slow() []*QueryTrace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.slow.snapshot()
}

// Events returns the global event ring, most recent first.
func (t *Tracer) Events() []TracerEvent {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events.snapshot()
}

// Queries returns the number of traced queries finished so far.
func (t *Tracer) Queries() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.queries
}

// ring is a fixed-capacity overwrite-oldest buffer. Not synchronized;
// the Tracer guards it with its mutex.
type ring[T any] struct {
	buf  []T
	next int
	full bool
}

func newRing[T any](n int) ring[T] { return ring[T]{buf: make([]T, n)} }

func (r *ring[T]) push(v T) {
	r.buf[r.next] = v
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// snapshot returns the contents most-recent-first.
func (r *ring[T]) snapshot() []T {
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]T, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}
