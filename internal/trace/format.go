package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// Format renders the trace as an EXPLAIN ANALYZE table: stage summary,
// then one row per instruction ordered by start time, with the
// dataflow dependencies and the recycler decision for each.
func (qt *QueryTrace) Format(w io.Writer) {
	if qt == nil {
		return
	}
	fmt.Fprintf(w, "query %d  template=%s  elapsed=%v\n",
		qt.QueryID, qt.Template, qt.Elapsed.Round(time.Microsecond))
	fmt.Fprintf(w, "stages: parse=%v optimize=%v schedule=%v execute=%v\n",
		qt.Stages.Parse.Round(time.Microsecond),
		qt.Stages.Optimize.Round(time.Microsecond),
		qt.Stages.Schedule.Round(time.Microsecond),
		qt.Stages.Execute.Round(time.Microsecond))

	order := make([]int, 0, len(qt.Spans))
	for i := range qt.Spans {
		if qt.Spans[i].Op != "" {
			order = append(order, i)
		}
	}
	sort.Slice(order, func(a, b int) bool {
		sa, sb := &qt.Spans[order[a]], &qt.Spans[order[b]]
		if sa.Start != sb.Start {
			return sa.Start < sb.Start
		}
		return sa.PC < sb.PC
	})

	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "pc\top\tdeps\tworker\tstart\tdur\trows in\trows out\tbytes\trecycle\tadmit")
	for _, pc := range order {
		sp := &qt.Spans[pc]
		deps := "-"
		if len(sp.Deps) > 0 {
			parts := make([]string, len(sp.Deps))
			for i, d := range sp.Deps {
				parts[i] = fmt.Sprintf("%d", d)
			}
			deps = strings.Join(parts, ",")
		}
		rec := sp.Recycle
		if rec == "" {
			rec = "-"
		}
		adm := sp.Admit
		if adm == "" {
			adm = "-"
		}
		fmt.Fprintf(tw, "%d\t%s\t%s\t%d\t%v\t%v\t%d\t%d\t%d\t%s\t%s\n",
			sp.PC, sp.Op, deps, sp.Worker,
			sp.Start.Round(time.Microsecond), sp.Dur.Round(time.Microsecond),
			sp.RowsIn, sp.RowsOut, sp.Bytes, rec, adm)
	}
	tw.Flush()

	for _, ev := range qt.Events {
		fmt.Fprintf(w, "event: pc=%d %s %v %s\n", ev.PC, ev.Name, ev.Dur.Round(time.Microsecond), ev.Detail)
	}
}
