package trace

import (
	"fmt"
	"io"
	"math/bits"
	"strconv"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket latency histogram with wait-free
// observation: 26 exponential buckets from 1µs doubling to ~33s, plus
// an overflow bucket. Observe is a single atomic increment pair, so it
// is the ONE trace operation sanctioned under any lock (the lockorder
// analyzer's trace rule exempts it; see internal/analysis) — lock-wait
// telemetry is observed at the acquisition site itself.
//
// The zero value is ready to use.
type Histogram struct {
	buckets [numBuckets + 1]atomic.Int64
	count   atomic.Int64
	sumNs   atomic.Int64
}

// numBuckets is the number of finite buckets; bucket i holds
// observations d with d <= 1µs<<i. Observations beyond the last finite
// bound (~33.5s) land in the overflow (+Inf) bucket.
const numBuckets = 26

// bucketBound returns the upper bound of finite bucket i.
func bucketBound(i int) time.Duration { return time.Microsecond << uint(i) }

// bucketIndex maps a duration to its bucket.
func bucketIndex(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns <= 1000 {
		return 0
	}
	idx := bits.Len64(uint64((ns - 1) / 1000))
	if idx > numBuckets {
		return numBuckets
	}
	return idx
}

// Observe records one duration. Safe for concurrent use; wait-free.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.buckets[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed durations.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sumNs.Load())
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation within the holding bucket. Returns 0 on an empty
// histogram; observations in the overflow bucket report the last
// finite bound.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum int64
	for i := 0; i <= numBuckets; i++ {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if float64(cum+n) >= rank {
			if i == numBuckets {
				return bucketBound(numBuckets - 1)
			}
			lo := time.Duration(0)
			if i > 0 {
				lo = bucketBound(i - 1)
			}
			hi := bucketBound(i)
			frac := (rank - float64(cum)) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += n
	}
	return bucketBound(numBuckets - 1)
}

// promLabels holds the precomputed le="..." second-valued labels.
var promLabels = func() [numBuckets]string {
	var l [numBuckets]string
	for i := range l {
		l[i] = strconv.FormatFloat(bucketBound(i).Seconds(), 'g', -1, 64)
	}
	return l
}()

// WriteProm renders the histogram as one Prometheus histogram family:
// cumulative _bucket series, _sum and _count.
func (h *Histogram) WriteProm(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
	var cum int64
	for i := 0; i < numBuckets; i++ {
		cum += h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", name, promLabels[i], cum)
	}
	cum += h.buckets[numBuckets].Load()
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	fmt.Fprintf(w, "%s_sum %g\n", name, h.Sum().Seconds())
	fmt.Fprintf(w, "%s_count %d\n", name, h.count.Load())
}
