// Package trace is the engine's observability layer: an
// allocation-light per-query span recorder threaded through mal.Ctx,
// per-stage latency histograms in Prometheus exposition format, and a
// Tracer that keeps a bounded ring of recent query traces plus a
// slow-query log.
//
// Lock-ordering contract (machine-checked by the lockorder analyzer,
// see internal/analysis): Recorder and Tracer methods may allocate and
// take the tracer's internal mutex, so they must NEVER be called while
// the recycler writer lock (Recycler.mu) or Catalog.mu is held.
// Histogram.Observe is the single exception — it is wait-free and may
// run anywhere, which is what makes lock-wait histograms possible.
//
// The Recorder itself is lock-free for span writes: spans are indexed
// by program counter, each pc executes exactly once on one worker
// goroutine, and the dataflow scheduler's completion channel provides
// the happens-before edge to the goroutine that calls Finish.
package trace

import (
	"sync"
	"time"
)

// Span is one executed MAL instruction inside a query.
type Span struct {
	PC      int           `json:"pc"`
	Op      string        `json:"op"`
	Worker  int           `json:"worker"`
	Start   time.Duration `json:"start_ns"` // offset from query start
	Dur     time.Duration `json:"dur_ns"`
	Lookup  time.Duration `json:"lookup_ns,omitempty"` // recycler Entry share of Dur
	RowsIn  int           `json:"rows_in"`
	RowsOut int           `json:"rows_out"`
	Bytes   int64         `json:"bytes"`
	Recycle string        `json:"recycle,omitempty"` // decision reason; "" = unmonitored instr
	Admit   string        `json:"admit,omitempty"`   // admission outcome on the miss path
	Deps    []int         `json:"deps,omitempty"`    // pcs this instruction consumed
	// Fused marks fused-chain execution: on a skipped member it holds
	// the pc the chain materialised at; on the executing (last) member
	// it lists every constituent pc, so EXPLAIN ANALYZE can attribute
	// the fused kernel's time to the original instructions.
	Fused []int `json:"fused,omitempty"`
}

// Event is a timed query-scoped happening outside the span grid
// (spill-tier reload I/O, commit maintenance, ...).
type Event struct {
	PC     int           `json:"pc"`
	Name   string        `json:"name"`
	Dur    time.Duration `json:"dur_ns"`
	Detail string        `json:"detail,omitempty"`
}

// Stages breaks a query's wall time into the classic phases.
type Stages struct {
	Parse    time.Duration `json:"parse_ns"`
	Optimize time.Duration `json:"optimize_ns"`
	Schedule time.Duration `json:"schedule_ns"`
	Execute  time.Duration `json:"execute_ns"`
}

// QueryTrace is the finished, immutable trace of one query. It is
// plain data: safe to marshal, render, or keep in the recent ring.
type QueryTrace struct {
	QueryID  uint64        `json:"query_id"`
	SQL      string        `json:"sql,omitempty"`
	Template string        `json:"template,omitempty"`
	Begin    time.Time     `json:"begin"`
	Elapsed  time.Duration `json:"elapsed_ns"`
	Stages   Stages        `json:"stages"`
	Spans    []Span        `json:"spans"`
	Events   []Event       `json:"events,omitempty"`
}

// Recorder collects spans and events for a single query. Span slots
// are written lock-free (one writer per pc); the event list takes a
// mutex because recycler side paths append from arbitrary call sites.
// All methods are nil-receiver safe so callers holding an optional
// recorder need no guard.
type Recorder struct {
	queryID uint64
	sql     string
	start   time.Time
	spans   []Span
	stages  Stages

	mu     sync.Mutex
	events []Event
}

// NewRecorder allocates a recorder for a query with ninstr
// instructions. One slice allocation; spans are filled in place.
func NewRecorder(queryID uint64, sql string, ninstr int) *Recorder {
	return &Recorder{
		queryID: queryID,
		sql:     sql,
		start:   time.Now(),
		spans:   make([]Span, ninstr),
	}
}

// Start returns the query start time (for offsetting external clocks).
func (r *Recorder) Start() time.Time {
	if r == nil {
		return time.Time{}
	}
	return r.start
}

// EndSpan completes the span for pc. Called exactly once per pc by the
// worker that executed it. It sets fields individually so reason
// fields written earlier on the same goroutine (SetRecycle,
// SetAdmission) survive.
func (r *Recorder) EndSpan(pc int, op string, worker int, start time.Time, lookup time.Duration, rowsIn, rowsOut int, bytes int64) {
	if r == nil || pc < 0 || pc >= len(r.spans) {
		return
	}
	sp := &r.spans[pc]
	sp.PC = pc
	sp.Op = op
	sp.Worker = worker
	sp.Start = start.Sub(r.start)
	sp.Dur = time.Since(start)
	sp.Lookup = lookup
	sp.RowsIn = rowsIn
	sp.RowsOut = rowsOut
	sp.Bytes = bytes
}

// SetRecycle records the recycler's lookup decision for pc
// ("hit:exact", "rewrite:subsume-select", "miss", ...).
func (r *Recorder) SetRecycle(pc int, reason string) {
	if r == nil || pc < 0 || pc >= len(r.spans) {
		return
	}
	r.spans[pc].Recycle = reason
}

// SetAdmission records the admission outcome for pc's result
// ("admit:granted", "deny:too-large:refunded", ...). Called by the
// recycler AFTER releasing the writer lock, on the same worker
// goroutine that will call EndSpan.
func (r *Recorder) SetAdmission(pc int, reason string) {
	if r == nil || pc < 0 || pc >= len(r.spans) {
		return
	}
	r.spans[pc].Admit = reason
}

// SetFused records fused-chain membership for pc (see Span.Fused).
// Written by the worker that owns pc's span slot, like EndSpan.
func (r *Recorder) SetFused(pc int, pcs []int) {
	if r == nil || pc < 0 || pc >= len(r.spans) {
		return
	}
	r.spans[pc].Fused = pcs
}

// SetParents stores the dataflow dependency edges (parents[pc] = pcs
// it consumes) so the trace renders as a tree.
func (r *Recorder) SetParents(parents [][]int) {
	if r == nil {
		return
	}
	for pc, deps := range parents {
		if pc < len(r.spans) {
			r.spans[pc].Deps = deps
		}
	}
}

// SetStages seeds the front-end stage durations (parse, optimize).
func (r *Recorder) SetStages(parse, optimize time.Duration) {
	if r == nil {
		return
	}
	r.stages.Parse = parse
	r.stages.Optimize = optimize
}

// SetSchedule records the dataflow scheduling stage (DAG build +
// worker spawn + root dispatch).
func (r *Recorder) SetSchedule(d time.Duration) {
	if r == nil {
		return
	}
	r.stages.Schedule = d
}

// AddEvent appends a query-scoped timed event. Takes the recorder
// mutex; never call it while holding a ranked engine lock.
func (r *Recorder) AddEvent(pc int, name string, d time.Duration, detail string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.events = append(r.events, Event{PC: pc, Name: name, Dur: d, Detail: detail})
	r.mu.Unlock()
}

// Finish freezes the recorder into an immutable QueryTrace. Call once,
// after the query's dataflow has fully completed.
func (r *Recorder) Finish(template string, elapsed time.Duration) *QueryTrace {
	if r == nil {
		return nil
	}
	if elapsed == 0 {
		elapsed = time.Since(r.start)
	}
	st := r.stages
	st.Execute = elapsed
	r.mu.Lock()
	ev := r.events
	r.events = nil
	r.mu.Unlock()
	return &QueryTrace{
		QueryID:  r.queryID,
		SQL:      r.sql,
		Template: template,
		Begin:    r.start,
		Elapsed:  elapsed,
		Stages:   st,
		Spans:    r.spans,
		Events:   ev,
	}
}
