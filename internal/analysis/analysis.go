// Package analysis is a small, dependency-free re-implementation of
// the golang.org/x/tools/go/analysis surface that reprolint's
// analyzers are written against. The build environment has no module
// proxy, so instead of vendoring x/tools the suite runs on the
// standard library alone: packages are parsed with go/parser,
// typechecked with go/types, and dependencies are imported from the
// gc export data that `go list -export` materialises in the build
// cache (see load.go).
//
// The shape mirrors x/tools deliberately — Analyzer{Name, Doc, Run},
// Pass with Fset/Files/Pkg/Info and Reportf — so the analyzers would
// port to the real framework mechanically if the dependency ever
// becomes available.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	// Name is the analyzer's identifier: it appears in diagnostics and
	// is the token //lint:allow directives name to suppress it.
	Name string
	// Doc is a one-paragraph description shown by `reprolint -help`.
	Doc string
	// Run applies the analyzer to one package, reporting findings via
	// pass.Reportf.
	Run func(pass *Pass) error
}

// PackageInfo is one source-loaded package: syntax plus type
// information. All packages in a run share a single FileSet so
// positions compare across packages.
type PackageInfo struct {
	// Path is the import path the package was loaded under. Fixture
	// packages in analyzer tests are loaded under the *real* import
	// path they imitate (e.g. "repro/internal/recycler") so invariant
	// tables keyed on real paths apply to them unchanged.
	Path  string
	Pkg   *types.Package
	Files []*ast.File
	Info  *types.Info
}

// Pass carries one analyzer's view of one package plus the whole-run
// universe for cross-package rules (lockorder's interprocedural
// summaries, atomicfield's accessed-atomically-anywhere scan).
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Target is the package under analysis.
	Target *PackageInfo
	// Universe is every source-loaded package in the run, including
	// Target. Cross-package facts (function summaries, atomic-access
	// sites) are computed over it; diagnostics are only reported
	// against Target.
	Universe []*PackageInfo

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies each analyzer to each package and returns all findings.
func Run(fset *token.FileSet, pkgs []*PackageInfo, analyzers []*Analyzer) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: fset, Target: pkg, Universe: pkgs}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
			out = append(out, pass.diags...)
		}
	}
	return out, nil
}

// FuncKey renders a *types.Func as the stable string key the
// invariant tables use: "pkg/path.Name" for package functions,
// "pkg/path.(*Recv).Name" / "pkg/path.(Recv).Name" for methods.
// Interface methods key on the interface type name, so a call through
// recycler.SpillTier yields "repro/internal/recycler.(SpillTier).Spill".
func FuncKey(f *types.Func) string {
	if f == nil {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		if f.Pkg() == nil {
			return f.Name() // universe builtins
		}
		return f.Pkg().Path() + "." + f.Name()
	}
	recv := sig.Recv().Type()
	ptr := ""
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
		ptr = "*"
	}
	name := "?"
	switch t := recv.(type) {
	case *types.Named:
		name = t.Obj().Name()
	case *types.Interface:
		// Unnamed interface receiver; fall back to the method name only.
		name = "interface"
	}
	pkg := ""
	if f.Pkg() != nil {
		pkg = f.Pkg().Path() + "."
	}
	return pkg + "(" + ptr + name + ")." + f.Name()
}

// FieldKey renders a struct field as "pkg/path.Type.Field".
func FieldKey(pkgPath, typeName, fieldName string) string {
	return pkgPath + "." + typeName + "." + fieldName
}

// ResolveField maps a selection to its field key, or "" if the
// selector is not a field of a named struct.
func ResolveField(sel *types.Selection) string {
	if sel == nil || sel.Kind() != types.FieldVal {
		return ""
	}
	v, ok := sel.Obj().(*types.Var)
	if !ok || v.Pkg() == nil {
		return ""
	}
	recv := sel.Recv()
	if p, isPtr := recv.(*types.Pointer); isPtr {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	return FieldKey(named.Obj().Pkg().Path(), named.Obj().Name(), v.Name())
}

// Callee resolves the *types.Func a call expression invokes, through
// method values and interface methods alike. Returns nil for calls of
// function-typed variables, conversions and builtins.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			f, _ := sel.Obj().(*types.Func)
			return f
		}
		// Package-qualified call: pkg.Fn().
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	}
	return nil
}
