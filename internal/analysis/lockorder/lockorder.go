// Package lockorder checks the repo's documented lock hierarchy:
//
//   - ranked locks (see analysis.LockRanks) must be acquired in
//     strictly increasing rank order, and never re-entered;
//   - blocking I/O (file writes, fsync, disk-tier calls, bare sends
//     to the spiller queue) must not run under the recycler writer
//     lock or the catalog write lock;
//   - Pool methods whose contract is "caller holds the recycler
//     writer lock" must only be called with it held (or from a
//     function itself declared writer-context);
//   - commit hooks run under the catalog write lock and must not
//     re-enter the catalog; update listeners run in the commit
//     window and must not mutate the catalog or be invoked with the
//     catalog mutex held.
//
// The pass is two-phase: an interprocedural fixed point over every
// source-loaded package computes, per function, the set of ranked
// locks it may acquire, whether it may perform I/O, and whether it
// may mutate the catalog; then each function body in the target
// package is simulated in source order with a held-lock set, with
// branch bodies simulated on copies (an acquisition inside a branch
// does not leak past it).
package lockorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the lockorder entry point.
var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "check lock-hierarchy order, I/O under critical locks, and catalog hook/listener re-entry",
	Run:  run,
}

// summary is one function's interprocedural facts.
type summary struct {
	acquires  map[string]bool // ranked locks acquired anywhere inside, transitively
	ioRoot    string          // one representative I/O callee ("" = none)
	traceRoot string          // one representative trace-recorder callee ("" = none)
	mutates   string          // one representative catalog mutator callee ("" = none)
	callees   map[string]bool
}

type checker struct {
	pass      *analysis.Pass
	summaries map[string]*summary
	listener  *types.Interface // catalog.UpdateListener, if loaded
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, summaries: map[string]*summary{}}
	for _, pkg := range pass.Universe {
		if pkg.Path == "repro/internal/catalog" {
			if obj := pkg.Pkg.Scope().Lookup("UpdateListener"); obj != nil {
				if iface, ok := obj.Type().Underlying().(*types.Interface); ok {
					c.listener = iface
				}
			}
		}
	}
	c.buildSummaries()
	for _, file := range pass.Target.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			c.checkFunc(pass.Target, fd)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// Phase 1: interprocedural summaries.
// ---------------------------------------------------------------------

func (c *checker) buildSummaries() {
	for _, pkg := range c.pass.Universe {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if obj == nil {
					continue
				}
				key := analysis.FuncKey(obj)
				s := &summary{acquires: map[string]bool{}, callees: map[string]bool{}}
				c.collect(pkg, fd.Body, s)
				c.summaries[key] = s
			}
		}
	}
	// Fixed point: propagate callee facts into callers.
	for changed := true; changed; {
		changed = false
		for _, s := range c.summaries {
			for callee := range s.callees {
				cs := c.summaries[callee]
				if cs == nil {
					continue
				}
				for l := range cs.acquires {
					if !s.acquires[l] {
						s.acquires[l] = true
						changed = true
					}
				}
				if s.ioRoot == "" && cs.ioRoot != "" {
					s.ioRoot = cs.ioRoot
					changed = true
				}
				if s.traceRoot == "" && cs.traceRoot != "" {
					s.traceRoot = cs.traceRoot
					changed = true
				}
				if s.mutates == "" && cs.mutates != "" {
					s.mutates = cs.mutates
					changed = true
				}
			}
		}
	}
}

// collect records one function body's direct facts.
func (c *checker) collect(pkg *analysis.PackageInfo, body ast.Node, s *summary) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if lock, op := c.lockOp(pkg.Info, call); lock != "" && acquiring(op) {
			s.acquires[lock] = true
			return true
		}
		callee := analysis.Callee(pkg.Info, call)
		if callee == nil {
			return true
		}
		key := analysis.FuncKey(callee)
		switch {
		case analysis.IOFuncs[key]:
			if s.ioRoot == "" {
				s.ioRoot = key
			}
		case analysis.TraceRecorderFuncs[key]:
			if s.traceRoot == "" {
				s.traceRoot = key
			}
		case analysis.CatalogMutators[key]:
			if s.mutates == "" {
				s.mutates = key
			}
		}
		if lock, ok := analysis.FuncHoldsOnReturn[key]; ok {
			s.acquires[lock] = true
		}
		s.callees[key] = true
		return true
	})
}

// lockOp recognises m.Lock()/RLock()/TryLock()/TryRLock()/Unlock()/
// RUnlock() on a ranked lock field, returning the lock key and the
// method name.
func (c *checker) lockOp(info *types.Info, call *ast.CallExpr) (lock, op string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "TryLock", "TryRLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fieldKey := analysis.ResolveField(info.Selections[inner])
	if fieldKey == "" || analysis.LockRanks[fieldKey] == 0 {
		return "", ""
	}
	return fieldKey, sel.Sel.Name
}

// negatedTryLock matches a `!x.f.TryLock()` / `!x.f.TryRLock()`
// condition on a ranked lock, returning the lock key and method.
func (c *checker) negatedTryLock(info *types.Info, cond ast.Expr) (lock, op string) {
	u, ok := ast.Unparen(cond).(*ast.UnaryExpr)
	if !ok || u.Op != token.NOT {
		return "", ""
	}
	call, ok := ast.Unparen(u.X).(*ast.CallExpr)
	if !ok {
		return "", ""
	}
	lock, op = c.lockOp(info, call)
	if op != "TryLock" && op != "TryRLock" {
		return "", ""
	}
	return lock, op
}

func acquiring(op string) bool {
	return op == "Lock" || op == "RLock" || op == "TryLock" || op == "TryRLock"
}

// ---------------------------------------------------------------------
// Phase 2: per-function source-order simulation.
// ---------------------------------------------------------------------

type held struct {
	key   string
	rank  int
	write bool
}

type simCtx struct {
	pkg *analysis.PackageInfo
	// fn is the enclosing function's key; writerCtx marks functions
	// declared as running with the writer lock held.
	fn         string
	writerCtx  bool
	inListener bool
	locks      []held
}

func (s *simCtx) holds(key string) bool {
	for _, h := range s.locks {
		if h.key == key {
			return true
		}
	}
	return false
}

func (s *simCtx) clone() *simCtx {
	c := *s
	c.locks = append([]held(nil), s.locks...)
	return &c
}

func (c *checker) checkFunc(pkg *analysis.PackageInfo, fd *ast.FuncDecl) {
	obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	key := analysis.FuncKey(obj)
	ctx := &simCtx{pkg: pkg, fn: key}
	if analysis.WriterContextFuncs[key] || analysis.RequiresWriterLock[key] {
		ctx.writerCtx = true
		ctx.locks = append(ctx.locks, held{
			key:   analysis.WriterLockRequired,
			rank:  analysis.LockRanks[analysis.WriterLockRequired],
			write: true,
		})
	}
	if c.isListenerMethod(obj, fd) {
		ctx.inListener = true
	}
	c.simStmts(ctx, fd.Body.List)
}

// isListenerMethod reports whether fd implements one of the
// catalog.UpdateListener methods on a type that satisfies the
// interface.
func (c *checker) isListenerMethod(obj *types.Func, fd *ast.FuncDecl) bool {
	if c.listener == nil || fd.Recv == nil || !analysis.ListenerMethods[obj.Name()] {
		return false
	}
	sig := obj.Type().(*types.Signature)
	if sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if types.Implements(recv, c.listener) {
		return true
	}
	if _, isPtr := recv.(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(recv), c.listener)
	}
	return false
}

func (c *checker) simStmts(ctx *simCtx, stmts []ast.Stmt) {
	for _, st := range stmts {
		c.simStmt(ctx, st)
	}
}

func (c *checker) simStmt(ctx *simCtx, st ast.Stmt) {
	switch s := st.(type) {
	case *ast.BlockStmt:
		c.simStmts(ctx, s.List)
	case *ast.IfStmt:
		if s.Init != nil {
			c.simStmt(ctx, s.Init)
		}
		// `if !mu.TryLock() { mu.Lock() }`: the body runs only when the
		// try failed (lock NOT held), and on either path the lock is
		// held once the if completes.
		if lock, op := c.negatedTryLock(ctx.pkg.Info, s.Cond); lock != "" {
			c.simStmt(ctx.clone(), s.Body)
			if s.Else != nil {
				c.simStmt(ctx.clone(), s.Else)
			}
			c.acquire(ctx, lock, op == "TryLock", false, s.Cond.Pos())
			return
		}
		// Acquisitions in the condition (TryLock idiom) are visible to
		// the body only; neither branch's acquisitions leak past the if.
		bodyCtx := ctx.clone()
		c.simExpr(bodyCtx, s.Cond)
		c.simStmt(bodyCtx, s.Body)
		if s.Else != nil {
			c.simStmt(ctx.clone(), s.Else)
		}
	case *ast.ForStmt:
		inner := ctx.clone()
		if s.Init != nil {
			c.simStmt(inner, s.Init)
		}
		if s.Cond != nil {
			c.simExpr(inner, s.Cond)
		}
		c.simStmt(inner, s.Body)
	case *ast.RangeStmt:
		inner := ctx.clone()
		c.simExpr(inner, s.X)
		c.simStmt(inner, s.Body)
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.simStmt(ctx, s.Init)
		}
		if s.Tag != nil {
			c.simExpr(ctx, s.Tag)
		}
		for _, cl := range s.Body.List {
			c.simStmts(ctx.clone(), cl.(*ast.CaseClause).Body)
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			c.simStmts(ctx.clone(), cl.(*ast.CaseClause).Body)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cl.(*ast.CommClause).Comm == nil {
				hasDefault = true
			}
		}
		for _, cl := range s.Body.List {
			comm := cl.(*ast.CommClause)
			if send, ok := comm.Comm.(*ast.SendStmt); ok && !hasDefault {
				// A select without default still blocks: treat its sends
				// like bare sends.
				c.checkSend(ctx, send)
			}
			c.simStmts(ctx.clone(), comm.Body)
		}
	case *ast.SendStmt:
		c.checkSend(ctx, s)
	case *ast.DeferStmt:
		if lock, op := c.lockOp(ctx.pkg.Info, s.Call); lock != "" && !acquiring(op) {
			// Release at function end: the lock stays held for the rest
			// of the simulation, which is exactly the defer semantics.
			return
		}
		c.simExpr(ctx, s.Call)
	case *ast.GoStmt:
		// A new goroutine starts with no locks held; its body's own
		// acquisitions are checked when its function is simulated.
	case *ast.ExprStmt:
		c.simExpr(ctx, s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.simExpr(ctx, e)
		}
		for _, e := range s.Lhs {
			c.simExpr(ctx, e)
		}
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.simExpr(ctx, e)
		}
	case *ast.DeclStmt, *ast.IncDecStmt, *ast.LabeledStmt, *ast.BranchStmt, *ast.EmptyStmt:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(*ast.CallExpr); ok {
				c.simCall(ctx, e)
				return false
			}
			return true
		})
	default:
		ast.Inspect(st, func(n ast.Node) bool {
			if e, ok := n.(*ast.CallExpr); ok {
				c.simCall(ctx, e)
				return false
			}
			return true
		})
	}
}

// simExpr walks an expression in source order, handling calls.
func (c *checker) simExpr(ctx *simCtx, e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			c.simCall(ctx, n)
			return false
		case *ast.FuncLit:
			// Closure bodies run later, with their own lock state.
			return false
		}
		return true
	})
}

func (c *checker) simCall(ctx *simCtx, call *ast.CallExpr) {
	// Arguments evaluate first (and may themselves be calls).
	for _, a := range call.Args {
		c.simExpr(ctx, a)
	}

	info := ctx.pkg.Info
	if lock, op := c.lockOp(info, call); lock != "" {
		switch {
		case op == "Lock" || op == "RLock":
			c.acquire(ctx, lock, op == "Lock", true, call.Pos())
		case op == "TryLock" || op == "TryRLock":
			c.acquire(ctx, lock, op == "TryLock", false, call.Pos())
		case op == "Unlock" || op == "RUnlock":
			c.release(ctx, lock)
		}
		return
	}

	callee := analysis.Callee(info, call)
	if callee == nil {
		return
	}
	key := analysis.FuncKey(callee)

	// Commit-hook contract: the literal passed to SetCommitHook runs
	// under the catalog write lock.
	if key == analysis.CommitHookSetter && len(call.Args) == 1 {
		c.checkHookArg(ctx, call.Args[0])
	}

	if lock, ok := analysis.FuncHoldsOnReturn[key]; ok {
		c.acquire(ctx, lock, true, true, call.Pos())
		return
	}

	// Writer-lock contract on pool accessors.
	if analysis.RequiresWriterLock[key] && !ctx.writerCtx && !ctx.holds(analysis.WriterLockRequired) {
		c.pass.Reportf(call.Pos(),
			"call to %s requires the recycler writer lock (Recycler.mu), which is not held here",
			shortKey(key))
	}

	// Listener contract: no catalog mutation from the commit window,
	// and no listener notification while the catalog mutex is held.
	if ctx.inListener {
		if analysis.CatalogMutators[key] {
			c.pass.Reportf(call.Pos(),
				"catalog.UpdateListener method calls catalog mutator %s: re-entrant mutation inside the commit window",
				shortKey(key))
		} else if s := c.summaries[key]; s != nil && s.mutates != "" {
			c.pass.Reportf(call.Pos(),
				"catalog.UpdateListener method calls %s, which reaches catalog mutator %s",
				shortKey(key), shortKey(s.mutates))
		}
	}
	if isListenerNotify(key) && ctx.holds("repro/internal/catalog.Catalog.mu") {
		c.pass.Reportf(call.Pos(),
			"update listener notified while Catalog.mu is held; the contract delivers notifications after the lock is released")
	}

	// Direct I/O.
	if analysis.IOFuncs[key] {
		c.checkIO(ctx, key, call.Pos())
	}

	// Direct trace-recorder calls.
	if analysis.TraceRecorderFuncs[key] {
		c.checkTrace(ctx, key, call.Pos())
	}

	// Transitive effects.
	if s := c.summaries[key]; s != nil {
		for lock := range s.acquires {
			c.checkTransitiveAcquire(ctx, key, lock, call.Pos())
		}
		if s.ioRoot != "" {
			c.checkTransitiveIO(ctx, key, s.ioRoot, call.Pos())
		}
		if s.traceRoot != "" {
			c.checkTransitiveTrace(ctx, key, s.traceRoot, call.Pos())
		}
	}
}

func (c *checker) acquire(ctx *simCtx, lock string, write, blocking bool, pos token.Pos) {
	rank := analysis.LockRanks[lock]
	if blocking {
		for _, h := range ctx.locks {
			if h.rank >= rank {
				if h.key == lock {
					c.pass.Reportf(pos, "re-acquires %s, already held (self-deadlock)", shortLock(lock))
				} else {
					c.pass.Reportf(pos,
						"acquires %s (rank %d) while holding %s (rank %d); the hierarchy requires strictly increasing ranks",
						shortLock(lock), rank, shortLock(h.key), h.rank)
				}
				break
			}
		}
	}
	ctx.locks = append(ctx.locks, held{key: lock, rank: rank, write: write})
}

func (c *checker) release(ctx *simCtx, lock string) {
	for i := len(ctx.locks) - 1; i >= 0; i-- {
		if ctx.locks[i].key == lock {
			ctx.locks = append(ctx.locks[:i], ctx.locks[i+1:]...)
			return
		}
	}
}

func (c *checker) checkTransitiveAcquire(ctx *simCtx, callee, lock string, pos token.Pos) {
	rank := analysis.LockRanks[lock]
	for _, h := range ctx.locks {
		if h.rank >= rank {
			c.pass.Reportf(pos,
				"calls %s, which acquires %s (rank %d), while holding %s (rank %d)",
				shortKey(callee), shortLock(lock), rank, shortLock(h.key), h.rank)
			return
		}
	}
}

func (c *checker) checkIO(ctx *simCtx, ioFunc string, pos token.Pos) {
	if h, bad := c.ioHeld(ctx); bad {
		c.pass.Reportf(pos, "%s performs I/O while %s is held", shortKey(ioFunc), shortLock(h))
	}
}

func (c *checker) checkTransitiveIO(ctx *simCtx, callee, ioRoot string, pos token.Pos) {
	if h, bad := c.ioHeld(ctx); bad {
		c.pass.Reportf(pos, "calls %s, which performs I/O (%s), while %s is held",
			shortKey(callee), shortKey(ioRoot), shortLock(h))
	}
}

// ioHeld returns a held lock under which I/O is forbidden, if any.
func (c *checker) ioHeld(ctx *simCtx) (string, bool) {
	for _, h := range ctx.locks {
		writeOnly, critical := analysis.NoIOWhileHeld[h.key]
		if critical && (!writeOnly || h.write) {
			return h.key, true
		}
	}
	return "", false
}

func (c *checker) checkTrace(ctx *simCtx, traceFunc string, pos token.Pos) {
	if h, bad := c.traceHeld(ctx); bad {
		c.pass.Reportf(pos,
			"%s called while %s is held; trace-recorder calls must run after the lock is released (Histogram.Observe is the sanctioned in-lock observation)",
			shortKey(traceFunc), shortLock(h))
	}
}

func (c *checker) checkTransitiveTrace(ctx *simCtx, callee, traceRoot string, pos token.Pos) {
	if h, bad := c.traceHeld(ctx); bad {
		c.pass.Reportf(pos,
			"calls %s, which reaches trace recorder %s, while %s is held",
			shortKey(callee), shortKey(traceRoot), shortLock(h))
	}
}

// traceHeld returns a held lock under which trace-recorder calls are
// forbidden, if any.
func (c *checker) traceHeld(ctx *simCtx) (string, bool) {
	for _, h := range ctx.locks {
		writeOnly, critical := analysis.NoTraceWhileHeld[h.key]
		if critical && (!writeOnly || h.write) {
			return h.key, true
		}
	}
	return "", false
}

// checkSend flags a blocking send to a declared spill-queue channel
// while an I/O-critical lock is held. (Sends inside a select with a
// default clause never reach here.)
func (c *checker) checkSend(ctx *simCtx, send *ast.SendStmt) {
	sel, ok := ast.Unparen(send.Chan).(*ast.SelectorExpr)
	if !ok {
		return
	}
	fieldKey := analysis.ResolveField(ctx.pkg.Info.Selections[sel])
	if !analysis.BlockingSendFields[fieldKey] {
		return
	}
	if h, bad := c.ioHeld(ctx); bad {
		c.pass.Reportf(send.Pos(),
			"blocking send to %s while %s is held; use the select-with-default idiom (demoteLocked)",
			shortLock(fieldKey), shortLock(h))
	}
}

// checkHookArg analyzes a SetCommitHook argument as running under the
// catalog write lock.
func (c *checker) checkHookArg(ctx *simCtx, arg ast.Expr) {
	arg = ast.Unparen(arg)
	if lit, ok := arg.(*ast.FuncLit); ok {
		hookCtx := &simCtx{pkg: ctx.pkg, fn: ctx.fn + "$hook"}
		hookCtx.locks = append(hookCtx.locks, held{
			key:   analysis.CommitHookHeld,
			rank:  analysis.LockRanks[analysis.CommitHookHeld],
			write: true,
		})
		c.simStmts(hookCtx, lit.Body.List)
		return
	}
	// Non-literal hook (named function or method value): consult its
	// summary.
	var fn *types.Func
	switch e := arg.(type) {
	case *ast.Ident:
		fn, _ = ctx.pkg.Info.Uses[e].(*types.Func)
	case *ast.SelectorExpr:
		fn, _ = ctx.pkg.Info.Uses[e.Sel].(*types.Func)
	default:
		return
	}
	if fn == nil {
		return
	}
	key := analysis.FuncKey(fn)
	s := c.summaries[key]
	if s == nil {
		return
	}
	if s.acquires[analysis.CommitHookHeld] {
		c.pass.Reportf(arg.Pos(),
			"commit hook %s re-enters the catalog (acquires Catalog.mu); hooks run under the catalog write lock",
			shortKey(key))
	}
	if s.ioRoot != "" {
		c.pass.Reportf(arg.Pos(),
			"commit hook %s performs I/O (%s) under the catalog write lock",
			shortKey(key), shortKey(s.ioRoot))
	}
	if s.traceRoot != "" {
		c.pass.Reportf(arg.Pos(),
			"commit hook %s calls trace recorder %s under the catalog write lock",
			shortKey(key), shortKey(s.traceRoot))
	}
}

func isListenerNotify(key string) bool {
	const prefix = "repro/internal/catalog.(UpdateListener)."
	return len(key) > len(prefix) && key[:len(prefix)] == prefix
}

// shortKey trims "repro/internal/" for readable messages.
func shortKey(key string) string  { return trimRepro(key) }
func shortLock(key string) string { return trimRepro(key) }

func trimRepro(s string) string {
	const p = "repro/internal/"
	if len(s) > len(p) && s[:len(p)] == p {
		return s[len(p):]
	}
	return s
}
