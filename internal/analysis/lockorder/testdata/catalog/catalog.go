// Fixture package for lockorder, typechecked as
// "repro/internal/catalog". It provides the UpdateListener interface
// and commit-hook surface the analyzer checks, and exercises the
// listener-notification-under-lock rule.
package catalog

import "sync"

// Table is a minimal catalog table.
type Table struct{ Name string }

// UpdateListener mirrors the real commit-window listener interface.
type UpdateListener interface {
	OnBeforeUpdate(tbl string)
	OnAbortUpdate(tbl string)
	OnUpdate(tbl string, rows int)
	OnDrop(tbl string)
}

// Catalog mirrors the real lock and hook fields.
type Catalog struct {
	mu        sync.RWMutex
	commitSeq uint64
	tables    map[string]*Table
	listeners []UpdateListener
	hook      func(tbl string)
}

// SetCommitHook mirrors the real contract: the hook runs under the
// catalog write lock on every commit.
func (c *Catalog) SetCommitHook(h func(tbl string)) {
	c.mu.Lock()
	c.hook = h
	c.mu.Unlock()
}

// CommitSeq reads under the catalog lock.
func (c *Catalog) CommitSeq() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.commitSeq
}

// Append is a catalog mutator; it fires the commit hook under mu.
func (c *Catalog) Append(tbl string, rows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.commitSeq++
	if c.hook != nil {
		c.hook(tbl)
	}
}

// Drop is a catalog mutator.
func (c *Catalog) Drop(tbl string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, tbl)
}

// badBroadcast notifies listeners with the catalog mutex held; the
// contract delivers notifications after release.
func (c *Catalog) badBroadcast(tbl string, rows int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, l := range c.listeners {
		l.OnUpdate(tbl, rows) // want "update listener notified while Catalog.mu is held"
	}
}

// goodBroadcast snapshots the listener list under the lock and
// notifies after releasing it.
func (c *Catalog) goodBroadcast(tbl string, rows int) {
	c.mu.Lock()
	ls := append([]UpdateListener(nil), c.listeners...)
	c.mu.Unlock()
	for _, l := range ls {
		l.OnUpdate(tbl, rows)
	}
}
