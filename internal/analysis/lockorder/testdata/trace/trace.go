// Fixture package for lockorder, typechecked as
// "repro/internal/trace" so the TraceRecorderFuncs invariant table
// applies. It mirrors only the surface the rule names: the Recorder
// and Tracer mutators (forbidden under the recycler writer lock and
// the catalog write lock) and the wait-free Histogram (the sanctioned
// in-lock observation, deliberately absent from the table).
package trace

import "time"

// Recorder mirrors the per-query span recorder.
type Recorder struct {
	spans  []int
	events []string
}

func (r *Recorder) EndSpan(pc int)                   { r.spans = append(r.spans, pc) }
func (r *Recorder) SetRecycle(pc int, reason string) { r.events = append(r.events, reason) }
func (r *Recorder) SetAdmission(pc int, res string)  { r.events = append(r.events, res) }
func (r *Recorder) SetParents(pc int, deps []int)    { r.spans = append(r.spans, deps...) }
func (r *Recorder) SetStages(parse, opt time.Duration) {
	r.spans = append(r.spans, int(parse+opt))
}
func (r *Recorder) SetSchedule(d time.Duration)  { r.spans = append(r.spans, int(d)) }
func (r *Recorder) AddEvent(kind, detail string) { r.events = append(r.events, kind+detail) }
func (r *Recorder) Finish(name string, d time.Duration) *Recorder {
	r.events = append(r.events, name)
	return r
}

// Tracer mirrors the engine-wide trace sink.
type Tracer struct{ events []string }

func (t *Tracer) Event(kind, detail string) { t.events = append(t.events, kind+detail) }
func (t *Tracer) FinishQuery(qt *Recorder)  { t.events = append(t.events, "finish") }

// Histogram mirrors the wait-free latency histogram: Observe is the
// one trace call sanctioned inside lock-critical sections.
type Histogram struct{ n uint64 }

func (h *Histogram) Observe(d time.Duration) { h.n++ }
