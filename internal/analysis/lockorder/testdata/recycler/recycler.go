// Fixture package for lockorder, typechecked as
// "repro/internal/recycler" so the invariant tables apply. It mirrors
// the real recycler's lock fields and exercises both flagged and
// allowed patterns.
package recycler

import (
	"os"
	"sync"
	"time"

	"repro/internal/trace"
)

// SpillRecord mirrors the real spill record shape.
type SpillRecord struct{ Sig string }

// SpillTier mirrors the real disk-tier interface: all methods may
// perform I/O.
type SpillTier interface {
	Spill(rec *SpillRecord)
	Lookup(canon string) (*SpillRecord, bool)
	Drop(canon string)
	Metas() []*SpillRecord
	Empty() bool
}

type sigShard struct {
	mu    sync.RWMutex
	bySig map[string]*Entry
}

type admission struct {
	mu      sync.Mutex
	granted int64
}

// Entry mirrors a pool entry.
type Entry struct {
	ID     uint64
	Sig    string
	Result int
}

// Pool mirrors the real pool: entries guarded by the owning
// Recycler's writer lock, the signature index by shard locks.
type Pool struct {
	shards  [4]sigShard
	entries map[uint64]*Entry
}

// Add mirrors the real contract: caller holds the writer lock.
func (p *Pool) Add(e *Entry) {
	p.entries[e.ID] = e
	sh := &p.shards[0]
	sh.mu.Lock()
	sh.bySig[e.Sig] = e
	sh.mu.Unlock()
}

// Len mirrors the real contract: caller holds the writer lock.
func (p *Pool) Len() int { return len(p.entries) }

// Recycler mirrors the real lock fields.
type Recycler struct {
	mu      sync.Mutex
	stateMu sync.RWMutex
	pool    *Pool
	adm     *admission
	tier    SpillTier
	spillQ  chan *SpillRecord
	epoch   uint64
}

// lockWriter mirrors the real helper: acquires mu and returns with it
// held (the TryLock fast path must not be flagged as a re-acquire).
func (r *Recycler) lockWriter() {
	if r.mu.TryLock() {
		return
	}
	r.mu.Lock()
}

// goodOrder acquires in increasing rank: mu then stateMu.
func (r *Recycler) goodOrder() {
	r.lockWriter()
	defer r.mu.Unlock()
	r.stateMu.Lock()
	r.epoch++
	r.stateMu.Unlock()
	r.pool.Add(&Entry{ID: 1})
}

// badOrder acquires mu while holding stateMu: rank 10 under rank 20.
func (r *Recycler) badOrder() {
	r.stateMu.Lock()
	defer r.stateMu.Unlock()
	r.mu.Lock() // want "acquires recycler.Recycler.mu \(rank 10\) while holding recycler.Recycler.stateMu \(rank 20\)"
	r.mu.Unlock()
}

// badReentry re-acquires the already-held writer lock.
func (r *Recycler) badReentry() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mu.Lock() // want "re-acquires recycler.Recycler.mu, already held"
}

// badTransitive calls a helper that acquires stateMu while a
// same-or-higher shard lock is held.
func (r *Recycler) badTransitive() {
	sh := &r.pool.shards[0]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	r.bumpEpoch() // want "calls recycler.\(\*Recycler\).bumpEpoch, which acquires recycler.Recycler.stateMu \(rank 20\), while holding recycler.sigShard.mu \(rank 30\)"
}

func (r *Recycler) bumpEpoch() {
	r.stateMu.Lock()
	r.epoch++
	r.stateMu.Unlock()
}

// badIOUnderWriter performs file I/O under the writer lock.
func (r *Recycler) badIOUnderWriter() {
	r.lockWriter()
	defer r.mu.Unlock()
	os.Create("/tmp/spill") // want "performs I/O while recycler.Recycler.mu is held"
}

// badTierUnderWriter consults the disk tier under the writer lock
// (the Prewarm shape, which real code suppresses with a reason).
func (r *Recycler) badTierUnderWriter() {
	r.lockWriter()
	defer r.mu.Unlock()
	r.tier.Drop("sig") // want "performs I/O while recycler.Recycler.mu is held"
}

// goodTierOutsideLock consults the tier before locking.
func (r *Recycler) goodTierOutsideLock() {
	rec, ok := r.tier.Lookup("sig")
	if !ok {
		return
	}
	r.lockWriter()
	defer r.mu.Unlock()
	r.pool.Add(&Entry{Sig: rec.Sig})
}

// badBlockingSend sends to the spiller queue with no default case.
func (r *Recycler) badBlockingSend(rec *SpillRecord) {
	r.lockWriter()
	defer r.mu.Unlock()
	r.spillQ <- rec // want "blocking send to recycler.Recycler.spillQ while recycler.Recycler.mu is held"
}

// goodSelectSend is the sanctioned demoteLocked idiom.
func (r *Recycler) goodSelectSend(rec *SpillRecord) {
	r.lockWriter()
	defer r.mu.Unlock()
	select {
	case r.spillQ <- rec:
	default:
	}
}

// badUnlockedPoolCall calls a writer-lock pool method with no lock.
func (r *Recycler) badUnlockedPoolCall() int {
	return r.pool.Len() // want "call to recycler.\(\*Pool\).Len requires the recycler writer lock"
}

// exitLocked is declared writer-context in the invariant tables, so
// its unlocked pool calls are fine.
func (r *Recycler) exitLocked(e *Entry) {
	r.pool.Add(e)
}

// badTraceUnderWriter records a recycler decision while the writer
// lock is held: forbidden, the Recorder takes its own mutex for
// events and must never nest inside rank-10.
func (r *Recycler) badTraceUnderWriter(rec *trace.Recorder) {
	r.lockWriter()
	defer r.mu.Unlock()
	rec.SetRecycle(0, "hit:exact") // want "trace.\(\*Recorder\).SetRecycle called while recycler.Recycler.mu is held"
}

// badTracerEventUnderWriter emits an engine-wide tracer event under
// the writer lock.
func (r *Recycler) badTracerEventUnderWriter(tr *trace.Tracer) {
	r.lockWriter()
	defer r.mu.Unlock()
	tr.Event("commit.invalidate", "q1") // want "trace.\(\*Tracer\).Event called while recycler.Recycler.mu is held"
}

// goodTraceAfterUnlock is the sanctioned shape: capture under the
// lock, record after releasing it.
func (r *Recycler) goodTraceAfterUnlock(rec *trace.Recorder) {
	r.lockWriter()
	n := r.pool.Len()
	r.mu.Unlock()
	rec.SetAdmission(n, "admit:granted")
}

// goodHistogramUnderWriter observes a wait-free histogram under the
// lock: Histogram.Observe is deliberately not in TraceRecorderFuncs.
func (r *Recycler) goodHistogramUnderWriter(h *trace.Histogram, wait time.Duration) {
	r.lockWriter()
	defer r.mu.Unlock()
	h.Observe(wait)
}

// badTransitiveTrace reaches a tracer through a helper while the
// writer lock is held.
func (r *Recycler) badTransitiveTrace(tr *trace.Tracer) {
	r.lockWriter()
	defer r.mu.Unlock()
	r.emitCommitEvent(tr) // want "calls recycler.\(\*Recycler\).emitCommitEvent, which reaches trace recorder trace.\(\*Tracer\).Event, while recycler.Recycler.mu is held"
}

func (r *Recycler) emitCommitEvent(tr *trace.Tracer) {
	tr.Event("commit.maintain", "q2")
}
