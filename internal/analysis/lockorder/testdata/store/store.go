// Fixture package for lockorder, typechecked as
// "repro/internal/store" and importing the catalog fixture. It
// reproduces the PR 4 shape: a durable store installing a commit hook
// and registering update listeners.
package store

import (
	"os"

	"repro/internal/catalog"
)

// Store mirrors the durable store: a catalog binding plus a WAL file.
type Store struct {
	cat *catalog.Catalog
	wal *os.File
}

// badHookReenter installs a named hook that re-enters the catalog —
// deadlock, since hooks already run under the catalog write lock.
func (s *Store) badHookReenter() {
	s.cat.SetCommitHook(s.hookReenter) // want "commit hook store.\(\*Store\).hookReenter re-enters the catalog"
}

func (s *Store) hookReenter(tbl string) {
	_ = s.cat.CommitSeq()
}

// badHookLit installs a literal hook that mutates the catalog and
// writes the WAL while the catalog write lock is held.
func (s *Store) badHookLit() {
	s.cat.SetCommitHook(func(tbl string) {
		s.cat.Append(tbl, 1)   // want "calls catalog.\(\*Catalog\).Append, which acquires catalog.Catalog.mu \(rank 50\), while holding catalog.Catalog.mu \(rank 50\)"
		s.wal.WriteString(tbl) // want "performs I/O while catalog.Catalog.mu is held"
	})
}

// goodHook only copies values out; safe under the write lock.
func (s *Store) goodHook() {
	var last string
	s.cat.SetCommitHook(func(tbl string) {
		last = tbl
	})
	_ = last
}

// auditListener mutates the catalog from the commit window — the
// re-entrant shape the listener contract forbids.
type auditListener struct {
	cat *catalog.Catalog
}

func (a *auditListener) OnBeforeUpdate(tbl string) {}
func (a *auditListener) OnAbortUpdate(tbl string)  {}

func (a *auditListener) OnUpdate(tbl string, rows int) {
	a.cat.Append(tbl, rows) // want "catalog.UpdateListener method calls catalog mutator catalog.\(\*Catalog\).Append"
}

func (a *auditListener) OnDrop(tbl string) {
	a.cleanup(tbl) // want "catalog.UpdateListener method calls store.\(\*auditListener\).cleanup, which reaches catalog mutator catalog.\(\*Catalog\).Drop"
}

func (a *auditListener) cleanup(tbl string) {
	a.cat.Drop(tbl)
}

// statsListener only reads the catalog; allowed in the commit window.
type statsListener struct {
	cat *catalog.Catalog
	seq uint64
}

func (s *statsListener) OnBeforeUpdate(tbl string) {}
func (s *statsListener) OnAbortUpdate(tbl string)  {}
func (s *statsListener) OnUpdate(tbl string, rows int) {
	s.seq = s.cat.CommitSeq()
}
func (s *statsListener) OnDrop(tbl string) {}
