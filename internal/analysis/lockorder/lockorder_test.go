package lockorder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/lockorder"
)

// TestRecycler covers the four-level recycler hierarchy: ordering,
// re-entry, I/O, blocking sends and trace-recorder calls under the
// writer lock, and the Pool writer-lock call contract. The trace
// fixture is listed first so the recycler fixture can import it.
func TestRecycler(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer,
		analysistest.Pkg{Dir: "trace", Path: "repro/internal/trace"},
		analysistest.Pkg{Dir: "recycler", Path: "repro/internal/recycler"})
}

// TestCatalogHooks covers the PR 4 shape: commit hooks that call back
// into the catalog or do I/O under the catalog write lock, listeners
// that mutate the catalog from the commit window, and notification
// with the catalog mutex held.
func TestCatalogHooks(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer,
		analysistest.Pkg{Dir: "catalog", Path: "repro/internal/catalog"},
		analysistest.Pkg{Dir: "store", Path: "repro/internal/store"})
}
