package epochguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/epochguard"
)

// TestEpochGuard covers the PR 1 race class: hit serving, candidate
// subsumption and pool admission with and without consulting the
// update-epoch guard predicates.
func TestEpochGuard(t *testing.T) {
	analysistest.Run(t, "testdata", epochguard.Analyzer,
		analysistest.Pkg{Dir: "recycler", Path: "repro/internal/recycler"})
}
