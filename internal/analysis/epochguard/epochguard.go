// Package epochguard checks the PR 1 race class: recycler code that
// reads pool-entry content (hit lookups, subsumption candidate scans)
// must consult the per-table update-epoch guard before serving or
// accounting the entry, and every pool admission outside a
// writer-context function must re-validate dependency freshness
// first. Without the guard, a query that straddles a commit can be
// served an intermediate from the wrong side of it — the
// commit-vs-invalidation race the epoch guard exists to close.
//
// The pass is a per-function, source-order taint analysis over the
// declared accessor set (analysis.EpochSources): values obtained from
// a source are "unconsulted" until passed to a sanitizer
// (analysis.EpochSanitizers — usable, staleForQuery, depsFresh);
// reaching a sink (noteReuse, a Hit:true result built from the entry)
// unconsulted is the finding. (*Pool).Add has its own rule: a
// sanitizer call must precede it in the same function.
package epochguard

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the epochguard entry point.
var Analyzer = &analysis.Analyzer{
	Name: "epochguard",
	Doc:  "pool-entry reads must consult the update-epoch guard before reuse or admission",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if pass.Target.Path != "repro/internal/recycler" {
		return nil
	}
	for _, file := range pass.Target.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type state struct {
	pass *analysis.Pass
	// unconsulted holds variables carrying entry content read from a
	// pool accessor and not yet passed to a guard predicate.
	unconsulted map[types.Object]bool
	// sanitized notes that some guard predicate ran in this function
	// before the statement being examined (the (*Pool).Add rule).
	sanitized bool
	writerCtx bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	obj, _ := pass.Target.Info.Defs[fd.Name].(*types.Func)
	if obj == nil {
		return
	}
	key := analysis.FuncKey(obj)
	if analysis.EpochSanitizers[key] {
		return // the guard's own implementation
	}
	st := &state{
		pass:        pass,
		unconsulted: map[types.Object]bool{},
		writerCtx:   analysis.WriterContextFuncs[key],
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.visitAssign(n)
		case *ast.RangeStmt:
			st.visitRange(n)
		case *ast.CallExpr:
			st.visitCall(n)
		case *ast.ReturnStmt:
			st.visitReturn(n)
		}
		return true
	})
}

// visitAssign taints LHS variables assigned from a source call (or
// from another tainted value's element).
func (st *state) visitAssign(as *ast.AssignStmt) {
	info := st.pass.Target.Info
	fromSource := false
	for _, rhs := range as.Rhs {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok {
			if callee := analysis.Callee(info, call); callee != nil {
				if analysis.EpochSources[analysis.FuncKey(callee)] {
					fromSource = true
				}
			}
		}
	}
	if !fromSource {
		return
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				st.taint(obj)
			} else if obj := info.Uses[id]; obj != nil {
				st.taint(obj)
			}
		}
	}
}

// taint marks a variable unconsulted, unless it is boolean/ok-shaped
// (the `ok` of LookupHit carries no entry content).
func (st *state) taint(obj types.Object) {
	if b, ok := obj.Type().Underlying().(*types.Basic); ok && b.Info()&types.IsBoolean != 0 {
		return
	}
	st.unconsulted[obj] = true
}

// visitRange taints the value variable of a range over a tainted
// candidate slice.
func (st *state) visitRange(rs *ast.RangeStmt) {
	info := st.pass.Target.Info
	tainted := false
	switch x := ast.Unparen(rs.X).(type) {
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil && st.unconsulted[obj] {
			tainted = true
		}
	case *ast.CallExpr:
		if callee := analysis.Callee(info, x); callee != nil {
			if analysis.EpochSources[analysis.FuncKey(callee)] {
				tainted = true
			}
		}
	}
	if !tainted || rs.Value == nil {
		return
	}
	if id, ok := rs.Value.(*ast.Ident); ok && id.Name != "_" {
		if obj := info.Defs[id]; obj != nil {
			st.taint(obj)
		}
	}
}

// visitCall handles sanitizers (cleanse their arguments), sinks
// (report unconsulted arguments) and the (*Pool).Add precedence rule.
func (st *state) visitCall(call *ast.CallExpr) {
	info := st.pass.Target.Info
	callee := analysis.Callee(info, call)
	if callee == nil {
		return
	}
	key := analysis.FuncKey(callee)

	if analysis.EpochSanitizers[key] {
		st.sanitized = true
		for _, a := range call.Args {
			if obj := identObj(info, a); obj != nil {
				delete(st.unconsulted, obj)
			}
		}
		return
	}

	if analysis.EpochSinks[key] {
		for _, a := range call.Args {
			if obj := identObj(info, a); obj != nil && st.unconsulted[obj] {
				st.pass.Reportf(a.Pos(),
					"%s serves pool entry %q without consulting the update-epoch guard (usable/staleForQuery); this is the commit-vs-invalidation race",
					shortKey(key), obj.Name())
				delete(st.unconsulted, obj) // one report per variable
			}
		}
		return
	}

	if key == analysis.EpochAddSink && !st.writerCtx && !st.sanitized {
		st.pass.Reportf(call.Pos(),
			"(*Pool).Add without a preceding freshness check (staleForQuery/depsFresh/usable) in this function; the admitted entry may straddle a commit")
	}
}

// visitReturn flags returning entry content from an unconsulted
// variable (the served-hit shape: mal.EntryResult{Hit: true, Val:
// e.Result} or a bare e.Result).
func (st *state) visitReturn(ret *ast.ReturnStmt) {
	info := st.pass.Target.Info
	for _, res := range ret.Results {
		ast.Inspect(res, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if sel.Sel.Name != "Result" {
				return true
			}
			if obj := identObj(info, sel.X); obj != nil && st.unconsulted[obj] {
				st.pass.Reportf(sel.Pos(),
					"returns %s.Result without consulting the update-epoch guard (usable/staleForQuery)",
					obj.Name())
				delete(st.unconsulted, obj)
			}
			return true
		})
	}
}

// identObj resolves an expression to the object of its root
// identifier (e, &e, e.Result → e).
func identObj(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.Uses[x]
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func shortKey(key string) string {
	const p = "repro/internal/recycler."
	if len(key) > len(p) && key[:len(p)] == p {
		return key[len(p):]
	}
	return key
}
