// Fixture package for epochguard, typechecked as
// "repro/internal/recycler". It mirrors the pool accessor / guard
// predicate / reuse sink surfaces and exercises the PR 1
// commit-vs-invalidation shapes.
package recycler

// Entry mirrors a pool entry with epoch-stamped content.
type Entry struct {
	ID     uint64
	Sig    string
	Epoch  uint64
	Result int
}

// Hit mirrors the served-hit result shape.
type Hit struct {
	Hit bool
	Val int
}

// Pool mirrors the accessor surface (EpochSources).
type Pool struct {
	bySig map[string]*Entry
	byCol map[string][]*Entry
}

// LookupHit is an epoch source.
func (p *Pool) LookupHit(sig string) (*Entry, bool) {
	e, ok := p.bySig[sig]
	return e, ok
}

// SelectCandidates is an epoch source.
func (p *Pool) SelectCandidates(col string) []*Entry {
	return p.byCol[col]
}

// Add is the admission sink.
func (p *Pool) Add(e *Entry) {
	p.bySig[e.Sig] = e
}

// Recycler mirrors the guard predicates and the reuse sink.
type Recycler struct {
	pool  *Pool
	epoch map[string]uint64
}

// usable is a guard predicate (EpochSanitizers).
func (r *Recycler) usable(e *Entry, qEpoch uint64) bool {
	return e.Epoch <= qEpoch
}

// staleForQuery is a guard predicate.
func (r *Recycler) staleForQuery(e *Entry, qEpoch uint64) bool {
	return e.Epoch > qEpoch
}

// depsFresh is a guard predicate.
func (r *Recycler) depsFresh(e *Entry) bool {
	return r.epoch[e.Sig] == e.Epoch
}

// noteReuse is the reuse-accounting sink.
func (r *Recycler) noteReuse(e *Entry) {}

// badServe accounts a reuse without consulting the guard: a query
// straddling a commit is served the wrong side of it.
func (r *Recycler) badServe(sig string, qEpoch uint64) int {
	e, ok := r.pool.LookupHit(sig)
	if !ok {
		return 0
	}
	r.noteReuse(e) // want "noteReuse serves pool entry \"e\" without consulting the update-epoch guard"
	return e.Result
}

// badReturn serves entry content without the guard.
func (r *Recycler) badReturn(sig string) Hit {
	e, _ := r.pool.LookupHit(sig)
	return Hit{Hit: true, Val: e.Result} // want "returns e.Result without consulting the update-epoch guard"
}

// goodServe consults usable before serving.
func (r *Recycler) goodServe(sig string, qEpoch uint64) int {
	e, ok := r.pool.LookupHit(sig)
	if !ok || !r.usable(e, qEpoch) {
		return 0
	}
	r.noteReuse(e)
	return e.Result
}

// badSubsume accounts candidate reuse without the per-entry guard.
func (r *Recycler) badSubsume(col string, qEpoch uint64) {
	for _, e := range r.pool.SelectCandidates(col) {
		r.noteReuse(e) // want "serves pool entry \"e\" without consulting"
	}
}

// goodSubsume filters stale candidates first.
func (r *Recycler) goodSubsume(col string, qEpoch uint64) {
	for _, e := range r.pool.SelectCandidates(col) {
		if r.staleForQuery(e, qEpoch) {
			continue
		}
		r.noteReuse(e)
	}
}

// badAdmit admits an entry with no freshness re-validation.
func (r *Recycler) badAdmit(e *Entry) {
	r.pool.Add(e) // want "\(\*Pool\).Add without a preceding freshness check"
}

// goodAdmit re-validates dependencies before admission.
func (r *Recycler) goodAdmit(e *Entry) {
	if !r.depsFresh(e) {
		return
	}
	r.pool.Add(e)
}

// exitLocked is declared writer-context: admissions here run with
// invalidation excluded by the writer lock.
func (r *Recycler) exitLocked(e *Entry) {
	r.pool.Add(e)
}
