package analysis

// This file is the single place the repo's machine-checked invariants
// are declared. The four analyzers (lockorder, atomicfield,
// singlesig, epochguard) read these tables; adding a lock, an atomic
// counter, an identity function or a guarded accessor means adding a
// line here, not teaching an analyzer new code. docs/LINTING.md
// documents the procedure.

// ---------------------------------------------------------------------
// lockorder: the lock hierarchy.
//
// Ranks encode the documented acquisition order (recycler.Recycler's
// doc comment, PR 3): a lock may only be acquired while every held
// lock has a strictly smaller rank. The catalog mutex sits above the
// recycler locks because recycler code consults the catalog while
// holding its own locks (spillRecordLocked → TableStamp, maintain →
// refreshBindFromCatalog), never the reverse.
// ---------------------------------------------------------------------

// LockRanks maps "pkg/path.Type.field" of every ranked mutex to its
// level in the hierarchy.
var LockRanks = map[string]int{
	"repro/internal/recycler.Recycler.mu":      10, // writer lock (level 1)
	"repro/internal/recycler.Recycler.stateMu": 20, // epoch guard state (level 2)
	"repro/internal/recycler.sigShard.mu":      30, // signature index shards (level 3)
	"repro/internal/recycler.admission.mu":     40, // admission policy (leaf, level 4)
	"repro/internal/catalog.Catalog.mu":        50, // catalog RWMutex (outermost resource)
}

// FuncHoldsOnReturn names locking helpers: calling one acquires the
// named lock and leaves it held for the caller to release.
var FuncHoldsOnReturn = map[string]string{
	"repro/internal/recycler.(*Recycler).lockWriter": "repro/internal/recycler.Recycler.mu",
}

// NoIOWhileHeld lists the locks under which blocking I/O is forbidden
// (the recycler writer lock serialises the whole pool; the catalog
// write lock serialises every commit). The value records whether only
// the write side is I/O-critical (RWMutex read holders may do I/O).
var NoIOWhileHeld = map[string]bool{ // lock key -> write side only
	"repro/internal/recycler.Recycler.mu": false, // plain Mutex: any hold
	"repro/internal/catalog.Catalog.mu":   true,  // RLock holders may do I/O
}

// IOFuncs names functions/methods that perform (or may block on)
// file-system I/O. Transitive callers inherit the property.
var IOFuncs = map[string]bool{
	"os.(*File).Write":       true,
	"os.(*File).WriteString": true,
	"os.(*File).WriteAt":     true,
	"os.(*File).ReadAt":      true,
	"os.(*File).Sync":        true,
	"os.(*File).Truncate":    true,
	"os.WriteFile":           true,
	"os.ReadFile":            true,
	"os.Create":              true,
	"os.Open":                true,
	"os.OpenFile":            true,
	"os.Rename":              true,
	"os.Remove":              true,
	"os.RemoveAll":           true,
	"os.MkdirAll":            true,
	"bufio.(*Writer).Flush":  true,
	// The disk tier interface: every method is declared "may perform
	// I/O" in its doc contract, so calls through it count as I/O no
	// matter which implementation is behind it.
	"repro/internal/recycler.(SpillTier).Spill":  true,
	"repro/internal/recycler.(SpillTier).Lookup": true,
	"repro/internal/recycler.(SpillTier).Drop":   true,
	"repro/internal/recycler.(SpillTier).Metas":  true,
	"repro/internal/recycler.(SpillTier).Empty":  true,
}

// NoTraceWhileHeld lists the locks under which trace-recorder calls
// are forbidden (PR 9): Recorder/Tracer methods allocate and take the
// tracer's internal mutex, so a call under the recycler writer lock
// or the catalog write lock would serialise the whole pool (or every
// commit) behind the observability layer — and events emitted there
// could deadlock against a concurrent FinishQuery. Histogram.Observe
// is deliberately NOT listed in TraceRecorderFuncs: it is wait-free
// atomics, the single sanctioned in-lock observation.
var NoTraceWhileHeld = map[string]bool{ // lock key -> write side only
	"repro/internal/recycler.Recycler.mu": false, // plain Mutex: any hold
	"repro/internal/catalog.Catalog.mu":   true,  // RLock holders may trace
}

// TraceRecorderFuncs names the trace-recorder entry points the
// NoTraceWhileHeld rule applies to. Transitive callers inherit the
// property.
var TraceRecorderFuncs = map[string]bool{
	"repro/internal/trace.(*Recorder).EndSpan":      true,
	"repro/internal/trace.(*Recorder).SetRecycle":   true,
	"repro/internal/trace.(*Recorder).SetAdmission": true,
	"repro/internal/trace.(*Recorder).SetParents":   true,
	"repro/internal/trace.(*Recorder).SetStages":    true,
	"repro/internal/trace.(*Recorder).SetSchedule":  true,
	"repro/internal/trace.(*Recorder).AddEvent":     true,
	"repro/internal/trace.(*Recorder).Finish":       true,
	"repro/internal/trace.(*Tracer).Event":          true,
	"repro/internal/trace.(*Tracer).FinishQuery":    true,
}

// BlockingSendFields lists channel fields a *blocking* send to is
// treated as I/O (the spiller queue: demoteLocked's select-with-
// default is the sanctioned idiom; a bare send under the writer lock
// would stall every pool mutation behind the disk).
var BlockingSendFields = map[string]bool{
	"repro/internal/recycler.Recycler.spillQ": true,
}

// CommitHookSetter is the function whose func-literal argument runs
// under the catalog write lock (commit order = invocation order). Its
// body is analyzed as if Catalog.mu were write-held on entry: catalog
// re-entry deadlocks, and I/O is flagged per NoIOWhileHeld.
const CommitHookSetter = "repro/internal/catalog.(*Catalog).SetCommitHook"

// CommitHookHeld is the lock the commit hook runs under.
const CommitHookHeld = "repro/internal/catalog.Catalog.mu"

// ListenerInterface and ListenerMethods name the catalog's update
// listener contract. Listener methods run *outside* the catalog lock
// (they may read freely) but inside the commit critical window, so
// re-entrant catalog *mutation* from one would interleave a commit
// inside a commit.
const ListenerInterface = "repro/internal/catalog.UpdateListener"

var ListenerMethods = map[string]bool{
	"OnBeforeUpdate": true,
	"OnAbortUpdate":  true,
	"OnUpdate":       true,
	"OnDrop":         true,
}

// CatalogMutators are the catalog methods a listener must not call.
var CatalogMutators = map[string]bool{
	"repro/internal/catalog.(*Catalog).CreateTable":    true,
	"repro/internal/catalog.(*Catalog).Drop":           true,
	"repro/internal/catalog.(*Catalog).Append":         true,
	"repro/internal/catalog.(*Catalog).Delete":         true,
	"repro/internal/catalog.(*Catalog).UpdateInPlace":  true,
	"repro/internal/catalog.(*Catalog).AddListener":    true,
	"repro/internal/catalog.(*Catalog).RemoveListener": true,
	"repro/internal/catalog.(*Catalog).SetCommitHook":  true,
	"repro/internal/catalog.(*Catalog).ImportTable":    true,
}

// RequiresWriterLock lists the Pool methods whose doc contract says
// "caller holds the recycler writer lock": they touch the entries map
// and the subsumption/column indexes, which only the writer lock
// keeps consistent. Len/Bytes/All/Dump/TypeBreakdown/ReusedStats are
// included — they iterate or read state mutated under the writer
// lock, so an unlocked call races structural changes.
var RequiresWriterLock = map[string]bool{
	"repro/internal/recycler.(*Pool).Get":                true,
	"repro/internal/recycler.(*Pool).Add":                true,
	"repro/internal/recycler.(*Pool).Remove":             true,
	"repro/internal/recycler.(*Pool).Leaves":             true,
	"repro/internal/recycler.(*Pool).EntriesByColumn":    true,
	"repro/internal/recycler.(*Pool).SelectCandidates":   true,
	"repro/internal/recycler.(*Pool).LikeCandidates":     true,
	"repro/internal/recycler.(*Pool).SemijoinCandidates": true,
	"repro/internal/recycler.(*Pool).All":                true,
	"repro/internal/recycler.(*Pool).Len":                true,
	"repro/internal/recycler.(*Pool).Bytes":              true,
	"repro/internal/recycler.(*Pool).Dump":               true,
	"repro/internal/recycler.(*Pool).TypeBreakdown":      true,
	"repro/internal/recycler.(*Pool).ReusedStats":        true,
}

// WriterLockRequired is the lock RequiresWriterLock refers to.
const WriterLockRequired = "repro/internal/recycler.Recycler.mu"

// WriterContextFuncs are functions whose own doc contract is "caller
// holds the writer lock": their bodies are analyzed as if Recycler.mu
// were held on entry, and calls to them from a context that neither
// holds the lock nor is itself listed here are flagged. Pool methods
// from RequiresWriterLock are implicitly writer-context.
var WriterContextFuncs = map[string]bool{
	"repro/internal/recycler.(*Recycler).exitLocked":             true,
	"repro/internal/recycler.(*Recycler).spillRecordLocked":      true,
	"repro/internal/recycler.(*Recycler).demoteLocked":           true,
	"repro/internal/recycler.(*Recycler).maintain":               true,
	"repro/internal/recycler.(*Recycler).maintainNonDelta":       true,
	"repro/internal/recycler.(*Recycler).maintainBind":           true,
	"repro/internal/recycler.(*Recycler).maintainFilter":         true,
	"repro/internal/recycler.(*Recycler).maintainProject":        true,
	"repro/internal/recycler.(*Recycler).maintainAgg":            true,
	"repro/internal/recycler.(*Recycler).maintParent":            true,
	"repro/internal/recycler.(*Recycler).refreshBindFromCatalog": true,
	"repro/internal/recycler.(*Recycler).refreshResult":          true,
	"repro/internal/recycler.(*Recycler).invalidate":             true,
	"repro/internal/recycler.(*Recycler).propagate":              true,
	"repro/internal/recycler.(*Recycler).propagateBind":          true,
	"repro/internal/recycler.(*Recycler).propagateBindIdx":       true,
	"repro/internal/recycler.(*Recycler).propagateSelect":        true,
	"repro/internal/recycler.(*Recycler).propagateView":          true,
	"repro/internal/recycler.(*Recycler).propagateJoin":          true,
	"repro/internal/recycler.(*Recycler).cleanCache":             true,
	"repro/internal/recycler.(*Recycler).pickVictims":            true,
	"repro/internal/recycler.(*Recycler).pickVictimsMem":         true,
	"repro/internal/recycler.(*Recycler).evict":                  true,
	"repro/internal/recycler.(*Recycler).columnDeps":             true,
	"repro/internal/recycler.(*Recycler).noteDeltaRows":          true,
	"repro/internal/recycler.(*Recycler).parentInfo":             true,
	"repro/internal/recycler.(*Recycler).isSubsetOf":             true,
}

// ---------------------------------------------------------------------
// atomicfield: the atomic-access discipline.
// ---------------------------------------------------------------------

// AtomicFields lists every field the concurrency design requires to
// be a typed sync/atomic value (atomic.Int64 & friends). The analyzer
// verifies the declaration site still carries an atomic type — a
// refactor quietly turning one back into a plain int64 is exactly the
// regression this table exists to catch.
var AtomicFields = map[string]bool{
	// repro (engine)
	"repro.Engine.queryID": true,
	"repro.Engine.errors":  true,
	// pool entries — the lock-free hit path mutates these concurrently
	"repro/internal/recycler.Entry.SavedTotal":  true,
	"repro/internal/recycler.Entry.LastUseTick": true,
	"repro/internal/recycler.Entry.ReuseCount":  true,
	"repro/internal/recycler.Entry.GlobalReuse": true,
	"repro/internal/recycler.Entry.valid":       true,
	"repro/internal/recycler.Entry.pinnedQuery": true,
	// pool + recycler telemetry
	"repro/internal/recycler.Pool.tick":                 true,
	"repro/internal/recycler.Pool.reuses":               true,
	"repro/internal/recycler.Pool.shardWaits":           true,
	"repro/internal/recycler.Pool.shardWaitNs":          true,
	"repro/internal/recycler.Recycler.writerWaits":      true,
	"repro/internal/recycler.Recycler.writerWaitNs":     true,
	"repro/internal/recycler.Recycler.spilled":          true,
	"repro/internal/recycler.Recycler.reloaded":         true,
	"repro/internal/recycler.Recycler.staleDropped":     true,
	"repro/internal/recycler.Recycler.prewarmed":        true,
	"repro/internal/recycler.Recycler.maintained":       true,
	"repro/internal/recycler.Recycler.maintainFallback": true,
	"repro/internal/recycler.Recycler.maintainNs":       true,
	"repro/internal/recycler.Recycler.deltaRows":        true,
	// optimizer statistics — bumped from concurrent compilations
	"repro/internal/opt.Stats.CSEMerged": true,
	"repro/internal/opt.Stats.Commuted":  true,
	// server counters
	"repro/internal/server.Server.queries":        true,
	"repro/internal/server.Server.execs":          true,
	"repro/internal/server.Server.errorsN":        true,
	"repro/internal/server.Server.rejected":       true,
	"repro/internal/server.Server.active":         true,
	"repro/internal/server.preparedCache.hitsN":   true,
	"repro/internal/server.preparedCache.missesN": true,
	// store + mal + bench
	"repro/internal/store.Store.walErr":   true,
	"repro/internal/mal.Template.dag":     true,
	"repro/internal/bench.Runner.queryID": true,
}

// MutexGuardedFields lists plain fields whose consistency comes from
// a mutex, not from atomics. Touching one with sync/atomic free
// functions mixes disciplines: the atomic op orders nothing for the
// mutex-guarded readers and hides the race from -race.
var MutexGuardedFields = map[string]string{ // field -> guarding lock, for the message
	"repro/internal/catalog.Catalog.commitSeq":     "catalog.Catalog.mu",
	"repro/internal/recycler.Pool.Admitted":        "recycler writer lock",
	"repro/internal/recycler.Pool.Evicted":         "recycler writer lock",
	"repro/internal/recycler.Pool.Invalidated":     "recycler writer lock",
	"repro/internal/recycler.Pool.totalBytes":      "recycler writer lock",
	"repro/internal/recycler.Recycler.spillClosed": "recycler writer lock",
}

// ---------------------------------------------------------------------
// singlesig: the single-signature identity invariant (PR 5).
// ---------------------------------------------------------------------

// SinglesigAllowedPkgs are packages allowed to derive identity
// strings: internal/plan is the identity implementation.
var SinglesigAllowedPkgs = map[string]bool{
	"repro/internal/plan": true,
}

// SinglesigAllowedFuncs are the sanctioned identity derivations
// outside internal/plan: mal.Instr.Name is the op spelling and
// StaticSig the compile-time identity CSE and the DAG builder key on.
// Their *results* may be used as keys directly; combining them into
// new strings is what the analyzer forbids.
var SinglesigAllowedFuncs = map[string]bool{
	"repro/internal/mal.(*Instr).Name":      true,
	"repro/internal/mal.(*Instr).StaticSig": true,
}

// IdentitySources name the functions and fields whose string results
// are identity-bearing: deriving a *new* string from one (fmt.Sprintf,
// concatenation) and using it as a map key is an ad-hoc identity.
var IdentitySourceFuncs = map[string]bool{
	"repro/internal/mal.(*Instr).Name":          true,
	"repro/internal/mal.(*Instr).StaticSig":     true,
	"repro/internal/plan.RenderInstr":           true,
	"repro/internal/plan.(Signature).Key":       true,
	"repro/internal/plan.(Signature).Canonical": true,
}

var IdentitySourceFields = map[string]bool{
	"repro/internal/mal.Instr.Module":        true,
	"repro/internal/mal.Instr.Op":            true,
	"repro/internal/recycler.Entry.Sig":      true,
	"repro/internal/recycler.Entry.CanonSig": true,
	"repro/internal/recycler.Entry.OpName":   true,
	"repro/internal/recycler.Entry.Render":   true,
}

// ---------------------------------------------------------------------
// epochguard: the PR 1 commit-vs-invalidation race class.
// ---------------------------------------------------------------------

// EpochSources are the pool accessors whose results carry cached
// entry content: anything read from one is unusable until an epoch
// guard said so for the asking query.
var EpochSources = map[string]bool{
	"repro/internal/recycler.(*Pool).LookupHit":          true,
	"repro/internal/recycler.(*Pool).Lookup":             true,
	"repro/internal/recycler.(*Pool).SelectCandidates":   true,
	"repro/internal/recycler.(*Pool).LikeCandidates":     true,
	"repro/internal/recycler.(*Pool).SemijoinCandidates": true,
}

// EpochSanitizers are the guard predicates: a call with the entry (or
// its deps) as an argument marks the value consulted.
var EpochSanitizers = map[string]bool{
	"repro/internal/recycler.(*Recycler).usable":        true,
	"repro/internal/recycler.(*Recycler).staleForQuery": true,
	"repro/internal/recycler.(*Recycler).depsFresh":     true,
}

// EpochSinks are the reuse paths: serving or accounting a cached
// entry. Reaching one with an unconsulted entry is the PR 1 race.
var EpochSinks = map[string]bool{
	"repro/internal/recycler.(*Recycler).noteReuse": true,
}

// EpochAddSink is the admission path: every (*Pool).Add outside a
// writer-context function must be preceded in its function by one of
// the sanitizer calls (exitLocked → staleForQuery, reloadFromSpill /
// Prewarm → depsFresh), or the added entry may embed cross-commit
// state the hit path will happily serve.
const EpochAddSink = "repro/internal/recycler.(*Pool).Add"
