package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Suppression is one //lint:allow directive.
//
// Syntax:
//
//	//lint:allow <analyzer> <reason...>
//
// placed on the flagged line or the line immediately above it. The
// reason is mandatory — an allow without a stated reason is itself a
// finding. The driver counts suppressions per analyzer and prints the
// totals so growth of the allow set is visible in CI logs.
type Suppression struct {
	Analyzer string
	Reason   string
	Pos      token.Position
	Used     bool
}

const allowPrefix = "//lint:allow"

// CollectSuppressions scans the packages' comments for //lint:allow
// directives. Malformed directives (missing analyzer or reason) are
// returned as diagnostics attributed to the pseudo-analyzer "lint".
func CollectSuppressions(fset *token.FileSet, pkgs []*PackageInfo) ([]*Suppression, []Diagnostic) {
	var sups []*Suppression
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					if !strings.HasPrefix(c.Text, allowPrefix) {
						continue
					}
					rest := strings.TrimPrefix(c.Text, allowPrefix)
					fields := strings.Fields(rest)
					pos := fset.Position(c.Pos())
					if len(fields) < 2 {
						bad = append(bad, Diagnostic{
							Analyzer: "lint",
							Pos:      pos,
							Message:  "malformed //lint:allow: want \"//lint:allow <analyzer> <reason>\"",
						})
						continue
					}
					sups = append(sups, &Suppression{
						Analyzer: fields[0],
						Reason:   strings.Join(fields[1:], " "),
						Pos:      pos,
					})
				}
			}
		}
	}
	return sups, bad
}

// ApplySuppressions splits findings into kept (unsuppressed) and
// suppressed. A suppression matches a diagnostic from its analyzer in
// the same file on the same line or the line directly below the
// directive.
func ApplySuppressions(diags []Diagnostic, sups []*Suppression) (kept, suppressed []Diagnostic) {
	for _, d := range diags {
		matched := false
		for _, s := range sups {
			if s.Analyzer != d.Analyzer || s.Pos.Filename != d.Pos.Filename {
				continue
			}
			if s.Pos.Line == d.Pos.Line || s.Pos.Line == d.Pos.Line-1 {
				s.Used = true
				matched = true
				break
			}
		}
		if matched {
			suppressed = append(suppressed, d)
		} else {
			kept = append(kept, d)
		}
	}
	return kept, suppressed
}

// SuppressionSummary renders per-analyzer counts of used directives,
// plus a note per directive that suppressed nothing in this run.
func SuppressionSummary(sups []*Suppression) string {
	counts := map[string]int{}
	var unused []*Suppression
	for _, s := range sups {
		if s.Used {
			counts[s.Analyzer]++
		} else {
			unused = append(unused, s)
		}
	}
	var b strings.Builder
	if len(counts) > 0 {
		names := make([]string, 0, len(counts))
		for n := range counts {
			names = append(names, n)
		}
		sort.Strings(names)
		parts := make([]string, 0, len(names))
		for _, n := range names {
			parts = append(parts, fmt.Sprintf("%s=%d", n, counts[n]))
		}
		fmt.Fprintf(&b, "suppressions in effect: %s\n", strings.Join(parts, " "))
	}
	for _, s := range unused {
		fmt.Fprintf(&b, "note: unused //lint:allow %s at %s\n", s.Analyzer, s.Pos)
	}
	return b.String()
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// NodeLine is a convenience for fixture tests.
func NodeLine(fset *token.FileSet, n ast.Node) int { return fset.Position(n.Pos()).Line }
