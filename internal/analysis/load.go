package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// listedPackage is the subset of `go list -json` output the loader
// consumes.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Incomplete bool
}

// Load lists the given package patterns from dir, parses and
// typechecks every matched (non-dependency) package from source, and
// resolves imports from the gc export data `go list -export` leaves
// in the build cache. This gives full type information for the target
// packages without golang.org/x/tools.
//
// Only GoFiles are analyzed (no _test.go variants): reprolint checks
// the invariants of shipped code; fixture coverage for the analyzers
// themselves lives in testdata packages.
func Load(dir string, patterns ...string) (*token.FileSet, []*PackageInfo, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	exports := make(map[string]string, len(listed))
	var targets []*listedPackage
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard && len(p.GoFiles) > 0 {
			targets = append(targets, p)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := ExportImporter(fset, exports)
	var pkgs []*PackageInfo
	for _, t := range targets {
		info, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, nil, fmt.Errorf("typecheck %s: %w", t.ImportPath, err)
		}
		pkgs = append(pkgs, info)
	}
	return fset, pkgs, nil
}

// goList runs `go list -deps -export -json` and decodes the package
// stream.
func goList(dir string, patterns []string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-deps", "-export",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Incomplete",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list: %w\n%s", err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(&stdout)
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list decode: %w", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// ExportImporter returns a types.Importer that reads gc export data
// files from the given path→file map (as produced by
// `go list -export`).
func ExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// StdlibExports lists export-data files for the given stdlib package
// patterns (plus their dependencies). Analyzer tests use it so
// fixture packages can import sync, os, fmt, ... without touching the
// network.
func StdlibExports(patterns ...string) (map[string]string, error) {
	listed, err := goList(".", patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(listed))
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

// CheckFiles typechecks the given Go files (absolute or cwd-relative
// paths) as one package. The vet-cfg driver mode uses it: go vet
// hands the tool an explicit file list rather than a directory.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []string) (*PackageInfo, error) {
	return checkPackage(fset, imp, path, "", files)
}

// checkPackage parses files and typechecks them as package path.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, files []string) (*PackageInfo, error) {
	var syntax []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, syntax, info)
	if err != nil {
		return nil, err
	}
	return &PackageInfo{Path: path, Pkg: pkg, Files: syntax, Info: info}, nil
}

// multiImporter resolves imports from already-typechecked source
// packages first, then falls back to export data. The analyzer test
// harness uses it so a fixture "store" package can import a fixture
// "catalog" package by its real import path.
type multiImporter struct {
	source   map[string]*types.Package
	fallback types.Importer
}

func (m *multiImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.source[path]; ok {
		return p, nil
	}
	return m.fallback.Import(path)
}

// CheckFixture typechecks one fixture directory as the given import
// path, resolving imports from prior fixtures before stdlib export
// data. Used by the analysistest harness.
func CheckFixture(fset *token.FileSet, prior []*PackageInfo, stdlib types.Importer, path, dir string) (*PackageInfo, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".go" {
			files = append(files, e.Name())
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	src := make(map[string]*types.Package, len(prior))
	for _, p := range prior {
		src[p.Path] = p.Pkg
	}
	return checkPackage(fset, &multiImporter{source: src, fallback: stdlib}, path, dir, files)
}
