// Package analysistest runs an analyzer over fixture packages and
// checks its diagnostics against // want "regexp" comments, mirroring
// golang.org/x/tools/go/analysis/analysistest on the standard
// library only.
//
// Fixture packages live under testdata/ (invisible to the go tool)
// and are typechecked under the *real* import paths they imitate —
// a fixture directory loaded as "repro/internal/recycler" exercises
// invariant tables keyed on real paths without touching real code.
// Multi-package fixtures list dependencies first; later fixtures
// resolve imports against earlier ones, then against stdlib export
// data.
package analysistest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
)

// Pkg names one fixture: Dir is relative to testdata/, Path is the
// import path to load it under.
type Pkg struct {
	Dir  string
	Path string
}

// Run loads the fixtures in order, applies the analyzer to every
// package, and matches diagnostics against // want comments in all
// fixture files.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, fixtures ...Pkg) {
	t.Helper()
	exports, err := analysis.StdlibExports("std")
	if err != nil {
		t.Fatalf("listing stdlib export data: %v", err)
	}
	fset := token.NewFileSet()
	stdlib := analysis.ExportImporter(fset, exports)
	var pkgs []*analysis.PackageInfo
	for _, fx := range fixtures {
		info, err := analysis.CheckFixture(fset, pkgs, stdlib, fx.Path, filepath.Join(testdata, fx.Dir))
		if err != nil {
			t.Fatalf("loading fixture %s as %s: %v", fx.Dir, fx.Path, err)
		}
		pkgs = append(pkgs, info)
	}
	diags, err := analysis.Run(fset, pkgs, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}
	checkWants(t, fset, pkgs, diags)
}

type want struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

var wantRE = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

func checkWants(t *testing.T, fset *token.FileSet, pkgs []*analysis.PackageInfo, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*want
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
						pat := strings.ReplaceAll(m[1], `\"`, `"`)
						re, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("bad want pattern %q: %v", pat, err)
						}
						pos := fset.Position(c.Pos())
						wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re, raw: pat})
					}
				}
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.matched && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("no diagnostic at %s:%d matching %q", filepath.Base(w.file), w.line, w.raw)
		}
	}
}
