// Package atomicfield enforces the repo's atomic-access discipline:
//
//   - every field declared in analysis.AtomicFields must actually be
//     a typed sync/atomic value (a refactor turning one back into a
//     plain int64 compiles fine and races silently);
//   - a field accessed through sync/atomic free functions anywhere
//     (atomic.AddInt64(&x.f, ...)) must be accessed that way
//     everywhere — a plain read or write of the same field elsewhere
//     is a data race that -race only catches if the schedule
//     cooperates;
//   - structs containing typed atomic fields must not be copied by
//     value (assignment, dereference-copy, range), which would fork
//     the counter;
//   - fields declared mutex-guarded (analysis.MutexGuardedFields)
//     must not be touched with sync/atomic at all: mixing the two
//     disciplines orders nothing for the mutex-side readers.
package atomicfield

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the atomicfield entry point.
var Analyzer = &analysis.Analyzer{
	Name: "atomicfield",
	Doc:  "fields accessed via sync/atomic anywhere must be accessed atomically everywhere",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	// Whole-program pre-pass: which fields are accessed through
	// sync/atomic free functions anywhere in the universe?
	freeAtomic := map[string]bool{}
	for _, pkg := range pass.Universe {
		for _, file := range pkg.Files {
			ast.Inspect(file, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if f := atomicFreeFunc(pkg.Info, call); f != "" && len(call.Args) > 0 {
					if key := addrOfField(pkg.Info, call.Args[0]); key != "" {
						freeAtomic[key] = true
					}
				}
				return true
			})
		}
	}

	checkDeclaredTypes(pass)

	info := pass.Target.Info
	for _, file := range pass.Target.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if f := atomicFreeFunc(info, n); f != "" && len(n.Args) > 0 {
					if key := addrOfField(info, n.Args[0]); key != "" {
						if lock, guarded := analysis.MutexGuardedFields[key]; guarded {
							pass.Reportf(n.Pos(),
								"%s on %s mixes disciplines: the field is guarded by the %s, not by atomics",
								f, shortField(key), lock)
						}
					}
					// Skip the argument subtree: &x.f inside an atomic call
					// is the sanctioned access.
					for _, a := range n.Args[1:] {
						checkPlainUses(pass, a, freeAtomic)
					}
					return false
				}
			case *ast.SelectorExpr:
				reportPlainUse(pass, n, freeAtomic)
				return true
			case *ast.AssignStmt:
				checkValueCopy(pass, n)
				return true
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
				return true
			case *ast.UnaryExpr, *ast.StarExpr:
				return true
			}
			return true
		})
	}
	return nil
}

// checkDeclaredTypes verifies every declared atomic field in the
// target package still carries a sync/atomic type.
func checkDeclaredTypes(pass *analysis.Pass) {
	for _, file := range pass.Target.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, f := range st.Fields.List {
				for _, name := range f.Names {
					key := analysis.FieldKey(pass.Target.Path, ts.Name.Name, name.Name)
					if !analysis.AtomicFields[key] {
						continue
					}
					if tv, ok := pass.Target.Info.Types[f.Type]; !ok || !isAtomicType(tv.Type) {
						pass.Reportf(name.Pos(),
							"%s is declared atomic in internal/analysis/invariants.go but has non-atomic type %s",
							shortField(key), pass.Target.Info.Types[f.Type].Type)
					}
				}
			}
			return true
		})
	}
}

// checkPlainUses reports plain selector uses of free-atomic fields in
// the given subtree.
func checkPlainUses(pass *analysis.Pass, e ast.Expr, freeAtomic map[string]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			reportPlainUse(pass, sel, freeAtomic)
		}
		return true
	})
}

func reportPlainUse(pass *analysis.Pass, sel *ast.SelectorExpr, freeAtomic map[string]bool) {
	key := analysis.ResolveField(pass.Target.Info.Selections[sel])
	if key == "" || !freeAtomic[key] {
		return
	}
	pass.Reportf(sel.Sel.Pos(),
		"plain access to %s, which is accessed with sync/atomic elsewhere; every access must go through sync/atomic",
		shortField(key))
}

// checkValueCopy flags `x := *e` / `x = v` where the copied value's
// type contains typed atomic fields.
func checkValueCopy(pass *analysis.Pass, as *ast.AssignStmt) {
	for _, rhs := range as.Rhs {
		rhs = ast.Unparen(rhs)
		var copied ast.Expr
		switch r := rhs.(type) {
		case *ast.StarExpr:
			copied = r // dereference copies the pointee
		case *ast.Ident, *ast.SelectorExpr:
			copied = r
		default:
			continue
		}
		tv, ok := pass.Target.Info.Types[copied]
		if !ok || tv.Type == nil {
			continue
		}
		if name := atomicFieldIn(tv.Type); name != "" {
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			pass.Reportf(rhs.Pos(),
				"copies a %s by value; it contains atomic field %s, and a copy forks the counter",
				tv.Type, name)
		}
	}
}

func checkRangeCopy(pass *analysis.Pass, rs *ast.RangeStmt) {
	if rs.Value == nil {
		return
	}
	// The value variable is usually a fresh definition (`for _, v :=`),
	// recorded in Defs; an assigned existing variable lands in Uses.
	var t types.Type
	if id, ok := rs.Value.(*ast.Ident); ok {
		if obj := pass.Target.Info.Defs[id]; obj != nil {
			t = obj.Type()
		} else if obj := pass.Target.Info.Uses[id]; obj != nil {
			t = obj.Type()
		}
	} else if tv, ok := pass.Target.Info.Types[rs.Value]; ok {
		t = tv.Type
	}
	if t == nil {
		return
	}
	if name := atomicFieldIn(t); name != "" {
		pass.Reportf(rs.Value.Pos(),
			"range copies %s values; the element contains atomic field %s — range over indexes or pointers instead",
			t, name)
	}
}

// atomicFreeFunc returns the name of the sync/atomic free function a
// call invokes ("" if none).
func atomicFreeFunc(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	f, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || f.Pkg() == nil || f.Pkg().Path() != "sync/atomic" {
		return ""
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() != nil {
		return "" // typed-atomic method (a.Load()), not a free function
	}
	return "atomic." + f.Name()
}

// addrOfField maps `&x.f` to f's field key.
func addrOfField(info *types.Info, arg ast.Expr) string {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op.String() != "&" {
		return ""
	}
	sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	return analysis.ResolveField(info.Selections[sel])
}

// isAtomicType reports whether t is a sync/atomic value type.
func isAtomicType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		// atomic.Pointer[T] instantiations are *types.Named too; other
		// shapes (aliases) resolve through Underlying.
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// atomicFieldIn returns the name of a typed-atomic field of t's
// struct type ("" if none).
func atomicFieldIn(t types.Type) string {
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if isAtomicType(f.Type()) {
			return f.Name()
		}
	}
	return ""
}

func shortField(key string) string {
	return strings.TrimPrefix(key, "repro/internal/")
}
