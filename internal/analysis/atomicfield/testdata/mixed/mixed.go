// Fixture package for atomicfield, typechecked as
// "repro/internal/fixture": free-function discipline, value copies,
// and range copies.
package fixture

import "sync/atomic"

type counter struct {
	n     int64
	total int64
}

// inc establishes that counter.n is a sync/atomic field.
func (c *counter) inc() {
	atomic.AddInt64(&c.n, 1)
}

// badRead reads the same field without atomics.
func (c *counter) badRead() int64 {
	return c.n // want "plain access to fixture.counter.n, which is accessed with sync/atomic elsewhere"
}

// goodRead goes through sync/atomic.
func (c *counter) goodRead() int64 {
	return atomic.LoadInt64(&c.n)
}

// plainTotal is fine: total is never touched with atomics.
func (c *counter) plainTotal() int64 {
	return c.total
}

type gauge struct {
	v atomic.Int64
}

// badCopy dereference-copies a struct holding a typed atomic.
func badCopy(g *gauge) int64 {
	tmp := *g // want "copies a repro/internal/fixture.gauge by value; it contains atomic field v"
	return tmp.v.Load()
}

// badRange copies gauge values per iteration.
func badRange(gs []gauge) int64 {
	var t int64
	for _, g := range gs { // want "range copies repro/internal/fixture.gauge values"
		t += g.v.Load()
	}
	return t
}

// goodRange iterates by index.
func goodRange(gs []gauge) int64 {
	var t int64
	for i := range gs {
		t += gs[i].v.Load()
	}
	return t
}

// goodPointer copies only the pointer.
func goodPointer(g *gauge) *gauge {
	p := g
	return p
}
