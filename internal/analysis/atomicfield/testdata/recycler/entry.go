// Fixture package for atomicfield, typechecked as
// "repro/internal/recycler": the declared-type check over the
// invariant table's atomic field list.
package recycler

import "sync/atomic"

// Entry declares LastUseTick as a plain int64 — the refactor hazard
// the declared-type check exists to catch.
type Entry struct {
	Sig         string
	SavedTotal  atomic.Uint64
	LastUseTick int64 // want "recycler.Entry.LastUseTick is declared atomic in internal/analysis/invariants.go but has non-atomic type int64"
	ReuseCount  atomic.Uint64
}

// touchEntry copies an Entry by value; Entry holds typed atomics.
func touchEntry(e *Entry) string {
	snapshot := *e // want "copies a repro/internal/recycler.Entry by value; it contains atomic field SavedTotal"
	return snapshot.Sig
}

// goodTick goes through the typed atomic.
func goodTick(e *Entry) uint64 {
	return e.ReuseCount.Load()
}
