// Fixture package for atomicfield, typechecked as
// "repro/internal/catalog": mutex-guarded fields must not be touched
// with sync/atomic at all.
package catalog

import (
	"sync"
	"sync/atomic"
)

// Catalog mirrors the real commitSeq discipline: guarded by mu.
type Catalog struct {
	mu        sync.RWMutex
	commitSeq uint64
}

// badBump uses an atomic op on the mutex-guarded counter.
func (c *Catalog) badBump() {
	atomic.AddUint64(&c.commitSeq, 1) // want "atomic.AddUint64 on catalog.Catalog.commitSeq mixes disciplines: the field is guarded by the catalog.Catalog.mu"
}

// plainBump is the correct discipline in real code — but once any
// atomic access exists (badBump above), every plain access is flagged
// too: that is the point of the check.
func (c *Catalog) plainBump() {
	c.mu.Lock()
	c.commitSeq++ // want "plain access to catalog.Catalog.commitSeq, which is accessed with sync/atomic elsewhere"
	c.mu.Unlock()
}
