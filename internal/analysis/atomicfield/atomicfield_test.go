package atomicfield_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/atomicfield"
)

// TestDiscipline covers the free-function everywhere rule plus value
// and range copies of structs holding typed atomics.
func TestDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer,
		analysistest.Pkg{Dir: "mixed", Path: "repro/internal/fixture"})
}

// TestDeclaredTypes covers the invariant-table check: a declared
// atomic field demoted to a plain integer is flagged.
func TestDeclaredTypes(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer,
		analysistest.Pkg{Dir: "recycler", Path: "repro/internal/recycler"})
}

// TestMutexGuarded covers the mixed-discipline rule on fields the
// tables declare mutex-guarded.
func TestMutexGuarded(t *testing.T) {
	analysistest.Run(t, "testdata", atomicfield.Analyzer,
		analysistest.Pkg{Dir: "catalog", Path: "repro/internal/catalog"})
}
