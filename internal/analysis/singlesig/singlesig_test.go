package singlesig_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/singlesig"
)

// TestIdentityKeys loads the mal and plan fixtures (no findings
// expected in either: mal's spellings are sanctioned, plan is the
// identity implementation) plus a consumer exercising flagged and
// allowed key shapes.
func TestIdentityKeys(t *testing.T) {
	analysistest.Run(t, "testdata", singlesig.Analyzer,
		analysistest.Pkg{Dir: "mal", Path: "repro/internal/mal"},
		analysistest.Pkg{Dir: "plan", Path: "repro/internal/plan"},
		analysistest.Pkg{Dir: "consumer", Path: "repro/internal/fixture"})
}
