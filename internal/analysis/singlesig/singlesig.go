// Package singlesig enforces the PR 5 single-signature invariant:
// plan.Signature (and the two sanctioned compile-time spellings,
// mal.Instr.Name and mal.Instr.StaticSig) are the only identity
// derivations in the tree. Outside internal/plan, building a *new*
// identity string — fmt.Sprintf or string concatenation over
// instruction fields, signature keys or render output — and using it
// as a map key is an ad-hoc identity: two such keys drift apart the
// moment normalization changes, which is exactly the class of bug
// the canonical pipeline removed.
//
// The pass is a per-function, source-order taint analysis: identity-
// derived strings (Sprintf/concat whose operands reach mal.Instr
// fields, identity functions' results, or entry render/signature
// fields) taint the variables they are assigned to; using a tainted
// expression as a map index or map-literal key is the finding.
// Using an identity function's result *directly* as a key
// (m[in.StaticSig()]) is allowed — that is the identity, not a
// derivation.
package singlesig

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the singlesig entry point.
var Analyzer = &analysis.Analyzer{
	Name: "singlesig",
	Doc:  "forbid ad-hoc identity strings outside internal/plan; identity flows through plan.Signature",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if analysis.SinglesigAllowedPkgs[pass.Target.Path] {
		return nil
	}
	for _, file := range pass.Target.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, _ := pass.Target.Info.Defs[fd.Name].(*types.Func); obj != nil {
				if analysis.SinglesigAllowedFuncs[analysis.FuncKey(obj)] {
					continue
				}
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

type state struct {
	pass *analysis.Pass
	// tainted tracks local variables holding derived identity strings.
	tainted map[types.Object]bool
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	st := &state{pass: pass, tainted: map[types.Object]bool{}}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i < len(n.Lhs) && st.derived(rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok {
						if obj := pass.Target.Info.Defs[id]; obj != nil {
							st.tainted[obj] = true
						} else if obj := pass.Target.Info.Uses[id]; obj != nil {
							st.tainted[obj] = true
						}
					}
				}
			}
		case *ast.IndexExpr:
			if st.isMapIndex(n) && st.flaggable(n.Index) {
				st.report(n.Index.Pos())
			}
		case *ast.CompositeLit:
			if _, ok := pass.Target.Info.Types[n].Type.Underlying().(*types.Map); ok {
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok && st.flaggable(kv.Key) {
						st.report(kv.Key.Pos())
					}
				}
			}
		}
		return true
	})
}

func (st *state) report(pos token.Pos) {
	st.pass.Reportf(pos,
		"ad-hoc identity string used as a map key; identity must flow through plan.Signature.Key()/Canonical() (or mal.Instr.Name/StaticSig directly)")
}

// flaggable reports whether an expression used as a map key is a
// derived identity: a taint-carrying variable or a directly derived
// expression.
func (st *state) flaggable(e ast.Expr) bool {
	e = ast.Unparen(e)
	if id, ok := e.(*ast.Ident); ok {
		if obj := st.pass.Target.Info.Uses[id]; obj != nil && st.tainted[obj] {
			return true
		}
		return false
	}
	return st.derived(e)
}

// derived reports whether e builds a NEW string out of identity
// sources: a Sprintf/Sprint/concat whose operands reach one.
func (st *state) derived(e ast.Expr) bool {
	e = ast.Unparen(e)
	switch e := e.(type) {
	case *ast.BinaryExpr:
		if e.Op != token.ADD || !isString(st.pass.Target.Info, e) {
			return false
		}
		return st.reachesIdentity(e.X) || st.reachesIdentity(e.Y)
	case *ast.CallExpr:
		callee := analysis.Callee(st.pass.Target.Info, e)
		if callee == nil {
			return false
		}
		key := analysis.FuncKey(callee)
		// Render output is display text, not canonical identity: keying
		// on it is always ad-hoc, even without further concatenation.
		if key == "repro/internal/plan.RenderInstr" {
			return true
		}
		if key != "fmt.Sprintf" && key != "fmt.Sprint" && key != "fmt.Sprintln" {
			return false
		}
		for _, a := range e.Args {
			if st.reachesIdentity(a) {
				return true
			}
		}
	}
	return false
}

// reachesIdentity reports whether an expression reads an identity
// source: an identity function call, an identity-bearing field, a
// mal.Instr value, or an already-tainted variable.
func (st *state) reachesIdentity(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if callee := analysis.Callee(st.pass.Target.Info, n); callee != nil {
				if analysis.IdentitySourceFuncs[analysis.FuncKey(callee)] {
					found = true
					return false
				}
			}
		case *ast.SelectorExpr:
			if key := analysis.ResolveField(st.pass.Target.Info.Selections[n]); key != "" {
				if analysis.IdentitySourceFields[key] {
					found = true
					return false
				}
			}
		case *ast.Ident:
			if obj := st.pass.Target.Info.Uses[n]; obj != nil {
				if st.tainted[obj] {
					found = true
					return false
				}
				if isInstrType(obj.Type()) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func (st *state) isMapIndex(ix *ast.IndexExpr) bool {
	tv, ok := st.pass.Target.Info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func isString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// isInstrType reports whether t is mal.Instr or *mal.Instr.
func isInstrType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "repro/internal/mal" && obj.Name() == "Instr"
}
