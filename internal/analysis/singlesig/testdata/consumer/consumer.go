// Fixture package for singlesig, typechecked as
// "repro/internal/fixture": consumers of instruction and plan
// identity, flagged and allowed shapes.
package fixture

import (
	"fmt"

	"repro/internal/mal"
	"repro/internal/plan"
)

// badConcatKey builds an ad-hoc identity from instruction fields.
func badConcatKey(in *mal.Instr, seen map[string]int) {
	seen[in.Module+"."+in.Op]++ // want "ad-hoc identity string used as a map key"
}

// badSprintfVar taints a local and then keys a map with it.
func badSprintfVar(in *mal.Instr, seen map[string]bool) {
	k := fmt.Sprintf("%s|%d", in.Name(), 3)
	seen[k] = true // want "ad-hoc identity string used as a map key"
}

// badLitKey uses a derived identity as a composite-literal key.
func badLitKey(in *mal.Instr) map[string]int {
	return map[string]int{
		in.Module + in.Op: 1, // want "ad-hoc identity string used as a map key"
	}
}

// badRenderKey keys a cache on render output (display text).
func badRenderKey(in *mal.Instr, cache map[string]int) {
	r := plan.RenderInstr(in.Module, in.Op, in.Args)
	cache[r] = 1 // want "ad-hoc identity string used as a map key"
}

// goodDirectKey uses identity-function results directly: that IS the
// identity, not a derivation.
func goodDirectKey(in *mal.Instr, sig plan.Signature, seen map[string]int) {
	seen[in.StaticSig()]++
	seen[in.Name()] = 1
	seen[sig.Key()] = 2
	seen[sig.Canonical()] = 3
}

// goodLogLine derives a string for logging only — never a key.
func goodLogLine(in *mal.Instr) string {
	return fmt.Sprintf("exec %s.%s", in.Module, in.Op)
}

// goodPlainKey concatenates non-identity strings.
func goodPlainKey(name string, m map[string]int) {
	m[name+"-suffix"]++
}
