// Fixture package for singlesig, typechecked as
// "repro/internal/mal": the instruction type and its two sanctioned
// identity spellings.
package mal

import "fmt"

// Instr mirrors the real MAL instruction identity fields.
type Instr struct {
	Module string
	Op     string
	Args   []string
}

// Name is a sanctioned identity spelling (SinglesigAllowedFuncs).
func (in *Instr) Name() string {
	return in.Module + "." + in.Op
}

// StaticSig is the other sanctioned spelling.
func (in *Instr) StaticSig() string {
	return fmt.Sprintf("%s.%s:%d", in.Module, in.Op, len(in.Args))
}
