// Fixture package for singlesig, typechecked as
// "repro/internal/plan": the canonical identity implementation, which
// the analyzer exempts wholesale.
package plan

// Signature mirrors the canonical signature.
type Signature struct {
	key   string
	canon string
}

// Key is canonical identity.
func (s Signature) Key() string { return s.key }

// Canonical is canonical identity.
func (s Signature) Canonical() string { return s.canon }

// RenderInstr produces display text; internal/plan may build it from
// parts, and nothing outside may key on it.
func RenderInstr(module, op string, args []string) string {
	out := module + "." + op
	for _, a := range args {
		out += " " + a
	}
	return out
}
