package recycler

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bat"
	"repro/internal/catalog"
	"repro/internal/mal"
	"repro/internal/sqlfe"
)

// Differential harness for incremental maintenance: random SQL
// statements warm a maintain-mode pool, then randomized update batches
// (appends, deletions, in-place updates, duplicates, empty deltas)
// commit against the catalog, and after every batch each statement is
// executed twice — once against the maintained pool and once as a
// from-scratch recompute with no recycler attached. The two result
// sets must be bit-identical: same columns, same scalar bits, same BAT
// contents in the same order. Any unsound delta rule, any entry left
// holding pre-commit data, any float summed in a different order shows
// up as a diff.

type diffHarness struct {
	cat *catalog.Catalog
	tb  *catalog.Table
	fe  *sqlfe.Frontend
	rec *Recycler
	qid uint64
}

func newDiffHarness(rng *rand.Rand, rows int) *diffHarness {
	cat := catalog.New()
	tb := cat.CreateTable("sys", "t", []catalog.ColDef{
		{Name: "a", Kind: bat.KInt},
		{Name: "b", Kind: bat.KInt},
		{Name: "f", Kind: bat.KFloat},
	})
	batch := make([]catalog.Row, rows)
	for i := range batch {
		batch[i] = diffRow(rng)
	}
	tb.Append(batch)
	return &diffHarness{
		cat: cat,
		tb:  tb,
		fe:  sqlfe.NewFrontend(cat),
		rec: New(cat, Config{Admission: KeepAll, Sync: SyncMaintain}),
	}
}

// diffRow samples one row; a and b land in the predicate value space
// [0,50) so random statements select non-trivial subsets.
func diffRow(rng *rand.Rand) catalog.Row {
	return catalog.Row{
		"a": int64(rng.Intn(50)),
		"b": int64(rng.Intn(50)),
		"f": float64(rng.Intn(1000)) / 8,
	}
}

// maintained executes sql against the recycled stack (pool hits serve
// maintained entries).
func (h *diffHarness) maintained(t *testing.T, sql string) []mal.Result {
	t.Helper()
	tmpl, params, err := h.fe.Compile(sql)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	h.qid++
	ctx := &mal.Ctx{Cat: h.cat, Hook: h.rec, QueryID: h.qid}
	h.rec.BeginQuery(h.qid, tmpl.ID)
	defer h.rec.EndQuery(h.qid)
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		t.Fatalf("maintained run %q: %v", sql, err)
	}
	return ctx.Results
}

// recompute executes sql from scratch: same template, no recycler.
func (h *diffHarness) recompute(t *testing.T, sql string) []mal.Result {
	t.Helper()
	tmpl, params, err := h.fe.Compile(sql)
	if err != nil {
		t.Fatalf("compile %q: %v", sql, err)
	}
	ctx := &mal.Ctx{Cat: h.cat}
	if err := mal.Run(ctx, tmpl, params...); err != nil {
		t.Fatalf("recompute %q: %v", sql, err)
	}
	return ctx.Results
}

func (h *diffHarness) check(t *testing.T, seed int64, batch int, stmts []string) {
	t.Helper()
	for _, sql := range stmts {
		want := h.recompute(t, sql)
		got := h.maintained(t, sql)
		if !diffResultsBitIdentical(want, got) {
			t.Fatalf("seed %d batch %d: maintained result differs from recompute for %q\nwant %v\ngot  %v",
				seed, batch, sql, want, got)
		}
	}
}

// diffResultsBitIdentical compares two result sets exactly: same
// columns, same scalar bits, same BAT contents in the same order (the
// PR 5 equivalence-workload comparator, applied across commits).
func diffResultsBitIdentical(a, b []mal.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name {
			return false
		}
		va, vb := a[i].Val, b[i].Val
		if va.Kind != vb.Kind {
			return false
		}
		if va.Kind != mal.VBat {
			if !va.EqualConst(vb) {
				return false
			}
			continue
		}
		if va.Bat.Len() != vb.Bat.Len() {
			return false
		}
		for j := 0; j < va.Bat.Len(); j++ {
			if va.Bat.Tail.Get(j) != vb.Bat.Tail.Get(j) {
				return false
			}
		}
	}
	return true
}

// diffPred renders one random conjunct over a or b.
func diffPred(rng *rand.Rand) string {
	col := []string{"a", "b"}[rng.Intn(2)]
	switch rng.Intn(3) {
	case 0:
		lo := rng.Intn(40)
		return fmt.Sprintf("%s BETWEEN %d AND %d", col, lo, lo+rng.Intn(15)+1)
	case 1:
		return fmt.Sprintf("%s >= %d", col, rng.Intn(40))
	default:
		return fmt.Sprintf("%s <= %d", col, rng.Intn(50))
	}
}

// diffStatements samples the statement set: counts, additive integer
// and float aggregates, and plain projections — every maintainable
// shape (bind → selects → semijoins → aggregate) the eligibility
// rules cover.
func diffStatements(rng *rand.Rand) []string {
	where := func() string {
		s := diffPred(rng)
		if rng.Intn(2) == 1 {
			s += " AND " + diffPred(rng)
		}
		return s
	}
	return []string{
		"SELECT COUNT(*) FROM sys.t WHERE " + where(),
		"SELECT SUM(a) FROM sys.t WHERE " + where(),
		"SELECT SUM(f) FROM sys.t WHERE " + where(),
		"SELECT a, f FROM sys.t WHERE " + where(),
		"SELECT COUNT(*) FROM sys.t WHERE " + where(),
	}
}

// TestMaintainDifferential is the PR's backbone: 1000 randomized
// update batches across 8 seeds, every maintained statement
// bit-identical to a from-scratch recompute after every batch.
func TestMaintainDifferential(t *testing.T) {
	const seeds = 8
	const batchesPerSeed = 125 // 8 x 125 = 1000 batches
	for s := 0; s < seeds; s++ {
		seed := int64(9000 + s)
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			runMaintainDifferential(t, seed, batchesPerSeed)
		})
	}
}

func runMaintainDifferential(t *testing.T, seed int64, batches int) {
	t.Logf("differential seed %d (%d batches)", seed, batches)
	rng := rand.New(rand.NewSource(seed))
	h := newDiffHarness(rng, rng.Intn(150)+50)
	defer h.rec.Close()
	stmts := diffStatements(rng)

	// Warm the pool (and verify the first pass already matches).
	h.check(t, seed, -1, stmts)

	// Live-row bookkeeping so deletions target real oids.
	live := make([]bat.Oid, h.tb.NumRows())
	for i := range live {
		live[i] = bat.Oid(i)
	}
	next := bat.Oid(len(live))

	for i := 0; i < batches; i++ {
		switch op := rng.Intn(10); {
		case op < 5: // append
			k := rng.Intn(5) + 1
			rows := make([]catalog.Row, k)
			for j := range rows {
				rows[j] = diffRow(rng)
			}
			if k > 1 && rng.Intn(4) == 0 {
				// Duplicate rows: the same values repeated within one
				// batch must flow through every delta once each.
				for j := 1; j < k; j++ {
					rows[j] = rows[0]
				}
			}
			if rng.Intn(8) == 0 {
				// Empty-delta batch: values outside every predicate's
				// range, so filter deltas select nothing and aggregates
				// move by the unfiltered rows only.
				for j := range rows {
					rows[j]["a"] = int64(1000)
					rows[j]["b"] = int64(1000)
				}
			}
			h.tb.Append(rows)
			for j := 0; j < k; j++ {
				live = append(live, next)
				next++
			}
		case op < 8: // delete
			if len(live) == 0 {
				continue
			}
			k := rng.Intn(4) + 1
			if rng.Intn(20) == 0 {
				k = len(live) // all-deleted: the table empties entirely
			}
			if k > len(live) {
				k = len(live)
			}
			rng.Shuffle(len(live), func(x, y int) { live[x], live[y] = live[y], live[x] })
			h.tb.Delete(append([]bat.Oid(nil), live[:k]...))
			live = live[k:]
		default: // in-place update: the non-delta fallback path
			if len(live) == 0 {
				continue
			}
			o := live[rng.Intn(len(live))]
			h.tb.UpdateInPlace("a", []bat.Oid{o}, []any{int64(rng.Intn(50))})
		}
		h.check(t, seed, i, stmts)
	}

	st := h.rec.Snapshot()
	if st.Maintained == 0 {
		t.Fatalf("seed %d: no entries were maintained — the differential ran vacuously (stats %+v)", seed, st)
	}
	t.Logf("seed %d: maintained %d, fallback %d, delta rows %d, invalidated %d",
		seed, st.Maintained, st.MaintainFallback, st.DeltaRows, st.Invalidated)
}

// TestMaintainEdgeCases pins the three directed corners of the delta
// rules on a fixed catalog: an empty delta (no selected rows), a batch
// deleting everything a cached select matched, and duplicate inserted
// rows.
func TestMaintainEdgeCases(t *testing.T) {
	const seed = 4242
	stmts := []string{
		"SELECT COUNT(*) FROM sys.t WHERE a BETWEEN 10 AND 20",
		"SELECT SUM(a) FROM sys.t WHERE b <= 25",
		"SELECT SUM(f) FROM sys.t WHERE a >= 5 AND b BETWEEN 0 AND 40",
		"SELECT a, f FROM sys.t WHERE a BETWEEN 0 AND 49",
	}
	rng := rand.New(rand.NewSource(seed))
	h := newDiffHarness(rng, 80)
	defer h.rec.Close()
	h.check(t, seed, -1, stmts)

	// Empty delta: values outside every predicate — entries must stay
	// maintained (not fall back) and results must not move for the
	// filtered statements.
	before := h.rec.Snapshot().Maintained
	h.tb.Append([]catalog.Row{{"a": int64(1000), "b": int64(1000), "f": 3.25}})
	h.check(t, seed, 0, stmts)
	if after := h.rec.Snapshot().Maintained; after <= before {
		t.Fatalf("empty-delta commit maintained nothing (%d -> %d)", before, after)
	}

	// Duplicate rows: one batch of four identical rows, then the same
	// values again in a second batch.
	dup := catalog.Row{"a": int64(15), "b": int64(15), "f": 7.5}
	h.tb.Append([]catalog.Row{dup, dup, dup, dup})
	h.check(t, seed, 1, stmts)
	h.tb.Append([]catalog.Row{dup})
	h.check(t, seed, 2, stmts)

	// All-deleted: remove every live row; counts drop to zero, sums
	// empty out, projections return no rows — identically on both
	// paths.
	n := h.tb.NumRows()
	all := make([]bat.Oid, 0, n)
	for i := 0; i < n; i++ {
		all = append(all, bat.Oid(i))
	}
	h.tb.Delete(all)
	h.check(t, seed, 3, stmts)

	st := h.rec.Snapshot()
	if st.Maintained == 0 {
		t.Fatalf("edge cases maintained nothing: %+v", st)
	}
}
